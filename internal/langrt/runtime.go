package langrt

import (
	"fmt"

	"svbench/internal/ir"
	"svbench/internal/kernel"
	"svbench/internal/libc"
	"svbench/internal/rpc"
)

// Runtime names a language runtime model.
type Runtime string

// Supported runtimes (the vSwarm language matrix, Table 3.2).
const (
	GoRT   Runtime = "go"
	PyRT   Runtime = "python"
	NodeRT Runtime = "nodejs"
)

// Runtimes lists all runtime models.
var Runtimes = []Runtime{GoRT, PyRT, NodeRT}

// Buffer sizes for the server's RPC buffers.
const (
	RBufSize = 16 << 10
	WBufSize = 16 << 10
)

// Tunables of the runtime models, sized to reproduce the thesis's
// per-runtime cold/warm signatures at the scaled-down workload sizes.
const (
	goHeapInit     = 64 << 10 // Go runtime arena initialization
	goAllocPerReq  = 256      // per-request allocation
	pyInternedSize = 4 << 10  // interned-string seed block
	pyImportSpace  = 96 << 10 // lazy module import footprint (cold only)
	nodeSnapshot   = 16 << 10 // V8 snapshot deserialization at boot
)

// BuildServer assembles a complete container program for one vSwarm
// function: libc (per the image's flavor), the RPC library, the workload
// module, the runtime model, and main(reqCh, respCh).
//
// The handler contract is handler(reqPtr, reqLen, respPtr) -> respLen,
// where respPtr is a message buffer (rpc wire format).
func BuildServer(rt Runtime, flavor libc.Flavor, workload *ir.Module, handlerName string) (*ir.Module, error) {
	m := ir.NewModule(fmt.Sprintf("server-%s-%s", rt, handlerName))
	m.MergeShared(libc.Module(flavor))
	m.MergeShared(rpc.Module())
	m.MergeShared(workload)
	if m.Func(handlerName) == nil {
		return nil, fmt.Errorf("langrt: workload has no handler %q", handlerName)
	}
	m.AddGlobal(&ir.Global{Name: "srv_rbuf", Data: make([]byte, RBufSize)})
	m.AddGlobal(&ir.Global{Name: "srv_wbuf", Data: make([]byte, WBufSize)})
	m.AddGlobal(&ir.Global{Name: "srv_state", Data: make([]byte, 128)})

	addFrameworkPath(m)
	switch rt {
	case GoRT:
		buildGoRuntime(m, handlerName)
	case PyRT:
		if err := buildPyRuntime(m, handlerName, false); err != nil {
			return nil, err
		}
	case NodeRT:
		if err := buildPyRuntime(m, handlerName, true); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("langrt: unknown runtime %q", rt)
	}
	return m, nil
}

// Framework-path model: real serverless servers run each request through
// a deep code path (gRPC interceptors, HTTP/2 framing, protobuf
// reflection, logging) whose text footprint rivals the L1I capacity.
// Requests alternate between two interceptor chains — the "lukewarm"
// effect of §2.1: consecutive invocations cannot fully reuse front-end
// state, producing the warm-phase instruction misses of Fig. 4.9.
const (
	frameworkFns  = 40
	frameworkHalf = frameworkFns / 2
)

func addFrameworkPath(m *ir.Module) {
	m.AddGlobal(&ir.Global{Name: "rt_frame_data", Data: make([]byte, 8*frameworkFns)})
	for i := 0; i < frameworkFns; i++ {
		b := ir.NewFunc(fmt.Sprintf("rt_frame_%d", i), 1)
		v := b.Param(0)
		g := b.Global("rt_frame_data", int64(8*i))
		acc := b.Load(g, 0, 8)
		// Straight-line mixing with small per-function constants: unique
		// text, little work.
		for k := 0; k < 12; k++ {
			x := b.XorI(v, int64((i*37+k*11)%1024))
			x = b.AddI(x, int64((i*53+k*7)%512))
			sh := b.ShrI(x, int64(3+(k%5)))
			acc = b.Add(acc, b.Xor(x, sh))
		}
		b.Store(g, 0, acc, 8)
		b.Ret(acc)
		m.AddFunc(b.Build())
	}
	for half := 0; half < 2; half++ {
		b := ir.NewFunc(fmt.Sprintf("rt_frame_chain_%d", half), 1)
		v := b.Param(0)
		for i := half * frameworkHalf; i < (half+1)*frameworkHalf; i++ {
			v = b.Call(fmt.Sprintf("rt_frame_%d", i), v)
		}
		b.Ret(v)
		m.AddFunc(b.Build())
	}
	// rt_frame_chain(v): alternate chains per request (counter parity in
	// srv_state[48]).
	b := ir.NewFunc("rt_frame_chain", 1)
	v := b.Param(0)
	st := b.Global("srv_state", 0)
	cnt := b.Load(st, 48, 8)
	b.Store(st, 48, b.AddI(cnt, 1), 8)
	par := b.AndI(cnt, 1)
	odd, join := b.NewLabel("odd"), b.NewLabel("join")
	b.BrI(ir.Ne, par, 0, odd)
	b.CallV("rt_frame_chain_0", v)
	b.Jmp(join)
	b.Label(odd)
	b.CallV("rt_frame_chain_1", v)
	b.Label(join)
	b.Ret0()
	m.AddFunc(b.Build())
}

// sendReady emits the readiness handshake on the response channel.
func sendReady(b *ir.Builder, respCh ir.Reg) {
	wbuf := b.Global("srv_wbuf", 0)
	b.CallV("mbuf_reset", wbuf)
	b.CallV("mbuf_put_int", wbuf, b.Const(1))
	n := b.Call("mbuf_len", wbuf)
	b.EcallV(kernel.SysSend, respCh, wbuf, n)
}

// buildGoRuntime adds the Go runtime model: arena init at boot, then an
// AOT serve loop with per-request allocation and a GC poll.
func buildGoRuntime(m *ir.Module, handlerName string) {
	{ // go_rt_init: initialize heap arenas and scheduler structures.
		b := ir.NewFunc("go_rt_init", 0)
		heap := b.Ecall(kernel.SysSbrk, b.Const(goHeapInit))
		b.CallV("memset", heap, b.Const(0), b.Const(goHeapInit))
		st := b.Global("srv_state", 0)
		b.Store(st, 8, heap, 8)  // heap base
		b.Store(st, 16, heap, 8) // bump pointer
		b.Ret0()
		m.AddFunc(b.Build())
	}
	{ // go_alloc(n): bump allocation with wraparound, zeroing the object.
		b := ir.NewFunc("go_alloc", 1)
		n := b.Param(0)
		st := b.Global("srv_state", 0)
		base := b.Load(st, 8, 8)
		cur := b.Load(st, 16, 8)
		lim := b.AddI(base, goHeapInit-4096)
		nxt := b.Add(cur, n)
		ok := b.NewLabel("ok")
		b.Br(ir.Lt, nxt, lim, ok)
		b.MovInto(cur, base) // "GC": wrap the arena
		b.Label(ok)
		after := b.Add(cur, n)
		b.Store(st, 16, after, 8)
		b.CallV("memset", cur, b.Const(0), n)
		b.Ret(cur)
		m.AddFunc(b.Build())
	}
	{ // go_gc_poll: periodic mark assist touching live heap.
		b := ir.NewFunc("go_gc_poll", 0)
		st := b.Global("srv_state", 0)
		cnt := b.Load(st, 24, 8)
		cnt = b.AddI(cnt, 1)
		b.Store(st, 24, cnt, 8)
		masked := b.AndI(cnt, 31)
		skip := b.NewLabel("skip")
		b.BrI(ir.Ne, masked, 0, skip)
		heap := b.Load(st, 8, 8)
		b.CallV("fnv64", heap, b.Const(goHeapInit/2)) // mark scan
		b.Label(skip)
		b.Ret0()
		m.AddFunc(b.Build())
	}
	{ // main(reqCh, respCh)
		b := ir.NewFunc("main", 2)
		req, resp := b.Param(0), b.Param(1)
		b.CallV("go_rt_init")
		sendReady(b, resp)
		rbuf := b.Global("srv_rbuf", 0)
		wbuf := b.Global("srv_wbuf", 0)
		loop := b.NewLabel("serve")
		b.Label(loop)
		n := b.Ecall(kernel.SysRecv, req, rbuf, b.Const(RBufSize))
		b.CallV("rt_frame_chain", n)
		b.CallV("grpc_frame", rbuf)
		// Per-request allocation (request context, response object).
		b.CallV("go_alloc", b.Const(goAllocPerReq))
		b.CallV(handlerName, rbuf, n, wbuf)
		b.CallV("grpc_frame", wbuf)
		wn := b.Call("mbuf_len", wbuf)
		b.EcallV(kernel.SysSend, resp, wbuf, wn)
		b.CallV("go_gc_poll")
		b.Jmp(loop)
		m.AddFunc(b.Build())
	}
}

// buildPyRuntime adds the interpreted runtime: the VM, the bytecode-
// compiled handler, lazy import on the first request and — for the Node
// variant — the tiered JIT that switches to the AOT body after the first
// invocation.
func buildPyRuntime(m *ir.Module, handlerName string, jit bool) error {
	flat, err := ir.Inline(m, m.Func(handlerName))
	if err != nil {
		return fmt.Errorf("langrt: flatten %s: %w", handlerName, err)
	}
	bc, err := CompileBytecode(flat)
	if err != nil {
		return err
	}
	m.AddFunc(BuildVM(m))
	m.AddGlobal(&ir.Global{Name: "py_code", Data: bc.Code})
	m.AddGlobal(&ir.Global{Name: "py_regs", Data: make([]byte, bc.NRegs*8)})
	locals := bc.LocalsSize
	if locals < 8 {
		locals = 8
	}
	m.AddGlobal(&ir.Global{Name: "py_locals", Data: make([]byte, locals)})
	m.AddGlobal(&ir.Global{Name: "py_globtab", Data: make([]byte, 8*max(1, len(bc.Globals)))})
	m.AddGlobal(&ir.Global{Name: "py_interned", Data: seedBlock(pyInternedSize)})

	{ // py_globtab_init: resolve global addresses into the table.
		b := ir.NewFunc("py_globtab_init", 0)
		tab := b.Global("py_globtab", 0)
		for i, g := range bc.Globals {
			addr := b.Global(g, 0)
			b.Store(tab, int64(i*8), addr, 8)
		}
		b.Ret0()
		m.AddFunc(b.Build())
	}
	{ // py_rt_init: interpreter boot (interned strings, builtin dict).
		b := ir.NewFunc("py_rt_init", 0)
		heap := b.Ecall(kernel.SysSbrk, b.Const(32<<10))
		interned := b.Global("py_interned", 0)
		b.CallV("memcpy", heap, interned, b.Const(pyInternedSize))
		b.CallV("py_globtab_init")
		b.Ret0()
		m.AddFunc(b.Build())
	}
	{ // py_lazy_import: the cold first-request module import pass.
		b := ir.NewFunc("py_lazy_import", 0)
		st := b.Global("srv_state", 0)
		done := b.Load(st, 32, 8)
		out := b.NewLabel("done")
		b.BrI(ir.Ne, done, 0, out)
		b.Store(st, 32, b.Const(1), 8)
		space := b.Ecall(kernel.SysSbrk, b.Const(pyImportSpace))
		interned := b.Global("py_interned", 0)
		i := b.Const(0)
		loop, end := b.NewLabel("loop"), b.NewLabel("end")
		b.Label(loop)
		b.BrI(ir.Ge, i, pyImportSpace, end)
		dst := b.Add(space, i)
		b.CallV("memcpy", dst, interned, b.Const(4096))
		b.CallV("fnv64", dst, b.Const(512))
		b.AddIInto(i, i, 4096)
		b.Jmp(loop)
		b.Label(end)
		// Byte-compile: copy the code object into the heap cache.
		cache := b.Ecall(kernel.SysSbrk, b.Const(int64(len(bc.Code)+16)))
		code := b.Global("py_code", 0)
		b.CallV("memcpy", cache, code, b.Const(int64(len(bc.Code))))
		b.Label(out)
		b.Ret0()
		m.AddFunc(b.Build())
	}
	if jit {
		flat.Name = "handler_jit"
		m.AddFunc(flat)
		{ // node_jit_compile: one pass over the bytecode emitting "code".
			b := ir.NewFunc("node_jit_compile", 0)
			cc := b.Ecall(kernel.SysSbrk, b.Const(int64(len(bc.Code)*2+64)))
			code := b.Global("py_code", 0)
			i := b.Const(0)
			loop, end := b.NewLabel("loop"), b.NewLabel("end")
			b.Label(loop)
			b.BrI(ir.Ge, i, int64(bc.NInsns), end)
			off := b.ShlI(i, 4)
			src := b.Add(code, off)
			h := b.Call("fnv64", src, b.Const(16))
			dst := b.Add(cc, b.ShlI(i, 5))
			b.Store(dst, 0, h, 8)
			w := b.Load(src, 8, 8)
			b.Store(dst, 8, w, 8)
			b.AddIInto(i, i, 1)
			b.Jmp(loop)
			b.Label(end)
			b.Ret0()
			m.AddFunc(b.Build())
		}
		m.AddGlobal(&ir.Global{Name: "node_snapshot", Data: seedBlock(nodeSnapshot)})
	}

	// main(reqCh, respCh)
	b := ir.NewFunc("main", 2)
	req, resp := b.Param(0), b.Param(1)
	if jit {
		// V8 boot: deserialize the snapshot.
		heap := b.Ecall(kernel.SysSbrk, b.Const(nodeSnapshot))
		snap := b.Global("node_snapshot", 0)
		b.CallV("memcpy", heap, snap, b.Const(nodeSnapshot))
		b.CallV("py_globtab_init")
	} else {
		b.CallV("py_rt_init")
	}
	sendReady(b, resp)
	rbuf := b.Global("srv_rbuf", 0)
	wbuf := b.Global("srv_wbuf", 0)
	st := b.Global("srv_state", 0)
	loop := b.NewLabel("serve")
	b.Label(loop)
	n := b.Ecall(kernel.SysRecv, req, rbuf, b.Const(RBufSize))
	if !jit {
		b.CallV("py_lazy_import")
	}
	b.CallV("rt_frame_chain", n)
	b.CallV("grpc_frame", rbuf)
	if jit {
		ncalls := b.Load(st, 40, 8)
		b.Store(st, 40, b.AddI(ncalls, 1), 8)
		hot, join := b.NewLabel("hot"), b.NewLabel("join")
		b.BrI(ir.Ne, ncalls, 0, hot)
		// Tier 0: interpret, then compile.
		emitVMCallN(b, n, bc.NInsns)
		b.CallV("node_jit_compile")
		b.Jmp(join)
		b.Label(hot)
		b.CallV("handler_jit", rbuf, n, wbuf)
		b.Label(join)
	} else {
		emitVMCallN(b, n, bc.NInsns)
	}
	b.CallV("grpc_frame", wbuf)
	wn := b.Call("mbuf_len", wbuf)
	b.EcallV(kernel.SysSend, resp, wbuf, wn)
	b.Jmp(loop)
	m.AddFunc(b.Build())
	return nil
}

// emitVMCallN sets up VM registers 0..2 (the handler parameters) and runs
// the interpreter over the compiled bytecode.
func emitVMCallN(b *ir.Builder, reqLen ir.Reg, nInsns int) {
	regs := b.Global("py_regs", 0)
	rbuf := b.Global("srv_rbuf", 0)
	wbuf := b.Global("srv_wbuf", 0)
	b.Store(regs, 0, rbuf, 8)
	b.Store(regs, 8, reqLen, 8)
	b.Store(regs, 16, wbuf, 8)
	code := b.Global("py_code", 0)
	locals := b.Global("py_locals", 0)
	globtab := b.Global("py_globtab", 0)
	b.CallV("py_vm", code, b.Const(int64(nInsns)), regs, locals, globtab)
}

func seedBlock(n int) []byte {
	d := make([]byte, n)
	x := uint32(0x9E3779B9)
	for i := range d {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		d[i] = byte(x)
	}
	return d
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
