// Command scalebench runs the cluster-autoscaling policy × RPS sweep
// serially and in parallel and writes the comparison plus every cell's
// headline metrics as JSON (BENCH_scale.json). Every cell's summary
// table, stats text and trace JSON are asserted byte-identical across
// both runs first — a speedup that changed an SLO number would be
// meaningless.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"svbench/internal/autoscale"
	"svbench/internal/benchutil"
	"svbench/internal/gemsys"
	"svbench/internal/harness"
	"svbench/internal/isa"
	"svbench/internal/loadgen"
	"svbench/internal/sweep"
)

type cell struct {
	Policy        string    `json:"policy"`
	RPS           float64   `json:"rps"`
	Invocations   int       `json:"invocations"`
	SLOAttainment float64   `json:"slo_attainment"`
	ColdAmp       float64   `json:"cold_amplification"`
	ChurnColdRate float64   `json:"churn_cold_rate"`
	PeakInstances uint64    `json:"peak_instances"`
	MaxQueueDepth uint64    `json:"max_queue_depth"`
	P99LatencyUS  float64   `json:"p99_latency_us"`
	MeanUtil      float64   `json:"mean_utilization"`
	NodeUtil      []float64 `json:"node_utilization"`
}

type report struct {
	Date       string  `json:"date"`
	HostCPUs   int     `json:"host_cpus"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Matrix     string  `json:"matrix"`
	Points     int     `json:"points"`
	JobsBefore int     `json:"jobs_before"`
	JobsAfter  int     `json:"jobs_after"`
	SecBefore  float64 `json:"seconds_before"`
	SecAfter   float64 `json:"seconds_after"`
	Speedup    float64 `json:"speedup"`
	Identical  bool    `json:"reports_identical"`
	Cells      []cell  `json:"cells"`
}

// arrivalsPerCell keeps cell cost flat across the rate grid: each RPS
// point's window is sized to replay about this many invocations.
const arrivalsPerCell = 40

// points is the benchmarked sweep: the full policy catalog crossed with
// the figure's arrival-rate grid on the default 4-node cluster, bursty
// arrivals, keep-alive well under the batch gaps.
func points(seed uint64) []autoscale.Config {
	var spec harness.Spec
	for _, sp := range harness.StandaloneSpecs() {
		if sp.Name == "fibonacci-go" {
			spec = sp
		}
	}
	base := autoscale.Config{
		Cfg:       gemsys.DefaultConfig(isa.RV64),
		Spec:      spec,
		Seed:      seed,
		Arrival:   loadgen.Bursty,
		Burst:     8,
		KeepAlive: 2_000_000,
	}
	var cfgs []autoscale.Config
	for _, pol := range autoscale.Policies() {
		for _, rps := range []float64{500, 2000, 8000, 20000} {
			c := base
			c.Policy = pol
			c.RPS = rps
			c.Duration = uint64(arrivalsPerCell * 1e9 / rps)
			cfgs = append(cfgs, c)
		}
	}
	return cfgs
}

func main() {
	var (
		out     = flag.String("out", "BENCH_scale.json", "output JSON file")
		jobs    = flag.Int("j", sweep.DefaultJobs(), "parallel worker count for the after run")
		seed    = flag.Uint64("seed", 7, "arrival-process seed")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if err := sweep.ValidateJobs(*jobs); err != nil {
		fmt.Fprintln(os.Stderr, "scalebench: -j:", err)
		os.Exit(2)
	}
	stopProf, err := benchutil.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scalebench:", err)
		os.Exit(2)
	}

	run := func(j int) ([]*autoscale.Report, float64) {
		t0 := time.Now()
		reps, errs := autoscale.RunMany(points(*seed), j)
		dt := time.Since(t0).Seconds()
		for i, err := range errs {
			if err != nil {
				fmt.Fprintf(os.Stderr, "scalebench: cell %d: %v\n", i, err)
				os.Exit(1)
			}
		}
		return reps, dt
	}

	fmt.Fprintf(os.Stderr, "scalebench: serial sweep (-j 1)...\n")
	before, secBefore := run(1)
	fmt.Fprintf(os.Stderr, "scalebench: %.2fs; parallel sweep (-j %d)...\n", secBefore, *jobs)
	after, secAfter := run(*jobs)

	identical := true
	for i := range before {
		if before[i].Table() != after[i].Table() ||
			before[i].StatsText != after[i].StatsText ||
			!bytes.Equal(before[i].TraceJSON, after[i].TraceJSON) {
			identical = false
			fmt.Fprintf(os.Stderr, "scalebench: cell %d DIFFERS between -j 1 and -j %d\n", i, *jobs)
		}
	}

	rep := report{
		Date:       time.Now().UTC().Format("2006-01-02"),
		HostCPUs:   runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Matrix:     "fibonacci-go rv64, policies {fixed-cap,concurrency,scale-to-zero,panic} × rps {500,2000,8000,20000}, bursty(8)",
		Points:     len(before),
		JobsBefore: 1,
		JobsAfter:  *jobs,
		SecBefore:  secBefore,
		SecAfter:   secAfter,
		Speedup:    secBefore / secAfter,
		Identical:  identical,
	}
	for _, r := range before {
		nodeUtil := make([]float64, len(r.Nodes))
		for n := range r.Nodes {
			nodeUtil[n] = r.Nodes[n].Utilization
		}
		rep.Cells = append(rep.Cells, cell{
			Policy:        r.Cfg.ScalePolicy().Name(),
			RPS:           r.Cfg.RPS,
			Invocations:   len(r.Invocations),
			SLOAttainment: r.SLOAttainment,
			ColdAmp:       r.ColdAmplification,
			ChurnColdRate: r.ChurnColdRate,
			PeakInstances: r.PeakInstances,
			MaxQueueDepth: r.MaxQueueDepth,
			P99LatencyUS:  float64(r.Latency.P99) / 1e3,
			MeanUtil:      r.MeanUtilization,
			NodeUtil:      nodeUtil,
		})
	}
	js, _ := json.MarshalIndent(rep, "", "  ")
	js = append(js, '\n')
	if err := os.WriteFile(*out, js, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "scalebench:", err)
		os.Exit(1)
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "scalebench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "scalebench: %.2fs -> %.2fs (%.2fx), identical=%v, %s\n",
		secBefore, secAfter, rep.Speedup, rep.Identical, *out)
	if !rep.Identical {
		os.Exit(1)
	}
}
