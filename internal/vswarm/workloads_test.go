package vswarm_test

import (
	"bytes"
	"crypto/aes"
	"testing"

	"svbench/internal/harness"
	"svbench/internal/ir"
	"svbench/internal/isa"
	"svbench/internal/langrt"
	"svbench/internal/rpc"
	"svbench/internal/vswarm"
)

func build(f func() *ir.Module) func(*harness.Env) (*ir.Module, error) {
	return func(*harness.Env) (*ir.Module, error) { return f(), nil }
}

func runWorkload(t *testing.T, name string, rt langrt.Runtime, f func() *ir.Module, req []byte) *rpc.Reader {
	t.Helper()
	res, err := harness.Run(isa.RV64, harness.Spec{
		Name: name, Runtime: rt, Build: build(f),
		Request: func() []byte { return req },
	})
	if err != nil {
		t.Fatal(err)
	}
	return rpc.NewReader(res.Response)
}

// TestAESPayloadSweepAgainstCryptoAES verifies the simulated cipher across
// payload sizes, including the non-multiple-of-16 truncation path.
func TestAESPayloadSweepAgainstCryptoAES(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	c, err := aes.NewCipher(vswarm.AESKey())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{16, 48, 100, 240} {
		r := runWorkload(t, "aes-sweep", langrt.GoRT, vswarm.AES, vswarm.AESRequest(n))
		got, err := r.Bytes()
		if err != nil {
			t.Fatal(err)
		}
		blocks := n &^ 15
		payload := vswarm.AESPayload(n)
		want := make([]byte, blocks)
		for off := 0; off+16 <= blocks; off += 16 {
			c.Encrypt(want[off:off+16], payload[off:off+16])
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("n=%d: cipher mismatch", n)
		}
	}
}

func TestCatalogSearchSemantics(t *testing.T) {
	// "watch" matches watch-auto, watch-quartz; "zzz" matches nothing.
	r := runWorkload(t, "catalog-hit", langrt.GoRT, vswarm.ProductCatalog, vswarm.CatalogRequest("watch"))
	n, err := r.Int()
	if err != nil || n != 2 {
		t.Fatalf("watch matches = %d (err %v), want 2", n, err)
	}
	id, _ := r.Int()
	price, _ := r.Int()
	if id < 1000 || price == 0 {
		t.Fatalf("id=%d price=%d", id, price)
	}
	r2 := runWorkload(t, "catalog-miss", langrt.GoRT, vswarm.ProductCatalog, vswarm.CatalogRequest("zzz"))
	if n, _ := r2.Int(); n != 0 {
		t.Fatalf("zzz matches = %d", n)
	}
}

func TestShippingQuoteMirrorsReference(t *testing.T) {
	// Reference computation mirroring the handler's tariff formula.
	items := [][2]int{{0, 2}, {3, 1}}
	zip := 94107
	grams := uint64(120+0*55)*2 + uint64(120+3*55)*1
	zone := uint64(zip % 9)
	dist := (zone + 1) * 173
	perKg := dist*3 + 499
	kg100 := grams * 100 / 1000
	want := kg100*perKg/100 + 299

	r := runWorkload(t, "shipping-ref", langrt.GoRT, vswarm.Shipping, vswarm.ShippingRequest(zip, items))
	got, err := r.Int()
	if err != nil || got != want {
		t.Fatalf("quote = %d (err %v), want %d", got, err, want)
	}
}

func TestEmailRendersNameAndOrder(t *testing.T) {
	r := runWorkload(t, "email-render", langrt.PyRT, vswarm.Email, vswarm.EmailRequest("Grace", 12345))
	body, err := r.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(body, []byte("Hello Grace!")) {
		t.Fatalf("greeting missing: %q", body[:32])
	}
	if !bytes.Contains(body, []byte("order #12345 has shipped")) {
		t.Fatalf("order number missing: %q", body)
	}
}

func TestPaymentRejectsInvalidLuhn(t *testing.T) {
	r := runWorkload(t, "payment-bad", langrt.NodeRT, vswarm.Payment,
		vswarm.PaymentRequest("4242424242424241", 100))
	ok, err := r.Int()
	if err != nil {
		t.Fatal(err)
	}
	if ok != 0 {
		t.Fatal("Luhn-invalid card accepted")
	}
}

func TestCurrencyIdentityConversion(t *testing.T) {
	r := runWorkload(t, "currency-id", langrt.NodeRT, vswarm.Currency,
		vswarm.CurrencyRequest(987654, 3, 3))
	v, err := r.Int()
	if err != nil || v != 987654 {
		t.Fatalf("identity conversion = %d (err %v)", v, err)
	}
}

func TestRecommendationDeterministicTopK(t *testing.T) {
	r1 := runWorkload(t, "rec-1", langrt.PyRT, vswarm.Recommendation, vswarm.RecommendationRequest(7, 3))
	r2 := runWorkload(t, "rec-2", langrt.PyRT, vswarm.Recommendation, vswarm.RecommendationRequest(7, 3))
	read := func(r *rpc.Reader) []uint64 {
		n, _ := r.Int()
		out := make([]uint64, n)
		for i := range out {
			out[i], _ = r.Int()
		}
		return out
	}
	a, b := read(r1), read(r2)
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("lengths %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("recommendations nondeterministic")
		}
	}
	if a[0] == a[1] || a[1] == a[2] {
		t.Fatal("duplicate recommendations")
	}
}

func TestHotelUserRejectsBadPassword(t *testing.T) {
	res, err := harness.Run(isa.RV64, func() harness.Spec {
		s := harness.HotelSpec("user", harness.EngineCassandra)
		s.Request = func() []byte { return vswarm.UserRequest(2, false) }
		s.Check = nil
		return s
	}())
	if err != nil {
		t.Fatal(err)
	}
	r := rpc.NewReader(res.Response)
	ok, err := r.Int()
	if err != nil {
		t.Fatal(err)
	}
	if ok != 0 {
		t.Fatal("wrong password accepted")
	}
}

func TestHotelReservationFillsUp(t *testing.T) {
	// Hotel 0 has capacity 40 and i%7=0 booked; requesting 41 rooms must
	// be rejected while a small booking succeeds (covered by the spec).
	s := harness.HotelSpec("reservation", harness.EngineCassandra)
	s.Request = func() []byte { return vswarm.ReservationRequest(0, 1, 2, 41) }
	s.Check = nil
	res, err := harness.Run(isa.RV64, s)
	if err != nil {
		t.Fatal(err)
	}
	r := rpc.NewReader(res.Response)
	ok, err := r.Int()
	if err != nil {
		t.Fatal(err)
	}
	if ok != 0 {
		t.Fatal("overbooking accepted")
	}
}

func TestGeoReturnsNearestFirst(t *testing.T) {
	s := harness.HotelSpec("geo", harness.EngineCassandra)
	lat, lon := vswarm.HotelGeo(7)
	s.Request = func() []byte { return vswarm.GeoRequest(lat, lon) }
	s.Check = nil
	res, err := harness.Run(isa.RV64, s)
	if err != nil {
		t.Fatal(err)
	}
	r := rpc.NewReader(res.Response)
	n, _ := r.Int()
	if n != 5 {
		t.Fatalf("count %d", n)
	}
	first, _ := r.Int()
	if first != vswarm.HotelID(7) {
		t.Fatalf("nearest = %d, want %d", first, vswarm.HotelID(7))
	}
}
