package trace

import (
	"encoding/json"
	"fmt"
)

// chromeEvent is one trace_event record of the Chrome/Perfetto JSON
// format (the "JSON Array Format" every Chromium-derived trace viewer
// loads). Virtual cycles are exported through the "ts" microsecond field
// one-to-one: one simulated cycle renders as one viewer microsecond.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   uint64            `json:"ts"`
	Dur  uint64            `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	OtherData       struct {
		Clock   string `json:"clock"`
		Dropped uint64 `json:"droppedEvents"`
	} `json:"otherData"`
}

// Functional-side events (context switch, fault injection) are placed on
// per-core "functional" tracks offset from the cycle-accurate ones, since
// their timestamps come from the machine's functional clock. Load-engine
// events get their own track space: one arrivals track plus one track per
// instance (the event's Core byte).
const (
	functionalTidBase = 100
	scenarioTid       = 198
	loadArrivalTid    = 199
	loadInstTidBase   = 200
	// Cluster-fabric track space: one request track plus one network track
	// per machine (the event's Core byte).
	clusterReqTid  = 460
	clusterNetBase = 500
	// Autoscaler decisions (scale-up/scale-down/panic transitions) share
	// one track above the load-instance space.
	autoscaleTid = 459
)

func tidFor(ev Event) int {
	switch ev.Kind {
	case EvCtxSwitch, EvFault:
		return functionalTidBase + int(ev.Core)
	case EvScenarioWindow, EvScenarioRecover:
		return scenarioTid
	case EvInvokeArrive, EvInvokeDone, EvInvokeRetry, EvInvokeFail:
		return loadArrivalTid
	case EvInvokeRun, EvColdStart, EvInstReclaim:
		return loadInstTidBase + int(ev.Core)
	case EvScaleUp, EvScaleDown, EvPanicMode:
		return autoscaleTid
	case EvClusterArrive, EvClusterDone:
		return clusterReqTid
	case EvNetSend, EvNetDeliver:
		return clusterNetBase + int(ev.Core)
	}
	return int(ev.Core)
}

// ChromeJSON renders events into Chrome trace_event JSON loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing. syms, when non-nil,
// annotates instruction and syscall events with the containing function.
// dropped reports ring overwrites so truncation is visible in the viewer.
// The output is deterministic: same events, same bytes.
func ChromeJSON(events []Event, syms *SymTable, dropped uint64) ([]byte, error) {
	tr := chromeTrace{DisplayTimeUnit: "ns", TraceEvents: []chromeEvent{}}
	tr.OtherData.Clock = "virtual-cycles (1 ts = 1 cycle)"
	tr.OtherData.Dropped = dropped

	// Track-naming metadata: one row per core plus functional tracks.
	seenTid := map[int]bool{}
	addMeta := func(tid int) {
		if seenTid[tid] {
			return
		}
		seenTid[tid] = true
		name := fmt.Sprintf("core%d (cycles)", tid)
		switch {
		case tid == loadArrivalTid:
			name = "load arrivals"
		case tid == scenarioTid:
			name = "scenario (chaos windows)"
		case tid == clusterReqTid:
			name = "cluster requests"
		case tid == autoscaleTid:
			name = "autoscaler (scale events)"
		case tid >= clusterNetBase:
			name = fmt.Sprintf("machine%d (network)", tid-clusterNetBase)
		case tid >= loadInstTidBase && tid < clusterReqTid:
			name = fmt.Sprintf("instance%d (load)", tid-loadInstTidBase)
		case tid >= functionalTidBase:
			name = fmt.Sprintf("core%d (functional)", tid-functionalTidBase)
		}
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: tid,
			Args: map[string]string{"name": name},
		})
	}

	for _, ev := range events {
		tid := tidFor(ev)
		addMeta(tid)
		ce := chromeEvent{
			Name: ev.Kind.String(),
			Cat:  "sim",
			Ts:   ev.Cycle,
			Pid:  0,
			Tid:  tid,
		}
		args := map[string]string{}
		if ev.PC != 0 {
			args["pc"] = fmt.Sprintf("0x%x", ev.PC)
			if _, fn := syms.Resolve(ev.PC); fn != "" {
				args["fn"] = fn
			}
		}
		switch ev.Kind {
		case EvInstRetire:
			ce.Ph = "i"
			ce.S = "t"
			args["class"] = fmt.Sprintf("%d", ev.Arg)
		case EvCacheMiss, EvTLBMiss:
			ce.Ph = "i"
			ce.S = "t"
			ce.Name = missName(ev.Kind, ev.Arg)
			args["addr"] = fmt.Sprintf("0x%x", ev.Arg2)
		case EvBranchMiss:
			ce.Ph = "i"
			ce.S = "t"
		case EvSyscallEnter:
			ce.Ph = "B"
			ce.Name = "syscall"
		case EvSyscallExit:
			ce.Ph = "E"
			ce.Name = "syscall"
		case EvIPCSend, EvIPCRecv:
			ce.Ph = "i"
			ce.S = "p"
			args["seq"] = fmt.Sprintf("%d", ev.Arg)
		case EvCtxSwitch:
			ce.Ph = "i"
			ce.S = "t"
			args["proc"] = fmt.Sprintf("%d", ev.Arg)
		case EvFault:
			ce.Ph = "i"
			ce.S = "g"
			args["event"] = fmt.Sprintf("%d", ev.Arg)
		case EvM5Reset, EvM5Dump:
			ce.Ph = "i"
			ce.S = "g"
		case EvInvokeArrive:
			ce.Ph = "i"
			ce.S = "p"
			args["invocation"] = fmt.Sprintf("%d", ev.Arg)
		case EvInvokeRun:
			// Complete ("X") span: the invocation occupying its instance.
			ce.Ph = "X"
			ce.Name = "invoke"
			ce.Dur = ev.Arg2
			args["invocation"] = fmt.Sprintf("%d", ev.Arg)
		case EvInvokeDone:
			ce.Ph = "i"
			ce.S = "p"
			args["invocation"] = fmt.Sprintf("%d", ev.Arg)
			args["latency_ns"] = fmt.Sprintf("%d", ev.Arg2)
		case EvColdStart:
			ce.Ph = "X"
			ce.Dur = ev.Arg2
			args["instance"] = fmt.Sprintf("%d", ev.Arg)
		case EvInstReclaim:
			ce.Ph = "i"
			ce.S = "t"
			args["instance"] = fmt.Sprintf("%d", ev.Arg)
		case EvInvokeRetry:
			ce.Ph = "i"
			ce.S = "p"
			args["invocation"] = fmt.Sprintf("%d", ev.Arg)
			args["attempt"] = fmt.Sprintf("%d", ev.Arg2)
		case EvInvokeFail:
			ce.Ph = "i"
			ce.S = "g"
			args["invocation"] = fmt.Sprintf("%d", ev.Arg)
			args["attempts"] = fmt.Sprintf("%d", ev.Arg2)
		case EvScenarioWindow:
			// Complete ("X") span covering the whole fault window.
			ce.Ph = "X"
			ce.Name = "fault-window"
			ce.Dur = ev.Arg2
			args["phase"] = fmt.Sprintf("%d", ev.Arg)
		case EvScenarioRecover:
			ce.Ph = "i"
			ce.S = "g"
			args["recovery_ns"] = fmt.Sprintf("%d", ev.Arg2)
		case EvNetSend:
			ce.Ph = "i"
			ce.S = "p"
			args["msg"] = fmt.Sprintf("%d", ev.Arg)
			args["bytes"] = fmt.Sprintf("%d", ev.Arg2)
		case EvNetDeliver:
			ce.Ph = "i"
			ce.S = "p"
			args["msg"] = fmt.Sprintf("%d", ev.Arg)
			args["net_ns"] = fmt.Sprintf("%d", ev.Arg2)
		case EvClusterArrive:
			ce.Ph = "i"
			ce.S = "p"
			args["request"] = fmt.Sprintf("%d", ev.Arg)
		case EvClusterDone:
			ce.Ph = "i"
			ce.S = "p"
			args["request"] = fmt.Sprintf("%d", ev.Arg)
			args["latency_ns"] = fmt.Sprintf("%d", ev.Arg2)
		case EvScaleUp, EvScaleDown:
			ce.Ph = "i"
			ce.S = "t"
			args["instance"] = fmt.Sprintf("%d", ev.Arg)
			args["node"] = fmt.Sprintf("%d", ev.Arg2)
		case EvPanicMode:
			ce.Ph = "i"
			ce.S = "g"
			if ev.Arg == 1 {
				ce.Name = "panic-enter"
			} else {
				ce.Name = "panic-exit"
			}
		default:
			ce.Ph = "i"
			ce.S = "t"
		}
		if len(args) > 0 {
			ce.Args = args
		}
		tr.TraceEvents = append(tr.TraceEvents, ce)
	}
	return json.Marshal(tr)
}

func missName(k Kind, lvl uint64) string {
	switch lvl {
	case LvlL1I:
		return "l1i-miss"
	case LvlL1D:
		return "l1d-miss"
	case LvlL2:
		return "l2-miss"
	case LvlITLB:
		return "itlb-miss"
	case LvlDTLB:
		return "dtlb-miss"
	}
	return k.String()
}
