// Package cpu implements the simulated CPU models, mirroring the gem5
// models the thesis uses: a detailed out-of-order timing model (the
// DerivO3CPU stand-in) driven by the functional cores' instruction traces,
// an atomic 1-CPI model used for setup/boot, and a KVM-style fast-forward
// model (including its documented instability).
package cpu

import "svbench/internal/isa"

// BPredConfig sizes the branch prediction structures.
type BPredConfig struct {
	BimodalEntries int // direction predictor, 2-bit counters
	BTBEntries     int
	RASEntries     int
}

// DefaultBPredConfig returns a modest front end matching the thesis's
// out-of-order core.
func DefaultBPredConfig() BPredConfig {
	return BPredConfig{BimodalEntries: 4096, BTBEntries: 1024, RASEntries: 16}
}

type btbEntry struct {
	tag    uint64
	target uint64
	valid  bool
}

// BPred is a bimodal direction predictor with a direct-mapped BTB and a
// return address stack.
type BPred struct {
	cfg      BPredConfig
	counters []uint8
	btb      []btbEntry
	ras      []uint64
	rasTop   int

	Lookups     uint64
	Mispredicts uint64
}

// NewBPred builds a predictor.
func NewBPred(cfg BPredConfig) *BPred {
	if cfg.BimodalEntries == 0 {
		cfg = DefaultBPredConfig()
	}
	b := &BPred{
		cfg:      cfg,
		counters: make([]uint8, cfg.BimodalEntries),
		btb:      make([]btbEntry, cfg.BTBEntries),
		ras:      make([]uint64, cfg.RASEntries),
	}
	for i := range b.counters {
		b.counters[i] = 1 // weakly not-taken
	}
	return b
}

// Flush clears all prediction state (cold front end after restore).
func (b *BPred) Flush() {
	for i := range b.counters {
		b.counters[i] = 1
	}
	for i := range b.btb {
		b.btb[i] = btbEntry{}
	}
	b.rasTop = 0
}

// ResetStats zeroes counters.
func (b *BPred) ResetStats() { b.Lookups, b.Mispredicts = 0, 0 }

func (b *BPred) bimodalIdx(pc uint64) int {
	return int((pc >> 1) % uint64(len(b.counters)))
}

func (b *BPred) btbIdx(pc uint64) int {
	return int((pc >> 1) % uint64(len(b.btb)))
}

// Mispredicted consults and updates the predictor for a control-flow trace
// record, reporting whether the front end would have mispredicted.
func (b *BPred) Mispredicted(rec *isa.TraceRec) bool {
	b.Lookups++
	miss := b.observe(rec)
	if miss {
		b.Mispredicts++
	}
	return miss
}

// Warm trains the predictor on a control-flow record without counting the
// lookup or any misprediction: the functional-warming flavour of
// Mispredicted, used while fast-forwarding between detailed sample windows.
func (b *BPred) Warm(rec *isa.TraceRec) { b.observe(rec) }

// observe applies the predictor's state update for rec (counters, BTB,
// RAS) and reports whether the prediction would have missed. It touches no
// statistics.
func (b *BPred) observe(rec *isa.TraceRec) bool {
	miss := false
	switch rec.Class {
	case isa.ClassBranch:
		idx := b.bimodalIdx(rec.PC)
		predTaken := b.counters[idx] >= 2
		if predTaken != rec.Taken {
			miss = true
		} else if rec.Taken {
			e := &b.btb[b.btbIdx(rec.PC)]
			if !e.valid || e.tag != rec.PC || e.target != rec.Target {
				miss = true
			}
		}
		// Update direction counter.
		if rec.Taken {
			if b.counters[idx] < 3 {
				b.counters[idx]++
			}
			b.btb[b.btbIdx(rec.PC)] = btbEntry{tag: rec.PC, target: rec.Target, valid: true}
		} else if b.counters[idx] > 0 {
			b.counters[idx]--
		}
	case isa.ClassJump:
		e := &b.btb[b.btbIdx(rec.PC)]
		if !e.valid || e.tag != rec.PC || e.target != rec.Target {
			miss = true
		}
		b.btb[b.btbIdx(rec.PC)] = btbEntry{tag: rec.PC, target: rec.Target, valid: true}
	case isa.ClassCall:
		e := &b.btb[b.btbIdx(rec.PC)]
		if !e.valid || e.tag != rec.PC || e.target != rec.Target {
			miss = true
		}
		b.btb[b.btbIdx(rec.PC)] = btbEntry{tag: rec.PC, target: rec.Target, valid: true}
		// Push the return address.
		b.ras[b.rasTop%len(b.ras)] = rec.PC + uint64(rec.Size)
		b.rasTop++
	case isa.ClassRet:
		if b.rasTop > 0 {
			b.rasTop--
			if b.ras[b.rasTop%len(b.ras)] != rec.Target {
				miss = true
			}
		} else {
			miss = true
		}
	default:
		return false
	}
	return miss
}
