package autoscale

import (
	"bytes"
	"testing"

	"svbench/internal/gemsys"
	"svbench/internal/harness"
	"svbench/internal/isa"
	"svbench/internal/loadgen"
)

func specByName(t *testing.T, name string) harness.Spec {
	t.Helper()
	for _, sp := range harness.AllSpecs() {
		if sp.Name == name {
			return sp
		}
	}
	t.Fatalf("no spec %q in catalog", name)
	return harness.Spec{}
}

// testConfig is the baseline autoscale point: fibonacci-go on rv64 at
// 2000 rps over a 20 ms window under the concurrency-target policy.
func testConfig(t *testing.T) Config {
	return Config{
		Cfg:       gemsys.DefaultConfig(isa.RV64),
		Spec:      specByName(t, "fibonacci-go"),
		RPS:       2000,
		Duration:  20_000_000,
		Seed:      7,
		KeepAlive: 10_000_000,
	}
}

func TestRunBasics(t *testing.T) {
	rep, err := Run(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Invocations) == 0 {
		t.Fatal("no invocations")
	}
	for i := range rep.Invocations {
		iv := &rep.Invocations[i]
		if iv.Done < iv.Start || iv.Start < iv.Arrive {
			t.Fatalf("invocation %d time-travels: arrive %d start %d done %d", i, iv.Arrive, iv.Start, iv.Done)
		}
		if iv.Latency != iv.Wait+iv.Service {
			t.Fatalf("invocation %d: latency %d != wait %d + service %d", i, iv.Latency, iv.Wait, iv.Service)
		}
		if iv.Node < 0 || iv.Node >= len(rep.Nodes) {
			t.Fatalf("invocation %d served on out-of-range node %d", i, iv.Node)
		}
	}
	if rep.ScaleUps == 0 || rep.PeakInstances == 0 {
		t.Fatalf("autoscaler never scaled up: %d ups, peak %d", rep.ScaleUps, rep.PeakInstances)
	}
	if rep.PeakInstances > uint64(rep.Cfg.Capacity()) {
		t.Fatalf("peak %d exceeds cluster capacity %d", rep.PeakInstances, rep.Cfg.Capacity())
	}
	var placed, busy uint64
	for _, n := range rep.Nodes {
		placed += n.Placed
		busy += n.BusyNS
	}
	if placed != rep.ScaleUps {
		t.Fatalf("node placements %d != scale-ups %d", placed, rep.ScaleUps)
	}
	if busy == 0 || rep.MeanUtilization <= 0 {
		t.Fatal("no node busy time accounted")
	}
	if rep.SLOAttainment < 0 || rep.SLOAttainment > 1 {
		t.Fatalf("SLO attainment %g out of range", rep.SLOAttainment)
	}
	t.Logf("\n%s", rep.Table())
}

// TestScaleToZeroThenBurst pins cold-start amplification under
// scale-to-zero: a long arrival gap past the keep-alive lease must shed
// every instance, and the burst after the gap pays fresh cold starts
// (churn) instead of finding a warm fleet.
func TestScaleToZeroThenBurst(t *testing.T) {
	cfg := testConfig(t)
	cfg.Policy = Concurrency{Label: "scale-to-zero", Target: DefaultTarget, Min: 0}
	cfg.KeepAlive = 2_000_000
	// Batches separated by silences much longer than the lease: the
	// bursty process emits simultaneous batches, and the window is wide
	// enough (mean batch gap 10 ms vs a 2 ms lease) for several.
	cfg.Arrival = loadgen.Bursty
	cfg.Burst = 8
	cfg.RPS = 800
	cfg.Duration = 80_000_000
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ScaleDowns == 0 {
		t.Fatalf("scale-to-zero never reclaimed an instance (%d ups)", rep.ScaleUps)
	}
	if rep.ChurnColdStarts == 0 {
		t.Fatal("refill after scale-to-zero booked no churn cold starts")
	}
	if rep.ScaleUps <= rep.PeakInstances {
		t.Fatalf("cold amplification not visible: %d ups vs peak %d", rep.ScaleUps, rep.PeakInstances)
	}
	if rep.ColdAmplification <= 1 {
		t.Fatalf("ColdAmplification = %g, want > 1 under churn", rep.ColdAmplification)
	}
}

// TestPanicHysteresis drives the panic scaler directly through a demand
// spike and pins entry at the 2× threshold, the no-scale-down floor
// while panicking, and exit only after the full calm window.
func TestPanicHysteresis(t *testing.T) {
	s := Panic{Target: 2, Min: 1, ExitTicks: 3}.New()
	p := s.(Panicker)

	// Calm: demand 2 against 1 ready instance stays stable-mode.
	if d := s.Desired(Observation{Ready: 1, Busy: 1, Queued: 1}); d != 1 || p.InPanic() {
		t.Fatalf("calm tick: desired %d inPanic %v", d, p.InPanic())
	}
	// Spike: demand 8 >= 2 × (target 2 × ready 1) → panic, one instance
	// per in-flight invocation.
	if d := s.Desired(Observation{Ready: 1, Busy: 1, Queued: 7}); d != 8 || !p.InPanic() {
		t.Fatalf("spike tick: desired %d inPanic %v", d, p.InPanic())
	}
	// Demand fades, but panic holds the floor: no scale-down yet.
	for i := 0; i < 2; i++ {
		if d := s.Desired(Observation{Ready: 8, Busy: 1, Queued: 0}); d != 8 || !p.InPanic() {
			t.Fatalf("calm tick %d during panic: desired %d inPanic %v", i+1, d, p.InPanic())
		}
	}
	// Third consecutive calm tick completes the window: panic exits and
	// the stable desire applies again.
	if d := s.Desired(Observation{Ready: 8, Busy: 1, Queued: 0}); d != 1 || p.InPanic() {
		t.Fatalf("exit tick: desired %d inPanic %v", d, p.InPanic())
	}
}

// TestPanicReentryResetsWindow pins that a fresh spike inside the calm
// window restarts the hysteresis count.
func TestPanicReentryResetsWindow(t *testing.T) {
	s := Panic{Target: 1, Min: 1, ExitTicks: 2}.New()
	p := s.(Panicker)
	s.Desired(Observation{Ready: 1, Busy: 1, Queued: 3}) // enter panic
	s.Desired(Observation{Ready: 4, Busy: 1, Queued: 0}) // calm 1 of 2
	s.Desired(Observation{Ready: 1, Busy: 1, Queued: 3}) // re-spike: reset
	s.Desired(Observation{Ready: 4, Busy: 1, Queued: 0}) // calm 1 of 2
	if !p.InPanic() {
		t.Fatal("panic exited before the calm window refilled after a re-spike")
	}
	s.Desired(Observation{Ready: 4, Busy: 1, Queued: 0}) // calm 2 of 2
	if p.InPanic() {
		t.Fatal("panic held past the completed calm window")
	}
}

// TestPanicModeEndToEnd runs the panic policy through the engine against
// a bursty arrival process and checks the transition counters pair up.
func TestPanicModeEndToEnd(t *testing.T) {
	cfg := testConfig(t)
	cfg.Policy = Panic{Label: "panic", Target: DefaultTarget, Min: 1}
	cfg.Arrival = loadgen.Bursty
	cfg.Burst = 12
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PanicEntries == 0 {
		t.Fatal("bursty load never entered panic mode")
	}
	if rep.PanicExits > rep.PanicEntries {
		t.Fatalf("%d panic exits exceed %d entries", rep.PanicExits, rep.PanicEntries)
	}
}

// TestPlacerBestFit pins the bin-packer's order: fill the most-loaded
// fitting node first (ties by index), respect both core and memory
// limits, and reject on a full cluster.
func TestPlacerBestFit(t *testing.T) {
	nodes := []node{
		{cores: 2, memMB: 1024},
		{cores: 2, memMB: 1024, usedCores: 1, usedMemMB: 512},
	}
	// Best fit: node 1 has fewer free cores.
	if got := place(nodes, 512); got != 1 {
		t.Fatalf("best-fit picked node %d, want 1", got)
	}
	nodes[1].usedCores, nodes[1].usedMemMB = 2, 1024
	// Node 1 full: only node 0 fits.
	if got := place(nodes, 512); got != 0 {
		t.Fatalf("full-node fallback picked node %d, want 0", got)
	}
	// Memory can reject a node whose cores are free.
	nodes[0].usedMemMB = 768
	if got := place(nodes, 512); got != -1 {
		t.Fatalf("memory-full cluster placed on node %d, want rejection", got)
	}
	// Equal free cores tie-breaks on lowest index.
	tie := []node{{cores: 4, memMB: 2048}, {cores: 4, memMB: 2048}}
	if got := place(tie, 512); got != 0 {
		t.Fatalf("tie broke to node %d, want 0", got)
	}
}

// TestFullClusterQueuesFIFO saturates a one-node cluster and pins that
// overflow arrivals queue FIFO (completion order follows arrival order)
// and that the placer's rejections are counted.
func TestFullClusterQueuesFIFO(t *testing.T) {
	cfg := testConfig(t)
	cfg.Nodes = 1
	cfg.NodeCores = 4
	cfg.InstMemMB = 512
	cfg.NodeMemMB = 1024 // memory binds first: 2 instances, not 4
	cfg.RPS = 20000      // interarrivals inside the boot penalty and cold serves
	cfg.Duration = 2_000_000
	cfg.Policy = Fixed{} // demand the whole core capacity: memory rejects half
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeakInstances != 2 {
		t.Fatalf("peak %d, want the capacity 2", rep.PeakInstances)
	}
	if rep.MaxQueueDepth == 0 {
		t.Fatal("saturated cluster never queued")
	}
	if rep.RejectedPlaces == 0 {
		t.Fatal("fixed-cap policy against a tiny cluster never hit the placer limit")
	}
	last := uint64(0)
	for i := range rep.Invocations {
		iv := &rep.Invocations[i]
		if iv.Start < last {
			t.Fatalf("invocation %d started at %d before its predecessor at %d: FIFO violated", i, iv.Start, last)
		}
		last = iv.Start
	}
}

// TestDeterminismAcrossJobsAndMemo is the sweep identity contract: a
// policy × RPS grid must produce byte-identical tables, stats text and
// trace JSON for -j 1 vs -j N, and an unmemoizable... (memoization is
// exercised by sharing one cache vs none; the bytes must not move).
func TestDeterminismAcrossJobsAndMemo(t *testing.T) {
	grid := func() []Config {
		var cfgs []Config
		for _, pol := range []Policy{Fixed{}, Concurrency{Label: "concurrency", Target: DefaultTarget, Min: 1}, Panic{Label: "panic", Target: DefaultTarget, Min: 1}} {
			for _, rps := range []float64{1000, 4000} {
				c := testConfig(t)
				c.Policy = pol
				c.RPS = rps
				c.Duration = 10_000_000
				cfgs = append(cfgs, c)
			}
		}
		return cfgs
	}

	seq, errs := RunMany(grid(), 1)
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	par, errs := RunMany(grid(), 4)
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Memoization off: every run boots its own master (private caches).
	solo := make([]*Report, len(seq))
	for i, c := range grid() {
		c.Cache = harness.NewBootCache()
		r, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		solo[i] = r
	}
	for i := range seq {
		if seq[i].Table() != par[i].Table() {
			t.Fatalf("point %d: -j1 and -j4 tables differ:\n%s\nvs\n%s", i, seq[i].Table(), par[i].Table())
		}
		if seq[i].StatsText != par[i].StatsText {
			t.Fatalf("point %d: stats text differs across job counts", i)
		}
		if !bytes.Equal(seq[i].TraceJSON, par[i].TraceJSON) {
			t.Fatalf("point %d: trace JSON differs across job counts", i)
		}
		if seq[i].Table() != solo[i].Table() || seq[i].StatsText != solo[i].StatsText {
			t.Fatalf("point %d: memoized sweep differs from cold solo run", i)
		}
	}
}

// TestConfigDefaults pins the zero-value resolution every renderer and
// the engine rely on.
func TestConfigDefaults(t *testing.T) {
	var c Config
	if c.NodeCount() != DefaultNodes || c.CoresPerNode() != DefaultNodeCores {
		t.Fatalf("node defaults: %d x %d", c.NodeCount(), c.CoresPerNode())
	}
	if c.Capacity() != DefaultNodes*DefaultNodeCores {
		t.Fatalf("capacity %d, want %d", c.Capacity(), DefaultNodes*DefaultNodeCores)
	}
	if c.Tick() != DefaultTickNS || c.Objective() != DefaultSLO {
		t.Fatalf("tick/SLO defaults: %d / %d", c.Tick(), c.Objective())
	}
	if c.ScalePolicy().Name() != "concurrency" {
		t.Fatalf("default policy %q", c.ScalePolicy().Name())
	}
	// Memory can be the binding constraint.
	c.NodeMemMB = 1024
	c.InstMemMB = 512
	if c.Capacity() != DefaultNodes*2 {
		t.Fatalf("memory-bound capacity %d, want %d", c.Capacity(), DefaultNodes*2)
	}
}

func TestPolicyCatalog(t *testing.T) {
	for _, p := range Policies() {
		got, err := PolicyByName(p.Name())
		if err != nil {
			t.Fatal(err)
		}
		if got.Name() != p.Name() {
			t.Fatalf("catalog round-trip: %q != %q", got.Name(), p.Name())
		}
	}
	if _, err := PolicyByName("nope"); err == nil {
		t.Fatal("unknown policy name did not error")
	}
}
