package autoscale

import (
	"fmt"
	"strings"

	"svbench/internal/loadgen"
	"svbench/internal/trace"
)

// Invocation is one request's lifecycle through the cluster. All times
// are virtual nanoseconds; Latency = Wait + Service, where Wait covers
// FIFO queueing plus any cold-start boot the request waited out.
type Invocation struct {
	ID          int
	Node        int    // node of the serving instance
	Instance    int    // fleet id of the serving instance
	Arrive      uint64 // entered the system
	Start       uint64 // began executing
	Done        uint64 // completed
	Wait        uint64 // Start - Arrive (queueing + boot readiness)
	Service     uint64 // on-instance execution time
	Latency     uint64 // Done - Arrive
	Cold        bool   // first invocation served after a cold start
	ColdPenalty uint64 // that cold start's boot penalty
	CheckFailed bool   // reply failed the spec's check
	SLOOk       bool   // Latency within the configured objective
}

// NodeStats is one simulated worker's lifetime accounting.
type NodeStats struct {
	// Placed counts instances ever placed on the node.
	Placed uint64
	// BusyNS is the integral of serving time across its instances.
	BusyNS uint64
	// Utilization is BusyNS over the node's core-time (cores × makespan).
	Utilization float64
}

// Report is one autoscaled run's complete result. Every field —
// including the rendered table, stats text and trace JSON — is a pure
// function of the run's Config.
type Report struct {
	Cfg         Config
	Invocations []Invocation
	Nodes       []NodeStats

	ScaleUps        uint64 // instances the autoscaler started (= cold starts)
	ScaleDowns      uint64 // idle instances reclaimed
	ChurnColdStarts uint64 // post-peak scale-ups refilling reclaimed capacity
	RejectedPlaces  uint64 // scale-up decisions the full cluster could not place
	PeakInstances   uint64
	MaxQueueDepth   uint64
	PanicEntries    uint64
	PanicExits      uint64
	Ticks           uint64 // reconcile invocations (periodic + activator kicks)
	CheckFailures   uint64

	Latency loadgen.Pcts
	Wait    loadgen.Pcts
	Service loadgen.Pcts

	// SLOAttainment is the fraction of invocations finishing within the
	// objective; ColdAmplification is scale-ups per peak instance — how
	// many cold starts the policy paid for each instance of capacity it
	// ever held (1.0 = every instance booted exactly once); ChurnColdRate
	// is the fraction of scale-ups that merely refilled reclaimed
	// capacity; MeanUtilization is cluster-wide busy time over total
	// core-time.
	SLOAttainment     float64
	ColdAmplification float64
	ChurnColdRate     float64
	MeanUtilization   float64

	// Makespan is the last completion's timestamp; Throughput is
	// completions per virtual second over it.
	Makespan   uint64
	Throughput float64

	// StatsText is the run's stats-registry dump; TraceJSON the
	// Chrome/Perfetto trace including scale-up/scale-down/panic events on
	// the autoscaler track. TraceDropped counts ring overwrites.
	StatsText    string
	TraceJSON    []byte
	Events       []trace.Event
	TraceDropped uint64
}

// report assembles the Report after the event loop drains.
func (e *engine) report() (*Report, error) {
	label := fmt.Sprintf("%s autoscale (%s)", e.cfg.Spec.Name, e.cfg.Cfg.Arch)
	tj, err := trace.ChromeJSON(e.tracer.Events(), nil, e.tracer.Dropped)
	if err != nil {
		return nil, fmt.Errorf("autoscale: trace export: %w", err)
	}

	r := &Report{
		Cfg:             e.cfg,
		Invocations:     e.invs,
		ScaleUps:        e.scaleUps,
		ScaleDowns:      e.scaleDowns,
		ChurnColdStarts: e.churnColds,
		RejectedPlaces:  e.rejected,
		PeakInstances:   e.peak,
		MaxQueueDepth:   e.maxQueue,
		PanicEntries:    e.panicEntries,
		PanicExits:      e.panicExits,
		Ticks:           e.ticks,
		CheckFailures:   e.checkFailures,
		StatsText:       e.reg.Text(label),
		TraceJSON:       tj,
		Events:          e.tracer.Events(),
		TraceDropped:    e.tracer.Dropped,
	}

	lat := make([]uint64, 0, len(e.invs))
	wait := make([]uint64, 0, len(e.invs))
	svc := make([]uint64, 0, len(e.invs))
	sloOK := 0
	for i := range e.invs {
		iv := &e.invs[i]
		lat = append(lat, iv.Latency)
		wait = append(wait, iv.Wait)
		svc = append(svc, iv.Service)
		if iv.SLOOk {
			sloOK++
		}
		if iv.Done > r.Makespan {
			r.Makespan = iv.Done
		}
	}
	r.Latency = loadgen.Percentiles(lat)
	r.Wait = loadgen.Percentiles(wait)
	r.Service = loadgen.Percentiles(svc)
	if n := len(e.invs); n > 0 {
		r.SLOAttainment = float64(sloOK) / float64(n)
	}
	if e.scaleUps > 0 {
		r.ChurnColdRate = float64(e.churnColds) / float64(e.scaleUps)
	}
	if e.peak > 0 {
		r.ColdAmplification = float64(e.scaleUps) / float64(e.peak)
	}
	if r.Makespan > 0 {
		r.Throughput = float64(len(e.invs)) * 1e9 / float64(r.Makespan)
		var busy, coreTime uint64
		r.Nodes = make([]NodeStats, len(e.nodes))
		for i := range e.nodes {
			n := &e.nodes[i]
			r.Nodes[i] = NodeStats{Placed: n.placed, BusyNS: n.busyNS}
			ct := uint64(n.cores) * r.Makespan
			if ct > 0 {
				r.Nodes[i].Utilization = float64(n.busyNS) / float64(ct)
			}
			busy += n.busyNS
			coreTime += ct
		}
		if coreTime > 0 {
			r.MeanUtilization = float64(busy) / float64(coreTime)
		}
	}
	return r, nil
}

// Table renders the run's deterministic summary: configuration echo,
// scaling activity, SLO attainment, per-node utilization, and a
// percentile row per metric. Same config, same bytes.
func (r *Report) Table() string {
	var sb strings.Builder
	c := r.Cfg
	fmt.Fprintf(&sb, "== autoscale: %s on %s, policy %s ==\n", c.Spec.Name, c.Cfg.Arch, c.ScalePolicy().Name())
	fmt.Fprintf(&sb, "arrival      %s, %.1f rps over %.3f ms window (seed %d", c.Arrival, c.RPS, float64(c.Duration)/1e6, c.Seed)
	if c.Arrival == loadgen.Bursty {
		burst := c.Burst
		if burst <= 0 {
			burst = loadgen.DefaultBurst
		}
		fmt.Fprintf(&sb, ", burst %d", burst)
	}
	sb.WriteString(")\n")
	fmt.Fprintf(&sb, "cluster      %d nodes x %d cores, %d MB each; %d MB instances (capacity %d)\n",
		c.NodeCount(), c.CoresPerNode(), c.MemPerNode(), c.MemPerInstance(), c.Capacity())
	fmt.Fprintf(&sb, "autoscaler   tick %.3f ms, keep-alive %.3f ms, SLO %.3f ms\n",
		float64(c.Tick())/1e6, float64(c.KeepAlive)/1e6, float64(c.Objective())/1e6)
	fmt.Fprintf(&sb, "invocations  %d (%d check failures)\n", len(r.Invocations), r.CheckFailures)
	fmt.Fprintf(&sb, "scaling      %d ups (%d churn), %d downs, %d rejected; peak %d instances, max queue %d, %d ticks\n",
		r.ScaleUps, r.ChurnColdStarts, r.ScaleDowns, r.RejectedPlaces, r.PeakInstances, r.MaxQueueDepth, r.Ticks)
	if r.PanicEntries > 0 || r.PanicExits > 0 {
		fmt.Fprintf(&sb, "panic        %d entries, %d exits\n", r.PanicEntries, r.PanicExits)
	}
	fmt.Fprintf(&sb, "slo          %.2f%% within objective, cold amplification %.2f, churn cold rate %.2f\n",
		100*r.SLOAttainment, r.ColdAmplification, r.ChurnColdRate)
	for i, n := range r.Nodes {
		fmt.Fprintf(&sb, "node%-8d placed %d, busy %.3f ms, util %.1f%%\n", i, n.Placed, float64(n.BusyNS)/1e6, 100*n.Utilization)
	}
	fmt.Fprintf(&sb, "makespan     %.3f ms virtual, throughput %.1f rps, mean util %.1f%%\n",
		float64(r.Makespan)/1e6, r.Throughput, 100*r.MeanUtilization)
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "%-13s %12s %12s %12s %14s %12s\n", "metric (ns)", "p50", "p95", "p99", "mean", "max")
	row := func(name string, p loadgen.Pcts) {
		fmt.Fprintf(&sb, "%-13s %12d %12d %12d %14.1f %12d\n", name, p.P50, p.P95, p.P99, p.Mean, p.Max)
	}
	row("latency", r.Latency)
	row("wait", r.Wait)
	row("service", r.Service)
	return sb.String()
}
