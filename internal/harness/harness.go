// Package harness implements the vSwarm-u experiment methodology on the
// simulated machine (Fig. 4.1 of the thesis): boot the system and the
// function container in functional (atomic) setup mode, take a checkpoint
// right before the first request, restore into the detailed out-of-order
// CPU with cold microarchitectural state, replay ten requests, and dump
// statistics around the first (cold) and tenth (warm) request. The client
// is pinned to core 0 and the function server to core 1; all reported
// statistics come from core 1.
package harness

import (
	"fmt"

	"svbench/internal/gemsys"
	"svbench/internal/ir"
	"svbench/internal/isa"
	"svbench/internal/kernel"
	"svbench/internal/langrt"
	"svbench/internal/libc"
	"svbench/internal/rpc"
	"svbench/internal/stats"
	"svbench/internal/vswarm"
)

// Env gives a workload builder access to machine facilities (native
// services, channels) while the experiment is assembled.
type Env struct {
	M *gemsys.Machine
}

// NewService creates a request/response channel pair and binds a native
// service (a database or cache engine) to it. The returned ids are baked
// into the workload module's configuration globals.
func (e *Env) NewService(svc kernel.Service) (reqCh, respCh int) {
	reqCh = e.M.K.NewChannel()
	respCh = e.M.K.NewChannel()
	e.M.K.Bind(reqCh, respCh, svc)
	return reqCh, respCh
}

// Spec describes one function experiment.
type Spec struct {
	Name    string
	Runtime langrt.Runtime
	// Build constructs the workload module (creating services first when
	// the function depends on them).
	Build func(env *Env) (*ir.Module, error)
	// Request returns the encoded request message.
	Request func() []byte
	// Requests is the invocation count (default 10: request 1 is the
	// cold execution, request Requests the warm one).
	Requests int
	// Check validates the functional response (optional).
	Check func(resp *rpc.Reader) error
	// Flavor overrides the libc flavor (ablation studies); nil selects
	// the architecture's default software stack.
	Flavor *libc.Flavor
}

// Result is one experiment's outcome.
type Result struct {
	Name       string
	Runtime    langrt.Runtime
	Arch       isa.Arch
	Cold, Warm stats.CoreStats
	SetupInsts uint64
	Response   []byte
}

// Budgets for the two phases.
const (
	setupBudget = 600_000_000
	evalBudget  = 600_000_000
)

// Run executes the full methodology for one function on one ISA.
func Run(arch isa.Arch, spec Spec) (*Result, error) {
	cfg := gemsys.DefaultConfig(arch)
	return RunWith(cfg, spec)
}

// RunWith executes the methodology with an explicit machine configuration
// (used by the design-space exploration tooling).
func RunWith(cfg gemsys.Config, spec Spec) (*Result, error) {
	m, err := gemsys.New(cfg)
	if err != nil {
		return nil, err
	}
	env := &Env{M: m}
	workload, err := spec.Build(env)
	if err != nil {
		return nil, fmt.Errorf("harness: %s: build workload: %w", spec.Name, err)
	}
	flavor := libc.ForArch(string(cfg.Arch))
	if spec.Flavor != nil {
		flavor = *spec.Flavor
	}
	server, err := langrt.BuildServer(spec.Runtime, flavor, workload, vswarm.Handler)
	if err != nil {
		return nil, fmt.Errorf("harness: %s: build server: %w", spec.Name, err)
	}

	reqCh := m.K.NewChannel()
	respCh := m.K.NewChannel()
	if _, err := m.Spawn("server", server, "main", 1, []uint64{uint64(reqCh), uint64(respCh)}); err != nil {
		return nil, fmt.Errorf("harness: %s: spawn server: %w", spec.Name, err)
	}
	nreq := spec.Requests
	if nreq == 0 {
		nreq = 10
	}
	client := BuildClient(spec.Request(), int64(nreq))
	if _, err := m.Spawn("client", client, "main", 0, []uint64{uint64(reqCh), uint64(respCh)}); err != nil {
		return nil, fmt.Errorf("harness: %s: spawn client: %w", spec.Name, err)
	}

	// Setup mode (atomic CPU) up to the checkpoint before request 1.
	if err := m.RunSetup(setupBudget); err != nil {
		return nil, fmt.Errorf("harness: %s: setup: %w", spec.Name, err)
	}
	if !m.CheckpointPending() {
		return nil, fmt.Errorf("harness: %s: setup finished without checkpoint", spec.Name)
	}
	ck := m.TakeCheckpoint()
	if err := m.Restore(ck); err != nil {
		return nil, fmt.Errorf("harness: %s: restore: %w", spec.Name, err)
	}

	// Evaluation mode (detailed O3 CPU).
	dumps, err := m.RunEval(evalBudget)
	if err != nil {
		return nil, fmt.Errorf("harness: %s: eval: %w", spec.Name, err)
	}
	if len(dumps) != 2 {
		return nil, fmt.Errorf("harness: %s: got %d stat dumps, want 2", spec.Name, len(dumps))
	}
	res := &Result{
		Name:       spec.Name,
		Runtime:    spec.Runtime,
		Arch:       cfg.Arch,
		Cold:       dumps[0].Server(),
		Warm:       dumps[1].Server(),
		SetupInsts: m.Atomic.Insts,
		Response:   append([]byte(nil), m.K.Console.Bytes()...),
	}
	if spec.Check != nil {
		if err := spec.Check(rpc.NewReader(res.Response)); err != nil {
			return nil, fmt.Errorf("harness: %s: response check: %w", spec.Name, err)
		}
	}
	return res, nil
}

// BuildClient builds the load-generator module: it performs the readiness
// handshake, requests the checkpoint, then issues nreq identical requests
// with m5 reset/dump around the first and last, finally writing the last
// response to the console and exiting the simulation.
func BuildClient(request []byte, nreq int64) *ir.Module {
	m := ir.NewModule("client")
	m.AddGlobal(&ir.Global{Name: "cli_req", Data: request})
	m.AddGlobal(&ir.Global{Name: "cli_rbuf", Data: make([]byte, langrt.WBufSize)})

	b := ir.NewFunc("main", 2)
	req, resp := b.Param(0), b.Param(1)
	rbuf := b.Global("cli_rbuf", 0)
	b.EcallV(kernel.SysRecv, resp, rbuf, b.Const(langrt.WBufSize)) // ready
	b.EcallV(kernel.M5Checkpoint)

	reqG := b.Global("cli_req", 0)
	reqLen := b.Const(int64(len(request)))
	n := b.Const(0)

	i := b.Const(1)
	loop, done := b.NewLabel("loop"), b.NewLabel("done")
	b.Label(loop)
	b.BrI(ir.Gt, i, nreq, done)
	notFirst := b.NewLabel("nf")
	b.BrI(ir.Ne, i, 1, notFirst)
	b.EcallV(kernel.M5ResetStats)
	b.Label(notFirst)
	notLast := b.NewLabel("nl")
	b.BrI(ir.Ne, i, nreq, notLast)
	b.EcallV(kernel.M5ResetStats)
	b.Label(notLast)

	b.EcallV(kernel.SysSend, req, reqG, reqLen)
	rn := b.Ecall(kernel.SysRecv, resp, rbuf, b.Const(langrt.WBufSize))
	b.MovInto(n, rn)

	noDump1 := b.NewLabel("nd1")
	b.BrI(ir.Ne, i, 1, noDump1)
	b.EcallV(kernel.M5DumpStats)
	b.Label(noDump1)
	noDump2 := b.NewLabel("nd2")
	b.BrI(ir.Ne, i, nreq, noDump2)
	b.EcallV(kernel.M5DumpStats)
	b.Label(noDump2)

	b.AddIInto(i, i, 1)
	b.Jmp(loop)
	b.Label(done)
	b.EcallV(kernel.SysWrite, rbuf, n)
	b.EcallV(kernel.M5Exit)
	m.AddFunc(b.Build())
	return m
}
