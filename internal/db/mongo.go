package db

import "strings"

// btree is a B-tree of order 2*btreeT over string keys — the WiredTiger-ish
// primary index of the MongoDB model.
const btreeT = 8 // minimum degree

type bnode struct {
	keys     []string
	vals     [][]byte
	children []*bnode
	leaf     bool
}

type btree struct {
	root   *bnode
	height int
	size   int
}

func newBtree() *btree {
	return &btree{root: &bnode{leaf: true}, height: 1}
}

// search returns the value for key and the number of nodes visited.
func (t *btree) search(key string) ([]byte, bool, int) {
	n := t.root
	visited := 0
	for {
		visited++
		i := 0
		for i < len(n.keys) && key > n.keys[i] {
			i++
		}
		if i < len(n.keys) && key == n.keys[i] {
			return n.vals[i], true, visited
		}
		if n.leaf {
			return nil, false, visited
		}
		n = n.children[i]
	}
}

func (t *btree) insert(key string, val []byte) {
	r := t.root
	if len(r.keys) == 2*btreeT-1 {
		s := &bnode{children: []*bnode{r}}
		s.splitChild(0)
		t.root = s
		t.height++
	}
	if t.root.insertNonFull(key, val) {
		t.size++
	}
}

func (n *bnode) splitChild(i int) {
	child := n.children[i]
	mid := btreeT - 1
	right := &bnode{
		leaf: child.leaf,
		keys: append([]string(nil), child.keys[mid+1:]...),
		vals: append([][]byte(nil), child.vals[mid+1:]...),
	}
	if !child.leaf {
		right.children = append([]*bnode(nil), child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	upKey, upVal := child.keys[mid], child.vals[mid]
	child.keys = child.keys[:mid]
	child.vals = child.vals[:mid]

	n.keys = append(n.keys, "")
	n.vals = append(n.vals, nil)
	copy(n.keys[i+1:], n.keys[i:])
	copy(n.vals[i+1:], n.vals[i:])
	n.keys[i] = upKey
	n.vals[i] = upVal
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// insertNonFull returns true when a new key was added (false on update).
func (n *bnode) insertNonFull(key string, val []byte) bool {
	i := 0
	for i < len(n.keys) && key > n.keys[i] {
		i++
	}
	if i < len(n.keys) && key == n.keys[i] {
		n.vals[i] = val
		return false
	}
	if n.leaf {
		n.keys = append(n.keys, "")
		n.vals = append(n.vals, nil)
		copy(n.keys[i+1:], n.keys[i:])
		copy(n.vals[i+1:], n.vals[i:])
		n.keys[i] = key
		n.vals[i] = val
		return true
	}
	if len(n.children[i].keys) == 2*btreeT-1 {
		n.splitChild(i)
		if key > n.keys[i] {
			i++
		} else if key == n.keys[i] {
			n.vals[i] = val
			return false
		}
	}
	return n.children[i].insertNonFull(key, val)
}

// walk visits keys in order until f returns false.
func (n *bnode) walk(f func(k string, v []byte) bool) bool {
	for i := 0; i < len(n.keys); i++ {
		if !n.leaf {
			if !n.children[i].walk(f) {
				return false
			}
		}
		if !f(n.keys[i], n.vals[i]) {
			return false
		}
	}
	if !n.leaf {
		return n.children[len(n.keys)].walk(f)
	}
	return true
}

// MongoStats counts engine events.
type MongoStats struct {
	Reads, Writes uint64
	NodesVisited  uint64
}

// Mongo is the document-store model: collections of BSON-style documents
// indexed by a B-tree on _id.
type Mongo struct {
	collections map[string]*btree
	Stats       MongoStats
}

// NewMongo creates an empty instance.
func NewMongo() *Mongo {
	return &Mongo{collections: map[string]*btree{}}
}

// Name identifies the engine.
func (m *Mongo) Name() string { return "mongodb" }

// Boot returns the startup cost; MongoDB boots quickly relative to
// Cassandra (§3.3.3: ~5x faster than Cassandra even natively).
func (m *Mongo) Boot() uint64 { return 4_000_000 }

func (m *Mongo) coll(table string) *btree {
	c, ok := m.collections[table]
	if !ok {
		c = newBtree()
		m.collections[table] = c
	}
	return c
}

// Put stores a document.
func (m *Mongo) Put(table, key string, val []byte) {
	m.Stats.Writes++
	m.coll(table).insert(key, append([]byte(nil), val...))
}

// GetVisited returns the document and the B-tree nodes visited.
func (m *Mongo) GetVisited(table, key string) ([]byte, bool, int) {
	m.Stats.Reads++
	v, ok, visited := m.coll(table).search(key)
	m.Stats.NodesVisited += uint64(visited)
	return v, ok, visited
}

// Get implements Store.
func (m *Mongo) Get(table, key string) ([]byte, bool) {
	v, ok, _ := m.GetVisited(table, key)
	return v, ok
}

// Scan returns up to limit documents with the key prefix, in order.
func (m *Mongo) Scan(table, prefix string, limit int) []Pair {
	var out []Pair
	m.coll(table).root.walk(func(k string, v []byte) bool {
		switch {
		case strings.HasPrefix(k, prefix):
			out = append(out, Pair{Key: k, Val: v})
			if limit > 0 && len(out) >= limit {
				return false
			}
		case k > prefix:
			return false // ordered walk is past the prefix range
		}
		return true
	})
	return out
}

// Size reports the number of documents in a collection.
func (m *Mongo) Size(table string) int { return m.coll(table).size }
