// Package mem implements the simulated memory hierarchy: set-associative
// write-back caches with LRU replacement, a shared DRAM/bus model with
// queueing contention, TLBs, and a two-core write-invalidate coherence
// scheme. It reproduces the cache organization of the thesis's gem5 setup
// (Table 4.1): per-core 32 KB 8-way L1I and L1D, per-core 512 KB 4-way L2,
// DDR3-class memory behind a shared channel.
package mem

import "fmt"

// CacheConfig describes one cache.
type CacheConfig struct {
	Name       string
	Size       int // bytes
	LineSize   int // bytes, power of two
	Assoc      int
	HitLatency uint64 // cycles
}

// CacheStats counts cache events.
type CacheStats struct {
	Accesses   uint64
	Misses     uint64
	Writebacks uint64
	Invals     uint64
}

// MissRate returns misses/accesses (0 when idle).
func (s CacheStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64
}

// Cache is a set-associative write-back, write-allocate cache.
type Cache struct {
	cfg      CacheConfig
	sets     [][]line
	nsets    uint64
	lineBits uint
	tick     uint64
	Stats    CacheStats
}

// NewCache builds a cache from cfg, validating the geometry.
func NewCache(cfg CacheConfig) *Cache {
	if cfg.LineSize <= 0 || cfg.LineSize&(cfg.LineSize-1) != 0 {
		panic(fmt.Sprintf("mem: %s: line size %d not a power of two", cfg.Name, cfg.LineSize))
	}
	if cfg.Assoc <= 0 || cfg.Size%(cfg.LineSize*cfg.Assoc) != 0 {
		panic(fmt.Sprintf("mem: %s: size %d not divisible by assoc*line", cfg.Name, cfg.Size))
	}
	nsets := cfg.Size / cfg.LineSize / cfg.Assoc
	c := &Cache{
		cfg:   cfg,
		sets:  make([][]line, nsets),
		nsets: uint64(nsets),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Assoc)
	}
	for ls := cfg.LineSize; ls > 1; ls >>= 1 {
		c.lineBits++
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

func (c *Cache) index(addr uint64) (set, tag uint64) {
	blk := addr >> c.lineBits
	return blk % c.nsets, blk / c.nsets
}

// AccessResult describes the outcome of a cache access.
type AccessResult struct {
	Hit        bool
	Writeback  bool   // a dirty victim was evicted
	VictimAddr uint64 // line address of the victim (valid when Writeback)
}

// Access looks up addr, allocating on miss and evicting LRU.
// write marks the line dirty.
func (c *Cache) Access(addr uint64, write bool) AccessResult {
	c.tick++
	c.Stats.Accesses++
	set, tag := c.index(addr)
	lines := c.sets[set]
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			lines[i].lru = c.tick
			if write {
				lines[i].dirty = true
			}
			return AccessResult{Hit: true}
		}
	}
	c.Stats.Misses++
	// Choose victim: invalid line first, else LRU.
	vi := 0
	for i := range lines {
		if !lines[i].valid {
			vi = i
			break
		}
		if lines[i].lru < lines[vi].lru {
			vi = i
		}
	}
	res := AccessResult{}
	if lines[vi].valid && lines[vi].dirty {
		res.Writeback = true
		res.VictimAddr = (lines[vi].tag*c.nsets + set) << c.lineBits
		c.Stats.Writebacks++
	}
	lines[vi] = line{tag: tag, valid: true, dirty: write, lru: c.tick}
	return res
}

// Warm performs a functional-warming access: it updates tags, LRU age and
// dirty bits exactly as Access would, but bumps no statistics counters and
// models no latency. Sampled simulation uses it to keep cache contents hot
// across fast-forwarded regions without perturbing the measured windows.
// It reports whether the line was already resident so callers can decide
// whether the next level would have been touched.
func (c *Cache) Warm(addr uint64, write bool) (hit bool) {
	c.tick++
	set, tag := c.index(addr)
	lines := c.sets[set]
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			lines[i].lru = c.tick
			if write {
				lines[i].dirty = true
			}
			return true
		}
	}
	vi := 0
	for i := range lines {
		if !lines[i].valid {
			vi = i
			break
		}
		if lines[i].lru < lines[vi].lru {
			vi = i
		}
	}
	lines[vi] = line{tag: tag, valid: true, dirty: write, lru: c.tick}
	return false
}

// Drop invalidates the line containing addr without touching stats — the
// functional-warming flavour of Invalidate. It returns whether the line was
// present and dirty so coherence warming can mirror the timed path's state
// transitions.
func (c *Cache) Drop(addr uint64) (present, dirty bool) {
	set, tag := c.index(addr)
	lines := c.sets[set]
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			dirty = lines[i].dirty
			lines[i] = line{}
			return true, dirty
		}
	}
	return false, false
}

// Probe reports whether addr is resident without touching LRU or stats.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	for _, l := range c.sets[set] {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Invalidate drops the line containing addr, returning whether it was
// present and dirty.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	set, tag := c.index(addr)
	lines := c.sets[set]
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			dirty = lines[i].dirty
			lines[i] = line{}
			c.Stats.Invals++
			return true, dirty
		}
	}
	return false, false
}

// Flush invalidates the entire cache (cold restart).
func (c *Cache) Flush() {
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = line{}
		}
	}
}

// ResetStats zeroes the counters without touching contents.
func (c *Cache) ResetStats() { c.Stats = CacheStats{} }

// LineSize returns the cache's line size in bytes.
func (c *Cache) LineSize() int { return c.cfg.LineSize }
