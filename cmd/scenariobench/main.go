// Command scenariobench times the chaos-scenario matrix (every library
// scenario on both ISAs) serially and in parallel and writes the
// comparison as JSON (BENCH_scenario.json). Every point's phase-bucketed
// table, stats text and trace JSON are asserted byte-identical across
// both runs first, and every calibrated SLO verdict is recorded — a
// speedup that changed a verdict would be meaningless.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"svbench/internal/benchutil"
	"svbench/internal/gemsys"
	"svbench/internal/harness"
	"svbench/internal/isa"
	"svbench/internal/scenario"
	"svbench/internal/sweep"
)

type verdict struct {
	Scenario   string  `json:"scenario"`
	Arch       string  `json:"arch"`
	SLOPass    bool    `json:"slo_pass"`
	Recovered  bool    `json:"recovered"`
	RecoveryMS float64 `json:"recovery_ms"`
	Retries    uint64  `json:"retries"`
	Failed     uint64  `json:"failed"`
}

type report struct {
	Date       string    `json:"date"`
	HostCPUs   int       `json:"host_cpus"`
	GoMaxProcs int       `json:"gomaxprocs"`
	Matrix     string    `json:"matrix"`
	Points     int       `json:"points"`
	JobsBefore int       `json:"jobs_before"`
	JobsAfter  int       `json:"jobs_after"`
	SecBefore  float64   `json:"seconds_before"`
	SecAfter   float64   `json:"seconds_after"`
	Speedup    float64   `json:"speedup"`
	Identical  bool      `json:"reports_identical"`
	Verdicts   []verdict `json:"verdicts"`
}

// points is the benchmarked matrix: the full scenario library crossed
// with both ISAs on the acceptance workload.
func points(seed uint64) []scenario.Config {
	var spec harness.Spec
	for _, sp := range harness.StandaloneSpecs() {
		if sp.Name == "fibonacci-go" {
			spec = sp
		}
	}
	var cfgs []scenario.Config
	for _, s := range scenario.Catalog() {
		for _, arch := range []isa.Arch{isa.RV64, isa.CISC64} {
			cfgs = append(cfgs, scenario.Config{
				Scenario: s,
				Cfg:      gemsys.DefaultConfig(arch),
				Spec:     spec,
				Seed:     seed,
			})
		}
	}
	return cfgs
}

func main() {
	var (
		out     = flag.String("out", "BENCH_scenario.json", "output JSON file")
		jobs    = flag.Int("j", sweep.DefaultJobs(), "parallel worker count for the after run")
		seed    = flag.Uint64("seed", 7, "scenario seed (arrival process + fault schedule)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if err := sweep.ValidateJobs(*jobs); err != nil {
		fmt.Fprintln(os.Stderr, "scenariobench: -j:", err)
		os.Exit(2)
	}
	stopProf, err := benchutil.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scenariobench:", err)
		os.Exit(2)
	}

	run := func(j int) ([]*scenario.Result, float64) {
		t0 := time.Now()
		results, errs := scenario.RunMany(points(*seed), j)
		dt := time.Since(t0).Seconds()
		for i, err := range errs {
			if err != nil {
				fmt.Fprintf(os.Stderr, "scenariobench: point %d: %v\n", i, err)
				os.Exit(1)
			}
		}
		return results, dt
	}

	fmt.Fprintf(os.Stderr, "scenariobench: serial matrix (-j 1)...\n")
	before, secBefore := run(1)
	fmt.Fprintf(os.Stderr, "scenariobench: %.2fs; parallel matrix (-j %d)...\n", secBefore, *jobs)
	after, secAfter := run(*jobs)

	identical := true
	for i := range before {
		if before[i].Table() != after[i].Table() ||
			before[i].StatsText != after[i].StatsText ||
			!bytes.Equal(before[i].TraceJSON, after[i].TraceJSON) {
			identical = false
			fmt.Fprintf(os.Stderr, "scenariobench: point %d DIFFERS between -j 1 and -j %d\n", i, *jobs)
		}
	}

	cfgs := points(*seed)
	var verdicts []verdict
	for i, res := range before {
		verdicts = append(verdicts, verdict{
			Scenario:   cfgs[i].Scenario.Name,
			Arch:       string(cfgs[i].Cfg.Arch),
			SLOPass:    res.SLOPass,
			Recovered:  res.Recovered,
			RecoveryMS: float64(res.RecoveryNS) / 1e6,
			Retries:    res.Load.Retries,
			Failed:     res.Load.Failed,
		})
	}

	rep := report{
		Date:       time.Now().UTC().Format("2006-01-02"),
		HostCPUs:   runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Matrix:     "scenario library × {rv64, cisc64}, fibonacci-go",
		Points:     len(before),
		JobsBefore: 1,
		JobsAfter:  *jobs,
		SecBefore:  secBefore,
		SecAfter:   secAfter,
		Speedup:    secBefore / secAfter,
		Identical:  identical,
		Verdicts:   verdicts,
	}
	js, _ := json.MarshalIndent(rep, "", "  ")
	js = append(js, '\n')
	if err := os.WriteFile(*out, js, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "scenariobench:", err)
		os.Exit(1)
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "scenariobench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "scenariobench: %.2fs -> %.2fs (%.2fx), identical=%v, %s\n",
		secBefore, secAfter, rep.Speedup, rep.Identical, *out)
	if !rep.Identical {
		os.Exit(1)
	}
}
