package riscv

import (
	"fmt"
	"math/bits"

	"svbench/internal/isa"
)

func mulhu(a, b uint64) uint64 {
	hi, _ := bits.Mul64(a, b)
	return hi
}

// maxBlockLen caps a translated basic block. Long straight-line runs are
// split; the tail simply becomes another block keyed by its own entry PC.
const maxBlockLen = 32

// block is a translated basic block: a straight-line run of decoded
// instructions starting at pc, terminated by a control-flow instruction,
// an environment call, or maxBlockLen. All but the last instruction are
// guaranteed straight-line. The decoded instructions, trace templates and
// lowered uops are immutable after construction — execution copies the
// per-instruction TraceRec templates and never writes back. The link
// fields are the one mutable part: a two-entry inline cache of successor
// blocks, patched on the first fully-executed transition and severed by
// InvalidateBlocks and ResetChains (checkpoint restore).
type block struct {
	pc    uint64
	end   uint64 // fall-through PC after the last instruction
	insts []Inst
	recs  []isa.TraceRec
	uops  []uop
	cnt   isa.ClassCounts // static census of recs (whole-block fast-lane add)

	// Superblock links: successor blocks keyed by the architectural next
	// PC observed after this block completed. Two slots cover the common
	// shapes (taken + fall-through of a conditional branch, or a
	// monomorphic jump/return target); polymorphic successors beyond two
	// deliberately stay unpatched so a megamorphic indirect jump cannot
	// thrash the cache.
	link0pc uint64
	link1pc uint64
	link0   *block
	link1   *block

	// epoch marks the chain-telemetry generation (DecodeCache.epoch) in
	// which this block was last counted as "entered"; see enterBlock.
	epoch uint64
}

// blockEnds reports whether k terminates a basic block.
func blockEnds(k Kind) bool {
	switch k {
	case KindJAL, KindJALR, KindBEQ, KindBNE, KindBLT, KindBGE, KindBLTU,
		KindBGEU, KindECALL, KindEBREAK:
		return true
	}
	return false
}

// recTemplate precomputes every TraceRec field that does not depend on
// register or memory state: PC, size, class, register dependences,
// micro-op count, and the targets of direct branches and jumps. Dynamic
// fields (Taken, indirect Target, MemAddr, ecall Flags/Seq) stay zero and
// are filled at execution time.
func recTemplate(pc uint64, in Inst) isa.TraceRec {
	rec := isa.TraceRec{
		PC: pc, Size: 4, Class: isa.ClassAlu,
		Src1: isa.NoDep, Src2: isa.NoDep, Dst: isa.NoDep,
		MicroOps: 1,
	}
	switch in.Kind {
	case KindLUI, KindAUIPC:
		rec.Dst = in.Rd
	case KindJAL:
		rec.Dst = in.Rd
		rec.Taken = true
		rec.Target = pc + uint64(in.Imm)
		if in.Rd == RegRA {
			rec.Class = isa.ClassCall
		} else {
			rec.Class = isa.ClassJump
		}
	case KindJALR:
		rec.Src1, rec.Dst = in.Rs1, in.Rd
		rec.Taken = true
		switch {
		case in.Rd == RegRA:
			rec.Class = isa.ClassCall
		case in.Rd == RegZero && in.Rs1 == RegRA:
			rec.Class = isa.ClassRet
		default:
			rec.Class = isa.ClassJump
		}
	case KindBEQ, KindBNE, KindBLT, KindBGE, KindBLTU, KindBGEU:
		rec.Class = isa.ClassBranch
		rec.Src1, rec.Src2 = in.Rs1, in.Rs2
		rec.Target = pc + uint64(in.Imm)
	case KindLB, KindLBU:
		rec.Class, rec.MemSize = isa.ClassLoad, 1
		rec.Src1, rec.Dst = in.Rs1, in.Rd
	case KindLH, KindLHU:
		rec.Class, rec.MemSize = isa.ClassLoad, 2
		rec.Src1, rec.Dst = in.Rs1, in.Rd
	case KindLW, KindLWU:
		rec.Class, rec.MemSize = isa.ClassLoad, 4
		rec.Src1, rec.Dst = in.Rs1, in.Rd
	case KindLD:
		rec.Class, rec.MemSize = isa.ClassLoad, 8
		rec.Src1, rec.Dst = in.Rs1, in.Rd
	case KindSB:
		rec.Class, rec.MemSize = isa.ClassStore, 1
		rec.Src1, rec.Src2 = in.Rs1, in.Rs2
	case KindSH:
		rec.Class, rec.MemSize = isa.ClassStore, 2
		rec.Src1, rec.Src2 = in.Rs1, in.Rs2
	case KindSW:
		rec.Class, rec.MemSize = isa.ClassStore, 4
		rec.Src1, rec.Src2 = in.Rs1, in.Rs2
	case KindSD:
		rec.Class, rec.MemSize = isa.ClassStore, 8
		rec.Src1, rec.Src2 = in.Rs1, in.Rs2
	case KindADDI, KindADDIW, KindSLTI, KindSLTIU, KindXORI, KindORI,
		KindANDI, KindSLLI, KindSRLI, KindSRAI:
		rec.Src1, rec.Dst = in.Rs1, in.Rd
	case KindADD, KindSUB, KindSLL, KindSLT, KindSLTU, KindXOR, KindSRL,
		KindSRA, KindOR, KindAND:
		rec.Src1, rec.Src2, rec.Dst = in.Rs1, in.Rs2, in.Rd
	case KindMUL, KindMULHU:
		rec.Class = isa.ClassMul
		rec.Src1, rec.Src2, rec.Dst = in.Rs1, in.Rs2, in.Rd
	case KindDIV, KindDIVU, KindREM, KindREMU:
		rec.Class = isa.ClassDiv
		rec.Src1, rec.Src2, rec.Dst = in.Rs1, in.Rs2, in.Rd
	case KindECALL:
		rec.Class = isa.ClassEcall
	case KindFENCE:
		rec.Class = isa.ClassFence
	}
	return rec
}

// uop is one direct-threaded micro-operation of a translated block: a
// dense handler index plus every operand the handler needs, precomputed
// at translation time so the execution loop is a tight array walk with no
// decode-shaped work left in it. Immediates are pre-extended, constant
// results (LUI/AUIPC) and link values (pc+4) are pre-folded, direct
// branch/jump targets are absolute, and writes to x0 are lowered away
// entirely so the hot ALU handlers store unconditionally.
type uop struct {
	op  uint8
	rd  uint8
	rs1 uint8
	rs2 uint8
	imm int64  // signed immediate: SLTI compare value, JAL/JALR target/offset
	aux uint64 // precomputed: zext immediate, constant, link value, branch target
	pc  uint64 // this instruction's PC
}

// Direct-threaded handler indices. The space is dense and small so the
// execution switch compiles to a jump table.
const (
	uNOP uint8 = iota // fence, and any x0-destination ALU result
	uCONST            // rd = aux (LUI/AUIPC folded)
	uADDI             // rd = rs1 + aux
	uADDIW
	uSLTI // rd = int64(rs1) < imm
	uSLTIU
	uXORI
	uORI
	uANDI
	uSLLI // shift amount in aux
	uSRLI
	uSRAI
	uADD
	uSUB
	uSLL
	uSLT
	uSLTU
	uXOR
	uSRL
	uSRA
	uOR
	uAND
	uMUL
	uMULHU
	uDIV
	uDIVU
	uREM
	uREMU
	uLB // sign-extending loads, addr = rs1 + aux
	uLH
	uLW
	uLD
	uLBU // zero-extending loads
	uLHU
	uLWU
	uLoadX0 // any load with rd=x0: access for the fault, discard; size in rd
	uSB     // stores, addr = rs1 + aux, value rs2
	uSH
	uSW
	uSD
	uJ     // jal x0: pc = imm
	uJAL   // rd = aux (pc+4), pc = imm
	uJR    // jalr x0: pc = (rs1+imm)&^1
	uJALR  // rd = aux (pc+4), pc = (rs1+imm)&^1
	uBEQ   // taken target in aux, fall-through pc+4
	uBNE
	uBLT
	uBGE
	uBLTU
	uBGEU
	uECALL
	uEBREAK
	uBAD
)

// lowerInst translates one decoded instruction at pc into its uop. The
// lockstep differential tests pin every lowering against Core.Step.
func lowerInst(pc uint64, in Inst) uop {
	u := uop{rd: in.Rd, rs1: in.Rs1, rs2: in.Rs2, imm: in.Imm, pc: pc}
	zeroDst := in.Rd == RegZero
	switch in.Kind {
	case KindLUI:
		u.op, u.aux = uCONST, uint64(in.Imm<<12)
	case KindAUIPC:
		u.op, u.aux = uCONST, pc+uint64(in.Imm<<12)
	case KindJAL:
		u.op = uJAL
		if zeroDst {
			u.op = uJ
		}
		u.imm = int64(pc + uint64(in.Imm))
		u.aux = pc + 4
	case KindJALR:
		u.op = uJALR
		if zeroDst {
			u.op = uJR
		}
		u.aux = pc + 4
	case KindBEQ:
		u.op, u.aux = uBEQ, pc+uint64(in.Imm)
	case KindBNE:
		u.op, u.aux = uBNE, pc+uint64(in.Imm)
	case KindBLT:
		u.op, u.aux = uBLT, pc+uint64(in.Imm)
	case KindBGE:
		u.op, u.aux = uBGE, pc+uint64(in.Imm)
	case KindBLTU:
		u.op, u.aux = uBLTU, pc+uint64(in.Imm)
	case KindBGEU:
		u.op, u.aux = uBGEU, pc+uint64(in.Imm)
	case KindLB:
		u.op, u.aux = uLB, uint64(in.Imm)
	case KindLH:
		u.op, u.aux = uLH, uint64(in.Imm)
	case KindLW:
		u.op, u.aux = uLW, uint64(in.Imm)
	case KindLD:
		u.op, u.aux = uLD, uint64(in.Imm)
	case KindLBU:
		u.op, u.aux = uLBU, uint64(in.Imm)
	case KindLHU:
		u.op, u.aux = uLHU, uint64(in.Imm)
	case KindLWU:
		u.op, u.aux = uLWU, uint64(in.Imm)
	case KindSB:
		u.op, u.aux = uSB, uint64(in.Imm)
	case KindSH:
		u.op, u.aux = uSH, uint64(in.Imm)
	case KindSW:
		u.op, u.aux = uSW, uint64(in.Imm)
	case KindSD:
		u.op, u.aux = uSD, uint64(in.Imm)
	case KindADDI:
		u.op, u.aux = uADDI, uint64(in.Imm)
	case KindADDIW:
		u.op, u.aux = uADDIW, uint64(in.Imm)
	case KindSLTI:
		u.op = uSLTI
	case KindSLTIU:
		u.op, u.aux = uSLTIU, uint64(in.Imm)
	case KindXORI:
		u.op, u.aux = uXORI, uint64(in.Imm)
	case KindORI:
		u.op, u.aux = uORI, uint64(in.Imm)
	case KindANDI:
		u.op, u.aux = uANDI, uint64(in.Imm)
	case KindSLLI:
		u.op, u.aux = uSLLI, uint64(in.Imm)
	case KindSRLI:
		u.op, u.aux = uSRLI, uint64(in.Imm)
	case KindSRAI:
		u.op, u.aux = uSRAI, uint64(in.Imm)
	case KindADD:
		u.op = uADD
	case KindSUB:
		u.op = uSUB
	case KindSLL:
		u.op = uSLL
	case KindSLT:
		u.op = uSLT
	case KindSLTU:
		u.op = uSLTU
	case KindXOR:
		u.op = uXOR
	case KindSRL:
		u.op = uSRL
	case KindSRA:
		u.op = uSRA
	case KindOR:
		u.op = uOR
	case KindAND:
		u.op = uAND
	case KindMUL:
		u.op = uMUL
	case KindMULHU:
		u.op = uMULHU
	case KindDIV:
		u.op = uDIV
	case KindDIVU:
		u.op = uDIVU
	case KindREM:
		u.op = uREM
	case KindREMU:
		u.op = uREMU
	case KindECALL:
		u.op = uECALL
	case KindEBREAK:
		u.op = uEBREAK
	case KindFENCE:
		u.op = uNOP
	default:
		u.op = uBAD
	}
	// A result written to x0 is architecturally discarded; lower the whole
	// instruction to a NOP (it still retires) so the ALU handlers never
	// need an rd!=0 guard. Loads keep their memory access (it can fault);
	// jumps keep their redirect.
	if zeroDst {
		switch u.op {
		case uCONST, uADDI, uADDIW, uSLTI, uSLTIU, uXORI, uORI,
			uANDI, uSLLI, uSRLI, uSRAI, uADD, uSUB, uSLL, uSLT,
			uSLTU, uXOR, uSRL, uSRA, uOR, uAND, uMUL, uMULHU,
			uDIV, uDIVU, uREM, uREMU:
			u.op = uNOP
		case uLB, uLBU:
			u.op, u.rd = uLoadX0, 1
		case uLH, uLHU:
			u.op, u.rd = uLoadX0, 2
		case uLW, uLWU:
			u.op, u.rd = uLoadX0, 4
		case uLD:
			u.op, u.rd = uLoadX0, 8
		}
	}
	return u
}

// blockAt returns the translated block entered at pc, building it on first
// use. A decode failure at the entry instruction is an error; a failure
// deeper in the run just ends the block early (the error surfaces if and
// when execution actually reaches that address).
func (d *DecodeCache) blockAt(pc uint64, mem *isa.Mem) (*block, error) {
	if d.mruB != nil && d.mruBPC == pc {
		return d.mruB, nil
	}
	if b, ok := d.blocks[pc]; ok {
		d.mruBPC, d.mruB = pc, b
		return b, nil
	}
	b := &block{pc: pc}
	p := pc
	for len(b.insts) < maxBlockLen {
		in, err := d.lookup(p, mem)
		if err != nil {
			if len(b.insts) == 0 {
				return nil, err
			}
			break
		}
		b.insts = append(b.insts, in)
		b.recs = append(b.recs, recTemplate(p, in))
		b.uops = append(b.uops, lowerInst(p, in))
		if blockEnds(in.Kind) {
			break
		}
		p += 4
	}
	b.end = pc + 4*uint64(len(b.insts))
	b.cnt.AddRecs(b.recs)
	d.blocks[pc] = b
	d.mruBPC, d.mruB = pc, b
	return b, nil
}

// enterBlock resolves the block entered at pc through the entry-PC map —
// a chain miss — and maintains the telemetry separating map entries from
// link-followed transitions. Distinct-block accounting piggybacks here:
// after ResetChains every link is severed, so the first post-reset entry
// into any block necessarily comes through this path and the per-block
// epoch mark counts it exactly once.
func (d *DecodeCache) enterBlock(pc uint64, mem *isa.Mem) (*block, error) {
	b, err := d.blockAt(pc, mem)
	if err != nil {
		return nil, err
	}
	d.chainMisses++
	if b.epoch != d.epoch {
		b.epoch = d.epoch
		d.blocksUsed++
	}
	return b, nil
}

// StepN executes up to max instructions through the block cache. With a
// non-nil out it appends one TraceRec per retired instruction; with nil
// out it takes the no-trace lane and builds no records at all. It returns
// after the block boundary that follows any environment call so the
// machine can poll hook-side effects with single-step granularity.
//
// Steady-state execution never touches the entry-PC map: after a block
// runs to completion with budget remaining, the next block is resolved
// through the superblock link slots, trained on the first transition. A
// block truncated by the budget neither follows nor patches a link — the
// next StepN call re-enters through the map — so chain shape never
// depends on where quantum boundaries fall.
func (c *Core) StepN(max int, out []isa.TraceRec) (int, []isa.TraceRec, error) {
	if max <= 0 {
		return 0, out, nil
	}
	d := c.Dec
	b, err := d.enterBlock(c.pc, c.Mem)
	if err != nil {
		return 0, out, err
	}
	total := 0
	for {
		var n int
		var stop bool
		if out != nil {
			n, out, stop, err = c.stepBlockTrace(b, max-total, out)
		} else {
			n, stop, err = c.stepBlockFast(b, max-total)
		}
		total += n
		if err != nil || stop || total >= max {
			return total, out, err
		}
		pc := c.pc
		if b.link0pc == pc && b.link0 != nil {
			d.chainHits++
			b = b.link0
			continue
		}
		if b.link1pc == pc && b.link1 != nil {
			d.chainHits++
			b = b.link1
			continue
		}
		nb, err := d.enterBlock(pc, c.Mem)
		if err != nil {
			return total, out, err
		}
		if b.link0 == nil {
			b.link0pc, b.link0 = pc, nb
		} else if b.link1 == nil {
			b.link1pc, b.link1 = pc, nb
		}
		b = nb
	}
}

// stepBlockTrace executes up to max instructions of b, appending trace
// records built from the block's templates. stop reports that an
// environment call was executed and control must return to the driver.
// The semantics of every case mirror Core.Step exactly; the lockstep
// differential and fuzz tests pin the equivalence.
//
// Retired-instruction accounting is batched: c.nInstr is folded once at
// each exit (and just before an ecall hook runs, which observes the
// count) instead of per instruction.
func (c *Core) stepBlockTrace(b *block, max int, out []isa.TraceRec) (int, []isa.TraceRec, bool, error) {
	r := &c.Regs
	n := len(b.uops)
	full := n <= max
	if !full {
		n = max
	}
	// Append the whole run of template records in one shot, then patch the
	// dynamic fields in place while executing — one bulk copy instead of a
	// copy-then-append pair per instruction. Paths that retire fewer than n
	// instructions truncate back to what actually ran.
	base := len(out)
	out = append(out, b.recs[:n]...)
	ring := c.DebugRing != nil
	uops := b.uops[:n]
	for i := range uops {
		u := &uops[i]
		if ring {
			c.ringPush(u.pc)
		}
		switch u.op {
		case uNOP:
		case uCONST:
			r[u.rd] = u.aux
		case uADDI:
			r[u.rd] = r[u.rs1] + u.aux
		case uADDIW:
			r[u.rd] = uint64(int64(int32(r[u.rs1] + u.aux)))
		case uSLTI:
			r[u.rd] = b2u(int64(r[u.rs1]) < u.imm)
		case uSLTIU:
			r[u.rd] = b2u(r[u.rs1] < u.aux)
		case uXORI:
			r[u.rd] = r[u.rs1] ^ u.aux
		case uORI:
			r[u.rd] = r[u.rs1] | u.aux
		case uANDI:
			r[u.rd] = r[u.rs1] & u.aux
		case uSLLI:
			r[u.rd] = r[u.rs1] << u.aux
		case uSRLI:
			r[u.rd] = r[u.rs1] >> u.aux
		case uSRAI:
			r[u.rd] = uint64(int64(r[u.rs1]) >> u.aux)
		case uADD:
			r[u.rd] = r[u.rs1] + r[u.rs2]
		case uSUB:
			r[u.rd] = r[u.rs1] - r[u.rs2]
		case uSLL:
			r[u.rd] = r[u.rs1] << (r[u.rs2] & 63)
		case uSLT:
			r[u.rd] = b2u(int64(r[u.rs1]) < int64(r[u.rs2]))
		case uSLTU:
			r[u.rd] = b2u(r[u.rs1] < r[u.rs2])
		case uXOR:
			r[u.rd] = r[u.rs1] ^ r[u.rs2]
		case uSRL:
			r[u.rd] = r[u.rs1] >> (r[u.rs2] & 63)
		case uSRA:
			r[u.rd] = uint64(int64(r[u.rs1]) >> (r[u.rs2] & 63))
		case uOR:
			r[u.rd] = r[u.rs1] | r[u.rs2]
		case uAND:
			r[u.rd] = r[u.rs1] & r[u.rs2]
		case uMUL:
			r[u.rd] = r[u.rs1] * r[u.rs2]
		case uMULHU:
			r[u.rd] = mulhu(r[u.rs1], r[u.rs2])
		case uDIV:
			r[u.rd] = uint64(divS(int64(r[u.rs1]), int64(r[u.rs2])))
		case uDIVU:
			r[u.rd] = divU(r[u.rs1], r[u.rs2])
		case uREM:
			r[u.rd] = uint64(remS(int64(r[u.rs1]), int64(r[u.rs2])))
		case uREMU:
			r[u.rd] = remU(r[u.rs1], r[u.rs2])
		case uLB:
			addr := r[u.rs1] + u.aux
			r[u.rd] = isa.SignExtend(c.Mem.Load8(addr), 1)
			out[base+i].MemAddr = addr
		case uLH:
			addr := r[u.rs1] + u.aux
			r[u.rd] = isa.SignExtend(c.Mem.Load16(addr), 2)
			out[base+i].MemAddr = addr
		case uLW:
			addr := r[u.rs1] + u.aux
			r[u.rd] = isa.SignExtend(c.Mem.Load32(addr), 4)
			out[base+i].MemAddr = addr
		case uLD:
			addr := r[u.rs1] + u.aux
			r[u.rd] = c.Mem.Load64(addr)
			out[base+i].MemAddr = addr
		case uLBU:
			addr := r[u.rs1] + u.aux
			r[u.rd] = c.Mem.Load8(addr)
			out[base+i].MemAddr = addr
		case uLHU:
			addr := r[u.rs1] + u.aux
			r[u.rd] = c.Mem.Load16(addr)
			out[base+i].MemAddr = addr
		case uLWU:
			addr := r[u.rs1] + u.aux
			r[u.rd] = c.Mem.Load32(addr)
			out[base+i].MemAddr = addr
		case uLoadX0:
			addr := r[u.rs1] + u.aux
			c.Mem.Load(addr, u.rd)
			out[base+i].MemAddr = addr
		case uSB:
			addr := r[u.rs1] + u.aux
			c.Mem.Store8(addr, r[u.rs2])
			out[base+i].MemAddr = addr
		case uSH:
			addr := r[u.rs1] + u.aux
			c.Mem.Store16(addr, r[u.rs2])
			out[base+i].MemAddr = addr
		case uSW:
			addr := r[u.rs1] + u.aux
			c.Mem.Store32(addr, r[u.rs2])
			out[base+i].MemAddr = addr
		case uSD:
			addr := r[u.rs1] + u.aux
			c.Mem.Store64(addr, r[u.rs2])
			out[base+i].MemAddr = addr
		case uJ:
			c.pc = uint64(u.imm)
			c.nInstr += uint64(i + 1)
			return i + 1, out, false, nil
		case uJAL:
			r[u.rd] = u.aux
			c.pc = uint64(u.imm)
			c.nInstr += uint64(i + 1)
			return i + 1, out, false, nil
		case uJR:
			c.pc = (r[u.rs1] + uint64(u.imm)) &^ 1
			out[base+i].Target = c.pc
			c.nInstr += uint64(i + 1)
			return i + 1, out, false, nil
		case uJALR:
			t := (r[u.rs1] + uint64(u.imm)) &^ 1
			r[u.rd] = u.aux
			c.pc = t
			out[base+i].Target = t
			c.nInstr += uint64(i + 1)
			return i + 1, out, false, nil
		case uBEQ:
			if r[u.rs1] == r[u.rs2] {
				c.pc = u.aux
				out[base+i].Taken = true
			} else {
				c.pc = u.pc + 4
			}
			c.nInstr += uint64(i + 1)
			return i + 1, out, false, nil
		case uBNE:
			if r[u.rs1] != r[u.rs2] {
				c.pc = u.aux
				out[base+i].Taken = true
			} else {
				c.pc = u.pc + 4
			}
			c.nInstr += uint64(i + 1)
			return i + 1, out, false, nil
		case uBLT:
			if int64(r[u.rs1]) < int64(r[u.rs2]) {
				c.pc = u.aux
				out[base+i].Taken = true
			} else {
				c.pc = u.pc + 4
			}
			c.nInstr += uint64(i + 1)
			return i + 1, out, false, nil
		case uBGE:
			if int64(r[u.rs1]) >= int64(r[u.rs2]) {
				c.pc = u.aux
				out[base+i].Taken = true
			} else {
				c.pc = u.pc + 4
			}
			c.nInstr += uint64(i + 1)
			return i + 1, out, false, nil
		case uBLTU:
			if r[u.rs1] < r[u.rs2] {
				c.pc = u.aux
				out[base+i].Taken = true
			} else {
				c.pc = u.pc + 4
			}
			c.nInstr += uint64(i + 1)
			return i + 1, out, false, nil
		case uBGEU:
			if r[u.rs1] >= r[u.rs2] {
				c.pc = u.aux
				out[base+i].Taken = true
			} else {
				c.pc = u.pc + 4
			}
			c.nInstr += uint64(i + 1)
			return i + 1, out, false, nil
		case uECALL:
			c.pc = u.pc
			c.nInstr += uint64(i)
			if c.Hook == nil {
				return i, out[:base+i], true, fmt.Errorf("riscv: ecall with no hook at pc=%#x", u.pc)
			}
			rec := &out[base+i]
			c.inflight = rec
			res := c.Hook(c)
			c.inflight = nil
			c.nInstr++
			switch res {
			case isa.EcallHandled:
				c.pc = u.pc + 4
				return i + 1, out, true, nil
			case isa.EcallVector:
				rec.Target = c.pc
				rec.Taken = true
				return i + 1, out, true, nil
			case isa.EcallBlock:
				c.pc = u.pc + 4
				return i + 1, out, true, ErrBlock
			case isa.EcallHalt:
				c.pc = u.pc + 4
				return i + 1, out, true, ErrHalt
			}
			return i, out[:base+i], true, fmt.Errorf("riscv: bad ecall result %d", res)
		case uEBREAK:
			c.pc = u.pc
			c.nInstr += uint64(i)
			return i, out[:base+i], true, fmt.Errorf("riscv: ebreak at pc=%#x", u.pc)
		default:
			c.pc = u.pc
			c.nInstr += uint64(i)
			return i, out[:base+i], true, fmt.Errorf("riscv: unimplemented %s at pc=%#x", b.insts[i].Kind, u.pc)
		}
	}
	c.nInstr += uint64(n)
	if full {
		c.pc = b.end
	} else {
		c.pc = b.uops[n].pc
	}
	return n, out, false, nil
}

// stepBlockFast executes up to max instructions of b without building any
// trace records — the setup-phase and fast-forward lane. Architectural
// effects, retired counts and environment-call behavior are identical to
// stepBlockTrace (Annotate is a no-op because no record is in flight,
// matching the single-step path whose records the machine discards in this
// mode). The class census is folded from the block's static totals — one
// whole-block add in the common case, a template prefix scan when the run
// was cut short by the budget or a control transfer.
func (c *Core) stepBlockFast(b *block, max int) (int, bool, error) {
	n, stop, err := c.stepBlockFastInner(b, max)
	if n == len(b.recs) {
		c.classes.Add(b.cnt)
	} else if n > 0 {
		c.classes.AddRecs(b.recs[:n])
	}
	return n, stop, err
}

func (c *Core) stepBlockFastInner(b *block, max int) (int, bool, error) {
	r := &c.Regs
	n := len(b.uops)
	full := n <= max
	if !full {
		n = max
	}
	ring := c.DebugRing != nil
	uops := b.uops[:n]
	for i := range uops {
		u := &uops[i]
		if ring {
			c.ringPush(u.pc)
		}
		switch u.op {
		case uNOP:
		case uCONST:
			r[u.rd] = u.aux
		case uADDI:
			r[u.rd] = r[u.rs1] + u.aux
		case uADDIW:
			r[u.rd] = uint64(int64(int32(r[u.rs1] + u.aux)))
		case uSLTI:
			r[u.rd] = b2u(int64(r[u.rs1]) < u.imm)
		case uSLTIU:
			r[u.rd] = b2u(r[u.rs1] < u.aux)
		case uXORI:
			r[u.rd] = r[u.rs1] ^ u.aux
		case uORI:
			r[u.rd] = r[u.rs1] | u.aux
		case uANDI:
			r[u.rd] = r[u.rs1] & u.aux
		case uSLLI:
			r[u.rd] = r[u.rs1] << u.aux
		case uSRLI:
			r[u.rd] = r[u.rs1] >> u.aux
		case uSRAI:
			r[u.rd] = uint64(int64(r[u.rs1]) >> u.aux)
		case uADD:
			r[u.rd] = r[u.rs1] + r[u.rs2]
		case uSUB:
			r[u.rd] = r[u.rs1] - r[u.rs2]
		case uSLL:
			r[u.rd] = r[u.rs1] << (r[u.rs2] & 63)
		case uSLT:
			r[u.rd] = b2u(int64(r[u.rs1]) < int64(r[u.rs2]))
		case uSLTU:
			r[u.rd] = b2u(r[u.rs1] < r[u.rs2])
		case uXOR:
			r[u.rd] = r[u.rs1] ^ r[u.rs2]
		case uSRL:
			r[u.rd] = r[u.rs1] >> (r[u.rs2] & 63)
		case uSRA:
			r[u.rd] = uint64(int64(r[u.rs1]) >> (r[u.rs2] & 63))
		case uOR:
			r[u.rd] = r[u.rs1] | r[u.rs2]
		case uAND:
			r[u.rd] = r[u.rs1] & r[u.rs2]
		case uMUL:
			r[u.rd] = r[u.rs1] * r[u.rs2]
		case uMULHU:
			r[u.rd] = mulhu(r[u.rs1], r[u.rs2])
		case uDIV:
			r[u.rd] = uint64(divS(int64(r[u.rs1]), int64(r[u.rs2])))
		case uDIVU:
			r[u.rd] = divU(r[u.rs1], r[u.rs2])
		case uREM:
			r[u.rd] = uint64(remS(int64(r[u.rs1]), int64(r[u.rs2])))
		case uREMU:
			r[u.rd] = remU(r[u.rs1], r[u.rs2])
		case uLB:
			r[u.rd] = isa.SignExtend(c.Mem.Load8(r[u.rs1]+u.aux), 1)
		case uLH:
			r[u.rd] = isa.SignExtend(c.Mem.Load16(r[u.rs1]+u.aux), 2)
		case uLW:
			r[u.rd] = isa.SignExtend(c.Mem.Load32(r[u.rs1]+u.aux), 4)
		case uLD:
			r[u.rd] = c.Mem.Load64(r[u.rs1]+u.aux)
		case uLBU:
			r[u.rd] = c.Mem.Load8(r[u.rs1]+u.aux)
		case uLHU:
			r[u.rd] = c.Mem.Load16(r[u.rs1]+u.aux)
		case uLWU:
			r[u.rd] = c.Mem.Load32(r[u.rs1]+u.aux)
		case uLoadX0:
			c.Mem.Load(r[u.rs1]+u.aux, u.rd)
		case uSB:
			c.Mem.Store8(r[u.rs1]+u.aux, r[u.rs2])
		case uSH:
			c.Mem.Store16(r[u.rs1]+u.aux, r[u.rs2])
		case uSW:
			c.Mem.Store32(r[u.rs1]+u.aux, r[u.rs2])
		case uSD:
			c.Mem.Store64(r[u.rs1]+u.aux, r[u.rs2])
		case uJ:
			c.pc = uint64(u.imm)
			c.nInstr += uint64(i + 1)
			return i + 1, false, nil
		case uJAL:
			r[u.rd] = u.aux
			c.pc = uint64(u.imm)
			c.nInstr += uint64(i + 1)
			return i + 1, false, nil
		case uJR:
			c.pc = (r[u.rs1] + uint64(u.imm)) &^ 1
			c.nInstr += uint64(i + 1)
			return i + 1, false, nil
		case uJALR:
			t := (r[u.rs1] + uint64(u.imm)) &^ 1
			r[u.rd] = u.aux
			c.pc = t
			c.nInstr += uint64(i + 1)
			return i + 1, false, nil
		case uBEQ:
			if r[u.rs1] == r[u.rs2] {
				c.pc = u.aux
			} else {
				c.pc = u.pc + 4
			}
			c.nInstr += uint64(i + 1)
			return i + 1, false, nil
		case uBNE:
			if r[u.rs1] != r[u.rs2] {
				c.pc = u.aux
			} else {
				c.pc = u.pc + 4
			}
			c.nInstr += uint64(i + 1)
			return i + 1, false, nil
		case uBLT:
			if int64(r[u.rs1]) < int64(r[u.rs2]) {
				c.pc = u.aux
			} else {
				c.pc = u.pc + 4
			}
			c.nInstr += uint64(i + 1)
			return i + 1, false, nil
		case uBGE:
			if int64(r[u.rs1]) >= int64(r[u.rs2]) {
				c.pc = u.aux
			} else {
				c.pc = u.pc + 4
			}
			c.nInstr += uint64(i + 1)
			return i + 1, false, nil
		case uBLTU:
			if r[u.rs1] < r[u.rs2] {
				c.pc = u.aux
			} else {
				c.pc = u.pc + 4
			}
			c.nInstr += uint64(i + 1)
			return i + 1, false, nil
		case uBGEU:
			if r[u.rs1] >= r[u.rs2] {
				c.pc = u.aux
			} else {
				c.pc = u.pc + 4
			}
			c.nInstr += uint64(i + 1)
			return i + 1, false, nil
		case uECALL:
			c.pc = u.pc
			c.nInstr += uint64(i)
			if c.Hook == nil {
				return i, true, fmt.Errorf("riscv: ecall with no hook at pc=%#x", u.pc)
			}
			res := c.Hook(c)
			c.nInstr++
			switch res {
			case isa.EcallHandled:
				c.pc = u.pc + 4
				return i + 1, true, nil
			case isa.EcallVector:
				return i + 1, true, nil
			case isa.EcallBlock:
				c.pc = u.pc + 4
				return i + 1, true, ErrBlock
			case isa.EcallHalt:
				c.pc = u.pc + 4
				return i + 1, true, ErrHalt
			}
			return i, true, fmt.Errorf("riscv: bad ecall result %d", res)
		case uEBREAK:
			c.pc = u.pc
			c.nInstr += uint64(i)
			return i, true, fmt.Errorf("riscv: ebreak at pc=%#x", u.pc)
		default:
			c.pc = u.pc
			c.nInstr += uint64(i)
			return i, true, fmt.Errorf("riscv: unimplemented %s at pc=%#x", b.insts[i].Kind, u.pc)
		}
	}
	c.nInstr += uint64(n)
	if full {
		c.pc = b.end
	} else {
		c.pc = b.uops[n].pc
	}
	return n, false, nil
}
