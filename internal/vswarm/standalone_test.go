package vswarm_test

import (
	"bytes"
	"crypto/aes"
	"fmt"
	"testing"

	"svbench/internal/harness"
	"svbench/internal/ir"
	"svbench/internal/isa"
	"svbench/internal/langrt"
	"svbench/internal/rpc"
	"svbench/internal/vswarm"
)

func run(t *testing.T, arch isa.Arch, rt langrt.Runtime, name string,
	build func() *ir.Module, req []byte) *harness.Result {
	t.Helper()
	res, err := harness.Run(arch, harness.Spec{
		Name:    name,
		Runtime: rt,
		Build:   func(*harness.Env) (*ir.Module, error) { return build(), nil },
		Request: func() []byte { return req },
	})
	if err != nil {
		t.Fatalf("%s/%s/%s: %v", arch, rt, name, err)
	}
	return res
}

func TestFibonacciGo(t *testing.T) {
	res := run(t, isa.RV64, langrt.GoRT, "fibonacci", vswarm.Fibonacci, vswarm.FibRequest(30))
	r := rpc.NewReader(res.Response)
	v, err := r.Int()
	if err != nil {
		t.Fatal(err)
	}
	if v != 832040 {
		t.Fatalf("fib(30) = %d, want 832040", v)
	}
	if res.Cold.Cycles <= res.Warm.Cycles {
		t.Fatalf("cold %d <= warm %d", res.Cold.Cycles, res.Warm.Cycles)
	}
}

func TestFibonacciAllRuntimesAgree(t *testing.T) {
	for _, arch := range []isa.Arch{isa.RV64, isa.CISC64} {
		for _, rt := range langrt.Runtimes {
			res := run(t, arch, rt, "fibonacci", vswarm.Fibonacci, vswarm.FibRequest(25))
			r := rpc.NewReader(res.Response)
			v, err := r.Int()
			if err != nil {
				t.Fatalf("%s/%s: %v", arch, rt, err)
			}
			if v != 75025 {
				t.Fatalf("%s/%s: fib(25) = %d, want 75025", arch, rt, v)
			}
			t.Logf("%s/%s: cold=%d warm=%d", arch, rt, res.Cold.Cycles, res.Warm.Cycles)
		}
	}
}

func TestAESMatchesCryptoAES(t *testing.T) {
	payload := vswarm.AESPayload(vswarm.DefaultAESPayload)
	res := run(t, isa.RV64, langrt.GoRT, "aes", vswarm.AES, vswarm.AESRequest(len(payload)))
	r := rpc.NewReader(res.Response)
	got, err := r.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	// Reference: crypto/aes in ECB over the same blocks.
	c, err := aes.NewCipher(vswarm.AESKey())
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, len(payload))
	for off := 0; off+16 <= len(payload); off += 16 {
		c.Encrypt(want[off:off+16], payload[off:off+16])
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("simulated AES disagrees with crypto/aes:\n got %x\nwant %x", got, want)
	}
}

func TestAuthGrantsAndDenies(t *testing.T) {
	res := run(t, isa.RV64, langrt.GoRT, "auth", vswarm.Auth, vswarm.AuthRequestMsg(3, true))
	r := rpc.NewReader(res.Response)
	granted, err := r.Int()
	if err != nil {
		t.Fatal(err)
	}
	if granted != 1 {
		t.Fatal("valid credentials denied")
	}
	res2 := run(t, isa.RV64, langrt.GoRT, "auth", vswarm.Auth, vswarm.AuthRequestMsg(3, false))
	r2 := rpc.NewReader(res2.Response)
	granted2, err := r2.Int()
	if err != nil {
		t.Fatal(err)
	}
	if granted2 != 0 {
		t.Fatal("invalid credentials granted")
	}
}

func TestRuntimeSignatures(t *testing.T) {
	if testing.Short() {
		t.Skip("full runtime sweep")
	}
	// The thesis's runtime signatures on RISC-V (Fig. 4.4): Node.js shows
	// a pronounced warm speedup; Python pays a large cold start.
	results := map[langrt.Runtime]*harness.Result{}
	for _, rt := range langrt.Runtimes {
		results[rt] = run(t, isa.RV64, rt, "fibonacci", vswarm.Fibonacci, vswarm.FibRequest(30))
	}
	gr, py, nd := results[langrt.GoRT], results[langrt.PyRT], results[langrt.NodeRT]
	if py.Cold.Cycles <= gr.Cold.Cycles {
		t.Errorf("python cold (%d) should exceed go cold (%d)", py.Cold.Cycles, gr.Cold.Cycles)
	}
	nodeRatio := float64(nd.Cold.Cycles) / float64(nd.Warm.Cycles)
	if nodeRatio < 1.4 {
		t.Errorf("node cold/warm ratio %.2f, want >= 1.4 (JIT warm speedup)", nodeRatio)
	}
	for rt, r := range results {
		t.Logf("%s: cold=%d warm=%d insts(cold)=%d l1i(cold)=%d",
			rt, r.Cold.Cycles, r.Warm.Cycles, r.Cold.Insts, r.Cold.L1IMisses)
	}
}

func TestISAInstructionGap(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-ISA sweep")
	}
	// Fig. 4.16: the x86 software stack executes more instructions.
	for _, rt := range []langrt.Runtime{langrt.GoRT, langrt.PyRT} {
		rv := run(t, isa.RV64, rt, "aes", vswarm.AES, vswarm.AESRequest(64))
		x := run(t, isa.CISC64, rt, "aes", vswarm.AES, vswarm.AESRequest(64))
		if x.Cold.Insts <= rv.Cold.Insts {
			t.Errorf("%s: cisc64 cold insts (%d) should exceed rv64 (%d)", rt, x.Cold.Insts, rv.Cold.Insts)
		}
		t.Logf("%s: insts rv=%d x86=%d cycles rv=%d x86=%d", rt,
			rv.Cold.Insts, x.Cold.Insts, rv.Cold.Cycles, x.Cold.Cycles)
	}
}

func ExampleFibRequest() {
	r := rpc.NewReader(vswarm.FibRequest(10))
	v, _ := r.Int()
	fmt.Println(v)
	// Output: 10
}
