package riscv

import (
	"fmt"
	"math/bits"

	"svbench/internal/isa"
)

func mulhu(a, b uint64) uint64 {
	hi, _ := bits.Mul64(a, b)
	return hi
}

// maxBlockLen caps a translated basic block. Long straight-line runs are
// split; the tail simply becomes another block keyed by its own entry PC.
const maxBlockLen = 32

// block is a translated basic block: a straight-line run of decoded
// instructions starting at pc, terminated by a control-flow instruction,
// an environment call, or maxBlockLen. All but the last instruction are
// guaranteed straight-line. Blocks are immutable after construction —
// execution copies the per-instruction TraceRec templates and never
// writes back.
type block struct {
	pc    uint64
	insts []Inst
	recs  []isa.TraceRec
}

// blockEnds reports whether k terminates a basic block.
func blockEnds(k Kind) bool {
	switch k {
	case KindJAL, KindJALR, KindBEQ, KindBNE, KindBLT, KindBGE, KindBLTU,
		KindBGEU, KindECALL, KindEBREAK:
		return true
	}
	return false
}

// recTemplate precomputes every TraceRec field that does not depend on
// register or memory state: PC, size, class, register dependences,
// micro-op count, and the targets of direct branches and jumps. Dynamic
// fields (Taken, indirect Target, MemAddr, ecall Flags/Seq) stay zero and
// are filled at execution time.
func recTemplate(pc uint64, in Inst) isa.TraceRec {
	rec := isa.TraceRec{
		PC: pc, Size: 4, Class: isa.ClassAlu,
		Src1: isa.NoDep, Src2: isa.NoDep, Dst: isa.NoDep,
		MicroOps: 1,
	}
	switch in.Kind {
	case KindLUI, KindAUIPC:
		rec.Dst = in.Rd
	case KindJAL:
		rec.Dst = in.Rd
		rec.Taken = true
		rec.Target = pc + uint64(in.Imm)
		if in.Rd == RegRA {
			rec.Class = isa.ClassCall
		} else {
			rec.Class = isa.ClassJump
		}
	case KindJALR:
		rec.Src1, rec.Dst = in.Rs1, in.Rd
		rec.Taken = true
		switch {
		case in.Rd == RegRA:
			rec.Class = isa.ClassCall
		case in.Rd == RegZero && in.Rs1 == RegRA:
			rec.Class = isa.ClassRet
		default:
			rec.Class = isa.ClassJump
		}
	case KindBEQ, KindBNE, KindBLT, KindBGE, KindBLTU, KindBGEU:
		rec.Class = isa.ClassBranch
		rec.Src1, rec.Src2 = in.Rs1, in.Rs2
		rec.Target = pc + uint64(in.Imm)
	case KindLB, KindLBU:
		rec.Class, rec.MemSize = isa.ClassLoad, 1
		rec.Src1, rec.Dst = in.Rs1, in.Rd
	case KindLH, KindLHU:
		rec.Class, rec.MemSize = isa.ClassLoad, 2
		rec.Src1, rec.Dst = in.Rs1, in.Rd
	case KindLW, KindLWU:
		rec.Class, rec.MemSize = isa.ClassLoad, 4
		rec.Src1, rec.Dst = in.Rs1, in.Rd
	case KindLD:
		rec.Class, rec.MemSize = isa.ClassLoad, 8
		rec.Src1, rec.Dst = in.Rs1, in.Rd
	case KindSB:
		rec.Class, rec.MemSize = isa.ClassStore, 1
		rec.Src1, rec.Src2 = in.Rs1, in.Rs2
	case KindSH:
		rec.Class, rec.MemSize = isa.ClassStore, 2
		rec.Src1, rec.Src2 = in.Rs1, in.Rs2
	case KindSW:
		rec.Class, rec.MemSize = isa.ClassStore, 4
		rec.Src1, rec.Src2 = in.Rs1, in.Rs2
	case KindSD:
		rec.Class, rec.MemSize = isa.ClassStore, 8
		rec.Src1, rec.Src2 = in.Rs1, in.Rs2
	case KindADDI, KindADDIW, KindSLTI, KindSLTIU, KindXORI, KindORI,
		KindANDI, KindSLLI, KindSRLI, KindSRAI:
		rec.Src1, rec.Dst = in.Rs1, in.Rd
	case KindADD, KindSUB, KindSLL, KindSLT, KindSLTU, KindXOR, KindSRL,
		KindSRA, KindOR, KindAND:
		rec.Src1, rec.Src2, rec.Dst = in.Rs1, in.Rs2, in.Rd
	case KindMUL, KindMULHU:
		rec.Class = isa.ClassMul
		rec.Src1, rec.Src2, rec.Dst = in.Rs1, in.Rs2, in.Rd
	case KindDIV, KindDIVU, KindREM, KindREMU:
		rec.Class = isa.ClassDiv
		rec.Src1, rec.Src2, rec.Dst = in.Rs1, in.Rs2, in.Rd
	case KindECALL:
		rec.Class = isa.ClassEcall
	case KindFENCE:
		rec.Class = isa.ClassFence
	}
	return rec
}

// blockAt returns the translated block entered at pc, building it on first
// use. A decode failure at the entry instruction is an error; a failure
// deeper in the run just ends the block early (the error surfaces if and
// when execution actually reaches that address).
func (d *DecodeCache) blockAt(pc uint64, mem *isa.Mem) (*block, error) {
	if d.mruB != nil && d.mruBPC == pc {
		return d.mruB, nil
	}
	if b, ok := d.blocks[pc]; ok {
		d.mruBPC, d.mruB = pc, b
		return b, nil
	}
	b := &block{pc: pc}
	p := pc
	for len(b.insts) < maxBlockLen {
		in, err := d.lookup(p, mem)
		if err != nil {
			if len(b.insts) == 0 {
				return nil, err
			}
			break
		}
		b.insts = append(b.insts, in)
		b.recs = append(b.recs, recTemplate(p, in))
		if blockEnds(in.Kind) {
			break
		}
		p += 4
	}
	d.blocks[pc] = b
	d.mruBPC, d.mruB = pc, b
	return b, nil
}

// StepN executes up to max instructions through the block cache. With a
// non-nil out it appends one TraceRec per retired instruction; with nil
// out it takes the no-trace lane and builds no records at all. It returns
// after the block boundary that follows any environment call so the
// machine can poll hook-side effects with single-step granularity.
func (c *Core) StepN(max int, out []isa.TraceRec) (int, []isa.TraceRec, error) {
	total := 0
	for total < max {
		b, err := c.Dec.blockAt(c.pc, c.Mem)
		if err != nil {
			return total, out, err
		}
		var n int
		var stop bool
		if out != nil {
			n, out, stop, err = c.stepBlockTrace(b, max-total, out)
		} else {
			n, stop, err = c.stepBlockFast(b, max-total)
		}
		total += n
		if err != nil || stop {
			return total, out, err
		}
	}
	return total, out, nil
}

// stepBlockTrace executes up to max instructions of b, appending trace
// records built from the block's templates. stop reports that an
// environment call was executed and control must return to the driver.
// The semantics of every case mirror Core.Step exactly; the lockstep
// differential and fuzz tests pin the equivalence.
func (c *Core) stepBlockTrace(b *block, max int, out []isa.TraceRec) (int, []isa.TraceRec, bool, error) {
	pc := c.pc
	r := &c.Regs
	n := len(b.insts)
	if n > max {
		n = max
	}
	// Append the whole run of template records in one shot, then patch the
	// dynamic fields in place while executing — one bulk copy instead of a
	// copy-then-append pair per instruction. Paths that retire fewer than n
	// instructions truncate back to what actually ran.
	base := len(out)
	out = append(out, b.recs[:n]...)
	for i := 0; i < n; i++ {
		in := &b.insts[i]
		if c.DebugRing != nil {
			c.ringPush(pc)
		}
		rec := &out[base+i]
		next := pc + 4

		switch in.Kind {
		case KindLUI:
			c.set(in.Rd, uint64(in.Imm<<12))
		case KindAUIPC:
			c.set(in.Rd, pc+uint64(in.Imm<<12))
		case KindJAL:
			c.set(in.Rd, pc+4)
			next = rec.Target
		case KindJALR:
			t := (r[in.Rs1] + uint64(in.Imm)) &^ 1
			c.set(in.Rd, pc+4)
			next = t
			rec.Target = next
		case KindBEQ, KindBNE, KindBLT, KindBGE, KindBLTU, KindBGEU:
			var take bool
			a, bb := r[in.Rs1], r[in.Rs2]
			switch in.Kind {
			case KindBEQ:
				take = a == bb
			case KindBNE:
				take = a != bb
			case KindBLT:
				take = int64(a) < int64(bb)
			case KindBGE:
				take = int64(a) >= int64(bb)
			case KindBLTU:
				take = a < bb
			case KindBGEU:
				take = a >= bb
			}
			if take {
				next = rec.Target
				rec.Taken = true
			}
		case KindLB, KindLH, KindLW, KindLD:
			addr := r[in.Rs1] + uint64(in.Imm)
			c.set(in.Rd, isa.SignExtend(c.Mem.Load(addr, rec.MemSize), rec.MemSize))
			rec.MemAddr = addr
		case KindLBU, KindLHU, KindLWU:
			addr := r[in.Rs1] + uint64(in.Imm)
			c.set(in.Rd, c.Mem.Load(addr, rec.MemSize))
			rec.MemAddr = addr
		case KindSB, KindSH, KindSW, KindSD:
			addr := r[in.Rs1] + uint64(in.Imm)
			c.Mem.Store(addr, rec.MemSize, r[in.Rs2])
			rec.MemAddr = addr
		case KindADDI:
			c.set(in.Rd, r[in.Rs1]+uint64(in.Imm))
		case KindADDIW:
			c.set(in.Rd, uint64(int64(int32(r[in.Rs1]+uint64(in.Imm)))))
		case KindSLTI:
			c.set(in.Rd, b2u(int64(r[in.Rs1]) < in.Imm))
		case KindSLTIU:
			c.set(in.Rd, b2u(r[in.Rs1] < uint64(in.Imm)))
		case KindXORI:
			c.set(in.Rd, r[in.Rs1]^uint64(in.Imm))
		case KindORI:
			c.set(in.Rd, r[in.Rs1]|uint64(in.Imm))
		case KindANDI:
			c.set(in.Rd, r[in.Rs1]&uint64(in.Imm))
		case KindSLLI:
			c.set(in.Rd, r[in.Rs1]<<uint64(in.Imm))
		case KindSRLI:
			c.set(in.Rd, r[in.Rs1]>>uint64(in.Imm))
		case KindSRAI:
			c.set(in.Rd, uint64(int64(r[in.Rs1])>>uint64(in.Imm)))
		case KindADD:
			c.set(in.Rd, r[in.Rs1]+r[in.Rs2])
		case KindSUB:
			c.set(in.Rd, r[in.Rs1]-r[in.Rs2])
		case KindSLL:
			c.set(in.Rd, r[in.Rs1]<<(r[in.Rs2]&63))
		case KindSLT:
			c.set(in.Rd, b2u(int64(r[in.Rs1]) < int64(r[in.Rs2])))
		case KindSLTU:
			c.set(in.Rd, b2u(r[in.Rs1] < r[in.Rs2]))
		case KindXOR:
			c.set(in.Rd, r[in.Rs1]^r[in.Rs2])
		case KindSRL:
			c.set(in.Rd, r[in.Rs1]>>(r[in.Rs2]&63))
		case KindSRA:
			c.set(in.Rd, uint64(int64(r[in.Rs1])>>(r[in.Rs2]&63)))
		case KindOR:
			c.set(in.Rd, r[in.Rs1]|r[in.Rs2])
		case KindAND:
			c.set(in.Rd, r[in.Rs1]&r[in.Rs2])
		case KindMUL:
			c.set(in.Rd, r[in.Rs1]*r[in.Rs2])
		case KindMULHU:
			c.set(in.Rd, mulhu(r[in.Rs1], r[in.Rs2]))
		case KindDIV:
			c.set(in.Rd, uint64(divS(int64(r[in.Rs1]), int64(r[in.Rs2]))))
		case KindDIVU:
			c.set(in.Rd, divU(r[in.Rs1], r[in.Rs2]))
		case KindREM:
			c.set(in.Rd, uint64(remS(int64(r[in.Rs1]), int64(r[in.Rs2]))))
		case KindREMU:
			c.set(in.Rd, remU(r[in.Rs1], r[in.Rs2]))
		case KindFENCE:
			// no architectural effect
		case KindECALL:
			c.pc = pc
			if c.Hook == nil {
				return i, out[:base+i], true, fmt.Errorf("riscv: ecall with no hook at pc=%#x", pc)
			}
			c.inflight = rec
			res := c.Hook(c)
			c.inflight = nil
			c.nInstr++
			switch res {
			case isa.EcallHandled:
				c.pc = next
				return i + 1, out[:base+i+1], true, nil
			case isa.EcallVector:
				rec.Target = c.pc
				rec.Taken = true
				return i + 1, out[:base+i+1], true, nil
			case isa.EcallBlock:
				c.pc = next
				return i + 1, out[:base+i+1], true, ErrBlock
			case isa.EcallHalt:
				c.pc = next
				return i + 1, out[:base+i+1], true, ErrHalt
			}
			return i, out[:base+i], true, fmt.Errorf("riscv: bad ecall result %d", res)
		case KindEBREAK:
			c.pc = pc
			return i, out[:base+i], true, fmt.Errorf("riscv: ebreak at pc=%#x", pc)
		default:
			c.pc = pc
			return i, out[:base+i], true, fmt.Errorf("riscv: unimplemented %s at pc=%#x", in.Kind, pc)
		}
		c.nInstr++
		pc = next
	}
	c.pc = pc
	return n, out, false, nil
}

// stepBlockFast executes up to max instructions of b without building any
// trace records — the setup-phase lane. Architectural effects, retired
// counts and environment-call behavior are identical to stepBlockTrace
// (Annotate is a no-op because no record is in flight, matching the
// single-step path whose records the machine discards in this mode).
func (c *Core) stepBlockFast(b *block, max int) (int, bool, error) {
	pc := c.pc
	r := &c.Regs
	n := len(b.insts)
	if n > max {
		n = max
	}
	for i := 0; i < n; i++ {
		in := &b.insts[i]
		if c.DebugRing != nil {
			c.ringPush(pc)
		}
		next := pc + 4

		switch in.Kind {
		case KindLUI:
			c.set(in.Rd, uint64(in.Imm<<12))
		case KindAUIPC:
			c.set(in.Rd, pc+uint64(in.Imm<<12))
		case KindJAL:
			c.set(in.Rd, pc+4)
			next = b.recs[i].Target
		case KindJALR:
			t := (r[in.Rs1] + uint64(in.Imm)) &^ 1
			c.set(in.Rd, pc+4)
			next = t
		case KindBEQ, KindBNE, KindBLT, KindBGE, KindBLTU, KindBGEU:
			var take bool
			a, bb := r[in.Rs1], r[in.Rs2]
			switch in.Kind {
			case KindBEQ:
				take = a == bb
			case KindBNE:
				take = a != bb
			case KindBLT:
				take = int64(a) < int64(bb)
			case KindBGE:
				take = int64(a) >= int64(bb)
			case KindBLTU:
				take = a < bb
			case KindBGEU:
				take = a >= bb
			}
			if take {
				next = b.recs[i].Target
			}
		case KindLB, KindLH, KindLW, KindLD:
			sz := b.recs[i].MemSize
			c.set(in.Rd, isa.SignExtend(c.Mem.Load(r[in.Rs1]+uint64(in.Imm), sz), sz))
		case KindLBU, KindLHU, KindLWU:
			c.set(in.Rd, c.Mem.Load(r[in.Rs1]+uint64(in.Imm), b.recs[i].MemSize))
		case KindSB, KindSH, KindSW, KindSD:
			c.Mem.Store(r[in.Rs1]+uint64(in.Imm), b.recs[i].MemSize, r[in.Rs2])
		case KindADDI:
			c.set(in.Rd, r[in.Rs1]+uint64(in.Imm))
		case KindADDIW:
			c.set(in.Rd, uint64(int64(int32(r[in.Rs1]+uint64(in.Imm)))))
		case KindSLTI:
			c.set(in.Rd, b2u(int64(r[in.Rs1]) < in.Imm))
		case KindSLTIU:
			c.set(in.Rd, b2u(r[in.Rs1] < uint64(in.Imm)))
		case KindXORI:
			c.set(in.Rd, r[in.Rs1]^uint64(in.Imm))
		case KindORI:
			c.set(in.Rd, r[in.Rs1]|uint64(in.Imm))
		case KindANDI:
			c.set(in.Rd, r[in.Rs1]&uint64(in.Imm))
		case KindSLLI:
			c.set(in.Rd, r[in.Rs1]<<uint64(in.Imm))
		case KindSRLI:
			c.set(in.Rd, r[in.Rs1]>>uint64(in.Imm))
		case KindSRAI:
			c.set(in.Rd, uint64(int64(r[in.Rs1])>>uint64(in.Imm)))
		case KindADD:
			c.set(in.Rd, r[in.Rs1]+r[in.Rs2])
		case KindSUB:
			c.set(in.Rd, r[in.Rs1]-r[in.Rs2])
		case KindSLL:
			c.set(in.Rd, r[in.Rs1]<<(r[in.Rs2]&63))
		case KindSLT:
			c.set(in.Rd, b2u(int64(r[in.Rs1]) < int64(r[in.Rs2])))
		case KindSLTU:
			c.set(in.Rd, b2u(r[in.Rs1] < r[in.Rs2]))
		case KindXOR:
			c.set(in.Rd, r[in.Rs1]^r[in.Rs2])
		case KindSRL:
			c.set(in.Rd, r[in.Rs1]>>(r[in.Rs2]&63))
		case KindSRA:
			c.set(in.Rd, uint64(int64(r[in.Rs1])>>(r[in.Rs2]&63)))
		case KindOR:
			c.set(in.Rd, r[in.Rs1]|r[in.Rs2])
		case KindAND:
			c.set(in.Rd, r[in.Rs1]&r[in.Rs2])
		case KindMUL:
			c.set(in.Rd, r[in.Rs1]*r[in.Rs2])
		case KindMULHU:
			c.set(in.Rd, mulhu(r[in.Rs1], r[in.Rs2]))
		case KindDIV:
			c.set(in.Rd, uint64(divS(int64(r[in.Rs1]), int64(r[in.Rs2]))))
		case KindDIVU:
			c.set(in.Rd, divU(r[in.Rs1], r[in.Rs2]))
		case KindREM:
			c.set(in.Rd, uint64(remS(int64(r[in.Rs1]), int64(r[in.Rs2]))))
		case KindREMU:
			c.set(in.Rd, remU(r[in.Rs1], r[in.Rs2]))
		case KindFENCE:
			// no architectural effect
		case KindECALL:
			c.pc = pc
			if c.Hook == nil {
				return i, true, fmt.Errorf("riscv: ecall with no hook at pc=%#x", pc)
			}
			res := c.Hook(c)
			c.nInstr++
			switch res {
			case isa.EcallHandled:
				c.pc = next
				return i + 1, true, nil
			case isa.EcallVector:
				return i + 1, true, nil
			case isa.EcallBlock:
				c.pc = next
				return i + 1, true, ErrBlock
			case isa.EcallHalt:
				c.pc = next
				return i + 1, true, ErrHalt
			}
			return i, true, fmt.Errorf("riscv: bad ecall result %d", res)
		case KindEBREAK:
			c.pc = pc
			return i, true, fmt.Errorf("riscv: ebreak at pc=%#x", pc)
		default:
			c.pc = pc
			return i, true, fmt.Errorf("riscv: unimplemented %s at pc=%#x", in.Kind, pc)
		}
		c.nInstr++
		pc = next
	}
	c.pc = pc
	return n, false, nil
}
