// Package irtest provides a corpus of small IR programs used for
// differential testing across execution engines: the IR reference
// interpreter, the RV64 backend and the CISC64 backend must agree on every
// program in the corpus.
package irtest

import "svbench/internal/ir"

// Case is one differential test case.
type Case struct {
	Name string
	Fn   string // entry function
	Args []int64
	Want int64
}

// Corpus builds a module exercising every IR operation and returns it with
// the cases to run against it.
func Corpus() (*ir.Module, []Case) {
	m := ir.NewModule("irtest")

	// fib(n): iterative Fibonacci.
	{
		b := ir.NewFunc("fib", 1)
		n := b.Param(0)
		a := b.Const(0)
		c := b.Const(1)
		i := b.Const(0)
		loop, done := b.NewLabel("loop"), b.NewLabel("done")
		b.Label(loop)
		b.Br(ir.Ge, i, n, done)
		t := b.Add(a, c)
		b.MovInto(a, c)
		b.MovInto(c, t)
		b.AddIInto(i, i, 1)
		b.Jmp(loop)
		b.Label(done)
		b.Ret(a)
		m.AddFunc(b.Build())
	}

	// arith(x, y): exercises every ALU op.
	{
		b := ir.NewFunc("arith", 2)
		x, y := b.Param(0), b.Param(1)
		r := b.Add(x, y)
		r = b.Sub(r, b.Mul(x, y))
		r = b.Xor(r, b.And(x, y))
		r = b.Or(r, b.Shl(x, b.Const(3)))
		r = b.Add(r, b.Shr(y, b.Const(2)))
		r = b.Add(r, b.Sra(x, b.Const(1)))
		r = b.Add(r, b.Div(y, b.AddI(x, 1)))
		r = b.Add(r, b.Rem(y, b.AddI(x, 2)))
		r = b.Add(r, b.DivU(y, b.AddI(x, 3)))
		r = b.Add(r, b.RemU(y, b.AddI(x, 4)))
		r = b.Add(r, b.MulI(x, 7))
		r = b.Add(r, b.AndI(y, 0xFF))
		r = b.Add(r, b.OrI(x, 0x10))
		r = b.Add(r, b.XorI(y, 0x55))
		r = b.Add(r, b.ShlI(x, 2))
		r = b.Add(r, b.ShrI(y, 3))
		r = b.Add(r, b.SraI(x, 4))
		b.Ret(r)
		m.AddFunc(b.Build())
	}

	// cmps(x, y): folds every Set condition into one value.
	{
		b := ir.NewFunc("cmps", 2)
		x, y := b.Param(0), b.Param(1)
		r := b.Const(0)
		for i, c := range []ir.Cond{ir.Eq, ir.Ne, ir.Lt, ir.Le, ir.Gt, ir.Ge, ir.Ltu, ir.Geu} {
			s := b.Set(c, x, y)
			sh := b.ShlI(s, int64(i))
			b.OrInto(r, r, sh)
		}
		b.Ret(r)
		m.AddFunc(b.Build())
	}

	// branches(x): chain of conditional branches with both Br and BrI.
	{
		b := ir.NewFunc("branches", 1)
		x := b.Param(0)
		r := b.Const(0)
		l1, l2, l3, end := b.NewLabel("l1"), b.NewLabel("l2"), b.NewLabel("l3"), b.NewLabel("end")
		b.BrI(ir.Lt, x, 10, l1)
		b.AddIInto(r, r, 100)
		b.Label(l1)
		b.BrI(ir.Eq, x, 5, l2)
		b.AddIInto(r, r, 10)
		b.Label(l2)
		ten := b.Const(10)
		b.Br(ir.Gt, x, ten, l3)
		b.AddIInto(r, r, 1)
		b.Label(l3)
		b.BrI(ir.Ne, x, 0, end)
		b.AddIInto(r, r, 1000)
		b.Label(end)
		b.Ret(r)
		m.AddFunc(b.Build())
	}

	// memops(v): stores values at multiple sizes into a frame buffer and
	// reads them back with sign/zero extension.
	{
		b := ir.NewFunc("memops", 1)
		v := b.Param(0)
		buf := b.Buf("scratch", 64)
		p := b.Frame(buf, 0)
		b.Store(p, 0, v, 1)
		b.Store(p, 8, v, 2)
		b.Store(p, 16, v, 4)
		b.Store(p, 24, v, 8)
		r := b.Load(p, 0, 1)
		r = b.Add(r, b.LoadU(p, 0, 1))
		r = b.Add(r, b.Load(p, 8, 2))
		r = b.Add(r, b.LoadU(p, 8, 2))
		r = b.Add(r, b.Load(p, 16, 4))
		r = b.Add(r, b.LoadU(p, 16, 4))
		r = b.Add(r, b.Load(p, 24, 8))
		b.Ret(r)
		m.AddFunc(b.Build())
	}

	// sumglobal(): walks a global table.
	{
		data := make([]byte, 0, 16*8)
		for i := 0; i < 16; i++ {
			v := uint64(i*i + 3)
			for k := 0; k < 8; k++ {
				data = append(data, byte(v>>(8*k)))
			}
		}
		m.AddGlobal(&ir.Global{Name: "table", Data: data})

		b := ir.NewFunc("sumglobal", 0)
		p := b.Global("table", 0)
		i := b.Const(0)
		sum := b.Const(0)
		loop, done := b.NewLabel("loop"), b.NewLabel("done")
		b.Label(loop)
		b.BrI(ir.Ge, i, 16, done)
		off := b.ShlI(i, 3)
		addr := b.Add(p, off)
		v := b.Load(addr, 0, 8)
		b.AddInto(sum, sum, v)
		b.AddIInto(i, i, 1)
		b.Jmp(loop)
		b.Label(done)
		b.Ret(sum)
		m.AddFunc(b.Build())
	}

	// helper(a, b) and caller(x): exercises the call path.
	{
		b := ir.NewFunc("helper", 2)
		s := b.Mul(b.Param(0), b.Param(1))
		s = b.AddI(s, 11)
		b.Ret(s)
		m.AddFunc(b.Build())

		c := ir.NewFunc("caller", 1)
		x := c.Param(0)
		r1 := c.Call("helper", x, c.Const(3))
		r2 := c.Call("helper", r1, x)
		c.Ret(c.Add(r1, r2))
		m.AddFunc(c.Build())
	}

	// deep(n): nested calls through three levels.
	{
		l2 := ir.NewFunc("deep2", 1)
		l2.Ret(l2.AddI(l2.Param(0), 5))
		m.AddFunc(l2.Build())
		l1 := ir.NewFunc("deep1", 1)
		l1.Ret(l1.Call("deep2", l1.MulI(l1.Param(0), 2)))
		m.AddFunc(l1.Build())
		l0 := ir.NewFunc("deep", 1)
		l0.Ret(l0.Call("deep1", l0.AddI(l0.Param(0), 1)))
		m.AddFunc(l0.Build())
	}

	// bigimm(): 64-bit immediate materialization.
	{
		b := ir.NewFunc("bigimm", 0)
		r := b.Const(0x123456789ABCDEF0 >> 1)
		r = b.Add(r, b.Const(-0x12345678))
		r = b.Add(r, b.Const(0x7FFFFFFF))
		r = b.Add(r, b.Const(-1))
		b.Ret(r)
		m.AddFunc(b.Build())
	}

	// checksum(seed): FNV-style hash over a frame buffer, mixing loads,
	// multiplies and xors — a dense mixed workload.
	{
		b := ir.NewFunc("checksum", 1)
		seed := b.Param(0)
		buf := b.Buf("data", 256)
		p := b.Frame(buf, 0)
		i := b.Const(0)
		fill, hash, done := b.NewLabel("fill"), b.NewLabel("hash"), b.NewLabel("done")
		b.Label(fill)
		b.BrI(ir.Ge, i, 256, hash)
		v := b.Add(i, seed)
		addr := b.Add(p, i)
		b.Store(addr, 0, v, 1)
		b.AddIInto(i, i, 1)
		b.Jmp(fill)
		b.Label(hash)
		h := b.Const(0xCBF29CE484222325 >> 1)
		b.ConstInto(i, 0)
		loop := b.NewLabel("loop")
		b.Label(loop)
		b.BrI(ir.Ge, i, 256, done)
		addr2 := b.Add(p, i)
		c := b.LoadU(addr2, 0, 1)
		b.XorInto(h, h, c)
		prime := b.Const(0x100000001B3)
		b.MulInto(h, h, prime)
		b.AddIInto(i, i, 1)
		b.Jmp(loop)
		b.Label(done)
		b.Ret(h)
		m.AddFunc(b.Build())
	}

	if err := m.Validate(); err != nil {
		panic(err)
	}

	cases := []Case{
		{"fib-0", "fib", []int64{0}, 0},
		{"fib-1", "fib", []int64{1}, 1},
		{"fib-10", "fib", []int64{10}, 55},
		{"fib-30", "fib", []int64{30}, 832040},
		{"arith", "arith", []int64{17, 99}, 0},
		{"arith-neg", "arith", []int64{-9, 1234}, 0},
		{"cmps-eq", "cmps", []int64{5, 5}, 0},
		{"cmps-lt", "cmps", []int64{-3, 7}, 0},
		{"cmps-gtu", "cmps", []int64{-1, 7}, 0},
		{"branches-0", "branches", []int64{0}, 0},
		{"branches-5", "branches", []int64{5}, 0},
		{"branches-20", "branches", []int64{20}, 0},
		{"memops-pos", "memops", []int64{0x7F}, 0},
		{"memops-neg", "memops", []int64{-2}, 0},
		{"memops-wide", "memops", []int64{0x1234_5678_9ABC_DEF0}, 0},
		{"sumglobal", "sumglobal", nil, 0},
		{"caller", "caller", []int64{6}, 0},
		{"deep", "deep", []int64{7}, 0},
		{"bigimm", "bigimm", nil, 0},
		{"checksum", "checksum", []int64{42}, 0},
	}
	// Fill expected values from the reference interpreter where the table
	// holds zero (cases with hand-computed values keep them and are
	// cross-checked by the interpreter in tests anyway).
	it := ir.NewInterp(m, 1<<20)
	for i := range cases {
		cases[i].Want = it.Run(cases[i].Fn, cases[i].Args...)
	}
	return m, cases
}
