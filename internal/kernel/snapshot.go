package kernel

// MsgSnap is one in-flight channel message in a checkpoint.
type MsgSnap struct {
	Addr, Len, Seq uint64
}

// ChanSnap is one channel's checkpointable state. Service bindings are
// reattached by the caller, not checkpointed.
type ChanSnap struct {
	Msgs    []MsgSnap
	Waiters []int // process IDs
}

// SnapChannels captures all channel contents and waiter lists.
func (k *Kernel) SnapChannels() []ChanSnap {
	out := make([]ChanSnap, len(k.chans))
	for i, c := range k.chans {
		for _, m := range c.msgs {
			out[i].Msgs = append(out[i].Msgs, MsgSnap{Addr: m.addr, Len: m.ln, Seq: m.seq})
		}
		for _, w := range c.waiters {
			out[i].Waiters = append(out[i].Waiters, w.ID)
		}
	}
	return out
}

// RestoreChannels reinstates channel contents from snaps. byID maps
// process IDs to live processes.
func (k *Kernel) RestoreChannels(snaps []ChanSnap, byID map[int]*Process) {
	for i, s := range snaps {
		c := k.chans[i]
		c.msgs = nil
		for _, m := range s.Msgs {
			c.msgs = append(c.msgs, message{addr: m.Addr, ln: m.Len, seq: m.Seq})
		}
		c.waiters = nil
		for _, id := range s.Waiters {
			c.waiters = append(c.waiters, byID[id])
		}
	}
}
