package harness

import (
	"fmt"

	"svbench/internal/gemsys"
	"svbench/internal/ir"
	"svbench/internal/isa"
	"svbench/internal/kernel"
	"svbench/internal/langrt"
	"svbench/internal/libc"
	"svbench/internal/vswarm"
)

// Lukewarm execution study (§2.1 of the thesis, after Schall et al.):
// when invocations of different functions interleave on the same core, a
// warm container cannot capitalize on the microarchitectural state of its
// previous invocation — each request behaves closer to a first call. Two
// function containers share core 1 and the client alternates between
// them; the measured window brackets function A's final request.

// LukewarmResult compares function A's interleaved "warm" request against
// its solo warm execution.
type LukewarmResult struct {
	Name     string
	Arch     isa.Arch
	Solo     uint64 // solo warm cycles (requests back to back)
	Lukewarm uint64 // warm cycles with B's requests interleaved
	SoloL1I  uint64
	LukeL1I  uint64
}

// RunLukewarm measures spec's warm request in isolation and interleaved
// with other's requests on the same core.
func RunLukewarm(arch isa.Arch, spec, other Spec) (*LukewarmResult, error) {
	solo, err := Run(arch, spec)
	if err != nil {
		return nil, err
	}
	cfg := gemsys.DefaultConfig(arch)
	m, err := gemsys.New(cfg)
	if err != nil {
		return nil, err
	}
	env := &Env{M: m}
	flavor := libc.ForArch(string(arch))

	spawn := func(sp Spec) (reqCh, respCh int, err error) {
		workload, err := sp.Build(env)
		if err != nil {
			return 0, 0, err
		}
		server, err := langrt.BuildServer(sp.Runtime, flavor, workload, vswarm.Handler)
		if err != nil {
			return 0, 0, err
		}
		reqCh = m.K.NewChannel()
		respCh = m.K.NewChannel()
		_, err = m.Spawn("server-"+sp.Name, server, "main", 1,
			[]uint64{uint64(reqCh), uint64(respCh)})
		return reqCh, respCh, err
	}
	aReq, aResp, err := spawn(spec)
	if err != nil {
		return nil, err
	}
	bReq, bResp, err := spawn(other)
	if err != nil {
		return nil, err
	}

	client := buildInterleavedClient(spec.Request(), other.Request(), 10,
		uint64(bReq), uint64(bResp))
	if _, err := m.Spawn("client", client, "main", 0,
		[]uint64{uint64(aReq), uint64(aResp)}); err != nil {
		return nil, err
	}

	if err := m.RunSetup(setupBudget); err != nil {
		return nil, fmt.Errorf("harness: lukewarm setup: %w", err)
	}
	if !m.CheckpointPending() {
		return nil, fmt.Errorf("harness: lukewarm setup finished without checkpoint")
	}
	ck := m.TakeCheckpoint()
	if err := m.Restore(ck); err != nil {
		return nil, err
	}
	dumps, err := m.RunEval(evalBudget)
	if err != nil {
		return nil, fmt.Errorf("harness: lukewarm eval: %w", err)
	}
	if len(dumps) != 1 {
		return nil, fmt.Errorf("harness: lukewarm got %d dumps, want 1", len(dumps))
	}
	return &LukewarmResult{
		Name:     spec.Name,
		Arch:     arch,
		Solo:     solo.Warm.Cycles,
		Lukewarm: dumps[0].Server().Cycles,
		SoloL1I:  solo.Warm.L1IMisses,
		LukeL1I:  dumps[0].Server().L1IMisses,
	}, nil
}

// buildInterleavedClient alternates A and B requests; the stats window
// brackets only A's final request. B's channel ids are baked into the
// image (they are known at build time, like a configured endpoint).
func buildInterleavedClient(reqA, reqB []byte, rounds int64, bReqCh, bRespCh uint64) *ir.Module {
	m := ir.NewModule("lukewarm-client")
	m.AddGlobal(&ir.Global{Name: "cli_reqA", Data: reqA})
	m.AddGlobal(&ir.Global{Name: "cli_reqB", Data: reqB})
	m.AddGlobal(&ir.Global{Name: "cli_rbuf", Data: make([]byte, langrt.WBufSize)})
	bch := make([]byte, 16)
	for k := 0; k < 8; k++ {
		bch[k] = byte(bReqCh >> (8 * k))
		bch[8+k] = byte(bRespCh >> (8 * k))
	}
	m.AddGlobal(&ir.Global{Name: "cli_bch", Data: bch})

	b := ir.NewFunc("main", 2)
	aReq, aResp := b.Param(0), b.Param(1)
	rbuf := b.Global("cli_rbuf", 0)
	bcfg := b.Global("cli_bch", 0)
	bReq := b.Load(bcfg, 0, 8)
	bResp := b.Load(bcfg, 8, 8)
	// Ready handshakes from both servers (order matches scheduling).
	b.EcallV(kernel.SysRecv, aResp, rbuf, b.Const(langrt.WBufSize))
	b.EcallV(kernel.SysRecv, bResp, rbuf, b.Const(langrt.WBufSize))
	b.EcallV(kernel.M5Checkpoint)

	gA := b.Global("cli_reqA", 0)
	gB := b.Global("cli_reqB", 0)
	lA := b.Const(int64(len(reqA)))
	lB := b.Const(int64(len(reqB)))

	i := b.Const(1)
	loop, done := b.NewLabel("loop"), b.NewLabel("done")
	b.Label(loop)
	b.BrI(ir.Gt, i, rounds, done)
	notLast := b.NewLabel("nl")
	b.BrI(ir.Ne, i, rounds, notLast)
	b.EcallV(kernel.M5ResetStats)
	b.Label(notLast)
	b.EcallV(kernel.SysSend, aReq, gA, lA)
	b.EcallV(kernel.SysRecv, aResp, rbuf, b.Const(langrt.WBufSize))
	dumped := b.NewLabel("nd")
	b.BrI(ir.Ne, i, rounds, dumped)
	b.EcallV(kernel.M5DumpStats)
	b.Label(dumped)
	// B's interleaving request thrashes A's microarchitectural state.
	b.EcallV(kernel.SysSend, bReq, gB, lB)
	b.EcallV(kernel.SysRecv, bResp, rbuf, b.Const(langrt.WBufSize))
	b.AddIInto(i, i, 1)
	b.Jmp(loop)
	b.Label(done)
	b.EcallV(kernel.M5Exit)
	m.AddFunc(b.Build())
	return m
}
