package container

import (
	"testing"

	"svbench/internal/gemsys"
	"svbench/internal/ir"
	"svbench/internal/isa"
	"svbench/internal/kernel"
	"svbench/internal/langrt"
	"svbench/internal/libc"
)

func trivialModule() *ir.Module {
	m := ir.NewModule("trivial")
	b := ir.NewFunc("main", 2)
	b.EcallV(kernel.SysExit, b.Const(0))
	b.Ret0()
	m.AddFunc(b.Build())
	return m
}

func TestImageSizesDeterministic(t *testing.T) {
	mod, err := langrt.BuildServer(langrt.GoRT, libc.Fast, fibWorkload(), "handler")
	if err != nil {
		t.Fatal(err)
	}
	a, err := BuildImage("fib", langrt.GoRT, isa.RV64, mod, ImageOpts{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildImage("fib", langrt.GoRT, isa.RV64, mod, ImageOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if a.CompressedSize() != b.CompressedSize() || a.Size() != b.Size() {
		t.Fatal("image build is nondeterministic")
	}
}

func fibWorkload() *ir.Module {
	m := ir.NewModule("w")
	h := ir.NewFunc("handler", 3)
	resp := h.Param(2)
	h.CallV("mbuf_reset", resp)
	h.CallV("mbuf_put_int", resp, h.Const(55))
	h.Ret(h.Call("mbuf_len", resp))
	m.AddFunc(h.Build())
	return m
}

func TestRegistryPushPull(t *testing.T) {
	reg := NewRegistry()
	img, err := BuildImage("x", langrt.GoRT, isa.RV64, nil, ImageOpts{})
	if err != nil {
		t.Fatal(err)
	}
	reg.Push(img)
	got, err := reg.Pull("x", isa.RV64)
	if err != nil || got != img {
		t.Fatalf("pull: %v", err)
	}
	if _, err := reg.Pull("x", isa.CISC64); err == nil {
		t.Fatal("pull of missing arch variant succeeded")
	}
	if _, err := reg.Pull("nope", isa.RV64); err == nil {
		t.Fatal("pull of missing image succeeded")
	}
	if l := reg.List(); len(l) != 1 || l[0] != "x" {
		t.Fatalf("list %v", l)
	}
}

func TestEngineLifecycle(t *testing.T) {
	m, err := gemsys.New(gemsys.DefaultConfig(isa.RV64))
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	img, err := BuildImage("svc", langrt.GoRT, isa.RV64, trivialModule(), ImageOpts{})
	if err != nil {
		t.Fatal(err)
	}
	reg.Push(img)
	eng := NewEngine(reg, m)

	c, err := eng.Create("svc")
	if err != nil {
		t.Fatal(err)
	}
	if c.State != Dead {
		t.Fatalf("fresh container state %v", c.State)
	}
	if err := eng.Start(c, 1, nil); err != nil {
		t.Fatal(err)
	}
	if c.State != Running || c.Proc == nil || c.Starts != 1 {
		t.Fatalf("after start: %+v", c)
	}
	if err := eng.Start(c, 1, nil); err == nil {
		t.Fatal("double start accepted")
	}
	if err := eng.Pause(c); err != nil {
		t.Fatal(err)
	}
	if c.State != Waiting {
		t.Fatalf("after pause: %v", c.State)
	}
	// Warm start: no new process.
	if err := eng.Start(c, 1, nil); err != nil {
		t.Fatal(err)
	}
	if c.Starts != 1 {
		t.Fatal("warm start must not cold-start")
	}
	if len(eng.Containers()) != 1 {
		t.Fatal("container list")
	}
	// The spawned process must actually run to completion.
	if err := m.RunFunctional(1_000_000); err == nil {
		t.Fatal("machine with only an exiting process should deadlock-report, not halt")
	}
}

func TestStateString(t *testing.T) {
	if Dead.String() != "dead" || Waiting.String() != "waiting" || Running.String() != "running" {
		t.Fatal("state names")
	}
}

func TestProfilesDiffer(t *testing.T) {
	mod, err := langrt.BuildServer(langrt.PyRT, libc.Fast, fibWorkload(), "handler")
	if err != nil {
		t.Fatal(err)
	}
	ours, err := BuildImage("py", langrt.PyRT, isa.RV64, mod, ImageOpts{Profile: GPourProfile})
	if err != nil {
		t.Fatal(err)
	}
	prior, err := BuildImage("py", langrt.PyRT, isa.RV64, mod, ImageOpts{Profile: NatheesanProfile})
	if err != nil {
		t.Fatal(err)
	}
	if prior.CompressedSize() <= ours.CompressedSize() {
		t.Fatal("the prior-port python lineage must be larger")
	}
}
