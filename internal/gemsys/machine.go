package gemsys

import (
	"errors"
	"fmt"
	"hash"

	"svbench/internal/cpu"
	"svbench/internal/ir"
	"svbench/internal/isa"
	"svbench/internal/isa/cisc"
	"svbench/internal/isa/riscv"
	"svbench/internal/kernel"
	"svbench/internal/mem"
	"svbench/internal/stats"
	"svbench/internal/trace"
)

// Machine is a simulated two-core full system: flat memory, the miniature
// kernel, per-core cache hierarchies over a shared DRAM channel, and both
// execution modes of the vSwarm-u methodology — functional (atomic/KVM
// style, for setup) and detailed timing (O3 trace replay, for evaluation).
type Machine struct {
	Cfg     Config
	Mem     *isa.Mem
	K       *kernel.Kernel
	DRAM    *mem.DRAM
	Hier    []*mem.Hierarchy
	O3      []*cpu.O3
	Coupler *cpu.Coupler
	Atomic  cpu.Atomic

	decRV *riscv.DecodeCache
	decC  *cisc.DecodeCache

	cur []*kernel.Process
	rq  [][]*kernel.Process

	traces    [][]isa.TraceRec
	cursor    []int
	recording bool
	scratch   []isa.TraceRec

	nextRegion  uint64
	virtInstr   uint64
	evalRetired uint64
	halted      bool
	ckptReq     bool
	hookProc    *kernel.Process

	// Functional-sprint state (see Machine.sprint). While sprinting,
	// recording is off and there is no trace record to annotate, so the
	// hook parks m5 markers in m5Pending and every stepping loop polls it
	// to stop at the next block boundary. The per-core counters are the
	// sprint's substitute for per-record accounting: stepQuantum folds
	// no-trace-lane deltas into them so the sampler sees the same exact
	// architectural census it would have read off the trace.
	sprinting   bool
	m5Pending   uint8
	sprintIdle  []uint64
	sprintInsts []uint64
	sprintCnt   []isa.ClassCounts

	// stepBase is the stepping core's InstrCount at the start of the
	// in-flight Step/StepN call; syncClock folds the delta into virtInstr
	// so the kernel clock stays per-instruction accurate even while a
	// whole block executes between hook observations.
	stepBase uint64

	// SingleStep forces the per-instruction reference interpreter instead
	// of the batched block-execution fast path. The two are bit-identical
	// (pinned by the differential tests); the knob exists for those tests
	// and for interpreter benchmarking. Deliberately not part of Config so
	// it never enters the boot fingerprint.
	SingleStep bool

	kernelProg *isa.Program
	// fph accumulates the boot fingerprint (config, kernel image, every
	// spawned program); see fingerprint.go.
	fph hash.Hash

	// Observability. The registry and symbol table always exist (stat
	// dumps project from the registry); Tracer and Prof are nil unless
	// Config.Trace.Enabled, which keeps the replay hot path event-free.
	Reg      *trace.Registry
	Syms     *trace.SymTable
	Tracer   *trace.Tracer
	Prof     *trace.Profiler
	ecallLat []*trace.Dist
}

// ErrDeadlock reports that neither core can make progress.
var ErrDeadlock = errors.New("gemsys: machine deadlocked")

// PanicError reports that simulated code raised the panic host call
// (e.g. a stack-smash detection). Info carries the kernel's PanicInfo —
// the faulting process and program counter — so simulated panics stay
// diagnosable instead of drowning in a generic budget or halt message.
type PanicError struct {
	Info string
}

func (e *PanicError) Error() string { return "gemsys: simulated panic: " + e.Info }

// panicErr returns the machine's PanicError when the kernel recorded a
// simulated panic, else nil.
func (m *Machine) panicErr() error {
	if m.K.Panicked {
		return &PanicError{Info: m.K.PanicInfo}
	}
	return nil
}

// newCouplerFor creates a coupler and routes the kernel's service-reply
// derivations into it.
func newCouplerFor(m *Machine) *cpu.Coupler {
	c := cpu.NewCoupler()
	m.K.OnDerive = func(base, derived, delay uint64) { c.Derive(base, derived, delay) }
	return c
}

// newO3For builds a detailed core for hardware thread ci using the
// machine's current coupler.
func newO3For(m *Machine, ci int) *cpu.O3 {
	return cpu.NewO3(m.Cfg.O3, m.Hier[ci], m.Coupler)
}

// New boots a machine: allocates memory, compiles and loads the kernel for
// the configured ISA, and wires the cache hierarchies.
func New(cfg Config) (*Machine, error) {
	if cfg.Cores != 2 {
		return nil, fmt.Errorf("gemsys: this system model is two-core (client+server), got %d", cfg.Cores)
	}
	// The kernel image (compiled program + pre-decoded text) is shared
	// read-only across all machines of one architecture; each machine
	// still owns a private mutable decode cache layered over it.
	kimg, err := kernelImageFor(cfg.Arch)
	if err != nil {
		return nil, fmt.Errorf("gemsys: kernel: %w", err)
	}
	m := &Machine{
		Cfg:         cfg,
		Mem:         isa.NewMem(cfg.MemBytes),
		DRAM:        mem.NewDRAM(cfg.DRAM),
		decRV:       riscv.NewDecodeCacheShared(kimg.sharedRV),
		decC:        cisc.NewDecodeCacheShared(kimg.sharedC),
		cur:         make([]*kernel.Process, cfg.Cores),
		rq:          make([][]*kernel.Process, cfg.Cores),
		traces:      make([][]isa.TraceRec, cfg.Cores),
		cursor:      make([]int, cfg.Cores),
		sprintIdle:  make([]uint64, cfg.Cores),
		sprintInsts: make([]uint64, cfg.Cores),
		sprintCnt:   make([]isa.ClassCounts, cfg.Cores),
		nextRegion:  firstProc,
	}
	m.K = kernel.New(m.Mem, slabBase, slabSize)
	m.K.Clock = func() uint64 { return m.virtInstr }
	m.K.OnWake = func(p *kernel.Process) { m.rq[p.CoreID] = append(m.rq[p.CoreID], p) }
	m.Coupler = newCouplerFor(m)
	// Native service processing advances the virtual (QEMU-mode) clock:
	// under emulation the database work executes for real.
	m.K.OnServiceTime = func(cycles uint64) { m.virtInstr += cycles }

	for i := 0; i < cfg.Cores; i++ {
		h := mem.NewHierarchy(cfg.Hier, m.DRAM)
		m.Hier = append(m.Hier, h)
	}
	m.Hier[0].SetPeer(m.Hier[1])
	m.Hier[1].SetPeer(m.Hier[0])
	for i := 0; i < cfg.Cores; i++ {
		m.O3 = append(m.O3, newO3For(m, i))
	}

	// Load the (shared, immutable) kernel image.
	prog := kimg.prog
	if end := prog.DataBase + uint64(len(prog.Data)); end > slabBase {
		return nil, fmt.Errorf("gemsys: kernel image overruns slab base (%#x)", end)
	}
	prog.LoadInto(m.Mem)
	m.kernelProg = prog
	m.fpConfig(cfg)
	m.fpProgram("kernel", prog)
	for _, num := range kernel.UserSyscalls {
		m.K.HandlerAddr[num] = prog.SymAddr(kernel.HandlerName(num))
	}
	m.K.UserExitAddr = prog.SymAddr("k_user_exit")

	// Register every component's counters into the hierarchical registry;
	// collectStats and the gem5-style text export project from it.
	m.Reg = trace.NewRegistry()
	m.Syms = trace.NewSymTable()
	m.Syms.AddProgram("kernel", prog.Syms, prog.FuncEnd)
	for ci := 0; ci < cfg.Cores; ci++ {
		prefix := fmt.Sprintf("machine.core%d", ci)
		m.O3[ci].RegisterStats(m.Reg, prefix+".o3")
		m.Hier[ci].RegisterStats(m.Reg, prefix)
	}
	m.K.RegisterStats(m.Reg, "machine.kernel")
	m.Reg.Func("machine.virtInstr", "functional-mode virtual clock (instructions)",
		func() uint64 { return m.virtInstr })
	m.Reg.Func("machine.dram.accesses", "shared-channel DRAM line fills",
		func() uint64 { return m.DRAM.Accesses })
	// Superblock-chaining telemetry of the active interpreter. Every value
	// counts execution since the last checkpoint restore (which severs all
	// links and resets the counters), so the export is identical whether
	// the block cache itself was warm or cold — the memoized and
	// non-memoized boot paths must stay byte-identical.
	m.Reg.Func("interp.blocks", "distinct translated blocks entered since restore",
		func() uint64 { return m.ChainStats().Blocks })
	m.Reg.Func("interp.chain_hits", "block transitions served by superblock links",
		func() uint64 { return m.ChainStats().Hits })
	m.Reg.Func("interp.chain_misses", "block transitions resolved through the entry-PC map",
		func() uint64 { return m.ChainStats().Misses })
	m.Reg.Func("interp.chain_breaks", "superblock links severed by block invalidation",
		func() uint64 { return m.ChainStats().Breaks })
	m.Reg.Formula("interp.chain_len_mean", "mean blocks executed per entry-PC map lookup",
		func() float64 { return m.ChainStats().MeanChainLen() })
	if cfg.Trace.Enabled {
		m.Tracer = trace.NewTracer(cfg.Trace.BufferEvents)
		period := cfg.Trace.SamplePeriod
		if period == 0 {
			period = trace.DefaultSamplePeriod
		}
		m.Prof = trace.NewProfiler(m.Syms, cfg.Cores, period)
		for ci := 0; ci < cfg.Cores; ci++ {
			d := m.Reg.NewDist(fmt.Sprintf("machine.core%d.o3.ecallLat", ci),
				"serializing ecall issue-to-commit latency")
			m.ecallLat = append(m.ecallLat, d)
			m.O3[ci].AttachTracer(m.Tracer, ci, d)
		}
	}
	return m, nil
}

func (m *Machine) compile(mod *ir.Module, base uint64) (*isa.Program, error) {
	switch m.Cfg.Arch {
	case isa.RV64:
		return riscv.Compile(mod, base)
	case isa.CISC64:
		return cisc.Compile(mod, base)
	}
	return nil, fmt.Errorf("gemsys: unknown arch %q", m.Cfg.Arch)
}

// Console returns everything simulated code wrote to the console.
func (m *Machine) Console() string { return m.K.Console.String() }

// VirtNS returns the machine's virtual clock (ns at 1 GHz, 1 CPI
// functional time) — the QEMU-mode time base.
func (m *Machine) VirtNS() uint64 { return m.virtInstr }

// Halted reports whether an m5 exit was executed.
func (m *Machine) Halted() bool { return m.halted }

// ChainStats snapshots the superblock-chaining telemetry of the active
// architecture's decode cache (see isa.ChainStats). Counters accumulate
// from the last checkpoint restore; in SingleStep mode they stay zero.
func (m *Machine) ChainStats() isa.ChainStats {
	if m.Cfg.Arch == isa.RV64 {
		return m.decRV.ChainStats()
	}
	return m.decC.ChainStats()
}

// Spawn compiles mod into a fresh region, creates a process running entry
// with args, pins it to coreID and enqueues it.
func (m *Machine) Spawn(name string, mod *ir.Module, entry string, coreID int, args []uint64) (*kernel.Process, error) {
	if coreID < 0 || coreID >= m.Cfg.Cores {
		return nil, fmt.Errorf("gemsys: bad core %d", coreID)
	}
	base := m.nextRegion
	if base+m.Cfg.RegionBytes > uint64(m.Cfg.MemBytes) {
		return nil, fmt.Errorf("gemsys: out of memory regions")
	}
	m.nextRegion += m.Cfg.RegionBytes

	prog, err := m.compile(mod, base)
	if err != nil {
		return nil, fmt.Errorf("gemsys: %s: %w", name, err)
	}
	imageEnd := prog.DataBase + uint64(len(prog.Data))
	if imageEnd > base+m.Cfg.RegionBytes {
		return nil, fmt.Errorf("gemsys: %s: image too large (%d bytes)", name, imageEnd-base)
	}
	prog.LoadInto(m.Mem)

	stackTop := base + m.Cfg.RegionBytes - 64
	p := &kernel.Process{
		Name:   name,
		CoreID: coreID,
		State:  kernel.ProcRunnable,
		Region: kernel.Region{Base: base, Size: m.Cfg.RegionBytes},
		Brk:    (imageEnd + 4095) &^ 4095,
	}

	switch m.Cfg.Arch {
	case isa.RV64:
		c := riscv.NewCore(m.Mem, m.decRV)
		c.Hook = m.hook
		c.Regs[riscv.RegRA] = m.K.UserExitAddr
		c.SetStackPtr(stackTop)
		p.Core = c
	case isa.CISC64:
		c := cisc.NewCore(m.Mem, m.decC)
		c.Hook = m.hook
		c.SetStackPtr(stackTop)
		// Push the exit stub as the entry function's return address.
		c.Regs[cisc.RSP] -= 8
		m.Mem.Store(c.Regs[cisc.RSP], 8, m.K.UserExitAddr)
		p.Core = c
	}
	p.Core.SetPC(prog.SymAddr(entry))
	for i, a := range args {
		p.Core.SetArg(i, a)
	}
	m.fpSpawn(name, coreID, prog.SymAddr(entry), args, prog)
	m.Syms.AddProgram(name, prog.Syms, prog.FuncEnd)
	m.K.AddProcess(p)
	m.rq[coreID] = append(m.rq[coreID], p)
	return p, nil
}

// syncClock folds instructions the stepping core retired since stepBase
// into the virtual clock. Called at every hook entry (so kernel code that
// reads K.Clock mid-block sees an exact per-instruction clock) and after
// every Step/StepN return.
func (m *Machine) syncClock(c isa.Core) {
	if n := c.InstrCount(); n != m.stepBase {
		m.virtInstr += n - m.stepBase
		m.stepBase = n
	}
}

// hook is the machine's environment-call dispatcher.
func (m *Machine) hook(c isa.Core) isa.EcallResult {
	m.syncClock(c)
	switch c.EcallNum() {
	case kernel.M5ResetStats:
		if m.sprinting {
			m.m5Pending |= isa.FlagM5Reset
		} else {
			c.Annotate(isa.FlagM5Reset, 0)
		}
		c.SetRet(0)
		return isa.EcallHandled
	case kernel.M5DumpStats:
		if m.sprinting {
			m.m5Pending |= isa.FlagM5Dump
		} else {
			c.Annotate(isa.FlagM5Dump, 0)
		}
		c.SetRet(0)
		return isa.EcallHandled
	case kernel.M5Checkpoint:
		m.ckptReq = true
		c.SetRet(0)
		return isa.EcallHandled
	case kernel.M5Exit:
		c.SetRet(0)
		return isa.EcallHalt
	}
	return m.K.Ecall(c, m.hookProc)
}

func (m *Machine) pickNext(ci int) *kernel.Process {
	if p := m.cur[ci]; p != nil && p.State == kernel.ProcRunnable {
		return p
	}
	prev := m.cur[ci]
	m.cur[ci] = nil
	rq := m.rq[ci]
	for len(rq) > 0 {
		p := rq[0]
		rq = rq[1:]
		if p.State == kernel.ProcRunnable {
			m.cur[ci] = p
			break
		}
	}
	m.rq[ci] = rq
	if m.Tracer != nil && m.cur[ci] != nil && m.cur[ci] != prev {
		// Functional-side event: stamped with the virtual clock, exported
		// on the scheduler track.
		m.Tracer.EmitAt(trace.EvCtxSwitch, uint8(ci), m.virtInstr, 0,
			uint64(m.cur[ci].ID), 0)
	}
	return m.cur[ci]
}

// stepQuantum runs up to Quantum instructions of core ci's current
// process through the batched block-execution fast path, reporting
// whether any instruction executed. Per-instruction concerns of the old
// loop are hoisted to block boundaries: the recording-mode branch and
// idle check run once per StepN round, and the checkpoint/panic polls
// rely on StepN returning at the block boundary after every environment
// call (the only place those flags can change).
func (m *Machine) stepQuantum(ci int) (bool, error) {
	if m.SingleStep {
		return m.stepQuantumSlow(ci)
	}
	p := m.pickNext(ci)
	if p == nil {
		return false, nil
	}
	m.hookProc = p
	ran := false
	// The recording-lane decision cannot change mid-quantum, so the
	// trace-buffer seeding is hoisted out of the superblock-exit loop
	// (nil means the no-trace lane, so the first recording round must
	// seed a real, empty slice).
	recording := m.recording
	if recording && m.traces[ci] == nil {
		m.traces[ci] = make([]isa.TraceRec, 0, m.Cfg.Quantum)
	}
	for rem := m.Cfg.Quantum; rem > 0; {
		if p.NeedsIdle {
			p.NeedsIdle = false
			if recording {
				m.traces[ci] = append(m.traces[ci], isa.TraceRec{
					Class: isa.ClassIdle, Seq: p.WakeSeq,
					Src1: isa.NoDep, Src2: isa.NoDep, Dst: isa.NoDep,
				})
			} else if m.sprinting {
				// The idle pseudo-record the recording lane would have
				// appended occupies one retired-record slot; charging it
				// against the quantum keeps the sprint's record count
				// exact so it never overshoots its target.
				m.sprintIdle[ci]++
				rem--
				if rem == 0 {
					return ran, nil
				}
			}
		}
		m.stepBase = p.Core.InstrCount()
		var n int
		var err error
		if recording {
			n, m.traces[ci], err = p.Core.StepN(rem, m.traces[ci])
		} else if m.sprinting {
			cc0 := p.Core.Classes()
			n, _, err = p.Core.StepN(rem, nil)
			if n > 0 {
				m.sprintInsts[ci] += uint64(n)
				m.sprintCnt[ci].Add(p.Core.Classes().Since(cc0))
			}
		} else {
			n, _, err = p.Core.StepN(rem, nil)
		}
		m.syncClock(p.Core)
		if n > 0 {
			ran = true
		}
		rem -= n
		if err != nil {
			switch err {
			case isa.ErrBlock:
				m.cur[ci] = nil
				return ran, nil
			case isa.ErrHalt:
				m.halted = true
				return ran, nil
			default:
				return ran, fmt.Errorf("gemsys: core %d proc %s: %w", ci, p.Name, err)
			}
		}
		if m.ckptReq || m.K.Panicked || m.m5Pending != 0 {
			return ran, nil
		}
	}
	return ran, nil
}

// stepQuantumSlow is the per-instruction reference scheduler loop, kept
// verbatim as the differential baseline for the fast path above (and as
// the fast-path-off mode of cmd/interpbench).
func (m *Machine) stepQuantumSlow(ci int) (bool, error) {
	p := m.pickNext(ci)
	if p == nil {
		return false, nil
	}
	m.hookProc = p
	ran := false
	for i := 0; i < m.Cfg.Quantum; i++ {
		if p.NeedsIdle {
			p.NeedsIdle = false
			if m.recording {
				m.traces[ci] = append(m.traces[ci], isa.TraceRec{
					Class: isa.ClassIdle, Seq: p.WakeSeq,
					Src1: isa.NoDep, Src2: isa.NoDep, Dst: isa.NoDep,
				})
			}
		}
		m.stepBase = p.Core.InstrCount()
		var err error
		if m.recording {
			m.traces[ci], err = p.Core.Step(m.traces[ci])
		} else {
			m.scratch, err = p.Core.Step(m.scratch[:0])
		}
		m.syncClock(p.Core)
		ran = true
		if err != nil {
			switch err {
			case isa.ErrBlock:
				m.cur[ci] = nil
				return ran, nil
			case isa.ErrHalt:
				m.halted = true
				return ran, nil
			default:
				return ran, fmt.Errorf("gemsys: core %d proc %s: %w", ci, p.Name, err)
			}
		}
		if m.ckptReq || m.K.Panicked {
			return ran, nil
		}
	}
	return ran, nil
}

// pump advances functional execution one scheduling round.
func (m *Machine) pump() (bool, error) {
	any := false
	for ci := 0; ci < m.Cfg.Cores; ci++ {
		ran, err := m.stepQuantum(ci)
		if err != nil {
			return any, err
		}
		any = any || ran
		if m.halted || m.ckptReq || m.K.Panicked {
			break
		}
	}
	if err := m.panicErr(); err != nil {
		return any, err
	}
	return any, nil
}

// RunSetup executes functionally (the atomic-CPU setup mode) until an m5
// checkpoint is requested, the machine halts, or budget instructions run.
func (m *Machine) RunSetup(budget uint64) error {
	m.recording = false
	start := m.virtInstr
	for !m.halted && !m.ckptReq {
		ran, err := m.pump()
		if err != nil {
			return err
		}
		if !ran {
			return fmt.Errorf("%w (setup: all processes blocked)", ErrDeadlock)
		}
		if m.virtInstr-start > budget {
			return fmt.Errorf("gemsys: setup exceeded %d instructions", budget)
		}
	}
	if err := m.panicErr(); err != nil {
		return err
	}
	m.Atomic.Retire(m.virtInstr - start)
	return nil
}

// CheckpointPending reports whether an m5 checkpoint was requested.
func (m *Machine) CheckpointPending() bool { return m.ckptReq }

func (m *Machine) queueLen(ci int) int { return len(m.traces[ci]) - m.cursor[ci] }

func (m *Machine) popRec(ci int) {
	m.cursor[ci]++
	m.compactTrace(ci)
}

// compactTrace drops the consumed queue prefix once it dominates.
func (m *Machine) compactTrace(ci int) {
	if m.cursor[ci] > 1<<16 && m.cursor[ci]*2 > len(m.traces[ci]) {
		n := copy(m.traces[ci], m.traces[ci][m.cursor[ci]:])
		m.traces[ci] = m.traces[ci][:n]
		m.cursor[ci] = 0
	}
}

// coreStats projects one core's counters out of the hierarchical registry
// — the registry is the single source; CoreStats is just the shape the
// figures pipeline consumes.
func (m *Machine) coreStats(ci int) stats.CoreStats {
	p := fmt.Sprintf("machine.core%d", ci)
	return stats.CoreStats{
		Cycles:      m.Reg.U64(p + ".o3.windowCycles"),
		Insts:       m.Reg.U64(p + ".o3.insts"),
		MicroOps:    m.Reg.U64(p + ".o3.microops"),
		Loads:       m.Reg.U64(p + ".o3.loads"),
		Stores:      m.Reg.U64(p + ".o3.stores"),
		Branches:    m.Reg.U64(p + ".o3.branches"),
		Mispredicts: m.Reg.U64(p + ".o3.mispredicts"),
		L1IAccesses: m.Reg.U64(p + ".l1i.accesses"),
		L1IMisses:   m.Reg.U64(p + ".l1i.misses"),
		L1DAccesses: m.Reg.U64(p + ".l1d.accesses"),
		L1DMisses:   m.Reg.U64(p + ".l1d.misses"),
		L2Accesses:  m.Reg.U64(p + ".l2.accesses"),
		L2Misses:    m.Reg.U64(p + ".l2.misses"),
		ITLBMisses:  m.Reg.U64(p + ".itlb.misses"),
		DTLBMisses:  m.Reg.U64(p + ".dtlb.misses"),
	}
}

// collectStats projects a full-detail stats.Dump for every core.
func (m *Machine) collectStats(label string) stats.Dump {
	d := stats.Dump{Label: label}
	for ci := 0; ci < m.Cfg.Cores; ci++ {
		d.Cores = append(d.Cores, m.coreStats(ci))
	}
	return d
}

// pendingTrace reports whether any core still has unretired trace records.
func (m *Machine) pendingTrace() bool {
	for ci := range m.traces {
		if m.queueLen(ci) > 0 {
			return true
		}
	}
	return false
}

// EvalRetired returns how many trace records the last (or in-progress)
// RunEval retired — the clock the sampling phase machine and the eval
// budget are measured in.
func (m *Machine) EvalRetired() uint64 { return m.evalRetired }

// RunEval runs evaluation mode: functional execution feeds per-core
// instruction traces into the detailed O3 models; m5 reset/dump markers
// delimit stats windows. It returns one Dump per m5 dump-stats operation.
func (m *Machine) RunEval(budget uint64) ([]stats.Dump, error) {
	return m.RunEvalSampled(budget, SamplingConfig{})
}

// sprintDone is the number of retired-record slots the in-progress (or
// just-finished) sprint consumed: instructions stepped plus idle events
// that would have produced pseudo-records on the recording lane.
func (m *Machine) sprintDone() uint64 {
	var t uint64
	for ci, n := range m.sprintInsts {
		t += n + m.sprintIdle[ci]
	}
	return t
}

// sprint executes up to target retired-record slots purely functionally —
// no trace records built, no timing models touched — and reports how many
// it consumed. This is the sampled eval loop's true fast-forward lane: the
// bulk record lane still pays the recording interpreter plus a touch per
// record, while a sprint runs the no-trace interpreter flat out. The
// caller owns the consequences: it must fold the per-core census into the
// sampler, advance the retired clock, set the coupler floor (sends during
// the sprint post no commit times), and process any parked m5 marker.
// The sprint stops early at a marker, a halt, a checkpoint request, or a
// kernel panic; running out of runnable processes with slots still to
// consume is the same deadlock it would be in setup mode.
func (m *Machine) sprint(target uint64) (uint64, error) {
	m.recording = false
	m.sprinting = true
	for ci := range m.sprintCnt {
		m.sprintIdle[ci] = 0
		m.sprintInsts[ci] = 0
		m.sprintCnt[ci] = isa.ClassCounts{}
	}
	q0 := m.Cfg.Quantum
	defer func() {
		m.Cfg.Quantum = q0
		m.sprinting = false
		m.recording = true
	}()
	for {
		d0 := m.sprintDone()
		if d0 >= target || m.halted || m.ckptReq || m.K.Panicked || m.m5Pending != 0 {
			break
		}
		any := false
		for ci := 0; ci < m.Cfg.Cores; ci++ {
			d := m.sprintDone()
			if d >= target {
				break
			}
			// Narrowing the quantum to the remaining slot count makes
			// StepN (and the idle charge above) land exactly on target.
			if left := target - d; left < uint64(q0) {
				m.Cfg.Quantum = int(left)
			} else {
				m.Cfg.Quantum = q0
			}
			ran, err := m.stepQuantum(ci)
			if err != nil {
				return m.sprintDone(), err
			}
			any = any || ran
			if m.halted || m.ckptReq || m.K.Panicked || m.m5Pending != 0 {
				break
			}
		}
		if err := m.panicErr(); err != nil {
			return m.sprintDone(), err
		}
		if !any && m.sprintDone() == d0 &&
			!m.halted && !m.ckptReq && m.m5Pending == 0 {
			return d0, fmt.Errorf("%w (eval sprint: all processes blocked)", ErrDeadlock)
		}
	}
	if err := m.panicErr(); err != nil {
		return m.sprintDone(), err
	}
	return m.sprintDone(), nil
}

// RunEvalSampled is RunEval with SMARTS-style sampling: per interval of
// sc.Interval retired records, the first sc.Detail retire through the full
// O3 model, the last sc.Warmup fast-forward with functional warming of
// caches/TLBs/branch predictors, and the remainder fast-forward at one
// functional cycle per record. Dumps are extrapolated from the measured
// windows (see sampler.dump). The zero SamplingConfig is bit-identical to
// RunEval.
func (m *Machine) RunEvalSampled(budget uint64, sc SamplingConfig) ([]stats.Dump, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	m.recording = true
	for _, o := range m.O3 {
		o.ColdStart()
		o.ResetStats()
	}
	var smp *sampler
	if sc.Enabled() {
		smp = newSampler(sc, m.O3)
	}
	var dumps []stats.Dump
	var retired uint64
	m.evalRetired = 0
	ndump := 0
	order := make([]int, m.Cfg.Cores)
	times := make([]uint64, m.Cfg.Cores)
	for {
		// Exact budget bound: the (budget+1)-th record must not retire.
		if retired >= budget && m.pendingTrace() {
			return dumps, fmt.Errorf("gemsys: eval exceeded %d instructions", budget)
		}
		// Order candidate cores by local time to approximate global
		// interleaving on the shared DRAM channel.
		for ci := range times {
			times[ci] = m.O3[ci].Now()
		}
		orderCoresByTime(order, times)
		progressed := false
		for _, ci := range order {
			if m.queueLen(ci) == 0 {
				continue
			}
			// Bulk fast-forward lane: outside detailed windows, plain
			// records need none of the per-record plumbing below (tracer,
			// profiler, flag dispatch), so a whole run up to the next
			// phase boundary retires in one tight loop. Observability
			// keeps the per-record path.
			if smp != nil && (smp.phase == phaseFF || smp.phase == phaseWarm) &&
				m.Tracer == nil && m.Prof == nil {
				room := smp.bulkRoom(retired)
				if left := budget - retired; left < room {
					room = left
				}
				if room > 0 {
					recs := m.traces[ci][m.cursor[ci]:]
					if uint64(len(recs)) > room {
						recs = recs[:room]
					}
					var bc cpu.BatchCounts
					if n := m.O3[ci].FastForwardBatch(recs, smp.phase == phaseWarm, &bc); n > 0 {
						smp.accountBatch(ci, &bc)
						m.cursor[ci] += n
						m.compactTrace(ci)
						retired += uint64(n)
						m.evalRetired = retired
						smp.advance(retired)
						progressed = true
						break
					}
					// A flagged or idle record heads the queue: fall
					// through to the per-record path.
				}
			}
			rec := &m.traces[ci][m.cursor[ci]]
			var ct uint64
			var err error
			if smp == nil {
				ct, err = m.O3[ci].Retire(rec)
			} else {
				switch smp.phase {
				case phaseDetail, phaseDetailPre:
					ct, err = m.O3[ci].Retire(rec)
				case phaseWarm:
					ct, err = m.O3[ci].FastForward(rec, true)
				default:
					ct, err = m.O3[ci].FastForward(rec, false)
				}
			}
			if err == cpu.ErrWait {
				continue
			}
			if err != nil {
				return dumps, err
			}
			flags := rec.Flags
			if m.Tracer != nil {
				// All reads from rec happen before popRec: queue
				// compaction may move the record.
				m.Tracer.EmitAt(trace.EvInstRetire, uint8(ci), ct, rec.PC,
					uint64(rec.Class), uint64(rec.MicroOps))
				if flags&isa.FlagSend != 0 {
					m.Tracer.EmitAt(trace.EvIPCSend, uint8(ci), ct, rec.PC, rec.Seq, 0)
				}
				if flags&isa.FlagRecv != 0 {
					m.Tracer.EmitAt(trace.EvIPCRecv, uint8(ci), ct, rec.PC, rec.Seq, 0)
				}
				if flags&isa.FlagM5Reset != 0 {
					m.Tracer.EmitAt(trace.EvM5Reset, uint8(ci), ct, rec.PC, 0, 0)
				}
				if flags&isa.FlagM5Dump != 0 {
					m.Tracer.EmitAt(trace.EvM5Dump, uint8(ci), ct, rec.PC, 0, 0)
				}
			}
			if m.Prof != nil {
				switch rec.Class {
				case isa.ClassCall:
					m.Prof.OnCall(ci, rec.Target)
				case isa.ClassRet:
					m.Prof.OnRet(ci)
				case isa.ClassEcall:
					if flags&isa.FlagVector != 0 {
						// The handler's ret balances this push.
						m.Prof.OnCall(ci, rec.Seq)
					}
				}
				if rec.Class == isa.ClassIdle {
					m.Prof.SkipIdle(ci, ct)
				} else {
					m.Prof.Observe(ci, ct, rec.PC)
				}
			}
			if smp != nil {
				// Like the tracer/profiler reads above, account must see
				// rec before popRec's queue compaction can move it.
				smp.account(ci, rec)
			}
			m.popRec(ci)
			progressed = true
			retired++
			m.evalRetired = retired
			if flags&isa.FlagM5Reset != 0 {
				for _, o := range m.O3 {
					o.ResetStats()
				}
				for _, d := range m.ecallLat {
					d.Reset()
				}
				if smp != nil {
					smp.reset(retired)
				}
			}
			if flags&isa.FlagM5Dump != 0 {
				ndump++
				if smp != nil {
					dumps = append(dumps, smp.dump(m, fmt.Sprintf("dump%d", ndump)))
				} else {
					dumps = append(dumps, m.collectStats(fmt.Sprintf("dump%d", ndump)))
				}
			}
			if smp != nil {
				smp.advance(retired)
			}
			break
		}
		if progressed {
			continue
		}
		if m.halted {
			if err := m.panicErr(); err != nil {
				return dumps, err
			}
			if !m.pendingTrace() {
				return dumps, nil
			}
			return dumps, fmt.Errorf("%w (eval: pending trace cannot retire)", ErrDeadlock)
		}
		// Nothing can retire and the grid is in the fast-forward phase:
		// sprint the functional cores to the phase boundary with recording
		// off entirely, then fold the census and let any parked m5 marker
		// replay through the same bookkeeping the per-record path uses.
		// Observability and the single-step reference keep the recorded
		// pump below.
		if smp != nil && smp.phase == phaseFF && !m.SingleStep &&
			m.Tracer == nil && m.Prof == nil {
			room := smp.bulkRoom(retired)
			if left := budget - retired; left < room {
				room = left
			}
			if room > 0 {
				n, err := m.sprint(room)
				if n > 0 {
					for ci := range m.O3 {
						smp.sprintFold(ci, m.sprintInsts[ci], m.sprintCnt[ci])
						// Advance each core's functional clock exactly as
						// the record-replay fast-forward lane would have:
						// one cycle per retired-record slot.
						m.O3[ci].SkipAhead(m.sprintInsts[ci] + m.sprintIdle[ci])
					}
					retired += n
					m.evalRetired = retired
					// Sends executed during the sprint never post commit
					// times; collapse them (and their derivations) onto the
					// modeled-time horizon so post-sprint receives resolve
					// instead of waiting forever.
					seq, _ := m.K.SnapState()
					var horizon uint64
					for _, o := range m.O3 {
						if t := o.Now(); t > horizon {
							horizon = t
						}
					}
					m.Coupler.SetFloor(seq, horizon)
				}
				if err != nil {
					return dumps, err
				}
				if pend := m.m5Pending; pend != 0 {
					m.m5Pending = 0
					if pend&isa.FlagM5Reset != 0 {
						for _, o := range m.O3 {
							o.ResetStats()
						}
						for _, d := range m.ecallLat {
							d.Reset()
						}
						smp.reset(retired)
					}
					if pend&isa.FlagM5Dump != 0 {
						ndump++
						dumps = append(dumps, smp.dump(m, fmt.Sprintf("dump%d", ndump)))
					}
				}
				smp.advance(retired)
				if n > 0 {
					continue
				}
			}
		}
		ran, err := m.pump()
		if err != nil {
			return dumps, err
		}
		if !ran && !m.pendingTrace() {
			return dumps, fmt.Errorf("%w (eval: all processes blocked)", ErrDeadlock)
		}
	}
}

// Quiescent reports whether the machine is alive but idle: not halted,
// with no runnable process on any core. This is the single halted/idle
// predicate shared by RunUntilIdle and the cluster fabric's quantum loop —
// a machine parked in a channel wait (e.g. blocked on a network message
// that has not arrived yet) is quiescent, never "halted": halting is
// exclusively the m5 exit operation. Every runnable process is reachable
// through the per-core run queues and steps at least one instruction when
// scheduled, so "no runnable process" is exactly the condition under which
// a scheduler pump would report no progress.
func (m *Machine) Quiescent() bool {
	if m.halted {
		return false
	}
	for _, p := range m.K.Procs {
		if p.State == kernel.ProcRunnable {
			return false
		}
	}
	return true
}

// RunUntilIdle executes functionally until every process is blocked or
// dead, the machine halts, or budget instructions execute. Unlike
// RunFunctional, quiescence is success, not deadlock: a host-driven
// machine (see kernel.Inject) hands control back exactly when it has
// consumed all injected work and everyone is waiting for more.
func (m *Machine) RunUntilIdle(budget uint64) error {
	m.recording = false
	start := m.virtInstr
	for !m.halted {
		if m.Quiescent() {
			return nil
		}
		if _, err := m.pump(); err != nil {
			return err
		}
		if m.virtInstr-start > budget {
			return fmt.Errorf("gemsys: host-driven run exceeded %d instructions", budget)
		}
	}
	return m.panicErr()
}

// RunQuantum advances functional execution by roughly quantum virtual
// instructions (rounded up to whole scheduling rounds), stopping early on
// quiescence or halt. It returns done=true when the machine has no more
// work — quiescent (waiting for the next injected message) or halted —
// and done=false when the quantum expired with work still runnable, in
// which case the caller (the cluster fabric) should reschedule the
// machine after giving co-simulated machines a chance to catch up in
// virtual time. RunQuantum and RunUntilIdle share the Quiescent
// predicate, so the fabric can never misreport a parked machine.
func (m *Machine) RunQuantum(quantum uint64) (bool, error) {
	m.recording = false
	start := m.virtInstr
	for !m.halted {
		if m.Quiescent() {
			return true, nil
		}
		if _, err := m.pump(); err != nil {
			return false, err
		}
		if m.virtInstr-start >= quantum {
			return m.Quiescent(), nil
		}
	}
	return true, m.panicErr()
}

// AdvanceClock raises the machine's virtual clock to at least `to`
// nanoseconds, modeling idle wall-clock time passing while the machine
// waits for external input (a network message in flight). Clocks never
// move backwards: a `to` at or below the current clock is a no-op.
func (m *Machine) AdvanceClock(to uint64) {
	if to > m.virtInstr {
		m.virtInstr = to
	}
}

// KillProcess marks the named process dead, so the scheduler never runs
// it again. The load-generation layer kills the restored client process
// and drives the surviving server host-side.
func (m *Machine) KillProcess(name string) error {
	for _, p := range m.K.Procs {
		if p.Name == name {
			p.State = kernel.ProcDead
			return nil
		}
	}
	return fmt.Errorf("gemsys: no process named %q", name)
}

// RunFunctional executes functionally until halt (QEMU mode).
func (m *Machine) RunFunctional(budget uint64) error {
	m.recording = false
	start := m.virtInstr
	for !m.halted {
		ran, err := m.pump()
		if err != nil {
			return err
		}
		if !ran {
			return fmt.Errorf("%w (functional)", ErrDeadlock)
		}
		if m.virtInstr-start > budget {
			return fmt.Errorf("gemsys: functional run exceeded %d instructions", budget)
		}
	}
	return m.panicErr()
}

// MeasureFunctional drives the functional engine to completion (halt) in
// the requested recording mode, discarding any produced trace after every
// scheduling round so memory stays flat — no timing model consumes it.
// It returns the number of virtual instructions executed. This is the
// interpreter-benchmark entry point (cmd/interpbench): it exercises
// exactly the hot loop of setup mode (record=false) or of the functional
// side of eval mode (record=true) without the replay machinery.
func (m *Machine) MeasureFunctional(budget uint64, record bool) (uint64, error) {
	m.recording = record
	start := m.virtInstr
	for !m.halted {
		ran, err := m.pump()
		if record {
			for ci := range m.traces {
				m.traces[ci] = m.traces[ci][:0]
				m.cursor[ci] = 0
			}
		}
		if err != nil {
			return m.virtInstr - start, err
		}
		if !ran {
			return m.virtInstr - start, fmt.Errorf("%w (measure)", ErrDeadlock)
		}
		if m.virtInstr-start > budget {
			return m.virtInstr - start, fmt.Errorf("gemsys: functional run exceeded %d instructions", budget)
		}
	}
	return m.virtInstr - start, m.panicErr()
}

// ErrKVMUnstable reports that the KVM-accelerated setup tripped the
// documented instability around m5 magic instructions (§3.4.1 of the
// thesis: frequent freezes when checkpointing under KVM).
var ErrKVMUnstable = errors.New("gemsys: KVM core froze at the checkpoint magic instruction")

// RunSetupKVM fast-forwards the setup phase using the KVM-style CPU model.
// When the checkpoint magic instruction trips KVM's instability, it
// returns ErrKVMUnstable and the machine must be rebuilt and re-run with
// the atomic core (RunSetup) — the fallback the thesis's methodology
// settled on.
func (m *Machine) RunSetupKVM(kvm *cpu.KVM, budget uint64) error {
	m.recording = false
	start := m.virtInstr
	for !m.halted && !m.ckptReq {
		ran, err := m.pump()
		if err != nil {
			return err
		}
		if !ran {
			return fmt.Errorf("%w (kvm setup: all processes blocked)", ErrDeadlock)
		}
		if m.virtInstr-start > budget {
			return fmt.Errorf("gemsys: kvm setup exceeded %d instructions", budget)
		}
	}
	kvm.Retire(m.virtInstr - start)
	if m.ckptReq && !kvm.TryCheckpoint() {
		return ErrKVMUnstable
	}
	return nil
}
