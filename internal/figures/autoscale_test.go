package figures

import (
	"reflect"
	"strings"
	"testing"

	"svbench/internal/autoscale"
	"svbench/internal/isa"
)

// TestTableAutoscaleShape pins the policy × RPS matrix's structure and
// extends the figures determinism contract to it: serial and parallel
// pools must project identical cells.
func TestTableAutoscaleShape(t *testing.T) {
	t1, err := TableAutoscale(isa.RV64, 7, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	t4, err := TableAutoscale(isa.RV64, 7, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(t1, t4) {
		t.Errorf("autoscale table differs between -j 1 and -j 4:\n%s\nvs\n%s", t1.Markdown(), t4.Markdown())
	}
	wantRows := len(autoscale.Policies()) * len(AutoscaleRPSGrid)
	if len(t1.Rows) != wantRows {
		t.Fatalf("table has %d rows, want %d", len(t1.Rows), wantRows)
	}
	for _, p := range autoscale.Policies() {
		if !strings.Contains(t1.Markdown(), p.Name()) {
			t.Errorf("policy %q missing from table:\n%s", p.Name(), t1.Markdown())
		}
	}
	const sloCol, utilCol = 1, 7
	for _, r := range t1.Rows {
		if r.Values[sloCol] < 0 || r.Values[sloCol] > 100 {
			t.Errorf("row %q: SLO attainment %.2f%% out of range", r.Label, r.Values[sloCol])
		}
		if r.Values[utilCol] < 0 || r.Values[utilCol] > 100 {
			t.Errorf("row %q: utilization %.2f%% out of range", r.Label, r.Values[utilCol])
		}
	}
}
