package container

import (
	"fmt"

	"svbench/internal/gemsys"
	"svbench/internal/kernel"
)

// State is a container's lifecycle state — the thesis's function states
// (§2.1): Dead (no resources), Waiting (resident, idle), Running.
type State int

// Container states.
const (
	Dead State = iota
	Waiting
	Running
)

func (s State) String() string {
	switch s {
	case Dead:
		return "dead"
	case Waiting:
		return "waiting"
	case Running:
		return "running"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Container is one instance of an image.
type Container struct {
	ID    int
	Image *Image
	State State
	Proc  *kernel.Process
	// Starts counts cold starts (Dead -> Running transitions).
	Starts int
}

// Engine is the container runtime: it pulls images from a registry and
// runs them as pinned processes on a machine.
type Engine struct {
	Registry *Registry
	M        *gemsys.Machine
	conts    []*Container
}

// NewEngine creates an engine over a registry and machine.
func NewEngine(reg *Registry, m *gemsys.Machine) *Engine {
	return &Engine{Registry: reg, M: m}
}

// Create instantiates a container in the Dead state.
func (e *Engine) Create(imageName string) (*Container, error) {
	img, err := e.Registry.Pull(imageName, e.M.Cfg.Arch)
	if err != nil {
		return nil, err
	}
	c := &Container{ID: len(e.conts), Image: img, State: Dead}
	e.conts = append(e.conts, c)
	return c, nil
}

// Start boots a Dead container: the image's module is compiled into a
// fresh region and its main spawned pinned to coreID with args (the
// cold-start path). Starting a Waiting container is a warm transition and
// spawns nothing.
func (e *Engine) Start(c *Container, coreID int, args []uint64) error {
	switch c.State {
	case Running:
		return fmt.Errorf("container: %s already running", c.Image.Name)
	case Waiting:
		c.State = Running
		return nil
	}
	if c.Image.Module == nil {
		return fmt.Errorf("container: image %s has no program", c.Image.Name)
	}
	p, err := e.M.Spawn(fmt.Sprintf("ctr-%s-%d", c.Image.Name, c.ID), c.Image.Module, "main", coreID, args)
	if err != nil {
		return err
	}
	c.Proc = p
	c.State = Running
	c.Starts++
	return nil
}

// Pause moves a Running container to Waiting (resident in memory; its
// process keeps its region but is descheduled naturally when blocked).
func (e *Engine) Pause(c *Container) error {
	if c.State != Running {
		return fmt.Errorf("container: %s not running", c.Image.Name)
	}
	c.State = Waiting
	return nil
}

// Containers lists the engine's containers.
func (e *Engine) Containers() []*Container { return e.conts }
