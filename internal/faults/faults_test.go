package faults

import (
	"testing"

	"svbench/internal/rpc"
)

func TestPRNGDeterministic(t *testing.T) {
	a, b := NewPRNG(42), NewPRNG(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: %d != %d", i, av, bv)
		}
	}
	c := NewPRNG(43)
	same := 0
	a = NewPRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 42 and 43 collided on %d of 1000 draws", same)
	}
}

func TestPRNGZeroSeed(t *testing.T) {
	p := NewPRNG(0)
	if p.Uint64() == 0 && p.Uint64() == 0 {
		t.Fatal("zero seed degenerated to a zero stream")
	}
}

func TestPRNGFloat64Range(t *testing.T) {
	p := NewPRNG(7)
	for i := 0; i < 10000; i++ {
		if f := p.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestChanceDrawCountStable(t *testing.T) {
	// Chance must consume exactly one draw for prob in (0,1] and none for
	// prob <= 0, so a plan's draw schedule does not depend on outcomes.
	a, b := NewPRNG(5), NewPRNG(5)
	a.Chance(0.5)
	a.Chance(1.5) // >= 1: still burns a draw
	b.Uint64()
	b.Uint64()
	if a.Uint64() != b.Uint64() {
		t.Fatal("Chance draw count diverged from one draw per call")
	}
	a.Chance(0)  // no draw
	a.Chance(-1) // no draw
	b2 := NewPRNG(5)
	for i := 0; i < 3; i++ {
		b2.Uint64()
	}
	if a.Uint64() != b2.Uint64() {
		t.Fatal("Chance(<=0) consumed a draw")
	}
}

func TestInjectorDisarmed(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, Rules: []Rule{{Kind: DropMsg, Channel: AnyChannel, Prob: 1}}})
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if drop, delay := in.IPCFault(0, payload); drop || delay != 0 {
		t.Fatal("disarmed injector injected a fault")
	}
	if in.Report != (Report{}) {
		t.Fatalf("disarmed injector counted: %+v", in.Report)
	}
}

func TestInjectorNilSafe(t *testing.T) {
	var in *Injector
	if drop, delay := in.IPCFault(0, nil); drop || delay != 0 {
		t.Fatal("nil injector injected")
	}
	in.Note(EvTimeout)
	svc := countingService{}
	if got := in.WrapService(&svc); got != &svc {
		t.Fatal("nil injector wrapped a service")
	}
}

func TestInjectorDrop(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, Rules: []Rule{{Kind: DropMsg, Channel: 3, Prob: 1}}})
	in.Arm()
	if drop, _ := in.IPCFault(2, nil); drop {
		t.Fatal("rule for channel 3 fired on channel 2")
	}
	if drop, _ := in.IPCFault(3, nil); !drop {
		t.Fatal("certain drop rule did not fire")
	}
	if in.Report.Dropped != 1 || in.Report.Injected != 1 {
		t.Fatalf("report = %+v, want 1 dropped/injected", in.Report)
	}
}

func TestInjectorCorruptAndDelay(t *testing.T) {
	in := NewInjector(Plan{Seed: 9, Rules: []Rule{
		{Kind: CorruptMsg, Channel: AnyChannel, Prob: 1},
		{Kind: DelayMsg, Channel: AnyChannel, Prob: 1, Delay: 500},
	}})
	in.Arm()
	payload := make([]byte, 32)
	orig := append([]byte(nil), payload...)
	drop, delay := in.IPCFault(0, payload)
	if drop {
		t.Fatal("unexpected drop")
	}
	if delay != 500 {
		t.Fatalf("delay = %d, want 500", delay)
	}
	diff := 0
	for i := range payload {
		if payload[i] != orig[i] {
			diff++
			if i < 8 {
				t.Fatalf("corruption touched header byte %d", i)
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes corrupted, want exactly 1", diff)
	}
	// Short payloads (header only) must survive corruption untouched.
	short := []byte{1, 2, 3}
	in.IPCFault(0, short)
	if short[0] != 1 || short[1] != 2 || short[2] != 3 {
		t.Fatal("header-only payload was corrupted")
	}
}

func TestClientChannelBinding(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, Rules: []Rule{{Kind: DropMsg, Channel: ClientResp, Prob: 1}}})
	in.Arm()
	// Unbound symbolic targets must not match anything.
	if drop, _ := in.IPCFault(5, nil); drop {
		t.Fatal("unbound ClientResp rule fired")
	}
	in.BindClientChans(4, 5)
	if drop, _ := in.IPCFault(4, nil); drop {
		t.Fatal("ClientResp rule fired on the request channel")
	}
	if drop, _ := in.IPCFault(5, nil); !drop {
		t.Fatal("bound ClientResp rule did not fire")
	}
}

func TestNoteCounters(t *testing.T) {
	in := NewInjector(Plan{})
	for _, ev := range []uint64{EvTimeout, EvBadReply, EvRetry, EvRecovered, EvExhausted} {
		in.Note(ev)
	}
	want := Report{Surfaced: 2, Timeouts: 1, BadReplies: 1, Retried: 1, Recovered: 1, Exhausted: 1}
	if in.Report != want {
		t.Fatalf("report = %+v, want %+v", in.Report, want)
	}
}

// countingService is a trivial named service for wrapper tests.
type countingService struct {
	name  string
	calls int
}

func (c *countingService) Handle([]byte) ([]byte, uint64) {
	c.calls++
	w := rpc.NewWriter()
	w.PutInt(0)
	return w.Bytes(), 1000
}

func (c *countingService) ServiceName() string { return c.name }

func TestWrapServiceMatching(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, Rules: []Rule{{Kind: ErrorReply, Service: "cassandra", Prob: 1}}})
	mongo := &countingService{name: "mongodb"}
	if _, wrapped := in.WrapService(mongo).(*FlakyService); wrapped {
		t.Fatal("rule for cassandra wrapped mongodb")
	}
	cass := &countingService{name: "cassandra"}
	if _, ok := in.WrapService(cass).(*FlakyService); !ok {
		t.Fatal("rule for cassandra did not wrap cassandra")
	}
	any := NewInjector(Plan{Seed: 1, Rules: []Rule{{Kind: LatencySpike, Service: "*", Prob: 1, Mult: 4}}})
	if _, ok := any.WrapService(mongo).(*FlakyService); !ok {
		t.Fatal("wildcard rule did not wrap")
	}
}

func TestFlakyServiceOutage(t *testing.T) {
	in := NewInjector(Plan{})
	in.Arm()
	inner := &countingService{name: "cassandra"}
	f := NewFlakyService(in, inner, []Rule{{Kind: Outage, After: 2, For: 3}})
	var statuses []uint64
	for i := 0; i < 7; i++ {
		resp, _ := f.Handle(nil)
		st, err := rpc.NewReader(resp).Int()
		if err != nil {
			t.Fatalf("request %d: bad reply frame: %v", i, err)
		}
		statuses = append(statuses, st)
	}
	want := []uint64{0, 0, StatusUnavailable, StatusUnavailable, StatusUnavailable, 0, 0}
	for i := range want {
		if statuses[i] != want[i] {
			t.Fatalf("statuses = %v, want %v", statuses, want)
		}
	}
	if inner.calls != 4 {
		t.Fatalf("inner saw %d calls, want 4 (outage window must not reach the engine)", inner.calls)
	}
	if in.Report.Outages != 3 {
		t.Fatalf("Outages = %d, want 3", in.Report.Outages)
	}
}

func TestFlakyServiceSpike(t *testing.T) {
	in := NewInjector(Plan{})
	in.Arm()
	f := NewFlakyService(in, &countingService{}, []Rule{{Kind: LatencySpike, Prob: 1, Mult: 8}})
	if _, cycles := f.Handle(nil); cycles != 8000 {
		t.Fatalf("spiked cycles = %d, want 8000", cycles)
	}
	if in.Report.Spikes != 1 {
		t.Fatalf("Spikes = %d, want 1", in.Report.Spikes)
	}
}

func TestFlakyServiceDisarmedPassthrough(t *testing.T) {
	in := NewInjector(Plan{})
	inner := &countingService{}
	f := NewFlakyService(in, inner, []Rule{{Kind: ErrorReply, Prob: 1}})
	if _, cycles := f.Handle(nil); cycles != 1000 {
		t.Fatal("disarmed wrapper altered the reply")
	}
	if inner.calls != 1 {
		t.Fatal("disarmed wrapper swallowed the request")
	}
}

func TestErrorFrameDecodes(t *testing.T) {
	st, err := rpc.NewReader(ErrorFrame()).Int()
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if st != StatusUnavailable {
		t.Fatalf("status = %d, want %d", st, StatusUnavailable)
	}
}
