// Package container implements the Docker-model layer of the stack:
// layered images whose compressed sizes are measured by actually gzipping
// the layer contents (Tables 4.4/4.5 of the thesis), an image registry,
// and a container engine with the Dead/Waiting/Running lifecycle that
// launches containers as processes on the simulated machine.
//
// Image composition mirrors what the thesis observed per §3.3/3.5:
//
//   - Go images are tiny static binaries (RISC-V slightly smaller: no
//     dynamic-loader payload).
//   - Python images carry the interpreter and module tree; the RISC-V
//     variants are *larger* because no slim base image existed for the
//     architecture (§3.5.1), so they sit on a full Ubuntu Jammy base.
//   - Node images carry the VM plus a snapshot; the x86 variants add the
//     dynamic glibc dependency layer.
package container

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"sort"

	"svbench/internal/ir"
	"svbench/internal/isa"
	"svbench/internal/isa/cisc"
	"svbench/internal/isa/riscv"
	"svbench/internal/langrt"
)

// Layer is one image layer.
type Layer struct {
	Name string
	Data []byte
}

// Image is a container image: metadata, layers and the program module the
// container runs.
type Image struct {
	Name    string
	Arch    isa.Arch
	Runtime langrt.Runtime
	Layers  []Layer
	Module  *ir.Module

	compressed int // memoized
}

// Size returns the uncompressed image size in bytes.
func (img *Image) Size() int {
	n := 0
	for _, l := range img.Layers {
		n += len(l.Data)
	}
	return n
}

// CompressedSize gzips every layer (as a registry stores them) and returns
// the total compressed bytes.
func (img *Image) CompressedSize() int {
	if img.compressed != 0 {
		return img.compressed
	}
	total := 0
	for _, l := range img.Layers {
		var buf bytes.Buffer
		zw, _ := gzip.NewWriterLevel(&buf, gzip.BestSpeed)
		zw.Write(l.Data)
		zw.Close()
		total += buf.Len()
	}
	img.compressed = total
	return total
}

// Profile scales the synthetic base layers, modeling different image
// lineages: ours (the thesis's GPour images) versus the prior "Natheesan"
// port found on Docker Hub (§4.2.6), whose Python images are ~2.5x larger
// and Node images ~3x.
type Profile struct {
	Name        string
	PyBaseMul   float64
	NodeBaseMul float64
	GoBaseMul   float64
	ShopDepMul  float64
}

// GPourProfile is the thesis's own image lineage.
var GPourProfile = Profile{Name: "gpour", PyBaseMul: 1, NodeBaseMul: 1, GoBaseMul: 1, ShopDepMul: 1}

// NatheesanProfile models the prior Docker Hub port compared in Table 4.5.
var NatheesanProfile = Profile{Name: "natheesan", PyBaseMul: 2.45, NodeBaseMul: 2.9, GoBaseMul: 0.88, ShopDepMul: 2.4}

// Deterministic low-compressibility filler standing in for binary payload
// (interpreter objects, shared libraries).
func binaryBlob(seed uint32, n int) []byte {
	d := make([]byte, n)
	x := seed | 1
	for i := range d {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		d[i] = byte(x)
	}
	return d
}

// Compressible filler standing in for text assets (python sources, JS).
func textBlob(seed uint32, n int) []byte {
	words := []string{"import", "def", "return", "module", "require", "function",
		"class", "self", "export", "const", "async", "await", "yield"}
	var buf bytes.Buffer
	x := seed | 1
	for buf.Len() < n {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		buf.WriteString(words[x%uint32(len(words))])
		buf.WriteByte(' ')
	}
	return buf.Bytes()[:n]
}

// Synthetic layer sizes (bytes); at the repository's documentation scale
// 1 KiB here corresponds to ~1 MB of the thesis's tables, so the ratios in
// Tables 4.4/4.5 are preserved.
const (
	goBaseSize    = 5 << 10
	pyVMSize      = 80 << 10
	pyStdlibSize  = 40 << 10
	pyJammyExtra  = 30 << 10 // no slim RISC-V python base existed (§3.5.1)
	pySlimBase    = 10 << 10
	nodeVMX86     = 18 << 10
	nodeVMRV      = 8 << 10  // lean static RISC-V node builds
	nodeGlibcDeps = 12 << 10 // x86 dynamic dependency layer
	shopPyDeps    = 9 << 10  // prebuilt grpcio layer for the shop services
	authNodeExtra = 13 << 10 // extra deps observed on auth-nodejs
)

// ImageOpts carries per-image structure knobs.
type ImageOpts struct {
	Shop    bool // shop-service image (extra dependency layer)
	AuthDep bool // the auth-nodejs dependency anomaly in Table 4.4
	Profile Profile
}

// BuildImage assembles an image for a workload module: synthetic base and
// dependency layers per the runtime/architecture lineage, plus an app
// layer holding the *actual compiled machine code* for the target ISA.
func BuildImage(name string, rt langrt.Runtime, arch isa.Arch, mod *ir.Module, opts ImageOpts) (*Image, error) {
	if opts.Profile.Name == "" {
		opts.Profile = GPourProfile
	}
	img := &Image{Name: name, Arch: arch, Runtime: rt, Module: mod}
	seed := uint32(len(name)*2654435761 + int(arch[0]))

	mul := func(n int, f float64) int { return int(float64(n) * f) }
	switch rt {
	case langrt.GoRT:
		img.Layers = append(img.Layers, Layer{"base", binaryBlob(seed, mul(goBaseSize, opts.Profile.GoBaseMul))})
		if arch == isa.CISC64 {
			img.Layers = append(img.Layers, Layer{"ld-linux", binaryBlob(seed+1, 1<<10)})
		}
	case langrt.PyRT:
		img.Layers = append(img.Layers, Layer{"os-base", textBlob(seed, mul(pySlimBase, opts.Profile.PyBaseMul))})
		if arch == isa.RV64 && !opts.Shop {
			// Standalone RISC-V python images sit on the full Jammy base;
			// the shop services use the custom prebuilt-grpc slim base
			// (§3.3.2), which is why Table 4.4's shop python images are
			// smaller than its standalone ones on RISC-V.
			img.Layers = append(img.Layers, Layer{"jammy-full", binaryBlob(seed+1, pyJammyExtra)})
		}
		img.Layers = append(img.Layers, Layer{"cpython", binaryBlob(seed+2, mul(pyVMSize, opts.Profile.PyBaseMul))})
		img.Layers = append(img.Layers, Layer{"stdlib", textBlob(seed+3, mul(pyStdlibSize, opts.Profile.PyBaseMul))})
	case langrt.NodeRT:
		img.Layers = append(img.Layers, Layer{"os-base", textBlob(seed, 6<<10)})
		nodeVM := nodeVMX86
		if arch == isa.RV64 {
			nodeVM = nodeVMRV
		}
		img.Layers = append(img.Layers, Layer{"node", binaryBlob(seed+4, mul(nodeVM, opts.Profile.NodeBaseMul))})
		if arch == isa.CISC64 {
			img.Layers = append(img.Layers, Layer{"glibc-deps", binaryBlob(seed+5, nodeGlibcDeps)})
		}
		if opts.AuthDep {
			img.Layers = append(img.Layers, Layer{"jwt-deps", binaryBlob(seed+6, authNodeExtra)})
		}
	default:
		return nil, fmt.Errorf("container: unknown runtime %q", rt)
	}
	if opts.Shop {
		img.Layers = append(img.Layers, Layer{"service-deps",
			textBlob(seed+7, mul(shopPyDeps, opts.Profile.ShopDepMul))})
	}

	// App layer: real compiled bytes for the target ISA.
	if mod != nil {
		var prog *isa.Program
		var err error
		switch arch {
		case isa.RV64:
			prog, err = riscv.Compile(mod, 0x400000)
		case isa.CISC64:
			prog, err = cisc.Compile(mod, 0x400000)
		default:
			return nil, fmt.Errorf("container: unknown arch %q", arch)
		}
		if err != nil {
			return nil, fmt.Errorf("container: compile app layer: %w", err)
		}
		app := append(append([]byte(nil), prog.Text...), prog.Data...)
		img.Layers = append(img.Layers, Layer{"app", app})
	}
	return img, nil
}

// Registry stores images by name:arch.
type Registry struct {
	images map[string]*Image
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{images: map[string]*Image{}} }

func key(name string, arch isa.Arch) string { return name + ":" + string(arch) }

// Push stores an image.
func (r *Registry) Push(img *Image) { r.images[key(img.Name, img.Arch)] = img }

// Pull fetches an image.
func (r *Registry) Pull(name string, arch isa.Arch) (*Image, error) {
	img, ok := r.images[key(name, arch)]
	if !ok {
		return nil, fmt.Errorf("container: no image %s for %s", name, arch)
	}
	return img, nil
}

// List returns image names (sorted, deduplicated across architectures).
func (r *Registry) List() []string {
	seen := map[string]bool{}
	var out []string
	for _, img := range r.images {
		if !seen[img.Name] {
			seen[img.Name] = true
			out = append(out, img.Name)
		}
	}
	sort.Strings(out)
	return out
}
