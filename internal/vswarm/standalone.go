// Package vswarm re-implements the vSwarm benchmark workloads against the
// portable IR: the standalone functions (Fibonacci, AES, Auth — Table 3.2),
// the Online Shop application (Table 3.3) and the Hotel reservation
// application (Table 3.4). Each workload exports a handler function with
// the contract handler(reqPtr, reqLen, respPtr) -> respLen over the rpc
// wire format; the language runtime wrappers (internal/langrt) turn a
// handler into a complete container program.
package vswarm

import (
	"svbench/internal/ir"
)

// Handler names the entry point of every workload module.
const Handler = "handler"

// newCursor allocates the message-read cursor in the builder's frame and
// initializes it past the wire header.
func newCursor(b *ir.Builder, name string) ir.Reg {
	cur := b.Frame(b.Buf(name, 8), 0)
	b.Store(cur, 0, b.Const(8), 8)
	return cur
}

// Fibonacci builds the fibonacci workload: request {n:int},
// response {fib(n):int}.
func Fibonacci() *ir.Module {
	m := ir.NewModule("fibonacci")
	b := ir.NewFunc(Handler, 3)
	req, resp := b.Param(0), b.Param(2)
	cur := newCursor(b, "cur")
	n := b.Call("mbuf_get_int", req, cur)

	x := b.Const(0)
	y := b.Const(1)
	i := b.Const(0)
	loop, done := b.NewLabel("loop"), b.NewLabel("done")
	b.Label(loop)
	b.Br(ir.Ge, i, n, done)
	t := b.Add(x, y)
	b.MovInto(x, y)
	b.MovInto(y, t)
	b.AddIInto(i, i, 1)
	b.Jmp(loop)
	b.Label(done)

	b.CallV("mbuf_reset", resp)
	b.CallV("mbuf_put_int", resp, x)
	b.Ret(b.Call("mbuf_len", resp))
	m.AddFunc(b.Build())
	return m
}

// aesSbox generates the standard AES S-box.
func aesSbox() []byte {
	var sbox [256]byte
	rotl := func(x byte, n uint) byte { return x<<n | x>>(8-n) }
	p, q := byte(1), byte(1)
	sbox[0] = 0x63
	for {
		// p := p * 3 in GF(2^8)
		if p&0x80 != 0 {
			p = p ^ (p << 1) ^ 0x1B
		} else {
			p = p ^ (p << 1)
		}
		// q := q / 3 (q *= 0xf6 inverse walk)
		q ^= q << 1
		q ^= q << 2
		q ^= q << 4
		if q&0x80 != 0 {
			q ^= 0x09
		}
		sbox[p] = q ^ rotl(q, 1) ^ rotl(q, 2) ^ rotl(q, 3) ^ rotl(q, 4) ^ 0x63
		if p == 1 {
			break
		}
	}
	return sbox[:]
}

// aesXtime generates the GF(2^8) multiply-by-two table.
func aesXtime() []byte {
	t := make([]byte, 256)
	for i := 0; i < 256; i++ {
		v := i << 1
		if i&0x80 != 0 {
			v ^= 0x1B
		}
		t[i] = byte(v)
	}
	return t
}

// AES builds the aes workload: a genuine AES-128 ECB encryption of the
// request payload. Request {key:bytes16, plain:bytes}; response
// {cipher:bytes}. The S-box and xtime lookups drive data-cache behaviour,
// exactly like the reference implementation the suite ships.
func AES() *ir.Module {
	m := ir.NewModule("aes")
	m.AddGlobal(&ir.Global{Name: "aes_sbox", Data: aesSbox()})
	m.AddGlobal(&ir.Global{Name: "aes_xtime", Data: aesXtime()})
	m.AddGlobal(&ir.Global{Name: "aes_rcon", Data: []byte{0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36}})

	// aes_expand_key(key, rks): 176-byte AES-128 key schedule.
	{
		b := ir.NewFunc("aes_expand_key", 2)
		key, rks := b.Param(0), b.Param(1)
		b.CallV("memcpy", rks, key, b.Const(16))
		sbox := b.Global("aes_sbox", 0)
		rcon := b.Global("aes_rcon", 0)
		i := b.Const(4) // word index 4..43
		loop, done := b.NewLabel("loop"), b.NewLabel("done")
		b.Label(loop)
		b.BrI(ir.Ge, i, 44, done)
		prev := b.ShlI(b.AddI(i, -1), 2) // byte offset of word i-1
		p := b.Add(rks, prev)
		t0 := b.LoadU(p, 0, 1)
		t1 := b.LoadU(p, 1, 1)
		t2 := b.LoadU(p, 2, 1)
		t3 := b.LoadU(p, 3, 1)
		rem := b.AndI(i, 3)
		noRot := b.NewLabel("norot")
		b.BrI(ir.Ne, rem, 0, noRot)
		// RotWord + SubWord + Rcon.
		r0 := b.LoadU(b.Add(sbox, t1), 0, 1)
		r1 := b.LoadU(b.Add(sbox, t2), 0, 1)
		r2 := b.LoadU(b.Add(sbox, t3), 0, 1)
		r3 := b.LoadU(b.Add(sbox, t0), 0, 1)
		idx := b.SraI(i, 2)
		rc := b.LoadU(b.Add(rcon, b.AddI(idx, -1)), 0, 1)
		b.MovInto(t0, b.Xor(r0, rc))
		b.MovInto(t1, r1)
		b.MovInto(t2, r2)
		b.MovInto(t3, r3)
		b.Label(noRot)
		back := b.ShlI(b.AddI(i, -4), 2)
		q := b.Add(rks, back)
		w0 := b.Xor(b.LoadU(q, 0, 1), t0)
		w1 := b.Xor(b.LoadU(q, 1, 1), t1)
		w2 := b.Xor(b.LoadU(q, 2, 1), t2)
		w3 := b.Xor(b.LoadU(q, 3, 1), t3)
		dst := b.Add(rks, b.ShlI(i, 2))
		b.Store(dst, 0, w0, 1)
		b.Store(dst, 1, w1, 1)
		b.Store(dst, 2, w2, 1)
		b.Store(dst, 3, w3, 1)
		b.AddIInto(i, i, 1)
		b.Jmp(loop)
		b.Label(done)
		b.Ret0()
		f := b.Build()
		f.Lib = true // C-extension crypto in the interpreted runtimes
		m.AddFunc(f)
	}

	// aes_encrypt_block(state, rks): in-place AES-128 block encryption.
	// Structured as a round loop over shared helpers, as the reference C
	// implementations are — keeping register pressure realistic.
	{
		b := ir.NewFunc("aes_encrypt_block", 2)
		st, rks := b.Param(0), b.Param(1)
		sbox := b.Global("aes_sbox", 0)
		xt := b.Global("aes_xtime", 0)
		tmp := b.Frame(b.Buf("tmp", 16), 0)

		// addRK(roundReg): state ^= roundKey[round].
		round := b.Const(0)
		addRK := func() {
			rk := b.Add(rks, b.ShlI(round, 4))
			i := b.Const(0)
			loop, done := b.NewLabel("ark"), b.NewLabel("arkd")
			b.Label(loop)
			b.BrI(ir.Ge, i, 16, done)
			sv := b.LoadU(b.Add(st, i), 0, 1)
			kv := b.LoadU(b.Add(rk, i), 0, 1)
			b.Store(b.Add(st, i), 0, b.Xor(sv, kv), 1)
			b.AddIInto(i, i, 1)
			b.Jmp(loop)
			b.Label(done)
		}
		subShift := func() {
			// tmp[r+4c] = sbox[st[r + 4((c+r)%4)]] with i = r+4c.
			i := b.Const(0)
			loop, done := b.NewLabel("ss"), b.NewLabel("ssd")
			b.Label(loop)
			b.BrI(ir.Ge, i, 16, done)
			r := b.AndI(i, 3)
			c := b.ShrI(i, 2)
			rot := b.AndI(b.Add(c, r), 3)
			src := b.Add(r, b.ShlI(rot, 2))
			v := b.LoadU(b.Add(st, src), 0, 1)
			sv := b.LoadU(b.Add(sbox, v), 0, 1)
			b.Store(b.Add(tmp, i), 0, sv, 1)
			b.AddIInto(i, i, 1)
			b.Jmp(loop)
			b.Label(done)
			b.CallV("memcpy", st, tmp, b.Const(16))
		}
		mix := func() {
			c := b.Const(0)
			loop, done := b.NewLabel("mix"), b.NewLabel("mixd")
			b.Label(loop)
			b.BrI(ir.Ge, c, 16, done)
			col := b.Add(st, c)
			a0 := b.LoadU(col, 0, 1)
			a1 := b.LoadU(col, 1, 1)
			a2 := b.LoadU(col, 2, 1)
			a3 := b.LoadU(col, 3, 1)
			x0 := b.LoadU(b.Add(xt, a0), 0, 1)
			x1 := b.LoadU(b.Add(xt, a1), 0, 1)
			x2 := b.LoadU(b.Add(xt, a2), 0, 1)
			x3 := b.LoadU(b.Add(xt, a3), 0, 1)
			b0 := b.Xor(x0, b.Xor(b.Xor(x1, a1), b.Xor(a2, a3)))
			b1 := b.Xor(a0, b.Xor(x1, b.Xor(b.Xor(x2, a2), a3)))
			b2 := b.Xor(a0, b.Xor(a1, b.Xor(x2, b.Xor(x3, a3))))
			b3 := b.Xor(b.Xor(x0, a0), b.Xor(a1, b.Xor(a2, x3)))
			b.Store(col, 0, b0, 1)
			b.Store(col, 1, b1, 1)
			b.Store(col, 2, b2, 1)
			b.Store(col, 3, b3, 1)
			b.AddIInto(c, c, 4)
			b.Jmp(loop)
			b.Label(done)
		}

		addRK() // round 0
		rounds, roundsDone := b.NewLabel("rounds"), b.NewLabel("roundsd")
		b.AddIInto(round, round, 1)
		b.Label(rounds)
		b.BrI(ir.Gt, round, 9, roundsDone)
		subShift()
		mix()
		addRK()
		b.AddIInto(round, round, 1)
		b.Jmp(rounds)
		b.Label(roundsDone)
		subShift()
		b.ConstInto(round, 10)
		addRK()
		b.Ret0()
		f := b.Build()
		f.Lib = true // C-extension crypto in the interpreted runtimes
		m.AddFunc(f)
	}

	// handler(req, reqLen, resp): ECB-encrypt the payload.
	{
		b := ir.NewFunc(Handler, 3)
		req, resp := b.Param(0), b.Param(2)
		cur := newCursor(b, "cur")
		key := b.Frame(b.Buf("key", 16), 0)
		data := b.Frame(b.Buf("data", 1024), 0)
		rks := b.Frame(b.Buf("rks", 176), 0)
		b.CallV("mbuf_get_bytes", req, cur, key, b.Const(16))
		n := b.Call("mbuf_get_bytes", req, cur, data, b.Const(1024))
		b.CallV("aes_expand_key", key, rks)
		// Round down to whole blocks, minimum one.
		blocks := b.AndI(n, ^int64(15))
		atLeast := b.NewLabel("nz")
		b.BrI(ir.Ne, blocks, 0, atLeast)
		b.MovInto(blocks, b.Const(16))
		b.Label(atLeast)
		off := b.Const(0)
		loop, done := b.NewLabel("blk"), b.NewLabel("blkd")
		b.Label(loop)
		b.Br(ir.Ge, off, blocks, done)
		b.CallV("aes_encrypt_block", b.Add(data, off), rks)
		b.AddIInto(off, off, 16)
		b.Jmp(loop)
		b.Label(done)
		b.CallV("mbuf_reset", resp)
		b.CallV("mbuf_put_bytes", resp, data, blocks)
		b.Ret(b.Call("mbuf_len", resp))
		m.AddFunc(b.Build())
	}
	return m
}

// authUsers synthesizes the credential table: 16 users of
// (nameHash, tokenHash) pairs, hashed exactly as the handler hashes.
func authUsers() []byte {
	out := make([]byte, 0, 16*16)
	for i := 0; i < 16; i++ {
		name := authName(i)
		token := authToken(i)
		nh := chainedFNV(name)
		th := chainedFNV(token)
		var b [16]byte
		for k := 0; k < 8; k++ {
			b[k] = byte(nh >> (8 * k))
			b[8+k] = byte(th >> (8 * k))
		}
		out = append(out, b[:]...)
	}
	return out
}

// AuthName returns the i-th synthetic user name.
func authName(i int) []byte {
	return []byte("user-" + string(rune('a'+i%26)) + "-credential")
}

// AuthToken returns the i-th synthetic bearer token.
func authToken(i int) []byte {
	t := make([]byte, 24)
	x := uint32(i*2654435761 + 12345)
	for k := range t {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		t[k] = 'A' + byte(x%26)
	}
	return t
}

// AuthRequest returns (name, token) for user i — helpers for clients.
func AuthRequest(i int) ([]byte, []byte) { return authName(i), authToken(i) }

// chainedFNV mirrors the handler's 8-round chained FNV-1a hash.
func chainedFNV(p []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for round := 0; round < 8; round++ {
		for _, c := range p {
			h ^= uint64(c)
			h *= 0x100000001b3
		}
		h ^= h >> 29
	}
	return h
}

// Auth builds the auth workload: request {name:bytes, token:bytes};
// response {granted:int, session:int}. The handler hashes the credentials
// with an 8-round chained FNV (the HMAC stand-in) and scans the user
// table.
func Auth() *ir.Module {
	m := ir.NewModule("auth")
	m.AddGlobal(&ir.Global{Name: "auth_users", Data: authUsers()})

	// auth_hash(p, n): the 8-round chained hash.
	{
		b := ir.NewFunc("auth_hash", 2)
		p, n := b.Param(0), b.Param(1)
		h := b.Const(-3750763034362895579)
		prime := b.Const(0x100000001b3)
		r := b.Const(0)
		rl, rd := b.NewLabel("rl"), b.NewLabel("rd")
		b.Label(rl)
		b.BrI(ir.Ge, r, 8, rd)
		i := b.Const(0)
		il, id := b.NewLabel("il"), b.NewLabel("id")
		b.Label(il)
		b.Br(ir.Ge, i, n, id)
		c := b.LoadU(b.Add(p, i), 0, 1)
		b.XorInto(h, h, c)
		b.MulInto(h, h, prime)
		b.AddIInto(i, i, 1)
		b.Jmp(il)
		b.Label(id)
		sh := b.ShrI(h, 29)
		b.XorInto(h, h, sh)
		b.AddIInto(r, r, 1)
		b.Jmp(rl)
		b.Label(rd)
		b.Ret(h)
		f := b.Build()
		f.Lib = true // hashlib-style C extension in the interpreted runtimes
		m.AddFunc(f)
	}

	{
		b := ir.NewFunc(Handler, 3)
		req, resp := b.Param(0), b.Param(2)
		cur := newCursor(b, "cur")
		name := b.Frame(b.Buf("name", 64), 0)
		token := b.Frame(b.Buf("token", 64), 0)
		nn := b.Call("mbuf_get_bytes", req, cur, name, b.Const(64))
		tn := b.Call("mbuf_get_bytes", req, cur, token, b.Const(64))
		nh := b.Call("auth_hash", name, nn)
		th := b.Call("auth_hash", token, tn)

		users := b.Global("auth_users", 0)
		granted := b.Const(0)
		i := b.Const(0)
		loop, done, hit := b.NewLabel("loop"), b.NewLabel("done"), b.NewLabel("hit")
		b.Label(loop)
		b.BrI(ir.Ge, i, 16, done)
		e := b.Add(users, b.ShlI(i, 4))
		un := b.Load(e, 0, 8)
		b.Br(ir.Ne, un, nh, nextUser(b, i, loop))
		ut := b.Load(e, 8, 8)
		b.Br(ir.Eq, ut, th, hit)
		b.AddIInto(i, i, 1)
		b.Jmp(loop)
		b.Label(hit)
		b.ConstInto(granted, 1)
		b.Label(done)

		session := b.Xor(nh, th)
		b.CallV("mbuf_reset", resp)
		b.CallV("mbuf_put_int", resp, granted)
		b.CallV("mbuf_put_int", resp, b.AndI(session, 0x7FFFFFFF))
		b.Ret(b.Call("mbuf_len", resp))
		m.AddFunc(b.Build())
	}
	return m
}

// nextUser emits the advance-and-continue step for the scan loop and
// returns its label.
func nextUser(b *ir.Builder, i ir.Reg, loop string) string {
	skipTo := b.NewLabel("nextu")
	cont := b.NewLabel("cont")
	b.Jmp(cont)
	b.Label(skipTo)
	b.AddIInto(i, i, 1)
	b.Jmp(loop)
	b.Label(cont)
	return skipTo
}
