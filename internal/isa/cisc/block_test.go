package cisc

import (
	"math/rand"
	"reflect"
	"testing"

	"svbench/internal/ir/irtest"
	"svbench/internal/isa"
)

func errText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// lockstep drives a reference core (per-instruction Step) and two fast
// cores (StepN trace lane, StepN no-trace lane) through the same program,
// comparing architectural snapshots, trace records, retired counts and
// errors after every batch. It returns the reference core after ErrHalt.
func lockstep(t *testing.T, mk func() *Core, batches []int, maxRounds int) *Core {
	t.Helper()
	ref, fastT, fastF := mk(), mk(), mk()
	var refRecs []isa.TraceRec
	// Must start non-nil: a nil slice selects StepN's no-trace lane.
	fastRecs := make([]isa.TraceRec, 0, 256)
	for round := 0; ; round++ {
		if round > maxRounds {
			t.Fatalf("no halt after %d rounds", maxRounds)
		}
		k := batches[round%len(batches)]
		var ferr error
		n, out, ferr := fastT.StepN(k, fastRecs[:0])
		fastRecs = out
		n2, _, ferr2 := fastF.StepN(k, nil)
		if n2 != n || errText(ferr2) != errText(ferr) {
			t.Fatalf("round %d: no-trace lane diverged: n=%d err=%v vs n=%d err=%v",
				round, n2, ferr2, n, ferr)
		}
		refRecs = refRecs[:0]
		var rerr error
		for j := 0; j < n; j++ {
			refRecs, rerr = ref.Step(refRecs)
			if rerr != nil && j != n-1 {
				t.Fatalf("round %d: ref errored early at %d/%d: %v", round, j, n, rerr)
			}
		}
		if n == 0 && ferr != nil {
			refRecs, rerr = ref.Step(refRecs[:0])
		}
		if errText(rerr) != errText(ferr) {
			t.Fatalf("round %d: error mismatch: ref=%v fast=%v", round, rerr, ferr)
		}
		if len(refRecs) != len(fastRecs) {
			t.Fatalf("round %d: %d ref recs vs %d fast recs", round, len(refRecs), len(fastRecs))
		}
		for i := range refRecs {
			if refRecs[i] != fastRecs[i] {
				t.Fatalf("round %d rec %d:\nref  %+v\nfast %+v", round, i, refRecs[i], fastRecs[i])
			}
		}
		rs, ts, fs := ref.Snapshot(), fastT.Snapshot(), fastF.Snapshot()
		if !reflect.DeepEqual(rs, ts) || !reflect.DeepEqual(rs, fs) {
			t.Fatalf("round %d: state diverged\nref   %v\ntrace %v\nfast  %v", round, rs, ts, fs)
		}
		if ref.DebugRing != nil {
			if ref.DebugPos() != fastT.DebugPos() || ref.DebugPos() != fastF.DebugPos() ||
				!reflect.DeepEqual(ref.DebugRing, fastT.DebugRing) ||
				!reflect.DeepEqual(ref.DebugRing, fastF.DebugRing) {
				t.Fatalf("round %d: debug ring diverged", round)
			}
		}
		if ferr == ErrHalt {
			return ref
		}
		if ferr != nil && ferr != ErrBlock {
			t.Fatalf("round %d: unexpected error %v", round, ferr)
		}
	}
}

// corpusCore builds a core set up exactly like the interpreter tests do:
// program loaded, exit stub at 0x100 pushed as the return address.
func corpusCore(prog *isa.Program, fn string, args []int64, ring int) func() *Core {
	return func() *Core {
		mem := isa.NewMem(1 << 21)
		prog.LoadInto(mem)
		stub := uint64(0x100)
		var sb []byte
		sb = Inst{Kind: KindMOVrr, Dst: RDI, Src: RAX}.Encode(sb)
		sb = Inst{Kind: KindMOVri32, Dst: RAX, Imm: 255}.Encode(sb)
		sb = Inst{Kind: KindSYSCALL}.Encode(sb)
		copy(mem.Data[stub:], sb)
		core := NewCore(mem, nil)
		core.Hook = func(c isa.Core) isa.EcallResult {
			if c.EcallNum() == 255 {
				return isa.EcallHalt
			}
			return isa.EcallHandled
		}
		core.SetPC(prog.SymAddr(fn))
		core.SetStackPtr(1 << 20)
		core.Regs[RSP] -= 8
		mem.Store(core.Regs[RSP], 8, stub)
		for i, a := range args {
			core.SetArg(i, uint64(a))
		}
		if ring > 0 {
			core.DebugRing = make([]uint64, ring)
		}
		return core
	}
}

// TestStepNLockstepCorpus pins the fast path to the reference interpreter
// over the whole IR test corpus.
func TestStepNLockstepCorpus(t *testing.T) {
	m, cases := irtest.Corpus()
	prog, err := Compile(m, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	schedules := [][]int{{1}, {2, 3}, {7}, {32}, {64, 1, 5}, {256}}
	for i, c := range cases {
		c := c
		bs := schedules[i%len(schedules)]
		t.Run(c.Name, func(t *testing.T) {
			ref := lockstep(t, corpusCore(prog, c.Fn, c.Args, 8), bs, 10_000_000)
			// The exit stub moved the result to RDI.
			if got := int64(ref.Regs[RDI]); got != c.Want {
				t.Fatalf("%s(%v) = %d, want %d", c.Fn, c.Args, got, c.Want)
			}
		})
	}
}

// TestStepNLockstepEcallVariants exercises every ecall disposition plus
// Annotate through both execution lanes.
func TestStepNLockstepEcallVariants(t *testing.T) {
	mk := func() *Core {
		mem := isa.NewMem(1 << 16)
		var code []byte
		for _, num := range []int64{7, 9, 11, 255} {
			code = Inst{Kind: KindMOVri32, Dst: RAX, Imm: num}.Encode(code)
			code = Inst{Kind: KindSYSCALL}.Encode(code)
		}
		copy(mem.Data[0x1000:], code)
		// Vector handler: rsi += 5; ret.
		var h []byte
		h = Inst{Kind: KindADDri32, Dst: RSI, Imm: 5}.Encode(h)
		h = Inst{Kind: KindRET}.Encode(h)
		copy(mem.Data[0x2000:], h)
		core := NewCore(mem, nil)
		core.Hook = func(c isa.Core) isa.EcallResult {
			switch c.EcallNum() {
			case 7:
				c.Annotate(isa.FlagSend, 77)
				c.SetRet(42)
				return isa.EcallHandled
			case 9:
				c.CallInto(0x2000)
				c.Annotate(isa.FlagVector, 0x2000)
				return isa.EcallVector
			case 11:
				c.Annotate(isa.FlagRecv, 5)
				return isa.EcallBlock
			}
			return isa.EcallHalt
		}
		core.SetPC(0x1000)
		core.SetStackPtr(0x8000)
		core.DebugRing = make([]uint64, 4)
		return core
	}
	for _, bs := range [][]int{{1}, {2}, {3}, {5}, {100}} {
		lockstep(t, mk, bs, 1000)
	}
}

// TestDecodeCacheSequential verifies the variable-width sequential-PC
// fast path serves exactly what a cold cache decodes, including across
// the 4 KiB page boundary.
func TestDecodeCacheSequential(t *testing.T) {
	mem := isa.NewMem(1 << 16)
	// Mixed-size straight-line run crossing the page boundary at 0x2000.
	start := uint64(0x1F00)
	kinds := []Inst{
		{Kind: KindADDri32, Dst: 1, Imm: 7},
		{Kind: KindMOVrr, Dst: 2, Src: 1},
		{Kind: KindNOP},
		{Kind: KindSHLri8, Dst: 1, Imm: 3},
		{Kind: KindMOVri, Dst: 3, Imm: 1 << 40},
	}
	var pcs []uint64
	pc := start
	var code []byte
	for i := 0; i < 120; i++ {
		in := kinds[i%len(kinds)]
		pcs = append(pcs, pc)
		code = in.Encode(code)
		pc = start + uint64(len(code))
	}
	copy(mem.Data[start:], code)
	seq := NewDecodeCache()
	for pass := 0; pass < 3; pass++ {
		for _, p := range pcs {
			cold := NewDecodeCache()
			want, err := cold.lookup(p, mem)
			if err != nil {
				t.Fatal(err)
			}
			got, err := seq.lookup(p, mem)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("pc=%#x pass=%d: seq %+v != cold %+v", p, pass, got, want)
			}
		}
	}
}

// TestInvalidateBlocks drops the block cache mid-run and checks execution
// continues bit-identically.
func TestInvalidateBlocks(t *testing.T) {
	m, cases := irtest.Corpus()
	prog, err := Compile(m, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	c := cases[0]
	ref := corpusCore(prog, c.Fn, c.Args, 0)()
	fast := corpusCore(prog, c.Fn, c.Args, 0)()
	var ferr error
	rounds := 0
	for ferr == nil {
		var n int
		n, _, ferr = fast.StepN(50, nil)
		if rounds == 2 {
			if len(fast.Dec.blocks) == 0 {
				t.Fatal("no blocks cached after 3 rounds")
			}
			fast.Dec.InvalidateBlocks()
			if len(fast.Dec.blocks) != 0 || fast.Dec.mruB != nil {
				t.Fatal("InvalidateBlocks left state behind")
			}
		}
		for j := 0; j < n; j++ {
			if _, rerr := ref.Step(nil); rerr != nil && rerr != ferr {
				t.Fatal(rerr)
			}
		}
		rounds++
	}
	if ferr != ErrHalt {
		t.Fatal(ferr)
	}
	if !reflect.DeepEqual(ref.Snapshot(), fast.Snapshot()) {
		t.Fatal("state diverged after invalidation")
	}
}

// fuzzProgram synthesizes a random valid CISC64 instruction stream from
// fuzz bytes: ALU and memory work, stack pushes/pops, SET/CMP flag use,
// forward-only branches, ending in a halting syscall. R15 is reserved as
// the memory base register so loads and stores stay inside
// [0x8000, 0x8800); the stack starts at 0x10000 with bounded drift.
func fuzzProgram(data []byte) []Inst {
	r := rand.New(rand.NewSource(int64(len(data)) * 2654435761))
	byteAt := func(i int) int {
		if len(data) == 0 {
			return 0
		}
		return int(data[i%len(data)])
	}
	nInst := 8 + byteAt(0)%120
	var prog []Inst
	prog = append(prog, Inst{Kind: KindMOVri32, Dst: R15, Imm: 0x8000})
	reg := func(i int) uint8 {
		rd := uint8(byteAt(i) % 16)
		if rd == R15 || rd == RSP {
			rd = R14
		}
		return rd
	}
	aluRR := []Kind{KindMOVrr, KindADD, KindSUB, KindMUL, KindDIV, KindREM,
		KindDIVU, KindREMU, KindAND, KindOR, KindXOR, KindSHL, KindSHR, KindSAR}
	aluRI := []Kind{KindADDri32, KindANDri32, KindORri32, KindXORri32, KindMULri32}
	shRI := []Kind{KindSHLri8, KindSHRri8, KindSARri8}
	loads := []Kind{KindLDB, KindLDBU, KindLDH, KindLDHU, KindLDW, KindLDWU, KindLDQ}
	stores := []Kind{KindSTB, KindSTH, KindSTW, KindSTQ}
	branches := []Kind{KindJE, KindJNE, KindJL, KindJLE, KindJG, KindJGE, KindJB, KindJAE}
	sets := []Kind{KindSETE, KindSETNE, KindSETL, KindSETLE, KindSETG, KindSETGE, KindSETB, KindSETAE}
	type patch struct{ at, skip int }
	var patches []patch
	for i := 1; i < nInst; i++ {
		b := byteAt(i) ^ byteAt(i+17)<<3 ^ r.Int()
		sel := b % 100
		switch {
		case sel < 28:
			k := aluRR[b/100%len(aluRR)]
			prog = append(prog, Inst{Kind: k, Dst: reg(i), Src: uint8(byteAt(i+1) % 16)})
		case sel < 42:
			k := aluRI[b/100%len(aluRI)]
			prog = append(prog, Inst{Kind: k, Dst: reg(i), Imm: int64(int32(byteAt(i+3)<<8 - 20000))})
		case sel < 48:
			k := shRI[b/100%len(shRI)]
			prog = append(prog, Inst{Kind: k, Dst: reg(i), Imm: int64(byteAt(i+3) % 256)})
		case sel < 56:
			k := loads[b/100%len(loads)]
			prog = append(prog, Inst{Kind: k, Dst: reg(i), Src: R15, Imm: int64(byteAt(i+3)*8) % 2041})
		case sel < 64:
			k := stores[b/100%len(stores)]
			prog = append(prog, Inst{Kind: k, Dst: R15, Src: uint8(byteAt(i+1) % 16), Imm: int64(byteAt(i+3)*8) % 2041})
		case sel < 70:
			if b/7%2 == 0 {
				prog = append(prog, Inst{Kind: KindCMPrr, Dst: uint8(byteAt(i+1) % 16), Src: uint8(byteAt(i+2) % 16)})
			} else {
				prog = append(prog, Inst{Kind: KindCMPri32, Dst: uint8(byteAt(i+1) % 16), Imm: int64(byteAt(i+3) - 128)})
			}
		case sel < 76:
			k := sets[b/100%len(sets)]
			prog = append(prog, Inst{Kind: k, Dst: reg(i)})
		case sel < 84:
			k := branches[b/100%len(branches)]
			patches = append(patches, patch{at: len(prog), skip: 1 + byteAt(i+3)%4})
			prog = append(prog, Inst{Kind: k})
		case sel < 87:
			patches = append(patches, patch{at: len(prog), skip: 1 + byteAt(i+3)%3})
			prog = append(prog, Inst{Kind: KindJMP})
		case sel < 91:
			prog = append(prog, Inst{Kind: KindPUSH, Dst: uint8(byteAt(i+1) % 16)})
		case sel < 94:
			prog = append(prog, Inst{Kind: KindPOP, Dst: reg(i)})
		case sel < 97:
			prog = append(prog, Inst{Kind: KindLEA, Dst: reg(i), Src: uint8(byteAt(i+1) % 16), Imm: int64(byteAt(i + 3))})
		case sel < 99:
			// Bounded backward loop: R13 = k; { R13--; } while R13 != 0.
			// Backward branches re-enter the just-executed block, so these
			// exercise link patching and chain-following — including chains
			// cut mid-loop by small StepN batches at quantum boundaries.
			// rel32 is relative to the end of the JNE, so the backward
			// offset spans the decrement, the compare and the jump itself.
			// The AND mask bounds the trip count even when a forward
			// branch jumps into the middle of the loop with an arbitrary
			// value already in R13.
			k := 1 + byteAt(i+3)%7
			back := -(int64(Size(KindADDri32)) + int64(Size(KindANDri32)) +
				int64(Size(KindCMPri32)) + int64(Size(KindJNE)))
			prog = append(prog,
				Inst{Kind: KindMOVri32, Dst: R13, Imm: int64(k)},
				Inst{Kind: KindADDri32, Dst: R13, Imm: -1},
				Inst{Kind: KindANDri32, Dst: R13, Imm: 7},
				Inst{Kind: KindCMPri32, Dst: R13, Imm: 0},
				Inst{Kind: KindJNE, Imm: back})
		default:
			prog = append(prog, Inst{Kind: KindNOP})
		}
	}
	prog = append(prog,
		Inst{Kind: KindMOVri32, Dst: RAX, Imm: 255},
		Inst{Kind: KindSYSCALL})
	for _, p := range patches {
		skip := p.skip
		// Clamp so no branch can skip the rax=255 setup and reach the
		// final syscall with a bogus number.
		if p.at+1+skip > len(prog)-2 {
			skip = len(prog) - 2 - (p.at + 1)
		}
		// rel32 is relative to the end of the branch: sum the encoded
		// sizes of the skipped instructions.
		var off int64
		for j := p.at + 1; j < p.at+1+skip; j++ {
			off += int64(Size(prog[j].Kind))
		}
		prog[p.at].Imm = off
	}
	return prog
}

// FuzzStepN feeds random valid CISC64 instruction streams through the
// reference interpreter and both StepN lanes in lockstep.
func FuzzStepN(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add([]byte{0xFF, 0x80, 0x42, 0x13, 0x37, 0x99, 0xAA, 0x55, 0x00, 0x01, 0x23})
	// Branch-heavy seeds (several bounded backward loops each) so chained
	// execution is exercised from the seed corpus, not just mutations.
	f.Add([]byte("chain#7"))
	f.Add([]byte("qqqq"))
	f.Fuzz(func(t *testing.T, data []byte) {
		prog := fuzzProgram(data)
		mk := func() *Core {
			mem := isa.NewMem(1 << 17)
			var code []byte
			for _, in := range prog {
				code = in.Encode(code)
			}
			copy(mem.Data[0x1000:], code)
			core := NewCore(mem, nil)
			core.Hook = func(c isa.Core) isa.EcallResult {
				if c.EcallNum() == 255 {
					return isa.EcallHalt
				}
				c.SetRet(c.EcallNum() * 3)
				return isa.EcallHandled
			}
			core.SetPC(0x1000)
			core.SetStackPtr(0x10000)
			core.DebugRing = make([]uint64, 8)
			return core
		}
		batch := 1
		if len(data) > 0 {
			batch = 1 + int(data[0])%70
		}
		lockstep(t, mk, []int{batch, 1, 33}, len(prog)*4+16)
	})
}
