package gemsys

import (
	"strings"
	"testing"

	"svbench/internal/isa"
)

// TestRestoreSeversChainLinks pins the machine-level half of the
// superblock contract: checkpoint Restore keeps translated blocks warm
// but drops every inline link and zeroes the chain telemetry, so a
// restored run's interp.* stats never depend on whether the block cache
// was populated before the restore.
func TestRestoreSeversChainLinks(t *testing.T) {
	for _, arch := range []isa.Arch{isa.RV64, isa.CISC64} {
		arch := arch
		t.Run(string(arch), func(t *testing.T) {
			mach, err := New(DefaultConfig(arch))
			if err != nil {
				t.Fatal(err)
			}
			req := mach.K.NewChannel()
			resp := mach.K.NewChannel()
			if _, err := mach.Spawn("server", serverMod(), "main", 1, []uint64{uint64(req), uint64(resp)}); err != nil {
				t.Fatal(err)
			}
			if _, err := mach.Spawn("client", clientMod(6, 15), "main", 0, []uint64{uint64(req), uint64(resp)}); err != nil {
				t.Fatal(err)
			}
			if err := mach.RunSetup(50_000_000); err != nil {
				t.Fatal(err)
			}
			ck := mach.TakeCheckpoint()
			st := mach.ChainStats()
			if st.Blocks == 0 || st.Misses == 0 {
				t.Fatalf("setup produced no chain activity: %+v", st)
			}
			if err := mach.Restore(ck); err != nil {
				t.Fatal(err)
			}
			if got := mach.ChainStats(); got != (isa.ChainStats{}) {
				t.Fatalf("Restore left chain telemetry behind: %+v", got)
			}
			if _, err := mach.RunEval(100_000_000); err != nil {
				t.Fatal(err)
			}
			st2 := mach.ChainStats()
			if st2.Blocks == 0 || st2.Hits == 0 {
				t.Fatalf("eval after restore shows no chaining: %+v", st2)
			}
			// The chain counters are part of the exported stats dump.
			text := mach.StatsText("eval")
			for _, key := range []string{"interp.blocks", "interp.chain_hits",
				"interp.chain_misses", "interp.chain_breaks", "interp.chain_len_mean"} {
				if !strings.Contains(text, key) {
					t.Fatalf("stats text missing %q", key)
				}
			}
		})
	}
}
