// Package loadgen is the open-loop invocation load engine: it replays a
// seeded arrival process (Poisson or bursty, xorshift-driven like
// internal/faults) against a pool of function instances cloned from
// memoized post-boot checkpoints (harness.BootCache), under a keep-alive
// idle-reclaim policy that produces a realistic cold/warm invocation mix.
//
// Each instance is a real simulated machine: the harness boots it once
// per fingerprint, the engine restores private clones of the post-boot
// checkpoint, kills the simulated client, and drives the surviving
// function server host-side (kernel.Inject / kernel.TakeMessage +
// gemsys.RunUntilIdle). Service times are measured on the machine's
// virtual clock, so the cold/warm difference is the runtime's real lazy
// initialization, not a modeled constant; only the cold-start boot
// penalty (the setup phase the restore skipped) is charged analytically.
//
// Determinism is the contract, mirroring internal/sweep: one run is a
// sequential discrete-event simulation whose every decision is a pure
// function of (config, seed), so identical configs produce byte-identical
// latency tables, stats-registry text and trace JSON for any worker
// count; parallelism (RunMany) exists across sweep points, never inside a
// run. See docs/loadgen.md.
package loadgen

import (
	"fmt"

	"svbench/internal/faults"
	"svbench/internal/gemsys"
	"svbench/internal/harness"
	"svbench/internal/sweep"
	"svbench/internal/trace"
)

// Config describes one load run.
type Config struct {
	// Cfg is the simulated machine configuration every instance boots
	// with (gemsys.DefaultConfig of an ISA).
	Cfg gemsys.Config
	// Spec is the function under load (harness catalog entry).
	Spec harness.Spec
	// RPS is the mean arrival rate in invocations per virtual second.
	RPS float64
	// Duration is the arrival window in virtual nanoseconds; completions
	// drain past it (open loop).
	Duration uint64
	// Seed drives the arrival process PRNG.
	Seed uint64
	// Arrival selects the arrival process (Poisson default).
	Arrival Process
	// Burst is the Bursty process's batch size (0 = DefaultBurst).
	Burst int
	// KeepAlive is the idle-reclaim threshold in virtual nanoseconds: an
	// instance idle for this long is torn down, so the next arrival it
	// would have served pays a cold start. Zero reclaims immediately on
	// idling; a value beyond the run keeps every instance warm.
	KeepAlive uint64
	// MaxInstances caps the pool (0 = DefaultMaxInstances); arrivals
	// beyond the cap queue FIFO.
	MaxInstances int
	// Cache, when non-nil, memoizes post-boot checkpoints across runs
	// (RunMany shares one cache over all points of a sweep). Nil boots
	// one master per run.
	Cache *harness.BootCache
	// Retry, when non-nil, is the engine-level recovery policy: a failed
	// attempt (injected error reply, dropped request or reply, corrupted
	// reply, spec-check failure) is re-sent up to MaxAttempts times with
	// exponential backoff, and a lost message surfaces at the per-attempt
	// reply deadline. All Retry fields are read as virtual nanoseconds on
	// the load clock. Without a policy a failed attempt fails its
	// invocation outright.
	Retry *faults.Retry
	// Chaos, when non-nil, is the fault layer's hook into the event loop:
	// it is consulted exactly once per attempt, in deterministic event
	// order, and its outcome is applied to that attempt. The scenario
	// engine (internal/scenario) implements it over a windowed fault
	// plan; see docs/scenarios.md.
	Chaos AttemptHook
	// OnInstance, when non-nil, is called once per instance creation — in
	// deterministic event order, with the pool-assigned instance id and
	// the machine's guest→service channel bindings — so the fault layer
	// can aim per-service rules at a specific instance's channels.
	// Implementations must not simulate on the callback: it fires inside
	// the event loop.
	OnInstance func(instID int, bindings []harness.ServiceBinding)
}

// AttemptHook returns the fault outcome for one load-generator attempt.
// Implementations must be deterministic in call order: the engine calls
// Attempt exactly once per attempt, so seed-driven hooks reproduce the
// same schedule on every run.
type AttemptHook interface {
	// Attempt is invoked for attempt (1-based) of invocation inv, sent at
	// virtual time now.
	Attempt(inv, attempt int, now uint64) faults.AttemptFault
}

// DefaultMaxInstances is the pool cap when Config.MaxInstances is zero.
const DefaultMaxInstances = 4

// PoolCap is the effective pool cap: Config.MaxInstances with the
// default resolved. Report renderers must use this rather than echoing
// the raw field — Run keeps the user's config verbatim (like Burst), so
// a defaulted cap stays zero in Report.Cfg.
func (c Config) PoolCap() int {
	if c.MaxInstances <= 0 {
		return DefaultMaxInstances
	}
	return c.MaxInstances
}

// invokeBudget bounds one host-driven invocation's functional execution.
const invokeBudget = 200_000_000

// errorReplyNS is the round-trip time charged for an injected error
// reply: the platform fails the attempt fast without running the
// function, well below any real service time.
const errorReplyNS = 20_000

// qrec is one attempt waiting for (or heading to) an instance. The fault
// outcome is frozen at send time, so an attempt that queues behind the
// pool cap carries the faults it drew when the client sent it.
type qrec struct {
	inv     int
	attempt int
	sent    uint64 // client send instant (queue-delay and deadline anchor)
	f       faults.AttemptFault
}

// busyRec tracks one in-flight attempt on its instance. done is when the
// instance frees; the client observes the outcome at done plus any
// injected reply delay, unless the reply was dropped (deliver=false), in
// which case a timeout timer is already booked.
type busyRec struct {
	inst        *Instance
	inv         int
	attempt     int
	done        uint64
	f           faults.AttemptFault
	deliver     bool
	checkFailed bool
}

// Timer kinds of the event loop (chaos/retry path only).
const (
	timerRetry   = iota // re-send the invocation's next attempt at due
	timerTimeout        // the client gives up waiting on a lost message
)

// timerRec is one pending client-side timer.
type timerRec struct {
	due     uint64
	inv     int
	attempt int
	kind    uint8
}

// Attempt-failure classes for failAttempt's accounting.
const (
	failTimeout = iota
	failBadReply
	failErrorReply
)

type engine struct {
	cfg     Config
	maxInst int // effective pool cap (cfg.PoolCap())
	fleet   *Fleet
	arrives []uint64
	invs    []Invocation

	idle   []*Instance
	busy   []busyRec
	queue  []qrec
	timers []timerRec

	live int

	// Counters registered into the stats registry.
	coldStarts    uint64
	warmStarts    uint64
	churnColds    uint64
	reclaims      uint64
	peak          uint64
	maxQueue      uint64
	checkFailures uint64

	// Chaos/retry-path counters (zero on fault-free runs).
	attempts     uint64
	retries      uint64
	timeouts     uint64
	badReplies   uint64
	errorReplies uint64
	faulted      uint64
	failed       uint64
	recovered    uint64

	// dispatchErr latches the first error raised by a dispatch that runs
	// inside completion handling (queue-head placement).
	dispatchErr error

	tracer *trace.Tracer
	reg    *trace.Registry
	latD   *trace.Dist
	queueD *trace.Dist
	svcD   *trace.Dist
	coldD  *trace.Dist
}

// Run executes one load run. The returned Report is a pure function of
// cfg: rerunning with the same config reproduces it byte-for-byte.
func Run(cfg Config) (*Report, error) {
	if cfg.Spec.Build == nil || cfg.Spec.Request == nil {
		return nil, fmt.Errorf("loadgen: config has no function spec")
	}
	if cfg.RPS <= 0 {
		return nil, fmt.Errorf("loadgen: RPS must be positive, got %g", cfg.RPS)
	}
	if cfg.Duration == 0 {
		return nil, fmt.Errorf("loadgen: duration must be positive")
	}
	if cfg.MaxInstances < 0 {
		return nil, fmt.Errorf("loadgen: MaxInstances must be >= 1, got %d", cfg.MaxInstances)
	}

	// The config is kept verbatim (Report.Cfg echoes what the caller
	// asked for); the effective cap is resolved into the engine.
	e := &engine{cfg: cfg, maxInst: cfg.PoolCap()}
	e.arrives = genArrivals(cfg)
	e.invs = make([]Invocation, len(e.arrives))
	// Chaos runs emit extra retry/fail events: size the ring for the
	// worst-case attempt count so no window of the run is overwritten.
	perInv := 6
	if cfg.Chaos != nil || cfg.Retry != nil {
		perInv = 6 * e.maxAttempts()
	}
	e.tracer = trace.NewTracer(perInv*len(e.arrives) + 64)
	e.initRegistry()

	if err := e.bootMaster(); err != nil {
		return nil, err
	}
	if err := e.simulate(); err != nil {
		return nil, err
	}
	return e.report()
}

// RunMany executes one load run per config across a worker pool of jobs
// workers (0 = sweep.DefaultJobs()); configs without their own Cache
// share one, so all points of a sweep boot each fingerprint once.
// Reports come back in config order and each is byte-identical to a solo
// Run of the same config — parallelism only exists between points.
func RunMany(cfgs []Config, jobs int) ([]*Report, []error) {
	shared := harness.NewBootCache()
	reports := make([]*Report, len(cfgs))
	errs := make([]error, len(cfgs))
	sweep.Each(len(cfgs), jobs, func(i int) {
		c := cfgs[i]
		if c.Cache == nil {
			c.Cache = shared
		}
		reports[i], errs[i] = Run(c)
	})
	return reports, errs
}

func (e *engine) initRegistry() {
	r := trace.NewRegistry()
	e.reg = r
	e.latD = r.NewDist("load.latencyNS", "end-to-end invocation latency (virtual ns)")
	e.queueD = r.NewDist("load.queueDelayNS", "arrival-to-placement queueing delay (virtual ns)")
	e.svcD = r.NewDist("load.serviceNS", "on-instance service time (virtual ns)")
	e.coldD = r.NewDist("load.coldPenaltyNS", "cold-start boot penalty (virtual ns)")
	r.Counter("load.coldStarts", "invocations that created an instance", &e.coldStarts)
	r.Counter("load.warmStarts", "invocations served by a warm instance", &e.warmStarts)
	r.Counter("load.churnColdStarts", "post-warmup cold starts (keep-alive churn)", &e.churnColds)
	r.Counter("load.reclaims", "idle instances reclaimed by keep-alive", &e.reclaims)
	r.Counter("load.peakInstances", "pool high-water mark", &e.peak)
	r.Counter("load.maxQueueDepth", "deepest FIFO backlog at the pool cap", &e.maxQueue)
	r.Counter("load.checkFailures", "responses failing the spec's check", &e.checkFailures)
	r.Func("load.invocations", "arrivals replayed against the pool", func() uint64 {
		return uint64(len(e.arrives))
	})
	// Chaos/retry-path statistics: registered unconditionally so the
	// stats schema is constant, zero on fault-free runs.
	r.Counter("load.attempts", "send attempts including retries", &e.attempts)
	r.Counter("load.retries", "attempts re-sent after a failure", &e.retries)
	r.Counter("load.timeouts", "attempts that hit the reply deadline", &e.timeouts)
	r.Counter("load.badReplies", "replies corrupted or failing the check", &e.badReplies)
	r.Counter("load.errorReplies", "injected fast-fail error replies", &e.errorReplies)
	r.Counter("load.faultedAttempts", "attempts the fault layer touched", &e.faulted)
	r.Counter("load.failedInvocations", "invocations that exhausted every attempt", &e.failed)
	r.Counter("load.recoveredInvocations", "invocations that succeeded after >= 1 retry", &e.recovered)
}

// maxAttempts is the per-invocation attempt bound under the retry policy
// (1 without one).
func (e *engine) maxAttempts() int {
	if e.cfg.Retry == nil || e.cfg.Retry.MaxAttempts < 1 {
		return 1
	}
	return e.cfg.Retry.MaxAttempts
}

// deadlineNS is the per-attempt reply deadline for lost messages. A
// chaos run without an explicit policy still needs one — a dropped
// message would otherwise hang the client forever — so the default
// policy's deadline applies.
func (e *engine) deadlineNS() uint64 {
	if e.cfg.Retry != nil && e.cfg.Retry.Deadline > 0 {
		return e.cfg.Retry.Deadline
	}
	return faults.DefaultRetry().Deadline
}

// backoffNS is the wait before re-sending after attempt failures
// (exponential, shift-capped so it never wraps).
func (e *engine) backoffNS(attempt int) uint64 {
	if e.cfg.Retry == nil {
		return 0
	}
	shift := attempt - 1
	if shift > 32 {
		shift = 32
	}
	return e.cfg.Retry.Backoff << uint(shift)
}

// bootMaster builds the fleet, which simulates (or fetches from the
// cache) the post-boot checkpoint instances restore from.
func (e *engine) bootMaster() error {
	f, err := NewFleet(e.cfg.Cfg, e.cfg.Spec, e.cfg.Cache, e.cfg.OnInstance)
	if err != nil {
		return err
	}
	e.fleet = f
	return nil
}

// serve drives one invocation through inst's machine, booking the
// check-failure accounting the fleet leaves to its owner.
func (e *engine) serve(inst *Instance, invID int) (uint64, bool, error) {
	svc, checkFailed, err := e.fleet.Serve(inst, invID)
	if err != nil {
		return 0, false, err
	}
	if checkFailed {
		e.checkFailures++
		e.invs[invID].CheckFailed = true
	}
	return svc, checkFailed, nil
}

// simulate runs the discrete-event loop: completions, client timers and
// arrivals in virtual-time order. The tie-break at equal timestamps is
// completions first (a freeing instance can absorb work at the same
// instant), then timers (a retrying invocation is older than a new
// arrival), then arrivals.
func (e *engine) simulate() error {
	next := 0
	for next < len(e.arrives) || len(e.busy) > 0 || len(e.timers) > 0 {
		ci := e.earliestCompletion()
		ti := e.earliestTimer()
		ct, tt, at := ^uint64(0), ^uint64(0), ^uint64(0)
		if ci >= 0 {
			ct = e.busy[ci].done
		}
		if ti >= 0 {
			tt = e.timers[ti].due
		}
		if next < len(e.arrives) {
			at = e.arrives[next]
		}
		switch {
		case ci >= 0 && ct <= tt && ct <= at:
			rec := e.busy[ci]
			e.busy = append(e.busy[:ci], e.busy[ci+1:]...)
			e.complete(rec)
		case ti >= 0 && tt <= at:
			tm := e.timers[ti]
			e.timers = append(e.timers[:ti], e.timers[ti+1:]...)
			e.fireTimer(tm)
		default:
			id := next
			next++
			now := e.arrives[id]
			e.invs[id].ID = id
			e.invs[id].Arrive = now
			e.tracer.EmitAt(trace.EvInvokeArrive, 0, now, 0, uint64(id), 0)
			if err := e.sendAttempt(id, 1, now); err != nil {
				return err
			}
		}
		if e.dispatchErr != nil {
			return e.dispatchErr
		}
	}
	return nil
}

// earliestTimer returns the pending timer index with the smallest due
// time (ties: lowest invocation id, then attempt, then kind), or -1.
func (e *engine) earliestTimer() int {
	best := -1
	for i := range e.timers {
		if best < 0 {
			best = i
			continue
		}
		a, b := &e.timers[i], &e.timers[best]
		if a.due < b.due ||
			(a.due == b.due && (a.inv < b.inv ||
				(a.inv == b.inv && (a.attempt < b.attempt ||
					(a.attempt == b.attempt && a.kind < b.kind))))) {
			best = i
		}
	}
	return best
}

// sendAttempt issues one client attempt: the fault hook is consulted
// exactly here (once per attempt, in event order), and the outcome
// decides whether the request reaches the pool at all.
func (e *engine) sendAttempt(inv, attempt int, now uint64) error {
	e.invs[inv].Attempts = attempt
	e.attempts++
	var f faults.AttemptFault
	if e.cfg.Chaos != nil {
		f = e.cfg.Chaos.Attempt(inv, attempt, now)
	}
	if f.Faulted() {
		e.invs[inv].FaultedAttempts++
		e.faulted++
	}
	if f.DropRequest {
		// The request is lost before it reaches the platform: no instance
		// is touched and the client notices at its reply deadline.
		e.timers = append(e.timers, timerRec{due: now + e.deadlineNS(), inv: inv, attempt: attempt, kind: timerTimeout})
		return nil
	}
	return e.dispatch(qrec{inv: inv, attempt: attempt, sent: now, f: f}, now)
}

// fireTimer handles one client-side timer: a backoff expiring into the
// next attempt, or a reply deadline expiring on a lost message.
func (e *engine) fireTimer(tm timerRec) {
	switch tm.kind {
	case timerRetry:
		if err := e.sendAttempt(tm.inv, tm.attempt, tm.due); err != nil && e.dispatchErr == nil {
			e.dispatchErr = err
		}
	case timerTimeout:
		e.failAttempt(tm.inv, tm.attempt, tm.due, failTimeout)
	}
}

// failAttempt books one attempt's failure: the next attempt is scheduled
// under the retry policy, or the invocation fails once attempts are
// exhausted (or no policy exists).
func (e *engine) failAttempt(inv, attempt int, now uint64, why int) {
	switch why {
	case failTimeout:
		e.timeouts++
	case failBadReply:
		e.badReplies++
	case failErrorReply:
		e.errorReplies++
	}
	if attempt < e.maxAttempts() {
		e.retries++
		e.tracer.EmitAt(trace.EvInvokeRetry, 0, now, 0, uint64(inv), uint64(attempt+1))
		e.timers = append(e.timers, timerRec{due: now + e.backoffNS(attempt), inv: inv, attempt: attempt + 1, kind: timerRetry})
		return
	}
	iv := &e.invs[inv]
	iv.Failed = true
	e.failed++
	iv.Done = now
	iv.Latency = now - iv.Arrive
	e.observeFinal(iv)
	e.tracer.EmitAt(trace.EvInvokeFail, 0, now, 0, uint64(inv), uint64(iv.Attempts))
}

// finish retires an invocation successfully at the instant the client
// observes the reply.
func (e *engine) finish(inv int, now uint64) {
	iv := &e.invs[inv]
	iv.Done = now
	iv.Latency = now - iv.Arrive
	if iv.Attempts > 1 {
		e.recovered++
	}
	e.observeFinal(iv)
	e.tracer.EmitAt(trace.EvInvokeDone, 0, now, 0, uint64(inv), iv.Latency)
}

// observeFinal records the invocation's final metrics into the
// distributions — once per invocation, at success or exhaustion.
func (e *engine) observeFinal(iv *Invocation) {
	e.latD.Observe(iv.Latency)
	e.queueD.Observe(iv.QueueDelay)
	e.svcD.Observe(iv.Service)
	if iv.Cold {
		e.coldD.Observe(iv.ColdPenalty)
	}
}

// earliestCompletion returns the busy index with the smallest completion
// time (ties: lowest invocation id), or -1.
func (e *engine) earliestCompletion() int {
	best := -1
	for i := range e.busy {
		if best < 0 || e.busy[i].done < e.busy[best].done ||
			(e.busy[i].done == e.busy[best].done && e.busy[i].inv < e.busy[best].inv) {
			best = i
		}
	}
	return best
}

// leaseEnd is when an idle instance's keep-alive lease expires
// (overflow-safe: a huge keep-alive never expires).
func (e *engine) leaseEnd(inst *Instance) uint64 {
	end := inst.IdleSince + e.cfg.KeepAlive
	if end < inst.IdleSince {
		return ^uint64(0)
	}
	return end
}

// reclaimExpired tears down idle instances whose lease ended at or before
// now, stamping the reclaim at the lease end (when it really happened).
func (e *engine) reclaimExpired(now uint64) {
	kept := e.idle[:0]
	for _, inst := range e.idle {
		end := e.leaseEnd(inst)
		if end > now {
			kept = append(kept, inst)
			continue
		}
		e.reclaims++
		e.live--
		e.tracer.EmitAt(trace.EvInstReclaim, uint8(inst.ID), end, 0, uint64(inst.ID), 0)
		if e.fleet != nil {
			e.fleet.Release(inst)
		}
	}
	e.idle = kept
}

// takeWarm removes and returns the warm instance that has been idle the
// shortest time (ties: lowest id) — the usual most-recently-used
// keep-alive policy — or nil when none is live and warm.
func (e *engine) takeWarm() *Instance {
	best := -1
	for i, inst := range e.idle {
		if best < 0 || inst.IdleSince > e.idle[best].IdleSince ||
			(inst.IdleSince == e.idle[best].IdleSince && inst.ID < e.idle[best].ID) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	inst := e.idle[best]
	e.idle = append(e.idle[:best], e.idle[best+1:]...)
	return inst
}

// dispatch places one attempt arriving (or dequeued) at now onto a warm
// instance, a cold-started one, or the FIFO queue at the pool cap.
//
// Ordering contract at equal virtual timestamps: reclaim runs before
// placement, and reclaimExpired keeps only instances whose lease strictly
// outlives now — an instance whose lease ends exactly when an attempt
// arrives is already gone, so the attempt cold-starts. This matches the
// KeepAlive=0 semantics (reclaim on idling) and is pinned by
// TestReclaimDispatchTieBreak; flipping it would silently shift cold/warm
// accounting in scenario phase buckets.
func (e *engine) dispatch(q qrec, now uint64) error {
	e.reclaimExpired(now)
	if inst := e.takeWarm(); inst != nil {
		e.warmStarts++
		return e.start(q, now, inst, false)
	}
	if e.live < e.maxInst {
		inst, err := e.fleet.Acquire()
		if err != nil {
			return err
		}
		e.live++
		e.coldStarts++
		if uint64(e.live) > e.peak {
			e.peak = uint64(e.live)
		} else {
			// Refilling capacity the keep-alive policy reclaimed earlier:
			// a churn cold start, the post-warmup kind.
			e.churnColds++
		}
		e.tracer.EmitAt(trace.EvColdStart, uint8(inst.ID), now, 0, uint64(inst.ID), inst.Penalty)
		return e.start(q, now, inst, true)
	}
	e.queue = append(e.queue, q)
	if uint64(len(e.queue)) > e.maxQueue {
		e.maxQueue = uint64(len(e.queue))
	}
	return nil
}

// start serves one attempt on inst beginning at now (plus the boot
// penalty when cold) and books the instance-free instant. Queue delay and
// cold penalties accumulate across an invocation's attempts.
func (e *engine) start(q qrec, now uint64, inst *Instance, cold bool) error {
	inv := &e.invs[q.inv]
	inv.Instance = inst.ID
	inv.QueueDelay += now - q.sent
	startNS := now
	if cold {
		inv.Cold = true
		inv.ColdPenalty += inst.Penalty
		startNS += inst.Penalty
	}
	var svc uint64
	checkFailed := false
	if q.f.ErrorReply {
		// Fail fast: the injected error frame comes back without running
		// the function.
		svc = errorReplyNS
	} else {
		var err error
		svc, checkFailed, err = e.serve(inst, q.inv)
		if err != nil {
			return err
		}
		if q.f.ServiceMult > 1 {
			svc *= q.f.ServiceMult
		}
	}
	inv.Start = startNS
	inv.Service = svc
	e.tracer.EmitAt(trace.EvInvokeRun, uint8(inst.ID), startNS, 0, uint64(q.inv), svc)
	done := startNS + svc
	if q.f.DropResponse {
		// The reply is lost on the way back: the instance did the work,
		// but the client only notices at its per-attempt deadline.
		e.timers = append(e.timers, timerRec{due: q.sent + e.deadlineNS(), inv: q.inv, attempt: q.attempt, kind: timerTimeout})
	}
	e.busy = append(e.busy, busyRec{
		inst: inst, inv: q.inv, attempt: q.attempt, done: done,
		f: q.f, deliver: !q.f.DropResponse, checkFailed: checkFailed,
	})
	return nil
}

// complete retires one attempt: the instance idles from the completion
// instant, the client observes the outcome (unless the reply was lost),
// and the queue head (if any) is placed immediately — warm, on the
// instance that just freed up.
func (e *engine) complete(rec busyRec) {
	now := rec.done
	rec.inst.IdleSince = now
	e.idle = append(e.idle, rec.inst)
	if rec.deliver {
		observe := now + rec.f.DelayNS
		switch {
		case rec.f.ErrorReply:
			e.failAttempt(rec.inv, rec.attempt, observe, failErrorReply)
		case rec.f.BadReply, rec.checkFailed && e.cfg.Retry != nil:
			// A corrupted reply — or one failing the spec's check under a
			// retry policy — is re-attempted like any client would.
			e.failAttempt(rec.inv, rec.attempt, observe, failBadReply)
		default:
			e.finish(rec.inv, observe)
		}
	}
	if len(e.queue) > 0 {
		q := e.queue[0]
		e.queue = e.queue[1:]
		// Normally the queue head lands warm on the instance that just
		// idled; with KeepAlive 0 it can cold-start instead, which may
		// fail — latch the error for simulate to surface.
		if err := e.dispatch(q, now); err != nil && e.dispatchErr == nil {
			e.dispatchErr = err
		}
	}
}
