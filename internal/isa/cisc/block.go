package cisc

import (
	"fmt"

	"svbench/internal/isa"
)

// maxBlockLen caps a translated basic block. Long straight-line runs are
// split; the tail simply becomes another block keyed by its own entry PC.
const maxBlockLen = 32

// block is a translated basic block: a straight-line run of decoded
// instructions starting at pc, terminated by a control-flow instruction,
// a syscall, or maxBlockLen. All but the last instruction are guaranteed
// straight-line. Blocks are immutable after construction — execution
// copies the per-instruction TraceRec templates and never writes back.
type block struct {
	pc    uint64
	insts []Inst
	recs  []isa.TraceRec
}

// blockEnds reports whether k terminates a basic block.
func blockEnds(k Kind) bool {
	switch k {
	case KindJE, KindJNE, KindJL, KindJLE, KindJG, KindJGE, KindJB, KindJAE,
		KindJMP, KindCALL, KindCALLr, KindJMPr, KindRET, KindSYSCALL:
		return true
	}
	return false
}

// recTemplate precomputes every TraceRec field that does not depend on
// register, flag or memory state. Dynamic fields (Taken, indirect Target,
// MemAddr, ecall Flags/Seq) stay zero and are filled at execution time.
func recTemplate(pc uint64, in Inst) isa.TraceRec {
	rec := isa.TraceRec{
		PC: pc, Size: in.Size, Class: isa.ClassAlu,
		Src1: isa.NoDep, Src2: isa.NoDep, Dst: isa.NoDep,
		MicroOps: 1,
	}
	next := pc + uint64(in.Size)
	switch in.Kind {
	case KindNOP:
	case KindFENCE:
		rec.Class = isa.ClassFence
	case KindMOVri, KindMOVri32:
		rec.Dst = in.Dst
	case KindMOVrr:
		rec.Src1, rec.Dst = in.Src, in.Dst
	case KindADD, KindSUB, KindAND, KindOR, KindXOR, KindSHL, KindSHR, KindSAR:
		rec.Src1, rec.Src2, rec.Dst = in.Dst, in.Src, in.Dst
	case KindMUL:
		rec.Class = isa.ClassMul
		rec.Src1, rec.Src2, rec.Dst = in.Dst, in.Src, in.Dst
	case KindDIV, KindREM, KindDIVU, KindREMU:
		rec.Class = isa.ClassDiv
		rec.Src1, rec.Src2, rec.Dst = in.Dst, in.Src, in.Dst
	case KindADDri32, KindANDri32, KindORri32, KindXORri32,
		KindSHLri8, KindSHRri8, KindSARri8:
		rec.Src1, rec.Dst = in.Dst, in.Dst
	case KindMULri32:
		rec.Class = isa.ClassMul
		rec.Src1, rec.Dst = in.Dst, in.Dst
	case KindLDB, KindLDBU:
		rec.Class, rec.MemSize = isa.ClassLoad, 1
		rec.Src1, rec.Dst = in.Src, in.Dst
	case KindLDH, KindLDHU:
		rec.Class, rec.MemSize = isa.ClassLoad, 2
		rec.Src1, rec.Dst = in.Src, in.Dst
	case KindLDW, KindLDWU:
		rec.Class, rec.MemSize = isa.ClassLoad, 4
		rec.Src1, rec.Dst = in.Src, in.Dst
	case KindLDQ:
		rec.Class, rec.MemSize = isa.ClassLoad, 8
		rec.Src1, rec.Dst = in.Src, in.Dst
	case KindSTB:
		rec.Class, rec.MemSize = isa.ClassStore, 1
		rec.Src1, rec.Src2 = in.Dst, in.Src
	case KindSTH:
		rec.Class, rec.MemSize = isa.ClassStore, 2
		rec.Src1, rec.Src2 = in.Dst, in.Src
	case KindSTW:
		rec.Class, rec.MemSize = isa.ClassStore, 4
		rec.Src1, rec.Src2 = in.Dst, in.Src
	case KindSTQ:
		rec.Class, rec.MemSize = isa.ClassStore, 8
		rec.Src1, rec.Src2 = in.Dst, in.Src
	case KindCMPrr:
		rec.Src1, rec.Src2, rec.Dst = in.Dst, in.Src, RegFlags
	case KindCMPri32:
		rec.Src1, rec.Dst = in.Dst, RegFlags
	case KindJE, KindJNE, KindJL, KindJLE, KindJG, KindJGE, KindJB, KindJAE:
		rec.Class = isa.ClassBranch
		rec.Src1 = RegFlags
		rec.Target = next + uint64(in.Imm)
	case KindSETE, KindSETNE, KindSETL, KindSETLE, KindSETG, KindSETGE, KindSETB, KindSETAE:
		rec.Src1, rec.Dst = RegFlags, in.Dst
	case KindJMP:
		rec.Class = isa.ClassJump
		rec.Taken = true
		rec.Target = next + uint64(in.Imm)
	case KindCALL:
		rec.Class = isa.ClassCall
		rec.MemSize = 8
		rec.MicroOps = 2
		rec.Src1, rec.Dst = RSP, RSP
		rec.Taken = true
		rec.Target = next + uint64(in.Imm)
	case KindCALLr:
		rec.Class = isa.ClassCall
		rec.MemSize = 8
		rec.MicroOps = 2
		rec.Src1, rec.Src2, rec.Dst = in.Src, RSP, RSP
		rec.Taken = true
	case KindJMPr:
		rec.Class = isa.ClassJump
		rec.Src1 = in.Src
		rec.Taken = true
	case KindRET:
		rec.Class = isa.ClassRet
		rec.MemSize = 8
		rec.MicroOps = 2
		rec.Src1, rec.Dst = RSP, RSP
		rec.Taken = true
	case KindPUSH:
		rec.Class = isa.ClassStore
		rec.MemSize = 8
		rec.MicroOps = 2
		rec.Src1, rec.Src2, rec.Dst = in.Dst, RSP, RSP
	case KindPOP:
		rec.Class = isa.ClassLoad
		rec.MemSize = 8
		rec.MicroOps = 2
		rec.Src1, rec.Dst = RSP, in.Dst
	case KindLEA:
		rec.Src1, rec.Dst = in.Src, in.Dst
	case KindSYSCALL:
		rec.Class = isa.ClassEcall
	}
	return rec
}

// blockAt returns the translated block entered at pc, building it on first
// use. A decode failure at the entry instruction is an error; a failure
// deeper in the run just ends the block early (the error surfaces if and
// when execution actually reaches that address).
func (d *DecodeCache) blockAt(pc uint64, mem *isa.Mem) (*block, error) {
	if d.mruB != nil && d.mruBPC == pc {
		return d.mruB, nil
	}
	if b, ok := d.blocks[pc]; ok {
		d.mruBPC, d.mruB = pc, b
		return b, nil
	}
	b := &block{pc: pc}
	p := pc
	for len(b.insts) < maxBlockLen {
		in, err := d.lookup(p, mem)
		if err != nil {
			if len(b.insts) == 0 {
				return nil, err
			}
			break
		}
		b.insts = append(b.insts, in)
		b.recs = append(b.recs, recTemplate(p, in))
		if blockEnds(in.Kind) {
			break
		}
		p += uint64(in.Size)
	}
	d.blocks[pc] = b
	d.mruBPC, d.mruB = pc, b
	return b, nil
}

// StepN executes up to max instructions through the block cache. With a
// non-nil out it appends one TraceRec per retired instruction; with nil
// out it takes the no-trace lane and builds no records at all. It returns
// after the block boundary that follows any syscall so the machine can
// poll hook-side effects with single-step granularity.
func (c *Core) StepN(max int, out []isa.TraceRec) (int, []isa.TraceRec, error) {
	total := 0
	for total < max {
		b, err := c.Dec.blockAt(c.pc, c.Mem)
		if err != nil {
			return total, out, err
		}
		var n int
		var stop bool
		if out != nil {
			n, out, stop, err = c.stepBlockTrace(b, max-total, out)
		} else {
			n, stop, err = c.stepBlockFast(b, max-total)
		}
		total += n
		if err != nil || stop {
			return total, out, err
		}
	}
	return total, out, nil
}

// stepBlockTrace executes up to max instructions of b, appending trace
// records built from the block's templates. stop reports that a syscall
// was executed and control must return to the driver. The semantics of
// every case mirror Core.Step exactly; the lockstep differential and fuzz
// tests pin the equivalence.
func (c *Core) stepBlockTrace(b *block, max int, out []isa.TraceRec) (int, []isa.TraceRec, bool, error) {
	pc := c.pc
	r := &c.Regs
	n := len(b.insts)
	if n > max {
		n = max
	}
	// Append the whole run of template records in one shot, then patch the
	// dynamic fields in place while executing — one bulk copy instead of a
	// copy-then-append pair per instruction. Paths that retire fewer than n
	// instructions truncate back to what actually ran.
	base := len(out)
	out = append(out, b.recs[:n]...)
	for i := 0; i < n; i++ {
		in := &b.insts[i]
		if c.DebugRing != nil {
			c.ringPush(pc)
		}
		rec := &out[base+i]
		next := pc + uint64(in.Size)

		switch in.Kind {
		case KindNOP, KindFENCE:
		case KindMOVri, KindMOVri32:
			r[in.Dst] = uint64(in.Imm)
		case KindMOVrr:
			r[in.Dst] = r[in.Src]
		case KindADD:
			r[in.Dst] += r[in.Src]
		case KindSUB:
			r[in.Dst] -= r[in.Src]
		case KindMUL:
			r[in.Dst] *= r[in.Src]
		case KindDIV:
			r[in.Dst] = uint64(divS(int64(r[in.Dst]), int64(r[in.Src])))
		case KindREM:
			r[in.Dst] = uint64(remS(int64(r[in.Dst]), int64(r[in.Src])))
		case KindDIVU:
			r[in.Dst] = divU(r[in.Dst], r[in.Src])
		case KindREMU:
			r[in.Dst] = remU(r[in.Dst], r[in.Src])
		case KindAND:
			r[in.Dst] &= r[in.Src]
		case KindOR:
			r[in.Dst] |= r[in.Src]
		case KindXOR:
			r[in.Dst] ^= r[in.Src]
		case KindSHL:
			r[in.Dst] <<= r[in.Src] & 63
		case KindSHR:
			r[in.Dst] >>= r[in.Src] & 63
		case KindSAR:
			r[in.Dst] = uint64(int64(r[in.Dst]) >> (r[in.Src] & 63))
		case KindADDri32:
			r[in.Dst] += uint64(in.Imm)
		case KindANDri32:
			r[in.Dst] &= uint64(in.Imm)
		case KindORri32:
			r[in.Dst] |= uint64(in.Imm)
		case KindXORri32:
			r[in.Dst] ^= uint64(in.Imm)
		case KindMULri32:
			r[in.Dst] *= uint64(in.Imm)
		case KindSHLri8:
			r[in.Dst] <<= uint64(in.Imm) & 63
		case KindSHRri8:
			r[in.Dst] >>= uint64(in.Imm) & 63
		case KindSARri8:
			r[in.Dst] = uint64(int64(r[in.Dst]) >> (uint64(in.Imm) & 63))
		case KindLDB, KindLDH, KindLDW:
			addr := r[in.Src] + uint64(in.Imm)
			r[in.Dst] = isa.SignExtend(c.Mem.Load(addr, rec.MemSize), rec.MemSize)
			rec.MemAddr = addr
		case KindLDBU, KindLDHU, KindLDWU, KindLDQ:
			addr := r[in.Src] + uint64(in.Imm)
			r[in.Dst] = c.Mem.Load(addr, rec.MemSize)
			rec.MemAddr = addr
		case KindSTB, KindSTH, KindSTW, KindSTQ:
			addr := r[in.Dst] + uint64(in.Imm)
			c.Mem.Store(addr, rec.MemSize, r[in.Src])
			rec.MemAddr = addr
		case KindCMPrr:
			c.flagA, c.flagB = int64(r[in.Dst]), int64(r[in.Src])
		case KindCMPri32:
			c.flagA, c.flagB = int64(r[in.Dst]), in.Imm
		case KindJE, KindJNE, KindJL, KindJLE, KindJG, KindJGE, KindJB, KindJAE:
			if c.cond(in.Kind) {
				next = rec.Target
				rec.Taken = true
			}
		case KindSETE, KindSETNE, KindSETL, KindSETLE, KindSETG, KindSETGE, KindSETB, KindSETAE:
			if c.cond(in.Kind) {
				r[in.Dst] = 1
			} else {
				r[in.Dst] = 0
			}
		case KindJMP:
			next = rec.Target
		case KindCALL:
			r[RSP] -= 8
			c.Mem.Store(r[RSP], 8, next)
			rec.MemAddr = r[RSP]
			next = rec.Target
		case KindCALLr:
			tgt := r[in.Src]
			r[RSP] -= 8
			c.Mem.Store(r[RSP], 8, next)
			rec.MemAddr = r[RSP]
			next = tgt
			rec.Target = next
		case KindJMPr:
			next = r[in.Src]
			rec.Target = next
		case KindRET:
			next = c.Mem.Load(r[RSP], 8)
			rec.MemAddr = r[RSP]
			r[RSP] += 8
			rec.Target = next
		case KindPUSH:
			r[RSP] -= 8
			c.Mem.Store(r[RSP], 8, r[in.Dst])
			rec.MemAddr = r[RSP]
		case KindPOP:
			r[in.Dst] = c.Mem.Load(r[RSP], 8)
			rec.MemAddr = r[RSP]
			r[RSP] += 8
		case KindLEA:
			r[in.Dst] = r[in.Src] + uint64(in.Imm)
		case KindSYSCALL:
			c.pc = pc
			if c.Hook == nil {
				return i, out[:base+i], true, fmt.Errorf("cisc: syscall with no hook at pc=%#x", pc)
			}
			c.inflight = rec
			res := c.Hook(c)
			c.inflight = nil
			c.nInstr++
			switch res {
			case isa.EcallHandled:
				c.pc = next
				return i + 1, out[:base+i+1], true, nil
			case isa.EcallVector:
				rec.Target = c.pc
				rec.Taken = true
				return i + 1, out[:base+i+1], true, nil
			case isa.EcallBlock:
				c.pc = next
				return i + 1, out[:base+i+1], true, ErrBlock
			case isa.EcallHalt:
				c.pc = next
				return i + 1, out[:base+i+1], true, ErrHalt
			}
			return i, out[:base+i], true, fmt.Errorf("cisc: bad ecall result %d", res)
		default:
			c.pc = pc
			return i, out[:base+i], true, fmt.Errorf("cisc: unimplemented %s at pc=%#x", in.Kind, pc)
		}
		c.nInstr++
		pc = next
	}
	c.pc = pc
	return n, out, false, nil
}

// stepBlockFast executes up to max instructions of b without building any
// trace records — the setup-phase lane. Architectural effects, retired
// counts and syscall behavior are identical to stepBlockTrace (Annotate
// is a no-op because no record is in flight, matching the single-step
// path whose records the machine discards in this mode).
func (c *Core) stepBlockFast(b *block, max int) (int, bool, error) {
	pc := c.pc
	r := &c.Regs
	n := len(b.insts)
	if n > max {
		n = max
	}
	for i := 0; i < n; i++ {
		in := &b.insts[i]
		if c.DebugRing != nil {
			c.ringPush(pc)
		}
		next := pc + uint64(in.Size)

		switch in.Kind {
		case KindNOP, KindFENCE:
		case KindMOVri, KindMOVri32:
			r[in.Dst] = uint64(in.Imm)
		case KindMOVrr:
			r[in.Dst] = r[in.Src]
		case KindADD:
			r[in.Dst] += r[in.Src]
		case KindSUB:
			r[in.Dst] -= r[in.Src]
		case KindMUL:
			r[in.Dst] *= r[in.Src]
		case KindDIV:
			r[in.Dst] = uint64(divS(int64(r[in.Dst]), int64(r[in.Src])))
		case KindREM:
			r[in.Dst] = uint64(remS(int64(r[in.Dst]), int64(r[in.Src])))
		case KindDIVU:
			r[in.Dst] = divU(r[in.Dst], r[in.Src])
		case KindREMU:
			r[in.Dst] = remU(r[in.Dst], r[in.Src])
		case KindAND:
			r[in.Dst] &= r[in.Src]
		case KindOR:
			r[in.Dst] |= r[in.Src]
		case KindXOR:
			r[in.Dst] ^= r[in.Src]
		case KindSHL:
			r[in.Dst] <<= r[in.Src] & 63
		case KindSHR:
			r[in.Dst] >>= r[in.Src] & 63
		case KindSAR:
			r[in.Dst] = uint64(int64(r[in.Dst]) >> (r[in.Src] & 63))
		case KindADDri32:
			r[in.Dst] += uint64(in.Imm)
		case KindANDri32:
			r[in.Dst] &= uint64(in.Imm)
		case KindORri32:
			r[in.Dst] |= uint64(in.Imm)
		case KindXORri32:
			r[in.Dst] ^= uint64(in.Imm)
		case KindMULri32:
			r[in.Dst] *= uint64(in.Imm)
		case KindSHLri8:
			r[in.Dst] <<= uint64(in.Imm) & 63
		case KindSHRri8:
			r[in.Dst] >>= uint64(in.Imm) & 63
		case KindSARri8:
			r[in.Dst] = uint64(int64(r[in.Dst]) >> (uint64(in.Imm) & 63))
		case KindLDB, KindLDH, KindLDW:
			sz := b.recs[i].MemSize
			r[in.Dst] = isa.SignExtend(c.Mem.Load(r[in.Src]+uint64(in.Imm), sz), sz)
		case KindLDBU, KindLDHU, KindLDWU, KindLDQ:
			r[in.Dst] = c.Mem.Load(r[in.Src]+uint64(in.Imm), b.recs[i].MemSize)
		case KindSTB, KindSTH, KindSTW, KindSTQ:
			c.Mem.Store(r[in.Dst]+uint64(in.Imm), b.recs[i].MemSize, r[in.Src])
		case KindCMPrr:
			c.flagA, c.flagB = int64(r[in.Dst]), int64(r[in.Src])
		case KindCMPri32:
			c.flagA, c.flagB = int64(r[in.Dst]), in.Imm
		case KindJE, KindJNE, KindJL, KindJLE, KindJG, KindJGE, KindJB, KindJAE:
			if c.cond(in.Kind) {
				next = b.recs[i].Target
			}
		case KindSETE, KindSETNE, KindSETL, KindSETLE, KindSETG, KindSETGE, KindSETB, KindSETAE:
			if c.cond(in.Kind) {
				r[in.Dst] = 1
			} else {
				r[in.Dst] = 0
			}
		case KindJMP:
			next = b.recs[i].Target
		case KindCALL:
			r[RSP] -= 8
			c.Mem.Store(r[RSP], 8, next)
			next = b.recs[i].Target
		case KindCALLr:
			tgt := r[in.Src]
			r[RSP] -= 8
			c.Mem.Store(r[RSP], 8, next)
			next = tgt
		case KindJMPr:
			next = r[in.Src]
		case KindRET:
			next = c.Mem.Load(r[RSP], 8)
			r[RSP] += 8
		case KindPUSH:
			r[RSP] -= 8
			c.Mem.Store(r[RSP], 8, r[in.Dst])
		case KindPOP:
			r[in.Dst] = c.Mem.Load(r[RSP], 8)
			r[RSP] += 8
		case KindLEA:
			r[in.Dst] = r[in.Src] + uint64(in.Imm)
		case KindSYSCALL:
			c.pc = pc
			if c.Hook == nil {
				return i, true, fmt.Errorf("cisc: syscall with no hook at pc=%#x", pc)
			}
			res := c.Hook(c)
			c.nInstr++
			switch res {
			case isa.EcallHandled:
				c.pc = next
				return i + 1, true, nil
			case isa.EcallVector:
				return i + 1, true, nil
			case isa.EcallBlock:
				c.pc = next
				return i + 1, true, ErrBlock
			case isa.EcallHalt:
				c.pc = next
				return i + 1, true, ErrHalt
			}
			return i, true, fmt.Errorf("cisc: bad ecall result %d", res)
		default:
			c.pc = pc
			return i, true, fmt.Errorf("cisc: unimplemented %s at pc=%#x", in.Kind, pc)
		}
		c.nInstr++
		pc = next
	}
	c.pc = pc
	return n, false, nil
}
