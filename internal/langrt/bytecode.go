// Package langrt implements the language runtime models the vSwarm
// containers run on:
//
//   - Go: ahead-of-time compiled handlers with a small runtime init and a
//     garbage-collection poll per request.
//   - Python: a register-based bytecode virtual machine written in the
//     portable IR (the CPython stand-in); the handler is compiled to
//     bytecode and interpreted, the gRPC core stays native (AOT), and the
//     first request pays a lazy module-import pass.
//   - Node.js: the same VM plus a tiered JIT — the first invocation
//     interprets and compiles, later invocations run the AOT body.
//
// These reproduce the per-runtime cold/warm signatures of the thesis
// (Fig. 4.4, 4.12): lean Go, import-dominated Python cold starts, and
// Node's strong warm speedup.
package langrt

import (
	"fmt"

	"svbench/internal/ir"
)

// VM bytecode operations. Instructions are 16 bytes:
// op(u8) pad(u8) dst(u16) a(u16) b(u16) imm(i64).
const (
	vNop   uint8 = 0
	vConst uint8 = 1
	vMov   uint8 = 2
	vAdd   uint8 = 3
	vSub   uint8 = 4
	vMul   uint8 = 5
	vDiv   uint8 = 6
	vRem   uint8 = 7
	vDivU  uint8 = 8
	vRemU  uint8 = 9
	vAnd   uint8 = 10
	vOr    uint8 = 11
	vXor   uint8 = 12
	vShl   uint8 = 13
	vShr   uint8 = 14
	vSra   uint8 = 15
	vAddI  uint8 = 16
	vMulI  uint8 = 17
	vAndI  uint8 = 18
	vOrI   uint8 = 19
	vXorI  uint8 = 20
	vShlI  uint8 = 21
	vShrI  uint8 = 22
	vSraI  uint8 = 23
	// vSetBase+cond, 8 conditions in ir.Cond order.
	vSetBase uint8 = 24
	vLd8     uint8 = 32
	vLd8u    uint8 = 33
	vLd16    uint8 = 34
	vLd16u   uint8 = 35
	vLd32    uint8 = 36
	vLd32u   uint8 = 37
	vLd64    uint8 = 38
	vSt8     uint8 = 39
	vSt16    uint8 = 40
	vSt32    uint8 = 41
	vSt64    uint8 = 42
	// vBrBase+cond: if a cond b -> pc = imm.
	vBrBase  uint8 = 43
	vJmp     uint8 = 51
	vLeaL    uint8 = 52 // dst = locals + imm
	vLeaG    uint8 = 53 // dst = globtab[imm]
	vEcall   uint8 = 54 // dst = ecall imm(args at regs a..a+b-1)
	vRet     uint8 = 55 // return reg a
	vCallB   uint8 = 56 // dst = builtin[imm](args at regs a..a+b-1)
	vOpCount uint8 = 57
)

// builtin is a native routine callable from bytecode (the C-implemented
// library surface of the interpreted runtimes).
type builtin struct {
	name  string
	arity int
}

// builtins is the fixed registry shared by the bytecode compiler and the
// VM builder; imm in vCallB indexes it.
var builtins = []builtin{
	{"memcpy", 3}, {"memset", 3}, {"memcmp", 3}, {"strlen", 1},
	{"fnv64", 2}, {"bcopy_down", 3},
	{"mbuf_reset", 1}, {"mbuf_put_int", 2}, {"mbuf_put_bytes", 3},
	{"mbuf_len", 1}, {"mbuf_get_int", 2}, {"mbuf_get_bytes", 4},
	{"grpc_frame", 1},
	// Native-extension crypto/hash surfaces (PyCryptodome/hashlib-style
	// C modules): interpreted handlers call these at native speed.
	{"aes_expand_key", 2}, {"aes_encrypt_block", 2},
	{"auth_hash", 2}, {"hp_hash", 2},
	{"kv_get", 5}, {"kv_put", 5}, {"kv_scan", 4},
}

func builtinIndex(name string) int {
	for i, bi := range builtins {
		if bi.name == name {
			return i
		}
	}
	return -1
}

// InsnSize is the bytecode instruction width.
const InsnSize = 16

// Compiled is a handler lowered to VM bytecode.
type Compiled struct {
	Code       []byte
	NInsns     int
	NRegs      int
	LocalsSize int64
	Globals    []string // names resolved into the globtab at runtime
}

type bcAsm struct {
	code    []byte
	globals []string
	gidx    map[string]int
}

func (a *bcAsm) emit(op uint8, dst, ra, rb int, imm int64) int {
	// Absent operands read/write register 0 harmlessly (the interpreter
	// decodes all operand fields unconditionally).
	if dst < 0 {
		dst = 0
	}
	if ra < 0 {
		ra = 0
	}
	if rb < 0 {
		rb = 0
	}
	var b [InsnSize]byte
	b[0] = op
	b[2] = byte(dst)
	b[3] = byte(dst >> 8)
	b[4] = byte(ra)
	b[5] = byte(ra >> 8)
	b[6] = byte(rb)
	b[7] = byte(rb >> 8)
	for i := 0; i < 8; i++ {
		b[8+i] = byte(uint64(imm) >> (8 * i))
	}
	a.code = append(a.code, b[:]...)
	return len(a.code)/InsnSize - 1
}

func (a *bcAsm) global(name string) int {
	if i, ok := a.gidx[name]; ok {
		return i
	}
	i := len(a.globals)
	a.globals = append(a.globals, name)
	a.gidx[name] = i
	return i
}

func (a *bcAsm) patchImm(idx int, imm int64) {
	off := idx*InsnSize + 8
	for i := 0; i < 8; i++ {
		a.code[off+i] = byte(uint64(imm) >> (8 * i))
	}
}

var binVOp = map[ir.Op]uint8{
	ir.OpAdd: vAdd, ir.OpSub: vSub, ir.OpMul: vMul, ir.OpDiv: vDiv,
	ir.OpRem: vRem, ir.OpDivU: vDivU, ir.OpRemU: vRemU, ir.OpAnd: vAnd,
	ir.OpOr: vOr, ir.OpXor: vXor, ir.OpShl: vShl, ir.OpShr: vShr, ir.OpSra: vSra,
}

var immVOp = map[ir.Op]uint8{
	ir.OpAddI: vAddI, ir.OpMulI: vMulI, ir.OpAndI: vAndI, ir.OpOrI: vOrI,
	ir.OpXorI: vXorI, ir.OpShlI: vShlI, ir.OpShrI: vShrI, ir.OpSraI: vSraI,
}

func ldVOp(sz uint8, uns bool) uint8 {
	switch sz {
	case 1:
		if uns {
			return vLd8u
		}
		return vLd8
	case 2:
		if uns {
			return vLd16u
		}
		return vLd16
	case 4:
		if uns {
			return vLd32u
		}
		return vLd32
	default:
		return vLd64
	}
}

func stVOp(sz uint8) uint8 {
	switch sz {
	case 1:
		return vSt8
	case 2:
		return vSt16
	case 4:
		return vSt32
	default:
		return vSt64
	}
}

// CompileBytecode lowers a flat (call-free) IR function to VM bytecode.
// Use ir.Inline first for handlers that call helpers.
func CompileBytecode(f *ir.Function) (*Compiled, error) {
	a := &bcAsm{gidx: map[string]int{}}
	scratch := f.NRegs // one scratch register for BrI expansion
	nregs := f.NRegs + 1

	// Locals layout.
	localOff := map[string]int64{}
	var lsz int64
	for _, buf := range f.Bufs {
		localOff[buf.Name] = lsz
		lsz += (buf.Size + 7) &^ 7
	}

	idxMap := make([]int, len(f.Code)+1)
	type fix struct{ insn, tgt int }
	var fixes []fix

	for i, in := range f.Code {
		idxMap[i] = len(a.code) / InsnSize
		switch in.Op {
		case ir.OpNop, ir.OpFence:
			a.emit(vNop, 0, 0, 0, 0)
		case ir.OpConst:
			a.emit(vConst, int(in.Dst), 0, 0, in.Imm)
		case ir.OpMov:
			a.emit(vMov, int(in.Dst), int(in.A), 0, 0)
		case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem, ir.OpDivU,
			ir.OpRemU, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr, ir.OpSra:
			a.emit(binVOp[in.Op], int(in.Dst), int(in.A), int(in.B), 0)
		case ir.OpAddI, ir.OpMulI, ir.OpAndI, ir.OpOrI, ir.OpXorI,
			ir.OpShlI, ir.OpShrI, ir.OpSraI:
			a.emit(immVOp[in.Op], int(in.Dst), int(in.A), 0, in.Imm)
		case ir.OpSet:
			a.emit(vSetBase+uint8(in.Cond), int(in.Dst), int(in.A), int(in.B), 0)
		case ir.OpLoad:
			a.emit(ldVOp(in.Sz, in.Uns), int(in.Dst), int(in.A), 0, in.Imm)
		case ir.OpStore:
			a.emit(stVOp(in.Sz), 0, int(in.A), int(in.B), in.Imm)
		case ir.OpBr:
			idx := a.emit(vBrBase+uint8(in.Cond), 0, int(in.A), int(in.B), 0)
			fixes = append(fixes, fix{idx, in.Tgt})
		case ir.OpBrI:
			a.emit(vConst, scratch, 0, 0, in.Imm)
			idx := a.emit(vBrBase+uint8(in.Cond), 0, int(in.A), scratch, 0)
			fixes = append(fixes, fix{idx, in.Tgt})
		case ir.OpJmp:
			idx := a.emit(vJmp, 0, 0, 0, 0)
			fixes = append(fixes, fix{idx, in.Tgt})
		case ir.OpFrame:
			off, ok := localOff[in.Sym]
			if !ok {
				return nil, fmt.Errorf("langrt: unknown frame buffer %q", in.Sym)
			}
			a.emit(vLeaL, int(in.Dst), 0, 0, off+in.Imm)
		case ir.OpGlobal:
			gi := a.global(in.Sym)
			a.emit(vLeaG, int(in.Dst), 0, 0, int64(gi))
			if in.Imm != 0 {
				a.emit(vAddI, int(in.Dst), int(in.Dst), 0, in.Imm)
			}
		case ir.OpEcall:
			// Gather args into consecutive registers after scratch.
			base := nregs
			for ai, r := range in.Args {
				a.emit(vMov, base+ai, int(r), 0, 0)
			}
			if base+len(in.Args) > nregs+6 {
				nregs = base + len(in.Args)
			}
			d := int(in.Dst)
			if in.Dst == ir.NoReg {
				d = scratch
			}
			a.emit(vEcall, d, base, len(in.Args), in.Imm)
		case ir.OpRet:
			ra := int(in.A)
			if in.A == ir.NoReg {
				a.emit(vConst, scratch, 0, 0, 0)
				ra = scratch
			}
			a.emit(vRet, 0, ra, 0, 0)
		case ir.OpCall:
			bi := builtinIndex(in.Sym)
			if bi < 0 {
				return nil, fmt.Errorf("langrt: call to %s survived flattening and is not a builtin", in.Sym)
			}
			if len(in.Args) > 5 {
				return nil, fmt.Errorf("langrt: builtin %s: too many args", in.Sym)
			}
			base := nregs
			for ai, r := range in.Args {
				a.emit(vMov, base+ai, int(r), 0, 0)
			}
			d := int(in.Dst)
			if in.Dst == ir.NoReg {
				d = scratch
			}
			a.emit(vCallB, d, base, len(in.Args), int64(bi))
		default:
			return nil, fmt.Errorf("langrt: unhandled op %d", in.Op)
		}
	}
	idxMap[len(f.Code)] = len(a.code) / InsnSize
	for _, fx := range fixes {
		a.patchImm(fx.insn, int64(idxMap[fx.tgt]))
	}
	// Reserve the ecall arg block even when unused.
	if nregs < f.NRegs+1+6 {
		nregs = f.NRegs + 1 + 6
	}
	if nregs > 0xFFFE {
		return nil, fmt.Errorf("langrt: too many VM registers (%d)", nregs)
	}
	return &Compiled{
		Code:       a.code,
		NInsns:     len(a.code) / InsnSize,
		NRegs:      nregs,
		LocalsSize: lsz,
		Globals:    a.globals,
	}, nil
}
