package libc_test

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"svbench/internal/ir"
	"svbench/internal/isa"
	"svbench/internal/isa/isatest"
	"svbench/internal/libc"
)

// runner builds a libc module with two scratch globals and a runner.
func runner(t *testing.T, arch isa.Arch, f libc.Flavor) *isatest.Runner {
	t.Helper()
	m := ir.NewModule("t")
	m.MergeShared(libc.Module(f))
	m.AddGlobal(&ir.Global{Name: "bufA", Data: make([]byte, 512)})
	m.AddGlobal(&ir.Global{Name: "bufB", Data: make([]byte, 512)})
	r, err := isatest.NewRunner(arch, m)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func allVariants(t *testing.T, run func(t *testing.T, r *isatest.Runner)) {
	for _, arch := range []isa.Arch{isa.RV64, isa.CISC64} {
		for _, fl := range []libc.Flavor{libc.Fast, libc.Compat} {
			arch, fl := arch, fl
			t.Run(string(arch)+"/"+fl.String(), func(t *testing.T) {
				run(t, runner(t, arch, fl))
			})
		}
	}
}

func TestMemcpySemantics(t *testing.T) {
	allVariants(t, func(t *testing.T, r *isatest.Runner) {
		a, b := r.GlobalAddr("bufA"), r.GlobalAddr("bufB")
		rnd := rand.New(rand.NewSource(5))
		for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65, 200} {
			src := make([]byte, n)
			rnd.Read(src)
			r.WriteBytes(a, src)
			r.WriteBytes(b, make([]byte, 512))
			ret, err := r.Call("memcpy", int64(b), int64(a), int64(n))
			if err != nil {
				t.Fatal(err)
			}
			if uint64(ret) != b {
				t.Fatalf("memcpy must return dst")
			}
			if !bytes.Equal(r.ReadBytes(b, uint64(n)), src) {
				t.Fatalf("n=%d: copy mismatch", n)
			}
		}
	})
}

func TestMemsetSemantics(t *testing.T) {
	allVariants(t, func(t *testing.T, r *isatest.Runner) {
		a := r.GlobalAddr("bufA")
		for _, n := range []int{0, 1, 8, 15, 100} {
			if _, err := r.Call("memset", int64(a), 0xAB, int64(n)); err != nil {
				t.Fatal(err)
			}
			got := r.ReadBytes(a, uint64(n))
			for i, c := range got {
				if c != 0xAB {
					t.Fatalf("n=%d byte %d = %#x", n, i, c)
				}
			}
		}
	})
}

func TestMemcmpSemantics(t *testing.T) {
	allVariants(t, func(t *testing.T, r *isatest.Runner) {
		a, b := r.GlobalAddr("bufA"), r.GlobalAddr("bufB")
		cases := []struct {
			x, y string
			sign int
		}{
			{"abc", "abc", 0}, {"abd", "abc", 1}, {"abb", "abc", -1},
			{"", "", 0}, {"a\xffb", "a\x01b", 1},
		}
		for _, c := range cases {
			r.WriteBytes(a, []byte(c.x))
			r.WriteBytes(b, []byte(c.y))
			got, err := r.Call("memcmp", int64(a), int64(b), int64(len(c.x)))
			if err != nil {
				t.Fatal(err)
			}
			switch {
			case c.sign == 0 && got != 0:
				t.Fatalf("memcmp(%q,%q) = %d", c.x, c.y, got)
			case c.sign > 0 && got <= 0:
				t.Fatalf("memcmp(%q,%q) = %d", c.x, c.y, got)
			case c.sign < 0 && got >= 0:
				t.Fatalf("memcmp(%q,%q) = %d", c.x, c.y, got)
			}
		}
	})
}

func TestStrlenSemantics(t *testing.T) {
	allVariants(t, func(t *testing.T, r *isatest.Runner) {
		a := r.GlobalAddr("bufA")
		for _, s := range []string{"", "x", "hello world", "abc\x00hidden"} {
			r.WriteBytes(a, append([]byte(s), 0))
			got, err := r.Call("strlen", int64(a))
			if err != nil {
				t.Fatal(err)
			}
			want := int64(len(s))
			if i := bytes.IndexByte([]byte(s), 0); i >= 0 {
				want = int64(i)
			}
			if got != want {
				t.Fatalf("strlen(%q) = %d, want %d", s, got, want)
			}
		}
	})
}

func TestFNVMatchesGoMirror(t *testing.T) {
	mirror := func(p []byte) uint64 {
		h := uint64(0xcbf29ce484222325)
		for _, c := range p {
			h ^= uint64(c)
			h *= 0x100000001b3
		}
		return h
	}
	allVariants(t, func(t *testing.T, r *isatest.Runner) {
		a := r.GlobalAddr("bufA")
		rnd := rand.New(rand.NewSource(9))
		for i := 0; i < 8; i++ {
			p := make([]byte, rnd.Intn(64))
			rnd.Read(p)
			r.WriteBytes(a, p)
			got, err := r.Call("fnv64", int64(a), int64(len(p)))
			if err != nil {
				t.Fatal(err)
			}
			if uint64(got) != mirror(p) {
				t.Fatalf("fnv64(%x) = %#x, want %#x", p, got, mirror(p))
			}
		}
	})
}

// TestFlavorsAgree property-checks that the Fast and Compat flavors are
// observationally identical (only their cost differs).
func TestFlavorsAgree(t *testing.T) {
	fast := runner(t, isa.RV64, libc.Fast)
	compat := runner(t, isa.RV64, libc.Compat)
	a1, b1 := fast.GlobalAddr("bufA"), fast.GlobalAddr("bufB")
	a2, b2 := compat.GlobalAddr("bufA"), compat.GlobalAddr("bufB")
	rnd := rand.New(rand.NewSource(77))
	f := func() bool {
		n := rnd.Intn(128)
		src := make([]byte, n)
		rnd.Read(src)
		fast.WriteBytes(a1, src)
		compat.WriteBytes(a2, src)
		if _, err := fast.Call("memcpy", int64(b1), int64(a1), int64(n)); err != nil {
			t.Fatal(err)
		}
		if _, err := compat.Call("memcpy", int64(b2), int64(a2), int64(n)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fast.ReadBytes(b1, uint64(n)), compat.ReadBytes(b2, uint64(n))) {
			return false
		}
		h1, _ := fast.Call("fnv64", int64(a1), int64(n))
		h2, _ := compat.Call("fnv64", int64(a2), int64(n))
		return h1 == h2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBcopyDownOverlap(t *testing.T) {
	allVariants(t, func(t *testing.T, r *isatest.Runner) {
		a := r.GlobalAddr("bufA")
		r.WriteBytes(a, []byte("0123456789"))
		// Copy [0,8) to [2,10): backward copy handles the overlap.
		if _, err := r.Call("bcopy_down", int64(a+2), int64(a), 8); err != nil {
			t.Fatal(err)
		}
		if got := string(r.ReadBytes(a, 10)); got != "0101234567" {
			t.Fatalf("overlap copy = %q", got)
		}
	})
}

func TestForArch(t *testing.T) {
	if libc.ForArch("rv64") != libc.Fast {
		t.Fatal("rv64 must use the fast flavor")
	}
	if libc.ForArch("cisc64") != libc.Compat {
		t.Fatal("cisc64 must use the compat flavor")
	}
}
