package cisc

import (
	"testing"

	"svbench/internal/ir/irtest"
	"svbench/internal/isa"
)

// chainLoopCore builds a two-block infinite loop designed to patch both
// link slots immediately:
//
//	A @ 0x1000: ADDri32 R8,1 ; JMP -> B
//	B @ 0x2000: ADDri32 R9,2 ; JMP -> A
//
// JMP rel32 is relative to the end of the jump.
func chainLoopCore() *Core {
	mem := isa.NewMem(1 << 16)
	emit := func(pc uint64, ins ...Inst) uint64 {
		var code []byte
		for _, in := range ins {
			code = in.Encode(code)
		}
		copy(mem.Data[pc:], code)
		return pc + uint64(len(code))
	}
	endA := emit(0x1000, Inst{Kind: KindADDri32, Dst: R8, Imm: 1}, Inst{Kind: KindJMP})
	endB := emit(0x2000, Inst{Kind: KindADDri32, Dst: R9, Imm: 2}, Inst{Kind: KindJMP})
	// Patch the jumps now that both layouts are known.
	emit(0x1000, Inst{Kind: KindADDri32, Dst: R8, Imm: 1}, Inst{Kind: KindJMP, Imm: 0x2000 - int64(endA)})
	emit(0x2000, Inst{Kind: KindADDri32, Dst: R9, Imm: 2}, Inst{Kind: KindJMP, Imm: 0x1000 - int64(endB)})
	core := NewCore(mem, nil)
	core.SetPC(0x1000)
	core.SetStackPtr(0x8000)
	return core
}

// TestChainInvalidationContract pins the self-modifying-code contract of
// the superblock chain: a plain store to already-translated text is NOT
// observed (translated blocks and their links keep executing the old
// code), while InvalidateBlocks severs every link, counts each severed
// slot as a chain break, and forces redecoding so the new text runs.
func TestChainInvalidationContract(t *testing.T) {
	cases := []struct {
		name       string
		invalidate bool
	}{
		{"invalidate-executes-new-text", true},
		{"plain-store-keeps-old-translation", false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			core := chainLoopCore()
			if _, _, err := core.StepN(400, nil); err != nil {
				t.Fatal(err)
			}
			d := core.Dec
			st := d.ChainStats()
			// 3 map misses: the initial entry plus one first-transition
			// per link; the rest link-followed.
			if st.Blocks != 2 || st.Misses != 3 {
				t.Fatalf("warmup stats = %+v, want Blocks=2 Misses=3", st)
			}
			if st.Hits < 190 {
				t.Fatalf("only %d chain hits after 400 steps", st.Hits)
			}
			a, b := d.blocks[0x1000], d.blocks[0x2000]
			if a == nil || b == nil || a.link0 != b || b.link0 != a {
				t.Fatalf("loop blocks not mutually linked: a=%p b=%p", a, b)
			}
			// Self-modify B's body: R9 += 2 becomes R10 += 3.
			var patched []byte
			patched = Inst{Kind: KindADDri32, Dst: R10, Imm: 3}.Encode(patched)
			copy(core.Mem.Data[0x2000:], patched)
			if tc.invalidate {
				d.InvalidateBlocks()
				if got := d.ChainStats().Breaks; got != st.Breaks+2 {
					t.Fatalf("Breaks = %d, want %d (two severed links)", got, st.Breaks+2)
				}
			}
			r9, r10 := core.Regs[R9], core.Regs[R10]
			if _, _, err := core.StepN(400, nil); err != nil {
				t.Fatal(err)
			}
			ranNew := core.Regs[R10] > r10
			ranOld := core.Regs[R9] > r9
			if tc.invalidate {
				if !ranNew || ranOld {
					t.Fatalf("after invalidation: new code ran=%v, old code ran=%v (want true,false)", ranNew, ranOld)
				}
				if st2 := d.ChainStats(); st2.Hits <= st.Hits {
					t.Fatalf("chain did not re-form: hits %d -> %d", st.Hits, st2.Hits)
				}
			} else if ranNew || !ranOld {
				t.Fatalf("without invalidation: new code ran=%v, old code ran=%v (want false,true)", ranNew, ranOld)
			}
		})
	}
}

// TestResetChains checks the checkpoint-restore primitive: links and
// telemetry are dropped while translated blocks survive, and the
// counters start a fresh distinct-block generation.
func TestResetChains(t *testing.T) {
	core := chainLoopCore()
	if _, _, err := core.StepN(300, nil); err != nil {
		t.Fatal(err)
	}
	d := core.Dec
	st := d.ChainStats()
	if st.Blocks == 0 || st.Misses == 0 || st.Hits == 0 {
		t.Fatalf("no chain activity after 300 steps: %+v", st)
	}
	nBlocks := len(d.blocks)
	if nBlocks == 0 {
		t.Fatal("no translated blocks")
	}
	d.ResetChains()
	if st2 := d.ChainStats(); st2 != (isa.ChainStats{}) {
		t.Fatalf("ResetChains left telemetry behind: %+v", st2)
	}
	if len(d.blocks) != nBlocks {
		t.Fatalf("ResetChains dropped blocks: %d -> %d", nBlocks, len(d.blocks))
	}
	for pc, b := range d.blocks {
		if b.link0 != nil || b.link1 != nil || b.link0pc != 0 || b.link1pc != 0 {
			t.Fatalf("block %#x kept a link after ResetChains", pc)
		}
	}
	// Execution continues on the link-less (but still warm) cache: the
	// new generation re-counts entered blocks and re-patches links.
	if _, _, err := core.StepN(300, nil); err != nil {
		t.Fatal(err)
	}
	if st3 := d.ChainStats(); st3.Blocks != 2 || st3.Hits == 0 {
		t.Fatalf("chain did not restart after ResetChains: %+v", st3)
	}
}

// TestResetChainsMidRun calls ResetChains in the middle of a real corpus
// program and checks execution still completes with the right answer.
func TestResetChainsMidRun(t *testing.T) {
	m, cases := irtest.Corpus()
	prog, err := Compile(m, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	c := cases[0]
	core := corpusCore(prog, c.Fn, c.Args, 0)()
	var ferr error
	for rounds := 0; ferr == nil; rounds++ {
		_, _, ferr = core.StepN(40, nil)
		if rounds%3 == 2 {
			core.Dec.ResetChains()
		}
	}
	if ferr != ErrHalt {
		t.Fatal(ferr)
	}
	// The exit stub moved the result to RDI.
	if got := int64(core.Regs[RDI]); got != c.Want {
		t.Fatalf("%s(%v) = %d, want %d", c.Fn, c.Args, got, c.Want)
	}
}

// TestStepNLockstepLoops drives a backward-branching nested loop through
// the reference interpreter and both StepN lanes. Small batch sizes cut
// quanta inside the loop body, so link patching, link following and
// budget-truncated (unchained) exits all interleave.
func TestStepNLockstepLoops(t *testing.T) {
	mk := func() *Core {
		mem := isa.NewMem(1 << 16)
		// R10 = sum over 6 outer iterations of (5+4+3+2+1) = 90.
		prog := []Inst{
			{Kind: KindMOVri32, Dst: R8, Imm: 6},
			{Kind: KindMOVri32, Dst: R9, Imm: 5}, // outer:
			{Kind: KindADD, Dst: R10, Src: R9},    // inner:
			{Kind: KindADDri32, Dst: R9, Imm: -1},
			{Kind: KindCMPri32, Dst: R9, Imm: 0},
			{Kind: KindJNE}, // -> inner
			{Kind: KindADDri32, Dst: R8, Imm: -1},
			{Kind: KindCMPri32, Dst: R8, Imm: 0},
			{Kind: KindJNE}, // -> outer
			{Kind: KindMOVri32, Dst: RAX, Imm: 255},
			{Kind: KindSYSCALL},
		}
		// rel32 targets are relative to the end of the jump: sum encoded
		// sizes backward over the loop bodies (including the jump itself).
		prog[5].Imm = -(int64(Size(KindADD)) + int64(Size(KindADDri32)) +
			int64(Size(KindCMPri32)) + int64(Size(KindJNE)))
		prog[8].Imm = -(int64(Size(KindMOVri32)) + int64(Size(KindADD)) +
			2*int64(Size(KindADDri32)) + 2*int64(Size(KindCMPri32)) + 2*int64(Size(KindJNE)))
		var code []byte
		for _, in := range prog {
			code = in.Encode(code)
		}
		copy(mem.Data[0x1000:], code)
		core := NewCore(mem, nil)
		core.Hook = func(c isa.Core) isa.EcallResult { return isa.EcallHalt }
		core.SetPC(0x1000)
		core.SetStackPtr(0x8000)
		core.DebugRing = make([]uint64, 4)
		return core
	}
	for _, bs := range [][]int{{1}, {2}, {3}, {5, 1}, {7}, {64}, {1000}} {
		ref := lockstep(t, mk, bs, 10_000)
		if got := ref.Regs[R10]; got != 90 {
			t.Fatalf("R10 = %d, want 90", got)
		}
	}
	// The chained fast path must actually be chaining here: the nested
	// loop re-enters its blocks dozens of times.
	core := mk()
	var err error
	for err == nil {
		_, _, err = core.StepN(512, nil)
	}
	if err != ErrHalt {
		t.Fatal(err)
	}
	if st := core.Dec.ChainStats(); st.Hits == 0 {
		t.Fatalf("no chain hits on a loop workload: %+v", st)
	}
}

// TestChainStatsMeanLen sanity-checks the derived metric on a tight
// two-block loop: nearly every transition is a link follow.
func TestChainStatsMeanLen(t *testing.T) {
	core := chainLoopCore()
	if _, _, err := core.StepN(1000, nil); err != nil {
		t.Fatal(err)
	}
	if got := core.Dec.ChainStats().MeanChainLen(); got < 100 {
		t.Fatalf("tight loop mean chain length = %v, want long chains", got)
	}
}
