package riscv

import (
	"math/rand"
	"reflect"
	"testing"

	"svbench/internal/ir/irtest"
	"svbench/internal/isa"
)

// errText renders an error for differential comparison: the fast path
// must fail with the very same error the single-step path fails with.
func errText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// lockstep drives a reference core (per-instruction Step) and two fast
// cores (StepN trace lane, StepN no-trace lane) through the same program,
// comparing architectural snapshots, trace records, retired counts and
// errors after every batch. Batch sizes cycle through batches. It returns
// the reference core after ErrHalt.
func lockstep(t *testing.T, mk func() *Core, batches []int, maxRounds int) *Core {
	t.Helper()
	ref, fastT, fastF := mk(), mk(), mk()
	var refRecs []isa.TraceRec
	// Must start non-nil: a nil slice selects StepN's no-trace lane.
	fastRecs := make([]isa.TraceRec, 0, 256)
	for round := 0; ; round++ {
		if round > maxRounds {
			t.Fatalf("no halt after %d rounds", maxRounds)
		}
		k := batches[round%len(batches)]
		var ferr error
		n, out, ferr := fastT.StepN(k, fastRecs[:0])
		fastRecs = out
		n2, _, ferr2 := fastF.StepN(k, nil)
		if n2 != n || errText(ferr2) != errText(ferr) {
			t.Fatalf("round %d: no-trace lane diverged: n=%d err=%v vs n=%d err=%v",
				round, n2, ferr2, n, ferr)
		}
		refRecs = refRecs[:0]
		var rerr error
		for j := 0; j < n; j++ {
			refRecs, rerr = ref.Step(refRecs)
			if rerr != nil && j != n-1 {
				t.Fatalf("round %d: ref errored early at %d/%d: %v", round, j, n, rerr)
			}
		}
		if n == 0 && ferr != nil {
			// The fast path failed before retiring anything; the reference
			// must fail identically on its next instruction.
			refRecs, rerr = ref.Step(refRecs[:0])
		}
		if errText(rerr) != errText(ferr) {
			t.Fatalf("round %d: error mismatch: ref=%v fast=%v", round, rerr, ferr)
		}
		if len(refRecs) != len(fastRecs) {
			t.Fatalf("round %d: %d ref recs vs %d fast recs", round, len(refRecs), len(fastRecs))
		}
		for i := range refRecs {
			if refRecs[i] != fastRecs[i] {
				t.Fatalf("round %d rec %d:\nref  %+v\nfast %+v", round, i, refRecs[i], fastRecs[i])
			}
		}
		rs, ts, fs := ref.Snapshot(), fastT.Snapshot(), fastF.Snapshot()
		if !reflect.DeepEqual(rs, ts) || !reflect.DeepEqual(rs, fs) {
			t.Fatalf("round %d: state diverged\nref   %v\ntrace %v\nfast  %v", round, rs, ts, fs)
		}
		if ref.DebugRing != nil {
			if ref.DebugPos() != fastT.DebugPos() || ref.DebugPos() != fastF.DebugPos() ||
				!reflect.DeepEqual(ref.DebugRing, fastT.DebugRing) ||
				!reflect.DeepEqual(ref.DebugRing, fastF.DebugRing) {
				t.Fatalf("round %d: debug ring diverged", round)
			}
		}
		if ferr == ErrHalt {
			return ref
		}
		if ferr != nil && ferr != ErrBlock {
			t.Fatalf("round %d: unexpected error %v", round, ferr)
		}
	}
}

// corpusCore builds a core set up exactly like the interpreter tests do:
// program loaded, exit stub at 0x100, halting hook.
func corpusCore(prog *isa.Program, fn string, args []int64, ring int) func() *Core {
	return func() *Core {
		mem := isa.NewMem(1 << 21)
		prog.LoadInto(mem)
		stub := uint64(0x100)
		mem.Store(stub, 4, uint64(Inst{Kind: KindADDI, Rd: RegA7, Rs1: RegZero, Imm: 255}.Encode()))
		mem.Store(stub+4, 4, uint64(Inst{Kind: KindECALL}.Encode()))
		core := NewCore(mem, nil)
		core.Hook = func(c isa.Core) isa.EcallResult {
			if c.EcallNum() == 255 {
				return isa.EcallHalt
			}
			return isa.EcallHandled
		}
		core.SetPC(prog.SymAddr(fn))
		core.SetStackPtr(1 << 20)
		core.Regs[RegRA] = stub
		for i, a := range args {
			core.SetArg(i, uint64(a))
		}
		if ring > 0 {
			core.DebugRing = make([]uint64, ring)
		}
		return core
	}
}

// TestStepNLockstepCorpus pins the fast path to the reference interpreter
// over the whole IR test corpus, with batch sizes from 1 to well past the
// block length cap.
func TestStepNLockstepCorpus(t *testing.T) {
	m, cases := irtest.Corpus()
	prog, err := Compile(m, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	schedules := [][]int{{1}, {2, 3}, {7}, {32}, {64, 1, 5}, {256}}
	for i, c := range cases {
		c := c
		bs := schedules[i%len(schedules)]
		t.Run(c.Name, func(t *testing.T) {
			ref := lockstep(t, corpusCore(prog, c.Fn, c.Args, 8), bs, 10_000_000)
			if got := int64(ref.Regs[RegA0]); got != c.Want {
				t.Fatalf("%s(%v) = %d, want %d", c.Fn, c.Args, got, c.Want)
			}
		})
	}
}

// TestStepNLockstepEcallVariants exercises every ecall disposition —
// handled, vectored, blocking, halting — plus Annotate through both
// execution lanes.
func TestStepNLockstepEcallVariants(t *testing.T) {
	mk := func() *Core {
		mem := isa.NewMem(1 << 16)
		emit := func(pc uint64, in Inst) {
			mem.Store(pc, 4, uint64(in.Encode()))
		}
		pc := uint64(0x1000)
		for _, num := range []int64{7, 9, 11, 255} {
			emit(pc, Inst{Kind: KindADDI, Rd: RegA7, Rs1: RegZero, Imm: num})
			emit(pc+4, Inst{Kind: KindECALL})
			pc += 8
		}
		// Vector handler: a0++; ret.
		emit(0x2000, Inst{Kind: KindADDI, Rd: RegA0, Rs1: RegA0, Imm: 1})
		emit(0x2004, Inst{Kind: KindJALR, Rd: RegZero, Rs1: RegRA})
		core := NewCore(mem, nil)
		core.Hook = func(c isa.Core) isa.EcallResult {
			switch c.EcallNum() {
			case 7:
				c.Annotate(isa.FlagSend, 77)
				c.SetRet(42)
				return isa.EcallHandled
			case 9:
				c.CallInto(0x2000)
				c.Annotate(isa.FlagVector, 0x2000)
				return isa.EcallVector
			case 11:
				c.Annotate(isa.FlagRecv, 5)
				return isa.EcallBlock
			}
			return isa.EcallHalt
		}
		core.SetPC(0x1000)
		core.SetStackPtr(0x8000)
		core.DebugRing = make([]uint64, 4)
		return core
	}
	for _, bs := range [][]int{{1}, {2}, {3}, {5}, {100}} {
		lockstep(t, mk, bs, 1000)
	}
}

// TestDecodeCacheSequential verifies the sequential-PC fast path serves
// exactly what a cold cache decodes, including across page boundaries.
func TestDecodeCacheSequential(t *testing.T) {
	mem := isa.NewMem(1 << 16)
	// Straight-line run crossing the 4 KiB page boundary at 0x2000.
	start, end := uint64(0x1F00), uint64(0x2100)
	i := int64(0)
	for pc := start; pc < end; pc += 4 {
		mem.Store(pc, 4, uint64(Inst{Kind: KindADDI, Rd: 5, Rs1: 6, Imm: i % 100}.Encode()))
		i++
	}
	seq := NewDecodeCache()
	for pass := 0; pass < 3; pass++ {
		for pc := start; pc < end; pc += 4 {
			cold := NewDecodeCache()
			want, err := cold.lookup(pc, mem)
			if err != nil {
				t.Fatal(err)
			}
			got, err := seq.lookup(pc, mem)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("pc=%#x pass=%d: seq %+v != cold %+v", pc, pass, got, want)
			}
		}
	}
}

// TestDebugRingWrap checks the explicit wrap-around: the cursor stays in
// range and the ring holds the most recent PCs.
func TestDebugRingWrap(t *testing.T) {
	mem := isa.NewMem(1 << 16)
	const n = 10
	for j := 0; j < n; j++ {
		mem.Store(uint64(0x1000+4*j), 4, uint64(Inst{Kind: KindADDI, Rd: 5, Rs1: 5, Imm: 1}.Encode()))
	}
	mem.Store(0x1000+4*n, 4, uint64(Inst{Kind: KindECALL}.Encode()))
	core := NewCore(mem, nil)
	core.Hook = func(c isa.Core) isa.EcallResult { return isa.EcallHalt }
	core.SetPC(0x1000)
	core.DebugRing = make([]uint64, 4)
	var err error
	for err == nil {
		_, _, err = core.StepN(3, nil)
	}
	if err != ErrHalt {
		t.Fatal(err)
	}
	if p := core.DebugPos(); p < 0 || p >= len(core.DebugRing) {
		t.Fatalf("cursor %d out of range", p)
	}
	// 11 pushes into a 4-entry ring: ring[i] holds the latest pc with
	// push index ≡ i (mod 4).
	want := []uint64{0x1000 + 4*8, 0x1000 + 4*9, 0x1000 + 4*10, 0x1000 + 4*7}
	if !reflect.DeepEqual(core.DebugRing, want) {
		t.Fatalf("ring = %#x, want %#x", core.DebugRing, want)
	}
	if core.DebugPos() != 11%4 {
		t.Fatalf("cursor = %d, want %d", core.DebugPos(), 11%4)
	}
}

// TestInvalidateBlocks drops the block cache mid-run and checks execution
// continues bit-identically.
func TestInvalidateBlocks(t *testing.T) {
	m, cases := irtest.Corpus()
	prog, err := Compile(m, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	c := cases[0]
	ref := corpusCore(prog, c.Fn, c.Args, 0)()
	fast := corpusCore(prog, c.Fn, c.Args, 0)()
	var ferr error
	rounds := 0
	for ferr == nil {
		var n int
		n, _, ferr = fast.StepN(50, nil)
		if rounds == 2 {
			if len(fast.Dec.blocks) == 0 {
				t.Fatal("no blocks cached after 3 rounds")
			}
			fast.Dec.InvalidateBlocks()
			if len(fast.Dec.blocks) != 0 || fast.Dec.mruB != nil {
				t.Fatal("InvalidateBlocks left state behind")
			}
		}
		for j := 0; j < n; j++ {
			if _, rerr := ref.Step(nil); rerr != nil && rerr != ferr {
				t.Fatal(rerr)
			}
		}
		rounds++
	}
	if ferr != ErrHalt {
		t.Fatal(ferr)
	}
	if !reflect.DeepEqual(ref.Snapshot(), fast.Snapshot()) {
		t.Fatal("state diverged after invalidation")
	}
}

// fuzzProgram synthesizes a random valid instruction stream from fuzz
// bytes: straight-line ALU/memory work, forward-only branches, ending in
// a halting ecall. x3 is reserved as the memory base register so every
// access stays inside [0x8000, 0x8800).
func fuzzProgram(data []byte) []Inst {
	r := rand.New(rand.NewSource(int64(len(data)) * 2654435761))
	byteAt := func(i int) int {
		if len(data) == 0 {
			return 0
		}
		return int(data[i%len(data)])
	}
	nInst := 8 + byteAt(0)%120
	var prog []Inst
	prog = append(prog, Inst{Kind: KindLUI, Rd: 3, Imm: 8}) // x3 = 0x8000
	reg := func(i int) uint8 {
		rd := uint8(byteAt(i) % 32)
		if rd == 3 {
			rd = 30
		}
		return rd
	}
	aluReg := []Kind{KindADD, KindSUB, KindSLL, KindSLT, KindSLTU, KindXOR,
		KindSRL, KindSRA, KindOR, KindAND, KindMUL, KindMULHU, KindDIV,
		KindDIVU, KindREM, KindREMU}
	aluImm := []Kind{KindADDI, KindADDIW, KindSLTI, KindSLTIU, KindXORI,
		KindORI, KindANDI}
	shImm := []Kind{KindSLLI, KindSRLI, KindSRAI}
	loads := []Kind{KindLB, KindLH, KindLW, KindLD, KindLBU, KindLHU, KindLWU}
	stores := []Kind{KindSB, KindSH, KindSW, KindSD}
	branches := []Kind{KindBEQ, KindBNE, KindBLT, KindBGE, KindBLTU, KindBGEU}
	type patch struct{ at, skip int }
	var patches []patch
	for i := 1; i < nInst; i++ {
		b := byteAt(i) ^ byteAt(i+17)<<3 ^ r.Int()
		sel := b % 100
		switch {
		case sel < 35:
			k := aluReg[b/100%len(aluReg)]
			prog = append(prog, Inst{Kind: k, Rd: reg(i), Rs1: uint8(byteAt(i+1) % 32), Rs2: uint8(byteAt(i+2) % 32)})
		case sel < 55:
			k := aluImm[b/100%len(aluImm)]
			prog = append(prog, Inst{Kind: k, Rd: reg(i), Rs1: uint8(byteAt(i+1) % 32),
				Imm: int64(byteAt(i+3)<<4 - 2048)})
		case sel < 62:
			k := shImm[b/100%len(shImm)]
			prog = append(prog, Inst{Kind: k, Rd: reg(i), Rs1: uint8(byteAt(i+1) % 32),
				Imm: int64(byteAt(i+3) % 64)})
		case sel < 72:
			k := loads[b/100%len(loads)]
			prog = append(prog, Inst{Kind: k, Rd: reg(i), Rs1: 3,
				Imm: int64(byteAt(i+3)*8) % 2041})
		case sel < 82:
			k := stores[b/100%len(stores)]
			prog = append(prog, Inst{Kind: k, Rs1: 3, Rs2: uint8(byteAt(i+2) % 32),
				Imm: int64(byteAt(i+3)*8) % 2041})
		case sel < 90:
			k := branches[b/100%len(branches)]
			// Forward-only skip of 1..4 instructions; the immediate is
			// patched once final layout is known.
			patches = append(patches, patch{at: len(prog), skip: 1 + byteAt(i+3)%4})
			prog = append(prog, Inst{Kind: k, Rs1: uint8(byteAt(i+1) % 32), Rs2: uint8(byteAt(i+2) % 32)})
		case sel < 93:
			prog = append(prog, Inst{Kind: KindLUI, Rd: reg(i), Imm: int64(byteAt(i+3) - 128)})
		case sel < 96:
			prog = append(prog, Inst{Kind: KindAUIPC, Rd: reg(i), Imm: int64(byteAt(i + 3))})
		case sel < 98:
			// Bounded backward loop: x29 = k; { x29--; } while x29 != 0.
			// Backward branches re-enter the just-executed block, so these
			// exercise link patching and chain-following — including chains
			// cut mid-loop by small StepN batches at quantum boundaries.
			// The ANDI mask bounds the trip count even when a forward
			// branch jumps into the middle of the loop with an arbitrary
			// value already in x29.
			k := 1 + byteAt(i+3)%7
			prog = append(prog,
				Inst{Kind: KindADDI, Rd: 29, Rs1: RegZero, Imm: int64(k)},
				Inst{Kind: KindADDI, Rd: 29, Rs1: 29, Imm: -1},
				Inst{Kind: KindANDI, Rd: 29, Rs1: 29, Imm: 7},
				Inst{Kind: KindBNE, Rs1: 29, Rs2: RegZero, Imm: -8})
		default:
			prog = append(prog, Inst{Kind: KindFENCE})
		}
	}
	prog = append(prog,
		Inst{Kind: KindADDI, Rd: RegA7, Rs1: RegZero, Imm: 255},
		Inst{Kind: KindECALL})
	for _, p := range patches {
		skip := p.skip
		// Clamp so no branch can skip the a7=255 setup and reach the
		// final ecall with a bogus number.
		if p.at+1+skip > len(prog)-2 {
			skip = len(prog) - 2 - (p.at + 1)
		}
		prog[p.at].Imm = int64(4 * (1 + skip))
	}
	return prog
}

// FuzzStepN feeds random (but valid, forward-branching, memory-safe)
// instruction streams through the reference interpreter and both StepN
// lanes in lockstep.
func FuzzStepN(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add([]byte{0xFF, 0x80, 0x42, 0x13, 0x37, 0x99, 0xAA, 0x55, 0x00, 0x01, 0x23})
	// Branch-heavy seeds (several bounded backward loops each) so chained
	// execution is exercised from the seed corpus, not just mutations.
	f.Add([]byte("hotloop42"))
	f.Add([]byte("backward!"))
	f.Fuzz(func(t *testing.T, data []byte) {
		prog := fuzzProgram(data)
		mk := func() *Core {
			mem := isa.NewMem(1 << 16)
			pc := uint64(0x1000)
			for _, in := range prog {
				mem.Store(pc, 4, uint64(in.Encode()))
				pc += 4
			}
			core := NewCore(mem, nil)
			core.Hook = func(c isa.Core) isa.EcallResult {
				if c.EcallNum() == 255 {
					return isa.EcallHalt
				}
				c.SetRet(c.EcallNum() * 3)
				return isa.EcallHandled
			}
			core.SetPC(0x1000)
			core.SetStackPtr(0xF000)
			core.DebugRing = make([]uint64, 8)
			return core
		}
		batch := 1
		if len(data) > 0 {
			batch = 1 + int(data[0])%70
		}
		lockstep(t, mk, []int{batch, 1, 33}, len(prog)*4+16)
	})
}
