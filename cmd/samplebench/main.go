// Command samplebench measures SMARTS-style sampled detailed simulation
// (gemsys.Machine.RunEvalSampled) against full-detail evaluation: for each
// sampling-study workload on both ISAs it boots and checkpoints once, then
// times the evaluation phase in both modes from the same checkpoint and
// reports the wall-clock speedup plus the cold/warm CPI error of the
// extrapolated stats. Sampled runs are repeated and checked byte-identical
// — a speedup from a nondeterministic estimate would be meaningless. The
// comparison is written as JSON (BENCH_sample.json).
//
// The workloads are the scaled variants (harness.ScaledFibSpec /
// ScaledAESSpec): sampling only pays off when a stats window spans many
// sampling intervals, which the catalog-default requests (fib(30), 64-byte
// AES) never reach. See docs/perf.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"reflect"
	"runtime"
	"strings"
	"time"

	"svbench/internal/benchutil"
	"svbench/internal/figures"
	"svbench/internal/gemsys"
	"svbench/internal/harness"
	"svbench/internal/isa"
	"svbench/internal/stats"
)

const evalBudget = 600_000_000

// Each mode is timed over enough repetitions to drown out timer noise;
// repetition counts derive from accumulated wall time of the mode itself,
// so fast sampled runs simply repeat more often than full-detail ones.
const (
	minModeSec = 0.5
	maxReps    = 10
)

type row struct {
	Workload string `json:"workload"`
	Arch     string `json:"arch"`
	Config   string `json:"config"`

	FullEvalSec    float64 `json:"full_eval_sec"`
	SampledEvalSec float64 `json:"sampled_eval_sec"`
	Speedup        float64 `json:"speedup"`

	FullColdCPI    float64 `json:"full_cold_cpi"`
	SampledColdCPI float64 `json:"sampled_cold_cpi"`
	ColdErrPct     float64 `json:"cold_err_pct"`
	FullWarmCPI    float64 `json:"full_warm_cpi"`
	SampledWarmCPI float64 `json:"sampled_warm_cpi"`
	WarmErrPct     float64 `json:"warm_err_pct"`

	WarmWindows  int     `json:"warm_windows"`
	WarmCoverage float64 `json:"warm_coverage"`
}

type report struct {
	Date       string `json:"date"`
	HostCPUs   int    `json:"host_cpus"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Config     string `json:"config"`
	Workloads  int    `json:"workloads"`

	GeomeanSpeedup   float64 `json:"geomean_speedup"`
	GeomeanCPIErrPct float64 `json:"geomean_cpi_err_pct"`
	MaxCPIErrPct     float64 `json:"max_cpi_err_pct"`
	Deterministic    bool    `json:"sampled_runs_identical"`

	Rows []row `json:"rows"`
}

// evalOnce restores the checkpoint and runs one evaluation, timing only
// RunEvalSampled — restore (checkpoint copy) stays outside the clock.
func evalOnce(b *harness.Boot, ck *gemsys.Checkpoint, sc gemsys.SamplingConfig) ([]stats.Dump, float64, error) {
	if err := b.M.Restore(ck); err != nil {
		return nil, 0, fmt.Errorf("restore: %w", err)
	}
	t0 := time.Now()
	dumps, err := b.M.RunEvalSampled(evalBudget, sc)
	sec := time.Since(t0).Seconds()
	if err != nil {
		return nil, 0, err
	}
	if len(dumps) != 2 {
		return nil, 0, fmt.Errorf("got %d stat dumps, want 2", len(dumps))
	}
	return dumps, sec, nil
}

// evalTimed repeats evalOnce until the mode has accumulated minModeSec of
// timed work, returning the first repetition's dumps, the mean wall time
// per repetition, and whether every repetition produced identical dumps.
func evalTimed(b *harness.Boot, ck *gemsys.Checkpoint, sc gemsys.SamplingConfig) ([]stats.Dump, float64, bool, error) {
	var first []stats.Dump
	var total float64
	identical := true
	reps := 0
	for reps == 0 || (total < minModeSec && reps < maxReps) {
		dumps, sec, err := evalOnce(b, ck, sc)
		if err != nil {
			return nil, 0, false, err
		}
		total += sec
		reps++
		if first == nil {
			first = dumps
		} else if !reflect.DeepEqual(first, dumps) {
			identical = false
		}
	}
	return first, total / float64(reps), identical, nil
}

func geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vals {
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vals)))
}

func main() {
	var (
		out     = flag.String("out", "BENCH_sample.json", "output JSON file")
		filter  = flag.String("workloads", "", "comma-separated workload name filter (default: the sampling study set)")
		sample  = flag.String("sample", "", "sampling config override (uU-wW-dD or U,W,D; default: the tuned default)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	stopProf, err := benchutil.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "samplebench:", err)
		os.Exit(2)
	}

	sc := gemsys.DefaultSamplingConfig()
	if *sample != "" {
		sc, err = gemsys.ParseSamplingConfig(*sample)
		if err != nil || !sc.Enabled() {
			fmt.Fprintf(os.Stderr, "samplebench: -sample: %v\n", err)
			os.Exit(2)
		}
	}

	keep := map[string]bool{}
	for _, n := range strings.Split(*filter, ",") {
		if n = strings.TrimSpace(n); n != "" {
			keep[n] = true
		}
	}

	rep := report{
		Date:          time.Now().UTC().Format(time.RFC3339),
		HostCPUs:      runtime.NumCPU(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Config:        sc.String(),
		Deterministic: true,
	}
	var speedups, errs []float64
	for _, arch := range []isa.Arch{isa.RV64, isa.CISC64} {
		for _, spec := range figures.SamplingSpecs() {
			if len(keep) > 0 && !keep[spec.Name] {
				continue
			}
			b, err := harness.BootSpec(gemsys.DefaultConfig(arch), spec)
			if err != nil {
				fmt.Fprintf(os.Stderr, "samplebench: %s/%s: %v\n", spec.Name, arch, err)
				os.Exit(1)
			}
			ck, err := b.Setup()
			if err != nil {
				fmt.Fprintf(os.Stderr, "samplebench: %s/%s: %v\n", spec.Name, arch, err)
				os.Exit(1)
			}
			fullDumps, fullSec, _, err := evalTimed(b, ck, gemsys.SamplingConfig{})
			if err != nil {
				fmt.Fprintf(os.Stderr, "samplebench: %s/%s full: %v\n", spec.Name, arch, err)
				os.Exit(1)
			}
			sampDumps, sampSec, identical, err := evalTimed(b, ck, sc)
			if err != nil {
				fmt.Fprintf(os.Stderr, "samplebench: %s/%s sampled: %v\n", spec.Name, arch, err)
				os.Exit(1)
			}
			if !identical {
				rep.Deterministic = false
				fmt.Fprintf(os.Stderr, "samplebench: DIVERGENCE %s/%s: repeated sampled runs differ\n",
					spec.Name, arch)
			}
			fullCold, fullWarm := fullDumps[0].Server(), fullDumps[1].Server()
			sampCold, sampWarm := sampDumps[0].Server(), sampDumps[1].Server()
			r := row{
				Workload:       spec.Name,
				Arch:           string(arch),
				Config:         sc.String(),
				FullEvalSec:    fullSec,
				SampledEvalSec: sampSec,
				Speedup:        fullSec / sampSec,
				FullColdCPI:    fullCold.CPI(),
				SampledColdCPI: sampCold.CPI(),
				ColdErrPct:     100 * (sampCold.CPI() - fullCold.CPI()) / fullCold.CPI(),
				FullWarmCPI:    fullWarm.CPI(),
				SampledWarmCPI: sampWarm.CPI(),
				WarmErrPct:     100 * (sampWarm.CPI() - fullWarm.CPI()) / fullWarm.CPI(),
			}
			if sm := sampDumps[1].ServerSampling(); sm != nil {
				r.WarmWindows = sm.Windows
				r.WarmCoverage = sm.Coverage()
			}
			speedups = append(speedups, r.Speedup)
			// The geomean of |err| collapses to zero the moment one window
			// lands exactly; floor each term at 0.01% so a lucky hit cannot
			// mask the others.
			for _, e := range []float64{r.ColdErrPct, r.WarmErrPct} {
				a := math.Abs(e)
				if a < 0.01 {
					a = 0.01
				}
				errs = append(errs, a)
				if a > rep.MaxCPIErrPct {
					rep.MaxCPIErrPct = a
				}
			}
			rep.Rows = append(rep.Rows, r)
			fmt.Printf("%-22s %-7s eval %6.3fs → %6.3fs (%.2fx)   cold CPI %.3f → %.3f (%+.1f%%)   warm %.3f → %.3f (%+.1f%%)   windows=%d\n",
				spec.Name, arch, r.FullEvalSec, r.SampledEvalSec, r.Speedup,
				r.FullColdCPI, r.SampledColdCPI, r.ColdErrPct,
				r.FullWarmCPI, r.SampledWarmCPI, r.WarmErrPct, r.WarmWindows)
		}
	}
	rep.Workloads = len(rep.Rows)
	rep.GeomeanSpeedup = geomean(speedups)
	rep.GeomeanCPIErrPct = geomean(errs)

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "samplebench:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "samplebench:", err)
		os.Exit(1)
	}
	f.Close()
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "samplebench:", err)
		os.Exit(1)
	}
	fmt.Printf("geomean: speedup %.2fx, CPI error %.2f%% (max %.2f%%), %s → %s\n",
		rep.GeomeanSpeedup, rep.GeomeanCPIErrPct, rep.MaxCPIErrPct, rep.Config, *out)
	if !rep.Deterministic {
		fmt.Fprintln(os.Stderr, "samplebench: repeated sampled runs diverged")
		os.Exit(1)
	}
}
