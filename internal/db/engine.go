// Package db implements the datastore substrates the Hotel application
// depends on, as working in-memory engines: a Cassandra model (LSM tree
// with memtable, SSTable flushes, leveled compaction, row cache and a slow
// token-ring boot — §3.3.3), a MongoDB model (BSON-style documents over a
// B-tree primary index), a Memcached model (sharded LRU cache) and a
// MariaDB model (relational rows with a primary-key index). Engines attach
// to the simulated machine as native services on the unmeasured core; a
// per-engine cost model charges virtual service cycles.
package db

// Pair is one key/value result.
type Pair struct {
	Key string
	Val []byte
}

// Store is the common key-value surface the wire service exposes.
type Store interface {
	// Get returns the value for key in table.
	Get(table, key string) ([]byte, bool)
	// Put stores val under key in table.
	Put(table, key string, val []byte)
	// Scan returns up to limit pairs whose key has the given prefix, in
	// key order.
	Scan(table, prefix string, limit int) []Pair
	// Name identifies the engine ("cassandra", "mongodb", ...).
	Name() string
}

// CostModel converts an operation into virtual service cycles, standing in
// for the database's processing time on the unmeasured core.
type CostModel struct {
	GetBase, PutBase, ScanBase uint64
	PerByte                    uint64
	PerExtra                   uint64 // per SSTable probed / index node visited
	PerRow                     uint64 // per row returned by a scan
}

func (c CostModel) get(bytes, extra int) uint64 {
	return c.GetBase + c.PerByte*uint64(bytes) + c.PerExtra*uint64(extra)
}

func (c CostModel) put(bytes int) uint64 {
	return c.PutBase + c.PerByte*uint64(bytes)
}

func (c CostModel) scan(bytes, rows int) uint64 {
	return c.ScanBase + c.PerByte*uint64(bytes) + c.PerRow*uint64(rows)
}
