package gemsys

import (
	"errors"
	"strings"
	"testing"

	"svbench/internal/ir"
	"svbench/internal/isa"
	"svbench/internal/kernel"
)

// panicMod builds a program that trips the kernel's panic host call (the
// path stack-smash detection uses).
func panicMod() *ir.Module {
	m := ir.NewModule("panicker")
	b := ir.NewFunc("main", 2)
	b.EcallV(kernel.HPanic)
	b.Ret0()
	m.AddFunc(b.Build())
	return m
}

func TestPanicSurfacesInFunctionalRun(t *testing.T) {
	mach, err := New(DefaultConfig(isa.RV64))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mach.Spawn("victim", panicMod(), "main", 0, nil); err != nil {
		t.Fatal(err)
	}
	err = mach.RunFunctional(1_000_000)
	if err == nil {
		t.Fatal("simulated panic did not surface as an error")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not *PanicError: %v", err, err)
	}
	if !strings.Contains(pe.Info, "victim") {
		t.Fatalf("PanicInfo %q does not name the panicking process", pe.Info)
	}
	if !strings.Contains(err.Error(), "simulated panic") {
		t.Fatalf("message %q does not mention the panic", err.Error())
	}
}

func TestPanicSurfacesInSetup(t *testing.T) {
	mach, err := New(DefaultConfig(isa.RV64))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mach.Spawn("victim", panicMod(), "main", 0, nil); err != nil {
		t.Fatal(err)
	}
	err = mach.RunSetup(1_000_000)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("setup error %T is not *PanicError: %v", err, err)
	}
}
