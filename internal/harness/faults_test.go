package harness

import (
	"bytes"
	"errors"
	"testing"

	"svbench/internal/faults"
	"svbench/internal/gemsys"
	"svbench/internal/isa"
	"svbench/internal/trace"
)

// findSpec pulls one named spec from the catalog.
func findSpec(t *testing.T, name string) Spec {
	t.Helper()
	for _, sp := range StandaloneSpecs() {
		if sp.Name == name {
			return sp
		}
	}
	t.Fatalf("spec %q not in catalog", name)
	return Spec{}
}

func TestRequestsValidation(t *testing.T) {
	sp := findSpec(t, "fibonacci-go")
	sp.Requests = 1
	_, err := Run(isa.RV64, sp)
	if err == nil {
		t.Fatal("Requests=1 was accepted")
	}
	var ee *ExperimentError
	if !errors.As(err, &ee) {
		t.Fatalf("error %T is not *ExperimentError: %v", err, err)
	}
	if ee.Phase != "spec" {
		t.Fatalf("phase = %q, want \"spec\" (%v)", ee.Phase, err)
	}
}

// TestChaosDeterminism is the seed-determinism guarantee: the same spec
// under the same fault plan twice must produce bit-identical fault
// ledgers and cycle counts.
func TestChaosDeterminism(t *testing.T) {
	run := func(seed uint64) *Result {
		sp := findSpec(t, "fibonacci-go")
		sp.Faults = faults.DefaultPlan(seed)
		sp.Retry = faults.DefaultRetry()
		r, err := Run(isa.RV64, sp)
		if err != nil {
			t.Fatalf("chaos run failed: %v", err)
		}
		if r.FaultReport == nil {
			t.Fatal("no FaultReport on a faulted run")
		}
		return r
	}
	a, b := run(11), run(11)
	if *a.FaultReport != *b.FaultReport {
		t.Fatalf("same seed, different fault reports:\n  %+v\n  %+v", *a.FaultReport, *b.FaultReport)
	}
	if a.Cold.Cycles != b.Cold.Cycles || a.Warm.Cycles != b.Warm.Cycles {
		t.Fatalf("same seed, different cycles: cold %d/%d warm %d/%d",
			a.Cold.Cycles, b.Cold.Cycles, a.Warm.Cycles, b.Warm.Cycles)
	}
	// Different seeds must (with these rule probabilities) diverge.
	c := run(12)
	if *a.FaultReport == *c.FaultReport && a.Cold.Cycles == c.Cold.Cycles {
		t.Fatal("seeds 11 and 12 produced identical runs")
	}
}

// TestChaosTraceDeterminism extends the seed-determinism guarantee to
// the observability exports: the same chaos spec with tracing on, run
// twice with the same seed, must emit byte-identical Chrome trace JSON
// and stats text.
func TestChaosTraceDeterminism(t *testing.T) {
	run := func() *Result {
		sp := findSpec(t, "fibonacci-go")
		sp.Faults = faults.DefaultPlan(11)
		sp.Retry = faults.DefaultRetry()
		sp.Trace = trace.Options{Enabled: true}
		r, err := Run(isa.RV64, sp)
		if err != nil {
			t.Fatalf("chaos trace run failed: %v", err)
		}
		return r
	}
	a, b := run(), run()
	if len(a.TraceJSON) == 0 {
		t.Fatal("trace-enabled run produced no trace JSON")
	}
	if !bytes.Equal(a.TraceJSON, b.TraceJSON) {
		t.Fatal("same seed, different trace JSON bytes")
	}
	if a.StatsText == "" || a.StatsText != b.StatsText {
		t.Fatal("same seed, different stats text")
	}
	if a.Profile == nil || a.Profile.Table() != b.Profile.Table() {
		t.Fatal("same seed, different profiles")
	}
}

// TestOutageRecovery drives a service outage through the retry loop: the
// hotel geo function's database fails for a window of requests, the
// injected bad replies trip the response check, and the compiled retry
// loop re-issues until the window passes.
func TestOutageRecovery(t *testing.T) {
	sp := HotelSpec("geo", EngineCassandra)
	sp.Faults = &faults.Plan{
		Seed: 1,
		Rules: []faults.Rule{
			{Kind: faults.Outage, Service: "cassandra", After: 1, For: 2},
		},
	}
	sp.Retry = faults.DefaultRetry()
	r, err := Run(isa.RV64, sp)
	if err != nil {
		t.Fatalf("run with outage + retry failed (Check should pass after recovery): %v", err)
	}
	rep := r.FaultReport
	if rep == nil {
		t.Fatal("no FaultReport")
	}
	if rep.Outages == 0 {
		t.Fatalf("outage window never fired: %+v", *rep)
	}
	if rep.Retried == 0 {
		t.Fatalf("client never retried: %+v", *rep)
	}
	if rep.Recovered == 0 {
		t.Fatalf("client never recovered: %+v", *rep)
	}
	if rep.Exhausted != 0 {
		t.Fatalf("requests exhausted despite recovery window: %+v", *rep)
	}
}

// TestRetryAccountingLastAttemptSuccess pins the retry ledger for the
// boundary case the accounting audit targeted: a request that fails on
// every attempt but the last. With MaxAttempts=4 and an outage window
// covering exactly the first three attempts, the request must count as
// recovered (never exhausted), with one retry per failed attempt and no
// retries charged to any healthy request. The outage window is addressed
// in served-request space, which starts counting during setup, so the
// test first probes the spec's setup-phase service request count.
func TestRetryAccountingLastAttemptSuccess(t *testing.T) {
	probe, err := BootSpec(gemsys.DefaultConfig(isa.RV64), HotelSpec("geo", EngineCassandra))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := probe.Setup(); err != nil {
		t.Fatal(err)
	}
	setupReqs := int(probe.setupSvcReqs)

	retry := faults.DefaultRetry() // 4 attempts
	fails := retry.MaxAttempts - 1
	sp := HotelSpec("geo", EngineCassandra)
	sp.Faults = &faults.Plan{
		Seed: 1,
		Rules: []faults.Rule{
			{Kind: faults.Outage, Service: "cassandra", After: setupReqs, For: fails},
		},
	}
	sp.Retry = retry
	r, err := Run(isa.RV64, sp)
	if err != nil {
		t.Fatalf("run recovering on the final attempt failed: %v", err)
	}
	rep := r.FaultReport
	if rep == nil {
		t.Fatal("no FaultReport")
	}
	if rep.Outages != uint64(fails) {
		t.Fatalf("outage served %d requests, want %d: %+v", rep.Outages, fails, *rep)
	}
	if rep.Exhausted != 0 {
		t.Fatalf("final-attempt success counted as exhausted: %+v", *rep)
	}
	if rep.Recovered != 1 {
		t.Fatalf("recovered = %d, want exactly 1: %+v", rep.Recovered, *rep)
	}
	if rep.Retried != uint64(fails) {
		t.Fatalf("retried = %d, want %d (one per failed attempt): %+v", rep.Retried, fails, *rep)
	}
	if rep.BadReplies != uint64(fails) || rep.Surfaced != uint64(fails) {
		t.Fatalf("bad replies/surfaced = %d/%d, want %d/%d: %+v",
			rep.BadReplies, rep.Surfaced, fails, fails, *rep)
	}
	if rep.Timeouts != 0 {
		t.Fatalf("outage error replies misclassified as timeouts: %+v", *rep)
	}
}

// TestRetryBudgetUntouchedWithoutFaults pins the other half of the
// accounting audit: under an armed but empty fault plan, the compiled
// retry loop's polling must not consume any retry budget — every
// first-attempt reply passes the check, so the whole ledger stays zero.
func TestRetryBudgetUntouchedWithoutFaults(t *testing.T) {
	sp := findSpec(t, "fibonacci-go")
	sp.Faults = &faults.Plan{Seed: 1} // armed injector, no rules
	sp.Retry = faults.DefaultRetry()
	r, err := Run(isa.RV64, sp)
	if err != nil {
		t.Fatalf("retry-compiled run without faults failed: %v", err)
	}
	rep := r.FaultReport
	if rep == nil {
		t.Fatal("no FaultReport")
	}
	if *rep != (faults.Report{}) {
		t.Fatalf("faultless run under a retry policy charged the ledger: %+v", *rep)
	}
}

// TestBaselineUnchanged pins the no-faults path: a spec without a plan
// must report no fault ledger and produce the same measurements as the
// seed methodology (cold slower than warm, both non-zero).
func TestBaselineUnchanged(t *testing.T) {
	sp := findSpec(t, "fibonacci-go")
	r, err := Run(isa.RV64, sp)
	if err != nil {
		t.Fatalf("baseline run failed: %v", err)
	}
	if r.FaultReport != nil {
		t.Fatalf("baseline run grew a FaultReport: %+v", *r.FaultReport)
	}
	if r.Cold.Cycles == 0 || r.Warm.Cycles == 0 || r.Cold.Cycles <= r.Warm.Cycles {
		t.Fatalf("implausible baseline: cold=%d warm=%d", r.Cold.Cycles, r.Warm.Cycles)
	}
}
