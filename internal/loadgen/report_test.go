package loadgen

import (
	"strings"
	"testing"

	"svbench/internal/faults"
)

// TestTableEchoesDefaultedPoolCap pins the rendered policy line: a
// config that leaves MaxInstances zero must echo the effective
// DefaultMaxInstances, the same way the Burst echo resolves its default
// — not "pool cap 0". The report is hand-built, since Run keeps the
// user's config verbatim in Report.Cfg.
func TestTableEchoesDefaultedPoolCap(t *testing.T) {
	r := &Report{Cfg: Config{KeepAlive: 10_000_000}}
	want := "policy       keep-alive 10.000 ms, pool cap 4\n"
	if !strings.Contains(r.Table(), want) {
		t.Fatalf("defaulted pool cap not resolved in table:\n%s", r.Table())
	}
	if strings.Contains(r.Table(), "pool cap 0") {
		t.Fatalf("table echoes the raw zero cap:\n%s", r.Table())
	}

	r.Cfg.MaxInstances = 7
	if !strings.Contains(r.Table(), "pool cap 7\n") {
		t.Fatalf("explicit pool cap not echoed:\n%s", r.Table())
	}
}

// TestRunKeepsConfigVerbatim pins that Run no longer mutates the echoed
// config: a defaulted MaxInstances stays zero in Report.Cfg while the
// engine still enforces the default cap.
func TestRunKeepsConfigVerbatim(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxInstances = 0
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cfg.MaxInstances != 0 {
		t.Fatalf("Run mutated Cfg.MaxInstances to %d", rep.Cfg.MaxInstances)
	}
	if rep.Cfg.PoolCap() != DefaultMaxInstances {
		t.Fatalf("PoolCap() = %d, want %d", rep.Cfg.PoolCap(), DefaultMaxInstances)
	}
	if rep.PeakInstances > DefaultMaxInstances {
		t.Fatalf("peak %d exceeds the default cap", rep.PeakInstances)
	}
}

// TestThroughputCountsOnlyCompletions pins the Throughput doc contract
// ("completions per virtual second"): failed invocations must not count.
// A chaos window fails part of the run outright (no retry policy), so
// Failed > 0 while others complete.
func TestThroughputCountsOnlyCompletions(t *testing.T) {
	cfg := testConfig(t)
	hook := &timedFault{start: 0, end: 20_000_000, f: faults.AttemptFault{ErrorReply: true}}
	cfg.Chaos = hook
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed == 0 {
		t.Fatal("window failed nothing; test needs Failed > 0")
	}
	completions := 0
	for _, inv := range rep.Invocations {
		if !inv.Failed {
			completions++
		}
	}
	if completions == 0 {
		t.Fatal("every invocation failed; test needs a mixed run")
	}
	want := float64(completions) * 1e9 / float64(rep.Makespan)
	if rep.Throughput != want {
		t.Fatalf("throughput %g counts failed invocations (want %g over %d completions, %d failed)",
			rep.Throughput, want, completions, rep.Failed)
	}
	old := float64(len(rep.Invocations)) * 1e9 / float64(rep.Makespan)
	if rep.Throughput >= old {
		t.Fatalf("throughput %g not below the all-invocations rate %g despite %d failures",
			rep.Throughput, old, rep.Failed)
	}
}

// TestPctsExactNearestRank is the table-driven boundary test for the
// nearest-rank index: ceil(p·n) computed in exact integer arithmetic.
// The old float expression (p·n + 0.999999) could misrank at large n.
func TestPctsExactNearestRank(t *testing.T) {
	seq := func(n int) []uint64 {
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = uint64(i + 1) // sorted: value k has rank k
		}
		return vals
	}
	cases := []struct {
		name          string
		n             int
		p50, p95, p99 uint64
	}{
		{"n=1: every percentile is the single value", 1, 1, 1, 1},
		{"n=2", 2, 1, 2, 2},
		{"n=100: rank = percentile exactly", 100, 50, 95, 99},
		{"n=101", 101, 51, 96, 100},
		{"n=1e6: large-n ranks stay exact", 1_000_000, 500_000, 950_000, 990_000},
	}
	for _, tc := range cases {
		p := pcts(seq(tc.n))
		if p.P50 != tc.p50 || p.P95 != tc.p95 || p.P99 != tc.p99 {
			t.Errorf("%s: got p50/p95/p99 = %d/%d/%d, want %d/%d/%d",
				tc.name, p.P50, p.P95, p.P99, tc.p50, tc.p95, tc.p99)
		}
		if p.Max != uint64(tc.n) {
			t.Errorf("%s: max = %d, want %d", tc.name, p.Max, tc.n)
		}
	}
	if got := pcts(nil); got != (Pcts{}) {
		t.Errorf("empty input: got %+v, want zero", got)
	}
}

// TestColdRateBoundedUnderRetries pins ColdRate's definition over
// invocations with Cold set. Keep-alive zero makes every attempt that
// reaches the pool cold-start, and a retry policy under an always-on
// error-reply window re-sends attempts — so the attempt-level ColdStarts
// counter exceeds the invocation count, which the old
// ColdStarts/invocations formula turned into a rate above 1.0.
func TestColdRateBoundedUnderRetries(t *testing.T) {
	cfg := testConfig(t)
	cfg.RPS = 100
	cfg.Duration = 20_000_000
	cfg.KeepAlive = 0
	cfg.Retry = &faults.Retry{MaxAttempts: 3, Backoff: 1_000_000, Deadline: 10_000_000}
	cfg.Chaos = &timedFault{start: 0, end: ^uint64(0), f: faults.AttemptFault{ErrorReply: true}}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := len(rep.Invocations)
	if n == 0 || rep.Retries == 0 {
		t.Fatalf("run produced no retries (%d invocations)", n)
	}
	if rep.ColdStarts <= uint64(n) {
		t.Fatalf("test needs attempt-level cold starts (%d) above invocations (%d) to pin the regression",
			rep.ColdStarts, n)
	}
	oldRate := float64(rep.ColdStarts) / float64(n)
	if oldRate <= 1 {
		t.Fatalf("old formula gives %g, expected > 1 under retries", oldRate)
	}
	rate := rep.ColdRate()
	if rate < 0 || rate > 1 {
		t.Fatalf("ColdRate() = %g, must stay in [0, 1]", rate)
	}
	cold := 0
	for _, inv := range rep.Invocations {
		if inv.Cold {
			cold++
		}
	}
	if want := float64(cold) / float64(n); rate != want {
		t.Fatalf("ColdRate() = %g, want %g (%d of %d invocations cold)", rate, want, cold, n)
	}
}
