package ir

import "fmt"

// Inline returns a copy of fn with every OpCall expanded into the callee's
// body (transitively). It is used by the bytecode compiler in the language
// runtimes, whose virtual machine executes flat, intraprocedural bytecode —
// mirroring how small serverless handlers are flattened by e.g. a tracing
// JIT. Recursive call chains are rejected.
//
// Frame buffers of inlined callees are hoisted into the caller with
// uniquified names. Ecalls are preserved as-is.
func Inline(m *Module, fn *Function) (*Function, error) {
	out := &Function{
		Name:    fn.Name + ".flat",
		NParams: fn.NParams,
	}
	var seen []string
	nregs, err := inlineInto(m, fn, out, nil, &seen, 0)
	if err != nil {
		return nil, err
	}
	out.NRegs = nregs
	return out, nil
}

// inlineInto appends f's body to out. argRegs maps f's parameters to
// caller registers (nil for the root function). Returns the running
// register high-water mark.
func inlineInto(m *Module, f *Function, out *Function, argRegs []Reg, seen *[]string, regBase int) (int, error) {
	for _, s := range *seen {
		if s == f.Name {
			return 0, fmt.Errorf("ir: inline: recursive call to %s", f.Name)
		}
	}
	*seen = append(*seen, f.Name)
	defer func() { *seen = (*seen)[:len(*seen)-1] }()

	// Register remapping: parameters map to caller-provided registers;
	// everything else shifts up by regBase.
	remap := func(r Reg) Reg {
		if r == NoReg {
			return NoReg
		}
		if argRegs != nil && int(r) < f.NParams {
			return argRegs[r]
		}
		return Reg(int(r) + regBase)
	}
	high := regBase + f.NRegs

	// Hoist frame buffers with unique names.
	bufPrefix := fmt.Sprintf("i%d.", len(out.Code))
	bufName := map[string]string{}
	for _, bf := range f.Bufs {
		nn := bufPrefix + bf.Name
		bufName[bf.Name] = nn
		out.Bufs = append(out.Bufs, Buffer{Name: nn, Size: bf.Size})
	}

	base := len(out.Code)
	// First pass: copy instructions, expanding calls. Record a mapping
	// from callee instruction index to out index for branch fixup.
	idxMap := make([]int, len(f.Code)+1)
	type fix struct{ outIdx, tgt int }
	var fixes []fix
	endLabelUses := []int{} // OpRet sites turned into jumps to the end

	for i, in := range f.Code {
		idxMap[i] = len(out.Code)
		switch in.Op {
		case OpCall:
			callee := m.Func(in.Sym)
			if callee == nil {
				return 0, fmt.Errorf("ir: inline: unknown callee %s", in.Sym)
			}
			if callee.Lib {
				// Library calls stay calls: interpreted runtimes invoke
				// them as native builtins, mirroring CPython's C calls.
				out.Code = append(out.Code, remapInstr(in, remap, bufName))
				continue
			}
			// Materialize args into the callee's (remapped) param regs.
			cArgs := make([]Reg, callee.NParams)
			for ai := 0; ai < callee.NParams; ai++ {
				pr := Reg(high + ai)
				var src Reg
				if ai < len(in.Args) {
					src = remap(in.Args[ai])
				} else {
					src = NoReg
				}
				if src == NoReg {
					out.Code = append(out.Code, Instr{Op: OpConst, Dst: pr, Imm: 0})
				} else {
					out.Code = append(out.Code, Instr{Op: OpMov, Dst: pr, A: src})
				}
				cArgs[ai] = pr
			}
			childBase := high + callee.NParams
			h2, err := inlineCallee(m, callee, out, cArgs, remap(in.Dst), seen, childBase)
			if err != nil {
				return 0, err
			}
			if h2 > high {
				high = h2
			}
		case OpBr, OpBrI, OpJmp:
			out.Code = append(out.Code, remapInstr(in, remap, bufName))
			fixes = append(fixes, fix{len(out.Code) - 1, in.Tgt})
		case OpRet:
			if argRegs == nil {
				// Root function: keep the return.
				out.Code = append(out.Code, remapInstr(in, remap, bufName))
			} else {
				panic("ir: inlineInto root reached callee path") // handled in inlineCallee
			}
		default:
			out.Code = append(out.Code, remapInstr(in, remap, bufName))
		}
	}
	idxMap[len(f.Code)] = len(out.Code)
	_ = endLabelUses
	_ = base
	for _, fx := range fixes {
		out.Code[fx.outIdx].Tgt = idxMap[fx.tgt]
	}
	return high, nil
}

// inlineCallee splices callee's body into out, turning returns into
// assignments to dst plus jumps past the spliced body.
func inlineCallee(m *Module, f *Function, out *Function, argRegs []Reg, dst Reg, seen *[]string, regBase int) (int, error) {
	for _, s := range *seen {
		if s == f.Name {
			return 0, fmt.Errorf("ir: inline: recursive call to %s", f.Name)
		}
	}
	*seen = append(*seen, f.Name)
	defer func() { *seen = (*seen)[:len(*seen)-1] }()

	remap := func(r Reg) Reg {
		if r == NoReg {
			return NoReg
		}
		if int(r) < f.NParams {
			return argRegs[r]
		}
		return Reg(int(r) + regBase)
	}
	high := regBase + f.NRegs

	bufPrefix := fmt.Sprintf("i%d.", len(out.Code))
	bufName := map[string]string{}
	for _, bf := range f.Bufs {
		nn := bufPrefix + bf.Name
		bufName[bf.Name] = nn
		out.Bufs = append(out.Bufs, Buffer{Name: nn, Size: bf.Size})
	}

	idxMap := make([]int, len(f.Code)+1)
	type fix struct{ outIdx, tgt int }
	var fixes []fix
	var retJumps []int

	for i, in := range f.Code {
		idxMap[i] = len(out.Code)
		switch in.Op {
		case OpCall:
			callee := m.Func(in.Sym)
			if callee == nil {
				return 0, fmt.Errorf("ir: inline: unknown callee %s", in.Sym)
			}
			if callee.Lib {
				out.Code = append(out.Code, remapInstr(in, remap, bufName))
				continue
			}
			cArgs := make([]Reg, callee.NParams)
			for ai := 0; ai < callee.NParams; ai++ {
				pr := Reg(high + ai)
				if ai < len(in.Args) && remap(in.Args[ai]) != NoReg {
					out.Code = append(out.Code, Instr{Op: OpMov, Dst: pr, A: remap(in.Args[ai])})
				} else {
					out.Code = append(out.Code, Instr{Op: OpConst, Dst: pr, Imm: 0})
				}
				cArgs[ai] = pr
			}
			childBase := high + callee.NParams
			h2, err := inlineCallee(m, callee, out, cArgs, remap(in.Dst), seen, childBase)
			if err != nil {
				return 0, err
			}
			if h2 > high {
				high = h2
			}
		case OpBr, OpBrI, OpJmp:
			out.Code = append(out.Code, remapInstr(in, remap, bufName))
			fixes = append(fixes, fix{len(out.Code) - 1, in.Tgt})
		case OpRet:
			if dst != NoReg {
				if in.A == NoReg {
					out.Code = append(out.Code, Instr{Op: OpConst, Dst: dst, Imm: 0})
				} else {
					out.Code = append(out.Code, Instr{Op: OpMov, Dst: dst, A: remap(in.A)})
				}
			}
			out.Code = append(out.Code, Instr{Op: OpJmp})
			retJumps = append(retJumps, len(out.Code)-1)
		default:
			out.Code = append(out.Code, remapInstr(in, remap, bufName))
		}
	}
	idxMap[len(f.Code)] = len(out.Code)
	for _, fx := range fixes {
		out.Code[fx.outIdx].Tgt = idxMap[fx.tgt]
	}
	end := len(out.Code)
	for _, rj := range retJumps {
		out.Code[rj].Tgt = end
	}
	return high, nil
}

func remapInstr(in Instr, remap func(Reg) Reg, bufName map[string]string) Instr {
	cp := in
	cp.Dst = remap(in.Dst)
	cp.A = remap(in.A)
	cp.B = remap(in.B)
	if len(in.Args) > 0 {
		cp.Args = make([]Reg, len(in.Args))
		for i, a := range in.Args {
			cp.Args[i] = remap(a)
		}
	}
	if in.Op == OpFrame {
		if nn, ok := bufName[in.Sym]; ok {
			cp.Sym = nn
		}
	}
	return cp
}
