// Package cisc implements CISC64, the x86-class instruction set model used
// as the comparison ISA: variable-length byte encodings, two-operand ALU
// forms, condition flags, push/pop stack linkage, and a code generator that
// models the dynamically-linked software stacks the thesis measured on x86
// (frame pointers, stack-protector canaries, PLT/GOT call indirection).
package cisc

import "fmt"

// Kind enumerates CISC64 instructions.
type Kind uint8

// Instruction kinds.
const (
	KindInvalid Kind = iota
	KindMOVri        // dst = imm64          [op mod imm64]     10 bytes
	KindMOVri32      // dst = signext(imm32) [op mod imm32]      6 bytes
	KindMOVrr        // dst = src            [op mod]             2 bytes
	KindADD          // two-operand ALU: dst = dst op src         2 bytes
	KindSUB
	KindMUL
	KindDIV
	KindREM
	KindDIVU
	KindREMU
	KindAND
	KindOR
	KindXOR
	KindSHL
	KindSHR
	KindSAR
	KindADDri32 // dst += imm32  [op mod imm32] 6 bytes
	KindANDri32
	KindORri32
	KindXORri32
	KindMULri32
	KindSHLri8 // dst <<= imm8 [op mod imm8] 3 bytes
	KindSHRri8
	KindSARri8
	KindLDB // dst = mem[src+disp32], sign-extended [op mod disp32] 6 bytes
	KindLDBU
	KindLDH
	KindLDHU
	KindLDW
	KindLDWU
	KindLDQ
	KindSTB // mem[dst+disp32] = src [op mod disp32] 6 bytes
	KindSTH
	KindSTW
	KindSTQ
	KindCMPrr   // flags = compare(dst, src) [op mod] 2 bytes
	KindCMPri32 // flags = compare(dst, imm32) [op mod imm32] 6 bytes
	KindJE      // conditional jumps [op rel32] 5 bytes
	KindJNE
	KindJL
	KindJLE
	KindJG
	KindJGE
	KindJB
	KindJAE
	KindSETE // dst = flags cond [op mod] 2 bytes
	KindSETNE
	KindSETL
	KindSETLE
	KindSETG
	KindSETGE
	KindSETB
	KindSETAE
	KindJMP     // [op rel32] 5 bytes
	KindCALL    // push ret; jump [op rel32] 5 bytes
	KindCALLr   // indirect call through src [op mod] 2 bytes
	KindJMPr    // indirect jump through src [op mod] 2 bytes
	KindRET     // pop and jump [op] 1 byte
	KindPUSH    // [op mod] 2 bytes
	KindPOP     // [op mod] 2 bytes
	KindLEA     // dst = src + disp32 [op mod disp32] 6 bytes
	KindSYSCALL // [op] 1 byte
	KindNOP     // [op] 1 byte
	KindFENCE   // [op] 1 byte
	kindCount
)

var kindNames = [...]string{
	"invalid", "movri", "movri32", "movrr",
	"add", "sub", "mul", "div", "rem", "divu", "remu", "and", "or", "xor",
	"shl", "shr", "sar",
	"addri32", "andri32", "orri32", "xorri32", "mulri32", "shlri8", "shrri8", "sarri8",
	"ldb", "ldbu", "ldh", "ldhu", "ldw", "ldwu", "ldq",
	"stb", "sth", "stw", "stq",
	"cmprr", "cmpri32",
	"je", "jne", "jl", "jle", "jg", "jge", "jb", "jae",
	"sete", "setne", "setl", "setle", "setg", "setge", "setb", "setae",
	"jmp", "call", "callr", "jmpr", "ret", "push", "pop", "lea",
	"syscall", "nop", "fence",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Architectural registers.
const (
	RAX = 0
	RCX = 1
	RDX = 2
	RBX = 3
	RSP = 4
	RBP = 5
	RSI = 6
	RDI = 7
	R8  = 8
	R9  = 9
	R10 = 10
	R11 = 11
	R12 = 12
	R13 = 13
	R14 = 14
	R15 = 15
	// RegFlags is the pseudo-register carrying condition flags in trace
	// dependence records.
	RegFlags = 16
)

// Inst is a decoded instruction. Size is its encoded length in bytes.
type Inst struct {
	Kind Kind
	Dst  uint8
	Src  uint8
	Imm  int64
	Size uint8
}

type encForm uint8

const (
	formOp     encForm = iota // [op]                     1 byte
	formMod                   // [op mod]                 2 bytes
	formModI8                 // [op mod imm8]            3 bytes
	formModI32                // [op mod imm32]           6 bytes
	formModI64                // [op mod imm64]          10 bytes
	formRel32                 // [op rel32]               5 bytes
)

var kindForm = map[Kind]encForm{
	KindMOVri: formModI64, KindMOVri32: formModI32, KindMOVrr: formMod,
	KindADD: formMod, KindSUB: formMod, KindMUL: formMod, KindDIV: formMod,
	KindREM: formMod, KindDIVU: formMod, KindREMU: formMod, KindAND: formMod,
	KindOR: formMod, KindXOR: formMod, KindSHL: formMod, KindSHR: formMod,
	KindSAR:     formMod,
	KindADDri32: formModI32, KindANDri32: formModI32, KindORri32: formModI32,
	KindXORri32: formModI32, KindMULri32: formModI32,
	KindSHLri8: formModI8, KindSHRri8: formModI8, KindSARri8: formModI8,
	KindLDB: formModI32, KindLDBU: formModI32, KindLDH: formModI32,
	KindLDHU: formModI32, KindLDW: formModI32, KindLDWU: formModI32,
	KindLDQ: formModI32,
	KindSTB: formModI32, KindSTH: formModI32, KindSTW: formModI32,
	KindSTQ:   formModI32,
	KindCMPrr: formMod, KindCMPri32: formModI32,
	KindJE: formRel32, KindJNE: formRel32, KindJL: formRel32, KindJLE: formRel32,
	KindJG: formRel32, KindJGE: formRel32, KindJB: formRel32, KindJAE: formRel32,
	KindSETE: formMod, KindSETNE: formMod, KindSETL: formMod, KindSETLE: formMod,
	KindSETG: formMod, KindSETGE: formMod, KindSETB: formMod, KindSETAE: formMod,
	KindJMP: formRel32, KindCALL: formRel32, KindCALLr: formMod, KindJMPr: formMod,
	KindRET: formOp, KindPUSH: formMod, KindPOP: formMod, KindLEA: formModI32,
	KindSYSCALL: formOp, KindNOP: formOp, KindFENCE: formOp,
}

func formSize(f encForm) uint8 {
	switch f {
	case formOp:
		return 1
	case formMod:
		return 2
	case formModI8:
		return 3
	case formModI32:
		return 6
	case formModI64:
		return 10
	case formRel32:
		return 5
	}
	panic("cisc: bad form")
}

// Size returns the encoded length in bytes for kind k.
func Size(k Kind) uint8 { return formSize(kindForm[k]) }

// Encode appends the instruction's encoding to buf.
func (in Inst) Encode(buf []byte) []byte {
	f, ok := kindForm[in.Kind]
	if !ok {
		panic("cisc: cannot encode " + in.Kind.String())
	}
	buf = append(buf, byte(in.Kind))
	mod := byte(in.Dst&0xF)<<4 | byte(in.Src&0xF)
	switch f {
	case formOp:
	case formMod:
		buf = append(buf, mod)
	case formModI8:
		if in.Imm < 0 || in.Imm > 255 {
			panic(fmt.Sprintf("cisc: imm8 out of range: %d", in.Imm))
		}
		buf = append(buf, mod, byte(in.Imm))
	case formModI32:
		if in.Imm != int64(int32(in.Imm)) {
			panic(fmt.Sprintf("cisc: imm32 out of range: %d (%s)", in.Imm, in.Kind))
		}
		buf = append(buf, mod,
			byte(in.Imm), byte(in.Imm>>8), byte(in.Imm>>16), byte(in.Imm>>24))
	case formModI64:
		buf = append(buf, mod,
			byte(in.Imm), byte(in.Imm>>8), byte(in.Imm>>16), byte(in.Imm>>24),
			byte(in.Imm>>32), byte(in.Imm>>40), byte(in.Imm>>48), byte(in.Imm>>56))
	case formRel32:
		if in.Imm != int64(int32(in.Imm)) {
			panic(fmt.Sprintf("cisc: rel32 out of range: %d", in.Imm))
		}
		buf = append(buf,
			byte(in.Imm), byte(in.Imm>>8), byte(in.Imm>>16), byte(in.Imm>>24))
	}
	return buf
}

// Decode decodes one instruction from code (which must start at an
// instruction boundary).
func Decode(code []byte) (Inst, error) {
	if len(code) == 0 {
		return Inst{}, fmt.Errorf("cisc: empty code")
	}
	k := Kind(code[0])
	f, ok := kindForm[k]
	if !ok || k == KindInvalid {
		return Inst{}, fmt.Errorf("cisc: bad opcode %#02x", code[0])
	}
	sz := formSize(f)
	if len(code) < int(sz) {
		return Inst{}, fmt.Errorf("cisc: truncated %s", k)
	}
	in := Inst{Kind: k, Size: sz}
	if f != formOp && f != formRel32 {
		in.Dst = code[1] >> 4
		in.Src = code[1] & 0xF
	}
	switch f {
	case formModI8:
		in.Imm = int64(code[2])
	case formModI32:
		in.Imm = int64(int32(uint32(code[2]) | uint32(code[3])<<8 |
			uint32(code[4])<<16 | uint32(code[5])<<24))
	case formModI64:
		var v uint64
		for i := 0; i < 8; i++ {
			v |= uint64(code[2+i]) << (8 * i)
		}
		in.Imm = int64(v)
	case formRel32:
		in.Imm = int64(int32(uint32(code[1]) | uint32(code[2])<<8 |
			uint32(code[3])<<16 | uint32(code[4])<<24))
	}
	return in, nil
}

func (in Inst) String() string {
	f := kindForm[in.Kind]
	switch f {
	case formOp:
		return in.Kind.String()
	case formMod:
		return fmt.Sprintf("%s r%d, r%d", in.Kind, in.Dst, in.Src)
	case formRel32:
		return fmt.Sprintf("%s %+d", in.Kind, in.Imm)
	default:
		return fmt.Sprintf("%s r%d, r%d, %#x", in.Kind, in.Dst, in.Src, in.Imm)
	}
}
