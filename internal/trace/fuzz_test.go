package trace

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"testing"
)

// decodeFuzzEvents turns an arbitrary byte string into a deterministic
// event sequence: 26 bytes per event, remainder discarded.
func decodeFuzzEvents(data []byte) []Event {
	const rec = 26
	var evs []Event
	for len(data) >= rec {
		evs = append(evs, Event{
			Cycle: binary.LittleEndian.Uint64(data[0:8]),
			PC:    binary.LittleEndian.Uint64(data[8:16]),
			Arg:   binary.LittleEndian.Uint64(data[16:24]),
			Kind:  Kind(data[24] % uint8(evKinds+2)), // includes out-of-range kinds
			Core:  data[25] % 4,
		})
		data = data[rec:]
	}
	return evs
}

// FuzzTraceRingChromeRoundTrip feeds arbitrary event sequences through
// the ring buffer and the Chrome encoder: the ring must preserve the
// newest events in order, and the encoder must always produce valid JSON
// whose traceEvents count matches the buffered events plus metadata.
func FuzzTraceRingChromeRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 26*3))
	f.Add(bytes.Repeat([]byte{0x01, 0x80, 0x00}, 40))
	seed := make([]byte, 26*70) // more events than the ring below holds
	for i := range seed {
		seed[i] = byte(i * 31)
	}
	f.Add(seed)

	syms := NewSymTable()
	syms.AddProgram("p", map[string]uint64{"f": 0}, map[string]uint64{"f": ^uint64(0)})

	f.Fuzz(func(t *testing.T, data []byte) {
		evs := decodeFuzzEvents(data)
		tr := NewTracer(64)
		for _, ev := range evs {
			tr.Emit(ev)
		}
		want := len(evs)
		if want > 64 {
			want = 64
		}
		got := tr.Events()
		if len(got) != want {
			t.Fatalf("ring holds %d events, want %d", len(got), want)
		}
		// The ring keeps the newest events, oldest-first.
		for i, ev := range got {
			if ev != evs[len(evs)-want+i] {
				t.Fatalf("ring event %d mismatch: %+v vs %+v", i, ev, evs[len(evs)-want+i])
			}
		}
		if wantDropped := uint64(len(evs) - want); tr.Dropped != wantDropped {
			t.Fatalf("Dropped = %d, want %d", tr.Dropped, wantDropped)
		}

		out, err := ChromeJSON(got, syms, tr.Dropped)
		if err != nil {
			t.Fatalf("ChromeJSON: %v", err)
		}
		if !json.Valid(out) {
			t.Fatalf("invalid JSON: %.200s", out)
		}
		var parsed struct {
			TraceEvents []struct {
				Name string `json:"name"`
				Ph   string `json:"ph"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(out, &parsed); err != nil {
			t.Fatalf("round-trip unmarshal: %v", err)
		}
		nonMeta := 0
		for _, ev := range parsed.TraceEvents {
			if ev.Ph != "M" {
				nonMeta++
			}
			if ev.Name == "" {
				t.Fatal("event with empty name")
			}
		}
		if nonMeta != want {
			t.Fatalf("encoded %d non-metadata events, want %d", nonMeta, want)
		}
		// Determinism: encoding the same events twice is byte-identical.
		out2, _ := ChromeJSON(got, syms, tr.Dropped)
		if !bytes.Equal(out, out2) {
			t.Fatal("encoder is nondeterministic")
		}
	})
}
