package gemsys

import (
	"strings"
	"testing"

	"svbench/internal/ir"
	"svbench/internal/isa"
	"svbench/internal/kernel"
)

func exitModule() *ir.Module {
	m := ir.NewModule("exit")
	b := ir.NewFunc("main", 0)
	b.EcallV(kernel.M5Exit)
	m.AddFunc(b.Build())
	return m
}

func TestRejectsNonTwoCoreConfig(t *testing.T) {
	cfg := DefaultConfig(isa.RV64)
	cfg.Cores = 4
	if _, err := New(cfg); err == nil {
		t.Fatal("4-core config accepted")
	}
}

func TestSpawnBadCore(t *testing.T) {
	m, err := New(DefaultConfig(isa.RV64))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Spawn("p", exitModule(), "main", 7, nil); err == nil {
		t.Fatal("bad core accepted")
	}
}

func TestSpawnOutOfRegions(t *testing.T) {
	cfg := DefaultConfig(isa.RV64)
	cfg.MemBytes = 16 << 20
	cfg.RegionBytes = 4 << 20
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var spawnErr error
	for i := 0; i < 8; i++ {
		if _, spawnErr = m.Spawn("p", exitModule(), "main", 0, nil); spawnErr != nil {
			break
		}
	}
	if spawnErr == nil || !strings.Contains(spawnErr.Error(), "out of memory regions") {
		t.Fatalf("region exhaustion not reported: %v", spawnErr)
	}
}

func TestSpawnImageTooLarge(t *testing.T) {
	cfg := DefaultConfig(isa.RV64)
	cfg.RegionBytes = 64 << 10
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	big := ir.NewModule("big")
	big.AddGlobal(&ir.Global{Name: "blob", Data: make([]byte, 128<<10)})
	b := ir.NewFunc("main", 0)
	b.EcallV(kernel.M5Exit)
	big.AddFunc(b.Build())
	if _, err := m.Spawn("big", big, "main", 0, nil); err == nil {
		t.Fatal("oversized image accepted")
	}
}

func TestFunctionalDeadlockDetected(t *testing.T) {
	m, err := New(DefaultConfig(isa.RV64))
	if err != nil {
		t.Fatal(err)
	}
	mod := ir.NewModule("blocker")
	mod.AddGlobal(&ir.Global{Name: "buf", Data: make([]byte, 64)})
	b := ir.NewFunc("main", 1)
	buf := b.Global("buf", 0)
	b.EcallV(kernel.SysRecv, b.Param(0), buf, b.Const(64)) // never satisfied
	b.EcallV(kernel.M5Exit)
	mod.AddFunc(b.Build())
	ch := m.K.NewChannel()
	if _, err := m.Spawn("blocker", mod, "main", 0, []uint64{uint64(ch)}); err != nil {
		t.Fatal(err)
	}
	err = m.RunFunctional(10_000_000)
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("deadlock not detected: %v", err)
	}
}

func TestSetupBudgetEnforced(t *testing.T) {
	m, err := New(DefaultConfig(isa.RV64))
	if err != nil {
		t.Fatal(err)
	}
	mod := ir.NewModule("spin")
	b := ir.NewFunc("main", 0)
	l := b.NewLabel("l")
	b.Label(l)
	b.Jmp(l)
	mod.AddFunc(b.Build())
	if _, err := m.Spawn("spin", mod, "main", 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.RunSetup(100_000); err == nil {
		t.Fatal("runaway setup not bounded")
	}
}

func TestConsoleAndClock(t *testing.T) {
	m, err := New(DefaultConfig(isa.CISC64))
	if err != nil {
		t.Fatal(err)
	}
	mod := ir.NewModule("hello")
	mod.AddGlobal(&ir.Global{Name: "msg", Data: []byte("hi from cisc")})
	b := ir.NewFunc("main", 0)
	msg := b.Global("msg", 0)
	b.EcallV(kernel.SysWrite, msg, b.Const(12))
	t0 := b.Ecall(kernel.SysClock)
	_ = t0
	b.EcallV(kernel.M5Exit)
	mod.AddFunc(b.Build())
	if _, err := m.Spawn("hello", mod, "main", 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.RunFunctional(1_000_000); err != nil {
		t.Fatal(err)
	}
	if m.Console() != "hi from cisc" {
		t.Fatalf("console %q", m.Console())
	}
	if m.VirtNS() == 0 {
		t.Fatal("virtual clock did not advance")
	}
	if !m.Halted() {
		t.Fatal("machine should have halted")
	}
}

func TestRestoreValidation(t *testing.T) {
	m, err := New(DefaultConfig(isa.RV64))
	if err != nil {
		t.Fatal(err)
	}
	ck := m.TakeCheckpoint()
	ck.Arch = "cisc64"
	if err := m.Restore(ck); err == nil {
		t.Fatal("arch mismatch accepted")
	}
	ck.Arch = "rv64"
	ck.MemData = ck.MemData[:10]
	if err := m.Restore(ck); err == nil {
		t.Fatal("memory size mismatch accepted")
	}
}

func TestSimulatedPanicSurfacesAsError(t *testing.T) {
	m, err := New(DefaultConfig(isa.RV64))
	if err != nil {
		t.Fatal(err)
	}
	mod := ir.NewModule("boom")
	b := ir.NewFunc("main", 0)
	b.EcallV(kernel.HPanic)
	mod.AddFunc(b.Build())
	if _, err := m.Spawn("boom", mod, "main", 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.RunFunctional(1_000_000); err == nil ||
		!strings.Contains(err.Error(), "panic") {
		t.Fatalf("simulated panic not surfaced: %v", err)
	}
}
