package figures

import (
	"testing"

	"svbench/internal/container"
	"svbench/internal/isa"
)

func TestTable44Shapes(t *testing.T) {
	d, err := Table44()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 21 {
		t.Fatalf("Table 4.4 has %d rows, want 21", len(d.Rows))
	}
	byName := map[string][]float64{}
	for _, r := range d.Rows {
		byName[r.Label] = r.Values // [x86, riscv]
	}
	// Go images smallest, Python largest (both ISAs).
	for i, col := range []string{"x86", "riscv"} {
		if byName["Fibonacci-Go"][i] >= byName["Fibonacci-NodeJs"][i] {
			t.Errorf("%s: go image should be smaller than node", col)
		}
		if byName["Fibonacci-NodeJs"][i] >= byName["Fibonacci-Python"][i] {
			t.Errorf("%s: node image should be smaller than python", col)
		}
	}
	// ISA asymmetries of Table 4.4: riscv go/node smaller than x86;
	// riscv python larger than x86.
	if byName["Fibonacci-Go"][1] >= byName["Fibonacci-Go"][0] {
		t.Error("riscv go image should be smaller than x86")
	}
	if byName["Fibonacci-NodeJs"][1] >= byName["Fibonacci-NodeJs"][0] {
		t.Error("riscv node image should be smaller than x86")
	}
	if byName["Fibonacci-Python"][1] <= byName["Fibonacci-Python"][0] {
		t.Error("riscv python image should be larger than x86 (no slim base)")
	}
	// Auth-NodeJs carries the extra dependency layer.
	if byName["Auth-NodeJs"][0] <= byName["Aes-NodeJs"][0] {
		t.Error("auth-nodejs should be larger than aes-nodejs")
	}
}

func TestTable45PriorPortLarger(t *testing.T) {
	d, err := Table45()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 15 {
		t.Fatalf("Table 4.5 has %d rows, want 15", len(d.Rows))
	}
	for _, r := range d.Rows {
		nat, ours := r.Values[0], r.Values[1]
		switch r.Label {
		case "Fibonacci-Go", "Aes-Go", "Auth-Go":
			// The prior port's plain Go images were slightly smaller.
			if nat >= ours {
				t.Errorf("%s: natheesan go image should be smaller (%.1f vs %.1f)", r.Label, nat, ours)
			}
		default:
			if nat <= ours {
				t.Errorf("%s: natheesan image should be larger (%.1f vs %.1f)", r.Label, nat, ours)
			}
		}
	}
}

func TestEngineLifecycle(t *testing.T) {
	// Covered in detail by container tests; here just ensure an image for
	// each ISA compiles and has a non-empty app layer.
	for _, arch := range []isa.Arch{isa.RV64, isa.CISC64} {
		img, err := BuildFunctionImage(ImageCatalog()[0], arch, container.GPourProfile)
		if err != nil {
			t.Fatal(err)
		}
		last := img.Layers[len(img.Layers)-1]
		if last.Name != "app" || len(last.Data) == 0 {
			t.Fatalf("%s: missing app layer", arch)
		}
		if img.CompressedSize() >= img.Size() {
			t.Fatalf("%s: compression had no effect", arch)
		}
	}
}
