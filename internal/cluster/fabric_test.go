package cluster

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"

	"svbench/internal/db"
	"svbench/internal/ir"
	"svbench/internal/isa"
	"svbench/internal/langrt"
	"svbench/internal/rpc"
	"svbench/internal/vswarm"
)

func testConfig(top Topology, requests int) Config {
	return Config{
		Topology: top,
		Arch:     isa.RV64,
		Requests: requests,
		RPS:      2000,
		Seed:     42,
	}
}

func TestHotelReservationEndToEnd(t *testing.T) {
	rep, err := Run(testConfig(HotelReservation(), 4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Machines != 12 {
		t.Fatalf("machines = %d, want 12", rep.Machines)
	}
	for i, l := range rep.Latencies {
		if l == 0 {
			t.Fatalf("request %d has zero latency", i)
		}
	}
	if rep.Latency.P50 == 0 || rep.NetMsgs == 0 {
		t.Fatalf("empty report: %+v", rep.Latency)
	}
	// Every request crosses client->frontend and back at minimum.
	if rep.NetMsgs < uint64(2*rep.Requests) {
		t.Fatalf("only %d messages for %d requests", rep.NetMsgs, rep.Requests)
	}
	if !strings.Contains(rep.EventLog, "done req=3") {
		t.Fatalf("event log missing final request:\n%s", tail(rep.EventLog, 10))
	}
}

func TestSocialNetworkEndToEnd(t *testing.T) {
	rep, err := Run(testConfig(SocialNetwork(), 3))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Machines != 15 {
		t.Fatalf("machines = %d, want 15", rep.Machines)
	}
	if rep.Latency.Max == 0 {
		t.Fatal("no latency recorded")
	}
}

func tail(s string, n int) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	return strings.Join(lines, "\n")
}

// miniTopology is a 3-service graph (orchestrator -> function+datastore)
// small enough for determinism tests to run quickly.
func miniTopology() Topology {
	return Topology{
		Name:     "mini",
		Frontend: "front",
		Request:  opaqueRequest(1),
		Services: []ServiceSpec{
			{Name: "front", Kind: Orchestrator, Stages: [][]Call{
				{{Service: "fib", Request: fibReq(18)}},
				{{Service: "store", Request: dbGet("t", "k")}},
			}},
			{Name: "fib", Kind: Function, Runtime: langrt.GoRT,
				Fn: fibFn()},
			{Name: "store", Kind: Datastore, Engine: "memcached",
				Seed: seedKV("t", "k", 64)},
		},
	}
}

func TestFabricQuantumInsensitive(t *testing.T) {
	// The quantum bounds run-ahead; it must not change observable
	// results (latencies, message flow), only scheduling granularity.
	base, err := Run(testConfig(miniTopology(), 4))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(miniTopology(), 4)
	cfg.QuantumNS = 1000
	small, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.EventLog != small.EventLog {
		t.Fatalf("event log depends on quantum:\n--- q=default\n%s\n--- q=1000\n%s",
			tail(base.EventLog, 12), tail(small.EventLog, 12))
	}
}

func TestDeterminismAcrossJobs(t *testing.T) {
	mk := func() []Config {
		return []Config{
			testConfig(miniTopology(), 5),
			testConfig(miniTopology(), 5),
			testConfig(miniTopology(), 5),
			testConfig(miniTopology(), 5),
		}
	}
	seq, err := RunMany(mk(), 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunMany(mk(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i].EventLog != par[i].EventLog {
			t.Fatalf("run %d: event log differs between -j 1 and -j 4", i)
		}
		if seq[i].Table() != par[i].Table() {
			t.Fatalf("run %d: table differs between -j 1 and -j 4", i)
		}
		sj, err := seq[i].TraceJSON()
		if err != nil {
			t.Fatal(err)
		}
		pj, err := par[i].TraceJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sj, pj) {
			t.Fatalf("run %d: trace JSON differs between -j 1 and -j 4", i)
		}
	}
}

// TestDeterminismAcrossProcesses re-executes the test binary as a fresh
// process and compares its fabric fingerprint byte-for-byte, catching
// any dependence on map iteration, address ordering, or process state.
func TestDeterminismAcrossProcesses(t *testing.T) {
	if os.Getenv("CLUSTER_FINGERPRINT_CHILD") == "1" {
		return
	}
	want := clusterFingerprint(t)
	exe, err := os.Executable()
	if err != nil {
		t.Skipf("no executable path: %v", err)
	}
	cmd := exec.Command(exe, "-test.run", "TestHelperClusterFingerprint", "-test.v")
	cmd.Env = append(os.Environ(), "CLUSTER_FINGERPRINT_CHILD=1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("child process failed: %v\n%s", err, out)
	}
	marker := "FINGERPRINT-BEGIN\n"
	i := bytes.Index(out, []byte(marker))
	j := bytes.Index(out, []byte("FINGERPRINT-END"))
	if i < 0 || j < 0 || j < i {
		t.Fatalf("child output missing fingerprint markers:\n%s", out)
	}
	got := string(out[i+len(marker) : j])
	if got != want {
		t.Fatalf("fingerprint differs across processes:\n--- parent\n%s\n--- child\n%s", want, got)
	}
}

func clusterFingerprint(t *testing.T) string {
	t.Helper()
	rep, err := Run(testConfig(miniTopology(), 5))
	if err != nil {
		t.Fatal(err)
	}
	tj, err := rep.TraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("%s%s%x\n", rep.EventLog, rep.Table(), tj)
}

func TestHelperClusterFingerprint(t *testing.T) {
	if os.Getenv("CLUSTER_FINGERPRINT_CHILD") != "1" {
		t.Skip("helper for TestDeterminismAcrossProcesses")
	}
	fmt.Printf("FINGERPRINT-BEGIN\n%sFINGERPRINT-END\n", clusterFingerprint(t))
}

func TestValidateRejectsBadTopologies(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Topology)
		want string
	}{
		{"unknown frontend", func(tp *Topology) { tp.Frontend = "nope" }, "frontend"},
		{"empty request", func(tp *Topology) { tp.Request = nil }, "client request"},
		{"duplicate service", func(tp *Topology) {
			tp.Services = append(tp.Services, ServiceSpec{Name: "fib", Kind: Datastore, Engine: "memcached"})
		}, "duplicate"},
		{"unknown call target", func(tp *Topology) {
			tp.Services[0].Stages = [][]Call{{{Service: "ghost", Request: opaqueRequest(9)}}}
		}, "unknown service"},
		{"cycle", func(tp *Topology) {
			tp.Services = append(tp.Services,
				ServiceSpec{Name: "a", Kind: Orchestrator,
					Stages: [][]Call{{{Service: "b", Request: opaqueRequest(1)}}}},
				ServiceSpec{Name: "b", Kind: Orchestrator,
					Stages: [][]Call{{{Service: "a", Request: opaqueRequest(1)}}}})
		}, "cycle"},
	}
	for _, c := range cases {
		tp := miniTopology()
		c.mut(&tp)
		err := tp.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
	for _, tp := range Topologies() {
		if err := tp.Validate(); err != nil {
			t.Errorf("shipped topology %s invalid: %v", tp.Name, err)
		}
	}
}

func TestLinkModel(t *testing.T) {
	l := Link{LatencyNS: 100, GbitPS: 8}
	if tx := l.TxNS(100); tx != 100 {
		t.Fatalf("100B at 8 Gbit/s: tx = %d ns, want 100", tx)
	}
	var z Link
	if tx := z.TxNS(10); tx != 8 {
		t.Fatalf("zero link defaults: tx = %d ns, want 8", tx)
	}
}

func fibReq(n int) []byte {
	w := rpc.NewWriter()
	w.PutInt(uint64(n))
	return w.Bytes()
}

func fibFn() func([]ChanPair) *ir.Module {
	return func([]ChanPair) *ir.Module { return vswarm.Fibonacci() }
}

func seedKV(table, key string, n int) func(db.Store) {
	return func(s db.Store) { s.Put(table, key, vswarm.AESPayload(n)) }
}
