package kernel

import (
	"bytes"
	"fmt"

	"svbench/internal/isa"
	"svbench/internal/trace"
)

// ProcState is a process's scheduler state.
type ProcState int

// Process states (the thesis's Running/Waiting/Dead function states map
// onto these plus container-engine state).
const (
	ProcRunnable ProcState = iota
	ProcBlocked
	ProcDead
)

// Region is a process's private slice of the flat physical address space.
type Region struct {
	Base, Size uint64
}

// Process is a schedulable entity: one program instance with its own
// architectural core state, pinned to a hardware core.
type Process struct {
	ID     int
	Name   string
	Core   isa.Core
	CoreID int
	State  ProcState
	Region Region
	Brk    uint64

	// WakeSeq is the IPC sequence whose commit ends this process's idle
	// period; NeedsIdle tells the machine to emit an idle trace record
	// before resuming.
	WakeSeq   uint64
	NeedsIdle bool
	ExitCode  uint64
}

type message struct {
	addr uint64
	ln   uint64
	seq  uint64
}

// Service is a native-model endpoint (a database or cache engine) attached
// to a channel. It runs host-side — representing work on the unmeasured
// core — and charges serviceCycles of virtual latency; the measured core
// observes only the round trip and the reply payload, exactly as the
// thesis's methodology measures the function core, not the DB.
type Service interface {
	Handle(req []byte) (resp []byte, serviceCycles uint64)
}

// Channel is a kernel IPC endpoint: a FIFO of messages held in kernel
// memory, with blocking receivers.
type Channel struct {
	id      int
	msgs    []message
	waiters []*Process
	svc     Service
	svcOut  int // reply channel when svc != nil
	// remote marks a fabric-routed egress channel: committed messages are
	// handed to OnEgress instead of being enqueued locally.
	remote bool
}

// Kernel is the host-side OS state.
type Kernel struct {
	Mem   *isa.Mem
	Procs []*Process
	chans []*Channel

	seq      uint64
	slabBase uint64
	slabSize uint64
	slabCur  uint64

	Console bytes.Buffer

	// HandlerAddr maps user syscall numbers to kernel text addresses;
	// UserExitAddr is the return target for process entry functions.
	HandlerAddr  map[uint64]uint64
	UserExitAddr uint64

	// Clock returns virtual nanoseconds (supplied by the machine).
	Clock func() uint64
	// OnDerive tells the timing layer that sequence derived commits
	// delay cycles after base (native service replies).
	OnDerive func(base, derived, delay uint64)
	// OnWake notifies the machine's scheduler.
	OnWake func(p *Process)
	// OnServiceTime reports native service processing time (advances the
	// functional/QEMU virtual clock).
	OnServiceTime func(cycles uint64)

	// IPCFault, when set, is consulted on every committed message. It may
	// drop the message, corrupt the payload slice in place (it aliases
	// kernel slab memory), or return extra delivery delay in virtual
	// cycles; delayed messages reach their receiver through a derived
	// sequence so the timing layer charges the delay like a service round
	// trip. On a service-bound channel, a drop discards the request before
	// the engine sees it and a delay stretches the reply's service time.
	IPCFault func(ch int, payload []byte) (drop bool, delay uint64)
	// ReplyCheck classifies a reply for the load generator's retry loop
	// (the HReplyOK host call): it returns false when the response should
	// be retried. Nil accepts everything.
	ReplyCheck func(resp []byte) bool
	// OnFault receives fault events user code reports via HFaultNote.
	OnFault func(ev uint64)
	// OnEgress receives messages committed to remote-bound channels (see
	// BindRemote): the network boundary of a cluster machine. The payload
	// is a copy, safe to retain; delay is any extra virtual latency the
	// fault layer attached to the send. The message is NOT enqueued
	// locally — delivery is the fabric's job.
	OnEgress func(ch int, payload []byte, delay uint64)

	// Panicked is set when simulated code raised the panic host call
	// (e.g. a stack-smash detection).
	Panicked  bool
	PanicInfo string

	// Counts are the kernel's observability counters.
	Counts Counts

	nextProcID int
}

// Counts holds the kernel-side counters registered into the machine's
// stats registry.
type Counts struct {
	Ecalls      uint64 // host environment calls dispatched here
	Sends       uint64 // IPC messages committed
	Drops       uint64 // messages dropped by fault injection
	Delayed     uint64 // messages delivered late by fault injection
	ServiceReqs uint64 // requests handled by native service engines
	Wakes       uint64 // processes woken from channel waits
}

// RegisterStats publishes the kernel's counters under prefix.
func (k *Kernel) RegisterStats(r *trace.Registry, prefix string) {
	r.Counter(prefix+".ecalls", "host environment calls dispatched", &k.Counts.Ecalls)
	r.Counter(prefix+".ipc.sends", "IPC messages committed", &k.Counts.Sends)
	r.Counter(prefix+".ipc.drops", "messages dropped by fault injection", &k.Counts.Drops)
	r.Counter(prefix+".ipc.delayed", "messages delivered late by fault injection", &k.Counts.Delayed)
	r.Counter(prefix+".ipc.serviceReqs", "requests handled by native services", &k.Counts.ServiceReqs)
	r.Counter(prefix+".sched.wakes", "processes woken from channel waits", &k.Counts.Wakes)
	r.Func(prefix+".consoleBytes", "bytes written to the console", func() uint64 {
		return uint64(k.Console.Len())
	})
}

// ResetCounts zeroes the kernel counters (checkpoint restore starts a
// fresh measurement).
func (k *Kernel) ResetCounts() { k.Counts = Counts{} }

// New creates a kernel over mem with a message slab at [slabBase,
// slabBase+slabSize).
func New(mem *isa.Mem, slabBase, slabSize uint64) *Kernel {
	return &Kernel{
		Mem:         mem,
		slabBase:    slabBase,
		slabSize:    slabSize,
		slabCur:     slabBase,
		HandlerAddr: map[uint64]uint64{},
		Clock:       func() uint64 { return 0 },
	}
}

// NewChannel allocates a channel and returns its id.
func (k *Kernel) NewChannel() int {
	c := &Channel{id: len(k.chans)}
	k.chans = append(k.chans, c)
	return c.id
}

// Bind attaches a native service to reqCh; replies are delivered on outCh.
func (k *Kernel) Bind(reqCh, outCh int, svc Service) {
	k.chans[reqCh].svc = svc
	k.chans[reqCh].svcOut = outCh
}

// BindRemote marks ch as a fabric egress: guest sends commit to the
// network (OnEgress) instead of the local FIFO. Ingress is unchanged —
// the fabric delivers remote messages with Inject.
func (k *Kernel) BindRemote(ch int) {
	k.chans[ch].remote = true
}

// AddProcess registers p and assigns its id.
func (k *Kernel) AddProcess(p *Process) {
	p.ID = k.nextProcID
	k.nextProcID++
	k.Procs = append(k.Procs, p)
}

func (k *Kernel) alloc(n uint64) uint64 {
	n = (n + 15) &^ 15
	if n > k.slabSize {
		panic(fmt.Sprintf("kernel: message of %d bytes exceeds slab", n))
	}
	if k.slabCur+n > k.slabBase+k.slabSize {
		k.slabCur = k.slabBase
	}
	a := k.slabCur
	k.slabCur += n
	return a
}

func (k *Kernel) chanFor(id uint64) *Channel {
	if id >= uint64(len(k.chans)) {
		panic(fmt.Sprintf("kernel: bad channel %d", id))
	}
	return k.chans[id]
}

func (k *Kernel) wake(c *Channel, seq uint64) {
	if len(c.waiters) == 0 {
		return
	}
	p := c.waiters[0]
	c.waiters = c.waiters[1:]
	k.Counts.Wakes++
	p.State = ProcRunnable
	p.WakeSeq = seq
	p.NeedsIdle = true
	if k.OnWake != nil {
		k.OnWake(p)
	}
}

// enqueue appends a message and wakes one waiter.
func (k *Kernel) enqueue(c *Channel, m message) {
	c.msgs = append(c.msgs, m)
	k.wake(c, m.seq)
}

// Ecall dispatches an environment call raised by process p. The machine's
// hook routes all non-m5 ecalls here.
func (k *Kernel) Ecall(c isa.Core, p *Process) isa.EcallResult {
	k.Counts.Ecalls++
	num := c.EcallNum()
	if HandlerName(num) != "" {
		addr, ok := k.HandlerAddr[num]
		if !ok {
			panic(fmt.Sprintf("kernel: unvectored syscall %d", num))
		}
		c.CallInto(addr)
		c.Annotate(isa.FlagVector, addr)
		return isa.EcallVector
	}
	switch num {
	case HWrite:
		buf, ln := c.Arg(0), c.Arg(1)
		k.Console.Write(k.Mem.Bytes(buf, ln))
		c.SetRet(ln)
	case HReserve:
		_, ln := c.Arg(0), c.Arg(1)
		c.SetRet(k.alloc(ln))
	case HCommit:
		ch := k.chanFor(c.Arg(0))
		kbuf, ln := c.Arg(1), c.Arg(2)
		k.seq++
		seq := k.seq
		k.Counts.Sends++
		c.Annotate(isa.FlagSend, seq)
		var drop bool
		var delay uint64
		if k.IPCFault != nil {
			drop, delay = k.IPCFault(ch.id, k.Mem.Bytes(kbuf, ln))
		}
		if drop {
			// The message vanishes after the send commits: no receiver
			// ever waits on seq, so the orphan FlagSend is harmless.
			k.Counts.Drops++
			c.SetRet(0)
			return isa.EcallHandled
		}
		if delay > 0 {
			k.Counts.Delayed++
		}
		if ch.remote {
			// Fabric egress: the payload leaves this machine. The copy is
			// mandatory — the slab slot is recycled long before the network
			// delivers the message.
			if k.OnEgress != nil {
				k.OnEgress(ch.id, append([]byte(nil), k.Mem.Bytes(kbuf, ln)...), delay)
			}
			c.SetRet(0)
			return isa.EcallHandled
		}
		if ch.svc != nil {
			// Native service: run host-side, deliver the reply on the
			// bound output channel after serviceCycles of virtual time.
			k.Counts.ServiceReqs++
			req := append([]byte(nil), k.Mem.Bytes(kbuf, ln)...)
			resp, cycles := ch.svc.Handle(req)
			cycles += delay
			if k.OnServiceTime != nil {
				k.OnServiceTime(cycles)
			}
			raddr := k.alloc(uint64(len(resp)))
			copy(k.Mem.Bytes(raddr, uint64(len(resp))), resp)
			k.seq++
			rseq := k.seq
			if k.OnDerive != nil {
				k.OnDerive(seq, rseq, cycles)
			}
			k.enqueue(k.chanFor(uint64(ch.svcOut)), message{addr: raddr, ln: uint64(len(resp)), seq: rseq})
		} else if delay > 0 {
			// Late delivery: hand the receiver a derived sequence that
			// becomes ready delay cycles after the send commits, and
			// advance the functional clock so emulated latencies see it.
			if k.OnServiceTime != nil {
				k.OnServiceTime(delay)
			}
			k.seq++
			rseq := k.seq
			if k.OnDerive != nil {
				k.OnDerive(seq, rseq, delay)
			}
			k.enqueue(ch, message{addr: kbuf, ln: ln, seq: rseq})
		} else {
			k.enqueue(ch, message{addr: kbuf, ln: ln, seq: seq})
		}
		c.SetRet(0)
	case HPoll:
		ch := k.chanFor(c.Arg(0))
		if len(ch.msgs) == 0 {
			c.SetRet(0)
		} else {
			m := ch.msgs[0]
			c.Annotate(isa.FlagRecv, m.seq)
			c.SetRet(m.addr)
		}
	case HMsgLen:
		ch := k.chanFor(c.Arg(0))
		if len(ch.msgs) == 0 {
			panic("kernel: HMsgLen on empty channel")
		}
		c.SetRet(ch.msgs[0].ln)
	case HConsume:
		ch := k.chanFor(c.Arg(0))
		if len(ch.msgs) == 0 {
			panic("kernel: HConsume on empty channel")
		}
		ch.msgs = ch.msgs[1:]
		c.SetRet(0)
	case HBlock:
		ch := k.chanFor(c.Arg(0))
		// Re-check under "interrupts off": a message may have raced in
		// between the poll and the block.
		if len(ch.msgs) > 0 {
			c.SetRet(0)
			return isa.EcallHandled
		}
		ch.waiters = append(ch.waiters, p)
		p.State = ProcBlocked
		c.SetRet(0)
		return isa.EcallBlock
	case HSbrk:
		n := int64(c.Arg(0))
		old := p.Brk
		nb := uint64(int64(p.Brk) + n)
		if nb < p.Region.Base || nb > p.Region.Base+p.Region.Size {
			panic(fmt.Sprintf("kernel: %s sbrk out of region", p.Name))
		}
		p.Brk = nb
		c.SetRet(old)
	case HExit:
		p.State = ProcDead
		p.ExitCode = c.Arg(0)
		c.SetRet(0)
		return isa.EcallBlock
	case HYield:
		c.SetRet(0)
	case HClock:
		c.SetRet(k.Clock())
	case HReplyOK:
		buf, ln := c.Arg(0), c.Arg(1)
		ok := uint64(1)
		if k.ReplyCheck != nil && !k.ReplyCheck(k.Mem.Bytes(buf, ln)) {
			ok = 0
		}
		c.SetRet(ok)
	case HFaultNote:
		if k.OnFault != nil {
			k.OnFault(c.Arg(0))
		}
		c.SetRet(0)
	case HPanic:
		k.Panicked = true
		k.PanicInfo = fmt.Sprintf("proc %s pc=%#x", p.Name, c.PC())
		return isa.EcallHalt
	default:
		panic(fmt.Sprintf("kernel: unknown ecall %#x from %s", num, p.Name))
	}
	return isa.EcallHandled
}

// Pending reports how many messages sit in channel ch.
func (k *Kernel) Pending(ch int) int { return len(k.chans[ch].msgs) }

// Inject commits a message into channel ch from the host side, waking one
// waiter exactly like a guest send. The load-generation layer uses it to
// drive a restored instance without a simulated client process: the
// payload is copied into slab memory, so the caller's slice is not
// retained. Host injection bypasses the IPCFault hook — it models the
// ingress boundary, not the measured IPC path.
func (k *Kernel) Inject(ch int, payload []byte) {
	c := k.chanFor(uint64(ch))
	addr := k.alloc(uint64(len(payload)))
	copy(k.Mem.Bytes(addr, uint64(len(payload))), payload)
	k.seq++
	k.Counts.Sends++
	k.enqueue(c, message{addr: addr, ln: uint64(len(payload)), seq: k.seq})
}

// TakeMessage pops the head message of channel ch host-side and returns a
// copy of its payload, or (nil, false) when the channel is empty. It is
// Inject's receive-side counterpart: the egress boundary of a host-driven
// instance.
func (k *Kernel) TakeMessage(ch int) ([]byte, bool) {
	c := k.chanFor(uint64(ch))
	if len(c.msgs) == 0 {
		return nil, false
	}
	m := c.msgs[0]
	c.msgs = c.msgs[1:]
	return append([]byte(nil), k.Mem.Bytes(m.addr, m.ln)...), true
}

// Snapshot/Restore support: channel and process bookkeeping that must
// survive a checkpoint.
type kernelState struct {
	Seq     uint64
	SlabCur uint64
}

// SnapState captures kernel counters for checkpointing.
func (k *Kernel) SnapState() (seq, slabCur uint64) { return k.seq, k.slabCur }

// RestoreState restores kernel counters.
func (k *Kernel) RestoreState(seq, slabCur uint64) { k.seq, k.slabCur = seq, slabCur }
