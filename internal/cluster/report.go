package cluster

import (
	"fmt"
	"strings"

	"svbench/internal/isa"
	"svbench/internal/loadgen"
	"svbench/internal/sweep"
	"svbench/internal/trace"
)

// Report is the outcome of one fabric run. Every field is a pure
// function of (Topology, Arch, Requests, RPS, Seed, QuantumNS): same
// inputs, same bytes — the cluster determinism tests compare EventLog,
// Table() and TraceJSON() across job counts and processes.
type Report struct {
	Topology  string
	Arch      isa.Arch
	Machines  int
	Requests  int
	RPS       float64
	Seed      uint64
	Latency   loadgen.Pcts
	Latencies []uint64 // per request id, virtual ns
	NetMsgs   uint64
	NetBytes  uint64
	// Instructions counts guest instructions executed across all
	// machines after boot; MakespanNS is the completion time of the
	// last reply.
	Instructions uint64
	MakespanNS   uint64
	// EventLog is the deterministic line-per-event fabric log.
	EventLog  string
	StatsText string
	Events    []trace.Event
	Dropped   uint64
}

func (f *Fabric) report() *Report {
	r := &Report{
		Topology:     f.top.Name,
		Arch:         f.cfg.Arch,
		Machines:     len(f.nodes),
		Requests:     f.cfg.Requests,
		RPS:          f.cfg.RPS,
		Seed:         f.cfg.Seed,
		Latencies:    append([]uint64(nil), f.lats...),
		NetMsgs:      f.nMsgs,
		NetBytes:     f.nBytes,
		Instructions: f.instr,
		EventLog:     f.log.String(),
		Events:       f.tracer.Events(),
		Dropped:      f.tracer.Dropped,
	}
	r.Latency = loadgen.Percentiles(append([]uint64(nil), f.lats...))
	for i, at := range f.started {
		if end := at + f.lats[i]; end > r.MakespanNS {
			r.MakespanNS = end
		}
	}
	r.StatsText = f.reg.Text(fmt.Sprintf("%s cluster (%s)", f.top.Name, f.cfg.Arch))
	return r
}

// TraceJSON renders the fabric's event trace as Chrome/Perfetto JSON.
func (r *Report) TraceJSON() ([]byte, error) {
	return trace.ChromeJSON(r.Events, nil, r.Dropped)
}

// Table renders the run as a deterministic text summary.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster %s on %s: %d machines, %d requests @ %.1f rps (seed %d)\n",
		r.Topology, r.Arch, r.Machines, r.Requests, r.RPS, r.Seed)
	fmt.Fprintf(&b, "  e2e latency ns  p50=%d p95=%d p99=%d max=%d mean=%.0f\n",
		r.Latency.P50, r.Latency.P95, r.Latency.P99, r.Latency.Max, r.Latency.Mean)
	fmt.Fprintf(&b, "  network         msgs=%d bytes=%d\n", r.NetMsgs, r.NetBytes)
	fmt.Fprintf(&b, "  execution       insts=%d makespan_ns=%d\n", r.Instructions, r.MakespanNS)
	return b.String()
}

// Run executes one fabric configuration end to end.
func Run(cfg Config) (*Report, error) {
	f, err := NewFabric(cfg)
	if err != nil {
		return nil, err
	}
	return f.Run()
}

// RunMany executes independent fabric runs with up to `jobs` in flight
// (0 = one per host core, like the rest of the suite). Each run is
// internally sequential; results are ordered by input index regardless
// of job count, and errors carry the failing run's index.
func RunMany(cfgs []Config, jobs int) ([]*Report, error) {
	reports := make([]*Report, len(cfgs))
	errs := make([]error, len(cfgs))
	sweep.Each(len(cfgs), jobs, func(i int) {
		reports[i], errs[i] = Run(cfgs[i])
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster run %d: %w", i, err)
		}
	}
	return reports, nil
}
