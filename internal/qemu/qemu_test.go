package qemu

import (
	"testing"

	"svbench/internal/harness"
	"svbench/internal/isa"
)

func TestFunctionalLatencies(t *testing.T) {
	lats, err := Run(isa.RV64, harness.HotelSpec("rate", harness.EngineCassandra), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(lats) != 5 {
		t.Fatalf("got %d latencies", len(lats))
	}
	for _, l := range lats {
		if l.NS == 0 {
			t.Fatalf("request %d: zero latency", l.Request)
		}
	}
	// Cold (memcached misses -> Cassandra) must exceed warm (cache hits).
	if lats[0].NS <= lats[4].NS {
		t.Fatalf("cold %d <= warm %d", lats[0].NS, lats[4].NS)
	}
}

func TestMongoVsCassandraShape(t *testing.T) {
	// Fig. 4.20: MongoDB's cold request is faster than Cassandra's; warm
	// requests are comparable (both served from memcached).
	cass, err := Run(isa.CISC64, harness.HotelSpec("profile", harness.EngineCassandra), 4)
	if err != nil {
		t.Fatal(err)
	}
	mongo, err := Run(isa.CISC64, harness.HotelSpec("profile", harness.EngineMongo), 4)
	if err != nil {
		t.Fatal(err)
	}
	if mongo[0].NS >= cass[0].NS {
		t.Errorf("mongo cold (%d) should beat cassandra cold (%d)", mongo[0].NS, cass[0].NS)
	}
	warmRatio := float64(cass[3].NS) / float64(mongo[3].NS)
	if warmRatio > 1.6 || warmRatio < 0.6 {
		t.Errorf("warm latencies should be comparable, ratio %.2f", warmRatio)
	}
	t.Logf("cold: cass=%d mongo=%d | warm: cass=%d mongo=%d",
		cass[0].NS, mongo[0].NS, cass[3].NS, mongo[3].NS)
}
