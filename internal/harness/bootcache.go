package harness

import (
	"sync"

	"svbench/internal/gemsys"
)

// BootCache memoizes post-boot checkpoints across runs. The key is the
// machine's boot fingerprint (see gemsys.BootFingerprint): runs whose
// architecture, configuration, kernel image and spawn sequence are
// identical execute the same setup phase, so only the first such run
// simulates it. Every later run restores a private deep clone of the
// cached checkpoint instead.
//
// Concurrent lookups for the same fingerprint are single-flighted: one
// run (the leader) simulates setup while the others wait on the entry.
// If the leader fails, or its boot turns out not to be memoizable (setup
// touched a host-side native service — see Boot.Memoizable), the waiters
// run their own setup so each reports its own error with full fidelity.
//
// The zero BootCache is not usable; call NewBootCache. A nil *BootCache
// is valid everywhere and disables memoization.
type BootCache struct {
	mu      sync.Mutex
	entries map[string]*bootEntry

	hits     uint64 // runs served from a cached checkpoint
	misses   uint64 // runs that simulated setup as the entry's leader
	rejected uint64 // runs that found a negative entry (failed or non-memoizable boot)
}

type bootEntry struct {
	ready      chan struct{} // closed when the leader finished
	ck         *gemsys.Checkpoint
	setupInsts uint64
	ok         bool // checkpoint cached; false = failed or non-memoizable
}

// NewBootCache returns an empty cache ready for concurrent use.
func NewBootCache() *BootCache {
	return &BootCache{entries: map[string]*bootEntry{}}
}

// Stats returns the cache counters: hits (runs that skipped setup),
// misses (runs that simulated setup and led an entry), and rejected
// (runs that found a negative entry and ran their own setup).
func (c *BootCache) Stats() (hits, misses, rejected uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.rejected
}

// acquire returns the entry for fp and whether the caller is its leader.
func (c *BootCache) acquire(fp string) (*bootEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[fp]; ok {
		return e, false
	}
	e := &bootEntry{ready: make(chan struct{})}
	c.entries[fp] = e
	c.misses++
	return e, true
}

// finish publishes the leader's outcome. ck must already be private to
// the cache (the leader clones before handing it over); a nil ck records
// a negative entry.
func (c *BootCache) finish(e *bootEntry, ck *gemsys.Checkpoint, setupInsts uint64) {
	c.mu.Lock()
	e.ck = ck
	e.setupInsts = setupInsts
	e.ok = ck != nil
	c.mu.Unlock()
	close(e.ready)
}

func (c *BootCache) noteHit() {
	c.mu.Lock()
	c.hits++
	c.mu.Unlock()
}

func (c *BootCache) noteRejected() {
	c.mu.Lock()
	c.rejected++
	c.mu.Unlock()
}

// CheckpointFor returns a post-boot checkpoint for b, consulting the
// cache by boot fingerprint. The leader (first caller per fingerprint)
// simulates b's Setup and publishes the result when the boot is
// memoizable; followers receive a private deep clone. On a negative
// entry (failed or non-memoizable leader) the caller simulates its own
// setup and gets its boot's own checkpoint back. A nil cache always runs
// Setup directly. The returned setupInsts is the setup phase's
// instruction count — the load layer charges it as the cold-start boot
// penalty.
func (c *BootCache) CheckpointFor(b *Boot) (ck *gemsys.Checkpoint, setupInsts uint64, err error) {
	if c == nil {
		ck, err = b.Setup()
		return ck, b.SetupInsts(), err
	}
	fp := b.M.BootFingerprint()
	e, leader := c.acquire(fp)
	if leader {
		ck, err = b.Setup()
		switch {
		case err != nil:
			c.finish(e, nil, 0)
			return nil, 0, err
		case !b.Memoizable():
			c.finish(e, nil, 0)
			return ck, b.SetupInsts(), nil
		default:
			// Like RunCached, the leader's own checkpoint is published:
			// Restore only copies out of it, so later execution on the
			// leader's machine cannot touch the cached bytes.
			c.finish(e, ck, b.SetupInsts())
			return ck, b.SetupInsts(), nil
		}
	}
	<-e.ready
	if e.ok {
		c.noteHit()
		return e.ck.Clone(), e.setupInsts, nil
	}
	c.noteRejected()
	ck, err = b.Setup()
	return ck, b.SetupInsts(), err
}

// RunCached executes the methodology like RunWith, consulting cache for a
// memoized post-boot checkpoint. A nil cache disables memoization. Either
// way the measured result is identical: the evaluation phase always runs
// on this call's own machine, restored from a checkpoint byte-equal to
// the one its own setup would have produced.
func RunCached(cfg gemsys.Config, spec Spec, cache *BootCache) (*Result, error) {
	b, err := BootSpec(cfg, spec)
	if err != nil {
		return nil, err
	}
	if cache == nil {
		ck, err := b.Setup()
		if err != nil {
			return nil, err
		}
		return b.Measure(ck, b.SetupInsts())
	}

	fp := b.M.BootFingerprint()
	e, leader := cache.acquire(fp)
	if leader {
		ck, err := b.Setup()
		switch {
		case err != nil:
			cache.finish(e, nil, 0)
			return nil, err
		case !b.Memoizable():
			cache.finish(e, nil, 0)
			return b.Measure(ck, b.SetupInsts())
		default:
			// Publishing the leader's own checkpoint is safe: Restore only
			// copies out of it, so the leader's measurement cannot touch
			// the cached bytes. Followers still clone (see below).
			cache.finish(e, ck, b.SetupInsts())
			return b.Measure(ck, b.SetupInsts())
		}
	}
	<-e.ready
	if e.ok {
		cache.noteHit()
		return b.Measure(e.ck.Clone(), e.setupInsts)
	}
	// The leader failed or the boot is not memoizable: simulate our own
	// setup so this run's behavior (and any error) is its own.
	cache.noteRejected()
	ck, err := b.Setup()
	if err != nil {
		return nil, err
	}
	return b.Measure(ck, b.SetupInsts())
}
