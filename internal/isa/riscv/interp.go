package riscv

import (
	"fmt"
	"math/bits"

	"svbench/internal/isa"
)

// ErrHalt and ErrBlock alias the shared sentinels so callers can match
// either through this package or through isa.
var (
	ErrHalt  = isa.ErrHalt
	ErrBlock = isa.ErrBlock
)

// SharedText is an immutable pre-decoded view of a text range. Because it
// is never written after PredecodeText returns, one SharedText can back
// the decode caches of any number of concurrently running machines — the
// per-machine DecodeCache stays single-threaded mutable state while the
// common prefix (typically the kernel image, identical across machines of
// one architecture) is decoded exactly once per process.
type SharedText struct {
	base uint64
	ok   []bool
	inst []Inst
}

// PredecodeText decodes every aligned instruction slot of text (loaded at
// base) into an immutable overlay. Slots that do not decode are left
// unset and fall back to the per-machine cache at lookup time.
func PredecodeText(base uint64, text []byte) *SharedText {
	n := len(text) / 4
	st := &SharedText{base: base, ok: make([]bool, n), inst: make([]Inst, n)}
	for i := 0; i < n; i++ {
		w := uint32(text[i*4]) | uint32(text[i*4+1])<<8 |
			uint32(text[i*4+2])<<16 | uint32(text[i*4+3])<<24
		if in, err := Decode(w); err == nil {
			st.inst[i] = in
			st.ok[i] = true
		}
	}
	return st
}

func (s *SharedText) lookup(pc uint64) (Inst, bool) {
	if s == nil || pc < s.base {
		return Inst{}, false
	}
	i := (pc - s.base) >> 2
	if i >= uint64(len(s.ok)) || !s.ok[i] {
		return Inst{}, false
	}
	return s.inst[i], true
}

// DecodeCache caches decoded instructions by address. Program text is
// immutable after load, so entries never invalidate. The cache is shared
// by all cores of a machine (but never across machines: only the
// read-only SharedText overlay may cross machine boundaries).
type DecodeCache struct {
	shared *SharedText
	pages  map[uint64]*decPage
	mruK   uint64
	mruV   *decPage

	// Sequential-PC fast path: the page and index that served the last
	// page-path lookup. Straight-line code asks for pc+4 next, which this
	// serves without recomputing the page key or touching the map/MRU.
	seqPC  uint64
	seqPg  *decPage
	seqIdx int

	// blocks caches translated basic blocks by entry PC (see block.go).
	blocks map[uint64]*block
	mruBPC uint64
	mruB   *block

	// Superblock-chaining telemetry (see isa.ChainStats). epoch is the
	// current distinct-block accounting generation: a block whose epoch
	// field lags it has not been entered since the last ResetChains. It
	// starts at 1 so freshly built blocks (epoch 0) always count.
	chainHits   uint64
	chainMisses uint64
	chainBreaks uint64
	blocksUsed  uint64
	epoch       uint64
}

type decPage struct {
	ok   [1024]bool
	inst [1024]Inst
}

// NewDecodeCache returns an empty cache.
func NewDecodeCache() *DecodeCache {
	return &DecodeCache{pages: map[uint64]*decPage{}, blocks: map[uint64]*block{}, epoch: 1}
}

// NewDecodeCacheShared returns an empty cache backed by an immutable
// pre-decoded overlay (may be nil).
func NewDecodeCacheShared(shared *SharedText) *DecodeCache {
	return &DecodeCache{shared: shared, pages: map[uint64]*decPage{}, blocks: map[uint64]*block{}, epoch: 1}
}

// InvalidateBlocks is the text-overwrite barrier: it drops every
// translated basic block AND every cached decoded instruction, which
// also severs every superblock link — a link can only point at a block
// reachable from the dropped map, and execution never holds block
// pointers across a StepN return, so no stale chain can survive.
// Callers that overwrite text must use this; severed links are counted
// as chain breaks. The immutable SharedText overlay is not (and must
// not be) dropped: it only covers the read-only program image.
func (d *DecodeCache) InvalidateBlocks() {
	for _, b := range d.blocks {
		if b.link0 != nil {
			d.chainBreaks++
		}
		if b.link1 != nil {
			d.chainBreaks++
		}
	}
	d.blocks = map[uint64]*block{}
	d.mruBPC, d.mruB = 0, nil
	d.pages = map[uint64]*decPage{}
	d.mruK, d.mruV = 0, nil
	d.seqPC, d.seqPg, d.seqIdx = 0, nil, 0
}

// ResetChains severs every superblock link and starts a fresh telemetry
// epoch while keeping the translated blocks themselves. Checkpoint
// restore calls this: blocks survive (the restored image is
// text-identical, so re-translating would only penalize restore-heavy
// callers like the sweep engine) but links must not — with links dropped,
// the first post-restore entry into every block goes through the entry-PC
// map, so chain telemetry after a restore is identical whether the block
// cache was warm (reused machine) or cold (memoized checkpoint into a
// fresh machine), keeping stats exports byte-identical across both.
func (d *DecodeCache) ResetChains() {
	for _, b := range d.blocks {
		b.link0, b.link1 = nil, nil
		b.link0pc, b.link1pc = 0, 0
	}
	d.epoch++
	d.chainHits, d.chainMisses, d.chainBreaks, d.blocksUsed = 0, 0, 0, 0
}

// ChainStats snapshots the superblock-chaining telemetry accumulated
// since the last ResetChains.
func (d *DecodeCache) ChainStats() isa.ChainStats {
	return isa.ChainStats{
		Blocks: d.blocksUsed,
		Hits:   d.chainHits,
		Misses: d.chainMisses,
		Breaks: d.chainBreaks,
	}
}

func (d *DecodeCache) lookup(pc uint64, mem *isa.Mem) (Inst, error) {
	// A page cannot be crossed by pc+4 when seqIdx+1 is still in range,
	// so the single compare covers both the page and the slot.
	if d.seqPg != nil && pc == d.seqPC+4 && d.seqIdx+1 < len(d.seqPg.ok) {
		if idx := d.seqIdx + 1; d.seqPg.ok[idx] {
			d.seqPC, d.seqIdx = pc, idx
			return d.seqPg.inst[idx], nil
		}
	}
	if in, ok := d.shared.lookup(pc); ok {
		return in, nil
	}
	key := pc >> 12
	pg := d.mruV
	if d.mruK != key || pg == nil {
		pg = d.pages[key]
		if pg == nil {
			pg = &decPage{}
			d.pages[key] = pg
		}
		d.mruK, d.mruV = key, pg
	}
	idx := (pc & 0xFFF) >> 2
	if pg.ok[idx] {
		d.seqPC, d.seqPg, d.seqIdx = pc, pg, int(idx)
		return pg.inst[idx], nil
	}
	w := uint32(mem.Load(pc, 4))
	in, err := Decode(w)
	if err != nil {
		return Inst{}, fmt.Errorf("riscv: at pc=%#x: %w", pc, err)
	}
	pg.inst[idx] = in
	pg.ok[idx] = true
	d.seqPC, d.seqPg, d.seqIdx = pc, pg, int(idx)
	return in, nil
}

// Core is the RV64IM architectural state of one hardware thread.
type Core struct {
	Regs [32]uint64
	pc   uint64
	Mem  *isa.Mem
	Hook isa.EcallHook
	Dec  *DecodeCache

	nInstr   uint64
	classes  isa.ClassCounts // census of the no-trace lane (see isa.ClassCounts)
	inflight *isa.TraceRec   // record being built during Step (for Annotate)

	// DebugRing, when non-nil, records the most recent executed PCs for
	// post-mortem diagnostics.
	DebugRing []uint64
	debugPos  int
}

// DebugPos returns the ring cursor (oldest entry index). It is always in
// [0, len(DebugRing)).
func (c *Core) DebugPos() int { return c.debugPos }

// ringPush records pc in the debug ring with explicit wrap-around: no
// divide in the hot loop and no unbounded cursor.
func (c *Core) ringPush(pc uint64) {
	c.DebugRing[c.debugPos] = pc
	c.debugPos++
	if c.debugPos == len(c.DebugRing) {
		c.debugPos = 0
	}
}

// NewCore returns a core bound to mem with the given decode cache.
func NewCore(mem *isa.Mem, dec *DecodeCache) *Core {
	if dec == nil {
		dec = NewDecodeCache()
	}
	return &Core{Mem: mem, Dec: dec}
}

// Arch reports isa.RV64.
func (c *Core) Arch() isa.Arch { return isa.RV64 }

// PC returns the program counter.
func (c *Core) PC() uint64 { return c.pc }

// SetPC sets the program counter.
func (c *Core) SetPC(pc uint64) { c.pc = pc }

// Arg returns ecall argument i (a0..a5).
func (c *Core) Arg(i int) uint64 { return c.Regs[RegA0+i] }

// SetArg sets ecall argument i.
func (c *Core) SetArg(i int, v uint64) { c.Regs[RegA0+i] = v }

// EcallNum returns a7, the ecall number register.
func (c *Core) EcallNum() uint64 { return c.Regs[RegA7] }

// SetRet sets a0.
func (c *Core) SetRet(v uint64) { c.Regs[RegA0] = v }

// StackPtr returns sp.
func (c *Core) StackPtr() uint64 { return c.Regs[RegSP] }

// SetStackPtr sets sp.
func (c *Core) SetStackPtr(v uint64) { c.Regs[RegSP] = v }

// InstrCount reports retired instructions.
func (c *Core) InstrCount() uint64 { return c.nInstr }

// Classes reports the cumulative class census of the no-trace lane.
func (c *Core) Classes() isa.ClassCounts { return c.classes }

// CallInto redirects execution to a handler at addr; the handler's return
// (jalr x0, 0(ra)) resumes after the current ecall instruction.
func (c *Core) CallInto(addr uint64) {
	c.Regs[RegRA] = c.pc + 4
	c.pc = addr
}

// Annotate sets flags/seq on the instruction currently being executed.
// It may only be called from an ecall hook.
func (c *Core) Annotate(flags uint8, seq uint64) {
	if c.inflight != nil {
		c.inflight.Flags |= flags
		c.inflight.Seq = seq
	}
}

// Snapshot serializes the architectural state.
func (c *Core) Snapshot() []uint64 {
	s := make([]uint64, 34)
	copy(s, c.Regs[:])
	s[32] = c.pc
	s[33] = c.nInstr
	return s
}

// Restore loads state saved by Snapshot.
func (c *Core) Restore(s []uint64) {
	copy(c.Regs[:], s[:32])
	c.pc = s[32]
	c.nInstr = s[33]
}

func (c *Core) set(rd uint8, v uint64) {
	if rd != 0 {
		c.Regs[rd] = v
	}
}

// Step executes one instruction and appends its trace record to out.
func (c *Core) Step(out []isa.TraceRec) ([]isa.TraceRec, error) {
	in, err := c.Dec.lookup(c.pc, c.Mem)
	if err != nil {
		return out, err
	}
	pc := c.pc
	if c.DebugRing != nil {
		c.ringPush(pc)
	}
	rec := isa.TraceRec{
		PC: pc, Size: 4, Class: isa.ClassAlu,
		Src1: isa.NoDep, Src2: isa.NoDep, Dst: isa.NoDep,
		MicroOps: 1,
	}
	next := pc + 4
	r := &c.Regs

	switch in.Kind {
	case KindLUI:
		c.set(in.Rd, uint64(in.Imm<<12))
		rec.Dst = in.Rd
	case KindAUIPC:
		c.set(in.Rd, pc+uint64(in.Imm<<12))
		rec.Dst = in.Rd
	case KindJAL:
		c.set(in.Rd, pc+4)
		next = pc + uint64(in.Imm)
		rec.Dst = in.Rd
		rec.Taken = true
		rec.Target = next
		if in.Rd == RegRA {
			rec.Class = isa.ClassCall
		} else {
			rec.Class = isa.ClassJump
		}
	case KindJALR:
		t := (r[in.Rs1] + uint64(in.Imm)) &^ 1
		c.set(in.Rd, pc+4)
		next = t
		rec.Src1 = in.Rs1
		rec.Dst = in.Rd
		rec.Taken = true
		rec.Target = next
		switch {
		case in.Rd == RegRA:
			rec.Class = isa.ClassCall
		case in.Rd == RegZero && in.Rs1 == RegRA:
			rec.Class = isa.ClassRet
		default:
			rec.Class = isa.ClassJump
		}
	case KindBEQ, KindBNE, KindBLT, KindBGE, KindBLTU, KindBGEU:
		var take bool
		a, b := r[in.Rs1], r[in.Rs2]
		switch in.Kind {
		case KindBEQ:
			take = a == b
		case KindBNE:
			take = a != b
		case KindBLT:
			take = int64(a) < int64(b)
		case KindBGE:
			take = int64(a) >= int64(b)
		case KindBLTU:
			take = a < b
		case KindBGEU:
			take = a >= b
		}
		rec.Class = isa.ClassBranch
		rec.Src1, rec.Src2 = in.Rs1, in.Rs2
		rec.Target = pc + uint64(in.Imm)
		if take {
			next = rec.Target
			rec.Taken = true
		}
	case KindLB, KindLH, KindLW, KindLD, KindLBU, KindLHU, KindLWU:
		addr := r[in.Rs1] + uint64(in.Imm)
		var sz uint8
		var uns bool
		switch in.Kind {
		case KindLB:
			sz = 1
		case KindLH:
			sz = 2
		case KindLW:
			sz = 4
		case KindLD:
			sz = 8
		case KindLBU:
			sz, uns = 1, true
		case KindLHU:
			sz, uns = 2, true
		case KindLWU:
			sz, uns = 4, true
		}
		v := c.Mem.Load(addr, sz)
		if !uns {
			v = isa.SignExtend(v, sz)
		}
		c.set(in.Rd, v)
		rec.Class = isa.ClassLoad
		rec.MemAddr, rec.MemSize = addr, sz
		rec.Src1 = in.Rs1
		rec.Dst = in.Rd
	case KindSB, KindSH, KindSW, KindSD:
		addr := r[in.Rs1] + uint64(in.Imm)
		var sz uint8
		switch in.Kind {
		case KindSB:
			sz = 1
		case KindSH:
			sz = 2
		case KindSW:
			sz = 4
		case KindSD:
			sz = 8
		}
		c.Mem.Store(addr, sz, r[in.Rs2])
		rec.Class = isa.ClassStore
		rec.MemAddr, rec.MemSize = addr, sz
		rec.Src1, rec.Src2 = in.Rs1, in.Rs2
	case KindADDI:
		c.set(in.Rd, r[in.Rs1]+uint64(in.Imm))
		rec.Src1, rec.Dst = in.Rs1, in.Rd
	case KindADDIW:
		c.set(in.Rd, uint64(int64(int32(r[in.Rs1]+uint64(in.Imm)))))
		rec.Src1, rec.Dst = in.Rs1, in.Rd
	case KindSLTI:
		c.set(in.Rd, b2u(int64(r[in.Rs1]) < in.Imm))
		rec.Src1, rec.Dst = in.Rs1, in.Rd
	case KindSLTIU:
		c.set(in.Rd, b2u(r[in.Rs1] < uint64(in.Imm)))
		rec.Src1, rec.Dst = in.Rs1, in.Rd
	case KindXORI:
		c.set(in.Rd, r[in.Rs1]^uint64(in.Imm))
		rec.Src1, rec.Dst = in.Rs1, in.Rd
	case KindORI:
		c.set(in.Rd, r[in.Rs1]|uint64(in.Imm))
		rec.Src1, rec.Dst = in.Rs1, in.Rd
	case KindANDI:
		c.set(in.Rd, r[in.Rs1]&uint64(in.Imm))
		rec.Src1, rec.Dst = in.Rs1, in.Rd
	case KindSLLI:
		c.set(in.Rd, r[in.Rs1]<<uint64(in.Imm))
		rec.Src1, rec.Dst = in.Rs1, in.Rd
	case KindSRLI:
		c.set(in.Rd, r[in.Rs1]>>uint64(in.Imm))
		rec.Src1, rec.Dst = in.Rs1, in.Rd
	case KindSRAI:
		c.set(in.Rd, uint64(int64(r[in.Rs1])>>uint64(in.Imm)))
		rec.Src1, rec.Dst = in.Rs1, in.Rd
	case KindADD:
		c.set(in.Rd, r[in.Rs1]+r[in.Rs2])
		rec.Src1, rec.Src2, rec.Dst = in.Rs1, in.Rs2, in.Rd
	case KindSUB:
		c.set(in.Rd, r[in.Rs1]-r[in.Rs2])
		rec.Src1, rec.Src2, rec.Dst = in.Rs1, in.Rs2, in.Rd
	case KindSLL:
		c.set(in.Rd, r[in.Rs1]<<(r[in.Rs2]&63))
		rec.Src1, rec.Src2, rec.Dst = in.Rs1, in.Rs2, in.Rd
	case KindSLT:
		c.set(in.Rd, b2u(int64(r[in.Rs1]) < int64(r[in.Rs2])))
		rec.Src1, rec.Src2, rec.Dst = in.Rs1, in.Rs2, in.Rd
	case KindSLTU:
		c.set(in.Rd, b2u(r[in.Rs1] < r[in.Rs2]))
		rec.Src1, rec.Src2, rec.Dst = in.Rs1, in.Rs2, in.Rd
	case KindXOR:
		c.set(in.Rd, r[in.Rs1]^r[in.Rs2])
		rec.Src1, rec.Src2, rec.Dst = in.Rs1, in.Rs2, in.Rd
	case KindSRL:
		c.set(in.Rd, r[in.Rs1]>>(r[in.Rs2]&63))
		rec.Src1, rec.Src2, rec.Dst = in.Rs1, in.Rs2, in.Rd
	case KindSRA:
		c.set(in.Rd, uint64(int64(r[in.Rs1])>>(r[in.Rs2]&63)))
		rec.Src1, rec.Src2, rec.Dst = in.Rs1, in.Rs2, in.Rd
	case KindOR:
		c.set(in.Rd, r[in.Rs1]|r[in.Rs2])
		rec.Src1, rec.Src2, rec.Dst = in.Rs1, in.Rs2, in.Rd
	case KindAND:
		c.set(in.Rd, r[in.Rs1]&r[in.Rs2])
		rec.Src1, rec.Src2, rec.Dst = in.Rs1, in.Rs2, in.Rd
	case KindMUL:
		c.set(in.Rd, r[in.Rs1]*r[in.Rs2])
		rec.Class = isa.ClassMul
		rec.Src1, rec.Src2, rec.Dst = in.Rs1, in.Rs2, in.Rd
	case KindMULHU:
		hi, _ := bits.Mul64(r[in.Rs1], r[in.Rs2])
		c.set(in.Rd, hi)
		rec.Class = isa.ClassMul
		rec.Src1, rec.Src2, rec.Dst = in.Rs1, in.Rs2, in.Rd
	case KindDIV:
		c.set(in.Rd, uint64(divS(int64(r[in.Rs1]), int64(r[in.Rs2]))))
		rec.Class = isa.ClassDiv
		rec.Src1, rec.Src2, rec.Dst = in.Rs1, in.Rs2, in.Rd
	case KindDIVU:
		c.set(in.Rd, divU(r[in.Rs1], r[in.Rs2]))
		rec.Class = isa.ClassDiv
		rec.Src1, rec.Src2, rec.Dst = in.Rs1, in.Rs2, in.Rd
	case KindREM:
		c.set(in.Rd, uint64(remS(int64(r[in.Rs1]), int64(r[in.Rs2]))))
		rec.Class = isa.ClassDiv
		rec.Src1, rec.Src2, rec.Dst = in.Rs1, in.Rs2, in.Rd
	case KindREMU:
		c.set(in.Rd, remU(r[in.Rs1], r[in.Rs2]))
		rec.Class = isa.ClassDiv
		rec.Src1, rec.Src2, rec.Dst = in.Rs1, in.Rs2, in.Rd
	case KindECALL:
		rec.Class = isa.ClassEcall
		if c.Hook == nil {
			return out, fmt.Errorf("riscv: ecall with no hook at pc=%#x", pc)
		}
		c.inflight = &rec
		res := c.Hook(c)
		c.inflight = nil
		c.nInstr++
		switch res {
		case isa.EcallHandled:
			c.pc = next
			return append(out, rec), nil
		case isa.EcallVector:
			// CallInto already set pc to the handler; the record's
			// target reflects the redirect for the timing model.
			rec.Target = c.pc
			rec.Taken = true
			return append(out, rec), nil
		case isa.EcallBlock:
			c.pc = next
			return append(out, rec), ErrBlock
		case isa.EcallHalt:
			c.pc = next
			return append(out, rec), ErrHalt
		}
		return out, fmt.Errorf("riscv: bad ecall result %d", res)
	case KindEBREAK:
		return out, fmt.Errorf("riscv: ebreak at pc=%#x", pc)
	case KindFENCE:
		rec.Class = isa.ClassFence
	default:
		return out, fmt.Errorf("riscv: unimplemented %s at pc=%#x", in.Kind, pc)
	}
	c.pc = next
	c.nInstr++
	return append(out, rec), nil
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func divS(a, b int64) int64 {
	if b == 0 {
		return -1
	}
	if a == -1<<63 && b == -1 {
		return a
	}
	return a / b
}

func remS(a, b int64) int64 {
	if b == 0 {
		return a
	}
	if a == -1<<63 && b == -1 {
		return 0
	}
	return a % b
}

func divU(a, b uint64) uint64 {
	if b == 0 {
		return ^uint64(0)
	}
	return a / b
}

func remU(a, b uint64) uint64 {
	if b == 0 {
		return a
	}
	return a % b
}
