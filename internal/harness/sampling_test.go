package harness

import (
	"math"
	"reflect"
	"testing"

	"svbench/internal/gemsys"
	"svbench/internal/isa"
	"svbench/internal/langrt"
)

func standaloneSpec(t *testing.T, name string) Spec {
	t.Helper()
	for _, s := range StandaloneSpecs() {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("no standalone spec %q", name)
	return Spec{}
}

// TestSampledCPIErrorBound: sampled-detailed evaluation must land within a
// stated tolerance of the full-detail CPI on real workloads, on both ISAs.
// The workloads are the scaled variants (each stats window spans many
// sampling intervals — the regime SMARTS targets; the catalog-default
// requests retire fewer records than one interval). The bound is
// deliberately wider than the benchmark's geomean target
// (BENCH_sample.json tracks that): individual windows on individual
// workloads wobble more than the suite geomean.
func TestSampledCPIErrorBound(t *testing.T) {
	const tol = 0.10 // 10% per-workload, per-window
	sc := gemsys.DefaultSamplingConfig()
	specs := []Spec{
		ScaledFibSpec(langrt.GoRT, 50000),
		ScaledAESSpec(langrt.PyRT, 1024),
	}
	for _, arch := range []isa.Arch{isa.RV64, isa.CISC64} {
		for _, base := range specs {
			name := base.Name
			// Full-detail and sampled runs share one memoized boot:
			// sampling never enters the boot fingerprint.
			cache := NewBootCache()
			cfg := gemsys.DefaultConfig(arch)
			full, err := RunCached(cfg, base, cache)
			if err != nil {
				t.Fatalf("%s/%s full: %v", name, arch, err)
			}
			spec := base
			spec.Sampling = sc
			sampled, err := RunCached(cfg, spec, cache)
			if err != nil {
				t.Fatalf("%s/%s sampled: %v", name, arch, err)
			}
			if sampled.SampleWarm == nil || sampled.SampleCold == nil {
				t.Fatalf("%s/%s: sampled run missing sample metadata", name, arch)
			}
			for _, w := range []struct {
				label         string
				full, sampled float64
			}{
				{"cold", full.Cold.CPI(), sampled.Cold.CPI()},
				{"warm", full.Warm.CPI(), sampled.Warm.CPI()},
			} {
				rel := math.Abs(w.sampled-w.full) / w.full
				t.Logf("%s/%s %s: full CPI %.3f sampled %.3f rel err %.4f",
					name, arch, w.label, w.full, w.sampled, rel)
				if rel > tol {
					t.Errorf("%s/%s %s window: sampled CPI %.3f vs full %.3f, rel err %.3f > %.2f",
						name, arch, w.label, w.sampled, w.full, rel, tol)
				}
			}
			// Architectural counts are counted, not extrapolated — but the
			// sprint lane interleaves cores functionally rather than in
			// modeled-time retirement order, so an m5 marker's window
			// boundary can shift by O(quantum) records against the
			// full-detail run. Totals stay exact; boundaries wobble within
			// a tight bound.
			wi, fi := float64(sampled.Warm.Insts), float64(full.Warm.Insts)
			if math.Abs(wi-fi) > 0.001*fi {
				t.Errorf("%s/%s: sampled warm insts %d vs full %d, boundary drift > 0.1%%",
					name, arch, sampled.Warm.Insts, full.Warm.Insts)
			}
			t.Logf("%s/%s warm meta: windows=%d coverage=%.3f cpi=%.3f±%.3f",
				name, arch, sampled.SampleWarm.Windows, sampled.SampleWarm.Coverage(),
				sampled.SampleWarm.CPIMean, sampled.SampleWarm.CPIStdErr)
		}
	}
}

// TestSamplingSharesBootCache: sampling is an eval-phase knob — it must
// not change the boot fingerprint, so a sampled run served from a cache
// entry warmed by a full-detail run is identical to a cold-booted sampled
// run.
func TestSamplingSharesBootCache(t *testing.T) {
	spec := standaloneSpec(t, "fibonacci-go")
	cfg := gemsys.DefaultConfig(isa.RV64)

	cache := NewBootCache()
	// Warm the cache with a full-detail run.
	full, err := RunCached(cfg, spec, cache)
	if err != nil {
		t.Fatal(err)
	}
	if _, misses, _ := cache.Stats(); misses != 1 {
		t.Fatalf("cache misses = %d, want 1", misses)
	}

	sampledSpec := spec
	sampledSpec.Sampling = gemsys.DefaultSamplingConfig()
	viaCache, err := RunCached(cfg, sampledSpec, cache)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses, _ := cache.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("cache hits=%d misses=%d after sampled run, want 1/1: sampling leaked into the fingerprint",
			hits, misses)
	}
	cold, err := RunCached(cfg, sampledSpec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaCache.Cold, cold.Cold) || !reflect.DeepEqual(viaCache.Warm, cold.Warm) {
		t.Fatalf("memoized sampled run differs from cold-boot sampled run:\n%+v %+v\nvs\n%+v %+v",
			viaCache.Cold, viaCache.Warm, cold.Cold, cold.Warm)
	}
	if !reflect.DeepEqual(viaCache.SampleWarm, cold.SampleWarm) {
		t.Fatalf("sample metadata differs with memoization: %+v vs %+v", viaCache.SampleWarm, cold.SampleWarm)
	}
	// And the sampled results genuinely differ in provenance from full
	// detail: metadata present, exact instruction counts preserved.
	if viaCache.SampleWarm == nil || full.SampleWarm != nil {
		t.Fatal("sample metadata mislabeled between full and sampled runs")
	}
	if viaCache.Warm.Insts != full.Warm.Insts {
		t.Errorf("sampled warm insts %d != full %d (exact counts must survive sampling)",
			viaCache.Warm.Insts, full.Warm.Insts)
	}
}
