// Command interpbench measures the functional interpreter's throughput
// (MIPS) with the translated-block fast path on and off, for the boot
// (setup, non-recording) and request-serving (trace-recording) phases of
// every standalone workload on both ISAs. Both stepping modes must agree
// on retired-instruction counts and console bytes — a speedup that
// changed the simulation would be meaningless — and the comparison is
// written as JSON (BENCH_interp.json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"svbench/internal/benchutil"
	"svbench/internal/gemsys"
	"svbench/internal/harness"
	"svbench/internal/isa"
)

// phase accumulates a timed functional run over repetitions: perRep is
// the (deterministic) retired-instruction count of a single repetition,
// insts and sec the totals across all repetitions actually timed.
type phase struct {
	perRep uint64
	insts  uint64
	sec    float64
}

func (p phase) mips() float64 {
	if p.sec == 0 {
		return 0
	}
	return float64(p.insts) / p.sec / 1e6
}

// The workloads retire from ~10^5 to a few 10^6 instructions per phase,
// which at interpreter speeds can be single-digit milliseconds — far too
// little to time against boot and checkpoint-copy overhead. Each phase is
// therefore repeated until it has retired minPhaseInsts (capped by
// maxPhaseSec of timed work so the single-step runs stay bounded), with
// only the stepping loop inside the timed region. Repetition counts are
// derived from instruction counts, never from wall time, so the work
// measured is identical across stepping modes.
const (
	minPhaseInsts = 2_000_000
	maxPhaseSec   = 2.0
)

func (p phase) done() bool {
	return p.insts >= minPhaseInsts || p.sec >= maxPhaseSec
}

type row struct {
	Workload string  `json:"workload"`
	Arch     string  `json:"arch"`
	Insts    uint64  `json:"setup_insts"`
	RecInsts uint64  `json:"record_insts"`
	MIPSSlow float64 `json:"mips_setup_slow"`
	MIPSFast float64 `json:"mips_setup_fast"`
	RecSlow  float64 `json:"mips_record_slow"`
	RecFast  float64 `json:"mips_record_fast"`
	Speedup  float64 `json:"speedup_setup"`
	RecSpeed float64 `json:"speedup_record"`
	// Superblock-chain telemetry from the fast lane's last recorded
	// repetition (the single-step lane never builds blocks). Breaks stays
	// zero here — nothing overwrites text mid-run — but is exported so
	// the schema matches the machine's interp.* stats registry.
	ChainBlocks  uint64  `json:"chain_blocks"`
	ChainHits    uint64  `json:"chain_hits"`
	ChainMisses  uint64  `json:"chain_misses"`
	ChainBreaks  uint64  `json:"chain_breaks"`
	ChainLenMean float64 `json:"chain_len_mean"`
}

type report struct {
	Date           string  `json:"date"`
	HostCPUs       int     `json:"host_cpus"`
	GoMaxProcs     int     `json:"gomaxprocs"`
	Workloads      int     `json:"workloads"`
	SetupSpeedup   float64 `json:"geomean_speedup_setup"`
	RecordSpeedup  float64 `json:"geomean_speedup_record"`
	// Geomean speedups divided by the PR 5 snapshot of the same metric:
	// the further gain contributed by superblock chaining + uop dispatch,
	// normalized against the unchanged single-step reference so host
	// speed cancels out.
	SetupVsPR5  float64 `json:"geomean_speedup_vs_pr5_setup"`
	RecordVsPR5 float64 `json:"geomean_speedup_vs_pr5_record"`
	Identical   bool    `json:"runs_identical"`
	Rows        []row   `json:"rows"`

	TotalSlowInsts uint64 `json:"total_insts_slow_path"`
}

const instrBudget = 600_000_000

// runSetupTimed boots a fresh machine for spec and runs the functional
// setup phase (no trace records), timing only the stepping loop — module
// build and machine construction stay outside the clock. It returns the
// booted machine, stopped at its checkpoint request.
func runSetupTimed(arch isa.Arch, spec harness.Spec, singleStep bool, p *phase) (*gemsys.Machine, error) {
	b, err := harness.BootSpec(gemsys.DefaultConfig(arch), spec)
	if err != nil {
		return nil, err
	}
	m := b.M
	m.SingleStep = singleStep
	t0 := time.Now()
	if err := m.RunSetup(instrBudget); err != nil {
		return nil, fmt.Errorf("setup: %w", err)
	}
	p.sec += time.Since(t0).Seconds()
	p.insts += m.Atomic.Insts
	if !m.CheckpointPending() {
		return nil, fmt.Errorf("setup finished without checkpoint")
	}
	return m, nil
}

// runOnce measures both functional phases of one workload in the given
// stepping mode: setup (boot to checkpoint, non-recording) and the
// post-checkpoint request-serving run with trace recording on. Each phase
// repeats — fresh boots for setup, checkpoint restores for the record
// phase — with only stepping inside the timed region.
func runOnce(arch isa.Arch, spec harness.Spec, singleStep bool) (setup, record phase, console string, cs isa.ChainStats, err error) {
	m, err := runSetupTimed(arch, spec, singleStep, &setup)
	if err != nil {
		return phase{}, phase{}, "", cs, err
	}
	setup.perRep = setup.insts
	ck := m.TakeCheckpoint()
	for !setup.done() {
		m2, err := runSetupTimed(arch, spec, singleStep, &setup)
		if err != nil {
			return phase{}, phase{}, "", cs, err
		}
		if n := m2.Atomic.Insts; n != setup.perRep {
			return phase{}, phase{}, "", cs, fmt.Errorf("setup retired %d insts, then %d", setup.perRep, n)
		}
	}

	// Record phase: restore the checkpoint and run the request loop to
	// halt with trace recording on, discarding traces each pump round.
	// Restore resets guest memory and console, so every repetition is the
	// same run; the checkpoint copy stays outside the timed region.
	for rep := 0; rep == 0 || (record.perRep > 0 && !record.done()); rep++ {
		if err := m.Restore(ck); err != nil {
			return phase{}, phase{}, "", cs, fmt.Errorf("restore: %w", err)
		}
		t0 := time.Now()
		n, err := m.MeasureFunctional(instrBudget, true)
		if err != nil {
			return phase{}, phase{}, "", cs, fmt.Errorf("measure: %w", err)
		}
		record.sec += time.Since(t0).Seconds()
		record.insts += n
		if rep == 0 {
			record.perRep = n
			console = m.Console()
		} else if n != record.perRep {
			return phase{}, phase{}, "", cs, fmt.Errorf("record rep retired %d insts, then %d", record.perRep, n)
		}
	}
	// Restore severed links and zeroed the counters before each rep, so
	// this snapshot covers exactly one record repetition.
	cs = m.ChainStats()
	return setup, record, console, cs, nil
}

func geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vals {
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vals)))
}

func main() {
	var (
		out     = flag.String("out", "BENCH_interp.json", "output JSON file")
		filter  = flag.String("workloads", "", "comma-separated workload name filter (default: all standalone)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
		pr5Set  = flag.Float64("pr5-setup", 3.735160194271716, "PR 5 geomean setup speedup baseline")
		pr5Rec  = flag.Float64("pr5-record", 3.6027334391720136, "PR 5 geomean record speedup baseline")
	)
	flag.Parse()
	stopProf, err := benchutil.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "interpbench:", err)
		os.Exit(2)
	}

	keep := map[string]bool{}
	for _, n := range strings.Split(*filter, ",") {
		if n = strings.TrimSpace(n); n != "" {
			keep[n] = true
		}
	}

	rep := report{
		Date:       time.Now().UTC().Format(time.RFC3339),
		HostCPUs:   runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Identical:  true,
	}
	var setupUps, recordUps []float64
	for _, arch := range []isa.Arch{isa.RV64, isa.CISC64} {
		for _, spec := range harness.StandaloneSpecs() {
			if len(keep) > 0 && !keep[spec.Name] {
				continue
			}
			slowSetup, slowRec, slowCon, _, err := runOnce(arch, spec, true)
			if err != nil {
				fmt.Fprintf(os.Stderr, "interpbench: %s/%s slow: %v\n", spec.Name, arch, err)
				os.Exit(1)
			}
			fastSetup, fastRec, fastCon, chain, err := runOnce(arch, spec, false)
			if err != nil {
				fmt.Fprintf(os.Stderr, "interpbench: %s/%s fast: %v\n", spec.Name, arch, err)
				os.Exit(1)
			}
			if slowSetup.perRep != fastSetup.perRep || slowRec.perRep != fastRec.perRep || slowCon != fastCon {
				rep.Identical = false
				fmt.Fprintf(os.Stderr,
					"interpbench: DIVERGENCE %s/%s: setup %d vs %d, record %d vs %d, console %d vs %d bytes\n",
					spec.Name, arch, slowSetup.perRep, fastSetup.perRep,
					slowRec.perRep, fastRec.perRep, len(slowCon), len(fastCon))
			}
			r := row{
				Workload:     spec.Name,
				Arch:         string(arch),
				Insts:        slowSetup.perRep,
				RecInsts:     slowRec.perRep,
				MIPSSlow:     slowSetup.mips(),
				MIPSFast:     fastSetup.mips(),
				RecSlow:      slowRec.mips(),
				RecFast:      fastRec.mips(),
				ChainBlocks:  chain.Blocks,
				ChainHits:    chain.Hits,
				ChainMisses:  chain.Misses,
				ChainBreaks:  chain.Breaks,
				ChainLenMean: chain.MeanChainLen(),
			}
			if r.MIPSSlow > 0 {
				r.Speedup = r.MIPSFast / r.MIPSSlow
			}
			if r.RecSlow > 0 {
				r.RecSpeed = r.RecFast / r.RecSlow
			}
			setupUps = append(setupUps, r.Speedup)
			recordUps = append(recordUps, r.RecSpeed)
			rep.TotalSlowInsts += slowSetup.perRep + slowRec.perRep
			rep.Rows = append(rep.Rows, r)
			fmt.Printf("%-14s %-7s setup %7.1f → %7.1f MIPS (%.2fx)   record %7.1f → %7.1f MIPS (%.2fx)   chain %d blk, %.0f len\n",
				spec.Name, arch, r.MIPSSlow, r.MIPSFast, r.Speedup, r.RecSlow, r.RecFast, r.RecSpeed,
				r.ChainBlocks, r.ChainLenMean)
		}
	}
	rep.Workloads = len(rep.Rows)
	rep.SetupSpeedup = geomean(setupUps)
	rep.RecordSpeedup = geomean(recordUps)
	if *pr5Set > 0 {
		rep.SetupVsPR5 = rep.SetupSpeedup / *pr5Set
	}
	if *pr5Rec > 0 {
		rep.RecordVsPR5 = rep.RecordSpeedup / *pr5Rec
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "interpbench:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "interpbench:", err)
		os.Exit(1)
	}
	f.Close()
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "interpbench:", err)
		os.Exit(1)
	}
	fmt.Printf("geomean speedup: setup %.2fx (%.2fx vs PR5), record %.2fx (%.2fx vs PR5) → %s\n",
		rep.SetupSpeedup, rep.SetupVsPR5, rep.RecordSpeedup, rep.RecordVsPR5, *out)
	if !rep.Identical {
		fmt.Fprintln(os.Stderr, "interpbench: fast and single-step runs diverged")
		os.Exit(1)
	}
}
