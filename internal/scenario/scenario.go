// Package scenario is the declarative chaos-scenario engine: it arms
// timed fault plans mid-load-run against the open-loop load engine
// (internal/loadgen) and reports how the platform degrades and recovers.
//
// A Scenario is a named, seed-deterministic spec: a load shape (arrival
// process, rate, window, keep-alive policy), a list of timed Phases that
// each attach faults.Rules inside a virtual-time window, a retry policy,
// and an SLO (p99 latency bound, error-rate bound) with an expected
// recovery deadline. The engine compiles the phases into one windowed
// faults.Plan, hooks the injector into the load engine's event loop
// (loadgen.Config.Chaos), and lets retry storms and queue buildup emerge
// from the retry policy and the keep-alive pool rather than modeling
// them. Recovery is measured as time-to-SLO-reattainment after the last
// window closes.
//
// Determinism is inherited from loadgen's contract: one run is a
// sequential DES whose every decision — including every fault draw — is
// a pure function of (config, seed), so reports, stats text and trace
// JSON are byte-identical across repeated runs and any RunMany worker
// count. See docs/scenarios.md.
package scenario

import (
	"fmt"

	"svbench/internal/faults"
	"svbench/internal/gemsys"
	"svbench/internal/harness"
	"svbench/internal/loadgen"
	"svbench/internal/sweep"
)

// Phase is one timed fault window of a scenario: while Window contains
// the load clock, Rules are live on the injector. Phases may overlap;
// rules fire in phase order.
type Phase struct {
	Name   string
	Window faults.Window
	Rules  []faults.Rule
}

// SLO is the service-level objective a scenario is judged against. Zero
// fields are unbounded.
type SLO struct {
	// P99NS bounds the p99 end-to-end latency in virtual nanoseconds.
	P99NS uint64
	// ErrorRate bounds the failed-invocation fraction (0..1).
	ErrorRate float64
}

// Scenario is one named chaos experiment: a load shape, timed fault
// phases, a recovery policy and the SLO to judge the run against.
type Scenario struct {
	Name        string
	Description string

	// Load shape (loadgen.Config fields the scenario owns).
	RPS          float64
	Duration     uint64
	Arrival      loadgen.Process
	Burst        int
	KeepAlive    uint64
	MaxInstances int

	// Retry is the client recovery policy (nil = fail on first fault).
	Retry *faults.Retry

	// Phases are the timed fault windows (empty = fault-free baseline).
	Phases []Phase

	// SLO is the objective; RecoveryDeadline bounds how long after the
	// last window closes the SLO must be reattained (0 = unbounded).
	SLO              SLO
	RecoveryDeadline uint64
}

// Config binds a scenario to a machine configuration and function spec.
type Config struct {
	Scenario Scenario
	// Cfg is the simulated machine configuration (gemsys.DefaultConfig).
	Cfg gemsys.Config
	// Spec is the function under load.
	Spec harness.Spec
	// Seed drives both the arrival process and the fault plan.
	Seed uint64
	// Cache, when non-nil, memoizes post-boot checkpoints across runs.
	Cache *harness.BootCache
}

// planSeedMix decorrelates the fault plan's PRNG from the arrival
// process, which consumes the raw seed ("scenario" in ASCII).
const planSeedMix = 0x7363656E6172696F

// compilePlan stamps each phase's window onto its rules and flattens
// them into one windowed fault plan.
func (s *Scenario) compilePlan(seed uint64) faults.Plan {
	p := faults.Plan{Seed: seed ^ planSeedMix}
	for _, ph := range s.Phases {
		for _, r := range ph.Rules {
			r.Window = ph.Window
			p.Rules = append(p.Rules, r)
		}
	}
	return p
}

// hook adapts an armed injector to loadgen's AttemptHook: every attempt
// is evaluated against the window-active rules at its send instant.
type hook struct {
	inj *faults.Injector
}

func (h *hook) Attempt(inv, attempt int, now uint64) faults.AttemptFault {
	return h.inj.AttemptAt(now)
}

// Run executes one scenario. The returned Result — including its
// rendered table, stats text and trace JSON — is a pure function of cfg.
func Run(cfg Config) (*Result, error) {
	s := &cfg.Scenario
	if s.Name == "" {
		return nil, fmt.Errorf("scenario: unnamed scenario")
	}
	for _, ph := range s.Phases {
		if ph.Window.IsZero() || ph.Window.Empty() {
			return nil, fmt.Errorf("scenario %s: phase %q needs a non-empty window", s.Name, ph.Name)
		}
		if len(ph.Rules) == 0 {
			return nil, fmt.Errorf("scenario %s: phase %q has no rules", s.Name, ph.Name)
		}
	}

	plan := s.compilePlan(cfg.Seed)
	inj := faults.NewInjector(plan)
	lc := loadgen.Config{
		Cfg:          cfg.Cfg,
		Spec:         cfg.Spec,
		RPS:          s.RPS,
		Duration:     s.Duration,
		Seed:         cfg.Seed,
		Arrival:      s.Arrival,
		Burst:        s.Burst,
		KeepAlive:    s.KeepAlive,
		MaxInstances: s.MaxInstances,
		Cache:        cfg.Cache,
		Retry:        s.Retry,
	}
	if len(s.Phases) > 0 {
		// Arm for the whole run: the windows themselves open and close the
		// fault plan on the virtual clock.
		inj.Arm()
		lc.Chaos = &hook{inj: inj}
	}
	lr, err := loadgen.Run(lc)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	return assemble(cfg, plan, inj.Report, lr)
}

// RunMany executes one scenario run per config across a worker pool of
// jobs workers (0 = sweep.DefaultJobs()); configs without their own
// Cache share one. Results come back in config order and each is
// byte-identical to a solo Run of the same config.
func RunMany(cfgs []Config, jobs int) ([]*Result, []error) {
	shared := harness.NewBootCache()
	results := make([]*Result, len(cfgs))
	errs := make([]error, len(cfgs))
	sweep.Each(len(cfgs), jobs, func(i int) {
		c := cfgs[i]
		if c.Cache == nil {
			c.Cache = shared
		}
		results[i], errs[i] = Run(c)
	})
	return results, errs
}
