package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBuilderBasics(t *testing.T) {
	b := NewFunc("f", 2)
	if b.Param(0) != 0 || b.Param(1) != 1 {
		t.Fatal("params must occupy the first registers")
	}
	r := b.Add(b.Param(0), b.Param(1))
	b.Ret(r)
	f := b.Build()
	if f.NParams != 2 || f.NRegs < 3 {
		t.Fatalf("NParams=%d NRegs=%d", f.NParams, f.NRegs)
	}
	if f.Code[len(f.Code)-1].Op != OpRet {
		t.Fatal("function must end in a return")
	}
}

func TestBuilderAppendsMissingReturn(t *testing.T) {
	b := NewFunc("f", 0)
	b.Const(5) // no explicit return
	f := b.Build()
	if f.Code[len(f.Code)-1].Op != OpRet {
		t.Fatal("Build must append a trailing return")
	}
}

func TestBuilderPanicsOnBadParam(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := NewFunc("f", 1)
	b.Param(1)
}

func TestBuilderPanicsOnUndefinedLabel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := NewFunc("f", 0)
	b.Jmp("nowhere")
	b.Build()
}

func TestBuilderPanicsOnDuplicateLabel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := NewFunc("f", 0)
	b.Label("x")
	b.Label("x")
}

func TestValidateCatchesBadTargets(t *testing.T) {
	m := NewModule("t")
	f := &Function{Name: "f", NRegs: 1, Code: []Instr{
		{Op: OpJmp, Tgt: 99},
	}}
	m.AddFunc(f)
	if err := m.Validate(); err == nil {
		t.Fatal("out-of-range branch target accepted")
	}
}

func TestValidateCatchesUnknownCallee(t *testing.T) {
	m := NewModule("t")
	b := NewFunc("f", 0)
	b.CallV("ghost")
	m.AddFunc(b.Build())
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("unknown callee accepted: %v", err)
	}
}

func TestValidateCatchesBadRegister(t *testing.T) {
	m := NewModule("t")
	f := &Function{Name: "f", NRegs: 2, Code: []Instr{
		{Op: OpAdd, Dst: 1, A: 0, B: 7},
		{Op: OpRet, A: NoReg},
	}}
	m.AddFunc(f)
	if err := m.Validate(); err == nil {
		t.Fatal("out-of-range register accepted")
	}
}

func TestValidateCatchesBadAccessSize(t *testing.T) {
	m := NewModule("t")
	f := &Function{Name: "f", NRegs: 2, Code: []Instr{
		{Op: OpLoad, Dst: 1, A: 0, Sz: 3},
		{Op: OpRet, A: NoReg},
	}}
	m.AddFunc(f)
	if err := m.Validate(); err == nil {
		t.Fatal("bad access size accepted")
	}
}

func TestValidateCatchesTooManyArgs(t *testing.T) {
	m := NewModule("t")
	callee := NewFunc("callee", 2)
	callee.Ret0()
	m.AddFunc(callee.Build())
	f := &Function{Name: "f", NRegs: 8, Code: []Instr{
		{Op: OpCall, Dst: NoReg, Sym: "callee", Args: []Reg{0, 1, 2, 3, 4, 5, 6}},
		{Op: OpRet, A: NoReg},
	}}
	m.AddFunc(f)
	if err := m.Validate(); err == nil {
		t.Fatal("7-argument call accepted")
	}
}

func TestModuleDuplicatePanics(t *testing.T) {
	m := NewModule("t")
	b := NewFunc("f", 0)
	b.Ret0()
	m.AddFunc(b.Build())
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate function accepted")
		}
	}()
	b2 := NewFunc("f", 0)
	b2.Ret0()
	m.AddFunc(b2.Build())
}

func TestMergeShared(t *testing.T) {
	a := NewModule("a")
	fa := NewFunc("shared", 0)
	fa.Ret(fa.Const(1))
	a.AddFunc(fa.Build())

	b := NewModule("b")
	fb := NewFunc("shared", 0)
	fb.Ret(fb.Const(2))
	b.AddFunc(fb.Build())
	b.AddGlobal(&Global{Name: "g", Data: []byte{1}})

	a.MergeShared(b)
	// The existing definition wins.
	it := NewInterp(a, 1<<16)
	if got := it.Run("shared"); got != 1 {
		t.Fatalf("shared() = %d, want the first definition", got)
	}
	if a.Glob("g") == nil {
		t.Fatal("global not merged")
	}
}

func TestCondEvalAndNegate(t *testing.T) {
	cases := []struct {
		c    Cond
		a, b int64
		want bool
	}{
		{Eq, 3, 3, true}, {Ne, 3, 3, false}, {Lt, -1, 0, true},
		{Le, 0, 0, true}, {Gt, 1, 0, true}, {Ge, -1, 0, false},
		{Ltu, -1, 0, false}, // unsigned: -1 is huge
		{Geu, -1, 0, true},
	}
	for _, c := range cases {
		if got := c.c.Eval(c.a, c.b); got != c.want {
			t.Errorf("%v.Eval(%d,%d) = %v", c.c, c.a, c.b, got)
		}
		if got := c.c.Negate().Eval(c.a, c.b); got == c.want {
			t.Errorf("%v.Negate() did not flip for (%d,%d)", c.c, c.a, c.b)
		}
	}
}

func TestCondNegateIsInvolution(t *testing.T) {
	f := func(c uint8, a, b int64) bool {
		cond := Cond(c % 8)
		return cond.Negate().Negate() == cond &&
			cond.Eval(a, b) != cond.Negate().Eval(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInterpMemoryBounds(t *testing.T) {
	m := NewModule("t")
	b := NewFunc("f", 0)
	p := b.Const(1 << 30)
	b.Ret(b.Load(p, 0, 8))
	m.AddFunc(b.Build())
	it := NewInterp(m, 1<<16)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range load must panic")
		}
	}()
	it.Run("f")
}

func TestInterpBudget(t *testing.T) {
	m := NewModule("t")
	b := NewFunc("spin", 0)
	l := b.NewLabel("l")
	b.Label(l)
	b.Jmp(l)
	m.AddFunc(b.Build())
	it := NewInterp(m, 1<<16)
	it.MaxIns = 1000
	defer func() {
		if recover() == nil {
			t.Fatal("infinite loop must exhaust the budget")
		}
	}()
	it.Run("spin")
}

func TestDivisionSemantics(t *testing.T) {
	// RISC-V semantics: x/0 = -1, x%0 = x, overflow wraps.
	if divS(5, 0) != -1 || remS(5, 0) != 5 {
		t.Fatal("division by zero semantics")
	}
	min := int64(-1) << 63
	if divS(min, -1) != min || remS(min, -1) != 0 {
		t.Fatal("overflow semantics")
	}
	if divU(5, 0) != -1 {
		t.Fatal("unsigned division by zero must saturate")
	}
}

func TestInlineFlattensCalls(t *testing.T) {
	m := NewModule("t")
	h := NewFunc("helper", 1)
	h.Ret(h.MulI(h.Param(0), 3))
	m.AddFunc(h.Build())

	b := NewFunc("main", 1)
	r := b.Call("helper", b.Param(0))
	r = b.Call("helper", r)
	b.Ret(r)
	m.AddFunc(b.Build())

	flat, err := Inline(m, m.Func("main"))
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range flat.Code {
		if in.Op == OpCall {
			t.Fatalf("call to %s survived inlining", in.Sym)
		}
	}
	// Differential: flattened function computes the same value.
	m2 := NewModule("t2")
	m2.AddFunc(flat)
	it := NewInterp(m2, 1<<16)
	for _, x := range []int64{0, 1, -7, 1000} {
		want := x * 9
		if got := it.Run(flat.Name, x); got != want {
			t.Fatalf("flat(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestInlineKeepsLibCalls(t *testing.T) {
	m := NewModule("t")
	lib := NewFunc("libfn", 1)
	lib.Ret(lib.AddI(lib.Param(0), 1))
	lf := lib.Build()
	lf.Lib = true
	m.AddFunc(lf)

	b := NewFunc("main", 1)
	b.Ret(b.Call("libfn", b.Param(0)))
	m.AddFunc(b.Build())

	flat, err := Inline(m, m.Func("main"))
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	for _, in := range flat.Code {
		if in.Op == OpCall && in.Sym == "libfn" {
			calls++
		}
	}
	if calls != 1 {
		t.Fatalf("lib call count = %d, want 1 (kept as builtin)", calls)
	}
}

func TestInlineRejectsRecursion(t *testing.T) {
	m := NewModule("t")
	f := &Function{Name: "rec", NParams: 1, NRegs: 2, Code: []Instr{
		{Op: OpCall, Dst: 1, Sym: "rec", Args: []Reg{0}},
		{Op: OpRet, A: 1},
	}}
	m.AddFunc(f)
	if _, err := Inline(m, f); err == nil {
		t.Fatal("recursive inline accepted")
	}
}

func TestInlineHoistsBuffers(t *testing.T) {
	m := NewModule("t")
	h := NewFunc("helper", 0)
	p := h.Frame(h.Buf("scratch", 32), 0)
	h.Store(p, 0, h.Const(77), 8)
	h.Ret(h.Load(p, 0, 8))
	m.AddFunc(h.Build())

	b := NewFunc("main", 0)
	b.Ret(b.Call("helper"))
	m.AddFunc(b.Build())

	flat, err := Inline(m, m.Func("main"))
	if err != nil {
		t.Fatal(err)
	}
	if len(flat.Bufs) == 0 {
		t.Fatal("callee buffer not hoisted")
	}
	m2 := NewModule("t2")
	m2.AddFunc(flat)
	if got := NewInterp(m2, 1<<16).Run(flat.Name); got != 77 {
		t.Fatalf("flat() = %d, want 77", got)
	}
}

func TestInlineDeepChainMatchesInterp(t *testing.T) {
	// Three-level call chain with branches; the flattened result must
	// agree with the original on a sweep of inputs.
	m := NewModule("t")
	l2 := NewFunc("l2", 2)
	neg := l2.NewLabel("neg")
	l2.BrI(Lt, l2.Param(0), 0, neg)
	l2.Ret(l2.Add(l2.Param(0), l2.Param(1)))
	l2.Label(neg)
	l2.Ret(l2.Sub(l2.Param(1), l2.Param(0)))
	m.AddFunc(l2.Build())

	l1 := NewFunc("l1", 1)
	a := l1.Call("l2", l1.Param(0), l1.Const(10))
	bv := l1.Call("l2", l1.MulI(l1.Param(0), -1), a)
	l1.Ret(bv)
	m.AddFunc(l1.Build())

	l0 := NewFunc("l0", 1)
	l0.Ret(l0.Call("l1", l0.AddI(l0.Param(0), 3)))
	m.AddFunc(l0.Build())

	flat, err := Inline(m, m.Func("l0"))
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewModule("t2")
	m2.AddFunc(flat)
	orig := NewInterp(m, 1<<16)
	flatIt := NewInterp(m2, 1<<16)
	for x := int64(-20); x <= 20; x++ {
		if a, b := orig.Run("l0", x), flatIt.Run(flat.Name, x); a != b {
			t.Fatalf("l0(%d): original %d, flattened %d", x, a, b)
		}
	}
}

func TestBufOffsets(t *testing.T) {
	f := &Function{Bufs: []Buffer{{"a", 10}, {"b", 8}, {"c", 1}}}
	offA, _ := f.BufOffset("a")
	offB, _ := f.BufOffset("b")
	offC, total := f.BufOffset("c")
	if offA != 0 || offB != 16 || offC != 24 {
		t.Fatalf("offsets %d %d %d", offA, offB, offC)
	}
	if total != 32 {
		t.Fatalf("total %d", total)
	}
	if f.BufArea() != 32 {
		t.Fatalf("area %d", f.BufArea())
	}
}
