// Command sweepbench times the evaluation sweep serially and in
// parallel and writes the comparison as JSON (BENCH_sweep.json). The
// sweep's figures are asserted byte-identical across both runs first —
// a speedup that changed the results would be meaningless.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"svbench/internal/benchutil"
	"svbench/internal/figures"
	"svbench/internal/harness"
	"svbench/internal/sweep"
)

type report struct {
	Date       string  `json:"date"`
	HostCPUs   int     `json:"host_cpus"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Matrix     string  `json:"matrix"`
	Tasks      int     `json:"tasks"`
	JobsBefore int     `json:"jobs_before"`
	JobsAfter  int     `json:"jobs_after"`
	SecBefore  float64 `json:"seconds_before"`
	SecAfter   float64 `json:"seconds_after"`
	Speedup    float64 `json:"speedup"`
	MemoHits   uint64  `json:"memo_hits"`
	MemoMisses uint64  `json:"memo_misses"`
	Identical  bool    `json:"figures_identical"`
}

func main() {
	var (
		out     = flag.String("out", "BENCH_sweep.json", "output JSON file")
		jobs    = flag.Int("j", sweep.DefaultJobs(), "parallel worker count for the after run")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if err := sweep.ValidateJobs(*jobs); err != nil {
		fmt.Fprintln(os.Stderr, "sweepbench: -j:", err)
		os.Exit(2)
	}
	stopProf, err := benchutil.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepbench:", err)
		os.Exit(2)
	}

	collect := func(opt figures.SweepOpts) (*figures.Results, string, float64) {
		t0 := time.Now()
		res, err := figures.CollectWith(opt)
		dt := time.Since(t0).Seconds()
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweepbench:", err)
			os.Exit(1)
		}
		all, err := figures.ReportData(res, figures.ReportOpts{SkipEmulation: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweepbench:", err)
			os.Exit(1)
		}
		return res, figures.Render(res, all), dt
	}

	fmt.Fprintf(os.Stderr, "sweepbench: serial sweep (-j 1, no memoization)...\n")
	_, mdBefore, secBefore := collect(figures.SweepOpts{Jobs: 1, DisableMemo: true})
	fmt.Fprintf(os.Stderr, "sweepbench: %.2fs; parallel sweep (-j %d, memoized)...\n", secBefore, *jobs)

	cache := harness.NewBootCache()
	_, mdAfter, secAfter := collect(figures.SweepOpts{Jobs: *jobs, Cache: cache})
	hits, misses, _ := cache.Stats()

	nTasks := 2 * (len(harness.StandaloneSpecs()) + len(harness.ShopSpecs()) +
		len(harness.HotelSpecs(harness.EngineCassandra)))
	rep := report{
		Date:       time.Now().UTC().Format("2006-01-02"),
		HostCPUs:   runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Matrix:     "standalone+shop+hotel(cassandra) × {rv64, cisc64}, skip-emulation",
		Tasks:      nTasks,
		JobsBefore: 1,
		JobsAfter:  *jobs,
		SecBefore:  secBefore,
		SecAfter:   secAfter,
		Speedup:    secBefore / secAfter,
		MemoHits:   hits,
		MemoMisses: misses,
		Identical:  mdBefore == mdAfter,
	}
	if !rep.Identical {
		fmt.Fprintln(os.Stderr, "sweepbench: FIGURES DIFFER between serial and parallel runs")
	}
	js, _ := json.MarshalIndent(rep, "", "  ")
	js = append(js, '\n')
	if err := os.WriteFile(*out, js, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "sweepbench:", err)
		os.Exit(1)
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "sweepbench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "sweepbench: %.2fs -> %.2fs (%.2fx), identical=%v, %s\n",
		secBefore, secAfter, rep.Speedup, rep.Identical, *out)
	if !rep.Identical {
		os.Exit(1)
	}
}
