package figures

import (
	"strings"
	"testing"

	"svbench/internal/isa"
)

// TestTableClusterShape runs the cluster figure on one arch and checks
// the projected rows cover every shipped topology with sane values.
func TestTableClusterShape(t *testing.T) {
	d, err := TableCluster([]isa.Arch{isa.RV64}, 7, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 2 {
		t.Fatalf("rows = %d, want one per topology", len(d.Rows))
	}
	for _, r := range d.Rows {
		if !strings.HasSuffix(r.Label, "/rv64") {
			t.Errorf("row label %q missing arch suffix", r.Label)
		}
		if len(r.Values) != len(d.Columns) {
			t.Fatalf("row %s has %d values for %d columns", r.Label, len(r.Values), len(d.Columns))
		}
		if r.Values[0] < 12 {
			t.Errorf("row %s machines = %g", r.Label, r.Values[0])
		}
		for i, v := range r.Values {
			if v <= 0 {
				t.Errorf("row %s column %s = %g", r.Label, d.Columns[i], v)
			}
		}
	}
}
