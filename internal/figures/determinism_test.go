package figures

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"svbench/internal/harness"
	"svbench/internal/isa"
	"svbench/internal/trace"
)

// reducedMatrix is a small but representative slice of the catalog:
// standalone functions (memoizable setup) plus hotel functions (native
// database services, the non-memoizable path), traced so the stats and
// trace exports are part of the comparison.
func reducedMatrix(t *testing.T) (fn, hotel []harness.Spec) {
	t.Helper()
	for _, sp := range harness.StandaloneSpecs() {
		switch sp.Name {
		case "fibonacci-go", "aes-python", "auth-nodejs":
			sp.Requests = 3
			sp.Trace = trace.Options{Enabled: true}
			fn = append(fn, sp)
		}
	}
	for _, sp := range harness.HotelSpecs(harness.EngineCassandra) {
		switch sp.Name {
		case "geo", "profile":
			sp.Requests = 3
			sp.Trace = trace.Options{Enabled: true}
			hotel = append(hotel, sp)
		}
	}
	if len(fn) != 3 || len(hotel) != 2 {
		t.Fatalf("reduced matrix incomplete: %d fn, %d hotel specs", len(fn), len(hotel))
	}
	return fn, hotel
}

// exportDump concatenates every per-run export that the determinism
// contract covers: the rendered figures, the gem5-style stats-registry
// text, the Chrome trace JSON, the raw response bytes, and the setup
// instruction counts.
func exportDump(t *testing.T, res *Results) []byte {
	t.Helper()
	var buf bytes.Buffer
	all := []Data{res.Fig44(), res.Fig45(), res.Fig46(), res.Fig47(), res.Fig48(),
		res.Fig49(), res.Fig410(), res.Fig411(), res.Fig412(), res.Fig413(),
		res.Fig414(), res.Fig415(), res.Fig416(), res.Fig417(), res.Fig418(),
		res.Fig419(), res.TableMPKI()}
	buf.WriteString(Render(res, all))
	for _, arch := range []isa.Arch{isa.RV64, isa.CISC64} {
		for _, name := range append(append([]string{}, FnOrder...), HotelOrder...) {
			r := res.fn(arch, name)
			if r == nil {
				continue
			}
			fmt.Fprintf(&buf, "== %s/%s setup=%d ==\n", arch, name, r.SetupInsts)
			buf.Write(r.Response)
			buf.WriteString(r.StatsText)
			buf.Write(r.TraceJSON)
		}
	}
	return buf.Bytes()
}

// TestCollectByteIdentical is the headline determinism claim: the full
// set of exports is byte-identical whether the sweep runs on one worker,
// on GOMAXPROCS workers, or with checkpoint memoization disabled.
func TestCollectByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the reduced matrix three times")
	}
	fn, hotel := reducedMatrix(t)
	arches := []isa.Arch{isa.RV64, isa.CISC64}

	variants := []struct {
		label string
		opt   SweepOpts
	}{
		{"j1-memo-off", SweepOpts{Jobs: 1, DisableMemo: true}},
		{"jN-memo-on", SweepOpts{Jobs: runtime.GOMAXPROCS(0)}},
		{"j4-memo-off", SweepOpts{Jobs: 4, DisableMemo: true}},
	}
	var want []byte
	for i, v := range variants {
		res := SweepWith(arches, fn, hotel, v.opt)
		if len(res.Failures) > 0 {
			t.Fatalf("%s: %d failures: %v", v.label, len(res.Failures), res.Failures[0])
		}
		got := exportDump(t, res)
		if i == 0 {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: exports differ from %s (%d vs %d bytes)",
				v.label, variants[0].label, len(got), len(want))
		}
	}
	if len(want) == 0 {
		t.Fatal("empty export dump")
	}
}

// TestFailuresSortedDeterministically: failures land in Results.Failures
// sorted by arch then spec name, regardless of which worker saw them
// first.
func TestFailuresSortedDeterministically(t *testing.T) {
	var zz, aa harness.Spec
	for _, sp := range harness.StandaloneSpecs() {
		switch sp.Name {
		case "fibonacci-go":
			zz = sp
		case "aes-go":
			aa = sp
		}
	}
	// Both fail validation instantly; list them in reverse-sorted order.
	zz.Requests = 1
	aa.Requests = 1
	specs := []harness.Spec{zz, aa}

	for _, jobs := range []int{1, 4} {
		res := SweepWith([]isa.Arch{isa.RV64, isa.CISC64}, specs, nil, SweepOpts{Jobs: jobs})
		if len(res.Failures) != 4 {
			t.Fatalf("jobs=%d: got %d failures, want 4", jobs, len(res.Failures))
		}
		var got []string
		for _, f := range res.Failures {
			got = append(got, fmt.Sprintf("%s/%s", f.Arch, f.Spec))
		}
		want := []string{"cisc64/aes-go", "cisc64/fibonacci-go", "rv64/aes-go", "rv64/fibonacci-go"}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("jobs=%d: failures order %v, want %v", jobs, got, want)
			}
		}
	}
}
