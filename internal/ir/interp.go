package ir

import "fmt"

// EcallFunc handles an environment call in the reference interpreter.
type EcallFunc func(num int64, args [6]int64, m []byte) int64

// Interp is a reference interpreter for IR modules. It executes IR
// directly (no machine code) and is used for differential testing: a
// program must produce identical results under the interpreter, the RV64
// backend and the CISC64 backend.
type Interp struct {
	Mod    *Module
	Mem    []byte
	Ecall  EcallFunc
	glob   map[string]int64
	sp     int64
	MaxIns int64 // execution budget; 0 means default
	nexec  int64
}

// NewInterp builds an interpreter with memSize bytes of memory, laying out
// the module's globals from address 0x1000 upward and a stack at the top.
func NewInterp(m *Module, memSize int) *Interp {
	it := &Interp{
		Mod:  m,
		Mem:  make([]byte, memSize),
		glob: map[string]int64{},
		sp:   int64(memSize),
	}
	addr := int64(0x1000)
	for _, g := range m.Globals {
		if g.Align > 1 {
			addr = (addr + g.Align - 1) / g.Align * g.Align
		}
		it.glob[g.Name] = addr
		copy(it.Mem[addr:], g.Data)
		addr += int64(len(g.Data))
	}
	return it
}

// GlobalAddr returns the interpreter's address of a global.
func (it *Interp) GlobalAddr(name string) int64 {
	a, ok := it.glob[name]
	if !ok {
		panic("ir: unknown global " + name)
	}
	return a
}

func (it *Interp) read(addr int64, sz uint8, unsigned bool) int64 {
	if addr < 0 || addr+int64(sz) > int64(len(it.Mem)) {
		panic(fmt.Sprintf("ir: interp load out of range addr=%#x sz=%d", addr, sz))
	}
	var v uint64
	for i := uint8(0); i < sz; i++ {
		v |= uint64(it.Mem[addr+int64(i)]) << (8 * i)
	}
	if !unsigned {
		switch sz {
		case 1:
			v = uint64(int64(int8(v)))
		case 2:
			v = uint64(int64(int16(v)))
		case 4:
			v = uint64(int64(int32(v)))
		}
	}
	return int64(v)
}

func (it *Interp) write(addr int64, sz uint8, val int64) {
	if addr < 0 || addr+int64(sz) > int64(len(it.Mem)) {
		panic(fmt.Sprintf("ir: interp store out of range addr=%#x sz=%d", addr, sz))
	}
	v := uint64(val)
	for i := uint8(0); i < sz; i++ {
		it.Mem[addr+int64(i)] = byte(v >> (8 * i))
	}
}

// Run executes the named function with args and returns its result.
func (it *Interp) Run(fn string, args ...int64) int64 {
	f := it.Mod.Func(fn)
	if f == nil {
		panic("ir: unknown function " + fn)
	}
	it.nexec = 0
	return it.call(f, args)
}

// Executed reports the number of IR instructions executed by the last Run.
func (it *Interp) Executed() int64 { return it.nexec }

func (it *Interp) call(f *Function, args []int64) int64 {
	budget := it.MaxIns
	if budget == 0 {
		budget = 1 << 30
	}
	regs := make([]int64, f.NRegs)
	copy(regs, args)
	// Allocate frame buffer area on the interpreter stack.
	area := f.BufArea()
	it.sp -= area
	frameBase := it.sp
	defer func() { it.sp += area }()

	pc := 0
	for pc < len(f.Code) {
		if it.nexec++; it.nexec > budget {
			panic("ir: interp execution budget exceeded in " + f.Name)
		}
		in := &f.Code[pc]
		switch in.Op {
		case OpNop, OpFence:
		case OpConst:
			regs[in.Dst] = in.Imm
		case OpMov:
			regs[in.Dst] = regs[in.A]
		case OpAdd:
			regs[in.Dst] = regs[in.A] + regs[in.B]
		case OpSub:
			regs[in.Dst] = regs[in.A] - regs[in.B]
		case OpMul:
			regs[in.Dst] = regs[in.A] * regs[in.B]
		case OpDiv:
			regs[in.Dst] = divS(regs[in.A], regs[in.B])
		case OpRem:
			regs[in.Dst] = remS(regs[in.A], regs[in.B])
		case OpDivU:
			regs[in.Dst] = divU(regs[in.A], regs[in.B])
		case OpRemU:
			regs[in.Dst] = remU(regs[in.A], regs[in.B])
		case OpAnd:
			regs[in.Dst] = regs[in.A] & regs[in.B]
		case OpOr:
			regs[in.Dst] = regs[in.A] | regs[in.B]
		case OpXor:
			regs[in.Dst] = regs[in.A] ^ regs[in.B]
		case OpShl:
			regs[in.Dst] = regs[in.A] << (uint64(regs[in.B]) & 63)
		case OpShr:
			regs[in.Dst] = int64(uint64(regs[in.A]) >> (uint64(regs[in.B]) & 63))
		case OpSra:
			regs[in.Dst] = regs[in.A] >> (uint64(regs[in.B]) & 63)
		case OpAddI:
			regs[in.Dst] = regs[in.A] + in.Imm
		case OpMulI:
			regs[in.Dst] = regs[in.A] * in.Imm
		case OpAndI:
			regs[in.Dst] = regs[in.A] & in.Imm
		case OpOrI:
			regs[in.Dst] = regs[in.A] | in.Imm
		case OpXorI:
			regs[in.Dst] = regs[in.A] ^ in.Imm
		case OpShlI:
			regs[in.Dst] = regs[in.A] << (uint64(in.Imm) & 63)
		case OpShrI:
			regs[in.Dst] = int64(uint64(regs[in.A]) >> (uint64(in.Imm) & 63))
		case OpSraI:
			regs[in.Dst] = regs[in.A] >> (uint64(in.Imm) & 63)
		case OpSet:
			if in.Cond.Eval(regs[in.A], regs[in.B]) {
				regs[in.Dst] = 1
			} else {
				regs[in.Dst] = 0
			}
		case OpLoad:
			regs[in.Dst] = it.read(regs[in.A]+in.Imm, in.Sz, in.Uns)
		case OpStore:
			it.write(regs[in.A]+in.Imm, in.Sz, regs[in.B])
		case OpBr:
			if in.Cond.Eval(regs[in.A], regs[in.B]) {
				pc = in.Tgt
				continue
			}
		case OpBrI:
			if in.Cond.Eval(regs[in.A], in.Imm) {
				pc = in.Tgt
				continue
			}
		case OpJmp:
			pc = in.Tgt
			continue
		case OpCall:
			callee := it.Mod.Func(in.Sym)
			if callee == nil {
				panic("ir: call to unknown function " + in.Sym)
			}
			cargs := make([]int64, len(in.Args))
			for i, a := range in.Args {
				cargs[i] = regs[a]
			}
			ret := it.call(callee, cargs)
			if in.Dst != NoReg {
				regs[in.Dst] = ret
			}
		case OpRet:
			if in.A == NoReg {
				return 0
			}
			return regs[in.A]
		case OpEcall:
			var eargs [6]int64
			for i, a := range in.Args {
				eargs[i] = regs[a]
			}
			var ret int64
			if it.Ecall != nil {
				ret = it.Ecall(in.Imm, eargs, it.Mem)
			}
			if in.Dst != NoReg {
				regs[in.Dst] = ret
			}
		case OpGlobal:
			regs[in.Dst] = it.GlobalAddr(in.Sym) + in.Imm
		case OpFrame:
			off, _ := f.BufOffset(in.Sym)
			regs[in.Dst] = frameBase + off + in.Imm
		default:
			panic(fmt.Sprintf("ir: interp: bad op %d", in.Op))
		}
		pc++
	}
	return 0
}

// divS implements RISC-V style signed division semantics (x/0 = -1,
// overflow wraps), which both backends follow.
func divS(a, b int64) int64 {
	if b == 0 {
		return -1
	}
	if a == -1<<63 && b == -1 {
		return a
	}
	return a / b
}

func remS(a, b int64) int64 {
	if b == 0 {
		return a
	}
	if a == -1<<63 && b == -1 {
		return 0
	}
	return a % b
}

func divU(a, b int64) int64 {
	if b == 0 {
		return -1
	}
	return int64(uint64(a) / uint64(b))
}

func remU(a, b int64) int64 {
	if b == 0 {
		return a
	}
	return int64(uint64(a) % uint64(b))
}
