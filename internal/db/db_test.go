package db

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"svbench/internal/rpc"
)

// TestLSMMatchesMap property-checks the Cassandra engine against a plain
// map under random operation sequences, forcing flushes and compactions
// with a tiny memtable.
func TestLSMMatchesMap(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	f := func() bool {
		c := NewCassandra(CassandraConfig{MemtableLimit: 256, LevelFanout: 3})
		ref := map[string][]byte{}
		for op := 0; op < 600; op++ {
			key := fmt.Sprintf("k%03d", rnd.Intn(80))
			if rnd.Intn(3) > 0 {
				val := make([]byte, rnd.Intn(24)+1)
				rnd.Read(val)
				c.Put("t", key, val)
				ref["t\x00"+key] = append([]byte(nil), val...)
			} else {
				got, ok := c.Get("t", key)
				want, wok := ref["t\x00"+key]
				if ok != wok || (ok && !reflect.DeepEqual(got, want)) {
					t.Logf("op %d key %s: got (%x,%v) want (%x,%v)", op, key, got, ok, want, wok)
					return false
				}
			}
		}
		if c.Stats.Flushes == 0 || c.Stats.Compactions == 0 {
			t.Logf("expected flushes and compactions: %+v", c.Stats)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestCassandraScan(t *testing.T) {
	c := NewCassandra(CassandraConfig{MemtableLimit: 128})
	for i := 0; i < 30; i++ {
		c.Put("hotels", fmt.Sprintf("h%02d", i), []byte(fmt.Sprintf("hotel-%d", i)))
	}
	c.Put("rates", "h00", []byte("unrelated"))
	got := c.Scan("hotels", "h0", 5)
	if len(got) != 5 {
		t.Fatalf("scan returned %d pairs, want 5", len(got))
	}
	for i, p := range got {
		if p.Key != fmt.Sprintf("h%02d", i) {
			t.Fatalf("pair %d key %q", i, p.Key)
		}
	}
	if all := c.Scan("hotels", "", 0); len(all) != 30 {
		t.Fatalf("full scan returned %d", len(all))
	}
}

func TestCassandraRowCacheWarming(t *testing.T) {
	c := NewCassandra(CassandraConfig{MemtableLimit: 64})
	for i := 0; i < 50; i++ {
		c.Put("t", fmt.Sprintf("k%d", i), []byte("v"))
	}
	// Cold read probes SSTables, warm read hits the row cache.
	_, ok, probed1 := c.GetProbed("t", "k3")
	if !ok {
		t.Fatal("k3 missing")
	}
	_, _, probed2 := c.GetProbed("t", "k3")
	if probed1 == 0 {
		t.Fatal("cold read should probe SSTables")
	}
	if probed2 != 0 {
		t.Fatalf("warm read probed %d SSTables, want 0 (row cache)", probed2)
	}
}

func TestBtreeMatchesMap(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	f := func() bool {
		m := NewMongo()
		ref := map[string][]byte{}
		for op := 0; op < 800; op++ {
			key := fmt.Sprintf("doc%03d", rnd.Intn(150))
			if rnd.Intn(3) > 0 {
				val := MarshalDoc(Doc{"i": int64(op), "s": key})
				m.Put("c", key, val)
				ref[key] = val
			} else {
				got, ok := m.Get("c", key)
				want, wok := ref[key]
				if ok != wok || (ok && !reflect.DeepEqual(got, want)) {
					return false
				}
			}
		}
		// Ordered scan equals sorted ref keys.
		scan := m.Scan("c", "doc", 0)
		if len(scan) != len(ref) {
			t.Logf("scan %d != ref %d", len(scan), len(ref))
			return false
		}
		for i := 1; i < len(scan); i++ {
			if scan[i-1].Key >= scan[i].Key {
				t.Logf("scan out of order at %d", i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestBSONRoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(9))
	f := func() bool {
		d := Doc{}
		for i := 0; i < rnd.Intn(8)+1; i++ {
			name := fmt.Sprintf("f%d", i)
			if rnd.Intn(2) == 0 {
				d[name] = rnd.Int63()
			} else {
				b := make([]byte, rnd.Intn(40))
				for j := range b {
					b[j] = byte('a' + rnd.Intn(26))
				}
				d[name] = string(b)
			}
		}
		enc := MarshalDoc(d)
		back, err := UnmarshalDoc(enc)
		if err != nil {
			t.Logf("unmarshal: %v", err)
			return false
		}
		return reflect.DeepEqual(d, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBSONRejectsGarbage(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		b := make([]byte, rnd.Intn(40))
		rnd.Read(b)
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("UnmarshalDoc(%x) panicked: %v", b, p)
				}
			}()
			_, _ = UnmarshalDoc(b)
		}()
	}
	// Truncating a valid doc must error, not panic.
	enc := MarshalDoc(Doc{"a": int64(1), "b": "hello"})
	for cut := 0; cut < len(enc); cut++ {
		if _, err := UnmarshalDoc(enc[:cut]); err == nil {
			t.Fatalf("truncated doc at %d accepted", cut)
		}
	}
}

func TestMemcachedLRUEviction(t *testing.T) {
	mc := NewMemcached(MemcachedConfig{CapacityBytes: 400, Shards: 1})
	for i := 0; i < 20; i++ {
		mc.Put("t", fmt.Sprintf("k%02d", i), make([]byte, 32))
	}
	if mc.Stats.Evictions == 0 {
		t.Fatal("expected evictions")
	}
	if _, ok := mc.Get("t", "k00"); ok {
		t.Fatal("oldest entry should be evicted")
	}
	if _, ok := mc.Get("t", "k19"); !ok {
		t.Fatal("newest entry should survive")
	}
}

func TestMariaDBRows(t *testing.T) {
	m := NewMariaDB()
	m.CreateTable("users", "id", "name", "email")
	if err := m.InsertRow("users", "u1", "Ada", "ada@example.com"); err != nil {
		t.Fatal(err)
	}
	if err := m.InsertRow("users", "u2", "Grace"); err == nil {
		t.Fatal("column count mismatch accepted")
	}
	row, ok := m.SelectByPK("users", "u1")
	if !ok || row[1] != "Ada" {
		t.Fatalf("row = %v ok=%v", row, ok)
	}
	if _, ok := m.SelectByPK("users", "nope"); ok {
		t.Fatal("phantom row")
	}
}

func TestServiceProtocol(t *testing.T) {
	for _, store := range []Store{
		NewCassandra(CassandraConfig{}), NewMongo(), NewMemcached(MemcachedConfig{}), NewMariaDB(),
	} {
		svc := NewService(store)
		// PUT
		w := rpc.NewWriter()
		w.PutInt(OpPut)
		w.PutString("t")
		w.PutString("key1")
		w.PutBytes([]byte("value-1"))
		resp, cycles := svc.Handle(w.Bytes())
		if cycles == 0 {
			t.Fatalf("%s: put cost zero", store.Name())
		}
		r := rpc.NewReader(resp)
		if st, _ := r.Int(); st != StatusOK {
			t.Fatalf("%s: put status %d", store.Name(), st)
		}
		// GET hit
		w = rpc.NewWriter()
		w.PutInt(OpGet)
		w.PutString("t")
		w.PutString("key1")
		resp, _ = svc.Handle(w.Bytes())
		r = rpc.NewReader(resp)
		st, _ := r.Int()
		if st != StatusOK {
			t.Fatalf("%s: get status %d", store.Name(), st)
		}
		val, err := r.Bytes()
		if err != nil || string(val) != "value-1" {
			t.Fatalf("%s: get value %q err %v", store.Name(), val, err)
		}
		// GET miss
		w = rpc.NewWriter()
		w.PutInt(OpGet)
		w.PutString("t")
		w.PutString("absent")
		resp, _ = svc.Handle(w.Bytes())
		r = rpc.NewReader(resp)
		if st, _ := r.Int(); st != StatusNotFound {
			t.Fatalf("%s: miss status %d", store.Name(), st)
		}
		// Garbage request
		resp, _ = svc.Handle([]byte{0xFF, 0xFF})
		r = rpc.NewReader(resp)
		if st, _ := r.Int(); st != StatusBadReq {
			t.Fatalf("%s: garbage status %d", store.Name(), st)
		}
	}
}

func TestBootCostOrdering(t *testing.T) {
	cass := NewCassandra(CassandraConfig{})
	mongo := NewMongo()
	mc := NewMemcached(MemcachedConfig{})
	maria := NewMariaDB()
	if cass.Boot() <= mongo.Boot() {
		t.Fatal("cassandra must boot slower than mongodb (§3.3.3)")
	}
	if mongo.Boot() <= mc.Boot() {
		t.Fatal("mongodb must boot slower than memcached")
	}
	if cass.Boot() <= maria.Boot() {
		t.Fatal("cassandra must boot slower than mariadb")
	}
}

func TestCassandraCompactionUnderChurn(t *testing.T) {
	c := NewCassandra(CassandraConfig{MemtableLimit: 128, LevelFanout: 2})
	for i := 0; i < 2000; i++ {
		c.Put("t", fmt.Sprintf("k%d", i%40), []byte(fmt.Sprintf("v%d", i)))
	}
	if c.SSTableCount() > 3 {
		t.Fatalf("compaction failed to bound SSTables: %d", c.SSTableCount())
	}
	// Latest value wins after heavy churn.
	v, ok := c.Get("t", "k39")
	if !ok || string(v) != "v1999" {
		t.Fatalf("k39 = %q ok=%v, want v1999", v, ok)
	}
}
