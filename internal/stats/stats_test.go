package stats

import (
	"strings"
	"testing"
)

func TestCPI(t *testing.T) {
	c := CoreStats{Cycles: 100, Insts: 40}
	if c.CPI() != 2.5 {
		t.Fatalf("CPI %v", c.CPI())
	}
	if (CoreStats{}).CPI() != 0 {
		t.Fatal("idle CPI must be 0")
	}
}

func TestL1Misses(t *testing.T) {
	c := CoreStats{L1IMisses: 3, L1DMisses: 4}
	if c.L1Misses() != 7 {
		t.Fatal("L1 sum")
	}
}

func TestMPKI(t *testing.T) {
	c := CoreStats{Insts: 2000, L1IMisses: 3, L1DMisses: 5}
	if got := c.MPKI(); got != 4 {
		t.Fatalf("MPKI = %v, want 4 (8 misses / 2 kilo-insts)", got)
	}
	if (CoreStats{L1IMisses: 9}).MPKI() != 0 {
		t.Fatal("idle MPKI must be 0")
	}
}

func TestBranchMPKI(t *testing.T) {
	c := CoreStats{Insts: 4000, Mispredicts: 6}
	if got := c.BranchMPKI(); got != 1.5 {
		t.Fatalf("BranchMPKI = %v, want 1.5", got)
	}
	if (CoreStats{Mispredicts: 1}).BranchMPKI() != 0 {
		t.Fatal("idle BranchMPKI must be 0")
	}
}

func TestL2MissRatio(t *testing.T) {
	c := CoreStats{L2Accesses: 8, L2Misses: 2}
	if got := c.L2MissRatio(); got != 0.25 {
		t.Fatalf("L2MissRatio = %v, want 0.25", got)
	}
	if (CoreStats{L2Misses: 5}).L2MissRatio() != 0 {
		t.Fatal("no-access ratio must be 0")
	}
}

func TestDumpServer(t *testing.T) {
	d := Dump{Cores: []CoreStats{{Cycles: 1}, {Cycles: 2}}}
	if d.Server().Cycles != 2 {
		t.Fatal("server must be core 1")
	}
	single := Dump{Cores: []CoreStats{{Cycles: 9}}}
	if single.Server().Cycles != 9 {
		t.Fatal("single-core fallback")
	}
	if (Dump{}).Server().Cycles != 0 {
		t.Fatal("empty dump")
	}
}

func TestString(t *testing.T) {
	s := CoreStats{Cycles: 10, Insts: 5}.String()
	if !strings.Contains(s, "cycles=10") || !strings.Contains(s, "cpi=2.00") {
		t.Fatalf("render %q", s)
	}
}
