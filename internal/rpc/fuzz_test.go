package rpc

import (
	"bytes"
	"testing"
)

// FuzzReaderWriter checks two properties of the Go-side codec: messages
// the Writer produces round-trip losslessly through the Reader, and
// arbitrary (truncated, corrupted, hostile) inputs make the Reader return
// errors — never panic or read out of bounds.
func FuzzReaderWriter(f *testing.F) {
	seed := func(build func(w *Writer)) {
		w := NewWriter()
		build(w)
		f.Add(w.Bytes())
	}
	seed(func(w *Writer) { w.PutInt(0) })
	seed(func(w *Writer) { w.PutInt(1<<64 - 1) })
	seed(func(w *Writer) { w.PutBytes([]byte("hello")) })
	seed(func(w *Writer) {
		w.PutInt(42)
		w.PutString("key")
		w.PutBytes(bytes.Repeat([]byte{0xFF}, 300))
	})
	// Hostile inputs: truncated varint, bytes field with a huge length.
	f.Add([]byte{16, 0, 0, 0, 0, 0, 0, 0, 0, 0x80, 0x80, 0x80})
	f.Add([]byte{16, 0, 0, 0, 0, 0, 0, 0, 1, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	// Overlong/overflowing varints: a redundant zero terminator, an
	// unterminated 11-byte run, and a 10th byte with bits past 2^64.
	f.Add([]byte{16, 0, 0, 0, 0, 0, 0, 0, 0, 0x80, 0x00})
	f.Add([]byte{16, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0x80, 0x80, 0x00})
	f.Add([]byte{16, 0, 0, 0, 0, 0, 0, 0, 0,
		0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01})
	f.Add([]byte{16, 0, 0, 0, 0, 0, 0, 0, 0,
		0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Decoding arbitrary bytes must terminate with values or errors,
		// never panic. Walk the message as an alternating field stream the
		// way services do.
		r := NewReader(data)
		for i := 0; i < 64; i++ {
			if _, err := r.Int(); err == nil {
				continue
			}
			if _, err := r.Bytes(); err != nil {
				break
			}
		}

		// Round-trip: re-encode the fields of a fresh well-formed message
		// derived from the input and verify they decode identically.
		w := NewWriter()
		n := uint64(len(data))
		w.PutInt(n)
		w.PutBytes(data)
		w.PutString(string(data))
		enc := w.Bytes()
		rr := NewReader(enc)
		gotN, err := rr.Int()
		if err != nil {
			t.Fatalf("Int: %v", err)
		}
		if gotN != n {
			t.Fatalf("Int = %d, want %d", gotN, n)
		}
		gotB, err := rr.Bytes()
		if err != nil {
			t.Fatalf("Bytes: %v", err)
		}
		if !bytes.Equal(gotB, data) {
			t.Fatalf("Bytes round-trip mismatch: %x != %x", gotB, data)
		}
		gotS, err := rr.String()
		if err != nil {
			t.Fatalf("String: %v", err)
		}
		if gotS != string(data) {
			t.Fatalf("String round-trip mismatch")
		}
	})
}
