package figures

import (
	"fmt"

	"svbench/internal/autoscale"
	"svbench/internal/gemsys"
	"svbench/internal/harness"
	"svbench/internal/isa"
	"svbench/internal/loadgen"
)

// The cluster-autoscaling study (internal/autoscale): a policy × RPS
// matrix over the simulated multi-node cluster, grading each autoscaling
// policy's SLO attainment, cold-start amplification and utilization as
// the arrival rate climbs toward millions-of-daily-users territory. All
// points run across the worker pool with a shared boot cache; the
// projected Data is identical for every jobs value.

// AutoscaleRPSGrid is the arrival-rate grid (invocations per virtual
// second). The top rate corresponds to a service fielding millions of
// requests per day with strong diurnal peaks.
var AutoscaleRPSGrid = []float64{500, 2000, 8000, 20000}

// autoscaleArrivals is the per-point arrival budget: each RPS point's
// window is sized so every cell replays about this many invocations,
// keeping cell cost flat as the rate climbs.
const autoscaleArrivals = 40

// autoscaleBase is the study's common configuration: the acceptance
// workload on the default 4×4-core cluster, bursty arrivals (the
// trace-shaped worst case autoscalers exist for), and a keep-alive lease
// well below the batch gaps so scale-downs actually happen.
func autoscaleBase(arch isa.Arch, seed uint64) (autoscale.Config, error) {
	for _, sp := range harness.StandaloneSpecs() {
		if sp.Name == "fibonacci-go" {
			return autoscale.Config{
				Cfg:       gemsys.DefaultConfig(arch),
				Spec:      sp,
				Seed:      seed,
				Arrival:   loadgen.Bursty,
				Burst:     8,
				KeepAlive: 2_000_000,
			}, nil
		}
	}
	return autoscale.Config{}, fmt.Errorf("figures: fibonacci-go missing from catalog")
}

// TableAutoscale sweeps the policy catalog against the arrival-rate grid
// and projects each cell's SLO attainment, cold-start amplification and
// cluster utilization — the table that shows what a scale-to-zero or
// panic autoscaler buys (and costs) over a fixed fleet.
func TableAutoscale(arch isa.Arch, seed uint64, jobs int, log func(string)) (Data, error) {
	base, err := autoscaleBase(arch, seed)
	if err != nil {
		return Data{}, err
	}
	policies := autoscale.Policies()
	var cfgs []autoscale.Config
	for _, pol := range policies {
		for _, rps := range AutoscaleRPSGrid {
			c := base
			c.Policy = pol
			c.RPS = rps
			c.Duration = uint64(float64(autoscaleArrivals) * 1e9 / rps)
			cfgs = append(cfgs, c)
		}
	}
	if log != nil {
		log(fmt.Sprintf("autoscale: %d policies x %d rates on %s", len(policies), len(AutoscaleRPSGrid), arch))
	}
	reps, errs := autoscale.RunMany(cfgs, jobs)
	d := Data{
		ID: "table-autoscale",
		Title: fmt.Sprintf("Autoscaling policy × arrival rate, fibonacci-go on the %d-node cluster (%s, seed %d)",
			base.NodeCount(), arch, seed),
		Columns: []string{"offered rps", "slo %", "cold amp", "churn %", "peak inst",
			"max queue", "p99 us", "mean util %"},
	}
	for i, rep := range reps {
		if errs[i] != nil {
			return Data{}, fmt.Errorf("autoscale cell %s @ %.0f rps: %w",
				cfgs[i].ScalePolicy().Name(), cfgs[i].RPS, errs[i])
		}
		d.Rows = append(d.Rows, Row{
			Label: fmt.Sprintf("%s @ %.0f rps", cfgs[i].ScalePolicy().Name(), cfgs[i].RPS),
			Values: []float64{
				cfgs[i].RPS,
				100 * rep.SLOAttainment,
				rep.ColdAmplification,
				100 * rep.ChurnColdRate,
				float64(rep.PeakInstances),
				float64(rep.MaxQueueDepth),
				float64(rep.Latency.P99) / 1e3,
				100 * rep.MeanUtilization,
			},
		})
	}
	return d, nil
}
