package ir

import "fmt"

// Builder constructs a Function imperatively. Methods that produce values
// allocate and return fresh virtual registers; labels are forward-referenced
// by name and resolved by Build.
type Builder struct {
	fn      *Function
	labels  map[string]int
	pending []int // instruction indices with unresolved labels
	syms    []string
	nlabel  int
}

// NewFunc starts building a function with the given number of parameters.
// Parameters occupy registers 0..nParams-1.
func NewFunc(name string, nParams int) *Builder {
	return &Builder{
		fn: &Function{
			Name:    name,
			NParams: nParams,
			NRegs:   nParams,
		},
		labels: map[string]int{},
	}
}

// Reg allocates a fresh virtual register.
func (b *Builder) Reg() Reg {
	r := Reg(b.fn.NRegs)
	b.fn.NRegs++
	return r
}

// Param returns the register holding parameter i.
func (b *Builder) Param(i int) Reg {
	if i < 0 || i >= b.fn.NParams {
		panic(fmt.Sprintf("ir: %s has no parameter %d", b.fn.Name, i))
	}
	return Reg(i)
}

// Buf declares a frame-local buffer of size bytes and returns its name.
func (b *Builder) Buf(name string, size int64) string {
	b.fn.Bufs = append(b.fn.Bufs, Buffer{Name: name, Size: size})
	return name
}

func (b *Builder) emit(in Instr) int {
	b.fn.Code = append(b.fn.Code, in)
	return len(b.fn.Code) - 1
}

func (b *Builder) emitBranch(in Instr, label string) {
	idx := b.emit(in)
	b.pending = append(b.pending, idx)
	b.syms = append(b.syms, label)
}

// NewLabel returns a unique label name.
func (b *Builder) NewLabel(hint string) string {
	b.nlabel++
	return fmt.Sprintf(".%s.%d", hint, b.nlabel)
}

// Label binds name to the next instruction.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		panic("ir: duplicate label " + name)
	}
	b.labels[name] = len(b.fn.Code)
}

// Const materializes an immediate into a fresh register.
func (b *Builder) Const(v int64) Reg {
	d := b.Reg()
	b.emit(Instr{Op: OpConst, Dst: d, Imm: v})
	return d
}

// ConstInto sets an existing register to an immediate.
func (b *Builder) ConstInto(d Reg, v int64) {
	b.emit(Instr{Op: OpConst, Dst: d, Imm: v})
}

// Mov copies a into a fresh register.
func (b *Builder) Mov(a Reg) Reg {
	d := b.Reg()
	b.emit(Instr{Op: OpMov, Dst: d, A: a})
	return d
}

// MovInto copies a into d.
func (b *Builder) MovInto(d, a Reg) {
	b.emit(Instr{Op: OpMov, Dst: d, A: a})
}

func (b *Builder) bin(op Op, a, c Reg) Reg {
	d := b.Reg()
	b.emit(Instr{Op: op, Dst: d, A: a, B: c})
	return d
}

func (b *Builder) binInto(op Op, d, a, c Reg) {
	b.emit(Instr{Op: op, Dst: d, A: a, B: c})
}

// Binary operations producing fresh registers.
func (b *Builder) Add(a, c Reg) Reg  { return b.bin(OpAdd, a, c) }
func (b *Builder) Sub(a, c Reg) Reg  { return b.bin(OpSub, a, c) }
func (b *Builder) Mul(a, c Reg) Reg  { return b.bin(OpMul, a, c) }
func (b *Builder) Div(a, c Reg) Reg  { return b.bin(OpDiv, a, c) }
func (b *Builder) Rem(a, c Reg) Reg  { return b.bin(OpRem, a, c) }
func (b *Builder) DivU(a, c Reg) Reg { return b.bin(OpDivU, a, c) }
func (b *Builder) RemU(a, c Reg) Reg { return b.bin(OpRemU, a, c) }
func (b *Builder) And(a, c Reg) Reg  { return b.bin(OpAnd, a, c) }
func (b *Builder) Or(a, c Reg) Reg   { return b.bin(OpOr, a, c) }
func (b *Builder) Xor(a, c Reg) Reg  { return b.bin(OpXor, a, c) }
func (b *Builder) Shl(a, c Reg) Reg  { return b.bin(OpShl, a, c) }
func (b *Builder) Shr(a, c Reg) Reg  { return b.bin(OpShr, a, c) }
func (b *Builder) Sra(a, c Reg) Reg  { return b.bin(OpSra, a, c) }

// In-place binary operations.
func (b *Builder) AddInto(d, a, c Reg) { b.binInto(OpAdd, d, a, c) }
func (b *Builder) SubInto(d, a, c Reg) { b.binInto(OpSub, d, a, c) }
func (b *Builder) MulInto(d, a, c Reg) { b.binInto(OpMul, d, a, c) }
func (b *Builder) XorInto(d, a, c Reg) { b.binInto(OpXor, d, a, c) }
func (b *Builder) OrInto(d, a, c Reg)  { b.binInto(OpOr, d, a, c) }
func (b *Builder) AndInto(d, a, c Reg) { b.binInto(OpAnd, d, a, c) }

func (b *Builder) binI(op Op, a Reg, imm int64) Reg {
	d := b.Reg()
	b.emit(Instr{Op: op, Dst: d, A: a, Imm: imm})
	return d
}

// Immediate binary operations.
func (b *Builder) AddI(a Reg, imm int64) Reg { return b.binI(OpAddI, a, imm) }
func (b *Builder) MulI(a Reg, imm int64) Reg { return b.binI(OpMulI, a, imm) }
func (b *Builder) AndI(a Reg, imm int64) Reg { return b.binI(OpAndI, a, imm) }
func (b *Builder) OrI(a Reg, imm int64) Reg  { return b.binI(OpOrI, a, imm) }
func (b *Builder) XorI(a Reg, imm int64) Reg { return b.binI(OpXorI, a, imm) }
func (b *Builder) ShlI(a Reg, imm int64) Reg { return b.binI(OpShlI, a, imm) }
func (b *Builder) ShrI(a Reg, imm int64) Reg { return b.binI(OpShrI, a, imm) }
func (b *Builder) SraI(a Reg, imm int64) Reg { return b.binI(OpSraI, a, imm) }

// AddIInto computes d = a + imm.
func (b *Builder) AddIInto(d, a Reg, imm int64) {
	b.emit(Instr{Op: OpAddI, Dst: d, A: a, Imm: imm})
}

// Set computes (a cond c) as 0/1 in a fresh register.
func (b *Builder) Set(cond Cond, a, c Reg) Reg {
	d := b.Reg()
	b.emit(Instr{Op: OpSet, Dst: d, A: a, B: c, Cond: cond})
	return d
}

// Load reads sz bytes at a+off into a fresh register (sign-extended).
func (b *Builder) Load(a Reg, off int64, sz uint8) Reg {
	d := b.Reg()
	b.emit(Instr{Op: OpLoad, Dst: d, A: a, Imm: off, Sz: sz})
	return d
}

// LoadU reads sz bytes at a+off zero-extended.
func (b *Builder) LoadU(a Reg, off int64, sz uint8) Reg {
	d := b.Reg()
	b.emit(Instr{Op: OpLoad, Dst: d, A: a, Imm: off, Sz: sz, Uns: true})
	return d
}

// LoadInto reads sz bytes at a+off into d.
func (b *Builder) LoadInto(d, a Reg, off int64, sz uint8, unsigned bool) {
	b.emit(Instr{Op: OpLoad, Dst: d, A: a, Imm: off, Sz: sz, Uns: unsigned})
}

// Store writes the low sz bytes of v to a+off.
func (b *Builder) Store(a Reg, off int64, v Reg, sz uint8) {
	b.emit(Instr{Op: OpStore, A: a, B: v, Imm: off, Sz: sz})
}

// Br branches to label when a cond c.
func (b *Builder) Br(cond Cond, a, c Reg, label string) {
	b.emitBranch(Instr{Op: OpBr, A: a, B: c, Cond: cond}, label)
}

// BrI branches to label when a cond imm.
func (b *Builder) BrI(cond Cond, a Reg, imm int64, label string) {
	b.emitBranch(Instr{Op: OpBrI, A: a, Imm: imm, Cond: cond}, label)
}

// Jmp jumps to label.
func (b *Builder) Jmp(label string) {
	b.emitBranch(Instr{Op: OpJmp}, label)
}

// Call invokes fn with args, returning the result register.
func (b *Builder) Call(fn string, args ...Reg) Reg {
	d := b.Reg()
	b.emit(Instr{Op: OpCall, Dst: d, Sym: fn, Args: args})
	return d
}

// CallV invokes fn with args, discarding any result.
func (b *Builder) CallV(fn string, args ...Reg) {
	b.emit(Instr{Op: OpCall, Dst: NoReg, Sym: fn, Args: args})
}

// Ecall issues environment call num with args, returning the result.
func (b *Builder) Ecall(num int64, args ...Reg) Reg {
	d := b.Reg()
	b.emit(Instr{Op: OpEcall, Dst: d, Imm: num, Args: args})
	return d
}

// EcallV issues environment call num with args, discarding the result.
func (b *Builder) EcallV(num int64, args ...Reg) {
	b.emit(Instr{Op: OpEcall, Dst: NoReg, Imm: num, Args: args})
}

// Global yields the address of global sym plus off.
func (b *Builder) Global(sym string, off int64) Reg {
	d := b.Reg()
	b.emit(Instr{Op: OpGlobal, Dst: d, Sym: sym, Imm: off})
	return d
}

// Frame yields the address of frame buffer buf plus off.
func (b *Builder) Frame(buf string, off int64) Reg {
	d := b.Reg()
	b.emit(Instr{Op: OpFrame, Dst: d, Sym: buf, Imm: off})
	return d
}

// Ret returns a (pass NoReg for void).
func (b *Builder) Ret(a Reg) {
	b.emit(Instr{Op: OpRet, A: a})
}

// Ret0 returns constant zero.
func (b *Builder) Ret0() {
	b.Ret(b.Const(0))
}

// Fence emits a memory fence marker.
func (b *Builder) Fence() { b.emit(Instr{Op: OpFence}) }

// Build resolves labels and returns the finished function.
func (b *Builder) Build() *Function {
	for i, idx := range b.pending {
		tgt, ok := b.labels[b.syms[i]]
		if !ok {
			panic(fmt.Sprintf("ir: %s: undefined label %q", b.fn.Name, b.syms[i]))
		}
		b.fn.Code[idx].Tgt = tgt
	}
	// Guarantee the function terminates even if the author forgot a
	// trailing return.
	if n := len(b.fn.Code); n == 0 || (b.fn.Code[n-1].Op != OpRet && b.fn.Code[n-1].Op != OpJmp) {
		b.Ret(b.Const(0))
	}
	return b.fn
}
