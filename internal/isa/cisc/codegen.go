package cisc

import (
	"fmt"

	"svbench/internal/ir"
	"svbench/internal/isa"
)

// The CISC64 code generator mirrors the RV64 stack-slot discipline but
// models the software stack the thesis measured on its x86 containers:
// frame-pointer prologues, stack-protector canaries on every function, and
// PLT/GOT indirection for calls into library code (ir.Function.Lib). These
// are the mechanisms behind the paper's observation that the x86 stack
// executes significantly more instructions than the RISC-V one (Fig. 4.16).
//
// Frame layout (rbp-relative):
//
//	[rbp]        saved rbp
//	[rbp-8]      stack canary
//	[rbp-16-8i]  virtual register i
//	below        frame-local buffers

type relKind uint8

const (
	relCall relKind = iota // CALL rel32 to a function (byte offset of opcode)
	relAbs                 // MOVri32 absolute symbol address
)

type reloc struct {
	off  int // byte offset within function of the instruction opcode
	kind relKind
	sym  string
	add  int64
	plt  bool // route through the PLT
}

type fnCode struct {
	name   string
	code   []byte
	relocs []reloc
}

type codegen struct {
	mod *ir.Module
	fns []*fnCode

	cur      *fnCode
	fn       *ir.Function
	frame    int64
	bufTop   int64       // rbp-relative offset where buffers end (most negative)
	brFix    map[int]int // byte offset of Jcc/JMP opcode -> IR target index
	irOff    []int
	pltSyms  map[string]bool
	pltOrder []string
}

// GuardSymbol is the stack-protector canary location.
const GuardSymbol = "__stack_chk_guard"

// FailSymbol is the stack-protector failure handler.
const FailSymbol = "__stack_chk_fail"

// PanicEcall is the environment call issued by __stack_chk_fail.
const PanicEcall = 0x1FFF

// Compile lowers every function in the module and links at textBase.
func Compile(m *ir.Module, textBase uint64) (*isa.Program, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	cg := &codegen{mod: m, pltSyms: map[string]bool{}}
	for _, f := range m.Funcs {
		if err := cg.emitFunc(f); err != nil {
			return nil, fmt.Errorf("cisc: compile %s: %w", f.Name, err)
		}
	}
	cg.emitStackChkFail()
	return cg.link(textBase)
}

func (cg *codegen) emit(in Inst) int {
	off := len(cg.cur.code)
	cg.cur.code = in.Encode(cg.cur.code)
	return off
}

func slotOff(r ir.Reg) int64 { return -16 - 8*int64(r) }

func (cg *codegen) loadSlot(reg uint8, r ir.Reg) {
	cg.emit(Inst{Kind: KindLDQ, Dst: reg, Src: RBP, Imm: slotOff(r)})
}

func (cg *codegen) storeSlot(r ir.Reg, reg uint8) {
	cg.emit(Inst{Kind: KindSTQ, Dst: RBP, Src: reg, Imm: slotOff(r)})
}

func (cg *codegen) movImm(reg uint8, v int64) {
	if v == int64(int32(v)) {
		cg.emit(Inst{Kind: KindMOVri32, Dst: reg, Imm: v})
	} else {
		cg.emit(Inst{Kind: KindMOVri, Dst: reg, Imm: v})
	}
}

func (cg *codegen) emitFunc(f *ir.Function) error {
	cg.cur = &fnCode{name: f.Name}
	cg.fn = f
	cg.brFix = map[int]int{}
	cg.irOff = make([]int, len(f.Code)+1)
	// Extent below rbp: canary [rbp-8, rbp), slots down to rbp-16-8(n-1),
	// then the buffer area — 16+8n+area in total.
	cg.frame = (16 + 8*int64(f.NRegs) + f.BufArea() + 15) &^ 15
	cg.bufTop = -16 - 8*int64(f.NRegs)

	// Prologue: frame pointer chain + stack protector.
	cg.emit(Inst{Kind: KindPUSH, Dst: RBP})
	cg.emit(Inst{Kind: KindMOVrr, Dst: RBP, Src: RSP})
	cg.emit(Inst{Kind: KindADDri32, Dst: RSP, Imm: -cg.frame})
	cg.relocAbs(R11, GuardSymbol, 0)
	cg.emit(Inst{Kind: KindLDQ, Dst: R11, Src: R11})
	cg.emit(Inst{Kind: KindSTQ, Dst: RBP, Src: R11, Imm: -8})

	for i := 0; i < f.NParams && i < 6; i++ {
		cg.storeSlot(ir.Reg(i), argRegs[i])
	}

	for i := range f.Code {
		cg.irOff[i] = len(cg.cur.code)
		if err := cg.emitInstr(&f.Code[i]); err != nil {
			return fmt.Errorf("instr %d: %w", i, err)
		}
	}
	cg.irOff[len(f.Code)] = len(cg.cur.code)

	// Branch fixups: rel32 at opcode+1, relative to the end of the
	// instruction (opcode + 5 bytes).
	for off, irTgt := range cg.brFix {
		rel := int64(cg.irOff[irTgt] - (off + 5))
		putI32(cg.cur.code[off+1:], rel)
	}
	cg.fns = append(cg.fns, cg.cur)
	return nil
}

// relocAbs emits MOVri32 reg, <sym+add> with a relocation.
func (cg *codegen) relocAbs(reg uint8, sym string, add int64) {
	off := cg.emit(Inst{Kind: KindMOVri32, Dst: reg, Imm: 0})
	cg.cur.relocs = append(cg.cur.relocs, reloc{off: off, kind: relAbs, sym: sym, add: add})
}

func (cg *codegen) epilogue() {
	// Stack-protector check.
	cg.emit(Inst{Kind: KindLDQ, Dst: RCX, Src: RBP, Imm: -8})
	cg.relocAbs(R11, GuardSymbol, 0)
	cg.emit(Inst{Kind: KindLDQ, Dst: R11, Src: R11})
	cg.emit(Inst{Kind: KindCMPrr, Dst: RCX, Src: R11})
	cg.emit(Inst{Kind: KindJE, Imm: 5}) // skip the CALL below
	off := cg.emit(Inst{Kind: KindCALL, Imm: 0})
	cg.cur.relocs = append(cg.cur.relocs, reloc{off: off, kind: relCall, sym: FailSymbol})
	// Tear down the frame.
	cg.emit(Inst{Kind: KindMOVrr, Dst: RSP, Src: RBP})
	cg.emit(Inst{Kind: KindPOP, Dst: RBP})
	cg.emit(Inst{Kind: KindRET})
}

var aluKind = map[ir.Op]Kind{
	ir.OpAdd: KindADD, ir.OpSub: KindSUB, ir.OpMul: KindMUL,
	ir.OpDiv: KindDIV, ir.OpRem: KindREM, ir.OpDivU: KindDIVU, ir.OpRemU: KindREMU,
	ir.OpAnd: KindAND, ir.OpOr: KindOR, ir.OpXor: KindXOR,
	ir.OpShl: KindSHL, ir.OpShr: KindSHR, ir.OpSra: KindSAR,
}

var setKind = map[ir.Cond]Kind{
	ir.Eq: KindSETE, ir.Ne: KindSETNE, ir.Lt: KindSETL, ir.Le: KindSETLE,
	ir.Gt: KindSETG, ir.Ge: KindSETGE, ir.Ltu: KindSETB, ir.Geu: KindSETAE,
}

var jccKind = map[ir.Cond]Kind{
	ir.Eq: KindJE, ir.Ne: KindJNE, ir.Lt: KindJL, ir.Le: KindJLE,
	ir.Gt: KindJG, ir.Ge: KindJGE, ir.Ltu: KindJB, ir.Geu: KindJAE,
}

func ldKind(sz uint8, uns bool) Kind {
	switch sz {
	case 1:
		if uns {
			return KindLDBU
		}
		return KindLDB
	case 2:
		if uns {
			return KindLDHU
		}
		return KindLDH
	case 4:
		if uns {
			return KindLDWU
		}
		return KindLDW
	default:
		return KindLDQ
	}
}

func stKind(sz uint8) Kind {
	switch sz {
	case 1:
		return KindSTB
	case 2:
		return KindSTH
	case 4:
		return KindSTW
	default:
		return KindSTQ
	}
}

func (cg *codegen) emitInstr(in *ir.Instr) error {
	switch in.Op {
	case ir.OpNop:
	case ir.OpFence:
		cg.emit(Inst{Kind: KindFENCE})
	case ir.OpConst:
		cg.movImm(RAX, in.Imm)
		cg.storeSlot(in.Dst, RAX)
	case ir.OpMov:
		cg.loadSlot(RAX, in.A)
		cg.storeSlot(in.Dst, RAX)
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem, ir.OpDivU, ir.OpRemU,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr, ir.OpSra:
		cg.loadSlot(RAX, in.A)
		cg.loadSlot(RCX, in.B)
		cg.emit(Inst{Kind: aluKind[in.Op], Dst: RAX, Src: RCX})
		cg.storeSlot(in.Dst, RAX)
	case ir.OpAddI, ir.OpAndI, ir.OpOrI, ir.OpXorI, ir.OpMulI:
		cg.loadSlot(RAX, in.A)
		if in.Imm == int64(int32(in.Imm)) {
			k := map[ir.Op]Kind{ir.OpAddI: KindADDri32, ir.OpAndI: KindANDri32,
				ir.OpOrI: KindORri32, ir.OpXorI: KindXORri32, ir.OpMulI: KindMULri32}[in.Op]
			cg.emit(Inst{Kind: k, Dst: RAX, Imm: in.Imm})
		} else {
			cg.movImm(RCX, in.Imm)
			k := map[ir.Op]Kind{ir.OpAddI: KindADD, ir.OpAndI: KindAND,
				ir.OpOrI: KindOR, ir.OpXorI: KindXOR, ir.OpMulI: KindMUL}[in.Op]
			cg.emit(Inst{Kind: k, Dst: RAX, Src: RCX})
		}
		cg.storeSlot(in.Dst, RAX)
	case ir.OpShlI, ir.OpShrI, ir.OpSraI:
		cg.loadSlot(RAX, in.A)
		k := map[ir.Op]Kind{ir.OpShlI: KindSHLri8, ir.OpShrI: KindSHRri8, ir.OpSraI: KindSARri8}[in.Op]
		cg.emit(Inst{Kind: k, Dst: RAX, Imm: in.Imm & 63})
		cg.storeSlot(in.Dst, RAX)
	case ir.OpSet:
		cg.loadSlot(RAX, in.A)
		cg.loadSlot(RCX, in.B)
		cg.emit(Inst{Kind: KindCMPrr, Dst: RAX, Src: RCX})
		cg.emit(Inst{Kind: setKind[in.Cond], Dst: RAX})
		cg.storeSlot(in.Dst, RAX)
	case ir.OpLoad:
		cg.loadSlot(RAX, in.A)
		if in.Imm != int64(int32(in.Imm)) {
			return fmt.Errorf("load displacement too large")
		}
		cg.emit(Inst{Kind: ldKind(in.Sz, in.Uns), Dst: RDX, Src: RAX, Imm: in.Imm})
		cg.storeSlot(in.Dst, RDX)
	case ir.OpStore:
		cg.loadSlot(RAX, in.A)
		cg.loadSlot(RCX, in.B)
		cg.emit(Inst{Kind: stKind(in.Sz), Dst: RAX, Src: RCX, Imm: in.Imm})
	case ir.OpBr:
		cg.loadSlot(RAX, in.A)
		cg.loadSlot(RCX, in.B)
		cg.emit(Inst{Kind: KindCMPrr, Dst: RAX, Src: RCX})
		off := cg.emit(Inst{Kind: jccKind[in.Cond], Imm: 0})
		cg.brFix[off] = in.Tgt
	case ir.OpBrI:
		cg.loadSlot(RAX, in.A)
		if in.Imm == int64(int32(in.Imm)) {
			cg.emit(Inst{Kind: KindCMPri32, Dst: RAX, Imm: in.Imm})
		} else {
			cg.movImm(RCX, in.Imm)
			cg.emit(Inst{Kind: KindCMPrr, Dst: RAX, Src: RCX})
		}
		off := cg.emit(Inst{Kind: jccKind[in.Cond], Imm: 0})
		cg.brFix[off] = in.Tgt
	case ir.OpJmp:
		off := cg.emit(Inst{Kind: KindJMP, Imm: 0})
		cg.brFix[off] = in.Tgt
	case ir.OpCall:
		if len(in.Args) > 6 {
			return fmt.Errorf("too many args")
		}
		for i, a := range in.Args {
			cg.loadSlot(argRegs[i], a)
		}
		callee := cg.mod.Func(in.Sym)
		usePLT := callee != nil && callee.Lib
		if usePLT && !cg.pltSyms[in.Sym] {
			cg.pltSyms[in.Sym] = true
			cg.pltOrder = append(cg.pltOrder, in.Sym)
		}
		off := cg.emit(Inst{Kind: KindCALL, Imm: 0})
		cg.cur.relocs = append(cg.cur.relocs, reloc{off: off, kind: relCall, sym: in.Sym, plt: usePLT})
		if in.Dst != ir.NoReg {
			cg.storeSlot(in.Dst, RAX)
		}
	case ir.OpRet:
		if in.A != ir.NoReg {
			cg.loadSlot(RAX, in.A)
		} else {
			cg.emit(Inst{Kind: KindMOVri32, Dst: RAX, Imm: 0})
		}
		cg.epilogue()
	case ir.OpEcall:
		if len(in.Args) > 6 {
			return fmt.Errorf("too many ecall args")
		}
		for i, a := range in.Args {
			cg.loadSlot(argRegs[i], a)
		}
		cg.movImm(RAX, in.Imm)
		cg.emit(Inst{Kind: KindSYSCALL})
		if in.Dst != ir.NoReg {
			cg.storeSlot(in.Dst, RAX)
		}
	case ir.OpGlobal:
		cg.relocAbs(RAX, in.Sym, in.Imm)
		cg.storeSlot(in.Dst, RAX)
	case ir.OpFrame:
		off, _ := cg.fn.BufOffset(in.Sym)
		// Buffers sit below the vreg slots; buffer byte 0 is the lowest
		// address of the area.
		base := cg.bufTop - cg.fn.BufArea()
		cg.emit(Inst{Kind: KindLEA, Dst: RAX, Src: RBP, Imm: base + off + in.Imm})
		cg.storeSlot(in.Dst, RAX)
	default:
		return fmt.Errorf("unhandled op %d", in.Op)
	}
	return nil
}

// emitStackChkFail appends the __stack_chk_fail routine, which raises the
// panic environment call.
func (cg *codegen) emitStackChkFail() {
	cg.cur = &fnCode{name: FailSymbol}
	cg.emit(Inst{Kind: KindMOVri32, Dst: RAX, Imm: PanicEcall})
	cg.emit(Inst{Kind: KindSYSCALL})
	cg.emit(Inst{Kind: KindRET})
	cg.fns = append(cg.fns, cg.cur)
}

func putI32(b []byte, v int64) {
	if v != int64(int32(v)) {
		panic(fmt.Sprintf("cisc: rel32 overflow: %d", v))
	}
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

// link lays out functions, PLT stubs, the GOT and globals, then patches
// relocations.
func (cg *codegen) link(textBase uint64) (*isa.Program, error) {
	p := &isa.Program{
		Arch:     isa.CISC64,
		TextBase: textBase,
		Syms:     map[string]uint64{},
		FuncEnd:  map[string]uint64{},
	}
	addr := textBase
	starts := make([]uint64, len(cg.fns))
	for i, f := range cg.fns {
		starts[i] = addr
		p.Syms[f.name] = addr
		addr += uint64(len(f.code))
		p.FuncEnd[f.name] = addr
	}

	// PLT stubs: movri32 r11, <got>; ldq r11, [r11]; jmpr r11  (10 bytes).
	pltAddr := map[string]uint64{}
	gotIdx := map[string]int{}
	var pltBytes []byte
	for i, sym := range cg.pltOrder {
		pltAddr[sym] = addr + uint64(len(pltBytes))
		gotIdx[sym] = i
		pltBytes = Inst{Kind: KindMOVri32, Dst: R11, Imm: 0}.Encode(pltBytes) // patched below
		pltBytes = Inst{Kind: KindLDQ, Dst: R11, Src: R11}.Encode(pltBytes)
		pltBytes = Inst{Kind: KindJMPr, Src: R11}.Encode(pltBytes)
	}
	addr += uint64(len(pltBytes))

	// Data: GOT first, then the canary guard, then module globals.
	dataBase := (addr + 63) &^ 63
	p.DataBase = dataBase
	gotBase := dataBase
	var data []byte
	for range cg.pltOrder {
		data = append(data, make([]byte, 8)...)
	}
	guardAddr := gotBase + uint64(len(data))
	p.Syms[GuardSymbol] = guardAddr
	data = append(data, 0xEF, 0xBE, 0xAD, 0xDE, 0x0D, 0xF0, 0xCA, 0x5C)
	gaddr := gotBase + uint64(len(data))
	for _, g := range cg.mod.Globals {
		al := uint64(g.Align)
		if al > 1 {
			na := (gaddr + al - 1) / al * al
			data = append(data, make([]byte, na-gaddr)...)
			gaddr = na
		}
		p.Syms[g.Name] = gaddr
		data = append(data, g.Data...)
		gaddr += uint64(len(g.Data))
	}

	// Fill GOT entries and patch PLT stub GOT pointers.
	for sym, i := range gotIdx {
		tgt, ok := p.Syms[sym]
		if !ok {
			return nil, fmt.Errorf("cisc: undefined PLT symbol %q", sym)
		}
		for k := 0; k < 8; k++ {
			data[i*8+k] = byte(tgt >> (8 * k))
		}
		// Stub i: movri32(6) + ldq(6) + jmpr(2) = 14 bytes; the GOT
		// pointer immediate sits at +2.
		const stubSize = 14
		got := gotBase + uint64(i*8)
		putI32(pltBytes[i*stubSize+2:], int64(got))
	}

	// Patch relocations.
	for i, f := range cg.fns {
		base := starts[i]
		for _, rl := range f.relocs {
			switch rl.kind {
			case relCall:
				var tgt uint64
				if rl.plt {
					tgt = pltAddr[rl.sym]
				} else {
					var ok bool
					tgt, ok = p.Syms[rl.sym]
					if !ok {
						return nil, fmt.Errorf("cisc: undefined symbol %q", rl.sym)
					}
				}
				endOfCall := base + uint64(rl.off) + 5
				putI32(f.code[rl.off+1:], int64(tgt)-int64(endOfCall))
			case relAbs:
				tgt, ok := p.Syms[rl.sym]
				if !ok {
					return nil, fmt.Errorf("cisc: undefined symbol %q", rl.sym)
				}
				putI32(f.code[rl.off+2:], int64(tgt)+rl.add)
			}
		}
		p.Text = append(p.Text, f.code...)
	}
	p.Text = append(p.Text, pltBytes...)
	p.Data = data
	if len(cg.fns) > 0 {
		p.Entry = starts[0]
	}
	return p, nil
}
