package figures

import (
	"strings"
	"testing"

	"svbench/internal/harness"
	"svbench/internal/isa"
)

// TestSweepDegradesGracefully forces one spec to fail validation and
// checks the sweep completes the rest, records a structured failure, and
// projections skip the missing rows instead of panicking.
func TestSweepDegradesGracefully(t *testing.T) {
	var good, bad harness.Spec
	for _, sp := range harness.StandaloneSpecs() {
		switch sp.Name {
		case "fibonacci-go":
			good = sp
		case "aes-go":
			bad = sp
		}
	}
	bad.Requests = 1 // fails spec validation before any simulation

	res := Sweep([]isa.Arch{isa.RV64}, []harness.Spec{good, bad}, nil, nil)
	if res.Fn[isa.RV64]["fibonacci-go"] == nil {
		t.Fatal("healthy spec did not complete")
	}
	if len(res.Failures) != 1 {
		t.Fatalf("got %d failures, want 1: %v", len(res.Failures), res.Failures)
	}
	f := res.Failures[0]
	if f.Spec != "aes-go" || f.Phase != "spec" {
		t.Fatalf("failure = %+v, want aes-go in phase spec", f)
	}
	if !strings.Contains(f.Error(), "aes-go") {
		t.Fatalf("failure message %q does not name the spec", f.Error())
	}

	// A projection over both specs must keep the healthy row and drop the
	// failed one.
	d := res.project("t", "t", []string{"fibonacci-go", "aes-go"},
		[]string{"cold", "warm"}, coldWarm(cycles), isa.RV64)
	if len(d.Rows) != 1 || d.Rows[0].Label != "fibonacci-go" {
		t.Fatalf("projection rows = %+v, want only fibonacci-go", d.Rows)
	}
}
