package gemsys

import (
	"bytes"
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"

	"svbench/internal/kernel"
)

// ProcSnap is one process's checkpointed state.
type ProcSnap struct {
	ID        int
	State     kernel.ProcState
	Brk       uint64
	WakeSeq   uint64
	NeedsIdle bool
	CoreState []uint64
}

// Checkpoint is a snapshot of the simulated machine, taken by the m5
// checkpoint operation at the end of setup mode. Restoring one resets the
// microarchitectural state (caches, predictors) exactly as gem5 does when
// switching from the boot CPU to the detailed CPU.
type Checkpoint struct {
	Arch      string
	MemData   []byte
	Procs     []ProcSnap
	Chans     []kernel.ChanSnap
	Seq       uint64
	SlabCur   uint64
	VirtInstr uint64
	Cur       []int // per-core current process ID, -1 if none
	RunQ      [][]int
	NextRgn   uint64
	// Console is everything simulated code had written by checkpoint
	// time. Restoring reinstates it, so a machine that skipped setup
	// (checkpoint memoization) reports the same Response bytes as one
	// that executed it.
	Console []byte
}

// Clone returns a deep copy sharing no mutable state with the receiver:
// mutating a machine restored from the clone (or the clone itself) can
// never reach the original. This is what lets the cross-run checkpoint
// memoizer hand each concurrent run its own private copy of a cached
// post-boot snapshot.
func (ck *Checkpoint) Clone() *Checkpoint {
	cp := &Checkpoint{
		Arch:      ck.Arch,
		MemData:   append([]byte(nil), ck.MemData...),
		Seq:       ck.Seq,
		SlabCur:   ck.SlabCur,
		VirtInstr: ck.VirtInstr,
		Cur:       append([]int(nil), ck.Cur...),
		NextRgn:   ck.NextRgn,
		Console:   append([]byte(nil), ck.Console...),
	}
	cp.Procs = make([]ProcSnap, len(ck.Procs))
	for i, ps := range ck.Procs {
		cp.Procs[i] = ps
		cp.Procs[i].CoreState = append([]uint64(nil), ps.CoreState...)
	}
	cp.Chans = make([]kernel.ChanSnap, len(ck.Chans))
	for i, cs := range ck.Chans {
		cp.Chans[i].Msgs = append([]kernel.MsgSnap(nil), cs.Msgs...)
		cp.Chans[i].Waiters = append([]int(nil), cs.Waiters...)
	}
	cp.RunQ = make([][]int, len(ck.RunQ))
	for i, q := range ck.RunQ {
		cp.RunQ[i] = append([]int(nil), q...)
	}
	return cp
}

// TakeCheckpoint captures the machine state and clears the pending
// checkpoint request so execution can continue.
func (m *Machine) TakeCheckpoint() *Checkpoint {
	ck := &Checkpoint{
		Arch:      string(m.Cfg.Arch),
		MemData:   append([]byte(nil), m.Mem.Data...),
		Chans:     m.K.SnapChannels(),
		VirtInstr: m.virtInstr,
		NextRgn:   m.nextRegion,
		Console:   append([]byte(nil), m.K.Console.Bytes()...),
	}
	ck.Seq, ck.SlabCur = m.K.SnapState()
	for _, p := range m.K.Procs {
		ck.Procs = append(ck.Procs, ProcSnap{
			ID: p.ID, State: p.State, Brk: p.Brk,
			WakeSeq: p.WakeSeq, NeedsIdle: p.NeedsIdle,
			CoreState: p.Core.Snapshot(),
		})
	}
	for ci := 0; ci < m.Cfg.Cores; ci++ {
		id := -1
		if m.cur[ci] != nil {
			id = m.cur[ci].ID
		}
		ck.Cur = append(ck.Cur, id)
		var q []int
		for _, p := range m.rq[ci] {
			q = append(q, p.ID)
		}
		ck.RunQ = append(ck.RunQ, q)
	}
	m.ckptReq = false
	return ck
}

// Restore reinstates a checkpoint on the same machine — or on any machine
// with an equal BootFingerprint, i.e. one whose processes were spawned
// identically (the checkpoint memoizer's cross-machine restore path).
// Microarchitectural state starts cold: caches, TLBs and branch
// predictors are flushed, trace queues cleared, and the IPC coupler
// reset. Restore copies out of ck and never retains references into it,
// so a shared (cached) checkpoint stays untouched by the restored
// machine's subsequent execution.
func (m *Machine) Restore(ck *Checkpoint) error {
	if ck.Arch != string(m.Cfg.Arch) {
		return fmt.Errorf("gemsys: checkpoint arch %q does not match machine %q", ck.Arch, m.Cfg.Arch)
	}
	if len(ck.MemData) != len(m.Mem.Data) {
		return fmt.Errorf("gemsys: checkpoint memory size mismatch")
	}
	if len(ck.Procs) != len(m.K.Procs) {
		return fmt.Errorf("gemsys: checkpoint has %d processes, machine has %d", len(ck.Procs), len(m.K.Procs))
	}
	copy(m.Mem.Data, ck.MemData)
	byID := map[int]*kernel.Process{}
	for _, p := range m.K.Procs {
		byID[p.ID] = p
	}
	for _, ps := range ck.Procs {
		p, ok := byID[ps.ID]
		if !ok {
			return fmt.Errorf("gemsys: checkpoint references unknown process %d", ps.ID)
		}
		p.State = ps.State
		p.Brk = ps.Brk
		p.WakeSeq = ps.WakeSeq
		p.NeedsIdle = ps.NeedsIdle
		p.Core.Restore(ps.CoreState)
	}
	m.K.RestoreChannels(ck.Chans, byID)
	m.K.RestoreState(ck.Seq, ck.SlabCur)
	m.K.Console.Reset()
	m.K.Console.Write(ck.Console)
	m.virtInstr = ck.VirtInstr
	m.nextRegion = ck.NextRgn
	for ci := 0; ci < m.Cfg.Cores; ci++ {
		if ck.Cur[ci] >= 0 {
			m.cur[ci] = byID[ck.Cur[ci]]
		} else {
			m.cur[ci] = nil
		}
		m.rq[ci] = nil
		for _, id := range ck.RunQ[ci] {
			m.rq[ci] = append(m.rq[ci], byID[id])
		}
		m.traces[ci] = nil
		m.cursor[ci] = 0
	}
	m.halted = false
	m.ckptReq = false
	// Decoded instructions and translated blocks survive the restore on
	// purpose: the memory overwrite above is text-identical by the same
	// assumption the decode cache already relies on (checkpoints restore
	// into machines of the same boot image), so re-translating would only
	// penalize restore-heavy callers like the sweep engine. Superblock
	// links and chain telemetry do NOT survive: with links severed, the
	// first post-restore entry into every block goes through the entry-PC
	// map, so the interp.* stats are identical whether the block cache was
	// warm or cold and both restored runs of a same-seed pair export
	// identical bytes.
	m.decRV.ResetChains()
	m.decC.ResetChains()
	// Fresh coupler and cold microarchitecture, re-wired everywhere. The
	// shared DRAM channel's occupancy cursor must also reset: it carries
	// absolute cycle times from the previous run. The O3 cores are reset
	// in place (not rebuilt) so registry pointers into their counters
	// stay valid.
	m.Coupler = newCouplerFor(m)
	m.DRAM.Reset()
	for ci := range m.O3 {
		m.O3[ci].ResetPipeline(m.Coupler)
		m.O3[ci].ColdStart()
	}
	// The observability layer starts a fresh measurement: both restored
	// runs of a same-seed pair then export identical bytes.
	m.K.ResetCounts()
	m.Tracer.Reset()
	m.Prof.Reset()
	for _, d := range m.ecallLat {
		d.Reset()
	}
	return nil
}

// WriteTo serializes the checkpoint (gzip+gob), the on-disk format the
// command-line tools use.
func (ck *Checkpoint) WriteTo(w io.Writer) (int64, error) {
	var buf bytes.Buffer
	zw, _ := gzip.NewWriterLevel(&buf, gzip.BestSpeed)
	if err := gob.NewEncoder(zw).Encode(ck); err != nil {
		return 0, err
	}
	if err := zw.Close(); err != nil {
		return 0, err
	}
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// ReadCheckpoint deserializes a checkpoint written by WriteTo.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("gemsys: corrupt checkpoint: %w", err)
	}
	defer zr.Close()
	var ck Checkpoint
	if err := gob.NewDecoder(zr).Decode(&ck); err != nil {
		return nil, fmt.Errorf("gemsys: corrupt checkpoint: %w", err)
	}
	return &ck, nil
}
