package gemsys

import (
	"bytes"
	"testing"

	"svbench/internal/ir"
	"svbench/internal/isa"
	"svbench/internal/kernel"
)

// serverMod builds a module whose main(reqCh, respCh) first announces
// readiness, then serves fib(n) requests forever.
func serverMod() *ir.Module {
	m := ir.NewModule("server")
	b := ir.NewFunc("main", 2)
	req, resp := b.Param(0), b.Param(1)
	buf := b.Frame(b.Buf("buf", 64), 0)

	// Ready handshake.
	b.Store(buf, 0, b.Const(1), 8)
	b.EcallV(kernel.SysSend, resp, buf, b.Const(8))

	loop := b.NewLabel("serve")
	b.Label(loop)
	b.EcallV(kernel.SysRecv, req, buf, b.Const(64))
	n := b.Load(buf, 0, 8)
	// fib(n)
	x := b.Const(0)
	y := b.Const(1)
	i := b.Const(0)
	floop, fdone := b.NewLabel("floop"), b.NewLabel("fdone")
	b.Label(floop)
	b.Br(ir.Ge, i, n, fdone)
	t := b.Add(x, y)
	b.MovInto(x, y)
	b.MovInto(y, t)
	b.AddIInto(i, i, 1)
	b.Jmp(floop)
	b.Label(fdone)
	b.Store(buf, 0, x, 8)
	b.EcallV(kernel.SysSend, resp, buf, b.Const(8))
	b.Jmp(loop)
	m.AddFunc(b.Build())
	return m
}

// clientMod builds the load generator: wait for ready, checkpoint, then
// issue nreq requests with m5 reset/dump around the first and last.
func clientMod(nreq int64, fibN int64) *ir.Module {
	m := ir.NewModule("client")
	b := ir.NewFunc("main", 2)
	req, resp := b.Param(0), b.Param(1)
	buf := b.Frame(b.Buf("buf", 64), 0)

	b.EcallV(kernel.SysRecv, resp, buf, b.Const(64)) // ready handshake
	b.EcallV(kernel.M5Checkpoint)

	i := b.Const(1)
	loop, done := b.NewLabel("loop"), b.NewLabel("done")
	skipR1, skipR2, skipD1, skipD2 := b.NewLabel("sr1"), b.NewLabel("sr2"), b.NewLabel("sd1"), b.NewLabel("sd2")
	b.Label(loop)
	b.BrI(ir.Gt, i, nreq, done)
	// m5 reset before the first and last request.
	b.BrI(ir.Eq, i, 1, skipR1)
	b.Jmp(skipR2)
	b.Label(skipR1)
	b.EcallV(kernel.M5ResetStats)
	b.Label(skipR2)
	b.BrI(ir.Ne, i, nreq, skipD1)
	b.EcallV(kernel.M5ResetStats)
	b.Label(skipD1)

	b.Store(buf, 0, b.Const(fibN), 8)
	b.EcallV(kernel.SysSend, req, buf, b.Const(8))
	b.EcallV(kernel.SysRecv, resp, buf, b.Const(64))

	// m5 dump after the first and last reply.
	b.BrI(ir.Ne, i, 1, skipD2)
	b.EcallV(kernel.M5DumpStats)
	b.Label(skipD2)
	last := b.NewLabel("last")
	b.BrI(ir.Ne, i, nreq, last)
	b.EcallV(kernel.M5DumpStats)
	b.Label(last)
	b.AddIInto(i, i, 1)
	b.Jmp(loop)
	b.Label(done)
	// Print the final response for functional verification.
	b.EcallV(kernel.SysWrite, buf, b.Const(8))
	b.EcallV(kernel.M5Exit)
	m.AddFunc(b.Build())
	return m
}

func runPipeline(t *testing.T, arch isa.Arch) (cold, warm uint64, m *Machine) {
	t.Helper()
	mach, err := New(DefaultConfig(arch))
	if err != nil {
		t.Fatal(err)
	}
	req := mach.K.NewChannel()
	resp := mach.K.NewChannel()
	if _, err := mach.Spawn("server", serverMod(), "main", 1, []uint64{uint64(req), uint64(resp)}); err != nil {
		t.Fatal(err)
	}
	if _, err := mach.Spawn("client", clientMod(10, 20), "main", 0, []uint64{uint64(req), uint64(resp)}); err != nil {
		t.Fatal(err)
	}
	if err := mach.RunSetup(50_000_000); err != nil {
		t.Fatalf("setup: %v", err)
	}
	if !mach.CheckpointPending() {
		t.Fatal("setup ended without a checkpoint request")
	}
	ck := mach.TakeCheckpoint()
	if err := mach.Restore(ck); err != nil {
		t.Fatalf("restore: %v", err)
	}
	dumps, err := mach.RunEval(100_000_000)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	if len(dumps) != 2 {
		t.Fatalf("got %d stat dumps, want 2 (cold+warm)", len(dumps))
	}
	// fib(20) = 6765, little-endian in the console.
	want := []byte{0x6D, 0x1A, 0, 0, 0, 0, 0, 0}
	if got := mach.K.Console.Bytes(); !bytes.Equal(got, want) {
		t.Fatalf("console = %x, want %x (fib(20)=6765)", got, want)
	}
	return dumps[0].Server().Cycles, dumps[1].Server().Cycles, mach
}

func TestFullPipelineRV64(t *testing.T) {
	cold, warm, m := runPipeline(t, isa.RV64)
	if cold == 0 || warm == 0 {
		t.Fatalf("empty windows: cold=%d warm=%d", cold, warm)
	}
	if cold <= warm {
		t.Fatalf("cold (%d cycles) must exceed warm (%d cycles)", cold, warm)
	}
	if cold < 2*warm {
		t.Errorf("cold/warm ratio %.2f: expected a pronounced cold penalty", float64(cold)/float64(warm))
	}
	t.Logf("rv64: cold=%d warm=%d ratio=%.2f setupInstrs=%d",
		cold, warm, float64(cold)/float64(warm), m.Atomic.Insts)
}

func TestFullPipelineCISC64(t *testing.T) {
	cold, warm, _ := runPipeline(t, isa.CISC64)
	if cold <= warm {
		t.Fatalf("cold (%d) must exceed warm (%d)", cold, warm)
	}
	t.Logf("cisc64: cold=%d warm=%d ratio=%.2f", cold, warm, float64(cold)/float64(warm))
}

func TestISAComparison(t *testing.T) {
	rvCold, rvWarm, _ := runPipeline(t, isa.RV64)
	xCold, xWarm, _ := runPipeline(t, isa.CISC64)
	// The thesis's headline shape: the RISC-V stack is faster in both
	// phases (fewer executed instructions).
	if rvCold >= xCold {
		t.Errorf("rv64 cold (%d) should beat cisc64 cold (%d)", rvCold, xCold)
	}
	if rvWarm >= xWarm {
		t.Errorf("rv64 warm (%d) should beat cisc64 warm (%d)", rvWarm, xWarm)
	}
	t.Logf("cold rv=%d x86=%d | warm rv=%d x86=%d", rvCold, xCold, rvWarm, xWarm)
}

func TestCheckpointRoundTripOnDisk(t *testing.T) {
	mach, err := New(DefaultConfig(isa.RV64))
	if err != nil {
		t.Fatal(err)
	}
	req := mach.K.NewChannel()
	resp := mach.K.NewChannel()
	if _, err := mach.Spawn("server", serverMod(), "main", 1, []uint64{uint64(req), uint64(resp)}); err != nil {
		t.Fatal(err)
	}
	if _, err := mach.Spawn("client", clientMod(3, 10), "main", 0, []uint64{uint64(req), uint64(resp)}); err != nil {
		t.Fatal(err)
	}
	if err := mach.RunSetup(50_000_000); err != nil {
		t.Fatal(err)
	}
	ck := mach.TakeCheckpoint()

	var buf bytes.Buffer
	if _, err := ck.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	ck2, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := mach.Restore(ck2); err != nil {
		t.Fatal(err)
	}
	if _, err := mach.RunEval(100_000_000); err != nil {
		t.Fatal(err)
	}
	if !mach.Halted() {
		t.Fatal("machine did not halt after eval")
	}
}

func TestCorruptCheckpointRejected(t *testing.T) {
	if _, err := ReadCheckpoint(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
	// Truncated gzip stream.
	mach, _ := New(DefaultConfig(isa.RV64))
	ck := mach.TakeCheckpoint()
	var buf bytes.Buffer
	if _, err := ck.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadCheckpoint(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}

func TestDeterministicReplay(t *testing.T) {
	c1, w1, _ := runPipeline(t, isa.RV64)
	c2, w2, _ := runPipeline(t, isa.RV64)
	if c1 != c2 || w1 != w2 {
		t.Fatalf("nondeterministic: run1=(%d,%d) run2=(%d,%d)", c1, w1, c2, w2)
	}
}
