// Hotel application: run the DB-backed hotel functions on the simulated
// RISC-V system (Cassandra + Memcached, as the thesis ported it), then
// compare the Cassandra and MongoDB backends under functional emulation —
// the Fig. 4.5 and Fig. 4.20 studies in one program.
package main

import (
	"fmt"
	"log"

	"svbench"
)

func main() {
	fmt.Println("hotel application on simulated RISC-V (Cassandra + Memcached):")
	for _, spec := range svbench.HotelSpecs(svbench.EngineCassandra) {
		res, err := svbench.RunFunction(svbench.RV64, spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-15s cold=%-9d warm=%-8d l1d-misses(cold)=%-6d l2-misses(cold)=%d\n",
			res.Name, res.Cold.Cycles, res.Warm.Cycles, res.Cold.L1DMisses, res.Cold.L2Misses)
	}

	fmt.Println("\nMongoDB vs Cassandra under emulation (profile function, x86):")
	for _, engine := range []svbench.HotelEngine{svbench.EngineCassandra, svbench.EngineMongo} {
		lats, err := svbench.RunEmulated(svbench.CISC64, svbench.HotelSpec("profile", engine), 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s cold=%-8d ns  warm=%d ns\n", engine, lats[0].NS, lats[4].NS)
	}
}
