// Package riscv implements the RV64IM instruction set: authentic 32-bit
// instruction encodings, a decoder, a functional interpreter core, and a
// code generator from the portable IR. This is the simulated target that
// stands in for the thesis's RISC-V systems.
package riscv

import "fmt"

// Kind enumerates the RV64IM instructions this implementation supports.
type Kind uint8

// Instruction kinds.
const (
	KindInvalid Kind = iota
	KindLUI
	KindAUIPC
	KindJAL
	KindJALR
	KindBEQ
	KindBNE
	KindBLT
	KindBGE
	KindBLTU
	KindBGEU
	KindLB
	KindLH
	KindLW
	KindLD
	KindLBU
	KindLHU
	KindLWU
	KindSB
	KindSH
	KindSW
	KindSD
	KindADDI
	KindSLTI
	KindSLTIU
	KindXORI
	KindORI
	KindANDI
	KindSLLI
	KindSRLI
	KindSRAI
	KindADDIW
	KindADD
	KindSUB
	KindSLL
	KindSLT
	KindSLTU
	KindXOR
	KindSRL
	KindSRA
	KindOR
	KindAND
	KindMUL
	KindMULHU
	KindDIV
	KindDIVU
	KindREM
	KindREMU
	KindECALL
	KindEBREAK
	KindFENCE
	kindCount
)

var kindNames = [...]string{
	"invalid", "lui", "auipc", "jal", "jalr",
	"beq", "bne", "blt", "bge", "bltu", "bgeu",
	"lb", "lh", "lw", "ld", "lbu", "lhu", "lwu",
	"sb", "sh", "sw", "sd",
	"addi", "slti", "sltiu", "xori", "ori", "andi", "slli", "srli", "srai", "addiw",
	"add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or", "and",
	"mul", "mulhu", "div", "divu", "rem", "remu",
	"ecall", "ebreak", "fence",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Inst is a decoded (or to-be-encoded) instruction.
type Inst struct {
	Kind Kind
	Rd   uint8
	Rs1  uint8
	Rs2  uint8
	Imm  int64
}

// ABI register numbers.
const (
	RegZero = 0
	RegRA   = 1
	RegSP   = 2
	RegGP   = 3
	RegTP   = 4
	RegT0   = 5
	RegT1   = 6
	RegT2   = 7
	RegS0   = 8
	RegS1   = 9
	RegA0   = 10
	RegA1   = 11
	RegA2   = 12
	RegA3   = 13
	RegA4   = 14
	RegA5   = 15
	RegA6   = 16
	RegA7   = 17
	RegT3   = 28
	RegT4   = 29
	RegT5   = 30
	RegT6   = 31
)

// Base opcode fields.
const (
	opLoad    = 0x03
	opMiscMem = 0x0F
	opOpImm   = 0x13
	opAUIPC   = 0x17
	opStore   = 0x23
	opOp      = 0x33
	opLUI     = 0x37
	opBranch  = 0x63
	opJALR    = 0x67
	opJAL     = 0x6F
	opSystem  = 0x73
)

func immFits(v int64, bits uint) bool {
	min := -(int64(1) << (bits - 1))
	max := int64(1)<<(bits-1) - 1
	return v >= min && v <= max
}

// Encode returns the 32-bit encoding of the instruction. It panics when an
// immediate is out of range for the format — encoder bugs must be loud.
func (in Inst) Encode() uint32 {
	r := func(v uint8) uint32 { return uint32(v) & 31 }
	encR := func(funct7, funct3, opcode uint32) uint32 {
		return funct7<<25 | r(in.Rs2)<<20 | r(in.Rs1)<<15 | funct3<<12 | r(in.Rd)<<7 | opcode
	}
	encI := func(funct3, opcode uint32) uint32 {
		if !immFits(in.Imm, 12) {
			panic(fmt.Sprintf("riscv: I-imm out of range: %d (%s)", in.Imm, in.Kind))
		}
		return uint32(in.Imm&0xFFF)<<20 | r(in.Rs1)<<15 | funct3<<12 | r(in.Rd)<<7 | opcode
	}
	encShift := func(funct6, funct3 uint32) uint32 {
		if in.Imm < 0 || in.Imm > 63 {
			panic("riscv: shift amount out of range")
		}
		return funct6<<26 | uint32(in.Imm&63)<<20 | r(in.Rs1)<<15 | funct3<<12 | r(in.Rd)<<7 | opOpImm
	}
	encS := func(funct3 uint32) uint32 {
		if !immFits(in.Imm, 12) {
			panic(fmt.Sprintf("riscv: S-imm out of range: %d", in.Imm))
		}
		imm := uint32(in.Imm & 0xFFF)
		return (imm>>5)<<25 | r(in.Rs2)<<20 | r(in.Rs1)<<15 | funct3<<12 | (imm&31)<<7 | opStore
	}
	encB := func(funct3 uint32) uint32 {
		if in.Imm&1 != 0 || !immFits(in.Imm, 13) {
			panic(fmt.Sprintf("riscv: B-imm out of range: %d", in.Imm))
		}
		imm := uint32(in.Imm) & 0x1FFF
		return (imm>>12&1)<<31 | (imm>>5&0x3F)<<25 | r(in.Rs2)<<20 | r(in.Rs1)<<15 |
			funct3<<12 | (imm>>1&0xF)<<8 | (imm>>11&1)<<7 | opBranch
	}
	encU := func(opcode uint32) uint32 {
		return uint32(in.Imm&0xFFFFF)<<12 | r(in.Rd)<<7 | opcode
	}
	encJ := func() uint32 {
		if in.Imm&1 != 0 || !immFits(in.Imm, 21) {
			panic(fmt.Sprintf("riscv: J-imm out of range: %d", in.Imm))
		}
		imm := uint32(in.Imm) & 0x1FFFFF
		return (imm>>20&1)<<31 | (imm>>1&0x3FF)<<21 | (imm>>11&1)<<20 |
			(imm>>12&0xFF)<<12 | r(in.Rd)<<7 | opJAL
	}

	switch in.Kind {
	case KindLUI:
		return encU(opLUI)
	case KindAUIPC:
		return encU(opAUIPC)
	case KindJAL:
		return encJ()
	case KindJALR:
		return encI(0, opJALR)
	case KindBEQ:
		return encB(0)
	case KindBNE:
		return encB(1)
	case KindBLT:
		return encB(4)
	case KindBGE:
		return encB(5)
	case KindBLTU:
		return encB(6)
	case KindBGEU:
		return encB(7)
	case KindLB:
		return encI(0, opLoad)
	case KindLH:
		return encI(1, opLoad)
	case KindLW:
		return encI(2, opLoad)
	case KindLD:
		return encI(3, opLoad)
	case KindLBU:
		return encI(4, opLoad)
	case KindLHU:
		return encI(5, opLoad)
	case KindLWU:
		return encI(6, opLoad)
	case KindSB:
		return encS(0)
	case KindSH:
		return encS(1)
	case KindSW:
		return encS(2)
	case KindSD:
		return encS(3)
	case KindADDI:
		return encI(0, opOpImm)
	case KindADDIW:
		return encI(0, 0x1B)
	case KindSLTI:
		return encI(2, opOpImm)
	case KindSLTIU:
		return encI(3, opOpImm)
	case KindXORI:
		return encI(4, opOpImm)
	case KindORI:
		return encI(6, opOpImm)
	case KindANDI:
		return encI(7, opOpImm)
	case KindSLLI:
		return encShift(0, 1)
	case KindSRLI:
		return encShift(0, 5)
	case KindSRAI:
		return encShift(0x10, 5)
	case KindADD:
		return encR(0, 0, opOp)
	case KindSUB:
		return encR(0x20, 0, opOp)
	case KindSLL:
		return encR(0, 1, opOp)
	case KindSLT:
		return encR(0, 2, opOp)
	case KindSLTU:
		return encR(0, 3, opOp)
	case KindXOR:
		return encR(0, 4, opOp)
	case KindSRL:
		return encR(0, 5, opOp)
	case KindSRA:
		return encR(0x20, 5, opOp)
	case KindOR:
		return encR(0, 6, opOp)
	case KindAND:
		return encR(0, 7, opOp)
	case KindMUL:
		return encR(1, 0, opOp)
	case KindMULHU:
		return encR(1, 3, opOp)
	case KindDIV:
		return encR(1, 4, opOp)
	case KindDIVU:
		return encR(1, 5, opOp)
	case KindREM:
		return encR(1, 6, opOp)
	case KindREMU:
		return encR(1, 7, opOp)
	case KindECALL:
		return opSystem
	case KindEBREAK:
		return 1<<20 | opSystem
	case KindFENCE:
		return opMiscMem
	}
	panic("riscv: cannot encode " + in.Kind.String())
}

// Decode decodes a 32-bit instruction word.
func Decode(w uint32) (Inst, error) {
	opcode := w & 0x7F
	rd := uint8(w >> 7 & 31)
	funct3 := w >> 12 & 7
	rs1 := uint8(w >> 15 & 31)
	rs2 := uint8(w >> 20 & 31)
	funct7 := w >> 25

	immI := int64(int32(w) >> 20)
	immS := int64(int32(w&0xFE000000)>>20) | int64(w>>7&31)
	immB := int64(int32(w&0x80000000)>>19) | int64(w>>25&0x3F)<<5 |
		int64(w>>8&0xF)<<1 | int64(w>>7&1)<<11
	immU := int64(int32(w&0xFFFFF000) >> 12)
	immJ := int64(int32(w&0x80000000)>>11) | int64(w>>21&0x3FF)<<1 |
		int64(w>>20&1)<<11 | int64(w>>12&0xFF)<<12

	switch opcode {
	case opLUI:
		return Inst{Kind: KindLUI, Rd: rd, Imm: immU}, nil
	case opAUIPC:
		return Inst{Kind: KindAUIPC, Rd: rd, Imm: immU}, nil
	case opJAL:
		return Inst{Kind: KindJAL, Rd: rd, Imm: immJ}, nil
	case opJALR:
		if funct3 != 0 {
			return Inst{}, fmt.Errorf("riscv: bad jalr funct3 %d", funct3)
		}
		return Inst{Kind: KindJALR, Rd: rd, Rs1: rs1, Imm: immI}, nil
	case opBranch:
		kinds := map[uint32]Kind{0: KindBEQ, 1: KindBNE, 4: KindBLT, 5: KindBGE, 6: KindBLTU, 7: KindBGEU}
		k, ok := kinds[funct3]
		if !ok {
			return Inst{}, fmt.Errorf("riscv: bad branch funct3 %d", funct3)
		}
		return Inst{Kind: k, Rs1: rs1, Rs2: rs2, Imm: immB}, nil
	case opLoad:
		kinds := map[uint32]Kind{0: KindLB, 1: KindLH, 2: KindLW, 3: KindLD, 4: KindLBU, 5: KindLHU, 6: KindLWU}
		k, ok := kinds[funct3]
		if !ok {
			return Inst{}, fmt.Errorf("riscv: bad load funct3 %d", funct3)
		}
		return Inst{Kind: k, Rd: rd, Rs1: rs1, Imm: immI}, nil
	case opStore:
		kinds := map[uint32]Kind{0: KindSB, 1: KindSH, 2: KindSW, 3: KindSD}
		k, ok := kinds[funct3]
		if !ok {
			return Inst{}, fmt.Errorf("riscv: bad store funct3 %d", funct3)
		}
		return Inst{Kind: k, Rs1: rs1, Rs2: rs2, Imm: immS}, nil
	case opOpImm:
		switch funct3 {
		case 0:
			return Inst{Kind: KindADDI, Rd: rd, Rs1: rs1, Imm: immI}, nil
		case 1:
			if funct7>>1 != 0 {
				return Inst{}, fmt.Errorf("riscv: bad slli funct6")
			}
			return Inst{Kind: KindSLLI, Rd: rd, Rs1: rs1, Imm: int64(w >> 20 & 63)}, nil
		case 2:
			return Inst{Kind: KindSLTI, Rd: rd, Rs1: rs1, Imm: immI}, nil
		case 3:
			return Inst{Kind: KindSLTIU, Rd: rd, Rs1: rs1, Imm: immI}, nil
		case 4:
			return Inst{Kind: KindXORI, Rd: rd, Rs1: rs1, Imm: immI}, nil
		case 5:
			switch funct7 >> 1 {
			case 0:
				return Inst{Kind: KindSRLI, Rd: rd, Rs1: rs1, Imm: int64(w >> 20 & 63)}, nil
			case 0x10:
				return Inst{Kind: KindSRAI, Rd: rd, Rs1: rs1, Imm: int64(w >> 20 & 63)}, nil
			}
			return Inst{}, fmt.Errorf("riscv: bad shift funct6 %#x", funct7>>1)
		case 6:
			return Inst{Kind: KindORI, Rd: rd, Rs1: rs1, Imm: immI}, nil
		case 7:
			return Inst{Kind: KindANDI, Rd: rd, Rs1: rs1, Imm: immI}, nil
		}
	case opOp:
		type key struct {
			f7, f3 uint32
		}
		kinds := map[key]Kind{
			{0, 0}: KindADD, {0x20, 0}: KindSUB, {0, 1}: KindSLL,
			{0, 2}: KindSLT, {0, 3}: KindSLTU, {0, 4}: KindXOR,
			{0, 5}: KindSRL, {0x20, 5}: KindSRA, {0, 6}: KindOR, {0, 7}: KindAND,
			{1, 0}: KindMUL, {1, 3}: KindMULHU, {1, 4}: KindDIV,
			{1, 5}: KindDIVU, {1, 6}: KindREM, {1, 7}: KindREMU,
		}
		k, ok := kinds[key{funct7, funct3}]
		if !ok {
			return Inst{}, fmt.Errorf("riscv: bad OP funct7=%#x funct3=%d", funct7, funct3)
		}
		return Inst{Kind: k, Rd: rd, Rs1: rs1, Rs2: rs2}, nil
	case opSystem:
		switch w >> 20 {
		case 0:
			return Inst{Kind: KindECALL}, nil
		case 1:
			return Inst{Kind: KindEBREAK}, nil
		}
		return Inst{}, fmt.Errorf("riscv: bad SYSTEM imm %#x", w>>20)
	case opMiscMem:
		return Inst{Kind: KindFENCE}, nil
	case 0x1B:
		if funct3 != 0 {
			return Inst{}, fmt.Errorf("riscv: bad OP-IMM-32 funct3 %d", funct3)
		}
		return Inst{Kind: KindADDIW, Rd: rd, Rs1: rs1, Imm: immI}, nil
	}
	return Inst{}, fmt.Errorf("riscv: cannot decode %#08x", w)
}

// String renders the instruction in assembler-like syntax.
func (in Inst) String() string {
	switch in.Kind {
	case KindLUI, KindAUIPC:
		return fmt.Sprintf("%s x%d, %#x", in.Kind, in.Rd, in.Imm)
	case KindJAL:
		return fmt.Sprintf("jal x%d, %d", in.Rd, in.Imm)
	case KindJALR:
		return fmt.Sprintf("jalr x%d, %d(x%d)", in.Rd, in.Imm, in.Rs1)
	case KindBEQ, KindBNE, KindBLT, KindBGE, KindBLTU, KindBGEU:
		return fmt.Sprintf("%s x%d, x%d, %d", in.Kind, in.Rs1, in.Rs2, in.Imm)
	case KindLB, KindLH, KindLW, KindLD, KindLBU, KindLHU, KindLWU:
		return fmt.Sprintf("%s x%d, %d(x%d)", in.Kind, in.Rd, in.Imm, in.Rs1)
	case KindSB, KindSH, KindSW, KindSD:
		return fmt.Sprintf("%s x%d, %d(x%d)", in.Kind, in.Rs2, in.Imm, in.Rs1)
	case KindADDI, KindADDIW, KindSLTI, KindSLTIU, KindXORI, KindORI, KindANDI, KindSLLI, KindSRLI, KindSRAI:
		return fmt.Sprintf("%s x%d, x%d, %d", in.Kind, in.Rd, in.Rs1, in.Imm)
	case KindECALL, KindEBREAK, KindFENCE:
		return in.Kind.String()
	default:
		return fmt.Sprintf("%s x%d, x%d, x%d", in.Kind, in.Rd, in.Rs1, in.Rs2)
	}
}
