package cluster

import (
	"svbench/internal/db"
	"svbench/internal/ir"
	"svbench/internal/langrt"
	"svbench/internal/rpc"
	"svbench/internal/vswarm"
)

// The two shipped topologies model the DeathStarBench service graphs the
// motel project runs on real RISC-V clusters: hotel-reservation (12
// services, parallel geo+rate search) and social-network (15 services,
// compose-post fan-out). Services reuse the existing vSwarm workload
// modules and db engines; orchestrator nodes reproduce the fan-out /
// gather structure of the original Go microservices.

func opaqueRequest(tag uint64) []byte {
	w := rpc.NewWriter()
	w.PutInt(tag)
	return w.Bytes()
}

func dbGet(table, key string) []byte {
	w := rpc.NewWriter()
	w.PutInt(uint64(db.OpGet))
	w.PutBytes([]byte(table))
	w.PutBytes([]byte(key))
	return w.Bytes()
}

func dbPut(table, key string, val []byte) []byte {
	w := rpc.NewWriter()
	w.PutInt(uint64(db.OpPut))
	w.PutBytes([]byte(table))
	w.PutBytes([]byte(key))
	w.PutBytes(val)
	return w.Bytes()
}

// hotelFn adapts a vswarm hotel workload to the fabric's dependency
// wiring: dep 0 is the database pair, dep 1 (when present) the memcached
// pair. Functions without a cache tier get the DB pair mirrored into the
// MC fields; their stubs never touch it.
func hotelFn(build func(vswarm.HotelChans) *ir.Module) func([]ChanPair) *ir.Module {
	return func(deps []ChanPair) *ir.Module {
		ch := vswarm.HotelChans{DBReq: deps[0].Req, DBResp: deps[0].Resp}
		mc := deps[0]
		if len(deps) > 1 {
			mc = deps[1]
		}
		ch.MCReq, ch.MCResp = mc.Req, mc.Resp
		return build(ch)
	}
}

// HotelReservation returns the 12-service hotel-reservation topology:
//
//	client → frontend ─┬→ search ─┬→ geo  → mongodb
//	                   │          └→ rate → mongodb, memcached-rate
//	                   ├→ recommendation → mongodb
//	                   ├→ user → mongodb
//	                   ├→ profile → mongodb, memcached-profile
//	                   └→ reservation → mongodb, memcached-reserve
//
// The frontend's first stage runs search and recommendation in parallel;
// search fans out to geo and rate in parallel (the DSB search path).
func HotelReservation() Topology {
	geoLat, geoLon := vswarm.HotelGeo(0)
	recLat, recLon := vswarm.HotelGeo(3)
	return Topology{
		Name:     "hotel-reservation",
		Frontend: "frontend",
		Request:  opaqueRequest(1),
		Links: []LinkSpec{
			// Client traffic crosses the load balancer: a longer edge.
			{Src: Client, Dst: "frontend", Link: Link{LatencyNS: 50_000, GbitPS: 10}},
			// Storage tier sits in-rack: shorter, fatter edges.
			{Src: "geo", Dst: "mongodb", Link: Link{LatencyNS: 10_000, GbitPS: 25}},
			{Src: "rate", Dst: "mongodb", Link: Link{LatencyNS: 10_000, GbitPS: 25}},
		},
		Services: []ServiceSpec{
			{Name: "frontend", Kind: Orchestrator, Stages: [][]Call{
				{
					{Service: "search", Request: opaqueRequest(2)},
					{Service: "recommendation", Request: vswarm.RecommendRequest(0, recLat, recLon)},
				},
				{{Service: "user", Request: vswarm.UserRequest(2, true)}},
				{{Service: "profile", Request: vswarm.ProfileRequest(1, 5, 9)}},
				{{Service: "reservation", Request: vswarm.ReservationRequest(6, 20260801, 20260805, 1)}},
			}},
			{Name: "search", Kind: Orchestrator, Stages: [][]Call{
				{
					{Service: "geo", Request: vswarm.GeoRequest(geoLat+30, geoLon+40)},
					{Service: "rate", Request: vswarm.RateRequest(20260801, 20260805, 4, 8, 12)},
				},
			}},
			{Name: "geo", Kind: Function, Runtime: langrt.GoRT,
				Deps: []string{"mongodb"}, Fn: hotelFn(vswarm.HotelGeoFn)},
			{Name: "rate", Kind: Function, Runtime: langrt.GoRT,
				Deps: []string{"mongodb", "memcached-rate"}, Fn: hotelFn(vswarm.HotelRateFn)},
			{Name: "recommendation", Kind: Function, Runtime: langrt.GoRT,
				Deps: []string{"mongodb"}, Fn: hotelFn(vswarm.HotelRecommendFn)},
			{Name: "user", Kind: Function, Runtime: langrt.GoRT,
				Deps: []string{"mongodb"}, Fn: hotelFn(vswarm.HotelUserFn)},
			{Name: "profile", Kind: Function, Runtime: langrt.GoRT,
				Deps: []string{"mongodb", "memcached-profile"}, Fn: hotelFn(vswarm.HotelProfileFn)},
			{Name: "reservation", Kind: Function, Runtime: langrt.GoRT,
				Deps: []string{"mongodb", "memcached-reserve"}, Fn: hotelFn(vswarm.HotelReservationFn)},
			{Name: "mongodb", Kind: Datastore, Engine: "mongodb",
				Seed: func(s db.Store) { vswarm.SeedHotel(s) }},
			{Name: "memcached-rate", Kind: Datastore, Engine: "memcached"},
			{Name: "memcached-profile", Kind: Datastore, Engine: "memcached"},
			{Name: "memcached-reserve", Kind: Datastore, Engine: "memcached"},
		},
	}
}

// SocialNetwork returns the 15-service social-network topology centred
// on the compose-post fan-out:
//
//	client → frontend ─┬→ compose-post ─┬→ unique-id (fibonacci)
//	                   │                ├→ media (aes)
//	                   │                ├→ text (email render)
//	                   │                ├→ user-mention (recommendation)
//	                   │                ├→ user-service (auth)
//	                   │                ├→ post-storage → mongodb-post
//	                   │                └→ user-timeline → mongodb-timeline
//	                   └→ home-timeline ─┬→ social-graph → redis-social
//	                                     └→ redis-home
//
// compose-post's first stage issues five parallel calls; storage writes
// follow; the timeline fan-out closes the request. Function services map
// onto the existing vSwarm workloads standing in for the corresponding
// DSB microservice kernels.
func SocialNetwork() Topology {
	return Topology{
		Name:     "social-network",
		Frontend: "frontend",
		Request:  opaqueRequest(1),
		Services: []ServiceSpec{
			{Name: "frontend", Kind: Orchestrator, Stages: [][]Call{
				{{Service: "compose-post", Request: opaqueRequest(2)}},
				{{Service: "home-timeline", Request: opaqueRequest(3)}},
			}},
			{Name: "compose-post", Kind: Orchestrator, Stages: [][]Call{
				{
					{Service: "unique-id", Request: vswarm.FibRequest(27)},
					{Service: "media", Request: vswarm.AESRequest(256)},
					{Service: "text", Request: vswarm.EmailRequest("Ada", 31415)},
					{Service: "user-mention", Request: vswarm.RecommendationRequest(4242, 3)},
					{Service: "user-service", Request: vswarm.AuthRequestMsg(3, true)},
				},
				{{Service: "post-storage", Request: opaqueRequest(4)}},
				{{Service: "user-timeline", Request: opaqueRequest(5)}},
			}},
			{Name: "unique-id", Kind: Function, Runtime: langrt.GoRT,
				Fn: func([]ChanPair) *ir.Module { return vswarm.Fibonacci() }},
			{Name: "media", Kind: Function, Runtime: langrt.GoRT,
				Fn: func([]ChanPair) *ir.Module { return vswarm.AES() }},
			{Name: "text", Kind: Function, Runtime: langrt.PyRT,
				Fn: func([]ChanPair) *ir.Module { return vswarm.Email() }},
			{Name: "user-mention", Kind: Function, Runtime: langrt.PyRT,
				Fn: func([]ChanPair) *ir.Module { return vswarm.Recommendation() }},
			{Name: "user-service", Kind: Function, Runtime: langrt.GoRT,
				Fn: func([]ChanPair) *ir.Module { return vswarm.Auth() }},
			{Name: "post-storage", Kind: Orchestrator, Stages: [][]Call{
				{{Service: "mongodb-post",
					Request: dbPut("posts", "post_0001", vswarm.AESPayload(384))}},
			}},
			{Name: "mongodb-post", Kind: Datastore, Engine: "mongodb"},
			{Name: "user-timeline", Kind: Orchestrator, Stages: [][]Call{
				{{Service: "mongodb-timeline",
					Request: dbPut("timeline", "u1", vswarm.AESPayload(128))}},
			}},
			{Name: "mongodb-timeline", Kind: Datastore, Engine: "mongodb"},
			{Name: "home-timeline", Kind: Orchestrator, Stages: [][]Call{
				{{Service: "social-graph", Request: opaqueRequest(6)}},
				{{Service: "redis-home", Request: dbGet("home", "u1")}},
			}},
			{Name: "social-graph", Kind: Orchestrator, Stages: [][]Call{
				{{Service: "redis-social", Request: dbGet("followers", "u1")}},
			}},
			{Name: "redis-home", Kind: Datastore, Engine: "memcached",
				Seed: func(s db.Store) { s.Put("home", "u1", vswarm.AESPayload(512)) }},
			{Name: "redis-social", Kind: Datastore, Engine: "memcached",
				Seed: func(s db.Store) { s.Put("followers", "u1", vswarm.AESPayload(256)) }},
		},
	}
}

// Topologies returns the shipped topology catalog.
func Topologies() []Topology {
	return []Topology{HotelReservation(), SocialNetwork()}
}
