// Command mkimage builds the container images of the benchmark suite for
// both ISAs and prints the compressed-size comparison tables (Tables 4.4
// and 4.5 of the thesis). With -image NAME it shows one image's layers.
package main

import (
	"flag"
	"fmt"
	"os"

	"svbench/internal/container"
	"svbench/internal/figures"
	"svbench/internal/isa"
)

func main() {
	var (
		image = flag.String("image", "", "show layer detail for one image")
		arch  = flag.String("arch", "rv64", "arch for -image")
	)
	flag.Parse()

	if *image != "" {
		for _, sp := range figures.ImageCatalog() {
			if sp.Name != *image {
				continue
			}
			img, err := figures.BuildFunctionImage(sp, isa.Arch(*arch), container.GPourProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mkimage:", err)
				os.Exit(1)
			}
			fmt.Printf("%s (%s): %d bytes, %d compressed\n", img.Name, img.Arch, img.Size(), img.CompressedSize())
			for _, l := range img.Layers {
				fmt.Printf("  %-14s %8d bytes\n", l.Name, len(l.Data))
			}
			return
		}
		fmt.Fprintf(os.Stderr, "mkimage: unknown image %q\n", *image)
		os.Exit(2)
	}

	t44, err := figures.Table44()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mkimage:", err)
		os.Exit(1)
	}
	t45, err := figures.Table45()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mkimage:", err)
		os.Exit(1)
	}
	fmt.Println(t44.Markdown())
	fmt.Println(t45.Markdown())
}
