// Package libc provides the C-library routines (memcpy, memset, memcmp,
// strlen, hashing) that the kernel, RPC layer, runtimes and workloads call,
// written in the portable IR in two flavors:
//
//   - Fast: word-at-a-time loops, the lean statically-linked builds used by
//     the freshly-built RISC-V container images of the thesis.
//   - Compat: the generic dynamically-linked distro builds of its x86
//     images — an ifunc-style dispatch check on entry and conservative
//     byte-at-a-time bulk loops.
//
// This split is the dominant, deliberately modeled source of the thesis's
// headline observation that its x86 software stack executed significantly
// more instructions than the RISC-V one for the same work (Fig. 4.16); see
// DESIGN.md §1.
package libc

import "svbench/internal/ir"

// Flavor selects a library implementation.
type Flavor int

// Library flavors.
const (
	Fast   Flavor = iota // word-wise, statically linked (RISC-V images)
	Compat               // byte-wise with ifunc dispatch (x86 images)
)

func (f Flavor) String() string {
	if f == Fast {
		return "fast"
	}
	return "compat"
}

// Module builds the library for the given flavor. All functions are marked
// Lib so the CISC64 backend routes calls through its PLT model.
func Module(f Flavor) *ir.Module {
	m := ir.NewModule("libc-" + f.String())
	if f == Compat {
		// The ifunc resolution state consulted on each entry.
		m.AddGlobal(&ir.Global{Name: "__ifunc_state", Data: make([]byte, 64)})
	}
	add := func(fn *ir.Function) {
		fn.Lib = true
		m.AddFunc(fn)
	}
	add(buildMemcpy(f))
	add(buildMemset(f))
	add(buildMemcmp(f))
	add(buildStrlen(f))
	add(buildFNV(f))
	add(buildBcopyDown(f))
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return m
}

// ifuncPrologue models glibc's indirect-function dispatch: load the
// resolver state and fall through (the branch is never taken after
// startup, but costs fetch, a load and a prediction slot on every call).
func ifuncPrologue(b *ir.Builder, f Flavor) {
	if f != Compat {
		return
	}
	st := b.Global("__ifunc_state", 0)
	v := b.Load(st, 0, 8)
	skip := b.NewLabel("resolved")
	b.BrI(ir.Eq, v, 0, skip)
	// Resolver path (cold, never taken once state is zero-initialized,
	// but present in the text and on the predicted path).
	b.Store(st, 0, b.Const(0), 8)
	b.Label(skip)
}

// buildMemcpy: memcpy(dst, src, n) -> dst.
func buildMemcpy(f Flavor) *ir.Function {
	b := ir.NewFunc("memcpy", 3)
	dst, src, n := b.Param(0), b.Param(1), b.Param(2)
	ifuncPrologue(b, f)
	i := b.Const(0)
	if f == Fast {
		// 8 bytes per iteration, then a byte tail.
		wloop, wdone := b.NewLabel("wloop"), b.NewLabel("wdone")
		lim := b.AddI(n, -7)
		b.Label(wloop)
		b.Br(ir.Ge, i, lim, wdone)
		sa := b.Add(src, i)
		da := b.Add(dst, i)
		v := b.Load(sa, 0, 8)
		b.Store(da, 0, v, 8)
		b.AddIInto(i, i, 8)
		b.Jmp(wloop)
		b.Label(wdone)
	}
	bloop, bdone := b.NewLabel("bloop"), b.NewLabel("bdone")
	b.Label(bloop)
	b.Br(ir.Ge, i, n, bdone)
	sa := b.Add(src, i)
	da := b.Add(dst, i)
	v := b.LoadU(sa, 0, 1)
	b.Store(da, 0, v, 1)
	b.AddIInto(i, i, 1)
	b.Jmp(bloop)
	b.Label(bdone)
	b.Ret(dst)
	return b.Build()
}

// buildMemset: memset(dst, c, n) -> dst.
func buildMemset(f Flavor) *ir.Function {
	b := ir.NewFunc("memset", 3)
	dst, c, n := b.Param(0), b.Param(1), b.Param(2)
	ifuncPrologue(b, f)
	i := b.Const(0)
	if f == Fast {
		// Broadcast the byte into a word.
		c8 := b.AndI(c, 0xFF)
		w := b.Mov(c8)
		for _, sh := range []int64{8, 16, 32} {
			t := b.ShlI(w, sh)
			b.OrInto(w, w, t)
		}
		wloop, wdone := b.NewLabel("wloop"), b.NewLabel("wdone")
		lim := b.AddI(n, -7)
		b.Label(wloop)
		b.Br(ir.Ge, i, lim, wdone)
		da := b.Add(dst, i)
		b.Store(da, 0, w, 8)
		b.AddIInto(i, i, 8)
		b.Jmp(wloop)
		b.Label(wdone)
	}
	bloop, bdone := b.NewLabel("bloop"), b.NewLabel("bdone")
	b.Label(bloop)
	b.Br(ir.Ge, i, n, bdone)
	da := b.Add(dst, i)
	b.Store(da, 0, c, 1)
	b.AddIInto(i, i, 1)
	b.Jmp(bloop)
	b.Label(bdone)
	b.Ret(dst)
	return b.Build()
}

// buildMemcmp: memcmp(a, b, n) -> <0/0/>0 as the first differing byte.
func buildMemcmp(f Flavor) *ir.Function {
	b := ir.NewFunc("memcmp", 3)
	pa, pb, n := b.Param(0), b.Param(1), b.Param(2)
	ifuncPrologue(b, f)
	i := b.Const(0)
	loop, done, diff := b.NewLabel("loop"), b.NewLabel("done"), b.NewLabel("diff")
	va := b.Const(0)
	vb := b.Const(0)
	b.Label(loop)
	b.Br(ir.Ge, i, n, done)
	aa := b.Add(pa, i)
	ba := b.Add(pb, i)
	b.LoadInto(va, aa, 0, 1, true)
	b.LoadInto(vb, ba, 0, 1, true)
	b.Br(ir.Ne, va, vb, diff)
	b.AddIInto(i, i, 1)
	b.Jmp(loop)
	b.Label(diff)
	b.Ret(b.Sub(va, vb))
	b.Label(done)
	b.Ret(b.Const(0))
	return b.Build()
}

// buildStrlen: strlen(p) -> length of the NUL-terminated string.
func buildStrlen(f Flavor) *ir.Function {
	b := ir.NewFunc("strlen", 1)
	p := b.Param(0)
	ifuncPrologue(b, f)
	i := b.Const(0)
	loop, done := b.NewLabel("loop"), b.NewLabel("done")
	b.Label(loop)
	a := b.Add(p, i)
	v := b.LoadU(a, 0, 1)
	b.BrI(ir.Eq, v, 0, done)
	b.AddIInto(i, i, 1)
	b.Jmp(loop)
	b.Label(done)
	b.Ret(i)
	return b.Build()
}

// buildFNV: fnv64(p, n) -> FNV-1a hash. The hot hashing primitive used by
// the auth workload, the databases' partitioners and the memcached model.
func buildFNV(f Flavor) *ir.Function {
	b := ir.NewFunc("fnv64", 2)
	p, n := b.Param(0), b.Param(1)
	ifuncPrologue(b, f)
	h := b.Const(-3750763034362895579) // 0xcbf29ce484222325
	prime := b.Const(0x100000001b3)
	i := b.Const(0)
	loop, done := b.NewLabel("loop"), b.NewLabel("done")
	b.Label(loop)
	b.Br(ir.Ge, i, n, done)
	a := b.Add(p, i)
	v := b.LoadU(a, 0, 1)
	b.XorInto(h, h, v)
	b.MulInto(h, h, prime)
	b.AddIInto(i, i, 1)
	b.Jmp(loop)
	b.Label(done)
	b.Ret(h)
	return b.Build()
}

// buildBcopyDown: bcopy_down(dst, src, n) copies backwards, used by ring
// buffer compaction in the RPC layer.
func buildBcopyDown(f Flavor) *ir.Function {
	b := ir.NewFunc("bcopy_down", 3)
	dst, src, n := b.Param(0), b.Param(1), b.Param(2)
	ifuncPrologue(b, f)
	i := b.Mov(n)
	loop, done := b.NewLabel("loop"), b.NewLabel("done")
	b.Label(loop)
	b.BrI(ir.Le, i, 0, done)
	b.AddIInto(i, i, -1)
	sa := b.Add(src, i)
	da := b.Add(dst, i)
	v := b.LoadU(sa, 0, 1)
	b.Store(da, 0, v, 1)
	b.Jmp(loop)
	b.Label(done)
	b.Ret(dst)
	return b.Build()
}

// ForArch returns the flavor a given software stack uses: Fast for RISC-V
// images (static builds), Compat for x86 images (distro dynamic builds).
func ForArch(arch string) Flavor {
	if arch == "cisc64" || arch == "x86" {
		return Compat
	}
	return Fast
}
