package cpu

import (
	"testing"

	"svbench/internal/isa"
	"svbench/internal/trace"
)

// benchRecs builds a mixed instruction stream representative of the
// serverless handlers: ALU work with a dependent chain, loads/stores
// striding over a few cache lines, and taken/not-taken branches.
func benchRecs(n int) []isa.TraceRec {
	recs := make([]isa.TraceRec, 0, n)
	pc := uint64(0x1000)
	for i := 0; len(recs) < n; i++ {
		recs = append(recs,
			isa.TraceRec{PC: pc, Size: 4, Class: isa.ClassAlu,
				Src1: uint8(i % 8), Src2: isa.NoDep, Dst: uint8((i + 1) % 8), MicroOps: 1},
			isa.TraceRec{PC: pc + 4, Size: 4, Class: isa.ClassLoad,
				MemAddr: 0x8000 + uint64(i%64)*8, MemSize: 8,
				Src1: 2, Src2: isa.NoDep, Dst: 3, MicroOps: 1},
			isa.TraceRec{PC: pc + 8, Size: 4, Class: isa.ClassStore,
				MemAddr: 0x9000 + uint64(i%32)*8, MemSize: 8,
				Src1: 3, Src2: 4, Dst: isa.NoDep, MicroOps: 1},
			isa.TraceRec{PC: pc + 12, Size: 4, Class: isa.ClassBranch,
				Taken: i%3 == 0, Target: pc + 32,
				Src1: 1, Src2: 2, Dst: isa.NoDep, MicroOps: 1},
		)
		pc += 16
		if pc > 0x1400 {
			pc = 0x1000
		}
	}
	return recs[:n]
}

func runRetireLoop(b *testing.B, o *O3, recs []isa.TraceRec) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Retire(&recs[i%len(recs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkO3RetireTracerOff is the tier-1 overhead guard: the O3 retire
// loop with no tracer attached (the default) must stay within noise of
// the pre-tracing baseline — the only added work is nil-pointer checks.
func BenchmarkO3RetireTracerOff(b *testing.B) {
	o := newTestO3()
	runRetireLoop(b, o, benchRecs(4096))
}

// BenchmarkO3RetireTracerOn measures the same loop with the event tracer
// and latency distribution attached, to quantify the enabled cost.
func BenchmarkO3RetireTracerOn(b *testing.B) {
	o := newTestO3()
	r := trace.NewRegistry()
	o.AttachTracer(trace.NewTracer(trace.DefaultBufferEvents), 0,
		r.NewDist("bench.ecallLat", "ecall latency"))
	runRetireLoop(b, o, benchRecs(4096))
}
