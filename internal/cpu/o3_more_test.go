package cpu

import (
	"testing"

	"svbench/internal/isa"
	"svbench/internal/mem"
)

// TestO3ROBStall: with a tiny ROB, a long-latency load must throttle the
// independent work behind it; a large ROB hides it.
func TestO3ROBStall(t *testing.T) {
	run := func(robSize int) uint64 {
		dram := mem.NewDRAM(mem.DRAMConfig{Latency: 400, BusCycle: 16})
		h := mem.NewHierarchy(mem.DefaultHierConfig(), dram)
		cfg := DefaultO3Config()
		cfg.ROBSize = robSize
		o := NewO3(cfg, h, NewCoupler())

		var recs []isa.TraceRec
		for i := 0; i < 64; i++ {
			// One cold load followed by a burst of independent ALU ops.
			ld := alu(0x1000, 2, isa.NoDep, isa.NoDep)
			ld.Class = isa.ClassLoad
			ld.MemAddr = 0x200000 + uint64(i)*4096 // always misses
			ld.MemSize = 8
			recs = append(recs, ld)
			for k := 0; k < 32; k++ {
				recs = append(recs, alu(0x1100+uint64(4*k), uint8(3+k%4), isa.NoDep, isa.NoDep))
			}
		}
		retireAll(t, o, recs) // warm icache
		o.ColdStart()         // but keep dcache misses: flush all
		o.ResetStats()
		retireAll(t, o, recs)
		return o.WindowCycles()
	}
	small, big := run(8), run(192)
	if big >= small {
		t.Fatalf("ROB 192 (%d cycles) must beat ROB 8 (%d cycles)", big, small)
	}
	if float64(small)/float64(big) < 1.3 {
		t.Fatalf("expected >=1.3x from ROB scaling, got %.2f", float64(small)/float64(big))
	}
}

// TestO3LoadQueueStall: a burst of loads larger than the LQ must serialize
// on queue occupancy.
func TestO3LoadQueueStall(t *testing.T) {
	run := func(lq int) uint64 {
		dram := mem.NewDRAM(mem.DRAMConfig{Latency: 300, BusCycle: 4})
		h := mem.NewHierarchy(mem.DefaultHierConfig(), dram)
		cfg := DefaultO3Config()
		cfg.LQSize = lq
		o := NewO3(cfg, h, NewCoupler())
		var recs []isa.TraceRec
		for i := 0; i < 256; i++ {
			ld := alu(0x1000+uint64(4*(i%16)), 2, isa.NoDep, isa.NoDep)
			ld.Class = isa.ClassLoad
			ld.MemAddr = 0x300000 + uint64(i)*4096
			ld.MemSize = 8
			recs = append(recs, ld)
		}
		retireAll(t, o, recs)
		o.ColdStart()
		o.ResetStats()
		retireAll(t, o, recs)
		return o.WindowCycles()
	}
	tiny, wide := run(2), run(32)
	if wide >= tiny {
		t.Fatalf("LQ 32 (%d) must beat LQ 2 (%d)", wide, tiny)
	}
}

// TestCouplerDerivedChain: derived sequences resolve transitively even when
// registered before the base commits.
func TestCouplerDerivedChain(t *testing.T) {
	c := NewCoupler()
	c.Derive(1, 2, 100)
	c.Derive(2, 3, 50)
	if _, ok := c.ready(3); ok {
		t.Fatal("derived seq ready before base")
	}
	c.post(1, 1000)
	if tm, ok := c.ready(2); !ok || tm != 1100 {
		t.Fatalf("seq2 = %d,%v", tm, ok)
	}
	if tm, ok := c.ready(3); !ok || tm != 1150 {
		t.Fatalf("seq3 = %d,%v", tm, ok)
	}
	// Derivation after the base commits resolves immediately.
	c.Derive(3, 4, 25)
	if tm, ok := c.ready(4); !ok || tm != 1175 {
		t.Fatalf("seq4 = %d,%v", tm, ok)
	}
}

// TestO3EcallSerializes: an ecall cannot retire before older instructions
// and stalls younger ones.
func TestO3EcallSerializes(t *testing.T) {
	o := newTestO3()
	var recs []isa.TraceRec
	for i := 0; i < 100; i++ {
		recs = append(recs, alu(0x1000+uint64(4*i), 1, isa.NoDep, isa.NoDep))
	}
	ec := isa.TraceRec{PC: 0x2000, Size: 4, Class: isa.ClassEcall,
		Src1: isa.NoDep, Src2: isa.NoDep, Dst: isa.NoDep, MicroOps: 1}
	recs = append(recs, ec)
	retireAll(t, o, recs)
	o.ResetStats()
	base := retireAll(t, o, recs[:100])
	ct, err := o.Retire(&ec)
	if err != nil {
		t.Fatal(err)
	}
	if ct <= base {
		t.Fatal("ecall committed before older instructions")
	}
	if ct < base+o.Cfg.EcallLat {
		t.Fatalf("ecall latency not charged: %d vs %d", ct, base)
	}
}
