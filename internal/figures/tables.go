package figures

import (
	"fmt"

	"svbench/internal/container"
	"svbench/internal/ir"
	"svbench/internal/isa"
	"svbench/internal/langrt"
	"svbench/internal/libc"
	"svbench/internal/vswarm"
)

// imageSpec describes one image of the size tables.
type ImageSpec struct {
	Name    string
	Runtime langrt.Runtime
	Build   func() *ir.Module
	Shop    bool
	AuthDep bool
}

func ImageCatalog() []ImageSpec {
	var out []ImageSpec
	std := []struct {
		fn    string
		build func() *ir.Module
	}{
		{"Fibonacci", vswarm.Fibonacci}, {"Aes", vswarm.AES}, {"Auth", vswarm.Auth},
	}
	rts := []struct {
		rt    langrt.Runtime
		label string
	}{{langrt.GoRT, "Go"}, {langrt.PyRT, "Python"}, {langrt.NodeRT, "NodeJs"}}
	for _, s := range std {
		for _, r := range rts {
			out = append(out, ImageSpec{
				Name:    fmt.Sprintf("%s-%s", s.fn, r.label),
				Runtime: r.rt,
				Build:   s.build,
				AuthDep: s.fn == "Auth" && r.rt == langrt.NodeRT,
			})
		}
	}
	out = append(out,
		ImageSpec{Name: "Product-Catalog-service-Go", Runtime: langrt.GoRT, Build: vswarm.ProductCatalog, Shop: true},
		ImageSpec{Name: "Shipping-service-Go", Runtime: langrt.GoRT, Build: vswarm.Shipping, Shop: true},
		ImageSpec{Name: "Recommendation-service-Python", Runtime: langrt.PyRT, Build: vswarm.Recommendation, Shop: true},
		ImageSpec{Name: "Email-service-Python", Runtime: langrt.PyRT, Build: vswarm.Email, Shop: true},
		ImageSpec{Name: "Currency-service-NodeJs", Runtime: langrt.NodeRT, Build: vswarm.Currency, Shop: true},
		ImageSpec{Name: "Payment-service-NodeJs", Runtime: langrt.NodeRT, Build: vswarm.Payment, Shop: true},
	)
	for _, hf := range vswarm.HotelFuncs {
		build := hf.Build
		out = append(out, ImageSpec{
			Name:    fmt.Sprintf("%s-Go", titleCase(hf.Name)),
			Runtime: langrt.GoRT,
			Build:   func() *ir.Module { return build(vswarm.HotelChans{}) },
		})
	}
	return out
}

func titleCase(s string) string {
	if s == "" {
		return s
	}
	return string(s[0]-'a'+'A') + s[1:]
}

// BuildFunctionImage assembles a complete container image (base layers +
// compiled server program) for one workload.
func BuildFunctionImage(sp ImageSpec, arch isa.Arch, prof container.Profile) (*container.Image, error) {
	mod, err := langrt.BuildServer(sp.Runtime, libc.ForArch(string(arch)), sp.Build(), vswarm.Handler)
	if err != nil {
		return nil, err
	}
	return container.BuildImage(sp.Name, sp.Runtime, arch, mod, container.ImageOpts{
		Shop: sp.Shop, AuthDep: sp.AuthDep, Profile: prof,
	})
}

const kb = 1024.0

// Table44 reproduces the container compressed-size comparison (x86 vs
// RISC-V). Values are in KiB; at the repository's documented 1:1000 scale
// a KiB corresponds to a MB of Table 4.4.
func Table44() (Data, error) {
	d := Data{ID: "table4.4", Title: "Container compressed size (KiB; 1 KiB ~ 1 MB of the thesis)",
		Columns: []string{"x86", "riscv"}}
	for _, sp := range ImageCatalog() {
		var vals []float64
		for _, arch := range []isa.Arch{isa.CISC64, isa.RV64} {
			img, err := BuildFunctionImage(sp, arch, container.GPourProfile)
			if err != nil {
				return d, fmt.Errorf("table4.4 %s/%s: %w", sp.Name, arch, err)
			}
			vals = append(vals, float64(img.CompressedSize())/kb)
		}
		d.Rows = append(d.Rows, Row{Label: sp.Name, Values: vals})
	}
	return d, nil
}

// Table45 reproduces the RISC-V image size comparison against the prior
// "Natheesan" Docker Hub port (standalone + shop images only, as in the
// thesis).
func Table45() (Data, error) {
	d := Data{ID: "table4.5", Title: "RISC-V container compressed size: prior port vs ours (KiB)",
		Columns: []string{"natheesan", "gpour"}}
	for _, sp := range ImageCatalog() {
		if len(sp.Name) > 3 && sp.Name[len(sp.Name)-3:] == "-Go" && !sp.Shop {
			// Hotel images are excluded: the prior port's hotel images
			// could not run (§4.2.6).
			if sp.Name != "Fibonacci-Go" && sp.Name != "Aes-Go" && sp.Name != "Auth-Go" {
				continue
			}
		}
		var vals []float64
		for _, prof := range []container.Profile{container.NatheesanProfile, container.GPourProfile} {
			img, err := BuildFunctionImage(sp, isa.RV64, prof)
			if err != nil {
				return d, fmt.Errorf("table4.5 %s: %w", sp.Name, err)
			}
			vals = append(vals, float64(img.CompressedSize())/kb)
		}
		d.Rows = append(d.Rows, Row{Label: sp.Name, Values: vals})
	}
	return d, nil
}
