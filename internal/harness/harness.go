// Package harness implements the vSwarm-u experiment methodology on the
// simulated machine (Fig. 4.1 of the thesis): boot the system and the
// function container in functional (atomic) setup mode, take a checkpoint
// right before the first request, restore into the detailed out-of-order
// CPU with cold microarchitectural state, replay ten requests, and dump
// statistics around the first (cold) and tenth (warm) request. The client
// is pinned to core 0 and the function server to core 1; all reported
// statistics come from core 1.
//
// A Spec may additionally carry a fault-injection plan and a retry
// policy (see internal/faults and docs/faults.md): the plan degrades the
// IPC and service layers deterministically, the retry policy is compiled
// into the IR load generator, and the run's Result reports the fault
// ledger alongside the cold/warm measurements.
package harness

import (
	"fmt"

	"svbench/internal/faults"
	"svbench/internal/gemsys"
	"svbench/internal/ir"
	"svbench/internal/isa"
	"svbench/internal/kernel"
	"svbench/internal/langrt"
	"svbench/internal/libc"
	"svbench/internal/rpc"
	"svbench/internal/stats"
	"svbench/internal/trace"
	"svbench/internal/vswarm"
)

// Env gives a workload builder access to machine facilities (native
// services, channels) while the experiment is assembled.
type Env struct {
	M *gemsys.Machine
	// Inj is the run's fault injector; nil when the spec has no plan.
	Inj *faults.Injector

	bindings []ServiceBinding
}

// ServiceBinding records one guest→service channel wiring made through
// Env.NewService: which engine (by its faults.NamedService name, "" for
// anonymous services) sits behind which request/response channel pair.
// The fault layer consumes these to target per-service rules at a
// specific instance's channels instead of matching engine names globally.
type ServiceBinding struct {
	Name   string
	ReqCh  int
	RespCh int
}

// NewService creates a request/response channel pair and binds a native
// service (a database or cache engine) to it. The returned ids are baked
// into the workload module's configuration globals. When a fault plan is
// active, the service is wrapped per its service rules.
func (e *Env) NewService(svc kernel.Service) (reqCh, respCh int) {
	reqCh = e.M.K.NewChannel()
	respCh = e.M.K.NewChannel()
	e.M.K.Bind(reqCh, respCh, e.Inj.WrapService(svc))
	name := ""
	if n, ok := svc.(faults.NamedService); ok {
		name = n.ServiceName()
	}
	e.bindings = append(e.bindings, ServiceBinding{Name: name, ReqCh: reqCh, RespCh: respCh})
	return reqCh, respCh
}

// Spec describes one function experiment.
type Spec struct {
	Name    string
	Runtime langrt.Runtime
	// Build constructs the workload module (creating services first when
	// the function depends on them).
	Build func(env *Env) (*ir.Module, error)
	// Request returns the encoded request message.
	Request func() []byte
	// Requests is the invocation count (default 10: request 1 is the
	// cold execution, request Requests the warm one). It must be at
	// least 2 — the cold and warm stat windows need distinct requests.
	Requests int
	// Check validates the functional response (optional). With a Retry
	// policy it doubles as the per-reply health check: replies failing
	// it are retried.
	Check func(resp *rpc.Reader) error
	// Flavor overrides the libc flavor (ablation studies); nil selects
	// the architecture's default software stack.
	Flavor *libc.Flavor

	// Trace, when enabled, turns on the machine's observability layer:
	// the Result then carries the event trace (Chrome JSON), the
	// gem5-style stats text, and the sampled guest profile.
	Trace trace.Options

	// Sampling, when enabled, runs the evaluation phase in SMARTS-style
	// sampled-detailed mode (gemsys.Machine.RunEvalSampled): functional
	// fast-forward with functional warming between periodic detailed O3
	// windows, stats extrapolated from the measured windows. The zero
	// value is full detail, bit-identical to not setting it. Sampling is
	// an eval-phase knob only: it never enters the boot fingerprint, so
	// sampled and full-detail runs share memoized boot checkpoints.
	Sampling gemsys.SamplingConfig

	// Faults, when set, injects the plan's deterministic fault schedule
	// into the run (armed after the checkpoint restore, so setup is
	// never faulted).
	Faults *faults.Plan
	// Retry, when set, compiles a recovery loop into the load
	// generator: per-attempt deadlines, bounded attempts, exponential
	// backoff in virtual cycles.
	Retry *faults.Retry
}

// Result is one experiment's outcome.
type Result struct {
	Name       string
	Runtime    langrt.Runtime
	Arch       isa.Arch
	Cold, Warm stats.CoreStats
	// SampleCold/SampleWarm describe the extrapolation quality of the
	// server core's cold/warm windows when Spec.Sampling was enabled;
	// nil for full-detail runs.
	SampleCold, SampleWarm *stats.SampleMeta
	SetupInsts uint64
	Response   []byte
	// FaultReport is the run's fault ledger; nil without a fault plan.
	FaultReport *faults.Report

	// Observability artifacts, populated when Spec.Trace.Enabled:
	// the sampled guest profile, the Chrome trace_event JSON export,
	// the gem5-style stats.txt text, and the raw buffered events with
	// the symbol table that resolves their PCs.
	Profile   *trace.Profile
	TraceJSON []byte
	StatsText string
	Events    []trace.Event
	Syms      *trace.SymTable
}

// Budgets for the two phases.
const (
	setupBudget = 600_000_000
	evalBudget  = 600_000_000
)

// Run executes the full methodology for one function on one ISA.
func Run(arch isa.Arch, spec Spec) (*Result, error) {
	cfg := gemsys.DefaultConfig(arch)
	return RunWith(cfg, spec)
}

// RunWith executes the methodology with an explicit machine configuration
// (used by the design-space exploration tooling). Every failure is
// returned as a *ExperimentError carrying the phase, fault counters and
// any partial measurements, so sweep drivers can degrade gracefully.
func RunWith(cfg gemsys.Config, spec Spec) (*Result, error) {
	return RunCached(cfg, spec, nil)
}

// Boot is a machine assembled for one experiment but not yet executed:
// the methodology's boot-to-checkpoint and checkpoint-to-measurement
// phases run separately on it (Setup, Measure), which is what lets the
// sweep engine's memoizer skip Setup for runs whose boot fingerprint it
// has already simulated.
type Boot struct {
	M    *gemsys.Machine
	cfg  gemsys.Config
	spec Spec
	inj  *faults.Injector
	nreq int
	// reqCh/respCh are the load generator's channel pair, recorded so
	// host-side drivers (internal/loadgen) can inject requests and drain
	// replies without a simulated client.
	reqCh, respCh int
	// setupInsts, setupSvcReqs and setupFaulted are recorded by Setup.
	setupInsts   uint64
	setupSvcReqs uint64
	setupFaulted bool
	// bindings are the guest→service channel wirings the spec's Build
	// made through Env.NewService.
	bindings []ServiceBinding
}

// ClientChans returns the client-side request and response channel ids
// wired by BootSpec. Host-side load drivers inject requests into reqCh
// and collect replies from respCh.
func (b *Boot) ClientChans() (reqCh, respCh int) { return b.reqCh, b.respCh }

// ServiceBindings returns the machine's guest→service channel wirings in
// creation order (a copy; safe to retain). The load generator forwards
// these to the fault layer so per-service rules can target one pool
// instance's concrete channels.
func (b *Boot) ServiceBindings() []ServiceBinding {
	return append([]ServiceBinding(nil), b.bindings...)
}

func (b *Boot) fail(phase string, partial *Result, err error) (*Result, error) {
	ee := &ExperimentError{Spec: b.spec.Name, Arch: b.cfg.Arch, Phase: phase, Partial: partial, Err: err}
	if b.inj != nil {
		rep := b.inj.Report
		ee.Faults = &rep
	}
	return nil, ee
}

// BootSpec assembles the machine for one experiment: it compiles the
// workload and client, spawns both processes, and wires fault and trace
// hooks — everything up to (but excluding) the functional setup phase.
func BootSpec(cfg gemsys.Config, spec Spec) (*Boot, error) {
	b := &Boot{cfg: cfg, spec: spec}
	failErr := func(phase string, err error) error {
		_, e := b.fail(phase, nil, err)
		return e
	}

	b.nreq = spec.Requests
	if b.nreq == 0 {
		b.nreq = 10
	}
	if b.nreq < 2 {
		return nil, failErr("spec", fmt.Errorf(
			"Requests must be >= 2, got %d: the cold and warm m5 reset/dump markers need distinct requests", b.nreq))
	}
	if err := spec.Sampling.Validate(); err != nil {
		return nil, failErr("spec", err)
	}

	if spec.Trace.Enabled {
		cfg.Trace = spec.Trace
		b.cfg = cfg
	}
	m, err := gemsys.New(cfg)
	if err != nil {
		return nil, failErr("boot", err)
	}
	b.M = m
	if spec.Faults != nil {
		b.inj = faults.NewInjector(*spec.Faults)
		m.K.IPCFault = b.inj.IPCFault
		m.K.OnFault = b.inj.Note
	}
	if m.Tracer != nil {
		// Chain the fault-note hook so injected faults also land on the
		// event trace's fault track.
		prev := m.K.OnFault
		m.K.OnFault = func(ev uint64) {
			if prev != nil {
				prev(ev)
			}
			m.EmitFault(ev)
		}
	}
	env := &Env{M: m, Inj: b.inj}
	workload, err := spec.Build(env)
	if err != nil {
		return nil, failErr("build", fmt.Errorf("build workload: %w", err))
	}
	b.bindings = env.bindings
	flavor := libc.ForArch(string(cfg.Arch))
	if spec.Flavor != nil {
		flavor = *spec.Flavor
	}
	server, err := langrt.BuildServer(spec.Runtime, flavor, workload, vswarm.Handler)
	if err != nil {
		return nil, failErr("build", fmt.Errorf("build server: %w", err))
	}

	reqCh := m.K.NewChannel()
	respCh := m.K.NewChannel()
	b.reqCh, b.respCh = reqCh, respCh
	if b.inj != nil {
		b.inj.BindClientChans(reqCh, respCh)
	}
	if _, err := m.Spawn("server", server, "main", 1, []uint64{uint64(reqCh), uint64(respCh)}); err != nil {
		return nil, failErr("build", fmt.Errorf("spawn server: %w", err))
	}
	client := BuildClient(spec.Request(), int64(b.nreq), spec.Retry)
	if _, err := m.Spawn("client", client, "main", 0, []uint64{uint64(reqCh), uint64(respCh)}); err != nil {
		return nil, failErr("build", fmt.Errorf("spawn client: %w", err))
	}
	if spec.Retry != nil {
		check := spec.Check
		m.K.ReplyCheck = func(resp []byte) bool {
			return check == nil || check(rpc.NewReader(resp)) == nil
		}
	}
	return b, nil
}

// Setup runs the functional (atomic CPU) boot-and-container-setup phase
// up to the m5 checkpoint before request 1, and captures that checkpoint.
func (b *Boot) Setup() (*gemsys.Checkpoint, error) {
	m := b.M
	if err := m.RunSetup(setupBudget); err != nil {
		_, e := b.fail("setup", nil, err)
		return nil, e
	}
	if !m.CheckpointPending() {
		_, e := b.fail("checkpoint", nil, fmt.Errorf("setup finished without checkpoint"))
		return nil, e
	}
	b.setupInsts = m.Atomic.Insts
	b.setupSvcReqs = m.K.Counts.ServiceReqs
	b.setupFaulted = b.inj.WasArmed()
	return m.TakeCheckpoint(), nil
}

// SetupInsts returns the instruction count of the completed setup phase.
func (b *Boot) SetupInsts() uint64 { return b.setupInsts }

// Memoizable reports whether the completed setup phase left the machine
// in a state another identically-booted run may reuse. Setup that
// performed native service round trips is not memoizable: service engines
// live host-side, outside the checkpoint, so their post-setup state
// cannot be reproduced by restoring guest memory alone. Setup that ran
// while the fault injector was armed is not memoizable either — the
// boot fingerprint deliberately excludes fault plans, so a checkpoint
// with injected corruption baked in could otherwise be served to clean
// runs of the same fingerprint.
func (b *Boot) Memoizable() bool { return b.setupSvcReqs == 0 && !b.setupFaulted }

// Measure restores the post-boot checkpoint into the detailed O3 CPU with
// cold microarchitectural state, arms fault injection, replays the
// request stream and projects the cold/warm statistics. ck may come from
// this Boot's own Setup or from a cached clone taken on a machine with an
// equal boot fingerprint; setupInsts is the setup phase's instruction
// count (reported in the Result even when this machine skipped setup).
func (b *Boot) Measure(ck *gemsys.Checkpoint, setupInsts uint64) (*Result, error) {
	m, spec := b.M, b.spec
	if err := m.Restore(ck); err != nil {
		return b.fail("restore", nil, err)
	}
	// Faults target steady-state traffic: arm only now, so boot and the
	// readiness handshake replay cleanly and the post-arm schedule is a
	// pure function of the seed and the request stream.
	if b.inj != nil {
		b.inj.Arm()
	}

	// Evaluation mode (detailed O3 CPU, optionally sampled).
	dumps, err := m.RunEvalSampled(evalBudget, spec.Sampling)
	partial := partialResult(spec, b.cfg.Arch, m, dumps, b.inj, setupInsts)
	if err != nil {
		return b.fail("eval", partial, err)
	}
	if len(dumps) != 2 {
		return b.fail("shape", partial, fmt.Errorf("got %d stat dumps, want 2", len(dumps)))
	}
	res := &Result{
		Name:       spec.Name,
		Runtime:    spec.Runtime,
		Arch:       b.cfg.Arch,
		Cold:       dumps[0].Server(),
		Warm:       dumps[1].Server(),
		SampleCold: dumps[0].ServerSampling(),
		SampleWarm: dumps[1].ServerSampling(),
		SetupInsts: setupInsts,
		Response:   append([]byte(nil), m.K.Console.Bytes()...),
	}
	if b.inj != nil {
		rep := b.inj.Report
		res.FaultReport = &rep
	}
	if m.Tracer != nil {
		res.Profile = m.Profile()
		res.StatsText = m.StatsText(spec.Name)
		res.Events = m.Tracer.Events()
		res.Syms = m.Syms
		tj, terr := m.TraceJSON()
		if terr != nil {
			return b.fail("trace", res, terr)
		}
		res.TraceJSON = tj
	}
	if spec.Check != nil {
		if err := spec.Check(rpc.NewReader(res.Response)); err != nil {
			return b.fail("check", res, fmt.Errorf("response check: %w", err))
		}
	}
	return res, nil
}

// partialResult salvages whatever a failed evaluation measured: the cold
// window if it closed, the warm one too if both did.
func partialResult(spec Spec, arch isa.Arch, m *gemsys.Machine, dumps []stats.Dump, inj *faults.Injector, setupInsts uint64) *Result {
	if len(dumps) == 0 {
		return nil
	}
	r := &Result{
		Name:       spec.Name,
		Runtime:    spec.Runtime,
		Arch:       arch,
		Cold:       dumps[0].Server(),
		SampleCold: dumps[0].ServerSampling(),
		SetupInsts: setupInsts,
		Response:   append([]byte(nil), m.K.Console.Bytes()...),
	}
	if len(dumps) > 1 {
		r.Warm = dumps[1].Server()
		r.SampleWarm = dumps[1].ServerSampling()
	}
	if inj != nil {
		rep := inj.Report
		r.FaultReport = &rep
	}
	return r
}

// BuildClient builds the load-generator module: it performs the readiness
// handshake, requests the checkpoint, then issues nreq identical requests
// with m5 reset/dump around the first and last, finally writing the last
// response to the console and exiting the simulation.
//
// With a nil retry policy each request is one blocking send/recv — the
// exact baseline instruction stream. With a policy, each request becomes
// a bounded-attempt loop: send, poll the response channel against a
// virtual-cycle deadline, classify arrived replies host-side (HReplyOK),
// and back off exponentially between attempts; the loop reports timeout/
// bad-reply/retry/recovery events through HFaultNote. Requests are
// identical, so at-least-once delivery is safe: a late reply to an
// earlier attempt is indistinguishable from the retried one.
func BuildClient(request []byte, nreq int64, retry *faults.Retry) *ir.Module {
	m := ir.NewModule("client")
	m.AddGlobal(&ir.Global{Name: "cli_req", Data: request})
	m.AddGlobal(&ir.Global{Name: "cli_rbuf", Data: make([]byte, langrt.WBufSize)})

	b := ir.NewFunc("main", 2)
	req, resp := b.Param(0), b.Param(1)
	rbuf := b.Global("cli_rbuf", 0)
	b.EcallV(kernel.SysRecv, resp, rbuf, b.Const(langrt.WBufSize)) // ready
	b.EcallV(kernel.M5Checkpoint)

	reqG := b.Global("cli_req", 0)
	reqLen := b.Const(int64(len(request)))
	n := b.Const(0)

	i := b.Const(1)
	loop, done := b.NewLabel("loop"), b.NewLabel("done")
	b.Label(loop)
	b.BrI(ir.Gt, i, nreq, done)
	notFirst := b.NewLabel("nf")
	b.BrI(ir.Ne, i, 1, notFirst)
	b.EcallV(kernel.M5ResetStats)
	b.Label(notFirst)
	notLast := b.NewLabel("nl")
	b.BrI(ir.Ne, i, nreq, notLast)
	b.EcallV(kernel.M5ResetStats)
	b.Label(notLast)

	if retry == nil {
		b.EcallV(kernel.SysSend, req, reqG, reqLen)
		rn := b.Ecall(kernel.SysRecv, resp, rbuf, b.Const(langrt.WBufSize))
		b.MovInto(n, rn)
	} else {
		emitRetryRequest(b, req, resp, reqG, reqLen, rbuf, n, retry)
	}

	noDump1 := b.NewLabel("nd1")
	b.BrI(ir.Ne, i, 1, noDump1)
	b.EcallV(kernel.M5DumpStats)
	b.Label(noDump1)
	noDump2 := b.NewLabel("nd2")
	b.BrI(ir.Ne, i, nreq, noDump2)
	b.EcallV(kernel.M5DumpStats)
	b.Label(noDump2)

	b.AddIInto(i, i, 1)
	b.Jmp(loop)
	b.Label(done)
	b.EcallV(kernel.SysWrite, rbuf, n)
	b.EcallV(kernel.M5Exit)
	m.AddFunc(b.Build())
	return m
}

// emitRetryRequest emits one request's bounded-attempt loop into the
// client body. On success n holds the reply length; on exhaustion n is 0
// (nothing valid to report).
func emitRetryRequest(b *ir.Builder, req, resp, reqG, reqLen, rbuf, n ir.Reg, retry *faults.Retry) {
	maxAttempts := retry.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	deadline := retry.Deadline
	if deadline == 0 {
		// A dropped message would block a deadline-less poll loop
		// forever; fall back to the default.
		deadline = faults.DefaultRetry().Deadline
	}
	bufMax := b.Const(langrt.WBufSize)
	attempt := b.Const(0)

	attemptL := b.NewLabel("attempt")
	waitL := b.NewLabel("wait")
	gotL := b.NewLabel("got")
	timeoutL := b.NewLabel("tmo")
	maybeRetryL := b.NewLabel("mretry")
	reqDone := b.NewLabel("reqdone")

	b.Label(attemptL)
	b.AddIInto(attempt, attempt, 1)
	b.EcallV(kernel.SysSend, req, reqG, reqLen)
	t0 := b.Ecall(kernel.SysClock)
	dl := b.AddI(t0, int64(deadline))

	b.Label(waitL)
	rn := b.Ecall(kernel.SysTryRecv, resp, rbuf, bufMax)
	b.BrI(ir.Ne, rn, -1, gotL)
	now := b.Ecall(kernel.SysClock)
	b.Br(ir.Gt, now, dl, timeoutL)
	b.EcallV(kernel.SysYield)
	b.Jmp(waitL)

	b.Label(timeoutL)
	b.EcallV(kernel.HFaultNote, b.Const(int64(faults.EvTimeout)))
	b.Jmp(maybeRetryL)

	b.Label(gotL)
	b.MovInto(n, rn)
	ok := b.Ecall(kernel.HReplyOK, rbuf, rn)
	okL := b.NewLabel("ok")
	b.BrI(ir.Ne, ok, 0, okL)
	b.EcallV(kernel.HFaultNote, b.Const(int64(faults.EvBadReply)))
	b.Jmp(maybeRetryL)
	b.Label(okL)
	firstTry := b.NewLabel("ft")
	b.BrI(ir.Le, attempt, 1, firstTry)
	b.EcallV(kernel.HFaultNote, b.Const(int64(faults.EvRecovered)))
	b.Label(firstTry)
	b.Jmp(reqDone)

	b.Label(maybeRetryL)
	canRetry := b.NewLabel("cr")
	b.BrI(ir.Lt, attempt, int64(maxAttempts), canRetry)
	b.EcallV(kernel.HFaultNote, b.Const(int64(faults.EvExhausted)))
	b.ConstInto(n, 0)
	b.Jmp(reqDone)
	b.Label(canRetry)
	b.EcallV(kernel.HFaultNote, b.Const(int64(faults.EvRetry)))
	if retry.Backoff > 0 {
		// Exponential backoff: Backoff << (attempt-1) virtual cycles.
		sh := b.AddI(attempt, -1)
		wait := b.Shl(b.Const(int64(retry.Backoff)), sh)
		until := b.Add(b.Ecall(kernel.SysClock), wait)
		backL, backDone := b.NewLabel("backoff"), b.NewLabel("bdone")
		b.Label(backL)
		t := b.Ecall(kernel.SysClock)
		b.Br(ir.Ge, t, until, backDone)
		b.EcallV(kernel.SysYield)
		b.Jmp(backL)
		b.Label(backDone)
	}
	b.Jmp(attemptL)

	b.Label(reqDone)
}
