package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestJobsValidation(t *testing.T) {
	for _, bad := range []string{"0", "-3"} {
		var out, errb bytes.Buffer
		if code := run([]string{"-j", bad, "-all"}, &out, &errb); code != 2 {
			t.Errorf("-j %s: exit code %d, want 2", bad, code)
		}
		if !strings.Contains(errb.String(), "jobs must be >= 1") {
			t.Errorf("-j %s: stderr %q lacks validation message", bad, errb.String())
		}
	}
}

func TestListIgnoresJobs(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list", "-j", "4"}, &out, &errb); code != 0 {
		t.Fatalf("-list -j 4: exit code %d, stderr %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "fibonacci-go") {
		t.Errorf("-list output lacks fibonacci-go:\n%s", out.String())
	}
}

func TestUnknownFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errb); code != 2 {
		t.Errorf("unknown flag: exit code %d, want 2", code)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a full experiment")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-fn", "fibonacci-go"}, &out, &errb); code != 0 {
		t.Fatalf("exit code %d, stderr %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "cold") || !strings.Contains(out.String(), "warm") {
		t.Errorf("missing cold/warm rows:\n%s", out.String())
	}
}
