// Package rpc implements the gRPC-style messaging layer the vSwarm
// workloads communicate over: a varint-based wire format with IR builder
// functions (the simulated library code that runs on the measured core)
// and a mirrored Go codec used by native services and tests.
//
// Message buffers hold a write cursor in their first 8 bytes; fields
// follow as (type varint, payload) pairs: type 0 = varint integer,
// type 1 = length-delimited bytes.
package rpc

import (
	"fmt"

	"svbench/internal/ir"
)

// Header is the size of the message buffer's cursor header.
const Header = 8

// Module builds the RPC library in IR. All functions are Lib (library
// code: the gRPC stack).
func Module() *ir.Module {
	m := ir.NewModule("rpc")
	add := func(f *ir.Function) {
		f.Lib = true
		m.AddFunc(f)
	}
	add(buildReset())
	add(buildPutInt())
	add(buildPutBytes())
	add(buildLen())
	add(buildGetInt())
	add(buildGetBytes())
	add(buildFrame())
	m.AddGlobal(&ir.Global{Name: "rpc_hpack", Data: hpackTable()})
	// No Validate here: the module references libc's memcpy, which the
	// final program link merges in (backends validate at compile time).
	return m
}

// hpackTable is the static header-compression table the framing pass
// consults, sized like gRPC's HPACK static table.
func hpackTable() []byte {
	t := make([]byte, 61*16)
	for i := range t {
		t[i] = byte(i * 131)
	}
	return t
}

// buildReset: mbuf_reset(buf) initializes the write cursor.
func buildReset() *ir.Function {
	b := ir.NewFunc("mbuf_reset", 1)
	buf := b.Param(0)
	b.Store(buf, 0, b.Const(Header), 8)
	b.Ret0()
	return b.Build()
}

// varint emit loop: while v >= 0x80 { *p++ = v|0x80; v >>= 7 }; *p++ = v.
func emitVarintWrite(b *ir.Builder, buf, off, v ir.Reg) ir.Reg {
	loop, done := b.NewLabel("vloop"), b.NewLabel("vdone")
	val := b.Mov(v)
	o := b.Mov(off)
	b.Label(loop)
	b.BrI(ir.Ltu, val, 0x80, done)
	low := b.AndI(val, 0x7F)
	low = b.OrI(low, 0x80)
	p := b.Add(buf, o)
	b.Store(p, 0, low, 1)
	b.AddIInto(o, o, 1)
	sh := b.ShrI(val, 7)
	b.MovInto(val, sh)
	b.Jmp(loop)
	b.Label(done)
	p2 := b.Add(buf, o)
	b.Store(p2, 0, val, 1)
	b.AddIInto(o, o, 1)
	return o
}

// emitVarintRead reads a varint at buf+*curPtr, advancing the cursor.
func emitVarintRead(b *ir.Builder, buf, curPtr ir.Reg) ir.Reg {
	v := b.Const(0)
	shift := b.Const(0)
	cur := b.Load(curPtr, 0, 8)
	loop, done := b.NewLabel("rloop"), b.NewLabel("rdone")
	b.Label(loop)
	p := b.Add(buf, cur)
	c := b.LoadU(p, 0, 1)
	b.AddIInto(cur, cur, 1)
	low := b.AndI(c, 0x7F)
	sh := b.Shl(low, shift)
	b.OrInto(v, v, sh)
	b.AddIInto(shift, shift, 7)
	b.BrI(ir.Ltu, c, 0x80, done)
	b.Jmp(loop)
	b.Label(done)
	b.Store(curPtr, 0, cur, 8)
	return v
}

// buildPutInt: mbuf_put_int(buf, v) appends an integer field.
func buildPutInt() *ir.Function {
	b := ir.NewFunc("mbuf_put_int", 2)
	buf, v := b.Param(0), b.Param(1)
	off := b.Load(buf, 0, 8)
	// type tag 0
	p := b.Add(buf, off)
	b.Store(p, 0, b.Const(0), 1)
	off1 := b.AddI(off, 1)
	off2 := emitVarintWrite(b, buf, off1, v)
	b.Store(buf, 0, off2, 8)
	b.Ret0()
	return b.Build()
}

// buildPutBytes: mbuf_put_bytes(buf, ptr, n) appends a bytes field.
func buildPutBytes() *ir.Function {
	b := ir.NewFunc("mbuf_put_bytes", 3)
	buf, ptr, n := b.Param(0), b.Param(1), b.Param(2)
	off := b.Load(buf, 0, 8)
	p := b.Add(buf, off)
	b.Store(p, 0, b.Const(1), 1)
	off1 := b.AddI(off, 1)
	off2 := emitVarintWrite(b, buf, off1, n)
	dst := b.Add(buf, off2)
	b.CallV("memcpy", dst, ptr, n)
	newOff := b.Add(off2, n)
	b.Store(buf, 0, newOff, 8)
	b.Ret0()
	return b.Build()
}

// buildLen: mbuf_len(buf) returns the total encoded length.
func buildLen() *ir.Function {
	b := ir.NewFunc("mbuf_len", 1)
	b.Ret(b.Load(b.Param(0), 0, 8))
	return b.Build()
}

// buildGetInt: mbuf_get_int(buf, curPtr) reads an integer field at the
// cursor (a pointer to an 8-byte cursor the caller owns) and advances it.
func buildGetInt() *ir.Function {
	b := ir.NewFunc("mbuf_get_int", 2)
	buf, curPtr := b.Param(0), b.Param(1)
	// Skip the type tag.
	cur := b.Load(curPtr, 0, 8)
	b.Store(curPtr, 0, b.AddI(cur, 1), 8)
	v := emitVarintRead(b, buf, curPtr)
	b.Ret(v)
	return b.Build()
}

// buildGetBytes: mbuf_get_bytes(buf, curPtr, dst, max) copies the bytes
// field at the cursor into dst (truncating at max) and returns its length.
func buildGetBytes() *ir.Function {
	b := ir.NewFunc("mbuf_get_bytes", 4)
	buf, curPtr, dst, max := b.Param(0), b.Param(1), b.Param(2), b.Param(3)
	cur := b.Load(curPtr, 0, 8)
	b.Store(curPtr, 0, b.AddI(cur, 1), 8)
	n := emitVarintRead(b, buf, curPtr)
	cn := b.Mov(n)
	fits := b.NewLabel("fits")
	b.Br(ir.Le, cn, max, fits)
	b.MovInto(cn, max)
	b.Label(fits)
	cur2 := b.Load(curPtr, 0, 8)
	src := b.Add(buf, cur2)
	b.CallV("memcpy", dst, src, cn)
	adv := b.Add(cur2, n)
	b.Store(curPtr, 0, adv, 8)
	b.Ret(cn)
	return b.Build()
}

// buildFrame: grpc_frame(buf) performs the per-message framing pass —
// HPACK static-table lookups and a rolling checksum over the payload —
// modeling the per-request cost of the RPC stack itself.
func buildFrame() *ir.Function {
	b := ir.NewFunc("grpc_frame", 1)
	buf := b.Param(0)
	n := b.Load(buf, 0, 8)
	tab := b.Global("rpc_hpack", 0)
	sum := b.Const(0)
	i := b.Const(Header)
	loop, done := b.NewLabel("loop"), b.NewLabel("done")
	b.Label(loop)
	b.Br(ir.Ge, i, n, done)
	p := b.Add(buf, i)
	c := b.LoadU(p, 0, 1)
	// Static table probe keyed by the byte.
	idx := b.AndI(c, 63)
	e := b.ShlI(idx, 4)
	tp := b.Add(tab, e)
	tv := b.LoadU(tp, 0, 1)
	x := b.Add(c, tv)
	b.AddInto(sum, sum, x)
	b.AddIInto(i, i, 1)
	b.Jmp(loop)
	b.Label(done)
	b.Ret(sum)
	return b.Build()
}

// --- Go-side mirror codec (used by native services and tests) ---

// Writer builds messages in the wire format.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer with the cursor header reserved.
func NewWriter() *Writer {
	return &Writer{buf: make([]byte, Header, 256)}
}

func (w *Writer) varint(v uint64) {
	for v >= 0x80 {
		w.buf = append(w.buf, byte(v)|0x80)
		v >>= 7
	}
	w.buf = append(w.buf, byte(v))
}

// PutInt appends an integer field.
func (w *Writer) PutInt(v uint64) {
	w.buf = append(w.buf, 0)
	w.varint(v)
}

// PutBytes appends a bytes field.
func (w *Writer) PutBytes(p []byte) {
	w.buf = append(w.buf, 1)
	w.varint(uint64(len(p)))
	w.buf = append(w.buf, p...)
}

// PutString appends a string field.
func (w *Writer) PutString(s string) { w.PutBytes([]byte(s)) }

// Bytes finalizes the message: the header carries the total length.
func (w *Writer) Bytes() []byte {
	n := uint64(len(w.buf))
	for i := 0; i < 8; i++ {
		w.buf[i] = byte(n >> (8 * i))
	}
	return w.buf
}

// Reader decodes messages in the wire format.
type Reader struct {
	buf []byte
	cur int
}

// NewReader wraps a received message.
func NewReader(b []byte) *Reader { return &Reader{buf: b, cur: Header} }

func (r *Reader) varint() (uint64, error) {
	var v uint64
	var sh uint
	for {
		if r.cur >= len(r.buf) {
			return 0, fmt.Errorf("rpc: truncated varint")
		}
		c := r.buf[r.cur]
		r.cur++
		// At the 10th byte (sh == 63) only the low bit still fits in 64
		// bits: the shift below would silently drop any higher payload
		// bits, so reject the encoding before accumulating it.
		if sh == 63 && c > 1 {
			return 0, fmt.Errorf("rpc: varint overflow")
		}
		v |= uint64(c&0x7F) << sh
		if c < 0x80 {
			if c == 0 && sh > 0 {
				// A zero terminator past the first byte is an overlong
				// encoding (the writer never emits one); rejecting it
				// keeps every value's encoding canonical and unique.
				return 0, fmt.Errorf("rpc: non-canonical varint")
			}
			return v, nil
		}
		sh += 7
		if sh > 63 {
			return 0, fmt.Errorf("rpc: varint overflow")
		}
	}
}

// Int reads an integer field.
func (r *Reader) Int() (uint64, error) {
	if r.cur >= len(r.buf) {
		return 0, fmt.Errorf("rpc: truncated message")
	}
	if r.buf[r.cur] != 0 {
		return 0, fmt.Errorf("rpc: expected int field, got type %d", r.buf[r.cur])
	}
	r.cur++
	return r.varint()
}

// Bytes reads a bytes field.
func (r *Reader) Bytes() ([]byte, error) {
	if r.cur >= len(r.buf) {
		return nil, fmt.Errorf("rpc: truncated message")
	}
	if r.buf[r.cur] != 1 {
		return nil, fmt.Errorf("rpc: expected bytes field, got type %d", r.buf[r.cur])
	}
	r.cur++
	n, err := r.varint()
	if err != nil {
		return nil, err
	}
	// Compare in uint64: a huge length must not wrap past the buffer end
	// when truncated to int.
	if n > uint64(len(r.buf)-r.cur) {
		return nil, fmt.Errorf("rpc: bytes field overruns message")
	}
	p := r.buf[r.cur : r.cur+int(n)]
	r.cur += int(n)
	return p, nil
}

// String reads a string field.
func (r *Reader) String() (string, error) {
	p, err := r.Bytes()
	return string(p), err
}
