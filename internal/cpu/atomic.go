package cpu

// Atomic models gem5's AtomicSimpleCPU: instructions complete one per
// cycle with instantaneous memory. It is used for the setup phase (boot,
// container start, functional warming) where only a virtual clock is
// needed, never for measurement.
type Atomic struct {
	Insts uint64
}

// Retire accounts n functionally-executed instructions.
func (a *Atomic) Retire(n uint64) { a.Insts += n }

// Cycles returns the virtual time: 1 CPI.
func (a *Atomic) Cycles() uint64 { return a.Insts }

// KVM models gem5's KVM-accelerated CPU: near-native fast-forwarding whose
// interaction with m5 magic instructions is unstable — the thesis (§3.4.1)
// reports frequent freezes when taking checkpoints under KVM, which is why
// its methodology boots with the atomic core instead. The instability is
// reproduced deterministically so the harness's fallback path is testable.
type KVM struct {
	// Unstable enables the documented checkpoint flakiness.
	Unstable bool
	Insts    uint64
	ckpts    uint64
}

// Retire accounts n fast-forwarded instructions.
func (k *KVM) Retire(n uint64) { k.Insts += n }

// TryCheckpoint reports whether a checkpoint attempt succeeds. Under
// Unstable it fails on a fixed pattern (two of every three attempts),
// reproducing the freeze-on-magic-instruction behaviour.
func (k *KVM) TryCheckpoint() bool {
	k.ckpts++
	if !k.Unstable {
		return true
	}
	return k.ckpts%3 == 0
}
