// Package ir defines the portable intermediate representation in which every
// simulated program in this repository is written: the vSwarm workloads, the
// language runtimes, the RPC stubs, the miniature kernel's syscall handlers,
// and the libc variants. IR functions are compiled by the per-ISA code
// generators (internal/isa/riscv, internal/isa/cisc) into genuine machine
// code that executes on the simulated CPUs.
//
// The IR is a simple virtual-register machine: every value is a 64-bit
// integer held in a virtual register, memory is accessed through explicit
// load/store operations, and control flow uses labels. The representation is
// deliberately low-level so that the code generators stay small and the
// dynamic instruction streams remain faithful to what a real toolchain
// would produce for these workloads.
package ir

import "fmt"

// Reg identifies a virtual register within a function. Registers are
// function-local; register 0..NParams-1 hold the incoming arguments.
type Reg int

// NoReg marks an absent register operand (e.g. a call whose result is
// discarded).
const NoReg Reg = -1

// Op enumerates IR operations.
type Op uint8

// IR operations. Binary operations compute Dst = A <op> B; immediate
// variants compute Dst = A <op> Imm.
const (
	OpNop Op = iota
	// OpConst sets Dst = Imm.
	OpConst
	// OpMov sets Dst = A.
	OpMov
	OpAdd
	OpSub
	OpMul
	OpDiv // signed division; division by zero traps the interpreter
	OpRem // signed remainder
	OpDivU
	OpRemU
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr // logical shift right
	OpSra // arithmetic shift right
	// OpAddI etc. compute Dst = A <op> Imm.
	OpAddI
	OpMulI
	OpAndI
	OpOrI
	OpXorI
	OpShlI
	OpShrI
	OpSraI
	// OpSet* compute Dst = (A <cond> B) ? 1 : 0 using Cond.
	OpSet
	// OpLoad loads Sz bytes from address A+Imm into Dst (sign- or
	// zero-extended according to Unsigned).
	OpLoad
	// OpStore stores the low Sz bytes of B to address A+Imm.
	OpStore
	// OpBr branches to Label when A <cond> B holds.
	OpBr
	// OpBrI branches to Label when A <cond> Imm holds.
	OpBrI
	// OpJmp jumps unconditionally to Label.
	OpJmp
	// OpCall invokes function Sym with Args, placing the result in Dst.
	OpCall
	// OpRet returns A (or nothing when A == NoReg).
	OpRet
	// OpEcall issues environment call number Imm with Args; result in Dst.
	OpEcall
	// OpGlobal sets Dst = address of global Sym plus Imm.
	OpGlobal
	// OpFrame sets Dst = address of frame-local buffer Sym plus Imm.
	OpFrame
	// OpFence is a no-op memory ordering marker (compiled to a real fence).
	OpFence
)

// Cond enumerates comparison conditions for OpSet, OpBr and OpBrI.
type Cond uint8

// Comparison conditions.
const (
	Eq Cond = iota
	Ne
	Lt  // signed <
	Le  // signed <=
	Gt  // signed >
	Ge  // signed >=
	Ltu // unsigned <
	Geu // unsigned >=
)

// Negate returns the logical negation of c.
func (c Cond) Negate() Cond {
	switch c {
	case Eq:
		return Ne
	case Ne:
		return Eq
	case Lt:
		return Ge
	case Ge:
		return Lt
	case Le:
		return Gt
	case Gt:
		return Le
	case Ltu:
		return Geu
	case Geu:
		return Ltu
	}
	panic("ir: bad cond")
}

// Eval reports whether a <c> b holds.
func (c Cond) Eval(a, b int64) bool {
	switch c {
	case Eq:
		return a == b
	case Ne:
		return a != b
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Gt:
		return a > b
	case Ge:
		return a >= b
	case Ltu:
		return uint64(a) < uint64(b)
	case Geu:
		return uint64(a) >= uint64(b)
	}
	panic("ir: bad cond")
}

func (c Cond) String() string {
	switch c {
	case Eq:
		return "eq"
	case Ne:
		return "ne"
	case Lt:
		return "lt"
	case Le:
		return "le"
	case Gt:
		return "gt"
	case Ge:
		return "ge"
	case Ltu:
		return "ltu"
	case Geu:
		return "geu"
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// Instr is a single IR instruction. Unused fields are zero.
type Instr struct {
	Op   Op
	Dst  Reg
	A, B Reg
	Imm  int64
	Sz   uint8 // access size for OpLoad/OpStore: 1, 2, 4 or 8
	Uns  bool  // zero-extend loads when true
	Cond Cond
	Sym  string // callee, global or frame-buffer name
	Tgt  int    // resolved label target (instruction index)
	Args []Reg  // call/ecall arguments
}

// Buffer describes a frame-local scratch buffer.
type Buffer struct {
	Name string
	Size int64
}

// Function is a compiled-form IR function: a flat instruction list with
// resolved branch targets.
type Function struct {
	Name    string
	NParams int
	NRegs   int
	Bufs    []Buffer
	Code    []Instr
	// Lib marks the function as library code (libc, runtime support).
	// The CISC64 backend routes calls to Lib functions through its
	// PLT/GOT model, mirroring dynamically-linked x86 userspace.
	Lib bool
}

// BufOffset returns the byte offset of the named frame buffer within the
// function's local-buffer area, and the total area size.
func (f *Function) BufOffset(name string) (off, total int64) {
	for _, b := range f.Bufs {
		sz := (b.Size + 7) &^ 7
		if b.Name == name {
			off = total
		}
		total += sz
	}
	return off, total
}

// BufArea returns the total size of the function's frame buffer area.
func (f *Function) BufArea() int64 {
	_, total := f.BufOffset("")
	return total
}

// Global is a named data blob placed in the program image.
type Global struct {
	Name  string
	Data  []byte
	Align int64
}

// Module is a set of functions and globals that link into one program.
type Module struct {
	Name    string
	Funcs   []*Function
	Globals []*Global
	funcIdx map[string]*Function
	globIdx map[string]*Global
}

// NewModule returns an empty module.
func NewModule(name string) *Module {
	return &Module{
		Name:    name,
		funcIdx: map[string]*Function{},
		globIdx: map[string]*Global{},
	}
}

// AddFunc adds fn to the module. It panics on duplicate names.
func (m *Module) AddFunc(fn *Function) {
	if _, dup := m.funcIdx[fn.Name]; dup {
		panic("ir: duplicate function " + fn.Name)
	}
	m.Funcs = append(m.Funcs, fn)
	m.funcIdx[fn.Name] = fn
}

// AddGlobal adds g to the module. It panics on duplicate names.
func (m *Module) AddGlobal(g *Global) {
	if _, dup := m.globIdx[g.Name]; dup {
		panic("ir: duplicate global " + g.Name)
	}
	if g.Align == 0 {
		g.Align = 8
	}
	m.Globals = append(m.Globals, g)
	m.globIdx[g.Name] = g
}

// Func returns the named function, or nil.
func (m *Module) Func(name string) *Function { return m.funcIdx[name] }

// Glob returns the named global, or nil.
func (m *Module) Glob(name string) *Global { return m.globIdx[name] }

// Merge copies every function and global of other into m.
// Duplicate names panic, keeping link errors loud and early.
func (m *Module) Merge(other *Module) {
	for _, f := range other.Funcs {
		m.AddFunc(f)
	}
	for _, g := range other.Globals {
		m.AddGlobal(g)
	}
}

// MergeShared copies functions/globals from other, skipping names already
// present. It is used to pull library code (libc) into multiple modules.
func (m *Module) MergeShared(other *Module) {
	for _, f := range other.Funcs {
		if m.funcIdx[f.Name] == nil {
			m.AddFunc(f)
		}
	}
	for _, g := range other.Globals {
		if m.globIdx[g.Name] == nil {
			m.AddGlobal(g)
		}
	}
}

// Validate checks structural invariants of the module: branch targets in
// range, register indices within NRegs, referenced symbols resolvable.
func (m *Module) Validate() error {
	for _, f := range m.Funcs {
		if err := m.validateFunc(f); err != nil {
			return fmt.Errorf("ir: function %s: %w", f.Name, err)
		}
	}
	return nil
}

func (m *Module) validateFunc(f *Function) error {
	checkReg := func(r Reg, what string, i int) error {
		if r == NoReg {
			return nil
		}
		if r < 0 || int(r) >= f.NRegs {
			return fmt.Errorf("instr %d: %s register %d out of range [0,%d)", i, what, r, f.NRegs)
		}
		return nil
	}
	for i, in := range f.Code {
		switch in.Op {
		case OpBr, OpBrI, OpJmp:
			if in.Tgt < 0 || in.Tgt > len(f.Code) {
				return fmt.Errorf("instr %d: branch target %d out of range", i, in.Tgt)
			}
		case OpCall:
			if m.funcIdx[in.Sym] == nil {
				return fmt.Errorf("instr %d: call to undefined function %q", i, in.Sym)
			}
			if len(in.Args) > 6 {
				return fmt.Errorf("instr %d: too many call arguments (%d)", i, len(in.Args))
			}
			if callee := m.funcIdx[in.Sym]; callee != nil && callee.NParams > 6 {
				return fmt.Errorf("instr %d: callee %s has too many parameters", i, in.Sym)
			}
		case OpEcall:
			if len(in.Args) > 6 {
				return fmt.Errorf("instr %d: too many ecall arguments (%d)", i, len(in.Args))
			}
		case OpGlobal:
			if m.globIdx[in.Sym] == nil {
				return fmt.Errorf("instr %d: undefined global %q", i, in.Sym)
			}
		case OpFrame:
			found := false
			for _, b := range f.Bufs {
				if b.Name == in.Sym {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("instr %d: undefined frame buffer %q", i, in.Sym)
			}
		case OpLoad, OpStore:
			switch in.Sz {
			case 1, 2, 4, 8:
			default:
				return fmt.Errorf("instr %d: bad access size %d", i, in.Sz)
			}
		}
		// Check only the operand fields the operation actually reads —
		// unused fields are zero, which would otherwise demand NRegs>0.
		var useDst, useA, useB bool
		switch in.Op {
		case OpNop, OpFence, OpJmp:
		case OpConst, OpGlobal, OpFrame:
			useDst = true
		case OpMov, OpAddI, OpMulI, OpAndI, OpOrI, OpXorI, OpShlI, OpShrI, OpSraI, OpLoad:
			useDst, useA = true, true
		case OpStore, OpBr:
			useA, useB = true, true
		case OpBrI, OpRet:
			useA = true
		case OpCall, OpEcall:
			useDst = true
		default:
			useDst, useA, useB = true, true, true
		}
		if useDst {
			if err := checkReg(in.Dst, "dst", i); err != nil {
				return err
			}
		}
		if useA {
			if err := checkReg(in.A, "a", i); err != nil {
				return err
			}
		}
		if useB {
			if err := checkReg(in.B, "b", i); err != nil {
				return err
			}
		}
		for _, a := range in.Args {
			if err := checkReg(a, "arg", i); err != nil {
				return err
			}
		}
	}
	return nil
}
