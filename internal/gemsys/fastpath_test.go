package gemsys

import (
	"reflect"
	"testing"

	"svbench/internal/isa"
	"svbench/internal/stats"
	"svbench/internal/trace"
)

// pipelineResult is everything observable about a full pipeline run that
// the determinism contract covers: exported stats, console bytes, the
// virtual clock, retired-instruction counters and the full event trace.
type pipelineResult struct {
	dumps   []stats.Dump
	console string
	virtNS  uint64
	atomic  uint64
	events  []trace.Event
}

// runPipelineMode executes setup → checkpoint → restore → eval with the
// requested stepping mode and tracing enabled.
func runPipelineMode(t *testing.T, arch isa.Arch, singleStep bool) pipelineResult {
	t.Helper()
	cfg := DefaultConfig(arch)
	cfg.Trace.Enabled = true
	cfg.Trace.BufferEvents = 1 << 20
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.SingleStep = singleStep
	req := m.K.NewChannel()
	resp := m.K.NewChannel()
	if _, err := m.Spawn("server", serverMod(), "main", 1, []uint64{uint64(req), uint64(resp)}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Spawn("client", clientMod(6, 18), "main", 0, []uint64{uint64(req), uint64(resp)}); err != nil {
		t.Fatal(err)
	}
	if err := m.RunSetup(50_000_000); err != nil {
		t.Fatalf("setup: %v", err)
	}
	if !m.CheckpointPending() {
		t.Fatal("setup ended without a checkpoint request")
	}
	ck := m.TakeCheckpoint()
	if err := m.Restore(ck); err != nil {
		t.Fatalf("restore: %v", err)
	}
	dumps, err := m.RunEval(100_000_000)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	return pipelineResult{
		dumps:   dumps,
		console: m.Console(),
		virtNS:  m.VirtNS(),
		atomic:  m.Atomic.Insts,
		events:  append([]trace.Event(nil), m.Tracer.Events()...),
	}
}

// TestFastPathMatchesSingleStep is the machine-level determinism pin for
// the batched StepN fast path: a full setup+eval pipeline must produce
// byte-identical observables — stat dumps, console output, virtual clock,
// atomic-retire counters and the complete trace-event stream — whether the
// scheduler single-steps or executes whole translated blocks.
func TestFastPathMatchesSingleStep(t *testing.T) {
	for _, arch := range []isa.Arch{isa.RV64, isa.CISC64} {
		arch := arch
		t.Run(string(arch), func(t *testing.T) {
			slow := runPipelineMode(t, arch, true)
			fast := runPipelineMode(t, arch, false)
			if slow.console != fast.console {
				t.Errorf("console diverged: %q vs %q", slow.console, fast.console)
			}
			if slow.virtNS != fast.virtNS {
				t.Errorf("virtual clock diverged: %d vs %d", slow.virtNS, fast.virtNS)
			}
			if slow.atomic != fast.atomic {
				t.Errorf("atomic retire count diverged: %d vs %d", slow.atomic, fast.atomic)
			}
			if !reflect.DeepEqual(slow.dumps, fast.dumps) {
				t.Errorf("stat dumps diverged:\nslow %+v\nfast %+v", slow.dumps, fast.dumps)
			}
			if len(slow.events) != len(fast.events) {
				t.Fatalf("event counts diverged: %d vs %d", len(slow.events), len(fast.events))
			}
			for i := range slow.events {
				if slow.events[i] != fast.events[i] {
					t.Fatalf("event %d diverged:\nslow %+v\nfast %+v", i, slow.events[i], fast.events[i])
				}
			}
		})
	}
}

// TestFastPathFingerprintUnaffected checks that the SingleStep knob stays
// outside the boot fingerprint: checkpoints taken under either stepping
// mode restore interchangeably.
func TestFastPathFingerprintUnaffected(t *testing.T) {
	mk := func(singleStep bool) *Machine {
		m, err := New(DefaultConfig(isa.RV64))
		if err != nil {
			t.Fatal(err)
		}
		m.SingleStep = singleStep
		req := m.K.NewChannel()
		resp := m.K.NewChannel()
		if _, err := m.Spawn("server", serverMod(), "main", 1, []uint64{uint64(req), uint64(resp)}); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Spawn("client", clientMod(2, 10), "main", 0, []uint64{uint64(req), uint64(resp)}); err != nil {
			t.Fatal(err)
		}
		return m
	}
	slow, fast := mk(true), mk(false)
	if slow.BootFingerprint() != fast.BootFingerprint() {
		t.Fatal("SingleStep leaked into the boot fingerprint")
	}
	if err := slow.RunSetup(50_000_000); err != nil {
		t.Fatal(err)
	}
	ck := slow.TakeCheckpoint()
	// Cross-mode restore: checkpoint taken single-stepping, restored into
	// the fast-path machine, which must then run the eval phase cleanly.
	if err := fast.Restore(ck); err != nil {
		t.Fatal(err)
	}
	if _, err := fast.RunEval(100_000_000); err != nil {
		t.Fatal(err)
	}
}
