package gemsys

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"svbench/internal/isa"
	"svbench/internal/stats"
	"svbench/internal/trace"
)

// dumpString renders every field of a dump (cores and sample metadata)
// so byte-identity comparisons cover the whole surface.
func dumpString(d stats.Dump) string { return fmt.Sprintf("%+v", d) }

func TestSamplingConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		sc   SamplingConfig
		ok   bool
	}{
		{"zero is full detail", SamplingConfig{}, true},
		{"default", DefaultSamplingConfig(), true},
		{"detail fills interval", SamplingConfig{Interval: 100, Detail: 100}, true},
		{"no detail", SamplingConfig{Interval: 100, Warmup: 10}, false},
		{"no interval", SamplingConfig{Detail: 10}, false},
		{"phases exceed interval", SamplingConfig{Interval: 100, Warmup: 60, Detail: 50}, false},
	}
	for _, c := range cases {
		if err := c.sc.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
	if (SamplingConfig{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	if !DefaultSamplingConfig().Enabled() {
		t.Error("default config reports disabled")
	}
}

// TestOrderCoresByTime pins the generic interleaver: cores sort ascending
// by local commit time with index order breaking ties, for any core count
// — so a future >2-core machine cannot silently break eval mode.
func TestOrderCoresByTime(t *testing.T) {
	cases := []struct {
		times []uint64
		want  []int
	}{
		{[]uint64{5, 3}, []int{1, 0}},
		{[]uint64{3, 5}, []int{0, 1}},
		{[]uint64{4, 4}, []int{0, 1}}, // tie: index order
		{[]uint64{9, 2, 7, 2}, []int{1, 3, 2, 0}},
		{[]uint64{1, 1, 1, 1, 1}, []int{0, 1, 2, 3, 4}},
		{[]uint64{10, 9, 8, 7, 6, 5}, []int{5, 4, 3, 2, 1, 0}},
	}
	for _, c := range cases {
		got := make([]int, len(c.times))
		orderCoresByTime(got, c.times)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("orderCoresByTime(%v) = %v, want %v", c.times, got, c.want)
		}
	}
}

// prepPipeline boots the fib server/client pair up to its checkpoint.
func prepPipeline(t *testing.T, cfg Config, nreq, fibN int64) (*Machine, *Checkpoint) {
	t.Helper()
	mach, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	req := mach.K.NewChannel()
	resp := mach.K.NewChannel()
	if _, err := mach.Spawn("server", serverMod(), "main", 1, []uint64{uint64(req), uint64(resp)}); err != nil {
		t.Fatal(err)
	}
	if _, err := mach.Spawn("client", clientMod(nreq, fibN), "main", 0, []uint64{uint64(req), uint64(resp)}); err != nil {
		t.Fatal(err)
	}
	if err := mach.RunSetup(50_000_000); err != nil {
		t.Fatalf("setup: %v", err)
	}
	return mach, mach.TakeCheckpoint()
}

// TestZeroSamplingBitIdentical: RunEvalSampled with the zero config must
// reproduce the full-detail path byte-for-byte — dumps, trace JSON, stats
// text and profile tables.
func TestZeroSamplingBitIdentical(t *testing.T) {
	cfg := DefaultConfig(isa.RV64)
	cfg.Trace = trace.Options{Enabled: true}
	mach, ck := prepPipeline(t, cfg, 8, 17)

	type export struct {
		dumps []string
		json  []byte
		stats string
		prof  string
	}
	run := func(sampled bool) export {
		if err := mach.Restore(ck); err != nil {
			t.Fatal(err)
		}
		mach.K.Console.Reset()
		var ds []string
		var err error
		if sampled {
			d, e := mach.RunEvalSampled(100_000_000, SamplingConfig{})
			err = e
			for _, x := range d {
				ds = append(ds, dumpString(x))
			}
		} else {
			d, e := mach.RunEval(100_000_000)
			err = e
			for _, x := range d {
				ds = append(ds, dumpString(x))
			}
		}
		if err != nil {
			t.Fatal(err)
		}
		js, err := mach.TraceJSON()
		if err != nil {
			t.Fatal(err)
		}
		return export{dumps: ds, json: js, stats: mach.StatsText("eval"), prof: mach.Profile().Table()}
	}
	full := run(false)
	zero := run(true)
	if !reflect.DeepEqual(full.dumps, zero.dumps) {
		t.Fatalf("zero-config sampled dumps differ from full detail:\n%v\nvs\n%v", full.dumps, zero.dumps)
	}
	if !bytes.Equal(full.json, zero.json) {
		t.Fatal("zero-config sampled trace JSON differs from full detail")
	}
	if full.stats != zero.stats {
		t.Fatal("zero-config sampled stats text differs from full detail")
	}
	if full.prof != zero.prof {
		t.Fatal("zero-config sampled profile differs from full detail")
	}
}

// TestEvalBudgetExact pins the budget bound: a budget of N admits exactly
// N retired records, not N+1.
func TestEvalBudgetExact(t *testing.T) {
	mach, ck := prepPipeline(t, DefaultConfig(isa.RV64), 8, 17)
	if err := mach.Restore(ck); err != nil {
		t.Fatal(err)
	}
	const budget = 1000
	_, err := mach.RunEval(budget)
	if err == nil || !strings.Contains(err.Error(), "eval exceeded") {
		t.Fatalf("tiny budget did not trip the bound: %v", err)
	}
	if got := mach.EvalRetired(); got != budget {
		t.Fatalf("retired %d records under a budget of %d; the bound must be exact", got, budget)
	}

	// A sampled run obeys the same exact bound.
	if err := mach.Restore(ck); err != nil {
		t.Fatal(err)
	}
	_, err = mach.RunEvalSampled(budget, SamplingConfig{Interval: 300, Warmup: 50, Detail: 50})
	if err == nil || !strings.Contains(err.Error(), "eval exceeded") {
		t.Fatalf("tiny budget did not trip the sampled bound: %v", err)
	}
	if got := mach.EvalRetired(); got != budget {
		t.Fatalf("sampled mode retired %d records under a budget of %d", got, budget)
	}
}

// TestSampledRunDeterministic: the same checkpoint under the same
// SamplingConfig must yield identical dumps (including sample metadata)
// on every restore.
func TestSampledRunDeterministic(t *testing.T) {
	mach, ck := prepPipeline(t, DefaultConfig(isa.RV64), 8, 17)
	sc := SamplingConfig{Interval: 5_000, Warmup: 800, Detail: 600}
	run := func() []string {
		if err := mach.Restore(ck); err != nil {
			t.Fatal(err)
		}
		mach.K.Console.Reset()
		dumps, err := mach.RunEvalSampled(100_000_000, sc)
		if err != nil {
			t.Fatal(err)
		}
		var ds []string
		for _, d := range dumps {
			ds = append(ds, dumpString(d))
		}
		return ds
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("sampled dumps differ across restores:\n%v\nvs\n%v", a, b)
	}
}

// TestSampledCPIAndMetadata: a sampled run of the fib pipeline must carry
// sample metadata, cover roughly Detail/Interval of the stream, and land
// its warm-window CPI near the full-detail value.
func TestSampledCPIAndMetadata(t *testing.T) {
	// fib(4000) makes each request ~tens of kilo-instructions, so the
	// stats windows span many sampling intervals — the regime sampling
	// is designed for. (The value wraps uint64; only timing matters.)
	mach, ck := prepPipeline(t, DefaultConfig(isa.RV64), 10, 4000)
	if err := mach.Restore(ck); err != nil {
		t.Fatal(err)
	}
	full, err := mach.RunEval(100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	sc := SamplingConfig{Interval: 2_000, Warmup: 400, Detail: 400}
	if err := mach.Restore(ck); err != nil {
		t.Fatal(err)
	}
	sampled, err := mach.RunEvalSampled(100_000_000, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(sampled) != 2 {
		t.Fatalf("got %d sampled dumps, want 2", len(sampled))
	}
	for i, d := range sampled {
		meta := d.ServerSampling()
		if meta == nil {
			t.Fatalf("dump %d: no sample metadata on a sampled run", i)
		}
		if meta.Windows == 0 || meta.SampledInsts == 0 {
			t.Fatalf("dump %d: empty sample windows: %+v", i, meta)
		}
		// Exact architectural counts must match full detail exactly.
		if d.Server().Insts != full[i].Server().Insts {
			t.Errorf("dump %d: sampled insts %d != full %d (must be exact)",
				i, d.Server().Insts, full[i].Server().Insts)
		}
		cov := meta.Coverage()
		want := float64(sc.Detail) / float64(sc.Interval)
		if cov < want/3 || cov > want*3 {
			t.Errorf("dump %d: coverage %.3f implausible for D/U = %.3f", i, cov, want)
		}
		if meta.CPIMean <= 0 {
			t.Errorf("dump %d: CPI mean %.3f", i, meta.CPIMean)
		}
	}
	// Warm-window CPI: the tight bound lives in the harness-level test
	// across workloads and ISAs; here just require the right ballpark.
	fw, sw := full[1].Server().CPI(), sampled[1].Server().CPI()
	if rel := math.Abs(sw-fw) / fw; rel > 0.25 {
		t.Errorf("warm sampled CPI %.3f vs full %.3f: rel err %.3f", sw, fw, rel)
	}
	// Full-detail dumps carry no metadata.
	if full[0].ServerSampling() != nil {
		t.Error("full-detail dump carries sample metadata")
	}
}
