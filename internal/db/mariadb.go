package db

import (
	"fmt"
	"strings"
)

// MariaDB is the relational model the thesis evaluated as a MongoDB
// alternative before settling on Cassandra (§3.3.3.2): tables of typed
// rows with a B-tree primary-key index. The Store interface maps onto it
// as single-column rows so the same wire service can drive it.
type MariaDB struct {
	tables map[string]*sqlTable
	Stats  MongoStats // same shape: reads/writes/nodes
}

type sqlTable struct {
	columns []string
	index   *btree // pk -> encoded row
}

// NewMariaDB creates an empty instance.
func NewMariaDB() *MariaDB {
	return &MariaDB{tables: map[string]*sqlTable{}}
}

// Name identifies the engine.
func (m *MariaDB) Name() string { return "mariadb" }

// Boot returns the startup cost (minutes-scale under emulation per the
// thesis, far below Cassandra's).
func (m *MariaDB) Boot() uint64 { return 2_500_000 }

// CreateTable declares a table schema.
func (m *MariaDB) CreateTable(name string, columns ...string) {
	m.tables[name] = &sqlTable{columns: columns, index: newBtree()}
}

func (m *MariaDB) table(name string) *sqlTable {
	t, ok := m.tables[name]
	if !ok {
		t = &sqlTable{columns: []string{"pk", "val"}, index: newBtree()}
		m.tables[name] = t
	}
	return t
}

// InsertRow stores a row keyed by its first column value.
func (m *MariaDB) InsertRow(table string, values ...string) error {
	t := m.table(table)
	if len(values) != len(t.columns) {
		return fmt.Errorf("db: %s expects %d columns, got %d", table, len(t.columns), len(values))
	}
	m.Stats.Writes++
	t.index.insert(values[0], []byte(strings.Join(values, "\x1F")))
	return nil
}

// SelectByPK fetches a row by primary key.
func (m *MariaDB) SelectByPK(table, pk string) ([]string, bool) {
	t := m.table(table)
	m.Stats.Reads++
	v, ok, visited := t.index.search(pk)
	m.Stats.NodesVisited += uint64(visited)
	if !ok {
		return nil, false
	}
	return strings.Split(string(v), "\x1F"), true
}

// Get implements Store: the row's value columns (the primary key column
// is implied by the lookup).
func (m *MariaDB) Get(table, key string) ([]byte, bool) {
	row, ok := m.SelectByPK(table, key)
	if !ok {
		return nil, false
	}
	return []byte(strings.Join(row[1:], "\x1F")), true
}

// Put implements Store as a two-column upsert.
func (m *MariaDB) Put(table, key string, val []byte) {
	t := m.table(table)
	m.Stats.Writes++
	t.index.insert(key, []byte(key+"\x1F"+string(val)))
}

// Scan walks the primary index over a key prefix.
func (m *MariaDB) Scan(table, prefix string, limit int) []Pair {
	t := m.table(table)
	var out []Pair
	t.index.root.walk(func(k string, v []byte) bool {
		switch {
		case strings.HasPrefix(k, prefix):
			parts := strings.SplitN(string(v), "\x1F", 2)
			val := v
			if len(parts) == 2 {
				val = []byte(parts[1])
			}
			out = append(out, Pair{Key: k, Val: val})
			if limit > 0 && len(out) >= limit {
				return false
			}
		case k > prefix:
			return false
		}
		return true
	})
	return out
}
