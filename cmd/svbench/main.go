// Command svbench runs a single serverless function experiment through the
// full methodology (setup → checkpoint → detailed cold/warm evaluation) and
// prints the measured statistics, or — with -emulate — times requests under
// functional (QEMU-style) emulation. With -all it sweeps every experiment
// on the chosen ISA across a worker pool (-j) with memoized boot
// checkpoints; the sweep output is identical for every -j value.
//
// Usage:
//
//	svbench -list
//	svbench -fn fibonacci-go [-arch rv64|cisc64] [-engine cassandra|mongodb|mariadb]
//	svbench -all [-arch rv64] [-j 8]
//	svbench -fn profile -emulate -requests 10
//	svbench -fn geo -chaos -seed 7
//	svbench -fn fibonacci-go -trace trace.json -profile -stats-txt stats.txt
//	svbench -fn aes-python -sample default
//	svbench -load -rps 200 -duration 50ms -keepalive 10ms -seed 7 -j 4
//	svbench -scenario retry-storm -arch rv64 -seed 7 -trace storm.json
//	svbench -scenario list
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"svbench"
	"svbench/internal/gemsys"
	"svbench/internal/sweep"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("svbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fn       = fs.String("fn", "", "experiment name (see -list)")
		arch     = fs.String("arch", "rv64", "target ISA: rv64 or cisc64")
		engine   = fs.String("engine", "cassandra", "hotel database backend")
		emulate  = fs.Bool("emulate", false, "functional (QEMU-style) emulation instead of detailed simulation")
		requests = fs.Int("requests", 10, "requests to issue under -emulate")
		list     = fs.Bool("list", false, "list experiment names")
		all      = fs.Bool("all", false, "run every experiment on the chosen ISA (parallel sweep, see -j)")
		jobs     = fs.Int("j", sweep.DefaultJobs(),
			"sweep worker count for -all, >= 1 (results are identical for every value; default GOMAXPROCS)")
		chaos    = fs.Bool("chaos", false, "inject the default fault plan and compile the retry policy into the client")
		seed     = fs.Uint64("seed", 1, "fault-injection / load-arrival seed (same seed = same schedule)")
		load     = fs.Bool("load", false, "open-loop load run: replay a seeded arrival process against an instance pool")
		scenName = fs.String("scenario", "", "run a named chaos scenario under load (\"list\" to enumerate)")
		rps      = fs.Float64("rps", 200, "load: mean arrival rate, invocations per virtual second")
		duration = fs.Duration("duration", 50*time.Millisecond, "load: arrival window in virtual time")
		keepal   = fs.Duration("keepalive", 10*time.Millisecond, "load: idle-instance keep-alive in virtual time")
		arrival  = fs.String("arrival", "poisson", "load: arrival process, poisson or bursty")
		burst    = fs.Int("burst", 0, "load: bursty batch size (0 = default)")
		maxInst  = fs.Int("instances", 0, "load: instance pool cap (0 = default)")
		sample = fs.String("sample", "", "SMARTS-style sampled evaluation: \"default\", \"uU-wW-dD\" or \"U,W,D\" "+
			"(units: retired records; see docs/perf.md)")
		traceOut = fs.String("trace", "", "write a Chrome trace_event JSON (Perfetto-loadable) to this file")
		profile  = fs.Bool("profile", false, "print the sampled guest hot-function profile")
		statsTxt = fs.String("stats-txt", "", "write the gem5-style stats.txt dump to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := sweep.ValidateJobs(*jobs); err != nil {
		fmt.Fprintln(stderr, "svbench: -j:", err)
		return 2
	}

	if *list {
		for _, sp := range svbench.AllSpecs() {
			fmt.Fprintln(stdout, sp.Name)
		}
		return 0
	}

	if *scenName == "list" {
		for _, s := range svbench.ScenarioCatalog() {
			fmt.Fprintf(stdout, "%-24s %s\n", s.Name, s.Description)
		}
		return 0
	}

	a := svbench.Arch(*arch)
	if a != svbench.RV64 && a != svbench.CISC64 {
		fmt.Fprintf(stderr, "svbench: unknown arch %q\n", *arch)
		return 2
	}

	specs := append(append(svbench.StandaloneSpecs(), svbench.ShopSpecs()...),
		svbench.HotelSpecs(svbench.HotelEngine(*engine))...)

	if *all {
		return runAll(specs, a, *jobs, stdout, stderr)
	}

	if *scenName != "" {
		s, err := svbench.ScenarioByName(*scenName)
		if err != nil {
			fmt.Fprintln(stderr, "svbench:", err)
			return 2
		}
		name := *fn
		if name == "" {
			name = "fibonacci-go"
		}
		var spec *svbench.Spec
		for _, sp := range specs {
			if sp.Name == name {
				sp := sp
				spec = &sp
				break
			}
		}
		if spec == nil {
			fmt.Fprintf(stderr, "svbench: unknown experiment %q (try -list)\n", name)
			return 2
		}
		cfg := svbench.ScenarioConfig{
			Scenario: s,
			Cfg:      gemsys.DefaultConfig(a),
			Spec:     *spec,
			Seed:     *seed,
		}
		return runScenario(cfg, *jobs, *traceOut, *statsTxt, stdout, stderr)
	}

	if *load {
		name := *fn
		if name == "" {
			name = "fibonacci-go"
		}
		var spec *svbench.Spec
		for _, sp := range specs {
			if sp.Name == name {
				sp := sp
				spec = &sp
				break
			}
		}
		if spec == nil {
			fmt.Fprintf(stderr, "svbench: unknown experiment %q (try -list)\n", name)
			return 2
		}
		proc := svbench.LoadPoisson
		switch *arrival {
		case "poisson":
		case "bursty":
			proc = svbench.LoadBursty
		default:
			fmt.Fprintf(stderr, "svbench: unknown arrival process %q (poisson or bursty)\n", *arrival)
			return 2
		}
		cfg := svbench.LoadConfig{
			Cfg:          gemsys.DefaultConfig(a),
			Spec:         *spec,
			RPS:          *rps,
			Duration:     uint64(duration.Nanoseconds()),
			Seed:         *seed,
			Arrival:      proc,
			Burst:        *burst,
			KeepAlive:    uint64(keepal.Nanoseconds()),
			MaxInstances: *maxInst,
		}
		return runLoad(cfg, *jobs, *traceOut, *statsTxt, stdout, stderr)
	}

	if *fn == "" {
		fmt.Fprintln(stderr, "svbench: -fn is required (try -list, or -all)")
		return 2
	}
	var spec *svbench.Spec
	for _, sp := range specs {
		if sp.Name == *fn {
			sp := sp
			spec = &sp
			break
		}
	}
	if spec == nil {
		fmt.Fprintf(stderr, "svbench: unknown experiment %q (try -list)\n", *fn)
		return 2
	}

	if *chaos {
		spec.Faults = svbench.DefaultFaultPlan(*seed)
		spec.Retry = svbench.DefaultRetry()
	}
	if *sample != "" {
		sc, err := parseSample(*sample)
		if err != nil {
			fmt.Fprintln(stderr, "svbench:", err)
			return 2
		}
		spec.Sampling = sc
	}
	if *traceOut != "" || *profile || *statsTxt != "" {
		spec.Trace = svbench.TraceOptions{Enabled: true}
	}

	if *emulate {
		lats, err := svbench.RunEmulated(a, *spec, *requests)
		if err != nil {
			fmt.Fprintln(stderr, "svbench:", err)
			return 1
		}
		fmt.Fprintf(stdout, "%s on %s under emulation (%s backend):\n", spec.Name, a, *engine)
		for _, l := range lats {
			fmt.Fprintf(stdout, "  request %2d: %8d ns\n", l.Request, l.NS)
		}
		return 0
	}

	res, err := svbench.RunFunction(a, *spec)
	if err != nil {
		fmt.Fprintln(stderr, "svbench:", err)
		return 1
	}
	fmt.Fprintf(stdout, "%s on %s (server core, detailed O3 model):\n", res.Name, res.Arch)
	row := func(label string, s svbench.CoreStats) {
		fmt.Fprintf(stdout, "  %-5s cycles=%-10d insts=%-10d cpi=%-5.2f l1i=%-7d l1d=%-7d l2=%-6d mispred=%d\n",
			label, s.Cycles, s.Insts, s.CPI(), s.L1IMisses, s.L1DMisses, s.L2Misses, s.Mispredicts)
	}
	row("cold", res.Cold)
	row("warm", res.Warm)
	fmt.Fprintf(stdout, "  cold/warm ratio: %.2fx   setup instructions: %d\n",
		float64(res.Cold.Cycles)/float64(res.Warm.Cycles), res.SetupInsts)
	if res.SampleWarm != nil {
		sm := func(label string, m *svbench.SampleMeta) {
			fmt.Fprintf(stdout, "  sampled %-5s windows=%-4d coverage=%.3f cpi=%.3f±%.3f\n",
				label, m.Windows, m.Coverage(), m.CPIMean, m.CPIStdErr)
		}
		sm("cold", res.SampleCold)
		sm("warm", res.SampleWarm)
	}
	if rep := res.FaultReport; rep != nil {
		fmt.Fprintf(stdout, "  faults (seed %d): injected=%d dropped=%d corrupted=%d delayed=%d errors=%d spikes=%d outages=%d\n",
			*seed, rep.Injected, rep.Dropped, rep.Corrupted, rep.Delayed,
			rep.ErrorReplies, rep.Spikes, rep.Outages)
		fmt.Fprintf(stdout, "  recovery: surfaced=%d timeouts=%d badreplies=%d retried=%d recovered=%d exhausted=%d\n",
			rep.Surfaced, rep.Timeouts, rep.BadReplies, rep.Retried, rep.Recovered, rep.Exhausted)
	}
	if *traceOut != "" {
		if err := os.WriteFile(*traceOut, res.TraceJSON, 0o644); err != nil {
			fmt.Fprintln(stderr, "svbench:", err)
			return 1
		}
		fmt.Fprintf(stdout, "  trace: %d events -> %s (load in Perfetto or chrome://tracing)\n",
			len(res.Events), *traceOut)
	}
	if *statsTxt != "" {
		if err := os.WriteFile(*statsTxt, []byte(res.StatsText), 0o644); err != nil {
			fmt.Fprintln(stderr, "svbench:", err)
			return 1
		}
		fmt.Fprintf(stdout, "  stats: %s\n", *statsTxt)
	}
	if *profile {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, res.Profile.Table())
	}
	return 0
}

// parseSample resolves the -sample flag value: "default" selects the tuned
// default config, anything else parses as uU-wW-dD or U,W,D.
func parseSample(s string) (svbench.SamplingConfig, error) {
	if s == "default" {
		return svbench.DefaultSamplingConfig(), nil
	}
	return svbench.ParseSamplingConfig(s)
}

// runLoad executes one open-loop load run and prints its deterministic
// artifacts: the latency table, the stats-registry dump, and a digest of
// the trace JSON. The worker pool only matters for multi-point sweeps; a
// single run's output is byte-identical for every -j value.
func runLoad(cfg svbench.LoadConfig, jobs int, traceOut, statsTxt string, stdout, stderr io.Writer) int {
	reps, errs := svbench.RunLoadMany([]svbench.LoadConfig{cfg}, jobs)
	if errs[0] != nil {
		fmt.Fprintln(stderr, "svbench:", errs[0])
		return 1
	}
	rep := reps[0]
	fmt.Fprint(stdout, rep.Table())
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, rep.StatsText)
	fmt.Fprintf(stdout, "trace: %d bytes, sha256 %x\n", len(rep.TraceJSON), sha256.Sum256(rep.TraceJSON))
	if traceOut != "" {
		if err := os.WriteFile(traceOut, rep.TraceJSON, 0o644); err != nil {
			fmt.Fprintln(stderr, "svbench:", err)
			return 1
		}
		fmt.Fprintf(stdout, "trace written to %s (load in Perfetto or chrome://tracing)\n", traceOut)
	}
	if statsTxt != "" {
		if err := os.WriteFile(statsTxt, []byte(rep.StatsText), 0o644); err != nil {
			fmt.Fprintln(stderr, "svbench:", err)
			return 1
		}
		fmt.Fprintf(stdout, "stats written to %s\n", statsTxt)
	}
	return 0
}

// runScenario executes one chaos scenario and prints its deterministic
// artifacts: the phase-bucketed report, the stats-registry dump, and a
// digest of the trace JSON. As with -load, one point's output is
// byte-identical for every -j value.
func runScenario(cfg svbench.ScenarioConfig, jobs int, traceOut, statsTxt string, stdout, stderr io.Writer) int {
	results, errs := svbench.RunScenarioMany([]svbench.ScenarioConfig{cfg}, jobs)
	if errs[0] != nil {
		fmt.Fprintln(stderr, "svbench:", errs[0])
		return 1
	}
	res := results[0]
	fmt.Fprint(stdout, res.Table())
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, res.StatsText)
	fmt.Fprintf(stdout, "trace: %d bytes, sha256 %x\n", len(res.TraceJSON), sha256.Sum256(res.TraceJSON))
	if traceOut != "" {
		if err := os.WriteFile(traceOut, res.TraceJSON, 0o644); err != nil {
			fmt.Fprintln(stderr, "svbench:", err)
			return 1
		}
		fmt.Fprintf(stdout, "trace written to %s (load in Perfetto or chrome://tracing)\n", traceOut)
	}
	if statsTxt != "" {
		if err := os.WriteFile(statsTxt, []byte(res.StatsText), 0o644); err != nil {
			fmt.Fprintln(stderr, "svbench:", err)
			return 1
		}
		fmt.Fprintf(stdout, "stats written to %s\n", statsTxt)
	}
	return 0
}

// runAll sweeps every spec on one ISA across the worker pool and prints
// one summary row per experiment, in catalog order.
func runAll(specs []svbench.Spec, a svbench.Arch, jobs int, stdout, stderr io.Writer) int {
	cfg := gemsys.DefaultConfig(a)
	var tasks []sweep.Task
	for _, sp := range specs {
		tasks = append(tasks, sweep.Task{Cfg: cfg, Spec: sp})
	}
	out := sweep.Run(tasks, sweep.Options{Jobs: jobs})
	fmt.Fprintf(stdout, "%d experiments on %s (-j %d):\n", len(out), a, jobs)
	failed := 0
	for _, o := range out {
		if o.Err != nil {
			failed++
			fmt.Fprintf(stdout, "  %-24s FAILED: %v\n", o.Task.Spec.Name, o.Err)
			continue
		}
		fmt.Fprintf(stdout, "  %-24s cold=%-10d warm=%-10d ratio=%.2fx\n",
			o.Task.Spec.Name, o.Result.Cold.Cycles, o.Result.Warm.Cycles,
			float64(o.Result.Cold.Cycles)/float64(o.Result.Warm.Cycles))
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "svbench: %d experiment(s) failed\n", failed)
		return 1
	}
	return 0
}
