// Package isatest provides test support for executing IR modules on the
// simulated cores of either ISA — used by the library packages (libc, rpc,
// langrt) for differential testing against their Go mirrors.
package isatest

import (
	"fmt"

	"svbench/internal/ir"
	"svbench/internal/isa"
	"svbench/internal/isa/cisc"
	"svbench/internal/isa/riscv"
)

// ExitEcall is the environment call number the runner's halt stub uses.
const ExitEcall = 255

// Runner executes functions of one compiled module on a bare core.
type Runner struct {
	Arch isa.Arch
	Prog *isa.Program
	Mem  *isa.Mem
	core isa.Core
	stub uint64
}

// NewRunner compiles m for arch into a fresh 4 MiB memory.
func NewRunner(arch isa.Arch, m *ir.Module) (*Runner, error) {
	r := &Runner{Arch: arch, Mem: isa.NewMem(4 << 20)}
	var err error
	switch arch {
	case isa.RV64:
		r.Prog, err = riscv.Compile(m, 0x10000)
	case isa.CISC64:
		r.Prog, err = cisc.Compile(m, 0x10000)
	default:
		return nil, fmt.Errorf("isatest: unknown arch %q", arch)
	}
	if err != nil {
		return nil, err
	}
	r.Prog.LoadInto(r.Mem)

	hook := func(c isa.Core) isa.EcallResult {
		if c.EcallNum() == ExitEcall {
			return isa.EcallHalt
		}
		panic(fmt.Sprintf("isatest: unexpected ecall %d", c.EcallNum()))
	}
	r.stub = 0x400
	switch arch {
	case isa.RV64:
		r.Mem.Store(r.stub, 4, uint64(riscv.Inst{Kind: riscv.KindADDI, Rd: riscv.RegA7, Rs1: riscv.RegZero, Imm: ExitEcall}.Encode()))
		r.Mem.Store(r.stub+4, 4, uint64(riscv.Inst{Kind: riscv.KindECALL}.Encode()))
		c := riscv.NewCore(r.Mem, nil)
		c.Hook = hook
		r.core = c
	case isa.CISC64:
		var sb []byte
		sb = cisc.Inst{Kind: cisc.KindMOVrr, Dst: cisc.RDI, Src: cisc.RAX}.Encode(sb)
		sb = cisc.Inst{Kind: cisc.KindMOVri32, Dst: cisc.RAX, Imm: ExitEcall}.Encode(sb)
		sb = cisc.Inst{Kind: cisc.KindSYSCALL}.Encode(sb)
		copy(r.Mem.Data[r.stub:], sb)
		c := cisc.NewCore(r.Mem, nil)
		c.Hook = hook
		r.core = c
	}
	return r, nil
}

// GlobalAddr returns the address of a global in the compiled program.
func (r *Runner) GlobalAddr(name string) uint64 { return r.Prog.SymAddr(name) }

// WriteBytes copies b into simulated memory at addr.
func (r *Runner) WriteBytes(addr uint64, b []byte) { copy(r.Mem.Bytes(addr, uint64(len(b))), b) }

// ReadBytes copies n bytes from simulated memory.
func (r *Runner) ReadBytes(addr, n uint64) []byte {
	return append([]byte(nil), r.Mem.Bytes(addr, n)...)
}

// Call executes fn(args...) on the simulated core and returns its result.
func (r *Runner) Call(fn string, args ...int64) (int64, error) {
	stackTop := uint64(3 << 20)
	r.core.SetPC(r.Prog.SymAddr(fn))
	switch c := r.core.(type) {
	case *riscv.Core:
		c.SetStackPtr(stackTop)
		c.Regs[riscv.RegRA] = r.stub
	case *cisc.Core:
		c.SetStackPtr(stackTop)
		c.Regs[cisc.RSP] -= 8
		r.Mem.Store(c.Regs[cisc.RSP], 8, r.stub)
	}
	for i, a := range args {
		r.core.SetArg(i, uint64(a))
	}
	var trace []isa.TraceRec
	for steps := 0; ; steps++ {
		if steps > 50_000_000 {
			return 0, fmt.Errorf("isatest: %s did not halt", fn)
		}
		var err error
		trace, err = r.core.Step(trace[:0])
		if err == isa.ErrHalt {
			break
		}
		if err != nil {
			return 0, fmt.Errorf("isatest: %s: %w", fn, err)
		}
	}
	switch c := r.core.(type) {
	case *riscv.Core:
		return int64(c.Regs[riscv.RegA0]), nil
	case *cisc.Core:
		return int64(c.Regs[cisc.RDI]), nil
	}
	return 0, fmt.Errorf("isatest: unknown core")
}
