// Package stats defines the statistics records produced by the simulated
// machine's m5-style dump operations — the numbers every figure of the
// thesis's evaluation is built from.
package stats

import "fmt"

// CoreStats is one core's counters for one stats window.
type CoreStats struct {
	Cycles      uint64
	Insts       uint64
	MicroOps    uint64
	Loads       uint64
	Stores      uint64
	Branches    uint64
	Mispredicts uint64

	L1IAccesses uint64
	L1IMisses   uint64
	L1DAccesses uint64
	L1DMisses   uint64
	L2Accesses  uint64
	L2Misses    uint64

	ITLBMisses uint64
	DTLBMisses uint64
}

// CPI returns cycles per instruction for the window.
func (c CoreStats) CPI() float64 {
	if c.Insts == 0 {
		return 0
	}
	return float64(c.Cycles) / float64(c.Insts)
}

// L1Misses returns combined instruction+data L1 misses.
func (c CoreStats) L1Misses() uint64 { return c.L1IMisses + c.L1DMisses }

// MPKI returns combined L1 misses per kilo-instruction for the window.
func (c CoreStats) MPKI() float64 {
	if c.Insts == 0 {
		return 0
	}
	return 1000 * float64(c.L1Misses()) / float64(c.Insts)
}

// BranchMPKI returns branch mispredicts per kilo-instruction.
func (c CoreStats) BranchMPKI() float64 {
	if c.Insts == 0 {
		return 0
	}
	return 1000 * float64(c.Mispredicts) / float64(c.Insts)
}

// L2MissRatio returns L2 misses over L2 accesses (0 when the L2 was
// never accessed).
func (c CoreStats) L2MissRatio() float64 {
	if c.L2Accesses == 0 {
		return 0
	}
	return float64(c.L2Misses) / float64(c.L2Accesses)
}

// String summarizes the window.
func (c CoreStats) String() string {
	return fmt.Sprintf("cycles=%d insts=%d cpi=%.2f l1i=%d l1d=%d l2=%d mispred=%d",
		c.Cycles, c.Insts, c.CPI(), c.L1IMisses, c.L1DMisses, c.L2Misses, c.Mispredicts)
}

// SampleMeta describes how one core's window counters were obtained when
// the evaluation ran in sampled-detailed mode: how many detailed sample
// windows fell inside the stats window, what fraction of the instruction
// stream they covered, and a CPI confidence proxy (mean and standard error
// of the per-window CPI samples). Full-detail runs carry no SampleMeta.
type SampleMeta struct {
	// Windows counts detailed sample windows that committed at least one
	// instruction on this core within the stats window.
	Windows int
	// SampledInsts / TotalInsts give the measured coverage: counters
	// were extrapolated by TotalInsts/SampledInsts.
	SampledInsts uint64
	TotalInsts   uint64
	// SampledCycles is the cycle time actually spent inside detailed
	// windows (before extrapolation).
	SampledCycles uint64
	// CPIMean and CPIStdErr summarize the per-window CPI samples; a
	// large CPIStdErr relative to CPIMean flags an unstable estimate
	// (sampling interval too coarse for the workload's phases).
	CPIMean   float64
	CPIStdErr float64
}

// Coverage returns the sampled fraction of the instruction stream.
func (s SampleMeta) Coverage() float64 {
	if s.TotalInsts == 0 {
		return 0
	}
	return float64(s.SampledInsts) / float64(s.TotalInsts)
}

// Dump is one m5 dump-stats event: a labeled snapshot of every core's
// window counters. Sampling is nil for full-detail runs; in sampled mode
// it holds one SampleMeta per core describing the extrapolation.
type Dump struct {
	Label    string
	Cores    []CoreStats
	Sampling []SampleMeta
}

// Server returns the measured core's stats (the function server is pinned
// to core 1 in the thesis's methodology).
func (d Dump) Server() CoreStats {
	if len(d.Cores) > 1 {
		return d.Cores[1]
	}
	if len(d.Cores) == 1 {
		return d.Cores[0]
	}
	return CoreStats{}
}

// ServerSampling returns the measured core's sample metadata, or nil when
// the dump came from a full-detail run.
func (d Dump) ServerSampling() *SampleMeta {
	if len(d.Sampling) > 1 {
		return &d.Sampling[1]
	}
	if len(d.Sampling) == 1 {
		return &d.Sampling[0]
	}
	return nil
}
