// Command experiments regenerates every figure and table of the thesis's
// evaluation section and writes them as markdown (stdout or -out file)
// plus per-figure CSVs when -csv DIR is given.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"svbench/internal/figures"
)

func main() {
	var (
		out     = flag.String("out", "", "write the markdown report to this file (default stdout)")
		csvDir  = flag.String("csv", "", "also write per-figure CSVs into this directory")
		quiet   = flag.Bool("q", false, "suppress progress lines")
		nreq    = flag.Int("requests", 6, "requests per function in the emulation study (fig 4.20)")
		skipEmu = flag.Bool("skip-emulation", false, "skip fig 4.20 (the slowest study)")
		chaos   = flag.Bool("chaos", false, "also run the fault-injection/recovery table")
		seed    = flag.Uint64("seed", 1, "fault-injection seed for -chaos")
	)
	flag.Parse()

	logf := func(s string) { fmt.Fprintln(os.Stderr, s) }
	if *quiet {
		logf = nil
	}
	res, err := figures.Collect(logf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	var all []figures.Data
	all = append(all, figures.Table41(),
		res.Fig44(), res.Fig45(), res.Fig46(), res.Fig47(), res.Fig48(), res.Fig49(),
		res.Fig410(), res.Fig411(), res.Fig412(), res.Fig413(), res.Fig414(),
		res.Fig415(), res.Fig416(), res.Fig417(), res.Fig418(), res.Fig419(),
		res.TableMPKI())
	if !*skipEmu {
		f420, err := figures.Fig420(*nreq)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		all = append(all, f420)
	}
	t44, err := figures.Table44()
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	t45, err := figures.Table45()
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	all = append(all, t44, t45)
	if *chaos {
		tc, err := figures.TableChaos(*seed, logf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		all = append(all, tc)
	}

	var sb strings.Builder
	sb.WriteString("# Evaluation figures and tables (regenerated)\n\n")
	sb.WriteString("Cache-miss rates (MPKI) and all per-core counters come from the\n" +
		"tracing and stats subsystem — see [docs/tracing.md](tracing.md).\n\n")
	for _, d := range all {
		sb.WriteString(d.Markdown())
		sb.WriteString("\n")
	}
	if len(res.Failures) > 0 {
		sb.WriteString("## Failed experiments\n\n")
		for _, f := range res.Failures {
			fmt.Fprintf(&sb, "- %v\n", f)
		}
		sb.WriteString("\n")
		fmt.Fprintf(os.Stderr, "experiments: %d experiment(s) failed; report includes a failure section\n",
			len(res.Failures))
	}
	if *out == "" {
		fmt.Print(sb.String())
	} else if err := os.WriteFile(*out, []byte(sb.String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		for _, d := range all {
			name := strings.ReplaceAll(d.ID, ".", "_") + ".csv"
			if err := os.WriteFile(filepath.Join(*csvDir, name), []byte(d.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
	}
}
