// Command experiments regenerates every figure and table of the thesis's
// evaluation section and writes them as markdown (stdout or -out file)
// plus per-figure CSVs when -csv DIR is given. The sweep runs on a
// worker pool (-j) with memoized boot checkpoints; the report is
// byte-identical for every -j value and with memoization disabled.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"svbench/internal/figures"
	"svbench/internal/sweep"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out     = fs.String("out", "", "write the markdown report to this file (default stdout)")
		csvDir  = fs.String("csv", "", "also write per-figure CSVs into this directory")
		quiet   = fs.Bool("q", false, "suppress progress lines")
		nreq    = fs.Int("requests", 6, "requests per function in the emulation study (fig 4.20)")
		skipEmu = fs.Bool("skip-emulation", false, "skip fig 4.20 (the slowest study)")
		chaos   = fs.Bool("chaos", false, "also run the fault-injection/recovery table")
		loadFl  = fs.Bool("load", false, "also run the open-loop load study (throughput curve + keep-alive table)")
		scenFl  = fs.Bool("scenarios", false, "also run the chaos-scenario SLO matrix (scenario x arch)")
		clustFl = fs.Bool("cluster", false, "also run the multi-machine cluster fabric table (topology x arch)")
		scaleFl = fs.Bool("autoscale", false, "also run the cluster-autoscaling policy x RPS matrix")
		sampleFl = fs.Bool("sampling", false, "also run the sampled-vs-full CPI error table (SMARTS-style sampled simulation)")
		seed    = fs.Uint64("seed", 1, "fault-injection / load-arrival seed for -chaos, -load, -scenarios, -cluster and -autoscale")
		jobs    = fs.Int("j", sweep.DefaultJobs(),
			"sweep worker count, >= 1 (results are identical for every value; default GOMAXPROCS)")
		noMemo = fs.Bool("no-memo", false,
			"disable boot-checkpoint memoization (every run simulates its own setup; results are identical)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := sweep.ValidateJobs(*jobs); err != nil {
		fmt.Fprintln(stderr, "experiments: -j:", err)
		return 2
	}

	logf := func(s string) { fmt.Fprintln(stderr, s) }
	if *quiet {
		logf = nil
	}
	res, err := figures.CollectWith(figures.SweepOpts{Jobs: *jobs, DisableMemo: *noMemo, Log: logf})
	if err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		return 1
	}

	all, err := figures.ReportData(res, figures.ReportOpts{
		Requests:      *nreq,
		SkipEmulation: *skipEmu,
		Chaos:         *chaos,
		ChaosSeed:     *seed,
		Load:          *loadFl,
		LoadSeed:      *seed,
		LoadJobs:      *jobs,
		Scenarios:     *scenFl,
		ScenarioSeed:  *seed,
		Cluster:       *clustFl,
		ClusterSeed:   *seed,
		Autoscale:     *scaleFl,
		AutoscaleSeed: *seed,
		Sampling:      *sampleFl,
		Log:           logf,
	})
	if err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		return 1
	}

	report := figures.Render(res, all)
	if len(res.Failures) > 0 {
		fmt.Fprintf(stderr, "experiments: %d experiment(s) failed; report includes a failure section\n",
			len(res.Failures))
	}
	if *out == "" {
		fmt.Fprint(stdout, report)
	} else if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		return 1
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(stderr, "experiments:", err)
			return 1
		}
		for _, d := range all {
			name := strings.ReplaceAll(d.ID, ".", "_") + ".csv"
			if err := os.WriteFile(filepath.Join(*csvDir, name), []byte(d.CSV()), 0o644); err != nil {
				fmt.Fprintln(stderr, "experiments:", err)
				return 1
			}
		}
	}
	return 0
}
