package db

import (
	"sort"
	"strings"
)

// CassandraConfig tunes the LSM engine, mirroring the knobs the thesis
// experimented with when fighting Cassandra's boot time (heap size, token
// count — §3.3.3.2).
type CassandraConfig struct {
	MemtableLimit int // bytes before a flush
	LevelFanout   int // sstables per level before compaction
	RowCacheCap   int // entries
	NumTokens     int // token-ring size (drives boot cost)
	HeapMB        int
}

// DefaultCassandraConfig returns the tuned configuration.
func DefaultCassandraConfig() CassandraConfig {
	return CassandraConfig{
		MemtableLimit: 16 << 10,
		LevelFanout:   4,
		RowCacheCap:   256,
		NumTokens:     256,
		HeapMB:        512,
	}
}

// CassandraStats counts engine events.
type CassandraStats struct {
	Reads, Writes  uint64
	MemtableHits   uint64
	RowCacheHits   uint64
	SSTablesProbed uint64
	Flushes        uint64
	Compactions    uint64
}

type sstable struct {
	keys []string // sorted
	vals [][]byte
}

func (s *sstable) get(key string) ([]byte, bool) {
	i := sort.SearchStrings(s.keys, key)
	if i < len(s.keys) && s.keys[i] == key {
		return s.vals[i], true
	}
	return nil, false
}

// Cassandra is the LSM-tree engine: writes land in a sorted memtable that
// flushes to immutable SSTables; reads probe memtable, row cache, then
// SSTables newest-first; compaction merges tables when a level overflows.
type Cassandra struct {
	cfg      CassandraConfig
	mem      map[string][]byte
	memBytes int
	tables   []*sstable // newest first
	rowCache map[string][]byte
	rcOrder  []string
	Stats    CassandraStats
	booted   bool
}

// NewCassandra creates an engine with cfg (zero value fields take
// defaults).
func NewCassandra(cfg CassandraConfig) *Cassandra {
	def := DefaultCassandraConfig()
	if cfg.MemtableLimit == 0 {
		cfg.MemtableLimit = def.MemtableLimit
	}
	if cfg.LevelFanout == 0 {
		cfg.LevelFanout = def.LevelFanout
	}
	if cfg.RowCacheCap == 0 {
		cfg.RowCacheCap = def.RowCacheCap
	}
	if cfg.NumTokens == 0 {
		cfg.NumTokens = def.NumTokens
	}
	if cfg.HeapMB == 0 {
		cfg.HeapMB = def.HeapMB
	}
	return &Cassandra{
		cfg:      cfg,
		mem:      map[string][]byte{},
		rowCache: map[string][]byte{},
	}
}

// Name identifies the engine.
func (c *Cassandra) Name() string { return "cassandra" }

// Boot performs the token-ring/gossip initialization and returns its
// virtual cycle cost. The thesis measured Cassandra boots of ~17 minutes
// in its RISC-V VM versus seconds for MongoDB; the cost model scales with
// NumTokens and HeapMB so that asymmetry is reproducible.
func (c *Cassandra) Boot() uint64 {
	c.booted = true
	return uint64(c.cfg.NumTokens)*120_000 + uint64(c.cfg.HeapMB)*8_000
}

func nskey(table, key string) string { return table + "\x00" + key }

// Put stores val, flushing the memtable when it overflows.
func (c *Cassandra) Put(table, key string, val []byte) {
	c.Stats.Writes++
	k := nskey(table, key)
	old, had := c.mem[k]
	c.mem[k] = append([]byte(nil), val...)
	c.memBytes += len(k) + len(val)
	if had {
		c.memBytes -= len(k) + len(old)
	}
	delete(c.rowCache, k)
	if c.memBytes >= c.cfg.MemtableLimit {
		c.flush()
	}
}

func (c *Cassandra) flush() {
	if len(c.mem) == 0 {
		return
	}
	keys := make([]string, 0, len(c.mem))
	for k := range c.mem {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	t := &sstable{keys: keys}
	for _, k := range keys {
		t.vals = append(t.vals, c.mem[k])
	}
	c.tables = append([]*sstable{t}, c.tables...)
	c.mem = map[string][]byte{}
	c.memBytes = 0
	c.Stats.Flushes++
	if len(c.tables) > c.cfg.LevelFanout {
		c.compact()
	}
}

// compact merges all SSTables into one (newest value wins).
func (c *Cassandra) compact() {
	merged := map[string][]byte{}
	for i := len(c.tables) - 1; i >= 0; i-- {
		t := c.tables[i]
		for j, k := range t.keys {
			merged[k] = t.vals[j]
		}
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	t := &sstable{keys: keys}
	for _, k := range keys {
		t.vals = append(t.vals, merged[k])
	}
	c.tables = []*sstable{t}
	c.Stats.Compactions++
}

// Get probes memtable, row cache, then SSTables newest-first. probed
// reports how many SSTables were touched (the read-amplification signal
// the cost model charges for).
func (c *Cassandra) GetProbed(table, key string) (val []byte, ok bool, probed int) {
	c.Stats.Reads++
	k := nskey(table, key)
	if v, hit := c.mem[k]; hit {
		c.Stats.MemtableHits++
		return v, true, 0
	}
	if v, hit := c.rowCache[k]; hit {
		c.Stats.RowCacheHits++
		return v, true, 0
	}
	for _, t := range c.tables {
		probed++
		c.Stats.SSTablesProbed++
		if v, hit := t.get(k); hit {
			c.cacheRow(k, v)
			return v, true, probed
		}
	}
	return nil, false, probed
}

// Get implements Store.
func (c *Cassandra) Get(table, key string) ([]byte, bool) {
	v, ok, _ := c.GetProbed(table, key)
	return v, ok
}

func (c *Cassandra) cacheRow(k string, v []byte) {
	if len(c.rowCache) >= c.cfg.RowCacheCap && c.cfg.RowCacheCap > 0 {
		victim := c.rcOrder[0]
		c.rcOrder = c.rcOrder[1:]
		delete(c.rowCache, victim)
	}
	c.rowCache[k] = v
	c.rcOrder = append(c.rcOrder, k)
}

// Scan merges memtable and SSTables in key order.
func (c *Cassandra) Scan(table, prefix string, limit int) []Pair {
	pfx := nskey(table, prefix)
	merged := map[string][]byte{}
	for i := len(c.tables) - 1; i >= 0; i-- {
		t := c.tables[i]
		start := sort.SearchStrings(t.keys, pfx)
		for j := start; j < len(t.keys) && strings.HasPrefix(t.keys[j], pfx); j++ {
			merged[t.keys[j]] = t.vals[j]
		}
	}
	for k, v := range c.mem {
		if strings.HasPrefix(k, pfx) {
			merged[k] = v
		}
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if limit > 0 && len(keys) > limit {
		keys = keys[:limit]
	}
	out := make([]Pair, 0, len(keys))
	ns := nskey(table, "")
	for _, k := range keys {
		out = append(out, Pair{Key: strings.TrimPrefix(k, ns), Val: merged[k]})
	}
	return out
}

// SSTableCount reports the current number of SSTables.
func (c *Cassandra) SSTableCount() int { return len(c.tables) }
