package loadgen

import (
	"bytes"
	"testing"

	"svbench/internal/gemsys"
	"svbench/internal/harness"
	"svbench/internal/isa"
)

func specByName(t *testing.T, name string) harness.Spec {
	t.Helper()
	for _, sp := range harness.AllSpecs() {
		if sp.Name == name {
			return sp
		}
	}
	t.Fatalf("no spec %q in catalog", name)
	return harness.Spec{}
}

// testConfig is the acceptance-criteria load point: fibonacci-go on rv64,
// 200 rps over a 50 ms window, seed 7.
func testConfig(t *testing.T) Config {
	return Config{
		Cfg:       gemsys.DefaultConfig(isa.RV64),
		Spec:      specByName(t, "fibonacci-go"),
		RPS:       200,
		Duration:  50_000_000,
		Seed:      7,
		KeepAlive: 10_000_000,
	}
}

func TestArrivalsAreSeededAndBounded(t *testing.T) {
	cfg := testConfig(t)
	a := genArrivals(cfg)
	b := genArrivals(cfg)
	if len(a) == 0 {
		t.Fatal("no arrivals generated")
	}
	if len(a) != len(b) {
		t.Fatalf("same config, different arrival counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %d vs %d", i, a[i], b[i])
		}
		if a[i] >= cfg.Duration {
			t.Fatalf("arrival %d at %d >= duration %d", i, a[i], cfg.Duration)
		}
		if i > 0 && a[i] < a[i-1] {
			t.Fatalf("arrivals not monotone at %d: %d < %d", i, a[i], a[i-1])
		}
	}

	cfg.Seed = 8
	c := genArrivals(cfg)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical arrival streams")
	}

	cfg.Arrival = Bursty
	cfg.Burst = 4
	d := genArrivals(cfg)
	if len(d)%4 != 0 {
		t.Fatalf("bursty arrivals not batch-aligned: %d", len(d))
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	cfg := testConfig(t)
	cfg.RPS = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero RPS accepted")
	}
	cfg = testConfig(t)
	cfg.Duration = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero duration accepted")
	}
	cfg = testConfig(t)
	cfg.MaxInstances = -1
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative pool cap accepted")
	}
}

// TestRunBasics exercises one full run: every invocation completes with a
// consistent lifecycle and the warmup cold starts match the pool growth.
func TestRunBasics(t *testing.T) {
	rep, err := Run(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Invocations) == 0 {
		t.Fatal("no invocations")
	}
	if rep.CheckFailures != 0 {
		t.Fatalf("%d check failures", rep.CheckFailures)
	}
	if rep.ColdStarts == 0 {
		t.Fatal("first invocation must cold-start")
	}
	if rep.ColdStarts+rep.WarmStarts != uint64(len(rep.Invocations)) {
		t.Fatalf("cold %d + warm %d != invocations %d",
			rep.ColdStarts, rep.WarmStarts, len(rep.Invocations))
	}
	for i, inv := range rep.Invocations {
		if inv.ID != i {
			t.Fatalf("invocation %d has ID %d", i, inv.ID)
		}
		if inv.Done != inv.Start+inv.Service {
			t.Fatalf("invocation %d: done %d != start %d + service %d", i, inv.Done, inv.Start, inv.Service)
		}
		if inv.Latency != inv.QueueDelay+inv.ColdPenalty+inv.Service {
			t.Fatalf("invocation %d: latency %d != queue %d + cold %d + service %d",
				i, inv.Latency, inv.QueueDelay, inv.ColdPenalty, inv.Service)
		}
		if !inv.Cold && inv.ColdPenalty != 0 {
			t.Fatalf("warm invocation %d has cold penalty %d", i, inv.ColdPenalty)
		}
		if inv.Cold && inv.ColdPenalty == 0 {
			t.Fatalf("cold invocation %d has no penalty", i)
		}
		if inv.Service == 0 {
			t.Fatalf("invocation %d has zero service time", i)
		}
	}
	if rep.Latency.P99 < rep.Latency.P50 || rep.Latency.Max < rep.Latency.P99 {
		t.Fatalf("percentiles not ordered: %+v", rep.Latency)
	}
	if rep.Makespan == 0 || rep.Throughput <= 0 {
		t.Fatalf("missing makespan/throughput: %d %g", rep.Makespan, rep.Throughput)
	}
}

// TestKeepAliveControlsColdStarts pins the acceptance criterion: a short
// keep-alive churns cold starts, a keep-alive beyond the run leaves only
// the warmup ones.
func TestKeepAliveControlsColdStarts(t *testing.T) {
	cfg := testConfig(t)
	cfg.KeepAlive = 0 // reclaim the instant an instance idles
	churny, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if churny.ChurnColdStarts == 0 {
		t.Fatalf("keep-alive 0 produced no churn cold starts (cold %d)", churny.ColdStarts)
	}
	if churny.Reclaims == 0 {
		t.Fatal("keep-alive 0 reclaimed nothing")
	}

	cfg.KeepAlive = 10 * cfg.Duration
	warm, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.ChurnColdStarts != 0 {
		t.Fatalf("infinite keep-alive still churned %d cold starts", warm.ChurnColdStarts)
	}
	if warm.ColdStarts != warm.PeakInstances {
		t.Fatalf("warmup cold starts %d != peak instances %d", warm.ColdStarts, warm.PeakInstances)
	}
	if warm.Reclaims != 0 {
		t.Fatalf("infinite keep-alive reclaimed %d instances", warm.Reclaims)
	}
	if warm.Latency.P99 > churny.Latency.Max && churny.ChurnColdStarts > 0 &&
		warm.ColdStarts > churny.ColdStarts {
		t.Fatal("longer keep-alive should not increase cold starts")
	}
}

// TestBurstyQueuesAtPoolCap drives batch arrivals into a small pool and
// expects FIFO backlog.
func TestBurstyQueuesAtPoolCap(t *testing.T) {
	cfg := testConfig(t)
	cfg.Arrival = Bursty
	cfg.Burst = 6
	// Batches arrive every burst/RPS seconds on average; keep the rate
	// high enough that several batches land inside the window.
	cfg.RPS = 600
	cfg.MaxInstances = 2
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeakInstances != 2 {
		t.Fatalf("peak %d, want pool cap 2", rep.PeakInstances)
	}
	if rep.MaxQueueDepth == 0 {
		t.Fatal("burst of 6 into a pool of 2 never queued")
	}
	if rep.QueueDelay.Max == 0 {
		t.Fatal("queueing produced no queue delay")
	}
}

// TestDeterminismAcrossJobs is the loadgen determinism gate: the same
// sweep of configs run with -j 1 and -j 4 yields byte-identical latency
// tables, stats-registry dumps and trace JSON for every point — and a
// solo Run matches both.
func TestDeterminismAcrossJobs(t *testing.T) {
	mkCfgs := func() []Config {
		base := testConfig(t)
		short := base
		short.KeepAlive = 1_000_000
		bursty := base
		bursty.Arrival = Bursty
		bursty.RPS = 600
		bursty.MaxInstances = 2
		return []Config{base, short, bursty}
	}

	seq, errs1 := RunMany(mkCfgs(), 1)
	for i, err := range errs1 {
		if err != nil {
			t.Fatalf("point %d (-j 1): %v", i, err)
		}
	}
	par, errs4 := RunMany(mkCfgs(), 4)
	for i, err := range errs4 {
		if err != nil {
			t.Fatalf("point %d (-j 4): %v", i, err)
		}
	}

	solo, err := Run(mkCfgs()[0])
	if err != nil {
		t.Fatal(err)
	}

	for i := range seq {
		if a, b := seq[i].Table(), par[i].Table(); a != b {
			t.Errorf("point %d: latency table differs between -j 1 and -j 4:\n--- j1\n%s--- j4\n%s", i, a, b)
		}
		if a, b := seq[i].StatsText, par[i].StatsText; a != b {
			t.Errorf("point %d: stats text differs between -j 1 and -j 4", i)
		}
		if !bytes.Equal(seq[i].TraceJSON, par[i].TraceJSON) {
			t.Errorf("point %d: trace JSON differs between -j 1 and -j 4", i)
		}
	}
	if a, b := seq[0].Table(), solo.Table(); a != b {
		t.Errorf("solo run table differs from swept run:\n--- sweep\n%s--- solo\n%s", a, b)
	}
	if !bytes.Equal(seq[0].TraceJSON, solo.TraceJSON) {
		t.Error("solo run trace differs from swept run")
	}
	if seq[0].StatsText != solo.StatsText {
		t.Error("solo run stats text differs from swept run")
	}
}
