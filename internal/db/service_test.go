package db

import (
	"testing"

	"svbench/internal/rpc"
)

// decodeStatus reads the status field of a service reply.
func decodeStatus(t *testing.T, resp []byte) uint64 {
	t.Helper()
	st, err := rpc.NewReader(resp).Int()
	if err != nil {
		t.Fatalf("reply does not decode: %v", err)
	}
	return st
}

// truncate drops the last n encoded bytes of a request, keeping the
// cursor header consistent with the shortened body.
func truncate(req []byte, n int) []byte {
	out := append([]byte(nil), req[:len(req)-n]...)
	ln := uint64(len(out))
	for i := 0; i < 8; i++ {
		out[i] = byte(ln >> (8 * i))
	}
	return out
}

func TestServiceHandleErrorPaths(t *testing.T) {
	getReq := func() []byte {
		w := rpc.NewWriter()
		w.PutInt(OpGet)
		w.PutString("tbl")
		w.PutString("some-key")
		return w.Bytes()
	}
	putReq := func() []byte {
		w := rpc.NewWriter()
		w.PutInt(OpPut)
		w.PutString("tbl")
		w.PutString("some-key")
		w.PutBytes([]byte("value"))
		return w.Bytes()
	}
	cases := []struct {
		name string
		req  []byte
	}{
		{"empty", rpc.NewWriter().Bytes()},
		{"bad op", func() []byte {
			w := rpc.NewWriter()
			w.PutInt(99)
			w.PutString("tbl")
			return w.Bytes()
		}()},
		{"missing table", func() []byte {
			w := rpc.NewWriter()
			w.PutInt(OpGet)
			return w.Bytes()
		}()},
		{"truncated key", truncate(getReq(), 4)},
		{"truncated value", truncate(putReq(), 3)},
		{"scan missing limit", func() []byte {
			w := rpc.NewWriter()
			w.PutInt(OpScan)
			w.PutString("tbl")
			w.PutString("prefix")
			return w.Bytes()
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewService(NewMemcached(MemcachedConfig{}))
			before := s.Requests
			resp, cycles := s.Handle(tc.req)
			if st := decodeStatus(t, resp); st != StatusBadReq {
				t.Fatalf("status = %d, want StatusBadReq (%d)", st, StatusBadReq)
			}
			if cycles == 0 {
				t.Fatal("bad request charged zero cycles")
			}
			if s.Requests != before+1 {
				t.Fatalf("Requests = %d, want %d (malformed requests still count)",
					s.Requests, before+1)
			}
		})
	}
}

func TestServiceHandleHappyAfterError(t *testing.T) {
	// A malformed request must not wedge the service: the next valid
	// operation still works.
	s := NewService(NewMemcached(MemcachedConfig{}))
	s.Handle([]byte{1, 2, 3})

	w := rpc.NewWriter()
	w.PutInt(OpPut)
	w.PutString("tbl")
	w.PutString("k")
	w.PutBytes([]byte("v"))
	if st := decodeStatus(t, mustHandle(s, w.Bytes())); st != StatusOK {
		t.Fatalf("put after error: status %d", st)
	}

	w = rpc.NewWriter()
	w.PutInt(OpGet)
	w.PutString("tbl")
	w.PutString("k")
	resp := mustHandle(s, w.Bytes())
	r := rpc.NewReader(resp)
	if st, _ := r.Int(); st != StatusOK {
		t.Fatalf("get after error: status %d", st)
	}
	val, err := r.Bytes()
	if err != nil || string(val) != "v" {
		t.Fatalf("get value = %q, %v", val, err)
	}
	if s.Requests != 3 {
		t.Fatalf("Requests = %d, want 3", s.Requests)
	}
}

func mustHandle(s *Service, req []byte) []byte {
	resp, _ := s.Handle(req)
	return resp
}
