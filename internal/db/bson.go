package db

import (
	"fmt"
	"sort"
)

// A minimal BSON-style document codec for the MongoDB model: a document is
// an ordered element list of (type, name, value) with int64 and string
// values, length-prefixed like BSON.

// Doc is a document as a field map (encoded in sorted field order).
type Doc map[string]any

// Element type tags (BSON-compatible values).
const (
	bsonString byte = 0x02
	bsonInt64  byte = 0x12
)

// MarshalDoc encodes a document.
func MarshalDoc(d Doc) []byte {
	names := make([]string, 0, len(d))
	for k := range d {
		names = append(names, k)
	}
	sort.Strings(names)
	body := []byte{}
	for _, name := range names {
		switch v := d[name].(type) {
		case int64:
			body = append(body, bsonInt64)
			body = append(body, name...)
			body = append(body, 0)
			for i := 0; i < 8; i++ {
				body = append(body, byte(uint64(v)>>(8*i)))
			}
		case int:
			return MarshalDoc(normalize(d))
		case string:
			body = append(body, bsonString)
			body = append(body, name...)
			body = append(body, 0)
			n := uint32(len(v) + 1)
			body = append(body, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
			body = append(body, v...)
			body = append(body, 0)
		default:
			panic(fmt.Sprintf("db: unsupported BSON value %T", v))
		}
	}
	total := uint32(len(body) + 5)
	out := []byte{byte(total), byte(total >> 8), byte(total >> 16), byte(total >> 24)}
	out = append(out, body...)
	out = append(out, 0)
	return out
}

func normalize(d Doc) Doc {
	out := Doc{}
	for k, v := range d {
		if i, ok := v.(int); ok {
			out[k] = int64(i)
		} else {
			out[k] = v
		}
	}
	return out
}

// UnmarshalDoc decodes a document encoded by MarshalDoc.
func UnmarshalDoc(b []byte) (Doc, error) {
	if len(b) < 5 {
		return nil, fmt.Errorf("db: document too short")
	}
	total := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	if int(total) != len(b) {
		return nil, fmt.Errorf("db: document length %d does not match buffer %d", total, len(b))
	}
	if b[len(b)-1] != 0 {
		return nil, fmt.Errorf("db: missing document terminator")
	}
	d := Doc{}
	i := 4
	for i < len(b)-1 {
		typ := b[i]
		i++
		j := i
		for j < len(b) && b[j] != 0 {
			j++
		}
		if j >= len(b) {
			return nil, fmt.Errorf("db: unterminated field name")
		}
		name := string(b[i:j])
		i = j + 1
		switch typ {
		case bsonInt64:
			if i+8 > len(b) {
				return nil, fmt.Errorf("db: truncated int64 field %q", name)
			}
			var v uint64
			for k := 0; k < 8; k++ {
				v |= uint64(b[i+k]) << (8 * k)
			}
			d[name] = int64(v)
			i += 8
		case bsonString:
			if i+4 > len(b) {
				return nil, fmt.Errorf("db: truncated string header %q", name)
			}
			n := int(uint32(b[i]) | uint32(b[i+1])<<8 | uint32(b[i+2])<<16 | uint32(b[i+3])<<24)
			i += 4
			if n < 1 || i+n > len(b) {
				return nil, fmt.Errorf("db: bad string length %d for %q", n, name)
			}
			d[name] = string(b[i : i+n-1])
			i += n
		default:
			return nil, fmt.Errorf("db: unknown element type %#x", typ)
		}
	}
	return d, nil
}
