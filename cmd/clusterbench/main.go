// Command clusterbench drives the multi-machine fabric study: every
// shipped DeathStarBench-style topology on every ISA, serially and in
// parallel, asserting each point's fabric event log, summary table and
// Perfetto trace byte-identical across job counts before writing the
// per-topology latency figure table and the timing comparison
// (BENCH_cluster.json).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"svbench/internal/benchutil"
	"svbench/internal/cluster"
	"svbench/internal/figures"
	"svbench/internal/isa"
	"svbench/internal/sweep"
)

type report struct {
	Date       string  `json:"date"`
	HostCPUs   int     `json:"host_cpus"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Matrix     string  `json:"matrix"`
	Points     int     `json:"points"`
	Requests   int     `json:"requests_per_point"`
	JobsBefore int     `json:"jobs_before"`
	JobsAfter  int     `json:"jobs_after"`
	SecBefore  float64 `json:"seconds_before"`
	SecAfter   float64 `json:"seconds_after"`
	Speedup    float64 `json:"speedup"`
	Identical  bool    `json:"reports_identical"`
}

func points(seed uint64, requests int, rps float64) []cluster.Config {
	var cfgs []cluster.Config
	for _, top := range cluster.Topologies() {
		for _, arch := range []isa.Arch{isa.RV64, isa.CISC64} {
			cfgs = append(cfgs, cluster.Config{
				Topology: top,
				Arch:     arch,
				Requests: requests,
				RPS:      rps,
				Seed:     seed,
			})
		}
	}
	return cfgs
}

func main() {
	var (
		out      = flag.String("out", "BENCH_cluster.json", "output JSON file")
		jobs     = flag.Int("j", sweep.DefaultJobs(), "parallel worker count for the after run")
		seed     = flag.Uint64("seed", 7, "arrival-process seed")
		requests = flag.Int("requests", figures.ClusterRequests, "client requests per point")
		rps      = flag.Float64("rps", figures.ClusterRPS, "Poisson arrival rate")
		traceOut = flag.String("trace", "", "write the first point's Perfetto trace JSON to this file")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if err := sweep.ValidateJobs(*jobs); err != nil {
		fmt.Fprintln(os.Stderr, "clusterbench: -j:", err)
		os.Exit(2)
	}
	stopProf, err := benchutil.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clusterbench:", err)
		os.Exit(2)
	}

	run := func(j int) ([]*cluster.Report, float64) {
		t0 := time.Now()
		reps, err := cluster.RunMany(points(*seed, *requests, *rps), j)
		dt := time.Since(t0).Seconds()
		if err != nil {
			fmt.Fprintln(os.Stderr, "clusterbench:", err)
			os.Exit(1)
		}
		return reps, dt
	}

	fmt.Fprintf(os.Stderr, "clusterbench: serial study (-j 1)...\n")
	before, secBefore := run(1)
	fmt.Fprintf(os.Stderr, "clusterbench: %.2fs; parallel study (-j %d)...\n", secBefore, *jobs)
	after, secAfter := run(*jobs)

	identical := true
	for i := range before {
		bj, errB := before[i].TraceJSON()
		aj, errA := after[i].TraceJSON()
		if errB != nil || errA != nil {
			fmt.Fprintf(os.Stderr, "clusterbench: trace render: %v %v\n", errB, errA)
			os.Exit(1)
		}
		if before[i].EventLog != after[i].EventLog ||
			before[i].Table() != after[i].Table() ||
			before[i].StatsText != after[i].StatsText ||
			!bytes.Equal(bj, aj) {
			identical = false
			fmt.Fprintf(os.Stderr, "clusterbench: point %d DIFFERS between -j 1 and -j %d\n", i, *jobs)
		}
	}

	for _, rep := range before {
		fmt.Print(rep.Table())
	}
	if *traceOut != "" {
		js, err := before[0].TraceJSON()
		if err == nil {
			err = os.WriteFile(*traceOut, js, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "clusterbench:", err)
			os.Exit(1)
		}
	}

	rep := report{
		Date:       time.Now().UTC().Format("2006-01-02"),
		HostCPUs:   runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Matrix:     "topology {hotel-reservation, social-network} × arch {rv64, cisc64}",
		Points:     len(before),
		Requests:   *requests,
		JobsBefore: 1,
		JobsAfter:  *jobs,
		SecBefore:  secBefore,
		SecAfter:   secAfter,
		Speedup:    secBefore / secAfter,
		Identical:  identical,
	}
	js, _ := json.MarshalIndent(rep, "", "  ")
	js = append(js, '\n')
	if err := os.WriteFile(*out, js, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "clusterbench:", err)
		os.Exit(1)
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "clusterbench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "clusterbench: %.2fs -> %.2fs (%.2fx), identical=%v, %s\n",
		secBefore, secAfter, rep.Speedup, rep.Identical, *out)
	if !rep.Identical {
		os.Exit(1)
	}
}
