package riscv

import (
	"math/rand"
	"testing"
	"testing/quick"

	"svbench/internal/ir"
	"svbench/internal/ir/irtest"
	"svbench/internal/isa"
)

// randInst produces a random valid instruction for round-trip testing.
func randInst(r *rand.Rand) Inst {
	for {
		k := Kind(1 + r.Intn(int(kindCount)-1))
		in := Inst{
			Kind: k,
			Rd:   uint8(r.Intn(32)),
			Rs1:  uint8(r.Intn(32)),
			Rs2:  uint8(r.Intn(32)),
		}
		switch k {
		case KindLUI, KindAUIPC:
			in.Rs1, in.Rs2 = 0, 0
			in.Imm = int64(r.Intn(1 << 20))
			if in.Imm >= 1<<19 {
				in.Imm -= 1 << 20 // decoded as signed 20-bit
			}
		case KindJAL:
			in.Rs1, in.Rs2 = 0, 0
			in.Imm = int64(r.Intn(1<<20)-1<<19) * 2
		case KindJALR, KindLB, KindLH, KindLW, KindLD, KindLBU, KindLHU, KindLWU,
			KindADDI, KindADDIW, KindSLTI, KindSLTIU, KindXORI, KindORI, KindANDI:
			in.Rs2 = 0
			in.Imm = int64(r.Intn(1<<12) - 1<<11)
		case KindSB, KindSH, KindSW, KindSD:
			in.Rd = 0
			in.Imm = int64(r.Intn(1<<12) - 1<<11)
		case KindBEQ, KindBNE, KindBLT, KindBGE, KindBLTU, KindBGEU:
			in.Rd = 0
			in.Imm = int64(r.Intn(1<<12)-1<<11) * 2
		case KindSLLI, KindSRLI, KindSRAI:
			in.Rs2 = 0
			in.Imm = int64(r.Intn(64))
		case KindECALL, KindEBREAK, KindFENCE:
			in.Rd, in.Rs1, in.Rs2 = 0, 0, 0
		}
		return in
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		in := randInst(r)
		w := in.Encode()
		out, err := Decode(w)
		if err != nil {
			t.Logf("decode(%s = %#08x): %v", in, w, err)
			return false
		}
		if out != in {
			t.Logf("round trip mismatch: in=%+v out=%+v word=%#08x", in, out, w)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeGarbage(t *testing.T) {
	// Decoding arbitrary words must never panic; it either succeeds or
	// returns an error.
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		w := r.Uint32()
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("decode(%#08x) panicked: %v", w, p)
				}
			}()
			_, _ = Decode(w)
		}()
	}
}

// execute compiles the module and runs fn on a bare core, returning a0.
func execute(t *testing.T, m *ir.Module, fn string, args []int64) int64 {
	t.Helper()
	prog, err := Compile(m, 0x10000)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	mem := isa.NewMem(1 << 21)
	prog.LoadInto(mem)

	// Exit stub: addi a7, x0, 255; ecall
	stub := uint64(0x100)
	w1 := Inst{Kind: KindADDI, Rd: RegA7, Rs1: RegZero, Imm: 255}.Encode()
	w2 := Inst{Kind: KindECALL}.Encode()
	mem.Store(stub, 4, uint64(w1))
	mem.Store(stub+4, 4, uint64(w2))

	core := NewCore(mem, nil)
	core.Hook = func(c isa.Core) isa.EcallResult {
		if c.EcallNum() == 255 {
			return isa.EcallHalt
		}
		t.Fatalf("unexpected ecall %d", c.EcallNum())
		return isa.EcallHalt
	}
	core.SetPC(prog.SymAddr(fn))
	core.SetStackPtr(1 << 20)
	core.Regs[RegRA] = stub
	for i, a := range args {
		core.SetArg(i, uint64(a))
	}
	var trace []isa.TraceRec
	for steps := 0; ; steps++ {
		if steps > 5_000_000 {
			t.Fatal("execution did not halt")
		}
		var err error
		trace, err = core.Step(trace[:0])
		if err == ErrHalt {
			break
		}
		if err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	return int64(core.Regs[RegA0])
}

func TestCorpusMatchesInterpreter(t *testing.T) {
	m, cases := irtest.Corpus()
	for _, c := range cases {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			got := execute(t, m, c.Fn, c.Args)
			if got != c.Want {
				t.Fatalf("%s(%v) = %d, interpreter says %d", c.Fn, c.Args, got, c.Want)
			}
		})
	}
}

func TestTraceRecords(t *testing.T) {
	// A load-bearing sanity check on the trace: compile a tiny loop and
	// verify the trace contains the expected classes.
	b := ir.NewFunc("loop", 1)
	n := b.Param(0)
	i := b.Const(0)
	s := b.Const(0)
	loop, done := b.NewLabel("loop"), b.NewLabel("done")
	b.Label(loop)
	b.Br(ir.Ge, i, n, done)
	b.AddInto(s, s, i)
	b.AddIInto(i, i, 1)
	b.Jmp(loop)
	b.Label(done)
	b.Ret(s)
	m := ir.NewModule("t")
	m.AddFunc(b.Build())

	prog, err := Compile(m, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	mem := isa.NewMem(1 << 20)
	prog.LoadInto(mem)
	stub := uint64(0x100)
	mem.Store(stub, 4, uint64(Inst{Kind: KindADDI, Rd: RegA7, Rs1: RegZero, Imm: 255}.Encode()))
	mem.Store(stub+4, 4, uint64(Inst{Kind: KindECALL}.Encode()))
	core := NewCore(mem, nil)
	core.Hook = func(c isa.Core) isa.EcallResult { return isa.EcallHalt }
	core.SetPC(prog.Entry)
	core.SetStackPtr(1 << 19)
	core.Regs[RegRA] = stub
	core.SetArg(0, 10)

	var trace []isa.TraceRec
	for {
		var err error
		trace, err = core.Step(trace)
		if err == ErrHalt {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	var counts [12]int
	for _, r := range trace {
		counts[r.Class]++
		if r.Size != 4 {
			t.Fatalf("bad size %d", r.Size)
		}
	}
	if counts[isa.ClassBranch] < 11 {
		t.Errorf("expected >=11 branches, got %d", counts[isa.ClassBranch])
	}
	if counts[isa.ClassLoad] == 0 || counts[isa.ClassStore] == 0 {
		t.Errorf("expected loads and stores in trace: %v", counts)
	}
	if counts[isa.ClassRet] == 0 {
		t.Errorf("expected a return in trace")
	}
	if counts[isa.ClassEcall] != 1 {
		t.Errorf("expected exactly 1 ecall, got %d", counts[isa.ClassEcall])
	}
	if got := int64(core.Regs[RegA0]); got != 45 {
		t.Fatalf("loop(10) = %d, want 45", got)
	}
}

func TestLiMaterialization(t *testing.T) {
	vals := []int64{0, 1, -1, 2047, -2048, 2048, -2049, 0x7FFFF000, -0x80000000,
		0x80000000, 0x123456789ABCDEF0 >> 4, -0x123456789ABCDE, 1 << 62, -1 << 62}
	for _, v := range vals {
		b := ir.NewFunc("f", 0)
		b.Ret(b.Const(v))
		m := ir.NewModule("t")
		m.AddFunc(b.Build())
		if got := execute(t, m, "f", nil); got != v {
			t.Errorf("li %#x: got %#x", v, got)
		}
	}
}

func TestBigFrame(t *testing.T) {
	// Frame larger than 12-bit immediates exercises the large-offset
	// paths in the prologue, epilogue and OpFrame.
	b := ir.NewFunc("big", 0)
	buf := b.Buf("big", 8192)
	p := b.Frame(buf, 4096)
	v := b.Const(77)
	b.Store(p, 0, v, 8)
	b.Ret(b.Load(p, 0, 8))
	m := ir.NewModule("t")
	m.AddFunc(b.Build())
	if got := execute(t, m, "big", nil); got != 77 {
		t.Fatalf("got %d, want 77", got)
	}
}
