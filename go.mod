module svbench

go 1.22
