package harness

import (
	"fmt"

	"svbench/internal/faults"
	"svbench/internal/isa"
)

// ExperimentError is the structured failure record one experiment
// produces: which spec failed, in which phase of the methodology, the
// injected-fault counts at the time of failure (when a fault plan was
// active), and any partial measurements. Sweep drivers degrade
// gracefully on it — they record the failure and continue — instead of
// aborting the whole campaign on one bad spec.
type ExperimentError struct {
	Spec string
	Arch isa.Arch
	// Phase names the methodology step that failed: "spec" (validation),
	// "boot", "build", "setup", "checkpoint", "restore", "eval", "shape"
	// (wrong dump count), or "check" (functional response validation).
	Phase string
	// Faults snapshots the injector's counters at failure time; nil when
	// the spec ran without a fault plan.
	Faults *faults.Report
	// Partial holds any measurements completed before the failure (e.g.
	// a cold dump when the warm window never closed); nil otherwise.
	Partial *Result
	Err     error
}

// Error renders the failure with its phase and fault context.
func (e *ExperimentError) Error() string {
	msg := fmt.Sprintf("harness: %s [%s, %s]: %v", e.Spec, e.Arch, e.Phase, e.Err)
	if e.Faults != nil {
		msg += fmt.Sprintf(" (faults: %d injected, %d surfaced, %d retried)",
			e.Faults.Injected, e.Faults.Surfaced, e.Faults.Retried)
	}
	return msg
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *ExperimentError) Unwrap() error { return e.Err }
