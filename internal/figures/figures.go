// Package figures regenerates every figure and table of the thesis's
// evaluation section (§4.2) from the simulated infrastructure: it sweeps
// the experiment catalog across both ISAs once, then projects the results
// into the per-figure series. See DESIGN.md §3 for the experiment index.
package figures

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"svbench/internal/gemsys"
	"svbench/internal/harness"
	"svbench/internal/isa"
	"svbench/internal/qemu"
	"svbench/internal/stats"
	"svbench/internal/sweep"
)

// Data is one figure's or table's rows.
type Data struct {
	ID      string
	Title   string
	Columns []string
	Rows    []Row
}

// Row is one labeled series entry.
type Row struct {
	Label  string
	Values []float64
}

// Markdown renders the data as a GitHub table.
func (d Data) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s — %s\n\n", d.ID, d.Title)
	sb.WriteString("| " + strings.Join(append([]string{"benchmark"}, d.Columns...), " | ") + " |\n")
	sb.WriteString(strings.Repeat("|---", len(d.Columns)+1) + "|\n")
	for _, r := range d.Rows {
		cells := []string{r.Label}
		for _, v := range r.Values {
			if v == float64(int64(v)) {
				cells = append(cells, fmt.Sprintf("%.0f", v))
			} else {
				cells = append(cells, fmt.Sprintf("%.2f", v))
			}
		}
		sb.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	return sb.String()
}

// CSV renders the data as comma-separated rows.
func (d Data) CSV() string {
	var sb strings.Builder
	sb.WriteString("benchmark," + strings.Join(d.Columns, ",") + "\n")
	for _, r := range d.Rows {
		cells := []string{r.Label}
		for _, v := range r.Values {
			cells = append(cells, fmt.Sprintf("%g", v))
		}
		sb.WriteString(strings.Join(cells, ",") + "\n")
	}
	return sb.String()
}

// Results caches one full sweep: every spec on every ISA.
type Results struct {
	// Standalone and shop results by arch then spec name.
	Fn map[isa.Arch]map[string]*harness.Result
	// Hotel results by arch then function name.
	Hotel map[isa.Arch]map[string]*harness.Result
	// Failures records experiments that did not complete, sorted by
	// architecture then spec name so the failure report is deterministic
	// no matter which worker hit the failure first. The sweep degrades
	// gracefully: one bad spec no longer aborts the campaign, and
	// projections skip its rows.
	Failures []*harness.ExperimentError
}

// SweepOpts configures how the experiment matrix is executed. The zero
// value runs serially with memoization enabled — any worker count and
// either memoization setting produces identical Results.
type SweepOpts struct {
	// Jobs is the worker count; 0 means sweep.DefaultJobs().
	Jobs int
	// DisableMemo turns off cross-run checkpoint memoization.
	DisableMemo bool
	// Cache, when non-nil, replaces the per-sweep boot cache so
	// checkpoints memoize across sweeps and callers can read its
	// hit/miss counters. Ignored when DisableMemo is set.
	Cache *harness.BootCache
	// Log, when non-nil, receives one progress line per experiment.
	// Lines arrive in completion order, which may vary between runs —
	// the log stream is the one output outside the determinism contract.
	Log func(string)
}

// Sweep runs fnSpecs and hotelSpecs on each arch serially. It is the
// single-worker form of SweepWith, kept for API compatibility.
func Sweep(arches []isa.Arch, fnSpecs, hotelSpecs []harness.Spec, log func(string)) *Results {
	return SweepWith(arches, fnSpecs, hotelSpecs, SweepOpts{Jobs: 1, Log: log})
}

// SweepWith runs fnSpecs and hotelSpecs on each arch across a worker
// pool, degrading gracefully: a failed experiment lands in
// Results.Failures as a structured *harness.ExperimentError and the
// sweep continues. Results are merged in canonical matrix order (arch
// major, then fn specs, then hotel specs) and Failures are sorted, so
// the returned Results is identical for every Jobs/DisableMemo setting.
func SweepWith(arches []isa.Arch, fnSpecs, hotelSpecs []harness.Spec, opt SweepOpts) *Results {
	type slot struct {
		hotel bool
		arch  isa.Arch
		name  string
	}
	var tasks []sweep.Task
	var slots []slot
	for _, arch := range arches {
		cfg := gemsys.DefaultConfig(arch)
		for _, sp := range fnSpecs {
			tasks = append(tasks, sweep.Task{Cfg: cfg, Spec: sp})
			slots = append(slots, slot{arch: arch, name: sp.Name})
		}
		for _, sp := range hotelSpecs {
			tasks = append(tasks, sweep.Task{Cfg: cfg, Spec: sp})
			slots = append(slots, slot{hotel: true, arch: arch, name: sp.Name})
		}
	}

	out := sweep.Run(tasks, sweep.Options{
		Jobs:        opt.Jobs,
		DisableMemo: opt.DisableMemo,
		Cache:       opt.Cache,
		Log:         opt.Log,
	})

	res := &Results{
		Fn:    map[isa.Arch]map[string]*harness.Result{},
		Hotel: map[isa.Arch]map[string]*harness.Result{},
	}
	for _, arch := range arches {
		res.Fn[arch] = map[string]*harness.Result{}
		res.Hotel[arch] = map[string]*harness.Result{}
	}
	for i, o := range out {
		s := slots[i]
		if o.Err != nil {
			var ee *harness.ExperimentError
			if !errors.As(o.Err, &ee) {
				name := s.name
				if s.hotel {
					name = "hotel-" + name
				}
				ee = &harness.ExperimentError{Spec: name, Arch: s.arch, Phase: "run", Err: o.Err}
			}
			res.Failures = append(res.Failures, ee)
			continue
		}
		if s.hotel {
			res.Hotel[s.arch][s.name] = o.Result
		} else {
			res.Fn[s.arch][s.name] = o.Result
		}
	}
	sort.SliceStable(res.Failures, func(i, j int) bool {
		if res.Failures[i].Arch != res.Failures[j].Arch {
			return res.Failures[i].Arch < res.Failures[j].Arch
		}
		return res.Failures[i].Spec < res.Failures[j].Spec
	})
	return res
}

// Collect runs the complete sweep serially. Progress (one line per
// experiment) is reported through log, which may be nil. Failed
// experiments are recorded in Results.Failures and the sweep continues;
// Collect returns an error only when nothing could run at all.
func Collect(log func(string)) (*Results, error) {
	return CollectWith(SweepOpts{Jobs: 1, Log: log})
}

// CollectWith runs the complete sweep with explicit execution options.
// The returned Results is independent of opt.Jobs and opt.DisableMemo.
func CollectWith(opt SweepOpts) (*Results, error) {
	res := SweepWith([]isa.Arch{isa.RV64, isa.CISC64},
		append(harness.StandaloneSpecs(), harness.ShopSpecs()...),
		harness.HotelSpecs(harness.EngineCassandra), opt)
	if len(res.Fn[isa.RV64])+len(res.Fn[isa.CISC64])+
		len(res.Hotel[isa.RV64])+len(res.Hotel[isa.CISC64]) == 0 {
		return nil, fmt.Errorf("figures: every experiment failed (%d failures)", len(res.Failures))
	}
	return res, nil
}

// FnOrder is the standalone+shop presentation order of the figures.
var FnOrder = []string{
	"fibonacci-go", "fibonacci-python", "fibonacci-nodejs",
	"aes-go", "aes-python", "aes-nodejs",
	"auth-go", "auth-python", "auth-nodejs",
	"productcatalog-go", "shipping-go",
	"recommendation-python", "emailservice-python",
	"currency-nodejs", "payment-nodejs",
}

// HotelOrder is the hotel presentation order.
var HotelOrder = []string{"geo", "recommendation", "user", "reservation", "rate", "profile"}

// GoFnOrder lists the Go functions of Figs. 4.10/4.11.
var GoFnOrder = []string{
	"fibonacci-go", "aes-go", "auth-go", "productcatalog-go", "shipping-go",
	"geo", "recommendation", "user", "reservation", "rate", "profile",
}

func (r *Results) fn(arch isa.Arch, name string) *harness.Result {
	if res, ok := r.Fn[arch][name]; ok {
		return res
	}
	return r.Hotel[arch][name]
}

func (r *Results) project(id, title string, names []string, cols []string,
	get func(*harness.Result) []float64, arches ...isa.Arch) Data {
	d := Data{ID: id, Title: title, Columns: cols}
	for _, n := range names {
		var vals []float64
		missing := false
		for _, a := range arches {
			res := r.fn(a, n)
			if res == nil {
				// The experiment failed during Collect; leave its row out
				// rather than fabricating zeros.
				missing = true
				break
			}
			vals = append(vals, get(res)...)
		}
		if missing {
			continue
		}
		d.Rows = append(d.Rows, Row{Label: n, Values: vals})
	}
	return d
}

func coldWarm(f func(stats.CoreStats) float64) func(*harness.Result) []float64 {
	return func(r *harness.Result) []float64 {
		return []float64{f(r.Cold), f(r.Warm)}
	}
}

func cycles(s stats.CoreStats) float64 { return float64(s.Cycles) }
func insts(s stats.CoreStats) float64  { return float64(s.Insts) }
func l1i(s stats.CoreStats) float64    { return float64(s.L1IMisses) }
func l1d(s stats.CoreStats) float64    { return float64(s.L1DMisses) }
func l2(s stats.CoreStats) float64     { return float64(s.L2Misses) }

// Fig44: cycles, standalone + shop, RISC-V, cold vs warm.
func (r *Results) Fig44() Data {
	return r.project("fig4.4", "Cycles, standalone functions and online shop (RISC-V)",
		FnOrder, []string{"riscv cold", "riscv warm"}, coldWarm(cycles), isa.RV64)
}

// Fig45: cycles, hotel, RISC-V.
func (r *Results) Fig45() Data {
	return r.project("fig4.5", "Cycles, hotel application (RISC-V)",
		HotelOrder, []string{"riscv cold", "riscv warm"}, coldWarm(cycles), isa.RV64)
}

// Fig46: hotel L1 misses after cold execution (I and D).
func (r *Results) Fig46() Data {
	return r.project("fig4.6", "Hotel L1 misses, cold (RISC-V)",
		HotelOrder, []string{"l1 instruction", "l1 data"},
		func(res *harness.Result) []float64 { return []float64{l1i(res.Cold), l1d(res.Cold)} }, isa.RV64)
}

// Fig47: hotel L1 misses after warm execution.
func (r *Results) Fig47() Data {
	return r.project("fig4.7", "Hotel L1 misses, warm (RISC-V)",
		HotelOrder, []string{"l1 instruction", "l1 data"},
		func(res *harness.Result) []float64 { return []float64{l1i(res.Warm), l1d(res.Warm)} }, isa.RV64)
}

func pctSplit(i, d float64) []float64 {
	t := i + d
	if t == 0 {
		return []float64{0, 0}
	}
	return []float64{100 * i / t, 100 * d / t}
}

// Fig48: percentage split of hotel L1 misses, cold.
func (r *Results) Fig48() Data {
	return r.project("fig4.8", "Hotel L1 miss split %, cold (RISC-V)",
		HotelOrder, []string{"% instruction", "% data"},
		func(res *harness.Result) []float64 { return pctSplit(l1i(res.Cold), l1d(res.Cold)) }, isa.RV64)
}

// Fig49: percentage split of hotel L1 misses, warm.
func (r *Results) Fig49() Data {
	return r.project("fig4.9", "Hotel L1 miss split %, warm (RISC-V)",
		HotelOrder, []string{"% instruction", "% data"},
		func(res *harness.Result) []float64 { return pctSplit(l1i(res.Warm), l1d(res.Warm)) }, isa.RV64)
}

// Fig410: cycles of the Go functions, RISC-V.
func (r *Results) Fig410() Data {
	return r.project("fig4.10", "Cycles, Go functions (RISC-V)",
		GoFnOrder, []string{"riscv cold", "riscv warm"}, coldWarm(cycles), isa.RV64)
}

// Fig411: L2 misses of the Go functions, RISC-V.
func (r *Results) Fig411() Data {
	return r.project("fig4.11", "L2 misses, Go functions (RISC-V)",
		GoFnOrder, []string{"riscv cold", "riscv warm"}, coldWarm(l2), isa.RV64)
}

// Fig412: cycles, standalone + shop, x86.
func (r *Results) Fig412() Data {
	return r.project("fig4.12", "Cycles, standalone functions and online shop (x86)",
		FnOrder, []string{"x86 cold", "x86 warm"}, coldWarm(cycles), isa.CISC64)
}

// PyFnOrder lists the Python functions of Fig. 4.13.
var PyFnOrder = []string{"fibonacci-python", "aes-python", "auth-python",
	"recommendation-python", "emailservice-python"}

// Fig413: L2 misses of the Python functions, x86.
func (r *Results) Fig413() Data {
	return r.project("fig4.13", "L2 misses, Python functions (x86)",
		PyFnOrder, []string{"x86 cold", "x86 warm"}, coldWarm(l2), isa.CISC64)
}

// Fig414: cycles, hotel, x86.
func (r *Results) Fig414() Data {
	return r.project("fig4.14", "Cycles, hotel application (x86)",
		HotelOrder, []string{"x86 cold", "x86 warm"}, coldWarm(cycles), isa.CISC64)
}

// Fig415: cycles, RISC-V vs x86, standalone + shop.
func (r *Results) Fig415() Data {
	return r.project("fig4.15", "Cycles, RISC-V vs x86",
		FnOrder, []string{"x86 cold", "x86 warm", "riscv cold", "riscv warm"},
		coldWarm(cycles), isa.CISC64, isa.RV64)
}

// Fig416: executed instructions, RISC-V vs x86.
func (r *Results) Fig416() Data {
	return r.project("fig4.16", "Instructions, RISC-V vs x86",
		FnOrder, []string{"x86 cold", "x86 warm", "riscv cold", "riscv warm"},
		coldWarm(insts), isa.CISC64, isa.RV64)
}

// Fig417: L1 instruction misses, RISC-V vs x86.
func (r *Results) Fig417() Data {
	return r.project("fig4.17", "L1 instruction misses, RISC-V vs x86",
		FnOrder, []string{"x86 cold", "x86 warm", "riscv cold", "riscv warm"},
		coldWarm(l1i), isa.CISC64, isa.RV64)
}

// Fig418: L2 misses, RISC-V vs x86.
func (r *Results) Fig418() Data {
	return r.project("fig4.18", "L2 misses, RISC-V vs x86",
		FnOrder, []string{"x86 cold", "x86 warm", "riscv cold", "riscv warm"},
		coldWarm(l2), isa.CISC64, isa.RV64)
}

// Fig419: cycles, hotel, RISC-V vs x86.
func (r *Results) Fig419() Data {
	return r.project("fig4.19", "Cycles, hotel application, RISC-V vs x86",
		HotelOrder, []string{"x86 cold", "x86 warm", "riscv cold", "riscv warm"},
		coldWarm(cycles), isa.CISC64, isa.RV64)
}

// TableMPKI projects the derived warm-window miss-rate metrics — L1 MPKI,
// branch MPKI and L2 miss ratio — RISC-V vs x86, using the stats
// accessors rather than recomputing the ratios per figure.
func (r *Results) TableMPKI() Data {
	return r.project("table-mpki", "Warm-window miss rates, RISC-V vs x86",
		FnOrder,
		[]string{"riscv MPKI", "riscv branch MPKI", "riscv L2 miss ratio",
			"x86 MPKI", "x86 branch MPKI", "x86 L2 miss ratio"},
		func(res *harness.Result) []float64 {
			return []float64{res.Warm.MPKI(), res.Warm.BranchMPKI(), res.Warm.L2MissRatio()}
		}, isa.RV64, isa.CISC64)
}

// Fig420 runs the QEMU-mode MongoDB-vs-Cassandra comparison (x86).
func Fig420(nreq int) (Data, error) {
	d := Data{
		ID:      "fig4.20",
		Title:   "MongoDB vs Cassandra request latency under emulation (x86, ns)",
		Columns: []string{"cass cold", "cass warm", "mongo cold", "mongo warm"},
	}
	for _, fn := range HotelOrder {
		cass, err := qemu.Run(isa.CISC64, harness.HotelSpec(fn, harness.EngineCassandra), nreq)
		if err != nil {
			return d, fmt.Errorf("fig4.20 %s/cassandra: %w", fn, err)
		}
		mongo, err := qemu.Run(isa.CISC64, harness.HotelSpec(fn, harness.EngineMongo), nreq)
		if err != nil {
			return d, fmt.Errorf("fig4.20 %s/mongodb: %w", fn, err)
		}
		d.Rows = append(d.Rows, Row{Label: fn, Values: []float64{
			float64(cass[0].NS), float64(cass[nreq-1].NS),
			float64(mongo[0].NS), float64(mongo[nreq-1].NS),
		}})
	}
	return d, nil
}

// Table41 renders the common configuration parameters.
func Table41() Data {
	cfg := gemsys.DefaultConfig(isa.RV64)
	d := Data{ID: "table4.1", Title: "Common simulated system configuration", Columns: []string{"value"}}
	add := func(k string, v float64) { d.Rows = append(d.Rows, Row{Label: k, Values: []float64{v}}) }
	add("cores", float64(cfg.Cores))
	add("clock MHz", float64(cfg.ClockMHz))
	add("L1I bytes/core", float64(cfg.Hier.L1I.Size))
	add("L1I assoc", float64(cfg.Hier.L1I.Assoc))
	add("L1D bytes/core", float64(cfg.Hier.L1D.Size))
	add("L1D assoc", float64(cfg.Hier.L1D.Assoc))
	add("L2 bytes/core", float64(cfg.Hier.L2.Size))
	add("L2 assoc", float64(cfg.Hier.L2.Assoc))
	add("ROB entries", float64(cfg.O3.ROBSize))
	add("LQ entries", float64(cfg.O3.LQSize))
	add("SQ entries", float64(cfg.O3.SQSize))
	add("ITLB entries", float64(cfg.Hier.ITLB.Entries))
	add("DTLB entries", float64(cfg.Hier.DTLB.Entries))
	return d
}
