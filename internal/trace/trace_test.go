package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Kind: EvInstRetire})
	tr.EmitAt(EvCacheMiss, 0, 1, 2, 3, 4)
	tr.Reset()
	if tr.Enabled() || tr.Len() != 0 || tr.Cap() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer must behave as disabled")
	}
}

func TestRingOrderAndOverwrite(t *testing.T) {
	tr := NewTracer(4)
	for i := uint64(0); i < 6; i++ {
		tr.Emit(Event{Kind: EvInstRetire, Cycle: i})
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped != 2 {
		t.Fatalf("Dropped = %d, want 2", tr.Dropped)
	}
	evs := tr.Events()
	for i, ev := range evs {
		if want := uint64(i + 2); ev.Cycle != want {
			t.Fatalf("event %d cycle = %d, want %d (oldest-first order)", i, ev.Cycle, want)
		}
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped != 0 {
		t.Fatal("Reset did not clear the ring")
	}
}

func TestKindNames(t *testing.T) {
	for k := Kind(0); k < evKinds; k++ {
		if k.String() == "unknown" || k.String() == "" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Fatal("out-of-range kind must render as unknown")
	}
}

func TestDefaultCapacity(t *testing.T) {
	if got := NewTracer(0).Cap(); got != DefaultBufferEvents {
		t.Fatalf("default cap = %d, want %d", got, DefaultBufferEvents)
	}
}

func TestChromeJSONValidAndDeterministic(t *testing.T) {
	tr := NewTracer(64)
	syms := NewSymTable()
	syms.AddProgram("server", map[string]uint64{"handler": 0x100}, map[string]uint64{"handler": 0x200})
	tr.EmitAt(EvInstRetire, 1, 10, 0x104, 0, 0)
	tr.EmitAt(EvCacheMiss, 1, 12, 0x104, LvlL1D, 0xbeef)
	tr.EmitAt(EvSyscallEnter, 0, 13, 0x50, 0, 0)
	tr.EmitAt(EvSyscallExit, 0, 40, 0x50, 0, 0)
	tr.EmitAt(EvCtxSwitch, 0, 44, 0, 3, 0)
	tr.EmitAt(EvM5Dump, 1, 50, 0, 0, 0)

	a, err := ChromeJSON(tr.Events(), syms, tr.Dropped)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(a) {
		t.Fatal("export is not valid JSON")
	}
	b, err := ChromeJSON(tr.Events(), syms, tr.Dropped)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same events produced different bytes")
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a, &parsed); err != nil {
		t.Fatal(err)
	}
	// 6 events + 3 thread_name metadata rows (core0, core1, core0-functional).
	if len(parsed.TraceEvents) != 9 {
		t.Fatalf("got %d trace events, want 9", len(parsed.TraceEvents))
	}
	var foundFn bool
	for _, ev := range parsed.TraceEvents {
		if args, ok := ev["args"].(map[string]any); ok && args["fn"] == "server.handler" {
			foundFn = true
		}
	}
	if !foundFn {
		t.Fatal("no event resolved to server.handler")
	}
}

func TestSymTableResolve(t *testing.T) {
	s := NewSymTable()
	s.AddProgram("client", map[string]uint64{"main": 0x400, "data": 0x900},
		map[string]uint64{"main": 0x500})
	s.AddProgram("", map[string]uint64{"k_send": 0x100}, map[string]uint64{"k_send": 0x140})
	if _, name := s.Resolve(0x410); name != "client.main" {
		t.Fatalf("Resolve(0x410) = %q, want client.main", name)
	}
	if _, name := s.Resolve(0x120); name != "k_send" {
		t.Fatalf("Resolve(0x120) = %q, want k_send", name)
	}
	if idx, name := s.Resolve(0x900); idx != -1 || name != "" {
		t.Fatal("data symbol must not resolve (no FuncEnd)")
	}
	if idx, _ := s.Resolve(0x50); idx != -1 {
		t.Fatal("PC before every span must not resolve")
	}
	if idx, _ := s.Resolve(0x600); idx != -1 {
		t.Fatal("PC in a gap must not resolve")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	var nilSyms *SymTable
	if idx, _ := nilSyms.Resolve(1); idx != -1 {
		t.Fatal("nil symtable must not resolve")
	}
}
