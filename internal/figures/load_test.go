package figures

import (
	"reflect"
	"testing"

	"svbench/internal/isa"
)

// TestLoadFiguresDeterministicAcrossJobs extends the figures determinism
// contract to the load study: the throughput curve and keep-alive table
// projected with a serial pool must equal the ones projected with a
// parallel pool, point for point.
func TestLoadFiguresDeterministicAcrossJobs(t *testing.T) {
	c1, err := LoadCurve(isa.RV64, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	c4, err := LoadCurve(isa.RV64, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c1, c4) {
		t.Errorf("load curve differs between -j 1 and -j 4:\n%s\nvs\n%s", c1.Markdown(), c4.Markdown())
	}
	if len(c1.Rows) != len(LoadRPSGrid) {
		t.Fatalf("curve has %d rows, want %d", len(c1.Rows), len(LoadRPSGrid))
	}

	k1, err := LoadKeepAlive(isa.RV64, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	k4, err := LoadKeepAlive(isa.RV64, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(k1, k4) {
		t.Errorf("keep-alive table differs between -j 1 and -j 4:\n%s\nvs\n%s", k1.Markdown(), k4.Markdown())
	}

	// The structural keep-alive guarantees: reclaiming instantly churns
	// cold starts, outliving the window churns none.
	const churnCol = 1
	first, last := k1.Rows[0], k1.Rows[len(k1.Rows)-1]
	if first.Values[churnCol] == 0 {
		t.Errorf("keep-alive 0 produced no churn cold starts:\n%s", k1.Markdown())
	}
	if last.Values[churnCol] != 0 {
		t.Errorf("keep-alive beyond the run still churned cold starts:\n%s", k1.Markdown())
	}
}
