// Package gemsys implements the full-system simulation harness standing in
// for gem5: a two-core machine with the Table 4.1 microarchitecture, the
// miniature OS kernel, setup-mode (atomic) and evaluation-mode (detailed
// out-of-order) execution, checkpoints, and m5-style magic operations.
package gemsys

import (
	"svbench/internal/cpu"
	"svbench/internal/isa"
	"svbench/internal/mem"
	"svbench/internal/trace"
)

// Config describes the simulated system, mirroring Tables 4.1–4.3 of the
// thesis.
type Config struct {
	Arch     isa.Arch
	Cores    int
	ClockMHz int
	MemBytes int
	Hier     mem.HierConfig
	DRAM     mem.DRAMConfig
	O3       cpu.O3Config
	// RegionBytes is each process's address-space slice.
	RegionBytes uint64
	// Quantum is the functional scheduler's instruction quantum.
	Quantum int
	// Trace configures the observability layer (event tracing and the
	// sampling profiler). The zero value disables both; the stats
	// registry is always available.
	Trace trace.Options
	// OSLabel and KernelLabel reproduce the software rows of
	// Tables 4.1–4.3.
	OSLabel     string
	KernelLabel string
	Compiler    string
	DockerLabel string
}

// DefaultConfig returns the thesis configuration for the given ISA.
func DefaultConfig(arch isa.Arch) Config {
	c := Config{
		Arch:        arch,
		Cores:       2,
		ClockMHz:    1000,
		MemBytes:    32 << 20,
		Hier:        mem.DefaultHierConfig(),
		DRAM:        mem.DRAMConfig{Latency: 180, BusCycle: 16},
		O3:          cpu.DefaultO3Config(),
		RegionBytes: 4 << 20,
		Quantum:     256,
		KernelLabel: "Linux 5.15.59 (model)",
		DockerLabel: "Docker 25.0.0 (model)",
	}
	if arch == isa.RV64 {
		c.OSLabel = "Ubuntu Jammy 22.04.3 Preinstalled Server (model)"
		c.Compiler = "riscv64-unknown-linux-gnu-gcc 13.2.0 (model)"
	} else {
		c.OSLabel = "Ubuntu Jammy 22.04.4 Live Server (model)"
		c.Compiler = "gcc 11.4.0 (model)"
	}
	return c
}

// Memory map constants.
const (
	kernelBase = 0x10000
	slabBase   = 0x200000
	slabSize   = 0x200000
	firstProc  = 0x400000
)
