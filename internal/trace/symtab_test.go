package trace

import "testing"

// TestResolveBoundaries pins the PC→span lookup at every boundary the
// sort.Search in Resolve has to get right: first-span start, one below
// it, span ends (exclusive) with and without an adjacent successor, gaps
// between spans, and the very last end. The audit for this table found
// the existing search correct; the table keeps it that way.
func TestResolveBoundaries(t *testing.T) {
	s := NewSymTable()
	// Three functions: a and b adjacent, c after a gap.
	s.AddProgram("p",
		map[string]uint64{"a": 0x1000, "b": 0x1100, "c": 0x2000},
		map[string]uint64{"a": 0x1100, "b": 0x1180, "c": 0x2040})

	cases := []struct {
		name string
		pc   uint64
		want string // "" = unresolved
	}{
		{"below first span", 0x0FFF, ""},
		{"zero pc", 0x0, ""},
		{"first span start", 0x1000, "p.a"},
		{"inside first span", 0x10A0, "p.a"},
		{"last byte of a", 0x10FF, "p.a"},
		{"a's end == b's start", 0x1100, "p.b"},
		{"last byte of b", 0x117F, "p.b"},
		{"b's end, gap follows", 0x1180, ""},
		{"inside the gap", 0x1FFF, ""},
		{"c's start", 0x2000, "p.c"},
		{"last byte of c", 0x203F, "p.c"},
		{"c's end, table end", 0x2040, ""},
		{"far past everything", 0xFFFF_FFFF, ""},
	}
	for _, tc := range cases {
		idx, name := s.Resolve(tc.pc)
		if name != tc.want {
			t.Errorf("%s: Resolve(%#x) = %q, want %q", tc.name, tc.pc, name, tc.want)
		}
		if (tc.want == "") != (idx == -1) {
			t.Errorf("%s: Resolve(%#x) idx=%d inconsistent with name %q", tc.name, tc.pc, idx, name)
		}
		if idx >= 0 && s.Name(idx) != tc.want {
			t.Errorf("%s: Name(%d) = %q, want %q", tc.name, idx, s.Name(idx), tc.want)
		}
	}

	// Empty and nil tables resolve nothing.
	if idx, name := NewSymTable().Resolve(0x1000); idx != -1 || name != "" {
		t.Errorf("empty table resolved (%d, %q)", idx, name)
	}
	var nilTab *SymTable
	if idx, name := nilTab.Resolve(0x1000); idx != -1 || name != "" {
		t.Errorf("nil table resolved (%d, %q)", idx, name)
	}
}
