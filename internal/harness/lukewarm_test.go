package harness

import (
	"testing"

	"svbench/internal/isa"
)

func TestLukewarmExecution(t *testing.T) {
	// Interleaving auth-go with fibonacci-python on the same core must
	// leave auth-go's "warm" requests slower than its solo warm — the
	// §2.1 lukewarm effect: the interpreter's footprint evicts auth's
	// front-end state between invocations.
	specs := StandaloneSpecs()
	var authGo, fibPy *Spec
	for i := range specs {
		switch specs[i].Name {
		case "auth-go":
			authGo = &specs[i]
		case "fibonacci-python":
			fibPy = &specs[i]
		}
	}
	res, err := RunLukewarm(isa.RV64, *authGo, *fibPy)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("auth-go warm: solo=%d lukewarm=%d (l1i %d -> %d)",
		res.Solo, res.Lukewarm, res.SoloL1I, res.LukeL1I)
	if res.Lukewarm <= res.Solo {
		t.Fatalf("lukewarm (%d) must exceed solo warm (%d)", res.Lukewarm, res.Solo)
	}
	if res.LukeL1I <= res.SoloL1I {
		t.Fatalf("lukewarm L1I misses (%d) must exceed solo (%d)", res.LukeL1I, res.SoloL1I)
	}
}
