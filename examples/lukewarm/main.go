// Lukewarm execution: interleave two functions on the same core and watch
// the "warm" function lose its microarchitectural state between
// invocations — the effect the thesis's background section (§2.1)
// highlights from Schall et al., reproduced with the public API.
package main

import (
	"fmt"
	"log"

	"svbench"
)

func main() {
	specs := svbench.StandaloneSpecs()
	byName := map[string]svbench.Spec{}
	for _, sp := range specs {
		byName[sp.Name] = sp
	}

	pairs := [][2]string{
		{"auth-go", "fibonacci-python"},
		{"fibonacci-go", "aes-nodejs"},
		{"shipping-go", "auth-python"},
	}
	fmt.Println("function        interleaved with        solo-warm  lukewarm  slowdown  L1I misses")
	for _, p := range pairs {
		a, okA := byName[p[0]]
		b, okB := byName[p[1]]
		if !okA {
			a = findShop(p[0])
		}
		if !okB {
			b = findShop(p[1])
		}
		res, err := svbench.RunLukewarm(svbench.RV64, a, b)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s %-22s %9d %9d   %5.1f%%   %d -> %d\n",
			p[0], p[1], res.Solo, res.Lukewarm,
			100*(float64(res.Lukewarm)/float64(res.Solo)-1),
			res.SoloL1I, res.LukeL1I)
	}
}

func findShop(name string) svbench.Spec {
	for _, sp := range svbench.ShopSpecs() {
		if sp.Name == name {
			return sp
		}
	}
	panic("unknown spec " + name)
}
