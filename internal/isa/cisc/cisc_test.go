package cisc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"svbench/internal/ir"
	"svbench/internal/ir/irtest"
	"svbench/internal/isa"
)

func randInst(r *rand.Rand) Inst {
	for {
		k := Kind(1 + r.Intn(int(kindCount)-1))
		in := Inst{Kind: k, Dst: uint8(r.Intn(16)), Src: uint8(r.Intn(16)), Size: formSize(kindForm[k])}
		switch kindForm[k] {
		case formOp:
			in.Dst, in.Src = 0, 0
		case formRel32:
			in.Dst, in.Src = 0, 0
			in.Imm = int64(int32(r.Uint32()))
		case formModI8:
			in.Imm = int64(r.Intn(256))
		case formModI32:
			in.Imm = int64(int32(r.Uint32()))
		case formModI64:
			in.Imm = int64(r.Uint64())
		}
		return in
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func() bool {
		in := randInst(r)
		buf := in.Encode(nil)
		if len(buf) != int(in.Size) {
			t.Logf("size mismatch for %s: encoded %d, Size %d", in, len(buf), in.Size)
			return false
		}
		out, err := Decode(buf)
		if err != nil {
			t.Logf("decode(%s): %v", in, err)
			return false
		}
		if out != in {
			t.Logf("round trip mismatch: in=%+v out=%+v", in, out)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeGarbage(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		n := r.Intn(12)
		buf := make([]byte, n)
		r.Read(buf)
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("decode(%x) panicked: %v", buf, p)
				}
			}()
			_, _ = Decode(buf)
		}()
	}
}

// execute compiles the module and runs fn on a bare core, returning RAX.
func execute(t *testing.T, m *ir.Module, fn string, args []int64) int64 {
	t.Helper()
	prog, err := Compile(m, 0x10000)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	mem := isa.NewMem(1 << 21)
	prog.LoadInto(mem)

	// Exit stub: save the result in rdi, then movri32 rax, 255; syscall.
	stub := uint64(0x100)
	var sb []byte
	sb = Inst{Kind: KindMOVrr, Dst: RDI, Src: RAX}.Encode(sb)
	sb = Inst{Kind: KindMOVri32, Dst: RAX, Imm: 255}.Encode(sb)
	sb = Inst{Kind: KindSYSCALL}.Encode(sb)
	copy(mem.Data[stub:], sb)

	core := NewCore(mem, nil)
	core.Hook = func(c isa.Core) isa.EcallResult {
		switch c.EcallNum() {
		case 255:
			return isa.EcallHalt
		case PanicEcall:
			t.Fatalf("stack check failed")
		}
		t.Fatalf("unexpected syscall %d", c.EcallNum())
		return isa.EcallHalt
	}
	core.SetPC(prog.SymAddr(fn))
	// Push the stub as the return address, as a caller would.
	core.SetStackPtr(1 << 20)
	core.Regs[RSP] -= 8
	mem.Store(core.Regs[RSP], 8, stub)
	for i, a := range args {
		core.SetArg(i, uint64(a))
	}
	var trace []isa.TraceRec
	for steps := 0; ; steps++ {
		if steps > 5_000_000 {
			t.Fatal("execution did not halt")
		}
		var err error
		trace, err = core.Step(trace[:0])
		if err == ErrHalt {
			break
		}
		if err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	return int64(core.Regs[RDI])
}

func TestCorpusMatchesInterpreter(t *testing.T) {
	m, cases := irtest.Corpus()
	for _, c := range cases {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			got := execute(t, m, c.Fn, c.Args)
			if got != c.Want {
				t.Fatalf("%s(%v) = %d, interpreter says %d", c.Fn, c.Args, got, c.Want)
			}
		})
	}
}

func TestPLTIndirection(t *testing.T) {
	// Calls to Lib functions must route through a PLT stub: the trace
	// must contain an indirect jump through r11 between the caller and
	// the callee body.
	m := ir.NewModule("t")
	lib := ir.NewFunc("libadd", 2)
	lib.Ret(lib.Add(lib.Param(0), lib.Param(1)))
	f := lib.Build()
	f.Lib = true
	m.AddFunc(f)

	b := ir.NewFunc("main", 0)
	b.Ret(b.Call("libadd", b.Const(40), b.Const(2)))
	m.AddFunc(b.Build())

	prog, err := Compile(m, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	mem := isa.NewMem(1 << 20)
	prog.LoadInto(mem)
	stub := uint64(0x100)
	var sb []byte
	sb = Inst{Kind: KindMOVrr, Dst: RDI, Src: RAX}.Encode(sb)
	sb = Inst{Kind: KindMOVri32, Dst: RAX, Imm: 255}.Encode(sb)
	sb = Inst{Kind: KindSYSCALL}.Encode(sb)
	copy(mem.Data[stub:], sb)
	core := NewCore(mem, nil)
	core.Hook = func(c isa.Core) isa.EcallResult { return isa.EcallHalt }
	core.SetPC(prog.SymAddr("main"))
	core.SetStackPtr(1 << 19)
	core.Regs[RSP] -= 8
	mem.Store(core.Regs[RSP], 8, stub)

	var trace []isa.TraceRec
	for {
		var err error
		trace, err = core.Step(trace)
		if err == ErrHalt {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := int64(core.Regs[RDI]); got != 42 {
		t.Fatalf("main() = %d, want 42", got)
	}
	indirect := 0
	for _, r := range trace {
		if r.Class == isa.ClassJump && r.Src1 == R11 {
			indirect++
		}
	}
	if indirect == 0 {
		t.Fatal("no PLT indirect jump observed in trace")
	}
}

func TestStackCanaryTriggersOnSmash(t *testing.T) {
	// Overwrite the canary slot through a frame buffer overflow and
	// confirm __stack_chk_fail raises the panic ecall.
	// The canary sits at rbp-8, above the vreg slots, which sit above the
	// frame buffer. Build the function twice: the first pass reveals the
	// register count, from which the canary's offset from the buffer
	// follows; the second pass overwrites exactly that slot.
	build := func(canaryOff int64) *ir.Function {
		b := ir.NewFunc("smash", 0)
		buf := b.Buf("b", 16)
		p := b.Frame(buf, 0)
		v := b.Const(-1)
		b.Store(p, canaryOff, v, 8)
		b.Ret0()
		return b.Build()
	}
	probe := build(0)
	canaryOff := 8 + 8*int64(probe.NRegs) + probe.BufArea()
	m := ir.NewModule("t")
	m.AddFunc(build(canaryOff))

	prog, err := Compile(m, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	mem := isa.NewMem(1 << 21)
	prog.LoadInto(mem)
	core := NewCore(mem, nil)
	panicked := false
	core.Hook = func(c isa.Core) isa.EcallResult {
		if c.EcallNum() == PanicEcall {
			panicked = true
		}
		return isa.EcallHalt
	}
	var sb []byte
	sb = Inst{Kind: KindMOVri32, Dst: RAX, Imm: 255}.Encode(sb)
	sb = Inst{Kind: KindSYSCALL}.Encode(sb)
	copy(mem.Data[0x100:], sb)
	core.SetPC(prog.SymAddr("smash"))
	core.SetStackPtr(1 << 20)
	core.Regs[RSP] -= 8
	mem.Store(core.Regs[RSP], 8, 0x100)
	var trace []isa.TraceRec
	for steps := 0; steps < 1_000_000; steps++ {
		var err error
		trace, err = core.Step(trace[:0])
		if err == ErrHalt {
			break
		}
		if err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	if !panicked {
		t.Fatal("stack smash not detected")
	}
}
