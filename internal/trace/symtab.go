package trace

import "sort"

// Span is one function's address range in the simulated address space.
type Span struct {
	Name       string
	Start, End uint64
}

// SymTable resolves guest program counters to function names. The machine
// populates it from every loaded program image (the kernel plus each
// spawned process); names are prefixed with the owning program so the two
// cores' identically-named entry functions stay distinguishable
// ("server.handler", "client.main", "kernel.k_send").
type SymTable struct {
	spans  []Span
	sorted bool
}

// NewSymTable returns an empty table.
func NewSymTable() *SymTable { return &SymTable{} }

// AddProgram registers every function of one loaded image. syms maps
// symbol name to start address and funcEnd maps function name to end
// address (data symbols, present only in syms, are skipped). prefix
// namespaces the program ("server", "client", "kernel").
func (s *SymTable) AddProgram(prefix string, syms, funcEnd map[string]uint64) {
	if s == nil {
		return
	}
	for name, start := range syms {
		end, ok := funcEnd[name]
		if !ok || end <= start {
			continue
		}
		full := name
		if prefix != "" {
			full = prefix + "." + name
		}
		s.spans = append(s.spans, Span{Name: full, Start: start, End: end})
	}
	s.sorted = false
}

func (s *SymTable) ensureSorted() {
	if s.sorted {
		return
	}
	sort.Slice(s.spans, func(i, j int) bool {
		if s.spans[i].Start != s.spans[j].Start {
			return s.spans[i].Start < s.spans[j].Start
		}
		return s.spans[i].Name < s.spans[j].Name
	})
	s.sorted = true
}

// Resolve maps a PC to its function, returning the span index and name.
// Unknown PCs return (-1, ""). Spans are half-open [Start, End): a PC
// equal to a span's End belongs to the next span when the two are
// adjacent, and to no span at all otherwise — samples are never
// attributed to a neighboring symbol (see symtab_test.go's boundary
// table).
func (s *SymTable) Resolve(pc uint64) (int, string) {
	if s == nil || len(s.spans) == 0 {
		return -1, ""
	}
	s.ensureSorted()
	// First span starting after pc, then step back.
	i := sort.Search(len(s.spans), func(i int) bool { return s.spans[i].Start > pc })
	if i == 0 {
		return -1, ""
	}
	sp := s.spans[i-1]
	if pc >= sp.Start && pc < sp.End {
		return i - 1, sp.Name
	}
	return -1, ""
}

// Name returns the function name for a span index from Resolve.
func (s *SymTable) Name(idx int) string {
	if s == nil || idx < 0 || idx >= len(s.spans) {
		return ""
	}
	s.ensureSorted()
	return s.spans[idx].Name
}

// Len reports how many function spans are registered.
func (s *SymTable) Len() int {
	if s == nil {
		return 0
	}
	return len(s.spans)
}
