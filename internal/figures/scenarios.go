package figures

import (
	"fmt"

	"svbench/internal/gemsys"
	"svbench/internal/harness"
	"svbench/internal/isa"
	"svbench/internal/scenario"
)

// The chaos-scenario study (internal/scenario): every library scenario
// against every ISA, projected as a scenario × arch SLO matrix. Points
// run across the worker pool with a shared boot cache; the projected
// Data is identical for every jobs value.

// TableScenarios runs the scenario library on fibonacci-go for each arch
// and projects the phase-bucketed SLO matrix: during/post degradation,
// retry and failure counts, recovery time and the per-scenario verdict.
func TableScenarios(arches []isa.Arch, seed uint64, jobs int, log func(string)) (Data, error) {
	var spec harness.Spec
	found := false
	for _, sp := range harness.StandaloneSpecs() {
		if sp.Name == "fibonacci-go" {
			spec, found = sp, true
		}
	}
	if !found {
		return Data{}, fmt.Errorf("figures: fibonacci-go missing from catalog")
	}

	var cfgs []scenario.Config
	for _, s := range scenario.Catalog() {
		for _, arch := range arches {
			cfgs = append(cfgs, scenario.Config{
				Scenario: s,
				Cfg:      gemsys.DefaultConfig(arch),
				Spec:     spec,
				Seed:     seed,
			})
		}
	}
	results, errs := scenario.RunMany(cfgs, jobs)
	d := Data{
		ID:    "table-scenarios",
		Title: fmt.Sprintf("Chaos scenarios × arch: SLO verdicts, fibonacci-go (seed %d)", seed),
		Columns: []string{"pre p99 us", "during p99 us", "post p99 us",
			"retries", "failed", "recovery ms", "slo pass"},
	}
	for i, res := range results {
		cfg := cfgs[i]
		label := fmt.Sprintf("%s/%s", cfg.Scenario.Name, cfg.Cfg.Arch)
		if errs[i] != nil {
			return Data{}, fmt.Errorf("scenario point %s: %w", label, errs[i])
		}
		if log != nil {
			log(fmt.Sprintf("scenario %s: verdict %v, recovery %.3f ms",
				label, res.SLOPass, float64(res.RecoveryNS)/1e6))
		}
		pass := 0.0
		if res.SLOPass {
			pass = 1.0
		}
		d.Rows = append(d.Rows, Row{
			Label: label,
			Values: []float64{
				float64(res.Pre.Latency.P99) / 1e3,
				float64(res.During.Latency.P99) / 1e3,
				float64(res.Post.Latency.P99) / 1e3,
				float64(res.Load.Retries),
				float64(res.Load.Failed),
				float64(res.RecoveryNS) / 1e6,
				pass,
			},
		})
	}
	return d, nil
}
