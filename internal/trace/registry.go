package trace

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Registry is the hierarchical statistics registry. Components register
// named statistics under dotted paths ("machine.core1.l1d.misses"); the
// registry is the single source the machine's stat dumps and the
// gem5-style text export project from.
//
// Three statistic shapes exist, mirroring gem5's Stats library:
//
//   - Counter: a live pointer to a component's uint64 counter. The
//     component keeps incrementing its own field (zero registry overhead
//     on the hot path); the registry reads it at dump time.
//   - Func/Formula: a value computed at dump time (window cycles, CPI,
//     miss ratios).
//   - Dist: a power-of-two bucketed histogram the component observes
//     values into.
type Registry struct {
	byName map[string]*stat
}

type statKind uint8

const (
	kCounter statKind = iota
	kFunc
	kFormula
	kDist
)

type stat struct {
	name, desc string
	kind       statKind
	p          *uint64
	u64        func() uint64
	f64        func() float64
	dist       *Dist
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*stat{}}
}

func (r *Registry) add(s *stat) {
	if _, dup := r.byName[s.name]; dup {
		panic("trace: duplicate stat " + s.name)
	}
	r.byName[s.name] = s
}

// Counter registers a live counter pointer.
func (r *Registry) Counter(name, desc string, p *uint64) {
	r.add(&stat{name: name, desc: desc, kind: kCounter, p: p})
}

// Func registers a dump-time computed integer statistic.
func (r *Registry) Func(name, desc string, f func() uint64) {
	r.add(&stat{name: name, desc: desc, kind: kFunc, u64: f})
}

// Formula registers a dump-time computed derived statistic (ratios,
// rates) rendered as a float.
func (r *Registry) Formula(name, desc string, f func() float64) {
	r.add(&stat{name: name, desc: desc, kind: kFormula, f64: f})
}

// NewDist registers and returns a bucketed distribution.
func (r *Registry) NewDist(name, desc string) *Dist {
	d := &Dist{}
	r.add(&stat{name: name, desc: desc, kind: kDist, dist: d})
	return d
}

// U64 reads an integer statistic by name (0 when absent). Formulas are
// truncated.
func (r *Registry) U64(name string) uint64 {
	s, ok := r.byName[name]
	if !ok {
		return 0
	}
	switch s.kind {
	case kCounter:
		return *s.p
	case kFunc:
		return s.u64()
	case kFormula:
		return uint64(s.f64())
	case kDist:
		return s.dist.Count
	}
	return 0
}

// Value reads any statistic as a float, reporting whether it exists.
func (r *Registry) Value(name string) (float64, bool) {
	s, ok := r.byName[name]
	if !ok {
		return 0, false
	}
	switch s.kind {
	case kCounter:
		return float64(*s.p), true
	case kFunc:
		return float64(s.u64()), true
	case kFormula:
		return s.f64(), true
	case kDist:
		return float64(s.dist.Count), true
	}
	return 0, false
}

// Names returns every registered name, sorted.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Text renders the registry as a gem5-style stats.txt block: one line per
// statistic, sorted by name, value column aligned, description after a
// '#'. Distributions expand into ::bucket sub-rows. Output is a pure
// function of the registered values, so same-seed runs export identical
// bytes.
func (r *Registry) Text(label string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "---------- Begin Simulation Statistics (%s) ----------\n", label)
	for _, name := range r.Names() {
		s := r.byName[name]
		switch s.kind {
		case kCounter:
			fmt.Fprintf(&sb, "%-52s %20d  # %s\n", s.name, *s.p, s.desc)
		case kFunc:
			fmt.Fprintf(&sb, "%-52s %20d  # %s\n", s.name, s.u64(), s.desc)
		case kFormula:
			fmt.Fprintf(&sb, "%-52s %20.6f  # %s\n", s.name, s.f64(), s.desc)
		case kDist:
			d := s.dist
			fmt.Fprintf(&sb, "%-52s %20d  # %s (samples)\n", s.name+"::samples", d.Count, s.desc)
			if d.Count > 0 {
				fmt.Fprintf(&sb, "%-52s %20d  # %s (min)\n", s.name+"::min", d.Min, s.desc)
				fmt.Fprintf(&sb, "%-52s %20d  # %s (max)\n", s.name+"::max", d.Max, s.desc)
				fmt.Fprintf(&sb, "%-52s %20.6f  # %s (mean)\n", s.name+"::mean", d.Mean(), s.desc)
			}
			for i, c := range d.Buckets {
				if c == 0 {
					continue
				}
				lo, hi := bucketBounds(i)
				fmt.Fprintf(&sb, "%-52s %20d  # %s [%d,%d)\n",
					fmt.Sprintf("%s::%d-%d", s.name, lo, hi), c, s.desc, lo, hi)
			}
		}
	}
	fmt.Fprintf(&sb, "---------- End Simulation Statistics   ----------\n")
	return sb.String()
}

// distBuckets is the fixed bucket count: power-of-two buckets covering
// the whole uint64 range ([0,1), [1,2), [2,4), ... [2^62,2^63), rest).
const distBuckets = 65

// Dist is a power-of-two bucketed histogram of uint64 samples.
type Dist struct {
	Buckets [distBuckets]uint64
	Count   uint64
	Sum     uint64
	Min     uint64
	Max     uint64
}

func bucketIdx(v uint64) int {
	if v == 0 {
		return 0
	}
	return bits.Len64(v) // v in [2^(n-1), 2^n) -> bucket n
}

func bucketBounds(i int) (lo, hi uint64) {
	if i == 0 {
		return 0, 1
	}
	return uint64(1) << (i - 1), uint64(1) << i
}

// Observe adds one sample.
func (d *Dist) Observe(v uint64) {
	if d == nil {
		return
	}
	if d.Count == 0 || v < d.Min {
		d.Min = v
	}
	if v > d.Max {
		d.Max = v
	}
	d.Count++
	d.Sum += v
	d.Buckets[bucketIdx(v)]++
}

// Mean returns the sample mean (0 when empty).
func (d *Dist) Mean() float64 {
	if d.Count == 0 {
		return 0
	}
	return float64(d.Sum) / float64(d.Count)
}

// Reset clears the distribution.
func (d *Dist) Reset() {
	if d == nil {
		return
	}
	*d = Dist{}
}
