package cluster

import (
	"container/heap"
	"fmt"
	"math"
	"strings"

	"svbench/internal/db"
	"svbench/internal/faults"
	"svbench/internal/gemsys"
	"svbench/internal/ir"
	"svbench/internal/isa"
	"svbench/internal/langrt"
	"svbench/internal/libc"
	"svbench/internal/trace"
	"svbench/internal/vswarm"
)

// Config parameterizes one fabric run.
type Config struct {
	Topology Topology
	Arch     isa.Arch
	// Requests is the number of client requests to drive through the
	// frontend; RPS their Poisson arrival rate.
	Requests int
	RPS      float64
	Seed     uint64
	// QuantumNS bounds how far one machine runs ahead of the global
	// clock in a single scheduling step (0 = DefaultQuantumNS).
	QuantumNS uint64
	// TraceEvents sizes the fabric's event ring (0 = derived from
	// Requests).
	TraceEvents int
}

// DefaultQuantumNS is the fabric scheduling quantum: the same order of
// magnitude as a link latency, so a machine never runs further ahead of
// its peers than one network hop hides.
const DefaultQuantumNS = 20_000

// bootBudget bounds each machine's host-driven boot (runtime init up to
// the ready handshake); runBudgetPerReq scales the whole-run instruction
// guard with the request count.
const (
	bootBudget      = 600_000_000
	runBudgetBase   = 2_000_000_000
	runBudgetPerReq = 200_000_000
)

// evKind discriminates fabric events.
type evKind uint8

const (
	evArrive  evKind = iota // client request enters the fabric
	evDeliver               // message reaches its destination machine
	evResume                // a machine's expired quantum continues
)

// event is one entry of the global DES queue. Ties on `at` break by
// insertion sequence, making pop order fully deterministic.
type event struct {
	at, seq uint64
	kind    evKind
	src     int // sending node; -1 = client
	dst     int // destination node; -1 = client
	ch      int // destination channel on dst (deliver into a node)
	respTo  int // requests: resp channel back on src; -1 otherwise
	reqID   int // client request id; -1 otherwise
	payload []byte
	msgID   uint64
	netNS   uint64 // queue + tx + latency the message spent in flight
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// dep is one resolved remote dependency of a node: the target node and
// the local request/response channel pair bound to it.
type dep struct {
	target    int
	req, resp int
}

// caller is one pending request a node owes a reply to, in arrival
// order. Replies drain this queue FIFO — matching the serial serve loop
// of every guest server.
type caller struct {
	src    int // -1 = client
	respTo int
	reqID  int
}

// outMsg is one message a guest committed to a remote-bound channel
// during its last run, stamped with the machine-local commit time.
type outMsg struct {
	ch      int
	payload []byte
	stamp   uint64 // machine-local VirtNS at commit
	delay   uint64 // fault-injection delay carried from the kernel
}

// node is one booted machine of the fabric.
type node struct {
	idx     int
	spec    ServiceSpec
	m       *gemsys.Machine
	ingress int
	egress  int
	deps    []dep
	byReqCh map[int]dep
	epoch   uint64 // machine-local VirtNS at global time zero
	parked  bool   // quantum expired with runnable work; resume queued
	callers []caller
	outbox  []outMsg
}

type linkKey struct{ src, dst int }

type linkState struct {
	Link
	busyUntil uint64
}

// Fabric couples the machines of one topology under a single global
// virtual clock. All methods are single-goroutine; determinism comes
// from the (time, sequence)-ordered event queue and per-link FIFO state.
type Fabric struct {
	cfg      Config
	top      Topology
	quantum  uint64
	nodes    []*node
	frontend int
	links    map[linkKey]*linkState
	overrides map[linkKey]Link

	events eventHeap
	evSeq  uint64
	msgSeq uint64

	arrivals []uint64
	started  []uint64
	lats     []uint64
	done     int

	booting   bool
	bootReady int

	log    strings.Builder
	tracer *trace.Tracer
	reg    *trace.Registry

	// registered counters
	nMsgs, nBytes, nDeliveries, nDone, instr uint64
	latD, queueD, transitD                   *trace.Dist
}

func newStore(engine string) (db.Store, error) {
	switch engine {
	case "mongodb":
		return db.NewMongo(), nil
	case "mariadb":
		return db.NewMariaDB(), nil
	case "cassandra":
		return db.NewCassandra(db.CassandraConfig{}), nil
	case "memcached":
		return db.NewMemcached(db.MemcachedConfig{}), nil
	}
	return nil, fmt.Errorf("cluster: unknown datastore engine %q", engine)
}

// NewFabric validates the topology, boots every machine to its ready
// state, and aligns the machines' local clocks on global time zero.
func NewFabric(cfg Config) (*Fabric, error) {
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("cluster: Requests must be positive")
	}
	if cfg.RPS <= 0 {
		return nil, fmt.Errorf("cluster: RPS must be positive")
	}
	f := &Fabric{
		cfg:       cfg,
		top:       cfg.Topology,
		quantum:   cfg.QuantumNS,
		frontend:  cfg.Topology.service(cfg.Topology.Frontend),
		links:     map[linkKey]*linkState{},
		overrides: map[linkKey]Link{},
	}
	if f.quantum == 0 {
		f.quantum = DefaultQuantumNS
	}
	capEvents := cfg.TraceEvents
	if capEvents == 0 {
		capEvents = 4096 + 256*cfg.Requests
	}
	f.tracer = trace.NewTracer(capEvents)
	f.reg = trace.NewRegistry()
	f.reg.Counter("cluster.net.msgs", "messages committed to fabric links", &f.nMsgs)
	f.reg.Counter("cluster.net.bytes", "payload bytes across fabric links", &f.nBytes)
	f.reg.Counter("cluster.net.deliveries", "messages delivered to machines", &f.nDeliveries)
	f.reg.Counter("cluster.requests.done", "client requests completed", &f.nDone)
	f.reg.Counter("cluster.instructions", "guest instructions executed across all machines", &f.instr)
	f.latD = f.reg.NewDist("cluster.latencyNS", "end-to-end client request latency")
	f.queueD = f.reg.NewDist("cluster.net.queueNS", "per-message link queueing delay")
	f.transitD = f.reg.NewDist("cluster.net.transitNS", "per-message queue+tx+latency time in flight")
	for _, l := range f.top.Links {
		f.overrides[linkKey{f.endpoint(l.Src), f.endpoint(l.Dst)}] = l.Link
	}
	if err := f.build(); err != nil {
		return nil, err
	}
	if err := f.boot(); err != nil {
		return nil, err
	}
	f.arrivals = genArrivals(cfg.Requests, cfg.RPS, cfg.Seed)
	f.started = make([]uint64, cfg.Requests)
	f.lats = make([]uint64, cfg.Requests)
	return f, nil
}

func (f *Fabric) endpoint(name string) int {
	if name == Client {
		return -1
	}
	return f.top.service(name)
}

// build constructs every machine: channels first (a fixed, documented
// order — ingress, egress, then one req/resp pair per dependency, then
// any datastore-local pair — so channel ids are deterministic), then the
// guest programs.
func (f *Fabric) build() error {
	flavor := libc.ForArch(string(f.cfg.Arch))
	for i := range f.top.Services {
		spec := f.top.Services[i]
		mcfg := gemsys.DefaultConfig(f.cfg.Arch)
		m, err := gemsys.New(mcfg)
		if err != nil {
			return fmt.Errorf("cluster: %s: %w", spec.Name, err)
		}
		n := &node{idx: i, spec: spec, m: m, byReqCh: map[int]dep{}}
		n.ingress = m.K.NewChannel()
		n.egress = m.K.NewChannel()
		m.K.BindRemote(n.egress)

		var depNames []string
		switch spec.Kind {
		case Function:
			depNames = spec.Deps
		case Orchestrator:
			seen := map[string]bool{}
			for _, stage := range spec.Stages {
				for _, c := range stage {
					if !seen[c.Service] {
						seen[c.Service] = true
						depNames = append(depNames, c.Service)
					}
				}
			}
		}
		pairs := make([]ChanPair, 0, len(depNames))
		chanByName := map[string]ChanPair{}
		for _, dn := range depNames {
			req := m.K.NewChannel()
			resp := m.K.NewChannel()
			m.K.BindRemote(req)
			d := dep{target: f.top.service(dn), req: req, resp: resp}
			n.deps = append(n.deps, d)
			n.byReqCh[req] = d
			pairs = append(pairs, ChanPair{Req: req, Resp: resp})
			chanByName[dn] = ChanPair{Req: req, Resp: resp}
		}

		idx := i
		m.K.OnEgress = func(ch int, payload []byte, delay uint64) {
			f.onEgress(idx, ch, payload, delay)
		}

		switch spec.Kind {
		case Function, Orchestrator:
			rt := spec.Runtime
			if rt == "" {
				rt = langrt.GoRT
			}
			var wmod *ir.Module
			if spec.Kind == Function {
				wmod = spec.Fn(pairs)
			} else {
				wmod = orchestratorModule(spec.Name, spec.Stages, chanByName)
			}
			server, err := langrt.BuildServer(rt, flavor, wmod, vswarm.Handler)
			if err != nil {
				return fmt.Errorf("cluster: %s: build server: %w", spec.Name, err)
			}
			if _, err := m.Spawn("server", server, "main", 1,
				[]uint64{uint64(n.ingress), uint64(n.egress)}); err != nil {
				return fmt.Errorf("cluster: %s: spawn: %w", spec.Name, err)
			}
		case Datastore:
			store, err := newStore(spec.Engine)
			if err != nil {
				return fmt.Errorf("cluster: %s: %w", spec.Name, err)
			}
			if spec.Seed != nil {
				spec.Seed(store)
			}
			lreq := m.K.NewChannel()
			lresp := m.K.NewChannel()
			m.K.Bind(lreq, lresp, db.NewService(store))
			relay := relayModule(n.ingress, lreq, lresp, n.egress)
			if _, err := m.Spawn("relay", relay, "main", 1, nil); err != nil {
				return fmt.Errorf("cluster: %s: spawn relay: %w", spec.Name, err)
			}
		}
		f.nodes = append(f.nodes, n)
	}
	return nil
}

// boot runs every machine to its post-init quiescent state (language
// runtimes initialized, servers blocked on their first receive) and
// records each machine's local clock as its epoch: global time T maps to
// machine-local time epoch+T from here on. The ready handshake every
// langrt server sends on its egress channel is consumed here.
func (f *Fabric) boot() error {
	f.booting = true
	defer func() { f.booting = false }()
	servers := 0
	for _, n := range f.nodes {
		if n.spec.Kind != Datastore {
			servers++
		}
		if err := n.m.RunUntilIdle(bootBudget); err != nil {
			return fmt.Errorf("cluster: boot %s: %w", n.spec.Name, err)
		}
		n.epoch = n.m.VirtNS()
	}
	if f.bootReady != servers {
		return fmt.Errorf("cluster: %d of %d servers signalled ready at boot",
			f.bootReady, servers)
	}
	return nil
}

// onEgress receives every message a guest commits to a remote-bound
// channel. During boot it consumes the ready handshakes; afterwards it
// queues the message on the node's outbox, stamped with the commit time.
func (f *Fabric) onEgress(nodeIdx, ch int, payload []byte, delay uint64) {
	if f.booting {
		f.bootReady++
		return
	}
	n := f.nodes[nodeIdx]
	n.outbox = append(n.outbox, outMsg{ch: ch, payload: payload, stamp: n.m.VirtNS(), delay: delay})
}

// genArrivals returns Poisson arrival times (virtual ns) for n requests
// at the given rate, from the shared deterministic PRNG family.
func genArrivals(n int, rps float64, seed uint64) []uint64 {
	rng := faults.NewPRNG(seed)
	mean := 1e9 / rps
	t := 0.0
	out := make([]uint64, n)
	for i := range out {
		t += -math.Log(1-rng.Float64()) * mean
		out[i] = uint64(t)
	}
	return out
}

func (f *Fabric) push(ev *event) {
	ev.seq = f.evSeq
	f.evSeq++
	heap.Push(&f.events, ev)
}

func (f *Fabric) endpointName(i int) string {
	if i < 0 {
		return Client
	}
	return f.top.Services[i].Name
}

func (f *Fabric) linkFor(src, dst int) *linkState {
	k := linkKey{src, dst}
	l, ok := f.links[k]
	if !ok {
		base := f.top.DefaultLink
		if base.LatencyNS == 0 && base.GbitPS == 0 {
			base = Link{LatencyNS: DefaultLatencyNS, GbitPS: DefaultGbitPS}
		}
		if ov, has := f.overrides[k]; has {
			base = ov
		}
		l = &linkState{Link: base}
		f.links[k] = l
	}
	return l
}

// send commits a message to the (src,dst) link at global time t: it
// queues behind the link's busy time, pays serialization and propagation
// delay, and schedules the delivery event. Each directed link has a
// single sender whose commit stamps are monotonic, so FIFO per link is
// exact.
func (f *Fabric) send(src, dst, ch, respTo, reqID int, payload []byte, t, extraDelay uint64) {
	l := f.linkFor(src, dst)
	start := t
	if l.busyUntil > start {
		start = l.busyUntil
	}
	tx := l.TxNS(len(payload))
	l.busyUntil = start + tx
	netNS := (start - t) + tx + l.LatencyNS + extraDelay
	f.msgSeq++
	id := f.msgSeq
	f.nMsgs++
	f.nBytes += uint64(len(payload))
	f.queueD.Observe(start - t)
	f.transitD.Observe(netNS)
	fmt.Fprintf(&f.log, "%d send %s->%s msg=%d bytes=%d q=%d\n",
		t, f.endpointName(src), f.endpointName(dst), id, len(payload), start-t)
	f.tracer.EmitAt(trace.EvNetSend, coreByte(src), t, 0, id, uint64(len(payload)))
	f.push(&event{
		at: t + netNS, kind: evDeliver, src: src, dst: dst, ch: ch,
		respTo: respTo, reqID: reqID, payload: payload, msgID: id, netNS: netNS,
	})
}

func coreByte(endpoint int) uint8 {
	if endpoint < 0 {
		return 255
	}
	return uint8(endpoint)
}

// Run drives the DES to completion: all arrivals delivered, all
// machines quiescent, all replies back at the client.
func (f *Fabric) Run() (*Report, error) {
	budget := uint64(runBudgetBase) + uint64(runBudgetPerReq)*uint64(f.cfg.Requests)
	for i, at := range f.arrivals {
		f.push(&event{at: at, kind: evArrive, src: -1, dst: f.frontend, reqID: i, respTo: -1})
	}
	for f.events.Len() > 0 {
		ev := heap.Pop(&f.events).(*event)
		var err error
		switch ev.kind {
		case evArrive:
			f.started[ev.reqID] = ev.at
			fmt.Fprintf(&f.log, "%d arrive req=%d\n", ev.at, ev.reqID)
			f.tracer.EmitAt(trace.EvClusterArrive, 255, ev.at, 0, uint64(ev.reqID), 0)
			f.send(-1, f.frontend, f.nodes[f.frontend].ingress, -1, ev.reqID,
				append([]byte(nil), f.top.Request...), ev.at, 0)
		case evDeliver:
			err = f.deliver(ev)
		case evResume:
			err = f.runNode(f.nodes[ev.dst], ev.at, true)
		}
		if err != nil {
			return nil, err
		}
		if f.instr > budget {
			return nil, fmt.Errorf("cluster: %s run exceeded %d instructions", f.top.Name, budget)
		}
	}
	if f.done != f.cfg.Requests {
		return nil, fmt.Errorf("cluster: %s deadlocked: %d of %d requests completed",
			f.top.Name, f.done, f.cfg.Requests)
	}
	return f.report(), nil
}

// deliver hands a message to its destination. A reply reaching the
// client completes its request; a message into a node is injected into
// the destination channel (recording the caller for ingress requests)
// and the node runs unless it is parked on an expired quantum.
func (f *Fabric) deliver(ev *event) error {
	if ev.dst < 0 {
		lat := ev.at - f.started[ev.reqID]
		f.lats[ev.reqID] = lat
		f.done++
		f.nDone++
		f.latD.Observe(lat)
		fmt.Fprintf(&f.log, "%d done req=%d lat=%d\n", ev.at, ev.reqID, lat)
		f.tracer.EmitAt(trace.EvClusterDone, 255, ev.at, 0, uint64(ev.reqID), lat)
		return nil
	}
	n := f.nodes[ev.dst]
	f.nDeliveries++
	fmt.Fprintf(&f.log, "%d deliver %s msg=%d net=%d\n",
		ev.at, n.spec.Name, ev.msgID, ev.netNS)
	f.tracer.EmitAt(trace.EvNetDeliver, coreByte(ev.dst), ev.at, 0, ev.msgID, ev.netNS)
	if ev.ch == n.ingress {
		n.callers = append(n.callers, caller{src: ev.src, respTo: ev.respTo, reqID: ev.reqID})
	}
	n.m.AdvanceClock(n.epoch + ev.at)
	n.m.K.Inject(ev.ch, ev.payload)
	if n.parked {
		return nil
	}
	return f.runNode(n, ev.at, false)
}

// runNode advances one machine by at most a quantum, then routes
// everything it sent. If the quantum expired with work remaining the
// node parks and a resume event is queued at the machine's own clock.
func (f *Fabric) runNode(n *node, t uint64, isResume bool) error {
	if isResume {
		n.parked = false
	}
	before := n.m.VirtNS()
	done, err := n.m.RunQuantum(f.quantum)
	f.instr += n.m.VirtNS() - before
	if err != nil {
		return fmt.Errorf("cluster: %s: %w", n.spec.Name, err)
	}
	out := n.outbox
	n.outbox = n.outbox[:0]
	for _, om := range out {
		gt := om.stamp - n.epoch
		if om.ch == n.egress {
			if len(n.callers) == 0 {
				return fmt.Errorf("cluster: %s replied with no pending caller", n.spec.Name)
			}
			c := n.callers[0]
			n.callers = n.callers[1:]
			if c.src < 0 {
				f.send(n.idx, -1, 0, -1, c.reqID, om.payload, gt, om.delay)
			} else {
				f.send(n.idx, c.src, c.respTo, -1, -1, om.payload, gt, om.delay)
			}
			continue
		}
		d, ok := n.byReqCh[om.ch]
		if !ok {
			return fmt.Errorf("cluster: %s sent on unrouted channel %d", n.spec.Name, om.ch)
		}
		f.send(n.idx, d.target, f.nodes[d.target].ingress, d.resp, -1, om.payload, gt, om.delay)
	}
	if !done {
		n.parked = true
		f.push(&event{at: n.m.VirtNS() - n.epoch, kind: evResume, src: n.idx, dst: n.idx, respTo: -1, reqID: -1})
	}
	return nil
}
