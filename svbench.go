// Package svbench is the public API of the serverless/RISC-V benchmarking
// infrastructure: a from-scratch, stdlib-only reproduction of
// "Benchmarking Support for RISC-V CPUs in Serverless Computing"
// (Pournaras, 2024). See DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-versus-measured record.
//
// The three entry points most users need:
//
//   - RunFunction executes one serverless function experiment (setup →
//     checkpoint → detailed cold/warm evaluation) on a chosen ISA.
//   - CollectFigures sweeps the full catalog and projects every figure of
//     the thesis's evaluation.
//   - NewMachine builds a bare simulated machine for custom programs
//     written against the ir package's builder.
package svbench

import (
	"svbench/internal/cluster"
	"svbench/internal/faults"
	"svbench/internal/figures"
	"svbench/internal/gemsys"
	"svbench/internal/harness"
	"svbench/internal/isa"
	"svbench/internal/langrt"
	"svbench/internal/loadgen"
	"svbench/internal/qemu"
	"svbench/internal/scenario"
	"svbench/internal/stats"
	"svbench/internal/trace"
)

// Re-exported architecture identifiers.
const (
	RV64   = isa.RV64   // the RISC-V target
	CISC64 = isa.CISC64 // the x86-class comparison target
)

// Core types, aliased from the implementation packages so downstream code
// can name them.
type (
	// Arch selects an instruction set architecture.
	Arch = isa.Arch
	// Spec describes one function experiment.
	Spec = harness.Spec
	// Result is a cold/warm measurement for one function.
	Result = harness.Result
	// Env gives workload builders access to machine services.
	Env = harness.Env
	// Config is the simulated system configuration (Table 4.1).
	Config = gemsys.Config
	// Machine is a simulated two-core full system.
	Machine = gemsys.Machine
	// CoreStats is one stats window's counters.
	CoreStats = stats.CoreStats
	// Runtime names a language runtime model.
	Runtime = langrt.Runtime
	// FigureData is a rendered figure/table.
	FigureData = figures.Data
	// Results caches a full experiment sweep.
	Results = figures.Results
	// Latency is a QEMU-mode request measurement.
	Latency = qemu.Latency
	// HotelEngine selects the Hotel application's database backend.
	HotelEngine = harness.HotelEngine
	// LukewarmResult compares solo-warm against interleaved execution.
	LukewarmResult = harness.LukewarmResult
	// SamplingConfig selects SMARTS-style sampled detailed simulation for
	// the evaluation phase (Spec.Sampling); the zero value is full detail.
	// See docs/perf.md.
	SamplingConfig = gemsys.SamplingConfig
	// SampleMeta reports a sampled window's extrapolation quality
	// (measured windows, coverage, CPI confidence proxy).
	SampleMeta = stats.SampleMeta
	// FaultPlan is a deterministic, seed-driven fault-injection plan.
	FaultPlan = faults.Plan
	// FaultRule is one probabilistic fault rule of a plan.
	FaultRule = faults.Rule
	// FaultReport is the fault/recovery ledger of one run.
	FaultReport = faults.Report
	// Retry is the load generator's recovery policy.
	Retry = faults.Retry
	// ExperimentError is the structured failure one experiment returns.
	ExperimentError = harness.ExperimentError
	// TraceOptions configures the observability layer (event tracing,
	// profiling) of a run; see docs/tracing.md.
	TraceOptions = trace.Options
	// Profile is a sampled guest hot-function profile.
	Profile = trace.Profile
	// ProfileEntry is one function's flat/cumulative sample counts.
	ProfileEntry = trace.ProfileEntry
	// TraceEvent is one typed event of the machine's trace ring.
	TraceEvent = trace.Event
	// StatsRegistry is the machine's hierarchical statistics registry.
	StatsRegistry = trace.Registry
	// LoadConfig describes one open-loop load run (internal/loadgen).
	LoadConfig = loadgen.Config
	// LoadReport is one load run's complete result: invocation records,
	// latency percentiles, cold/warm mix, stats text and trace JSON.
	LoadReport = loadgen.Report
	// LoadProcess selects the arrival process of a load run.
	LoadProcess = loadgen.Process
	// LoadInvocation is one request's lifecycle through the pool.
	LoadInvocation = loadgen.Invocation
	// FaultWindow is a half-open [Start, End) activation window in
	// virtual time; the zero window means "always active".
	FaultWindow = faults.Window
	// Scenario is a declarative chaos scenario: a load shape plus timed
	// fault phases, an SLO and a recovery deadline (internal/scenario).
	Scenario = scenario.Scenario
	// ScenarioPhase is one timed fault window of a scenario.
	ScenarioPhase = scenario.Phase
	// ScenarioSLO is the latency/error objective a scenario is judged by.
	ScenarioSLO = scenario.SLO
	// ScenarioConfig binds a scenario to a function, system config and seed.
	ScenarioConfig = scenario.Config
	// ScenarioResult is one scenario run's phase-bucketed verdict.
	ScenarioResult = scenario.Result
	// ScenarioBucket is the per-phase (pre/during/post) latency summary.
	ScenarioBucket = scenario.Bucket
	// ClusterTopology is a multi-machine service graph (internal/cluster).
	ClusterTopology = cluster.Topology
	// ClusterConfig binds a topology to an ISA, load and seed.
	ClusterConfig = cluster.Config
	// ClusterReport is one fabric run's result: per-request latencies,
	// network traffic, the deterministic event log and trace export.
	ClusterReport = cluster.Report
)

// Arrival processes for LoadConfig.Arrival.
const (
	LoadPoisson = loadgen.Poisson
	LoadBursty  = loadgen.Bursty
)

// Runtime models.
const (
	GoRT   = langrt.GoRT
	PyRT   = langrt.PyRT
	NodeRT = langrt.NodeRT
)

// Hotel database backends.
const (
	EngineCassandra = harness.EngineCassandra
	EngineMongo     = harness.EngineMongo
	EngineMariaDB   = harness.EngineMariaDB
)

// Fault kinds for custom FaultPlan rules (internal/faults is not
// importable from outside the module).
const (
	FaultDropMsg      = faults.DropMsg
	FaultCorruptMsg   = faults.CorruptMsg
	FaultDelayMsg     = faults.DelayMsg
	FaultErrorReply   = faults.ErrorReply
	FaultLatencySpike = faults.LatencySpike
	FaultOutage       = faults.Outage
)

// Symbolic channel targets for IPC fault rules.
const (
	FaultAnyChannel = faults.AnyChannel
	FaultClientReq  = faults.ClientReq
	FaultClientResp = faults.ClientResp
)

// DefaultConfig returns the thesis's simulated system configuration for
// the given ISA (Tables 4.1–4.3).
func DefaultConfig(arch Arch) Config { return gemsys.DefaultConfig(arch) }

// NewMachine boots a bare simulated machine.
func NewMachine(cfg Config) (*Machine, error) { return gemsys.New(cfg) }

// RunFunction executes one experiment with the default configuration.
func RunFunction(arch Arch, spec Spec) (*Result, error) { return harness.Run(arch, spec) }

// RunFunctionWith executes one experiment with an explicit configuration
// (design-space exploration).
func RunFunctionWith(cfg Config, spec Spec) (*Result, error) { return harness.RunWith(cfg, spec) }

// RunEmulated executes one experiment under functional (QEMU-style)
// emulation, returning per-request latencies.
func RunEmulated(arch Arch, spec Spec, requests int) ([]Latency, error) {
	return qemu.Run(arch, spec, requests)
}

// StandaloneSpecs returns the nine standalone function experiments.
func StandaloneSpecs() []Spec { return harness.StandaloneSpecs() }

// ShopSpecs returns the six Online Shop experiments.
func ShopSpecs() []Spec { return harness.ShopSpecs() }

// HotelSpecs returns the six Hotel experiments on the given backend.
func HotelSpecs(engine HotelEngine) []Spec { return harness.HotelSpecs(engine) }

// HotelSpec returns one Hotel experiment.
func HotelSpec(fn string, engine HotelEngine) Spec { return harness.HotelSpec(fn, engine) }

// AllSpecs returns the complete experiment catalog.
func AllSpecs() []Spec { return harness.AllSpecs() }

// CollectFigures sweeps every experiment on both ISAs; log (optional)
// receives one progress line per experiment. Failed experiments are
// recorded in Results.Failures; the sweep continues past them.
func CollectFigures(log func(string)) (*Results, error) { return figures.Collect(log) }

// SweepOpts configures how CollectFiguresWith executes the experiment
// matrix (worker count, checkpoint memoization, progress log). The
// returned Results is identical for every setting.
type SweepOpts = figures.SweepOpts

// CollectFiguresWith is CollectFigures with explicit execution options:
// opt.Jobs workers (0 = GOMAXPROCS) with memoized boot checkpoints
// unless opt.DisableMemo is set.
func CollectFiguresWith(opt SweepOpts) (*Results, error) { return figures.CollectWith(opt) }

// DefaultSamplingConfig returns the tuned sampling default used by
// cmd/samplebench and the figures sampling table.
func DefaultSamplingConfig() SamplingConfig { return gemsys.DefaultSamplingConfig() }

// ParseSamplingConfig parses "uU-wW-dD" or "U,W,D" into a validated
// SamplingConfig ("" or "full-detail" turn sampling off).
func ParseSamplingConfig(s string) (SamplingConfig, error) { return gemsys.ParseSamplingConfig(s) }

// DefaultFaultPlan returns the standard chaos-testing plan for a seed:
// client-path message drops, delays and response corruption plus service
// error replies and latency spikes. The same seed always reproduces the
// same fault schedule (see docs/faults.md).
func DefaultFaultPlan(seed uint64) *FaultPlan { return faults.DefaultPlan(seed) }

// DefaultRetry returns the standard recovery policy for the load
// generator: bounded attempts with exponential backoff and a per-attempt
// deadline, all in virtual time.
func DefaultRetry() *Retry { return faults.DefaultRetry() }

// RunLoad replays cfg's seeded open-loop arrival process against a pool
// of function instances with keep-alive idle reclamation and returns the
// tail-latency/cold-start report. The report is a pure function of cfg
// (see docs/loadgen.md).
func RunLoad(cfg LoadConfig) (*LoadReport, error) { return loadgen.Run(cfg) }

// RunLoadMany executes one load run per config across a worker pool with
// a shared boot cache; each report is byte-identical to a solo RunLoad.
func RunLoadMany(cfgs []LoadConfig, jobs int) ([]*LoadReport, []error) {
	return loadgen.RunMany(cfgs, jobs)
}

// ScenarioCatalog returns the library of named chaos scenarios, sorted
// by name (see docs/scenarios.md).
func ScenarioCatalog() []Scenario { return scenario.Catalog() }

// ScenarioNames returns the catalog's scenario names, sorted.
func ScenarioNames() []string { return scenario.Names() }

// ScenarioByName looks a scenario up in the catalog.
func ScenarioByName(name string) (Scenario, error) { return scenario.ByName(name) }

// RunScenario executes one chaos scenario: it arms the scenario's timed
// fault plan against an open-loop load run and returns the
// phase-bucketed report with the SLO verdict and recovery time. The
// result is a pure function of cfg.
func RunScenario(cfg ScenarioConfig) (*ScenarioResult, error) { return scenario.Run(cfg) }

// RunScenarioMany executes one scenario run per config across a worker
// pool with a shared boot cache; each result is byte-identical to a
// solo RunScenario.
func RunScenarioMany(cfgs []ScenarioConfig, jobs int) ([]*ScenarioResult, []error) {
	return scenario.RunMany(cfgs, jobs)
}

// ClusterTopologies returns the shipped multi-machine topologies
// (hotel-reservation and social-network; see DESIGN.md §4d).
func ClusterTopologies() []ClusterTopology { return cluster.Topologies() }

// RunCluster executes one multi-machine fabric run: the topology's
// machines advance under a single global clock, exchanging RPCs over
// the modeled network. Same config ⇒ byte-identical report.
func RunCluster(cfg ClusterConfig) (*ClusterReport, error) { return cluster.Run(cfg) }

// RunClusterMany executes independent fabric runs across a worker pool;
// each result is byte-identical to a solo RunCluster.
func RunClusterMany(cfgs []ClusterConfig, jobs int) ([]*ClusterReport, error) {
	return cluster.RunMany(cfgs, jobs)
}

// RunLukewarm interleaves two functions on the measured core and reports
// how much of spec's warm state survives (the §2.1 lukewarm effect).
func RunLukewarm(arch Arch, spec, other Spec) (*LukewarmResult, error) {
	return harness.RunLukewarm(arch, spec, other)
}
