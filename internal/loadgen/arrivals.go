package loadgen

import (
	"math"

	"svbench/internal/faults"
)

// Process selects the arrival process the generator replays.
type Process int

const (
	// Poisson draws exponential interarrival gaps — the memoryless
	// open-loop traffic model serverless platforms are usually sized
	// against.
	Poisson Process = iota
	// Bursty groups arrivals into back-to-back batches at the same mean
	// rate — the trace-shaped worst case for queueing and cold starts.
	Bursty
)

// String names the process for report headers.
func (p Process) String() string {
	switch p {
	case Poisson:
		return "poisson"
	case Bursty:
		return "bursty"
	}
	return "unknown"
}

// DefaultBurst is the arrivals-per-batch of the Bursty process when
// Config.Burst is zero.
const DefaultBurst = 8

// Arrivals materializes the seeded arrival process of cfg (only RPS,
// Duration, Seed, Arrival and Burst are read) — exported so other
// schedulers (internal/autoscale) replay the exact same invocation
// streams the keep-alive pool sees.
func Arrivals(cfg Config) []uint64 { return genArrivals(cfg) }

// genArrivals materializes the seeded arrival process: virtual-ns
// timestamps, nondecreasing, all strictly below cfg.Duration. The stream
// is a pure function of (seed, process, rate, duration), which is the
// root of the engine's determinism guarantee — replaying it against the
// same pool policy reproduces every queueing decision bit-for-bit.
func genArrivals(cfg Config) []uint64 {
	if cfg.RPS <= 0 || cfg.Duration == 0 {
		return nil
	}
	rng := faults.NewPRNG(cfg.Seed)
	meanGapNS := 1e9 / cfg.RPS
	var out []uint64
	switch cfg.Arrival {
	case Bursty:
		burst := cfg.Burst
		if burst <= 0 {
			burst = DefaultBurst
		}
		// Batches of `burst` simultaneous arrivals, exponentially spaced
		// so the long-run rate still matches RPS.
		t := 0.0
		for {
			gap := expGap(rng, meanGapNS*float64(burst))
			t += gap
			if uint64(t) >= cfg.Duration {
				return out
			}
			for i := 0; i < burst; i++ {
				out = append(out, uint64(t))
			}
		}
	default: // Poisson
		t := 0.0
		for {
			t += expGap(rng, meanGapNS)
			if uint64(t) >= cfg.Duration {
				return out
			}
			out = append(out, uint64(t))
		}
	}
}

// expGap draws one exponential interarrival gap with the given mean (ns).
func expGap(rng *faults.PRNG, meanNS float64) float64 {
	// 1-Float64() is in (0,1], so the log argument never hits zero.
	return -math.Log(1-rng.Float64()) * meanNS
}
