// Design-space exploration: sweep microarchitectural parameters (L2 size,
// ROB depth) for one function and report how cold and warm executions
// respond — the follow-on study the thesis names as future work (§6).
package main

import (
	"fmt"
	"log"

	"svbench"
)

func main() {
	// The interpreted runtimes' dispatch loops are icache-hungry: shrink
	// the L1I and watch warm executions degrade (the microarchitectural
	// sensitivity the thesis positions this infrastructure to study).
	pyFib := svbench.StandaloneSpecs()[1] // fibonacci-python
	fmt.Println("L1I size sweep (fibonacci-python, RISC-V):")
	for _, kb := range []int{4, 8, 16, 32, 64} {
		cfg := svbench.DefaultConfig(svbench.RV64)
		cfg.Hier.L1I.Size = kb << 10
		res, err := svbench.RunFunctionWith(cfg, pyFib)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  L1I=%3d KiB: cold=%-9d warm=%-8d l1i-misses(warm)=%d\n",
			kb, res.Cold.Cycles, res.Warm.Cycles, res.Warm.L1IMisses)
	}

	fmt.Println("\nROB depth sweep (aes-go, RISC-V):")
	aes := svbench.StandaloneSpecs()[3] // aes-go
	for _, rob := range []int{32, 64, 128, 192, 256} {
		cfg := svbench.DefaultConfig(svbench.RV64)
		cfg.O3.ROBSize = rob
		res, err := svbench.RunFunctionWith(cfg, aes)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  ROB=%3d: cold=%-8d warm=%-8d warm CPI=%.2f\n",
			rob, res.Cold.Cycles, res.Warm.Cycles, res.Warm.CPI())
	}
}
