package langrt

import (
	"fmt"

	"svbench/internal/ir"
	"svbench/internal/kernel"
)

// BuildVM constructs the interpreter function
//
//	py_vm(code, nInsns, regs, locals, globtab) -> value
//
// in the portable IR. The interpreter is a classic switch-dispatch loop:
// fetch the 16-byte instruction, decode its fields, then walk a balanced
// branch tree to the handler — the big, branchy, icache-hungry code body
// that gives the interpreted runtimes their characteristic front-end
// behaviour on the simulated cores.
func BuildVM(m *ir.Module) *ir.Function {
	b := ir.NewFunc("py_vm", 5)
	code, nIns, regs, locals, globtab := b.Param(0), b.Param(1), b.Param(2), b.Param(3), b.Param(4)

	pc := b.Const(0)
	loop := b.NewLabel("loop")
	next := b.NewLabel("next")
	out := b.NewLabel("out")

	handlers := make([]string, vOpCount)
	for op := uint8(0); op < vOpCount; op++ {
		handlers[op] = b.NewLabel(fmt.Sprintf("op%d", op))
	}

	b.Label(loop)
	b.Br(ir.Geu, pc, nIns, out)
	// Fetch and decode.
	off := b.ShlI(pc, 4)
	insn := b.Add(code, off)
	op := b.LoadU(insn, 0, 1)
	dstI := b.LoadU(insn, 2, 2)
	aI := b.LoadU(insn, 4, 2)
	bI := b.LoadU(insn, 6, 2)
	imm := b.Load(insn, 8, 8)
	// Operand reads.
	dAddr := b.Add(regs, b.ShlI(dstI, 3))
	av := b.Load(b.Add(regs, b.ShlI(aI, 3)), 0, 8)
	bv := b.Load(b.Add(regs, b.ShlI(bI, 3)), 0, 8)

	// Balanced dispatch tree over the opcode.
	var emitTree func(lo, hi int)
	emitTree = func(lo, hi int) {
		if lo == hi {
			b.Jmp(handlers[lo])
			return
		}
		mid := (lo + hi + 1) / 2
		hiLbl := b.NewLabel("d")
		b.BrI(ir.Geu, op, int64(mid), hiLbl)
		emitTree(lo, mid-1)
		b.Label(hiLbl)
		emitTree(mid, hi)
	}
	emitTree(0, int(vOpCount)-1)

	wr := func(v ir.Reg) {
		b.Store(dAddr, 0, v, 8)
		b.Jmp(next)
	}

	// --- Handlers ---
	b.Label(handlers[vNop])
	b.Jmp(next)
	b.Label(handlers[vConst])
	wr(imm)
	b.Label(handlers[vMov])
	wr(av)

	type binf func(x, y ir.Reg) ir.Reg
	bins := []struct {
		op uint8
		f  binf
	}{
		{vAdd, b.Add}, {vSub, b.Sub}, {vMul, b.Mul}, {vDiv, b.Div},
		{vRem, b.Rem}, {vDivU, b.DivU}, {vRemU, b.RemU}, {vAnd, b.And},
		{vOr, b.Or}, {vXor, b.Xor}, {vShl, b.Shl}, {vShr, b.Shr}, {vSra, b.Sra},
	}
	for _, bf := range bins {
		b.Label(handlers[bf.op])
		wr(bf.f(av, bv))
	}
	immBins := []struct {
		op uint8
		f  binf
	}{
		{vAddI, b.Add}, {vMulI, b.Mul}, {vAndI, b.And}, {vOrI, b.Or},
		{vXorI, b.Xor}, {vShlI, b.Shl}, {vShrI, b.Shr}, {vSraI, b.Sra},
	}
	for _, bf := range immBins {
		b.Label(handlers[bf.op])
		wr(bf.f(av, imm))
	}
	for c := 0; c < 8; c++ {
		b.Label(handlers[vSetBase+uint8(c)])
		wr(b.Set(ir.Cond(c), av, bv))
	}
	loads := []struct {
		op  uint8
		sz  uint8
		uns bool
	}{
		{vLd8, 1, false}, {vLd8u, 1, true}, {vLd16, 2, false}, {vLd16u, 2, true},
		{vLd32, 4, false}, {vLd32u, 4, true}, {vLd64, 8, true},
	}
	for _, lf := range loads {
		b.Label(handlers[lf.op])
		addr := b.Add(av, imm)
		var v ir.Reg
		if lf.uns {
			v = b.LoadU(addr, 0, lf.sz)
		} else {
			v = b.Load(addr, 0, lf.sz)
		}
		wr(v)
	}
	stores := []struct {
		op uint8
		sz uint8
	}{{vSt8, 1}, {vSt16, 2}, {vSt32, 4}, {vSt64, 8}}
	for _, sf := range stores {
		b.Label(handlers[sf.op])
		addr := b.Add(av, imm)
		b.Store(addr, 0, bv, sf.sz)
		b.Jmp(next)
	}
	for c := 0; c < 8; c++ {
		b.Label(handlers[vBrBase+uint8(c)])
		taken := b.NewLabel("taken")
		b.Br(ir.Cond(c), av, bv, taken)
		b.Jmp(next)
		b.Label(taken)
		b.MovInto(pc, imm)
		b.Jmp(loop)
	}
	b.Label(handlers[vJmp])
	b.MovInto(pc, imm)
	b.Jmp(loop)

	b.Label(handlers[vLeaL])
	wr(b.Add(locals, imm))
	b.Label(handlers[vLeaG])
	gaddr := b.Add(globtab, b.ShlI(imm, 3))
	wr(b.Load(gaddr, 0, 8))

	// vEcall: imm selects the (static) environment call; arguments sit in
	// consecutive VM registers starting at aI, bI holds the count.
	b.Label(handlers[vEcall])
	{
		argAddr := b.Add(regs, b.ShlI(aI, 3))
		a0 := b.Load(argAddr, 0, 8)
		a1 := b.Load(argAddr, 8, 8)
		a2 := b.Load(argAddr, 16, 8)
		_ = bI
		dispatch := []struct {
			num   int64
			nargs int
		}{
			{kernel.SysSend, 3}, {kernel.SysRecv, 3}, {kernel.SysWrite, 2},
			{kernel.SysSbrk, 1}, {kernel.SysClock, 0}, {kernel.SysYield, 0},
		}
		endE := b.NewLabel("ecend")
		for _, d := range dispatch {
			skip := b.NewLabel("ecn")
			b.BrI(ir.Ne, imm, d.num, skip)
			var r ir.Reg
			switch d.nargs {
			case 0:
				r = b.Ecall(d.num)
			case 1:
				r = b.Ecall(d.num, a0)
			case 2:
				r = b.Ecall(d.num, a0, a1)
			default:
				r = b.Ecall(d.num, a0, a1, a2)
			}
			b.Store(dAddr, 0, r, 8)
			b.Jmp(endE)
			b.Label(skip)
		}
		// Unknown ecall from bytecode: raise the panic host call.
		b.EcallV(kernel.HPanic)
		b.Label(endE)
		b.Jmp(next)
	}

	// vCallB: native builtin call (the interpreted runtime's C surface).
	// Only builtins that exist in this container's program get dispatch
	// entries; a handler cannot reference functions it does not link.
	b.Label(handlers[vCallB])
	{
		argAddr := b.Add(regs, b.ShlI(aI, 3))
		a0 := b.Load(argAddr, 0, 8)
		a1 := b.Load(argAddr, 8, 8)
		a2 := b.Load(argAddr, 16, 8)
		a3 := b.Load(argAddr, 24, 8)
		a4 := b.Load(argAddr, 32, 8)
		endC := b.NewLabel("cbend")
		for bi, bt := range builtins {
			if m.Func(bt.name) == nil {
				continue
			}
			skip := b.NewLabel("cbn")
			b.BrI(ir.Ne, imm, int64(bi), skip)
			var r ir.Reg
			switch bt.arity {
			case 1:
				r = b.Call(bt.name, a0)
			case 2:
				r = b.Call(bt.name, a0, a1)
			case 3:
				r = b.Call(bt.name, a0, a1, a2)
			case 4:
				r = b.Call(bt.name, a0, a1, a2, a3)
			default:
				r = b.Call(bt.name, a0, a1, a2, a3, a4)
			}
			b.Store(dAddr, 0, r, 8)
			b.Jmp(endC)
			b.Label(skip)
		}
		b.EcallV(kernel.HPanic)
		b.Label(endC)
		b.Jmp(next)
	}

	b.Label(handlers[vRet])
	b.Ret(av)

	b.Label(next)
	b.AddIInto(pc, pc, 1)
	b.Jmp(loop)
	b.Label(out)
	b.Ret(b.Const(0))
	return b.Build()
}
