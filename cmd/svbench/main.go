// Command svbench runs a single serverless function experiment through the
// full methodology (setup → checkpoint → detailed cold/warm evaluation) and
// prints the measured statistics, or — with -emulate — times requests under
// functional (QEMU-style) emulation.
//
// Usage:
//
//	svbench -list
//	svbench -fn fibonacci-go [-arch rv64|cisc64] [-engine cassandra|mongodb|mariadb]
//	svbench -fn profile -emulate -requests 10
//	svbench -fn geo -chaos -seed 7
//	svbench -fn fibonacci-go -trace trace.json -profile -stats-txt stats.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"svbench"
)

func main() {
	var (
		fn       = flag.String("fn", "", "experiment name (see -list)")
		arch     = flag.String("arch", "rv64", "target ISA: rv64 or cisc64")
		engine   = flag.String("engine", "cassandra", "hotel database backend")
		emulate  = flag.Bool("emulate", false, "functional (QEMU-style) emulation instead of detailed simulation")
		requests = flag.Int("requests", 10, "requests to issue under -emulate")
		list     = flag.Bool("list", false, "list experiment names")
		chaos    = flag.Bool("chaos", false, "inject the default fault plan and compile the retry policy into the client")
		seed     = flag.Uint64("seed", 1, "fault-injection seed (same seed = same fault schedule)")
		traceOut = flag.String("trace", "", "write a Chrome trace_event JSON (Perfetto-loadable) to this file")
		profile  = flag.Bool("profile", false, "print the sampled guest hot-function profile")
		statsTxt = flag.String("stats-txt", "", "write the gem5-style stats.txt dump to this file")
	)
	flag.Parse()

	if *list {
		for _, sp := range svbench.AllSpecs() {
			fmt.Println(sp.Name)
		}
		return
	}
	if *fn == "" {
		fmt.Fprintln(os.Stderr, "svbench: -fn is required (try -list)")
		os.Exit(2)
	}
	var spec *svbench.Spec
	for _, sp := range append(append(svbench.StandaloneSpecs(), svbench.ShopSpecs()...),
		svbench.HotelSpecs(svbench.HotelEngine(*engine))...) {
		if sp.Name == *fn {
			sp := sp
			spec = &sp
			break
		}
	}
	if spec == nil {
		fmt.Fprintf(os.Stderr, "svbench: unknown experiment %q (try -list)\n", *fn)
		os.Exit(2)
	}
	a := svbench.Arch(*arch)
	if a != svbench.RV64 && a != svbench.CISC64 {
		fmt.Fprintf(os.Stderr, "svbench: unknown arch %q\n", *arch)
		os.Exit(2)
	}

	if *chaos {
		spec.Faults = svbench.DefaultFaultPlan(*seed)
		spec.Retry = svbench.DefaultRetry()
	}
	if *traceOut != "" || *profile || *statsTxt != "" {
		spec.Trace = svbench.TraceOptions{Enabled: true}
	}

	if *emulate {
		lats, err := svbench.RunEmulated(a, *spec, *requests)
		if err != nil {
			fmt.Fprintln(os.Stderr, "svbench:", err)
			os.Exit(1)
		}
		fmt.Printf("%s on %s under emulation (%s backend):\n", spec.Name, a, *engine)
		for _, l := range lats {
			fmt.Printf("  request %2d: %8d ns\n", l.Request, l.NS)
		}
		return
	}

	res, err := svbench.RunFunction(a, *spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "svbench:", err)
		os.Exit(1)
	}
	fmt.Printf("%s on %s (server core, detailed O3 model):\n", res.Name, res.Arch)
	row := func(label string, s svbench.CoreStats) {
		fmt.Printf("  %-5s cycles=%-10d insts=%-10d cpi=%-5.2f l1i=%-7d l1d=%-7d l2=%-6d mispred=%d\n",
			label, s.Cycles, s.Insts, s.CPI(), s.L1IMisses, s.L1DMisses, s.L2Misses, s.Mispredicts)
	}
	row("cold", res.Cold)
	row("warm", res.Warm)
	fmt.Printf("  cold/warm ratio: %.2fx   setup instructions: %d\n",
		float64(res.Cold.Cycles)/float64(res.Warm.Cycles), res.SetupInsts)
	if rep := res.FaultReport; rep != nil {
		fmt.Printf("  faults (seed %d): injected=%d dropped=%d corrupted=%d delayed=%d errors=%d spikes=%d outages=%d\n",
			*seed, rep.Injected, rep.Dropped, rep.Corrupted, rep.Delayed,
			rep.ErrorReplies, rep.Spikes, rep.Outages)
		fmt.Printf("  recovery: surfaced=%d timeouts=%d badreplies=%d retried=%d recovered=%d exhausted=%d\n",
			rep.Surfaced, rep.Timeouts, rep.BadReplies, rep.Retried, rep.Recovered, rep.Exhausted)
	}
	if *traceOut != "" {
		if err := os.WriteFile(*traceOut, res.TraceJSON, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "svbench:", err)
			os.Exit(1)
		}
		fmt.Printf("  trace: %d events -> %s (load in Perfetto or chrome://tracing)\n",
			len(res.Events), *traceOut)
	}
	if *statsTxt != "" {
		if err := os.WriteFile(*statsTxt, []byte(res.StatsText), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "svbench:", err)
			os.Exit(1)
		}
		fmt.Printf("  stats: %s\n", *statsTxt)
	}
	if *profile {
		fmt.Println()
		fmt.Print(res.Profile.Table())
	}
}
