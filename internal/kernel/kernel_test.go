package kernel

import (
	"testing"

	"svbench/internal/isa"
	"svbench/internal/libc"
)

// fakeCore is a minimal isa.Core for driving the kernel's host-call
// surface directly.
type fakeCore struct {
	args  [6]uint64
	num   uint64
	ret   uint64
	pc    uint64
	flags uint8
	seq   uint64
}

func (c *fakeCore) Step(out []isa.TraceRec) ([]isa.TraceRec, error) { return out, nil }
func (c *fakeCore) StepN(max int, out []isa.TraceRec) (int, []isa.TraceRec, error) {
	return 0, out, nil
}
func (c *fakeCore) PC() uint64                 { return c.pc }
func (c *fakeCore) SetPC(pc uint64)            { c.pc = pc }
func (c *fakeCore) Arg(i int) uint64           { return c.args[i] }
func (c *fakeCore) SetArg(i int, v uint64)     { c.args[i] = v }
func (c *fakeCore) EcallNum() uint64           { return c.num }
func (c *fakeCore) SetRet(v uint64)            { c.ret = v }
func (c *fakeCore) Annotate(f uint8, s uint64) { c.flags |= f; c.seq = s }
func (c *fakeCore) StackPtr() uint64           { return 0 }
func (c *fakeCore) SetStackPtr(uint64)         {}
func (c *fakeCore) CallInto(addr uint64)       { c.pc = addr }
func (c *fakeCore) Snapshot() []uint64         { return nil }
func (c *fakeCore) Restore([]uint64)           {}
func (c *fakeCore) InstrCount() uint64         { return 0 }
func (c *fakeCore) Classes() isa.ClassCounts   { return isa.ClassCounts{} }
func (c *fakeCore) Arch() isa.Arch             { return isa.RV64 }

func newTestKernel() (*Kernel, *isa.Mem) {
	mem := isa.NewMem(1 << 20)
	k := New(mem, 0x10000, 0x10000)
	return k, mem
}

func (c *fakeCore) call(k *Kernel, p *Process, num uint64, args ...uint64) (uint64, isa.EcallResult) {
	c.num = num
	c.flags, c.seq = 0, 0
	for i, a := range args {
		c.args[i] = a
	}
	res := k.Ecall(c, p)
	return c.ret, res
}

func TestChannelSendRecvThroughHostCalls(t *testing.T) {
	k, mem := newTestKernel()
	ch := k.NewChannel()
	p := &Process{Name: "p"}
	k.AddProcess(p)
	c := &fakeCore{}

	// Reserve, fill, commit.
	kbuf, res := c.call(k, p, HReserve, uint64(ch), 16)
	if res != isa.EcallHandled || kbuf == 0 {
		t.Fatalf("reserve: %v %#x", res, kbuf)
	}
	copy(mem.Bytes(kbuf, 5), []byte("hello"))
	_, res = c.call(k, p, HCommit, uint64(ch), kbuf, 5)
	if res != isa.EcallHandled {
		t.Fatal("commit failed")
	}
	if c.flags&isa.FlagSend == 0 || c.seq == 0 {
		t.Fatal("commit must annotate FlagSend with a sequence")
	}
	if k.Pending(ch) != 1 {
		t.Fatalf("pending=%d", k.Pending(ch))
	}

	// Poll, length, consume.
	addr, _ := c.call(k, p, HPoll, uint64(ch))
	if addr != kbuf {
		t.Fatalf("poll returned %#x, want %#x", addr, kbuf)
	}
	if c.flags&isa.FlagRecv == 0 {
		t.Fatal("poll must annotate FlagRecv")
	}
	n, _ := c.call(k, p, HMsgLen, uint64(ch))
	if n != 5 {
		t.Fatalf("len=%d", n)
	}
	if got := string(mem.Bytes(addr, 5)); got != "hello" {
		t.Fatalf("payload %q", got)
	}
	c.call(k, p, HConsume, uint64(ch))
	if k.Pending(ch) != 0 {
		t.Fatal("message not consumed")
	}
}

func TestBlockAndWake(t *testing.T) {
	k, mem := newTestKernel()
	ch := k.NewChannel()
	waiter := &Process{Name: "waiter"}
	sender := &Process{Name: "sender"}
	k.AddProcess(waiter)
	k.AddProcess(sender)
	woken := []*Process{}
	k.OnWake = func(p *Process) { woken = append(woken, p) }

	wc := &fakeCore{}
	if _, res := wc.call(k, waiter, HBlock, uint64(ch)); res != isa.EcallBlock {
		t.Fatal("empty channel must block")
	}
	if waiter.State != ProcBlocked {
		t.Fatal("waiter not blocked")
	}

	sc := &fakeCore{}
	kbuf, _ := sc.call(k, sender, HReserve, uint64(ch), 8)
	mem.Store(kbuf, 8, 42)
	sc.call(k, sender, HCommit, uint64(ch), kbuf, 8)

	if len(woken) != 1 || woken[0] != waiter {
		t.Fatal("commit must wake the waiter")
	}
	if waiter.State != ProcRunnable || !waiter.NeedsIdle || waiter.WakeSeq == 0 {
		t.Fatalf("wake bookkeeping: %+v", waiter)
	}
}

func TestBlockRechecksUnderRace(t *testing.T) {
	k, mem := newTestKernel()
	ch := k.NewChannel()
	p := &Process{Name: "p"}
	k.AddProcess(p)
	c := &fakeCore{}
	kbuf, _ := c.call(k, p, HReserve, uint64(ch), 8)
	mem.Store(kbuf, 8, 1)
	c.call(k, p, HCommit, uint64(ch), kbuf, 8)
	// A block attempted when a message raced in must not block.
	if _, res := c.call(k, p, HBlock, uint64(ch)); res != isa.EcallBlock && res != isa.EcallHandled {
		t.Fatalf("unexpected result %v", res)
	} else if res == isa.EcallBlock {
		t.Fatal("block with a pending message must be rejected")
	}
}

func TestServiceRoundTrip(t *testing.T) {
	k, mem := newTestKernel()
	reqCh := k.NewChannel()
	respCh := k.NewChannel()
	var derived [][3]uint64
	k.OnDerive = func(b, d, del uint64) { derived = append(derived, [3]uint64{b, d, del}) }
	k.Bind(reqCh, respCh, echoService{})

	p := &Process{Name: "client"}
	k.AddProcess(p)
	c := &fakeCore{}
	kbuf, _ := c.call(k, p, HReserve, uint64(reqCh), 3)
	copy(mem.Bytes(kbuf, 3), []byte("abc"))
	c.call(k, p, HCommit, uint64(reqCh), kbuf, 3)

	if k.Pending(reqCh) != 0 {
		t.Fatal("service request should be consumed immediately")
	}
	if k.Pending(respCh) != 1 {
		t.Fatal("service reply not enqueued")
	}
	addr, _ := c.call(k, p, HPoll, uint64(respCh))
	n, _ := c.call(k, p, HMsgLen, uint64(respCh))
	if string(mem.Bytes(addr, n)) != "ABC" {
		t.Fatalf("reply %q", mem.Bytes(addr, n))
	}
	if len(derived) != 1 || derived[0][2] != 1234 {
		t.Fatalf("derivation %v", derived)
	}
}

type echoService struct{}

func (echoService) Handle(req []byte) ([]byte, uint64) {
	out := make([]byte, len(req))
	for i, c := range req {
		out[i] = c &^ 0x20 // upper-case
	}
	return out, 1234
}

func TestSlabWraparound(t *testing.T) {
	k, _ := newTestKernel()
	p := &Process{Name: "p"}
	k.AddProcess(p)
	ch := k.NewChannel()
	c := &fakeCore{}
	first, _ := c.call(k, p, HReserve, uint64(ch), 4096)
	var last uint64
	for i := 0; i < 64; i++ {
		last, _ = c.call(k, p, HReserve, uint64(ch), 4096)
	}
	if last < first || last >= first+0x10000 {
		// Wrapped allocations must stay inside the slab window.
		if last < 0x10000 || last >= 0x20000 {
			t.Fatalf("allocation %#x escaped the slab", last)
		}
	}
}

func TestSbrkBounds(t *testing.T) {
	k, _ := newTestKernel()
	p := &Process{Name: "p", Region: Region{Base: 0x40000, Size: 0x1000}, Brk: 0x40000}
	k.AddProcess(p)
	c := &fakeCore{}
	old, _ := c.call(k, p, HSbrk, 0x800)
	if old != 0x40000 || p.Brk != 0x40800 {
		t.Fatalf("sbrk: old=%#x brk=%#x", old, p.Brk)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("sbrk past the region must panic")
		}
	}()
	c.call(k, p, HSbrk, 0x10000)
}

func TestExitAndPanicPaths(t *testing.T) {
	k, _ := newTestKernel()
	p := &Process{Name: "p"}
	k.AddProcess(p)
	c := &fakeCore{}
	if _, res := c.call(k, p, HExit, 7); res != isa.EcallBlock {
		t.Fatal("exit must block forever")
	}
	if p.State != ProcDead || p.ExitCode != 7 {
		t.Fatalf("%+v", p)
	}
	if _, res := c.call(k, p, HPanic); res != isa.EcallHalt || !k.Panicked {
		t.Fatal("panic host call must halt and record")
	}
}

func TestConsoleWrite(t *testing.T) {
	k, mem := newTestKernel()
	p := &Process{Name: "p"}
	k.AddProcess(p)
	copy(mem.Bytes(0x500, 3), []byte("hey"))
	c := &fakeCore{}
	n, _ := c.call(k, p, HWrite, 0x500, 3)
	if n != 3 || k.Console.String() != "hey" {
		t.Fatalf("console %q", k.Console.String())
	}
}

func TestSyscallVectoring(t *testing.T) {
	k, _ := newTestKernel()
	k.HandlerAddr[SysSend] = 0xBEEF
	p := &Process{Name: "p"}
	k.AddProcess(p)
	c := &fakeCore{}
	c.num = SysSend
	if res := k.Ecall(c, p); res != isa.EcallVector {
		t.Fatal("user syscall must vector into the kernel handler")
	}
	if c.pc != 0xBEEF {
		t.Fatalf("pc=%#x", c.pc)
	}
}

func TestChannelSnapshotRoundTrip(t *testing.T) {
	k, mem := newTestKernel()
	ch := k.NewChannel()
	p := &Process{Name: "p"}
	k.AddProcess(p)
	c := &fakeCore{}
	kbuf, _ := c.call(k, p, HReserve, uint64(ch), 8)
	mem.Store(kbuf, 8, 99)
	c.call(k, p, HCommit, uint64(ch), kbuf, 8)
	c.call(k, p, HBlock, uint64(ch)) // will re-check; enqueue a waiter instead:
	// (the message exists, so block was refused — drain it, then block)
	c.call(k, p, HConsume, uint64(ch))
	if _, res := c.call(k, p, HBlock, uint64(ch)); res != isa.EcallBlock {
		t.Fatal("expected block")
	}

	snaps := k.SnapChannels()
	// Clear and restore.
	k.RestoreChannels(make([]ChanSnap, len(snaps)), map[int]*Process{})
	if k.Pending(ch) != 0 {
		t.Fatal("clear failed")
	}
	k.RestoreChannels(snaps, map[int]*Process{p.ID: p})
	got := k.SnapChannels()
	if len(got[ch].Waiters) != 1 || got[ch].Waiters[0] != p.ID {
		t.Fatalf("waiters %v", got[ch].Waiters)
	}
}

func TestKernelModuleBuildsForBothFlavors(t *testing.T) {
	for _, f := range []libc.Flavor{libc.Fast, libc.Compat} {
		m := Module(f)
		for _, num := range UserSyscalls {
			if m.Func(HandlerName(num)) == nil {
				t.Fatalf("flavor %v: missing handler for syscall %d", f, num)
			}
		}
		if m.Func("k_user_exit") == nil {
			t.Fatalf("flavor %v: missing exit stub", f)
		}
	}
	if HandlerName(0xDEAD) != "" {
		t.Fatal("unknown syscall must have no handler name")
	}
}
