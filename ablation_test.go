// Ablation benchmarks for the modeled design choices DESIGN.md calls out:
// each isolates one mechanism of the reproduction and reports its effect,
// so the headline results can be attributed.
package svbench_test

import (
	"testing"

	"svbench/internal/db"
	"svbench/internal/gemsys"
	"svbench/internal/harness"
	"svbench/internal/ir"
	"svbench/internal/isa"
	"svbench/internal/libc"
	"svbench/internal/vswarm"
)

func runSpec(b *testing.B, cfg gemsys.Config, spec harness.Spec) *harness.Result {
	b.Helper()
	res, err := harness.RunWith(cfg, spec)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationSoftwareStack quantifies how much of the RISC-V-vs-x86
// gap is the software stack (libc flavor) rather than the ISA encoding:
// the same CISC64 machine with the lean static libc versus the dynamic
// compat libc its real images shipped.
func BenchmarkAblationSoftwareStack(b *testing.B) {
	spec := harness.StandaloneSpecs()[3] // aes-go
	cfg := gemsys.DefaultConfig(isa.CISC64)
	var static, dynamic *harness.Result
	for i := 0; i < b.N; i++ {
		fast := libc.Fast
		s := spec
		s.Flavor = &fast
		static = runSpec(b, cfg, s)
		dynamic = runSpec(b, cfg, spec)
	}
	b.ReportMetric(float64(static.Cold.Cycles), "static-cold-cycles")
	b.ReportMetric(float64(dynamic.Cold.Cycles), "dynamic-cold-cycles")
	b.ReportMetric(float64(dynamic.Cold.Insts)/float64(static.Cold.Insts), "insts-ratio")
	if dynamic.Cold.Insts <= static.Cold.Insts {
		b.Fatal("the dynamic software stack must execute more instructions")
	}
}

// BenchmarkAblationMemcached removes the look-aside cache from the hotel
// rate function (the "cache" channel answered by Cassandra itself), making
// the cache's contribution to the warm path visible.
func BenchmarkAblationMemcached(b *testing.B) {
	cached := harness.HotelSpec("rate", harness.EngineCassandra)
	uncached := cached
	uncached.Build = func(env *harness.Env) (*ir.Module, error) {
		store := db.NewCassandra(db.CassandraConfig{})
		vswarm.SeedHotel(store)
		dbReq, dbResp := env.NewService(db.NewService(store))
		// The "memcached" endpoints answer from the same Cassandra
		// instance: every look-aside probe pays database cost.
		mcReq, mcResp := env.NewService(db.NewService(store))
		return vswarm.HotelRateFn(vswarm.HotelChans{
			DBReq: dbReq, DBResp: dbResp, MCReq: mcReq, MCResp: mcResp,
		}), nil
	}
	cfg := gemsys.DefaultConfig(isa.RV64)
	var with, without *harness.Result
	for i := 0; i < b.N; i++ {
		with = runSpec(b, cfg, cached)
		without = runSpec(b, cfg, uncached)
	}
	b.ReportMetric(float64(with.Warm.Cycles), "cached-warm-cycles")
	b.ReportMetric(float64(without.Warm.Cycles), "uncached-warm-cycles")
	if without.Warm.Cycles <= with.Warm.Cycles {
		b.Fatal("removing the cache must slow warm requests")
	}
}

// BenchmarkAblationDRAMLatency sweeps the memory latency, showing how the
// cold penalty tracks DRAM (the compulsory-miss-dominated regime).
func BenchmarkAblationDRAMLatency(b *testing.B) {
	spec := harness.StandaloneSpecs()[0] // fibonacci-go
	var fastCold, slowCold uint64
	for i := 0; i < b.N; i++ {
		fast := gemsys.DefaultConfig(isa.RV64)
		fast.DRAM.Latency = 60
		fastCold = runSpec(b, fast, spec).Cold.Cycles
		slow := gemsys.DefaultConfig(isa.RV64)
		slow.DRAM.Latency = 400
		slowCold = runSpec(b, slow, spec).Cold.Cycles
	}
	b.ReportMetric(float64(fastCold), "dram60-cold-cycles")
	b.ReportMetric(float64(slowCold), "dram400-cold-cycles")
	if slowCold <= fastCold {
		b.Fatal("slower DRAM must lengthen cold execution")
	}
}

// BenchmarkAblationBranchPredictor shrinks the bimodal/BTB tables,
// degrading the interpreted runtime's branchy dispatch loop.
func BenchmarkAblationBranchPredictor(b *testing.B) {
	spec := harness.StandaloneSpecs()[1] // fibonacci-python
	var big, small *harness.Result
	for i := 0; i < b.N; i++ {
		cfgBig := gemsys.DefaultConfig(isa.RV64)
		big = runSpec(b, cfgBig, spec)
		cfgSmall := gemsys.DefaultConfig(isa.RV64)
		cfgSmall.O3.BPred.BimodalEntries = 64
		cfgSmall.O3.BPred.BTBEntries = 16
		small = runSpec(b, cfgSmall, spec)
	}
	b.ReportMetric(float64(big.Warm.Mispredicts), "big-warm-mispredicts")
	b.ReportMetric(float64(small.Warm.Mispredicts), "small-warm-mispredicts")
	if small.Warm.Mispredicts <= big.Warm.Mispredicts {
		b.Fatal("a smaller predictor must mispredict more in the dispatch loop")
	}
}

// BenchmarkAblationWarmRequests verifies the warm plateau: measuring
// request 5 instead of request 10 should give nearly the same warm number
// (the caches converge quickly).
func BenchmarkAblationWarmRequests(b *testing.B) {
	spec := harness.StandaloneSpecs()[0]
	short := spec
	short.Requests = 5
	cfg := gemsys.DefaultConfig(isa.RV64)
	var r10, r5 *harness.Result
	for i := 0; i < b.N; i++ {
		r10 = runSpec(b, cfg, spec)
		r5 = runSpec(b, cfg, short)
	}
	b.ReportMetric(float64(r10.Warm.Cycles), "warm@10-cycles")
	b.ReportMetric(float64(r5.Warm.Cycles), "warm@5-cycles")
	ratio := float64(r5.Warm.Cycles) / float64(r10.Warm.Cycles)
	if ratio < 0.5 || ratio > 2.0 {
		b.Fatalf("warm plateau violated: ratio %.2f", ratio)
	}
}
