package faults

import "svbench/internal/kernel"

// FlakyService wraps a native service (a database or cache engine) with
// injected failure modes: error replies, latency spikes, and
// N-requests-then-fail outage windows. It implements kernel.Service, so
// it binds to a channel exactly like the engine it wraps; the measured
// core observes only the degraded round trips.
//
// Injection order per request: outage windows first (they model the
// backing store being down, which preempts everything), then
// probabilistic error replies, then the real operation with an optional
// latency spike on the charged cycles.
type FlakyService struct {
	Inner kernel.Service

	inj   *Injector
	rules []Rule
	// served counts requests seen by this wrapper, driving outage
	// windows; it advances on every request, healthy or not.
	served int
}

// NewFlakyService wraps svc with the given rules under an injector
// (callers normally go through Injector.WrapService instead).
func NewFlakyService(inj *Injector, svc kernel.Service, rules []Rule) *FlakyService {
	return &FlakyService{Inner: svc, inj: inj, rules: rules}
}

// ServiceName forwards the wrapped engine's name, so stacked rules and
// diagnostics still see it.
func (f *FlakyService) ServiceName() string {
	if n, ok := f.Inner.(NamedService); ok {
		return n.ServiceName()
	}
	return ""
}

// Handle implements kernel.Service.
func (f *FlakyService) Handle(req []byte) ([]byte, uint64) {
	f.served++
	if f.inj == nil || !f.inj.armed {
		return f.Inner.Handle(req)
	}
	for i := range f.rules {
		r := &f.rules[i]
		if r.Kind != Outage || !r.Window.Contains(f.inj.now) {
			continue
		}
		if f.served > r.After && f.served <= r.After+r.For {
			f.inj.Report.Injected++
			f.inj.Report.Outages++
			return ErrorFrame(), errorReplyCycles
		}
	}
	for i := range f.rules {
		r := &f.rules[i]
		if r.Kind != ErrorReply || !r.Window.Contains(f.inj.now) {
			continue
		}
		if !f.inj.rng.Chance(r.Prob) {
			continue
		}
		f.inj.Report.Injected++
		f.inj.Report.ErrorReplies++
		return ErrorFrame(), errorReplyCycles
	}
	resp, cycles := f.Inner.Handle(req)
	for i := range f.rules {
		r := &f.rules[i]
		if r.Kind != LatencySpike || !r.Window.Contains(f.inj.now) {
			continue
		}
		if !f.inj.rng.Chance(r.Prob) {
			continue
		}
		f.inj.Report.Injected++
		f.inj.Report.Spikes++
		if r.Mult > 1 {
			cycles *= r.Mult
		} else {
			cycles *= 2
		}
	}
	return resp, cycles
}
