package vswarm

import (
	"fmt"

	"svbench/internal/ir"
	"svbench/internal/kernel"
	"svbench/internal/rpc"
)

// The Hotel reservation application (vSwarm's port of DeathStarBench's
// hotel backend, Table 3.4): six Go functions, each talking to a database
// service; reservation, rate and profile additionally use a Memcached
// instance as a look-aside cache — the cold/warm and L2-miss signatures of
// Figs. 4.5–4.11 come from exactly this structure.

// HotelChans carries the kernel channel ids of the attached services,
// baked into the workload image at build time (the container's service
// endpoints).
type HotelChans struct {
	DBReq, DBResp int
	MCReq, MCResp int
}

// Hotel dataset geometry.
const (
	HotelCount       = 24
	HotelUsers       = 12
	profileParagraph = "A charming stay near the waterfront with generous rooms, " +
		"a quiet reading lounge, late breakfast service and bicycles for rent. "
)

// HotelID returns the canonical 8-byte key of hotel i.
func HotelID(i int) uint64 { return uint64(100 + i) }

// hotelKey renders the binary key used in the stores.
func hotelKey(id uint64) string {
	b := make([]byte, 8)
	for k := 0; k < 8; k++ {
		b[k] = byte(id >> (8 * k))
	}
	return string(b)
}

// HotelGeo returns hotel i's fixed-point (×10⁴) coordinates.
func HotelGeo(i int) (lat, lon int64) {
	lat = 377700 + int64(i)*137%900
	lon = -1224000 + int64(i)*211%1100
	return
}

// HotelRatePlans renders hotel i's rate table (the "ratePlans" document).
func HotelRatePlans(i int) []byte {
	out := []byte{}
	for p := 0; p < 3; p++ {
		out = append(out, fmt.Sprintf("plan=%d;hotel=%d;code=RACK%02d;price=%d;tax=%d;"+
			"desc=king room with courtyard view, breakfast included, late checkout on request, "+
			"free cancellation until 48 hours before arrival, loyalty points eligible|",
			p, HotelID(i), p, 10900+i*700+p*2500, 1200+p*100)...)
	}
	return out
}

// HotelProfile renders hotel i's profile document (~1.5 KiB).
func HotelProfile(i int) []byte {
	head := fmt.Sprintf("id=%d;name=Hotel %c%c;addr=%d Harbor Street;city=Port Meridian;cap=%d;",
		HotelID(i), 'A'+i%26, 'a'+(i*7)%26, 100+i*3, 40+i*2)
	body := head
	for len(body) < 4000 {
		body += profileParagraph
	}
	return []byte(body[:4000])
}

// HotelUserName returns user u's login.
func HotelUserName(u int) []byte { return []byte(fmt.Sprintf("guest_%02d", u)) }

// HotelUserPass returns user u's password.
func HotelUserPass(u int) []byte { return []byte(fmt.Sprintf("pass_%02d_secret", u)) }

// hotelPassHash must mirror the IR-side hp_hash (10-round chained FNV).
func hotelPassHash(p []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for r := 0; r < 10; r++ {
		for _, c := range p {
			h ^= uint64(c)
			h *= 0x100000001b3
		}
		h ^= h >> 31
	}
	return h
}

func le64(v uint64) []byte {
	b := make([]byte, 8)
	for k := 0; k < 8; k++ {
		b[k] = byte(v >> (8 * k))
	}
	return b
}

// Seeder is the subset of db.Store the seeding needs (avoids an import
// cycle with internal/db).
type Seeder interface {
	Put(table, key string, val []byte)
}

// SeedHotel populates a store with the application dataset: geo points,
// rate plans, profiles, users and reservation availability.
func SeedHotel(s Seeder) {
	for i := 0; i < HotelCount; i++ {
		id := HotelID(i)
		lat, lon := HotelGeo(i)
		// geo: id, lat, lon (24 bytes).
		geo := append(append(le64(id), le64(uint64(lat))...), le64(uint64(lon))...)
		s.Put("geo", hotelKey(id), geo)
		s.Put("rate", hotelKey(id), HotelRatePlans(i))
		s.Put("profile", hotelKey(id), HotelProfile(i))
		// attrs: id, lat, lon, rate (32 bytes) for recommendation.
		attrs := append(geo, le64(uint64(10900+i*700))...)
		s.Put("attrs", hotelKey(id), attrs)
		// reservation: booked, capacity (16 bytes).
		resv := append(le64(uint64(i%7)), le64(uint64(40+i*2))...)
		s.Put("reservation", hotelKey(id), resv)
	}
	for u := 0; u < HotelUsers; u++ {
		s.Put("user", string(HotelUserName(u)), le64(hotelPassHash(HotelUserPass(u))))
	}
}

// hotelBase builds the shared module scaffolding: the service channel
// configuration, the client-stub buffers, and the kv_get/kv_put/kv_scan
// stubs that run on the measured core (marshal, block on the service,
// unmarshal — the simulated database driver).
func hotelBase(name string, ch HotelChans) *ir.Module {
	m := ir.NewModule(name)
	cfg := make([]byte, 32)
	for i, v := range []int{ch.DBReq, ch.DBResp, ch.MCReq, ch.MCResp} {
		for k := 0; k < 8; k++ {
			cfg[i*8+k] = byte(uint64(v) >> (8 * k))
		}
	}
	m.AddGlobal(&ir.Global{Name: "db_cfg", Data: cfg})
	m.AddGlobal(&ir.Global{Name: "db_qbuf", Data: make([]byte, 8192)})
	m.AddGlobal(&ir.Global{Name: "db_rbuf", Data: make([]byte, 8192)})
	m.AddGlobal(&ir.Global{Name: "db_vbuf", Data: make([]byte, 8192)})
	m.AddGlobal(&ir.Global{Name: "db_state", Data: make([]byte, 32)}) // vlen, cursor

	// kv_get(isMC, tablePtr, tableLen, keyPtr, keyLen) -> value address in
	// db_vbuf (0 on miss); length in db_state[0].
	{
		b := ir.NewFunc("kv_get", 5)
		isMC, tp, tl, kp, kl := b.Param(0), b.Param(1), b.Param(2), b.Param(3), b.Param(4)
		qbuf := b.Global("db_qbuf", 0)
		rbuf := b.Global("db_rbuf", 0)
		vbuf := b.Global("db_vbuf", 0)
		st := b.Global("db_state", 0)
		b.CallV("mbuf_reset", qbuf)
		b.CallV("mbuf_put_int", qbuf, b.Const(0))
		b.CallV("mbuf_put_bytes", qbuf, tp, tl)
		b.CallV("mbuf_put_bytes", qbuf, kp, kl)
		cfgG := b.Global("db_cfg", 0)
		chOff := b.ShlI(isMC, 4)
		reqCh := b.Load(b.Add(cfgG, chOff), 0, 8)
		respCh := b.Load(b.Add(cfgG, chOff), 8, 8)
		b.EcallV(kernel.SysSend, reqCh, qbuf, b.Call("mbuf_len", qbuf))
		b.EcallV(kernel.SysRecv, respCh, rbuf, b.Const(8192))
		cur := b.Frame(b.Buf("cur", 8), 0)
		b.Store(cur, 0, b.Const(8), 8)
		status := b.Call("mbuf_get_int", rbuf, cur)
		miss := b.NewLabel("miss")
		b.BrI(ir.Ne, status, 0, miss)
		n := b.Call("mbuf_get_bytes", rbuf, cur, vbuf, b.Const(8192))
		b.Store(st, 0, n, 8)
		b.Ret(vbuf)
		b.Label(miss)
		b.Store(st, 0, b.Const(0), 8)
		b.Ret(b.Const(0))
		m.AddFunc(b.Build())
	}

	// kv_put(isMC, tablePtr, tableLen, keyPtr, keyLen): value taken from
	// db_vbuf with length db_state[0]. Returns the status.
	{
		b := ir.NewFunc("kv_put", 5)
		isMC, tp, tl, kp, kl := b.Param(0), b.Param(1), b.Param(2), b.Param(3), b.Param(4)
		qbuf := b.Global("db_qbuf", 0)
		rbuf := b.Global("db_rbuf", 0)
		vbuf := b.Global("db_vbuf", 0)
		st := b.Global("db_state", 0)
		vlen := b.Load(st, 0, 8)
		b.CallV("mbuf_reset", qbuf)
		b.CallV("mbuf_put_int", qbuf, b.Const(1))
		b.CallV("mbuf_put_bytes", qbuf, tp, tl)
		b.CallV("mbuf_put_bytes", qbuf, kp, kl)
		b.CallV("mbuf_put_bytes", qbuf, vbuf, vlen)
		cfgG := b.Global("db_cfg", 0)
		chOff := b.ShlI(isMC, 4)
		reqCh := b.Load(b.Add(cfgG, chOff), 0, 8)
		respCh := b.Load(b.Add(cfgG, chOff), 8, 8)
		b.EcallV(kernel.SysSend, reqCh, qbuf, b.Call("mbuf_len", qbuf))
		b.EcallV(kernel.SysRecv, respCh, rbuf, b.Const(8192))
		cur := b.Frame(b.Buf("cur", 8), 0)
		b.Store(cur, 0, b.Const(8), 8)
		b.Ret(b.Call("mbuf_get_int", rbuf, cur))
		m.AddFunc(b.Build())
	}

	// kv_scan(isMC, tablePtr, tableLen, limit) -> count; leaves the read
	// cursor (for mbuf_get_bytes over db_rbuf) in db_state[8].
	{
		b := ir.NewFunc("kv_scan", 4)
		isMC, tp, tl, limit := b.Param(0), b.Param(1), b.Param(2), b.Param(3)
		qbuf := b.Global("db_qbuf", 0)
		rbuf := b.Global("db_rbuf", 0)
		st := b.Global("db_state", 0)
		b.CallV("mbuf_reset", qbuf)
		b.CallV("mbuf_put_int", qbuf, b.Const(2))
		b.CallV("mbuf_put_bytes", qbuf, tp, tl)
		empty := b.Frame(b.Buf("empty", 8), 0)
		b.CallV("mbuf_put_bytes", qbuf, empty, b.Const(0)) // prefix ""
		b.CallV("mbuf_put_int", qbuf, limit)
		cfgG := b.Global("db_cfg", 0)
		chOff := b.ShlI(isMC, 4)
		reqCh := b.Load(b.Add(cfgG, chOff), 0, 8)
		respCh := b.Load(b.Add(cfgG, chOff), 8, 8)
		b.EcallV(kernel.SysSend, reqCh, qbuf, b.Call("mbuf_len", qbuf))
		b.EcallV(kernel.SysRecv, respCh, rbuf, b.Const(8192))
		b.Store(st, 8, b.Const(8), 8)
		curAddr := b.AddI(st, 8)
		status := b.Call("mbuf_get_int", rbuf, curAddr)
		bad := b.NewLabel("bad")
		b.BrI(ir.Ne, status, 0, bad)
		b.Ret(b.Call("mbuf_get_int", rbuf, curAddr))
		b.Label(bad)
		b.Ret(b.Const(0))
		m.AddFunc(b.Build())
	}

	// hp_hash(p, n): the password hash (10-round chained FNV).
	{
		b := ir.NewFunc("hp_hash", 2)
		p, n := b.Param(0), b.Param(1)
		h := b.Const(-3750763034362895579)
		prime := b.Const(0x100000001b3)
		r := b.Const(0)
		rl, rd := b.NewLabel("rl"), b.NewLabel("rd")
		b.Label(rl)
		b.BrI(ir.Ge, r, 10, rd)
		i := b.Const(0)
		il, id := b.NewLabel("il"), b.NewLabel("id")
		b.Label(il)
		b.Br(ir.Ge, i, n, id)
		c := b.LoadU(b.Add(p, i), 0, 1)
		b.XorInto(h, h, c)
		b.MulInto(h, h, prime)
		b.AddIInto(i, i, 1)
		b.Jmp(il)
		b.Label(id)
		sh := b.ShrI(h, 31)
		b.XorInto(h, h, sh)
		b.AddIInto(r, r, 1)
		b.Jmp(rl)
		b.Label(rd)
		b.Ret(h)
		m.AddFunc(b.Build())
	}
	return m
}

// tableGlobal registers the table-name constant and returns emit helpers.
func tableGlobal(m *ir.Module, name string) (string, int64) {
	g := "tbl_" + name
	if m.Glob(g) == nil {
		m.AddGlobal(&ir.Global{Name: g, Data: []byte(name)})
	}
	return g, int64(len(name))
}

// HotelGeoFn builds the geo function: request {lat:int, lon:int};
// response {count, 5×(id)} — nearest hotels by squared distance over a
// full geo-table scan.
func HotelGeoFn(ch HotelChans) *ir.Module {
	m := hotelBase("hotel-geo", ch)
	tg, tl := tableGlobal(m, "geo")

	b := ir.NewFunc(Handler, 3)
	req, resp := b.Param(0), b.Param(2)
	cur := newCursor(b, "cur")
	lat := b.Call("mbuf_get_int", req, cur)
	lon := b.Call("mbuf_get_int", req, cur)

	tgr := b.Global(tg, 0)
	count := b.Call("kv_scan", b.Const(0), tgr, b.Const(tl), b.Const(0))
	rbuf := b.Global("db_rbuf", 0)
	st := b.Global("db_state", 0)
	curAddr := b.AddI(st, 8)

	// Track the 5 nearest: arrays of (dist, id).
	best := b.Frame(b.Buf("best", 5*16), 0)
	i := b.Const(0)
	initL, initD := b.NewLabel("init"), b.NewLabel("initd")
	b.Label(initL)
	b.BrI(ir.Ge, i, 5, initD)
	slot := b.Add(best, b.ShlI(i, 4))
	b.Store(slot, 0, b.Const(1<<62), 8)
	b.Store(slot, 8, b.Const(0), 8)
	b.AddIInto(i, i, 1)
	b.Jmp(initL)
	b.Label(initD)

	rec := b.Frame(b.Buf("rec", 32), 0)
	j := b.Const(0)
	loop, done := b.NewLabel("scan"), b.NewLabel("scand")
	b.Label(loop)
	b.Br(ir.Ge, j, count, done)
	b.CallV("mbuf_get_bytes", rbuf, curAddr, rec, b.Const(32))
	id := b.Load(rec, 0, 8)
	hlat := b.Load(rec, 8, 8)
	hlon := b.Load(rec, 16, 8)
	dlat := b.Sub(hlat, lat)
	dlon := b.Sub(hlon, lon)
	d := b.Add(b.Mul(dlat, dlat), b.Mul(dlon, dlon))
	// Insertion into the top-5 (bubble the worst out).
	k := b.Const(0)
	insL, insD := b.NewLabel("ins"), b.NewLabel("insd")
	b.Label(insL)
	b.BrI(ir.Ge, k, 5, insD)
	slot2 := b.Add(best, b.ShlI(k, 4))
	cd := b.Load(slot2, 0, 8)
	noSwap := b.NewLabel("nosw")
	b.Br(ir.Ge, d, cd, noSwap)
	// Swap (d,id) with the slot and continue pushing the displaced pair.
	cid := b.Load(slot2, 8, 8)
	b.Store(slot2, 0, d, 8)
	b.Store(slot2, 8, id, 8)
	b.MovInto(d, cd)
	b.MovInto(id, cid)
	b.Label(noSwap)
	b.AddIInto(k, k, 1)
	b.Jmp(insL)
	b.Label(insD)
	b.AddIInto(j, j, 1)
	b.Jmp(loop)
	b.Label(done)

	b.CallV("mbuf_reset", resp)
	b.CallV("mbuf_put_int", resp, b.Const(5))
	o := b.Const(0)
	el, ed := b.NewLabel("emit"), b.NewLabel("emitd")
	b.Label(el)
	b.BrI(ir.Ge, o, 5, ed)
	slot3 := b.Add(best, b.ShlI(o, 4))
	b.CallV("mbuf_put_int", resp, b.Load(slot3, 8, 8))
	b.AddIInto(o, o, 1)
	b.Jmp(el)
	b.Label(ed)
	b.Ret(b.Call("mbuf_len", resp))
	m.AddFunc(b.Build())
	return m
}

// HotelUserFn builds the user function: request {name, pass}; response
// {ok:int}.
func HotelUserFn(ch HotelChans) *ir.Module {
	m := hotelBase("hotel-user", ch)
	tg, tl := tableGlobal(m, "user")

	b := ir.NewFunc(Handler, 3)
	req, resp := b.Param(0), b.Param(2)
	cur := newCursor(b, "cur")
	name := b.Frame(b.Buf("name", 32), 0)
	pass := b.Frame(b.Buf("pass", 32), 0)
	nn := b.Call("mbuf_get_bytes", req, cur, name, b.Const(32))
	pn := b.Call("mbuf_get_bytes", req, cur, pass, b.Const(32))

	tgr := b.Global(tg, 0)
	vaddr := b.Call("kv_get", b.Const(0), tgr, b.Const(tl), name, nn)
	ok := b.Const(0)
	deny := b.NewLabel("deny")
	b.BrI(ir.Eq, vaddr, 0, deny)
	stored := b.Load(vaddr, 0, 8)
	h := b.Call("hp_hash", pass, pn)
	b.Br(ir.Ne, stored, h, deny)
	b.ConstInto(ok, 1)
	b.Label(deny)

	b.CallV("mbuf_reset", resp)
	b.CallV("mbuf_put_int", resp, ok)
	b.Ret(b.Call("mbuf_len", resp))
	m.AddFunc(b.Build())
	return m
}

// HotelRecommendFn builds the recommendation function: request
// {mode:int (0 distance, 1 price), lat, lon}; response {count, ids...}.
func HotelRecommendFn(ch HotelChans) *ir.Module {
	m := hotelBase("hotel-recommendation", ch)
	tg, tl := tableGlobal(m, "attrs")

	b := ir.NewFunc(Handler, 3)
	req, resp := b.Param(0), b.Param(2)
	cur := newCursor(b, "cur")
	mode := b.Call("mbuf_get_int", req, cur)
	lat := b.Call("mbuf_get_int", req, cur)
	lon := b.Call("mbuf_get_int", req, cur)

	tgr := b.Global(tg, 0)
	count := b.Call("kv_scan", b.Const(0), tgr, b.Const(tl), b.Const(0))
	rbuf := b.Global("db_rbuf", 0)
	st := b.Global("db_state", 0)
	curAddr := b.AddI(st, 8)

	best := b.Frame(b.Buf("best", 5*16), 0)
	i := b.Const(0)
	initL, initD := b.NewLabel("init"), b.NewLabel("initd")
	b.Label(initL)
	b.BrI(ir.Ge, i, 5, initD)
	slot := b.Add(best, b.ShlI(i, 4))
	b.Store(slot, 0, b.Const(1<<62), 8)
	b.Store(slot, 8, b.Const(0), 8)
	b.AddIInto(i, i, 1)
	b.Jmp(initL)
	b.Label(initD)

	rec := b.Frame(b.Buf("rec", 32), 0)
	j := b.Const(0)
	loop, done := b.NewLabel("scan"), b.NewLabel("scand")
	b.Label(loop)
	b.Br(ir.Ge, j, count, done)
	b.CallV("mbuf_get_bytes", rbuf, curAddr, rec, b.Const(32))
	id := b.Load(rec, 0, 8)
	var scoreReg ir.Reg
	{
		hlat := b.Load(rec, 8, 8)
		hlon := b.Load(rec, 16, 8)
		rate := b.Load(rec, 24, 8)
		dlat := b.Sub(hlat, lat)
		dlon := b.Sub(hlon, lon)
		dist := b.Add(b.Mul(dlat, dlat), b.Mul(dlon, dlon))
		scoreReg = b.Mov(dist)
		byPrice := b.NewLabel("byprice")
		rank := b.NewLabel("rank")
		b.BrI(ir.Eq, mode, 1, byPrice)
		b.Jmp(rank)
		b.Label(byPrice)
		b.MovInto(scoreReg, rate)
		b.Label(rank)
	}
	k := b.Const(0)
	insL, insD := b.NewLabel("ins"), b.NewLabel("insd")
	b.Label(insL)
	b.BrI(ir.Ge, k, 5, insD)
	slot2 := b.Add(best, b.ShlI(k, 4))
	cd := b.Load(slot2, 0, 8)
	noSwap := b.NewLabel("nosw")
	b.Br(ir.Ge, scoreReg, cd, noSwap)
	cid := b.Load(slot2, 8, 8)
	b.Store(slot2, 0, scoreReg, 8)
	b.Store(slot2, 8, id, 8)
	b.MovInto(scoreReg, cd)
	b.MovInto(id, cid)
	b.Label(noSwap)
	b.AddIInto(k, k, 1)
	b.Jmp(insL)
	b.Label(insD)
	b.AddIInto(j, j, 1)
	b.Jmp(loop)
	b.Label(done)

	b.CallV("mbuf_reset", resp)
	b.CallV("mbuf_put_int", resp, b.Const(5))
	o := b.Const(0)
	el, ed := b.NewLabel("emit"), b.NewLabel("emitd")
	b.Label(el)
	b.BrI(ir.Ge, o, 5, ed)
	slot3 := b.Add(best, b.ShlI(o, 4))
	b.CallV("mbuf_put_int", resp, b.Load(slot3, 8, 8))
	b.AddIInto(o, o, 1)
	b.Jmp(el)
	b.Label(ed)
	b.Ret(b.Call("mbuf_len", resp))
	m.AddFunc(b.Build())
	return m
}

// cachedFetch emits the look-aside pattern shared by rate and profile:
// check memcached, fall back to the database, then populate the cache.
// The fetched value sits in db_vbuf; returns its length (0 on miss).
func cachedFetch(b *ir.Builder, tgr ir.Reg, tl int64, key ir.Reg, keyLen ir.Reg) ir.Reg {
	st := b.Global("db_state", 0)
	out := b.Const(0)
	endL := b.NewLabel("cfend")
	hitV := b.Call("kv_get", b.Const(1), tgr, b.Const(tl), key, keyLen)
	missL := b.NewLabel("cfmiss")
	b.BrI(ir.Eq, hitV, 0, missL)
	b.MovInto(out, b.Load(st, 0, 8))
	b.Jmp(endL)
	b.Label(missL)
	dbV := b.Call("kv_get", b.Const(0), tgr, b.Const(tl), key, keyLen)
	b.BrI(ir.Eq, dbV, 0, endL)
	// Populate the cache (value already staged in db_vbuf/db_state[0]).
	vlen := b.Load(st, 0, 8)
	b.CallV("kv_put", b.Const(1), tgr, b.Const(tl), key, keyLen)
	// kv_put's reply overwrote db_rbuf but db_vbuf still holds the value;
	// restore the length clobbered by nothing (kv_put preserves it).
	b.Store(st, 0, vlen, 8)
	b.MovInto(out, vlen)
	b.Label(endL)
	return out
}

// HotelRateFn builds the rate function: request {inDate, outDate, n,
// ids...}; response {n × plans:bytes} via the memcached look-aside path —
// like the DeathStarBench original, one cache/database round per hotel.
func HotelRateFn(ch HotelChans) *ir.Module {
	m := hotelBase("hotel-rate", ch)
	tg, tl := tableGlobal(m, "rate")

	b := ir.NewFunc(Handler, 3)
	req, resp := b.Param(0), b.Param(2)
	cur := newCursor(b, "cur")
	_ = b.Call("mbuf_get_int", req, cur) // inDate
	_ = b.Call("mbuf_get_int", req, cur) // outDate
	n := b.Call("mbuf_get_int", req, cur)
	caps := b.NewLabel("caps")
	b.BrI(ir.Le, n, 4, caps)
	b.ConstInto(n, 4)
	b.Label(caps)

	b.CallV("mbuf_reset", resp)
	b.CallV("mbuf_put_int", resp, n)
	tgr := b.Global(tg, 0)
	vbuf := b.Global("db_vbuf", 0)
	key := b.Frame(b.Buf("key", 8), 0)
	i := b.Const(0)
	loop, done := b.NewLabel("loop"), b.NewLabel("done")
	b.Label(loop)
	b.Br(ir.Ge, i, n, done)
	id := b.Call("mbuf_get_int", req, cur)
	b.Store(key, 0, id, 8)
	vn := cachedFetch(b, tgr, tl, key, b.Const(8))
	b.CallV("mbuf_put_bytes", resp, vbuf, vn)
	b.AddIInto(i, i, 1)
	b.Jmp(loop)
	b.Label(done)
	b.Ret(b.Call("mbuf_len", resp))
	m.AddFunc(b.Build())
	return m
}

// HotelProfileFn builds the profile function: request {n, ids...};
// response {n × profile:bytes} — the heaviest payloads of the suite.
func HotelProfileFn(ch HotelChans) *ir.Module {
	m := hotelBase("hotel-profile", ch)
	tg, tl := tableGlobal(m, "profile")

	b := ir.NewFunc(Handler, 3)
	req, resp := b.Param(0), b.Param(2)
	cur := newCursor(b, "cur")
	n := b.Call("mbuf_get_int", req, cur)
	caps := b.NewLabel("caps")
	b.BrI(ir.Le, n, 4, caps)
	b.ConstInto(n, 4)
	b.Label(caps)

	b.CallV("mbuf_reset", resp)
	b.CallV("mbuf_put_int", resp, n)
	tgr := b.Global(tg, 0)
	vbuf := b.Global("db_vbuf", 0)
	key := b.Frame(b.Buf("key", 8), 0)
	i := b.Const(0)
	loop, done := b.NewLabel("loop"), b.NewLabel("done")
	b.Label(loop)
	b.Br(ir.Ge, i, n, done)
	id := b.Call("mbuf_get_int", req, cur)
	b.Store(key, 0, id, 8)
	vn := cachedFetch(b, tgr, tl, key, b.Const(8))
	b.CallV("mbuf_put_bytes", resp, vbuf, vn)
	b.AddIInto(i, i, 1)
	b.Jmp(loop)
	b.Label(done)
	b.Ret(b.Call("mbuf_len", resp))
	m.AddFunc(b.Build())
	return m
}

// HotelReservationFn builds the reservation function: request {hotelId,
// inDate, outDate, rooms}; response {ok:int, booked:int}. Reads
// availability through the cache, updates the database, refreshes the
// cache.
func HotelReservationFn(ch HotelChans) *ir.Module {
	m := hotelBase("hotel-reservation", ch)
	tg, tl := tableGlobal(m, "reservation")

	b := ir.NewFunc(Handler, 3)
	req, resp := b.Param(0), b.Param(2)
	cur := newCursor(b, "cur")
	id := b.Call("mbuf_get_int", req, cur)
	_ = b.Call("mbuf_get_int", req, cur) // inDate
	_ = b.Call("mbuf_get_int", req, cur) // outDate
	rooms := b.Call("mbuf_get_int", req, cur)

	key := b.Frame(b.Buf("key", 8), 0)
	b.Store(key, 0, id, 8)
	tgr := b.Global(tg, 0)
	vn := cachedFetch(b, tgr, tl, key, b.Const(8))

	vbuf := b.Global("db_vbuf", 0)
	st := b.Global("db_state", 0)
	ok := b.Const(0)
	booked := b.Const(0)
	out := b.NewLabel("out")
	b.BrI(ir.Eq, vn, 0, out)
	b.MovInto(booked, b.Load(vbuf, 0, 8))
	capacity := b.Load(vbuf, 8, 8)
	want := b.Add(booked, rooms)
	full := b.NewLabel("full")
	b.Br(ir.Gt, want, capacity, full)
	// Commit: write back to the database and refresh the cache.
	b.Store(vbuf, 0, want, 8)
	b.Store(st, 0, b.Const(16), 8)
	b.CallV("kv_put", b.Const(0), tgr, b.Const(tl), key, b.Const(8))
	b.Store(st, 0, b.Const(16), 8)
	b.CallV("kv_put", b.Const(1), tgr, b.Const(tl), key, b.Const(8))
	b.ConstInto(ok, 1)
	b.MovInto(booked, want)
	b.Label(full)
	b.Label(out)

	b.CallV("mbuf_reset", resp)
	b.CallV("mbuf_put_int", resp, ok)
	b.CallV("mbuf_put_int", resp, booked)
	b.Ret(b.Call("mbuf_len", resp))
	m.AddFunc(b.Build())
	return m
}

// HotelFuncs maps function names to their builders and whether they use
// Memcached (Table 3.4).
var HotelFuncs = []struct {
	Name      string
	Memcached bool
	Build     func(HotelChans) *ir.Module
}{
	{"geo", false, HotelGeoFn},
	{"recommendation", false, HotelRecommendFn},
	{"user", false, HotelUserFn},
	{"reservation", true, HotelReservationFn},
	{"rate", true, HotelRateFn},
	{"profile", true, HotelProfileFn},
}

// --- Request builders ---

// GeoRequest encodes a nearest-hotels query.
func GeoRequest(lat, lon int64) []byte {
	w := rpc.NewWriter()
	w.PutInt(uint64(lat))
	w.PutInt(uint64(lon))
	return w.Bytes()
}

// UserRequest encodes a login check.
func UserRequest(u int, valid bool) []byte {
	w := rpc.NewWriter()
	w.PutBytes(HotelUserName(u))
	pass := HotelUserPass(u)
	if !valid {
		pass = append([]byte(nil), pass...)
		pass[0] ^= 0x55
	}
	w.PutBytes(pass)
	return w.Bytes()
}

// RecommendRequest encodes a ranked recommendation query.
func RecommendRequest(mode int, lat, lon int64) []byte {
	w := rpc.NewWriter()
	w.PutInt(uint64(mode))
	w.PutInt(uint64(lat))
	w.PutInt(uint64(lon))
	return w.Bytes()
}

// RateRequest encodes a rate-plan query for several hotels.
func RateRequest(in, out int, hotels ...int) []byte {
	w := rpc.NewWriter()
	w.PutInt(uint64(in))
	w.PutInt(uint64(out))
	w.PutInt(uint64(len(hotels)))
	for _, h := range hotels {
		w.PutInt(HotelID(h))
	}
	return w.Bytes()
}

// ProfileRequest encodes a multi-hotel profile fetch.
func ProfileRequest(hotels ...int) []byte {
	w := rpc.NewWriter()
	w.PutInt(uint64(len(hotels)))
	for _, h := range hotels {
		w.PutInt(HotelID(h))
	}
	return w.Bytes()
}

// ReservationRequest encodes a booking.
func ReservationRequest(hotel, in, out, rooms int) []byte {
	w := rpc.NewWriter()
	w.PutInt(HotelID(hotel))
	w.PutInt(uint64(in))
	w.PutInt(uint64(out))
	w.PutInt(uint64(rooms))
	return w.Bytes()
}
