package figures

import (
	"fmt"
	"strings"

	"svbench/internal/isa"
)

// ReportOpts selects which optional studies join the evaluation report.
type ReportOpts struct {
	// Requests per function in the emulation study (fig 4.20); 0 means 6.
	Requests int
	// SkipEmulation leaves out fig 4.20 (the slowest study).
	SkipEmulation bool
	// Chaos adds the fault-injection/recovery table, driven by ChaosSeed.
	Chaos     bool
	ChaosSeed uint64
	// Load adds the open-loop load study (throughput-vs-tail-latency
	// curve and cold-start-vs-keep-alive table), driven by LoadSeed
	// across LoadJobs workers (0 = serial).
	Load     bool
	LoadSeed uint64
	LoadJobs int
	// Scenarios adds the chaos-scenario SLO matrix (scenario × arch),
	// driven by ScenarioSeed across LoadJobs workers.
	Scenarios    bool
	ScenarioSeed uint64
	// Cluster adds the multi-machine fabric table (topology × arch),
	// driven by ClusterSeed across LoadJobs workers.
	Cluster     bool
	ClusterSeed uint64
	// Autoscale adds the cluster-autoscaling policy × RPS matrix, driven
	// by AutoscaleSeed across LoadJobs workers.
	Autoscale     bool
	AutoscaleSeed uint64
	// Sampling adds the sampled-vs-full CPI error table (SMARTS-style
	// sampled detailed simulation, docs/perf.md).
	Sampling bool
	// Log receives progress lines from the chaos study; may be nil.
	Log func(string)
}

// ReportData assembles the full ordered list of figures and tables for
// the evaluation report: the sweep projections from res plus the
// static/emulation tables selected by opt.
func ReportData(res *Results, opt ReportOpts) ([]Data, error) {
	all := []Data{Table41(),
		res.Fig44(), res.Fig45(), res.Fig46(), res.Fig47(), res.Fig48(), res.Fig49(),
		res.Fig410(), res.Fig411(), res.Fig412(), res.Fig413(), res.Fig414(),
		res.Fig415(), res.Fig416(), res.Fig417(), res.Fig418(), res.Fig419(),
		res.TableMPKI()}
	if !opt.SkipEmulation {
		nreq := opt.Requests
		if nreq == 0 {
			nreq = 6
		}
		f420, err := Fig420(nreq)
		if err != nil {
			return nil, err
		}
		all = append(all, f420)
	}
	t44, err := Table44()
	if err != nil {
		return nil, err
	}
	t45, err := Table45()
	if err != nil {
		return nil, err
	}
	all = append(all, t44, t45)
	if opt.Chaos {
		tc, err := TableChaos(opt.ChaosSeed, opt.Log)
		if err != nil {
			return nil, err
		}
		all = append(all, tc)
	}
	if opt.Load {
		jobs := opt.LoadJobs
		if jobs == 0 {
			jobs = 1
		}
		curve, err := LoadCurve(isa.RV64, opt.LoadSeed, jobs)
		if err != nil {
			return nil, err
		}
		ka, err := LoadKeepAlive(isa.RV64, opt.LoadSeed, jobs)
		if err != nil {
			return nil, err
		}
		all = append(all, curve, ka)
	}
	if opt.Scenarios {
		jobs := opt.LoadJobs
		if jobs == 0 {
			jobs = 1
		}
		ts, err := TableScenarios([]isa.Arch{isa.RV64, isa.CISC64}, opt.ScenarioSeed, jobs, opt.Log)
		if err != nil {
			return nil, err
		}
		all = append(all, ts)
	}
	if opt.Cluster {
		jobs := opt.LoadJobs
		if jobs == 0 {
			jobs = 1
		}
		tc, err := TableCluster([]isa.Arch{isa.RV64, isa.CISC64}, opt.ClusterSeed, jobs, opt.Log)
		if err != nil {
			return nil, err
		}
		all = append(all, tc)
	}
	if opt.Autoscale {
		jobs := opt.LoadJobs
		if jobs == 0 {
			jobs = 1
		}
		ta, err := TableAutoscale(isa.RV64, opt.AutoscaleSeed, jobs, opt.Log)
		if err != nil {
			return nil, err
		}
		all = append(all, ta)
	}
	if opt.Sampling {
		ts, err := TableSampling([]isa.Arch{isa.RV64, isa.CISC64}, opt.Log)
		if err != nil {
			return nil, err
		}
		all = append(all, ts)
	}
	return all, nil
}

// Render produces the markdown evaluation report from an assembled data
// list, appending the failure section when the sweep recorded failures.
// Its output is a pure function of res and all: byte-identical across
// worker counts and memoization settings.
func Render(res *Results, all []Data) string {
	var sb strings.Builder
	sb.WriteString("# Evaluation figures and tables (regenerated)\n\n")
	sb.WriteString("Cache-miss rates (MPKI) and all per-core counters come from the\n" +
		"tracing and stats subsystem — see [docs/tracing.md](tracing.md).\n\n")
	for _, d := range all {
		sb.WriteString(d.Markdown())
		sb.WriteString("\n")
	}
	if len(res.Failures) > 0 {
		sb.WriteString("## Failed experiments\n\n")
		for _, f := range res.Failures {
			fmt.Fprintf(&sb, "- %v\n", f)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
