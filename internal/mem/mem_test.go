package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCacheBasics(t *testing.T) {
	c := NewCache(CacheConfig{Name: "t", Size: 1024, LineSize: 64, Assoc: 2, HitLatency: 1})
	if r := c.Access(0x0, false); r.Hit {
		t.Fatal("cold cache must miss")
	}
	if r := c.Access(0x0, false); !r.Hit {
		t.Fatal("second access must hit")
	}
	if r := c.Access(0x3F, false); !r.Hit {
		t.Fatal("same line must hit")
	}
	if r := c.Access(0x40, false); r.Hit {
		t.Fatal("next line must miss")
	}
	if c.Stats.Accesses != 4 || c.Stats.Misses != 2 {
		t.Fatalf("stats: %+v", c.Stats)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way, 8 sets of 64B lines: addresses 0, 1024, 2048 map to set 0.
	c := NewCache(CacheConfig{Name: "t", Size: 1024, LineSize: 64, Assoc: 2, HitLatency: 1})
	c.Access(0, false)
	c.Access(1024, false)
	c.Access(0, false)    // 0 is now MRU
	c.Access(2048, false) // evicts 1024
	if !c.Probe(0) {
		t.Fatal("0 should survive (MRU)")
	}
	if c.Probe(1024) {
		t.Fatal("1024 should be evicted (LRU)")
	}
	if !c.Probe(2048) {
		t.Fatal("2048 should be resident")
	}
}

func TestCacheWriteback(t *testing.T) {
	c := NewCache(CacheConfig{Name: "t", Size: 128, LineSize: 64, Assoc: 1, HitLatency: 1})
	c.Access(0, true) // dirty
	r := c.Access(128, false)
	if !r.Writeback || r.VictimAddr != 0 {
		t.Fatalf("expected writeback of line 0, got %+v", r)
	}
	if c.Stats.Writebacks != 1 {
		t.Fatalf("writebacks=%d", c.Stats.Writebacks)
	}
	// Clean eviction must not write back.
	c.Access(0, false)
	if r := c.Access(128, false); r.Writeback {
		t.Fatal("clean eviction must not write back")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache(CacheConfig{Name: "t", Size: 1024, LineSize: 64, Assoc: 2, HitLatency: 1})
	c.Access(0x100, true)
	p, d := c.Invalidate(0x100)
	if !p || !d {
		t.Fatalf("invalidate: present=%v dirty=%v", p, d)
	}
	if c.Probe(0x100) {
		t.Fatal("line still present after invalidate")
	}
	if p, _ := c.Invalidate(0x100); p {
		t.Fatal("double invalidate reported present")
	}
}

func TestCacheCapacityOne(t *testing.T) {
	// Degenerate single-line cache: every distinct line must evict.
	c := NewCache(CacheConfig{Name: "t", Size: 64, LineSize: 64, Assoc: 1, HitLatency: 1})
	c.Access(0, false)
	c.Access(64, false)
	if c.Probe(0) {
		t.Fatal("capacity-1 cache retained two lines")
	}
	if !c.Probe(64) {
		t.Fatal("most recent line must be resident")
	}
}

// refCache is a brute-force reference model: a fully explicit LRU list per
// set, used to property-check the production cache.
type refCache struct {
	assoc    int
	nsets    uint64
	lineBits uint
	sets     map[uint64][]uint64 // set -> tags, MRU first
}

func newRefCache(size, lineSize, assoc int) *refCache {
	r := &refCache{assoc: assoc, sets: map[uint64][]uint64{}}
	r.nsets = uint64(size / lineSize / assoc)
	for ls := lineSize; ls > 1; ls >>= 1 {
		r.lineBits++
	}
	return r
}

func (r *refCache) access(addr uint64) bool {
	blk := addr >> r.lineBits
	set, tag := blk%r.nsets, blk/r.nsets
	tags := r.sets[set]
	for i, tg := range tags {
		if tg == tag {
			// Move to front.
			copy(tags[1:i+1], tags[:i])
			tags[0] = tag
			return true
		}
	}
	tags = append([]uint64{tag}, tags...)
	if len(tags) > r.assoc {
		tags = tags[:r.assoc]
	}
	r.sets[set] = tags
	return false
}

func TestCacheMatchesReferenceModel(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	f := func() bool {
		sizes := []struct{ size, line, assoc int }{
			{512, 64, 2}, {1024, 32, 4}, {4096, 64, 8}, {64, 64, 1},
		}
		g := sizes[rnd.Intn(len(sizes))]
		c := NewCache(CacheConfig{Name: "p", Size: g.size, LineSize: g.line, Assoc: g.assoc, HitLatency: 1})
		ref := newRefCache(g.size, g.line, g.assoc)
		// A small address space forces heavy conflict traffic.
		for i := 0; i < 2000; i++ {
			addr := uint64(rnd.Intn(8 * g.size))
			hit := c.Access(addr, rnd.Intn(2) == 0).Hit
			want := ref.access(addr)
			if hit != want {
				t.Logf("op %d addr=%#x: cache hit=%v ref=%v (geom %+v)", i, addr, hit, want, g)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDRAMContention(t *testing.T) {
	d := NewDRAM(DRAMConfig{Latency: 100, BusCycle: 10})
	t0 := d.Access(0)
	t1 := d.Access(0) // queued behind the first transfer
	if t0 != 100 {
		t.Fatalf("first access done at %d, want 100", t0)
	}
	if t1 != 110 {
		t.Fatalf("second overlapping access done at %d, want 110", t1)
	}
	// After a long gap there is no queueing.
	t2 := d.Access(10000)
	if t2 != 10100 {
		t.Fatalf("idle access done at %d, want 10100", t2)
	}
}

func TestTLB(t *testing.T) {
	tlb := NewTLB(TLBConfig{Entries: 2, PageBits: 12, MissPenalty: 50})
	if lat := tlb.Access(0x1000); lat != 50 {
		t.Fatalf("cold access latency %d", lat)
	}
	if lat := tlb.Access(0x1FFF); lat != 0 {
		t.Fatalf("same page latency %d", lat)
	}
	tlb.Access(0x2000)
	tlb.Access(0x3000) // evicts page 1 (LRU)
	if lat := tlb.Access(0x1000); lat != 50 {
		t.Fatalf("evicted page should miss, latency %d", lat)
	}
	if tlb.Misses != 4 {
		t.Fatalf("misses=%d want 4", tlb.Misses)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	dram := NewDRAM(DRAMConfig{Latency: 200, BusCycle: 16})
	h := NewHierarchy(DefaultHierConfig(), dram)

	// Cold data access goes to DRAM.
	done := h.AccessD(0, 0x8000, false)
	if done < 200 {
		t.Fatalf("cold access completed at %d, expected >= DRAM latency", done)
	}
	// Warm access is an L1 hit.
	done2 := h.AccessD(1000, 0x8000, false)
	if done2-1000 > 10 {
		t.Fatalf("warm access latency %d, want L1-ish", done2-1000)
	}
	if h.L1D.Stats.Misses != 1 || h.L2.Stats.Misses != 1 {
		t.Fatalf("miss counts: l1d=%d l2=%d", h.L1D.Stats.Misses, h.L2.Stats.Misses)
	}
}

func TestCoherenceInvalidation(t *testing.T) {
	dram := NewDRAM(DRAMConfig{})
	h0 := NewHierarchy(DefaultHierConfig(), dram)
	h1 := NewHierarchy(DefaultHierConfig(), dram)
	h0.SetPeer(h1)
	h1.SetPeer(h0)

	// Core 1 reads a line; core 0 writes it; core 1 must reload.
	h1.AccessD(0, 0x4000, false)
	if !h1.L1D.Probe(0x4000) {
		t.Fatal("line not cached on core 1")
	}
	h0.AccessD(100, 0x4000, true)
	if h1.L1D.Probe(0x4000) {
		t.Fatal("peer write did not invalidate core 1's copy")
	}
	if h1.CoherenceInvals == 0 {
		t.Fatal("coherence invalidation not counted")
	}
	// Core 1 reads the dirty remote line: extra transfer latency and the
	// write-back copy moves.
	before := h1.L1D.Stats.Misses
	h1.AccessD(200, 0x4000, false)
	if h1.L1D.Stats.Misses != before+1 {
		t.Fatal("reload after invalidation should miss")
	}
}

func TestHierarchyFlushAndStats(t *testing.T) {
	dram := NewDRAM(DRAMConfig{})
	h := NewHierarchy(DefaultHierConfig(), dram)
	h.AccessD(0, 0x100, true)
	h.FetchI(0, 0x200)
	h.ResetStats()
	if h.L1D.Stats.Accesses != 0 || h.L1I.Stats.Accesses != 0 {
		t.Fatal("stats not reset")
	}
	if !h.L1D.Probe(0x100) {
		t.Fatal("reset-stats must not flush contents")
	}
	h.Flush()
	if h.L1D.Probe(0x100) || h.L1I.Probe(0x200) {
		t.Fatal("flush must empty caches")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, cfg := range []CacheConfig{
		{Name: "badline", Size: 1024, LineSize: 48, Assoc: 2},
		{Name: "badsize", Size: 1000, LineSize: 64, Assoc: 2},
		{Name: "badassoc", Size: 1024, LineSize: 64, Assoc: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", cfg.Name)
				}
			}()
			NewCache(cfg)
		}()
	}
}
