package loadgen

import (
	"fmt"
	"sort"
	"strings"

	"svbench/internal/trace"
)

// Invocation is one request's lifecycle through the pool. All times are
// virtual nanoseconds. On fault-free runs (one attempt per invocation)
// Latency = QueueDelay + ColdPenalty + Service; under chaos, QueueDelay
// and ColdPenalty accumulate across attempts and Latency additionally
// carries backoffs, deadlines and injected delays.
type Invocation struct {
	ID          int
	Instance    int    // instance of the last attempt that ran
	Arrive      uint64 // entered the system
	Start       uint64 // last attempt began executing
	Done        uint64 // client observed the final outcome
	QueueDelay  uint64 // waited for an instance (summed over attempts)
	ColdPenalty uint64 // boot penalties paid (summed over attempts)
	Service     uint64 // on-instance execution time of the last attempt
	Latency     uint64 // Done - Arrive
	Cold        bool   // any attempt cold-started
	CheckFailed bool   // some reply failed the spec's check
	// Chaos/retry-path fields (zero on fault-free runs).
	Attempts        int  // send attempts issued (>= 1)
	FaultedAttempts int  // attempts the fault layer touched
	Failed          bool // exhausted every attempt without a good reply
}

// Pcts summarizes one metric's distribution with nearest-rank
// percentiles over the run's invocations.
type Pcts struct {
	P50, P95, P99, Max uint64
	Mean               float64
}

// Report is one load run's complete result. Every field — including the
// rendered table, stats text and trace JSON — is a pure function of the
// run's Config.
type Report struct {
	Cfg         Config
	Invocations []Invocation

	ColdStarts      uint64
	WarmStarts      uint64
	ChurnColdStarts uint64 // post-warmup cold starts (keep-alive churn)
	Reclaims        uint64
	PeakInstances   uint64
	MaxQueueDepth   uint64
	CheckFailures   uint64

	// Chaos/retry-path counters (zero on fault-free runs).
	Attempts        uint64 // send attempts including retries
	Retries         uint64 // attempts re-sent after a failure
	Timeouts        uint64 // attempts that hit the reply deadline
	BadReplies      uint64 // replies corrupted or failing the check
	ErrorReplies    uint64 // injected fast-fail error replies
	FaultedAttempts uint64 // attempts the fault layer touched
	Failed          uint64 // invocations that exhausted every attempt
	Recovered       uint64 // invocations that succeeded after >= 1 retry

	Latency     Pcts
	QueueDelay  Pcts
	Service     Pcts
	ColdPenalty Pcts // over cold invocations only

	// Makespan is the last completion's timestamp; Throughput is
	// completions per virtual second over it.
	Makespan   uint64
	Throughput float64

	// StatsText is the run's stats-registry dump (gem5 stats.txt style);
	// TraceJSON the Chrome/Perfetto trace of arrival/run/done/cold-start/
	// reclaim (plus retry/fail under chaos) events. Events holds the raw
	// trace records so downstream layers (internal/scenario) can splice
	// their own events in before re-exporting; TraceDropped counts ring
	// overwrites.
	StatsText    string
	TraceJSON    []byte
	Events       []trace.Event
	TraceDropped uint64
}

// Percentiles computes nearest-rank percentiles of vals (unsorted, left
// unmodified) — the same summary the engine applies to its own metrics,
// exported for phase-bucketed reporting.
func Percentiles(vals []uint64) Pcts { return pcts(vals) }

// pcts computes nearest-rank percentiles of vals (unsorted, not
// modified). The rank is the exact integer ceil(p·n) — a float product
// plus a fudge constant can misrank at large n, where the rounding
// error of p·n outgrows any fixed epsilon.
func pcts(vals []uint64) Pcts {
	if len(vals) == 0 {
		return Pcts{}
	}
	s := append([]uint64(nil), vals...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := func(pct int) uint64 {
		// ceil(pct·n/100) in integer arithmetic, 1-based → index.
		i := (pct*len(s)+99)/100 - 1
		if i < 0 {
			i = 0
		}
		return s[i]
	}
	var sum float64
	for _, v := range s {
		sum += float64(v)
	}
	return Pcts{
		P50:  rank(50),
		P95:  rank(95),
		P99:  rank(99),
		Max:  s[len(s)-1],
		Mean: sum / float64(len(s)),
	}
}

// report assembles the Report after the event loop drains.
func (e *engine) report() (*Report, error) {
	label := fmt.Sprintf("%s load (%s)", e.cfg.Spec.Name, e.cfg.Cfg.Arch)
	tj, err := trace.ChromeJSON(e.tracer.Events(), nil, e.tracer.Dropped)
	if err != nil {
		return nil, fmt.Errorf("loadgen: trace export: %w", err)
	}

	r := &Report{
		Cfg:             e.cfg,
		Invocations:     e.invs,
		ColdStarts:      e.coldStarts,
		WarmStarts:      e.warmStarts,
		ChurnColdStarts: e.churnColds,
		Reclaims:        e.reclaims,
		PeakInstances:   e.peak,
		MaxQueueDepth:   e.maxQueue,
		CheckFailures:   e.checkFailures,
		Attempts:        e.attempts,
		Retries:         e.retries,
		Timeouts:        e.timeouts,
		BadReplies:      e.badReplies,
		ErrorReplies:    e.errorReplies,
		FaultedAttempts: e.faulted,
		Failed:          e.failed,
		Recovered:       e.recovered,
		StatsText:       e.reg.Text(label),
		TraceJSON:       tj,
		Events:          e.tracer.Events(),
		TraceDropped:    e.tracer.Dropped,
	}

	lat := make([]uint64, 0, len(e.invs))
	qd := make([]uint64, 0, len(e.invs))
	svc := make([]uint64, 0, len(e.invs))
	var cold []uint64
	completions := 0
	for i := range e.invs {
		inv := &e.invs[i]
		lat = append(lat, inv.Latency)
		qd = append(qd, inv.QueueDelay)
		svc = append(svc, inv.Service)
		if inv.Cold {
			cold = append(cold, inv.ColdPenalty)
		}
		if !inv.Failed {
			completions++
		}
		if inv.Done > r.Makespan {
			r.Makespan = inv.Done
		}
	}
	r.Latency = pcts(lat)
	r.QueueDelay = pcts(qd)
	r.Service = pcts(svc)
	r.ColdPenalty = pcts(cold)
	if r.Makespan > 0 {
		// Completions per virtual second: invocations that exhausted every
		// attempt never completed, so they don't count as throughput.
		r.Throughput = float64(completions) * 1e9 / float64(r.Makespan)
	}
	return r, nil
}

// ColdRate is the fraction of invocations that cold-started at least
// once. It is defined over invocations with Cold set — not over the
// attempt-level ColdStarts counter, which can exceed the invocation
// count under retries (every re-sent attempt may cold-start again) and
// would push a "rate" past 1.0.
func (r *Report) ColdRate() float64 {
	if len(r.Invocations) == 0 {
		return 0
	}
	cold := 0
	for i := range r.Invocations {
		if r.Invocations[i].Cold {
			cold++
		}
	}
	return float64(cold) / float64(len(r.Invocations))
}

// ErrorRate is the fraction of invocations that failed outright
// (exhausted every attempt).
func (r *Report) ErrorRate() float64 {
	if len(r.Invocations) == 0 {
		return 0
	}
	return float64(r.Failed) / float64(len(r.Invocations))
}

// Table renders the run's deterministic latency table: configuration
// echo, cold/warm mix, and a percentile row per metric. Same config,
// same bytes.
func (r *Report) Table() string {
	var sb strings.Builder
	c := r.Cfg
	fmt.Fprintf(&sb, "== load: %s on %s ==\n", c.Spec.Name, c.Cfg.Arch)
	fmt.Fprintf(&sb, "arrival      %s, %.1f rps over %.3f ms window (seed %d", c.Arrival, c.RPS, float64(c.Duration)/1e6, c.Seed)
	if c.Arrival == Bursty {
		burst := c.Burst
		if burst <= 0 {
			burst = DefaultBurst
		}
		fmt.Fprintf(&sb, ", burst %d", burst)
	}
	sb.WriteString(")\n")
	fmt.Fprintf(&sb, "policy       keep-alive %.3f ms, pool cap %d\n", float64(c.KeepAlive)/1e6, c.PoolCap())
	fmt.Fprintf(&sb, "invocations  %d (%d check failures)\n", len(r.Invocations), r.CheckFailures)
	fmt.Fprintf(&sb, "cold starts  %d (%d warmup + %d churn), warm %d, reclaims %d\n",
		r.ColdStarts, r.ColdStarts-r.ChurnColdStarts, r.ChurnColdStarts, r.WarmStarts, r.Reclaims)
	fmt.Fprintf(&sb, "pool         peak %d instances, max queue depth %d\n", r.PeakInstances, r.MaxQueueDepth)
	if c.Chaos != nil || c.Retry != nil {
		fmt.Fprintf(&sb, "attempts     %d total (%d retried, %d faulted): %d timeouts, %d bad replies, %d error replies\n",
			r.Attempts, r.Retries, r.FaultedAttempts, r.Timeouts, r.BadReplies, r.ErrorReplies)
		fmt.Fprintf(&sb, "outcome      %d recovered, %d failed (error rate %.2f%%)\n",
			r.Recovered, r.Failed, 100*r.ErrorRate())
	}
	fmt.Fprintf(&sb, "makespan     %.3f ms virtual, throughput %.1f rps\n", float64(r.Makespan)/1e6, r.Throughput)
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "%-13s %12s %12s %12s %14s %12s\n", "metric (ns)", "p50", "p95", "p99", "mean", "max")
	row := func(name string, p Pcts) {
		fmt.Fprintf(&sb, "%-13s %12d %12d %12d %14.1f %12d\n", name, p.P50, p.P95, p.P99, p.Mean, p.Max)
	}
	row("latency", r.Latency)
	row("queue-delay", r.QueueDelay)
	row("service", r.Service)
	fmt.Fprintf(&sb, "%-13s %12d %12d %12d %14.1f %12d  (over %d cold)\n",
		"cold-penalty", r.ColdPenalty.P50, r.ColdPenalty.P95, r.ColdPenalty.P99,
		r.ColdPenalty.Mean, r.ColdPenalty.Max, r.ColdStarts)
	return sb.String()
}
