package harness

import (
	"testing"

	"svbench/internal/isa"
)

func TestShopSpecsFunctional(t *testing.T) {
	for _, spec := range ShopSpecs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			res, err := Run(isa.RV64, spec)
			if err != nil {
				t.Fatal(err)
			}
			if res.Cold.Cycles <= res.Warm.Cycles {
				t.Errorf("cold %d <= warm %d", res.Cold.Cycles, res.Warm.Cycles)
			}
			t.Logf("cold=%d warm=%d insts=%d", res.Cold.Cycles, res.Warm.Cycles, res.Cold.Insts)
		})
	}
}

func TestHotelSpecsFunctional(t *testing.T) {
	for _, spec := range HotelSpecs(EngineCassandra) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			res, err := Run(isa.RV64, spec)
			if err != nil {
				t.Fatal(err)
			}
			if res.Cold.Cycles <= res.Warm.Cycles {
				t.Errorf("cold %d <= warm %d", res.Cold.Cycles, res.Warm.Cycles)
			}
			t.Logf("cold=%d warm=%d l1i=%d l1d=%d l2=%d", res.Cold.Cycles, res.Warm.Cycles,
				res.Cold.L1IMisses, res.Cold.L1DMisses, res.Cold.L2Misses)
		})
	}
}

func TestHotelOnMongoAndMariaDB(t *testing.T) {
	for _, eng := range []HotelEngine{EngineMongo, EngineMariaDB} {
		res, err := Run(isa.RV64, HotelSpec("rate", eng))
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		t.Logf("%s: cold=%d warm=%d", eng, res.Cold.Cycles, res.Warm.Cycles)
	}
}
