package figures

import (
	"fmt"

	"svbench/internal/faults"
	"svbench/internal/harness"
	"svbench/internal/isa"
)

// chaosSpecs picks representative workloads for the fault-injection
// campaign: a compute-only function (no services to degrade besides its
// own reply path) and two hotel functions whose request paths traverse
// the Cassandra service rules.
func chaosSpecs() []harness.Spec {
	var specs []harness.Spec
	for _, sp := range harness.StandaloneSpecs() {
		if sp.Name == "fibonacci-go" || sp.Name == "aes-go" {
			specs = append(specs, sp)
		}
	}
	specs = append(specs,
		harness.HotelSpec("geo", harness.EngineCassandra),
		harness.HotelSpec("profile", harness.EngineCassandra),
	)
	return specs
}

// TableChaos runs the representative workloads on RISC-V under the
// default fault plan for seed, with the default retry policy compiled
// into the load generator, and reports the measurements next to the
// fault ledger. The whole table is a deterministic function of seed.
func TableChaos(seed uint64, log func(string)) (Data, error) {
	d := Data{
		ID:    "chaos",
		Title: fmt.Sprintf("Fault injection with retry, RISC-V (seed %d)", seed),
		Columns: []string{"cold cycles", "warm cycles", "injected", "surfaced",
			"retried", "recovered", "exhausted"},
	}
	retry := faults.DefaultRetry()
	for _, sp := range chaosSpecs() {
		sp.Faults = faults.DefaultPlan(seed)
		sp.Retry = retry
		r, err := harness.Run(isa.RV64, sp)
		if err != nil {
			return d, fmt.Errorf("chaos %s: %w", sp.Name, err)
		}
		rep := r.FaultReport
		d.Rows = append(d.Rows, Row{Label: sp.Name, Values: []float64{
			float64(r.Cold.Cycles), float64(r.Warm.Cycles),
			float64(rep.Injected), float64(rep.Surfaced),
			float64(rep.Retried), float64(rep.Recovered), float64(rep.Exhausted),
		}})
		if log != nil {
			log(fmt.Sprintf("chaos %-16s cold=%-9d warm=%-9d inj=%d ret=%d rec=%d exh=%d",
				sp.Name, r.Cold.Cycles, r.Warm.Cycles,
				rep.Injected, rep.Retried, rep.Recovered, rep.Exhausted))
		}
	}
	return d, nil
}
