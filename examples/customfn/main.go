// Custom function: write a new serverless workload against the IR builder
// (a CRC-style checksum service), wrap it in each language runtime, and
// measure it — how a user extends the suite with their own benchmark.
package main

import (
	"fmt"
	"log"

	"svbench"
	"svbench/internal/ir"
	"svbench/internal/rpc"
	"svbench/internal/vswarm"
)

// buildChecksum defines handler(req, reqLen, resp): read a bytes field,
// fold it with a polynomial-ish rolling checksum, respond with the sum.
func buildChecksum() *ir.Module {
	m := ir.NewModule("checksum")
	b := ir.NewFunc(vswarm.Handler, 3)
	req, resp := b.Param(0), b.Param(2)

	cur := b.Frame(b.Buf("cur", 8), 0)
	b.Store(cur, 0, b.Const(8), 8)
	data := b.Frame(b.Buf("data", 512), 0)
	n := b.Call("mbuf_get_bytes", req, cur, data, b.Const(512))

	sum := b.Const(0xFFFF)
	i := b.Const(0)
	loop, done := b.NewLabel("loop"), b.NewLabel("done")
	b.Label(loop)
	b.Br(ir.Ge, i, n, done)
	c := b.LoadU(b.Add(data, i), 0, 1)
	b.XorInto(sum, sum, c)
	hi := b.ShrI(sum, 11)
	b.XorInto(sum, sum, hi)
	b.MulInto(sum, sum, b.Const(0x101))
	sum = b.AndI(sum, 0xFFFFFF)
	b.AddIInto(i, i, 1)
	b.Jmp(loop)
	b.Label(done)

	b.CallV("mbuf_reset", resp)
	b.CallV("mbuf_put_int", resp, sum)
	b.Ret(b.Call("mbuf_len", resp))
	m.AddFunc(b.Build())
	return m
}

func main() {
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	w := rpc.NewWriter()
	w.PutBytes(payload)
	request := w.Bytes()

	for _, rt := range []svbench.Runtime{svbench.GoRT, svbench.PyRT, svbench.NodeRT} {
		spec := svbench.Spec{
			Name:    "checksum-" + string(rt),
			Runtime: rt,
			Build:   func(*svbench.Env) (*ir.Module, error) { return buildChecksum(), nil },
			Request: func() []byte { return request },
		}
		res, err := svbench.RunFunction(svbench.RV64, spec)
		if err != nil {
			log.Fatal(err)
		}
		r := rpc.NewReader(res.Response)
		sum, err := r.Int()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s checksum=%#x cold=%-8d warm=%d cycles\n",
			res.Name, sum, res.Cold.Cycles, res.Warm.Cycles)
	}
}
