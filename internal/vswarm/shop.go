package vswarm

import (
	"svbench/internal/ir"
	"svbench/internal/rpc"
)

// The Online Shop application (vSwarm's port of Google's Online Boutique,
// Table 3.3): six functions across the three runtimes.

// Shop catalog geometry.
const (
	shopProducts   = 24
	productRecSize = 64 // id(8) price(8) weight(8) namelen(8) name(32)
)

// shopProductName returns the catalog name of product i.
func shopProductName(i int) string {
	kinds := []string{"vintage-camera", "film-roll", "lens-kit", "tripod",
		"flash-unit", "camera-bag", "光filter-set", "strap"}
	_ = kinds
	names := []string{
		"vintage-camera", "film-roll-bw", "lens-kit-50mm", "tripod-carbon",
		"flash-unit-pro", "camera-bag-xl", "filter-set-nd", "strap-leather",
		"vintage-radio", "record-player", "speaker-kit", "amp-tube",
		"headphones-hd", "mic-condenser", "mixer-4ch", "cable-xlr",
		"watch-auto", "watch-quartz", "band-steel", "band-nato",
		"glass-loupe", "cleaning-kit", "album-photo", "frame-wood",
	}
	return names[i%len(names)]
}

func shopCatalog() []byte {
	out := make([]byte, 0, shopProducts*productRecSize)
	put64 := func(b []byte, v uint64) {
		for k := 0; k < 8; k++ {
			b[k] = byte(v >> (8 * k))
		}
	}
	for i := 0; i < shopProducts; i++ {
		rec := make([]byte, productRecSize)
		put64(rec[0:], uint64(1000+i))
		put64(rec[8:], uint64(990+i*137)) // price in cents
		put64(rec[16:], uint64(120+i*55)) // weight in grams
		name := shopProductName(i)
		put64(rec[24:], uint64(len(name)))
		copy(rec[32:], name)
		out = append(out, rec...)
	}
	return out
}

// ProductCatalog builds the product catalog service (Go): request
// {query:bytes}; response {count:int, (id:int, price:int)*}.
func ProductCatalog() *ir.Module {
	m := ir.NewModule("productcatalog")
	m.AddGlobal(&ir.Global{Name: "shop_catalog", Data: shopCatalog()})

	// contains(hay, hayLen, needle, needleLen) -> 1 if substring.
	{
		b := ir.NewFunc("contains", 4)
		hay, hn, nd, nn := b.Param(0), b.Param(1), b.Param(2), b.Param(3)
		i := b.Const(0)
		lim := b.Sub(hn, nn)
		loop, done, yes := b.NewLabel("loop"), b.NewLabel("done"), b.NewLabel("yes")
		b.Label(loop)
		b.Br(ir.Gt, i, lim, done)
		p := b.Add(hay, i)
		r := b.Call("memcmp", p, nd, nn)
		b.BrI(ir.Eq, r, 0, yes)
		b.AddIInto(i, i, 1)
		b.Jmp(loop)
		b.Label(yes)
		b.Ret(b.Const(1))
		b.Label(done)
		b.Ret(b.Const(0))
		m.AddFunc(b.Build())
	}

	b := ir.NewFunc(Handler, 3)
	req, resp := b.Param(0), b.Param(2)
	cur := newCursor(b, "cur")
	query := b.Frame(b.Buf("query", 64), 0)
	qn := b.Call("mbuf_get_bytes", req, cur, query, b.Const(64))

	b.CallV("mbuf_reset", resp)
	cat := b.Global("shop_catalog", 0)
	count := b.Const(0)
	ids := b.Frame(b.Buf("ids", shopProducts*16), 0)
	i := b.Const(0)
	loop, done := b.NewLabel("loop"), b.NewLabel("done")
	b.Label(loop)
	b.BrI(ir.Ge, i, shopProducts, done)
	rec := b.Add(cat, b.MulI(i, productRecSize))
	nameLen := b.Load(rec, 24, 8)
	name := b.AddI(rec, 32)
	hit := b.Call("contains", name, nameLen, query, qn)
	skip := b.NewLabel("skip")
	b.BrI(ir.Eq, hit, 0, skip)
	slot := b.Add(ids, b.ShlI(count, 4))
	b.Store(slot, 0, b.Load(rec, 0, 8), 8)
	b.Store(slot, 8, b.Load(rec, 8, 8), 8)
	b.AddIInto(count, count, 1)
	b.Label(skip)
	b.AddIInto(i, i, 1)
	b.Jmp(loop)
	b.Label(done)

	b.CallV("mbuf_put_int", resp, count)
	j := b.Const(0)
	l2, d2 := b.NewLabel("emit"), b.NewLabel("emitd")
	b.Label(l2)
	b.Br(ir.Ge, j, count, d2)
	eslot := b.Add(ids, b.ShlI(j, 4))
	b.CallV("mbuf_put_int", resp, b.Load(eslot, 0, 8))
	b.CallV("mbuf_put_int", resp, b.Load(eslot, 8, 8))
	b.AddIInto(j, j, 1)
	b.Jmp(l2)
	b.Label(d2)
	b.Ret(b.Call("mbuf_len", resp))
	m.AddFunc(b.Build())
	return m
}

// Shipping builds the shipping quote service (Go): request
// {zip:int, nitems:int, (productIdx:int, qty:int)*}; response {quote:int}.
func Shipping() *ir.Module {
	m := ir.NewModule("shipping")
	m.AddGlobal(&ir.Global{Name: "shop_catalog", Data: shopCatalog()})

	b := ir.NewFunc(Handler, 3)
	req, resp := b.Param(0), b.Param(2)
	cur := newCursor(b, "cur")
	zip := b.Call("mbuf_get_int", req, cur)
	n := b.Call("mbuf_get_int", req, cur)
	cat := b.Global("shop_catalog", 0)

	grams := b.Const(0)
	i := b.Const(0)
	loop, done := b.NewLabel("loop"), b.NewLabel("done")
	b.Label(loop)
	b.Br(ir.Ge, i, n, done)
	idx := b.Call("mbuf_get_int", req, cur)
	qty := b.Call("mbuf_get_int", req, cur)
	rec := b.Add(cat, b.MulI(b.RemU(idx, b.Const(shopProducts)), productRecSize))
	w := b.Load(rec, 16, 8)
	b.AddInto(grams, grams, b.Mul(w, qty))
	b.AddIInto(i, i, 1)
	b.Jmp(loop)
	b.Label(done)

	// Zone distance from the zip code, then the tariff formula.
	zone := b.RemU(zip, b.Const(9))
	dist := b.MulI(b.AddI(zone, 1), 173)
	perKg := b.AddI(b.MulI(dist, 3), 499)
	kg100 := b.DivU(b.MulI(grams, 100), b.Const(1000)) // hundredths of kg
	quote := b.DivU(b.Mul(kg100, perKg), b.Const(100))
	quote = b.AddI(quote, 299) // base fee

	b.CallV("mbuf_reset", resp)
	b.CallV("mbuf_put_int", resp, quote)
	b.Ret(b.Call("mbuf_len", resp))
	m.AddFunc(b.Build())
	return m
}

// Recommendation builds the shop recommendation service (Python): request
// {userId:int, k:int}; response {k product ids}. It scores the catalog
// with a hash mix and selects the top-k by repeated maximum selection.
func Recommendation() *ir.Module {
	m := ir.NewModule("recommendationservice")
	m.AddGlobal(&ir.Global{Name: "shop_catalog", Data: shopCatalog()})

	b := ir.NewFunc(Handler, 3)
	req, resp := b.Param(0), b.Param(2)
	cur := newCursor(b, "cur")
	user := b.Call("mbuf_get_int", req, cur)
	k := b.Call("mbuf_get_int", req, cur)
	caps := b.NewLabel("caps")
	b.BrI(ir.Le, k, 8, caps)
	b.ConstInto(k, 8)
	b.Label(caps)

	scores := b.Frame(b.Buf("scores", shopProducts*8), 0)
	cat := b.Global("shop_catalog", 0)
	i := b.Const(0)
	sl, sd := b.NewLabel("score"), b.NewLabel("scored")
	b.Label(sl)
	b.BrI(ir.Ge, i, shopProducts, sd)
	rec := b.Add(cat, b.MulI(i, productRecSize))
	id := b.Load(rec, 0, 8)
	mix := b.Xor(b.MulI(id, 0x9E3779B1), b.MulI(user, 0x85EBCA77))
	mix = b.Xor(mix, b.ShrI(mix, 13))
	mix = b.AndI(mix, 0x7FFFFFFF)
	b.Store(b.Add(scores, b.ShlI(i, 3)), 0, mix, 8)
	b.AddIInto(i, i, 1)
	b.Jmp(sl)
	b.Label(sd)

	b.CallV("mbuf_reset", resp)
	b.CallV("mbuf_put_int", resp, k)
	// Top-k selection: find and clear the max k times.
	r := b.Const(0)
	ol, od := b.NewLabel("outer"), b.NewLabel("outerd")
	b.Label(ol)
	b.Br(ir.Ge, r, k, od)
	best := b.Const(-1)
	bestIdx := b.Const(0)
	j := b.Const(0)
	il, id2 := b.NewLabel("inner"), b.NewLabel("innerd")
	b.Label(il)
	b.BrI(ir.Ge, j, shopProducts, id2)
	sc := b.Load(b.Add(scores, b.ShlI(j, 3)), 0, 8)
	le := b.NewLabel("le")
	b.Br(ir.Le, sc, best, le)
	b.MovInto(best, sc)
	b.MovInto(bestIdx, j)
	b.Label(le)
	b.AddIInto(j, j, 1)
	b.Jmp(il)
	b.Label(id2)
	b.Store(b.Add(scores, b.ShlI(bestIdx, 3)), 0, b.Const(-1), 8)
	b.CallV("mbuf_put_int", resp, b.AddI(bestIdx, 1000))
	b.AddIInto(r, r, 1)
	b.Jmp(ol)
	b.Label(od)
	b.Ret(b.Call("mbuf_len", resp))
	m.AddFunc(b.Build())
	return m
}

const emailTemplate = "Hello @! Your order #@ has shipped. Thank you for shopping " +
	"with the boutique. Track your parcel in the app. With kind regards, the shop team."

// Email builds the email rendering service (Python): request
// {name:bytes, order:int}; response {rendered:bytes}.
func Email() *ir.Module {
	m := ir.NewModule("emailservice")
	m.AddGlobal(&ir.Global{Name: "email_tmpl", Data: []byte(emailTemplate)})

	b := ir.NewFunc(Handler, 3)
	req, resp := b.Param(0), b.Param(2)
	cur := newCursor(b, "cur")
	name := b.Frame(b.Buf("name", 64), 0)
	nn := b.Call("mbuf_get_bytes", req, cur, name, b.Const(64))
	order := b.Call("mbuf_get_int", req, cur)

	out := b.Frame(b.Buf("out", 512), 0)
	tmpl := b.Global("email_tmpl", 0)
	tl := b.Const(int64(len(emailTemplate)))
	oi := b.Const(0)
	ti := b.Const(0)
	loop, done := b.NewLabel("loop"), b.NewLabel("done")
	sub := b.NewLabel("sub")
	cont := b.NewLabel("cont")
	first := b.Const(1)
	b.Label(loop)
	b.Br(ir.Ge, ti, tl, done)
	c := b.LoadU(b.Add(tmpl, ti), 0, 1)
	b.BrI(ir.Eq, c, '@', sub)
	b.Store(b.Add(out, oi), 0, c, 1)
	b.AddIInto(oi, oi, 1)
	b.Jmp(cont)
	b.Label(sub)
	isOrder := b.NewLabel("isord")
	b.BrI(ir.Eq, first, 0, isOrder)
	// Substitute the customer name.
	b.CallV("memcpy", b.Add(out, oi), name, nn)
	b.AddInto(oi, oi, nn)
	b.ConstInto(first, 0)
	b.Jmp(cont)
	b.Label(isOrder)
	// Substitute the order number as decimal digits (reversed-then-
	// swapped in place).
	v := b.Mov(order)
	start := b.Mov(oi)
	dl, dd := b.NewLabel("dig"), b.NewLabel("digd")
	b.Label(dl)
	d := b.RemU(v, b.Const(10))
	b.Store(b.Add(out, oi), 0, b.AddI(d, '0'), 1)
	b.AddIInto(oi, oi, 1)
	b.MovInto(v, b.DivU(v, b.Const(10)))
	b.BrI(ir.Eq, v, 0, dd)
	b.Jmp(dl)
	b.Label(dd)
	// Reverse the digits.
	lo := b.Mov(start)
	hi := b.AddI(oi, -1)
	rl, rd := b.NewLabel("rev"), b.NewLabel("revd")
	b.Label(rl)
	b.Br(ir.Ge, lo, hi, rd)
	cl := b.LoadU(b.Add(out, lo), 0, 1)
	ch := b.LoadU(b.Add(out, hi), 0, 1)
	b.Store(b.Add(out, lo), 0, ch, 1)
	b.Store(b.Add(out, hi), 0, cl, 1)
	b.AddIInto(lo, lo, 1)
	b.AddIInto(hi, hi, -1)
	b.Jmp(rl)
	b.Label(rd)
	b.Label(cont)
	b.AddIInto(ti, ti, 1)
	b.Jmp(loop)
	b.Label(done)

	b.CallV("mbuf_reset", resp)
	b.CallV("mbuf_put_bytes", resp, out, oi)
	b.Ret(b.Call("mbuf_len", resp))
	m.AddFunc(b.Build())
	return m
}

// Currency rates in millionths of the base unit.
var currencyRates = []uint64{1000000, 920000, 1310000, 148950, 790330, 680110, 1520000, 109240}

func currencyTable() []byte {
	out := make([]byte, 8*len(currencyRates))
	for i, r := range currencyRates {
		for k := 0; k < 8; k++ {
			out[i*8+k] = byte(r >> (8 * k))
		}
	}
	return out
}

// Currency builds the conversion service (Node.js): request
// {amount:int, from:int, to:int}; response {converted:int}. Fixed-point
// through 128-bit-free integer math: (amount*rate[from])/rate[to].
func Currency() *ir.Module {
	m := ir.NewModule("currencyservice")
	m.AddGlobal(&ir.Global{Name: "fx_rates", Data: currencyTable()})

	b := ir.NewFunc(Handler, 3)
	req, resp := b.Param(0), b.Param(2)
	cur := newCursor(b, "cur")
	amount := b.Call("mbuf_get_int", req, cur)
	from := b.Call("mbuf_get_int", req, cur)
	to := b.Call("mbuf_get_int", req, cur)
	n := int64(len(currencyRates))
	rates := b.Global("fx_rates", 0)
	rf := b.Load(b.Add(rates, b.ShlI(b.RemU(from, b.Const(n)), 3)), 0, 8)
	rt := b.Load(b.Add(rates, b.ShlI(b.RemU(to, b.Const(n)), 3)), 0, 8)
	conv := b.DivU(b.Mul(amount, rf), rt)

	b.CallV("mbuf_reset", resp)
	b.CallV("mbuf_put_int", resp, conv)
	b.Ret(b.Call("mbuf_len", resp))
	m.AddFunc(b.Build())
	return m
}

// Payment builds the payment service (Node.js): request {card:bytes,
// amount:int}; response {ok:int, txn:int}. The card is validated with the
// Luhn checksum.
func Payment() *ir.Module {
	m := ir.NewModule("paymentservice")

	b := ir.NewFunc(Handler, 3)
	req, resp := b.Param(0), b.Param(2)
	cur := newCursor(b, "cur")
	card := b.Frame(b.Buf("card", 32), 0)
	cn := b.Call("mbuf_get_bytes", req, cur, card, b.Const(32))
	amount := b.Call("mbuf_get_int", req, cur)
	_ = amount

	// Luhn: from the rightmost digit, double every second digit.
	sum := b.Const(0)
	i := b.AddI(cn, -1)
	dbl := b.Const(0)
	loop, done := b.NewLabel("loop"), b.NewLabel("done")
	b.Label(loop)
	b.BrI(ir.Lt, i, 0, done)
	d := b.AddI(b.LoadU(b.Add(card, i), 0, 1), -'0')
	noDbl := b.NewLabel("nodbl")
	b.BrI(ir.Eq, dbl, 0, noDbl)
	b.MovInto(d, b.ShlI(d, 1))
	small := b.NewLabel("small")
	b.BrI(ir.Lt, d, 10, small)
	b.MovInto(d, b.AddI(d, -9))
	b.Label(small)
	b.Label(noDbl)
	b.AddInto(sum, sum, d)
	b.XorInto(dbl, dbl, b.Const(1))
	b.AddIInto(i, i, -1)
	b.Jmp(loop)
	b.Label(done)
	rem := b.RemU(sum, b.Const(10))
	ok := b.Set(ir.Eq, rem, b.Const(0))
	txn := b.Call("fnv64", card, cn)
	txn = b.AndI(txn, 0x7FFFFFFF)

	b.CallV("mbuf_reset", resp)
	b.CallV("mbuf_put_int", resp, ok)
	b.CallV("mbuf_put_int", resp, txn)
	b.Ret(b.Call("mbuf_len", resp))
	m.AddFunc(b.Build())
	return m
}

// --- Request builders ---

// CatalogRequest encodes a product search.
func CatalogRequest(query string) []byte {
	w := rpc.NewWriter()
	w.PutString(query)
	return w.Bytes()
}

// ShippingRequest encodes a quote request for item (index, qty) pairs.
func ShippingRequest(zip int, items [][2]int) []byte {
	w := rpc.NewWriter()
	w.PutInt(uint64(zip))
	w.PutInt(uint64(len(items)))
	for _, it := range items {
		w.PutInt(uint64(it[0]))
		w.PutInt(uint64(it[1]))
	}
	return w.Bytes()
}

// RecommendationRequest encodes a top-k recommendation query.
func RecommendationRequest(user, k int) []byte {
	w := rpc.NewWriter()
	w.PutInt(uint64(user))
	w.PutInt(uint64(k))
	return w.Bytes()
}

// EmailRequest encodes an order-confirmation rendering request.
func EmailRequest(name string, order int) []byte {
	w := rpc.NewWriter()
	w.PutString(name)
	w.PutInt(uint64(order))
	return w.Bytes()
}

// CurrencyRequest encodes a conversion request.
func CurrencyRequest(amount uint64, from, to int) []byte {
	w := rpc.NewWriter()
	w.PutInt(amount)
	w.PutInt(uint64(from))
	w.PutInt(uint64(to))
	return w.Bytes()
}

// PaymentRequest encodes a charge request. ValidCard generates a
// Luhn-valid number.
func PaymentRequest(card string, amount uint64) []byte {
	w := rpc.NewWriter()
	w.PutString(card)
	w.PutInt(amount)
	return w.Bytes()
}

// ValidCard returns a 16-digit Luhn-valid card number.
func ValidCard() string {
	digits := []byte("4242424242424242")
	return string(digits)
}
