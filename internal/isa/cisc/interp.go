package cisc

import (
	"fmt"

	"svbench/internal/isa"
)

// ErrHalt and ErrBlock alias the shared sentinels so callers can match
// either through this package or through isa.
var (
	ErrHalt  = isa.ErrHalt
	ErrBlock = isa.ErrBlock
)

// SharedText is an immutable pre-decoded view of a text range. It is
// never written after PredecodeText returns, so one SharedText can back
// the decode caches of any number of concurrently running machines; the
// per-machine DecodeCache remains single-threaded mutable state.
type SharedText struct {
	base uint64
	inst []Inst // Kind==KindInvalid means no instruction starts here
}

// PredecodeText decodes an instruction at every byte offset of text
// (loaded at base) into an immutable overlay. Offsets that do not decode
// (mid-instruction bytes, data) are left invalid and fall back to the
// per-machine cache at lookup time.
func PredecodeText(base uint64, text []byte) *SharedText {
	st := &SharedText{base: base, inst: make([]Inst, len(text))}
	for i := range text {
		end := i + 10
		if end > len(text) {
			end = len(text)
		}
		if in, err := Decode(text[i:end]); err == nil {
			st.inst[i] = in
		}
	}
	return st
}

func (s *SharedText) lookup(pc uint64) (Inst, bool) {
	if s == nil || pc < s.base {
		return Inst{}, false
	}
	i := pc - s.base
	if i >= uint64(len(s.inst)) || s.inst[i].Kind == KindInvalid {
		return Inst{}, false
	}
	return s.inst[i], true
}

// DecodeCache caches decoded instructions by byte address.
type DecodeCache struct {
	shared *SharedText
	pages  map[uint64]*decPage
	mruK   uint64
	mruV   *decPage

	// Sequential-PC fast path: the page, address and size of the last
	// page-path hit. Straight-line code asks for pc+size next, which this
	// serves without recomputing the page key or touching the map/MRU.
	seqPC   uint64
	seqSize uint8
	seqKey  uint64
	seqPg   *decPage

	// blocks caches translated basic blocks by entry PC (see block.go).
	blocks map[uint64]*block
	mruBPC uint64
	mruB   *block

	// Superblock-chaining telemetry (see isa.ChainStats). epoch is the
	// current distinct-block accounting generation: a block whose epoch
	// field lags it has not been entered since the last ResetChains. It
	// starts at 1 so freshly built blocks (epoch 0) always count.
	chainHits   uint64
	chainMisses uint64
	chainBreaks uint64
	blocksUsed  uint64
	epoch       uint64
}

type decPage struct {
	inst [4096]Inst // Kind==KindInvalid means not yet decoded
}

// NewDecodeCache returns an empty cache.
func NewDecodeCache() *DecodeCache {
	return &DecodeCache{pages: map[uint64]*decPage{}, blocks: map[uint64]*block{}, epoch: 1}
}

// NewDecodeCacheShared returns an empty cache backed by an immutable
// pre-decoded overlay (may be nil).
func NewDecodeCacheShared(shared *SharedText) *DecodeCache {
	return &DecodeCache{shared: shared, pages: map[uint64]*decPage{}, blocks: map[uint64]*block{}, epoch: 1}
}

// InvalidateBlocks is the text-overwrite barrier: it drops every
// translated basic block AND every cached decoded instruction, which
// also severs every superblock link — a link can only point at a block
// reachable from the dropped map, and execution never holds block
// pointers across a StepN return, so no stale chain can survive.
// Callers that overwrite text must use this; severed links are counted
// as chain breaks. The immutable SharedText overlay is not (and must
// not be) dropped: it only covers the read-only program image.
func (d *DecodeCache) InvalidateBlocks() {
	for _, b := range d.blocks {
		if b.link0 != nil {
			d.chainBreaks++
		}
		if b.link1 != nil {
			d.chainBreaks++
		}
	}
	d.blocks = map[uint64]*block{}
	d.mruBPC, d.mruB = 0, nil
	d.pages = map[uint64]*decPage{}
	d.mruK, d.mruV = 0, nil
	d.seqPC, d.seqSize, d.seqKey, d.seqPg = 0, 0, 0, nil
}

// ResetChains severs every superblock link and starts a fresh telemetry
// epoch while keeping the translated blocks themselves. Checkpoint
// restore calls this: blocks survive (the restored image is
// text-identical, so re-translating would only penalize restore-heavy
// callers like the sweep engine) but links must not — with links dropped,
// the first post-restore entry into every block goes through the entry-PC
// map, so chain telemetry after a restore is identical whether the block
// cache was warm (reused machine) or cold (memoized checkpoint into a
// fresh machine), keeping stats exports byte-identical across both.
func (d *DecodeCache) ResetChains() {
	for _, b := range d.blocks {
		b.link0, b.link1 = nil, nil
		b.link0pc, b.link1pc = 0, 0
	}
	d.epoch++
	d.chainHits, d.chainMisses, d.chainBreaks, d.blocksUsed = 0, 0, 0, 0
}

// ChainStats snapshots the superblock-chaining telemetry accumulated
// since the last ResetChains.
func (d *DecodeCache) ChainStats() isa.ChainStats {
	return isa.ChainStats{
		Blocks: d.blocksUsed,
		Hits:   d.chainHits,
		Misses: d.chainMisses,
		Breaks: d.chainBreaks,
	}
}

func (d *DecodeCache) lookup(pc uint64, mem *isa.Mem) (Inst, error) {
	// Variable-length encodings advance by the previous instruction's
	// size; the page-key compare guards against crossing into a new page.
	if d.seqPg != nil && pc == d.seqPC+uint64(d.seqSize) && pc>>12 == d.seqKey {
		if in := d.seqPg.inst[pc&0xFFF]; in.Kind != KindInvalid {
			d.seqPC, d.seqSize = pc, in.Size
			return in, nil
		}
	}
	if in, ok := d.shared.lookup(pc); ok {
		return in, nil
	}
	key := pc >> 12
	pg := d.mruV
	if d.mruK != key || pg == nil {
		pg = d.pages[key]
		if pg == nil {
			pg = &decPage{}
			d.pages[key] = pg
		}
		d.mruK, d.mruV = key, pg
	}
	idx := pc & 0xFFF
	if in := pg.inst[idx]; in.Kind != KindInvalid {
		d.seqPC, d.seqSize, d.seqKey, d.seqPg = pc, in.Size, key, pg
		return in, nil
	}
	end := pc + 10
	if end > uint64(len(mem.Data)) {
		end = uint64(len(mem.Data))
	}
	in, err := Decode(mem.Data[pc:end])
	if err != nil {
		return Inst{}, fmt.Errorf("cisc: at pc=%#x: %w", pc, err)
	}
	pg.inst[idx] = in
	d.seqPC, d.seqSize, d.seqKey, d.seqPg = pc, in.Size, key, pg
	return in, nil
}

// Core is the CISC64 architectural state of one hardware thread.
type Core struct {
	Regs [16]uint64
	pc   uint64
	// Condition flags are modeled by retaining the last comparison's
	// operands and evaluating conditions lazily.
	flagA, flagB int64
	Mem          *isa.Mem
	Hook         isa.EcallHook
	Dec          *DecodeCache

	nInstr   uint64
	classes  isa.ClassCounts // census of the no-trace lane (see isa.ClassCounts)
	inflight *isa.TraceRec

	// DebugRing, when non-nil, records the most recent executed PCs for
	// post-mortem diagnostics.
	DebugRing []uint64
	debugPos  int
}

// DebugPos returns the ring cursor (oldest entry index). It is always in
// [0, len(DebugRing)).
func (c *Core) DebugPos() int { return c.debugPos }

// ringPush records pc in the debug ring with explicit wrap-around: no
// divide in the hot loop and no unbounded cursor.
func (c *Core) ringPush(pc uint64) {
	c.DebugRing[c.debugPos] = pc
	c.debugPos++
	if c.debugPos == len(c.DebugRing) {
		c.debugPos = 0
	}
}

// NewCore returns a core bound to mem with the given decode cache.
func NewCore(mem *isa.Mem, dec *DecodeCache) *Core {
	if dec == nil {
		dec = NewDecodeCache()
	}
	return &Core{Mem: mem, Dec: dec}
}

// Arch reports isa.CISC64.
func (c *Core) Arch() isa.Arch { return isa.CISC64 }

// PC returns the program counter.
func (c *Core) PC() uint64 { return c.pc }

// SetPC sets the program counter.
func (c *Core) SetPC(pc uint64) { c.pc = pc }

var argRegs = [6]uint8{RDI, RSI, RDX, RCX, R8, R9}

// Arg returns call/ecall argument i.
func (c *Core) Arg(i int) uint64 { return c.Regs[argRegs[i]] }

// SetArg sets call/ecall argument i.
func (c *Core) SetArg(i int, v uint64) { c.Regs[argRegs[i]] = v }

// EcallNum returns RAX, the syscall number register.
func (c *Core) EcallNum() uint64 { return c.Regs[RAX] }

// SetRet sets RAX.
func (c *Core) SetRet(v uint64) { c.Regs[RAX] = v }

// StackPtr returns RSP.
func (c *Core) StackPtr() uint64 { return c.Regs[RSP] }

// SetStackPtr sets RSP.
func (c *Core) SetStackPtr(v uint64) { c.Regs[RSP] = v }

// InstrCount reports retired instructions.
func (c *Core) InstrCount() uint64 { return c.nInstr }

// Classes reports the cumulative class census of the no-trace lane.
func (c *Core) Classes() isa.ClassCounts { return c.classes }

// CallInto redirects execution to a handler at addr, pushing the resume
// address so the handler's RET continues after the current instruction.
func (c *Core) CallInto(addr uint64) {
	c.Regs[RSP] -= 8
	c.Mem.Store(c.Regs[RSP], 8, c.pc+1) // SYSCALL is 1 byte
	c.pc = addr
}

// Annotate sets flags/seq on the in-flight trace record (ecall hooks only).
func (c *Core) Annotate(flags uint8, seq uint64) {
	if c.inflight != nil {
		c.inflight.Flags |= flags
		c.inflight.Seq = seq
	}
}

// Snapshot serializes the architectural state.
func (c *Core) Snapshot() []uint64 {
	s := make([]uint64, 20)
	copy(s, c.Regs[:])
	s[16] = c.pc
	s[17] = uint64(c.flagA)
	s[18] = uint64(c.flagB)
	s[19] = c.nInstr
	return s
}

// Restore loads state saved by Snapshot.
func (c *Core) Restore(s []uint64) {
	copy(c.Regs[:], s[:16])
	c.pc = s[16]
	c.flagA = int64(s[17])
	c.flagB = int64(s[18])
	c.nInstr = s[19]
}

func (c *Core) cond(k Kind) bool {
	a, b := c.flagA, c.flagB
	switch k {
	case KindJE, KindSETE:
		return a == b
	case KindJNE, KindSETNE:
		return a != b
	case KindJL, KindSETL:
		return a < b
	case KindJLE, KindSETLE:
		return a <= b
	case KindJG, KindSETG:
		return a > b
	case KindJGE, KindSETGE:
		return a >= b
	case KindJB, KindSETB:
		return uint64(a) < uint64(b)
	case KindJAE, KindSETAE:
		return uint64(a) >= uint64(b)
	}
	panic("cisc: not a condition: " + k.String())
}

// Step executes one instruction and appends its trace record to out.
func (c *Core) Step(out []isa.TraceRec) ([]isa.TraceRec, error) {
	in, err := c.Dec.lookup(c.pc, c.Mem)
	if err != nil {
		return out, err
	}
	pc := c.pc
	if c.DebugRing != nil {
		c.ringPush(pc)
	}
	rec := isa.TraceRec{
		PC: pc, Size: in.Size, Class: isa.ClassAlu,
		Src1: isa.NoDep, Src2: isa.NoDep, Dst: isa.NoDep,
		MicroOps: 1,
	}
	next := pc + uint64(in.Size)
	r := &c.Regs

	switch in.Kind {
	case KindNOP:
	case KindFENCE:
		rec.Class = isa.ClassFence
	case KindMOVri, KindMOVri32:
		r[in.Dst] = uint64(in.Imm)
		rec.Dst = in.Dst
	case KindMOVrr:
		r[in.Dst] = r[in.Src]
		rec.Src1, rec.Dst = in.Src, in.Dst
	case KindADD:
		r[in.Dst] += r[in.Src]
		rec.Src1, rec.Src2, rec.Dst = in.Dst, in.Src, in.Dst
	case KindSUB:
		r[in.Dst] -= r[in.Src]
		rec.Src1, rec.Src2, rec.Dst = in.Dst, in.Src, in.Dst
	case KindMUL:
		r[in.Dst] *= r[in.Src]
		rec.Class = isa.ClassMul
		rec.Src1, rec.Src2, rec.Dst = in.Dst, in.Src, in.Dst
	case KindDIV:
		r[in.Dst] = uint64(divS(int64(r[in.Dst]), int64(r[in.Src])))
		rec.Class = isa.ClassDiv
		rec.Src1, rec.Src2, rec.Dst = in.Dst, in.Src, in.Dst
	case KindREM:
		r[in.Dst] = uint64(remS(int64(r[in.Dst]), int64(r[in.Src])))
		rec.Class = isa.ClassDiv
		rec.Src1, rec.Src2, rec.Dst = in.Dst, in.Src, in.Dst
	case KindDIVU:
		r[in.Dst] = divU(r[in.Dst], r[in.Src])
		rec.Class = isa.ClassDiv
		rec.Src1, rec.Src2, rec.Dst = in.Dst, in.Src, in.Dst
	case KindREMU:
		r[in.Dst] = remU(r[in.Dst], r[in.Src])
		rec.Class = isa.ClassDiv
		rec.Src1, rec.Src2, rec.Dst = in.Dst, in.Src, in.Dst
	case KindAND:
		r[in.Dst] &= r[in.Src]
		rec.Src1, rec.Src2, rec.Dst = in.Dst, in.Src, in.Dst
	case KindOR:
		r[in.Dst] |= r[in.Src]
		rec.Src1, rec.Src2, rec.Dst = in.Dst, in.Src, in.Dst
	case KindXOR:
		r[in.Dst] ^= r[in.Src]
		rec.Src1, rec.Src2, rec.Dst = in.Dst, in.Src, in.Dst
	case KindSHL:
		r[in.Dst] <<= r[in.Src] & 63
		rec.Src1, rec.Src2, rec.Dst = in.Dst, in.Src, in.Dst
	case KindSHR:
		r[in.Dst] >>= r[in.Src] & 63
		rec.Src1, rec.Src2, rec.Dst = in.Dst, in.Src, in.Dst
	case KindSAR:
		r[in.Dst] = uint64(int64(r[in.Dst]) >> (r[in.Src] & 63))
		rec.Src1, rec.Src2, rec.Dst = in.Dst, in.Src, in.Dst
	case KindADDri32:
		r[in.Dst] += uint64(in.Imm)
		rec.Src1, rec.Dst = in.Dst, in.Dst
	case KindANDri32:
		r[in.Dst] &= uint64(in.Imm)
		rec.Src1, rec.Dst = in.Dst, in.Dst
	case KindORri32:
		r[in.Dst] |= uint64(in.Imm)
		rec.Src1, rec.Dst = in.Dst, in.Dst
	case KindXORri32:
		r[in.Dst] ^= uint64(in.Imm)
		rec.Src1, rec.Dst = in.Dst, in.Dst
	case KindMULri32:
		r[in.Dst] *= uint64(in.Imm)
		rec.Class = isa.ClassMul
		rec.Src1, rec.Dst = in.Dst, in.Dst
	case KindSHLri8:
		r[in.Dst] <<= uint64(in.Imm) & 63
		rec.Src1, rec.Dst = in.Dst, in.Dst
	case KindSHRri8:
		r[in.Dst] >>= uint64(in.Imm) & 63
		rec.Src1, rec.Dst = in.Dst, in.Dst
	case KindSARri8:
		r[in.Dst] = uint64(int64(r[in.Dst]) >> (uint64(in.Imm) & 63))
		rec.Src1, rec.Dst = in.Dst, in.Dst
	case KindLDB, KindLDBU, KindLDH, KindLDHU, KindLDW, KindLDWU, KindLDQ:
		addr := r[in.Src] + uint64(in.Imm)
		var sz uint8
		uns := false
		switch in.Kind {
		case KindLDB:
			sz = 1
		case KindLDBU:
			sz, uns = 1, true
		case KindLDH:
			sz = 2
		case KindLDHU:
			sz, uns = 2, true
		case KindLDW:
			sz = 4
		case KindLDWU:
			sz, uns = 4, true
		case KindLDQ:
			sz, uns = 8, true
		}
		v := c.Mem.Load(addr, sz)
		if !uns {
			v = isa.SignExtend(v, sz)
		}
		r[in.Dst] = v
		rec.Class = isa.ClassLoad
		rec.MemAddr, rec.MemSize = addr, sz
		rec.Src1, rec.Dst = in.Src, in.Dst
	case KindSTB, KindSTH, KindSTW, KindSTQ:
		addr := r[in.Dst] + uint64(in.Imm)
		var sz uint8
		switch in.Kind {
		case KindSTB:
			sz = 1
		case KindSTH:
			sz = 2
		case KindSTW:
			sz = 4
		case KindSTQ:
			sz = 8
		}
		c.Mem.Store(addr, sz, r[in.Src])
		rec.Class = isa.ClassStore
		rec.MemAddr, rec.MemSize = addr, sz
		rec.Src1, rec.Src2 = in.Dst, in.Src
	case KindCMPrr:
		c.flagA, c.flagB = int64(r[in.Dst]), int64(r[in.Src])
		rec.Src1, rec.Src2, rec.Dst = in.Dst, in.Src, RegFlags
	case KindCMPri32:
		c.flagA, c.flagB = int64(r[in.Dst]), in.Imm
		rec.Src1, rec.Dst = in.Dst, RegFlags
	case KindJE, KindJNE, KindJL, KindJLE, KindJG, KindJGE, KindJB, KindJAE:
		rec.Class = isa.ClassBranch
		rec.Src1 = RegFlags
		rec.Target = next + uint64(in.Imm)
		if c.cond(in.Kind) {
			next = rec.Target
			rec.Taken = true
		}
	case KindSETE, KindSETNE, KindSETL, KindSETLE, KindSETG, KindSETGE, KindSETB, KindSETAE:
		if c.cond(in.Kind) {
			r[in.Dst] = 1
		} else {
			r[in.Dst] = 0
		}
		rec.Src1, rec.Dst = RegFlags, in.Dst
	case KindJMP:
		next += uint64(in.Imm)
		rec.Class = isa.ClassJump
		rec.Taken = true
		rec.Target = next
	case KindCALL:
		r[RSP] -= 8
		c.Mem.Store(r[RSP], 8, next)
		rec.Class = isa.ClassCall
		rec.MemAddr, rec.MemSize = r[RSP], 8
		rec.MicroOps = 2
		rec.Src1, rec.Dst = RSP, RSP
		next += uint64(in.Imm)
		rec.Taken = true
		rec.Target = next
	case KindCALLr:
		tgt := r[in.Src]
		r[RSP] -= 8
		c.Mem.Store(r[RSP], 8, next)
		rec.Class = isa.ClassCall
		rec.MemAddr, rec.MemSize = r[RSP], 8
		rec.MicroOps = 2
		rec.Src1, rec.Src2, rec.Dst = in.Src, RSP, RSP
		next = tgt
		rec.Taken = true
		rec.Target = next
	case KindJMPr:
		next = r[in.Src]
		rec.Class = isa.ClassJump
		rec.Src1 = in.Src
		rec.Taken = true
		rec.Target = next
	case KindRET:
		next = c.Mem.Load(r[RSP], 8)
		rec.MemAddr, rec.MemSize = r[RSP], 8
		r[RSP] += 8
		rec.Class = isa.ClassRet
		rec.MicroOps = 2
		rec.Src1, rec.Dst = RSP, RSP
		rec.Taken = true
		rec.Target = next
	case KindPUSH:
		r[RSP] -= 8
		c.Mem.Store(r[RSP], 8, r[in.Dst])
		rec.Class = isa.ClassStore
		rec.MemAddr, rec.MemSize = r[RSP], 8
		rec.MicroOps = 2
		rec.Src1, rec.Src2, rec.Dst = in.Dst, RSP, RSP
	case KindPOP:
		r[in.Dst] = c.Mem.Load(r[RSP], 8)
		rec.MemAddr, rec.MemSize = r[RSP], 8
		r[RSP] += 8
		rec.Class = isa.ClassLoad
		rec.MicroOps = 2
		rec.Src1, rec.Dst = RSP, in.Dst
	case KindLEA:
		r[in.Dst] = r[in.Src] + uint64(in.Imm)
		rec.Src1, rec.Dst = in.Src, in.Dst
	case KindSYSCALL:
		rec.Class = isa.ClassEcall
		if c.Hook == nil {
			return out, fmt.Errorf("cisc: syscall with no hook at pc=%#x", pc)
		}
		c.inflight = &rec
		res := c.Hook(c)
		c.inflight = nil
		c.nInstr++
		switch res {
		case isa.EcallHandled:
			c.pc = next
			return append(out, rec), nil
		case isa.EcallVector:
			rec.Target = c.pc
			rec.Taken = true
			return append(out, rec), nil
		case isa.EcallBlock:
			c.pc = next
			return append(out, rec), ErrBlock
		case isa.EcallHalt:
			c.pc = next
			return append(out, rec), ErrHalt
		}
		return out, fmt.Errorf("cisc: bad ecall result %d", res)
	default:
		return out, fmt.Errorf("cisc: unimplemented %s at pc=%#x", in.Kind, pc)
	}
	c.pc = next
	c.nInstr++
	return append(out, rec), nil
}

func divS(a, b int64) int64 {
	if b == 0 {
		return -1
	}
	if a == -1<<63 && b == -1 {
		return a
	}
	return a / b
}

func remS(a, b int64) int64 {
	if b == 0 {
		return a
	}
	if a == -1<<63 && b == -1 {
		return 0
	}
	return a % b
}

func divU(a, b uint64) uint64 {
	if b == 0 {
		return ^uint64(0)
	}
	return a / b
}

func remU(a, b uint64) uint64 {
	if b == 0 {
		return a
	}
	return a % b
}
