// Benchmark harness: one testing.B target per figure and table of the
// thesis's evaluation (DESIGN.md §3). The underlying experiment sweep runs
// once per `go test -bench` invocation and is shared by the figure
// projections; each benchmark reports its figure's headline numbers as
// custom metrics so a bench run regenerates the full evaluation.
package svbench_test

import (
	"sync"
	"testing"

	"svbench/internal/figures"
)

var (
	sweepOnce sync.Once
	sweep     *figures.Results
	sweepErr  error
)

func results(b *testing.B) *figures.Results {
	b.Helper()
	sweepOnce.Do(func() {
		sweep, sweepErr = figures.Collect(nil)
	})
	if sweepErr != nil {
		b.Fatal(sweepErr)
	}
	return sweep
}

// reportFig re-projects the figure b.N times (the projection itself is the
// benchmarked operation; the sweep is amortized) and reports the figure's
// mean cold and warm values as metrics.
func reportFig(b *testing.B, gen func() figures.Data) {
	var d figures.Data
	for i := 0; i < b.N; i++ {
		d = gen()
	}
	if len(d.Rows) == 0 {
		b.Fatal("empty figure")
	}
	var c0, c1 float64
	for _, r := range d.Rows {
		c0 += r.Values[0]
		c1 += r.Values[len(r.Values)-1]
	}
	b.ReportMetric(c0/float64(len(d.Rows)), "first-col/row")
	b.ReportMetric(c1/float64(len(d.Rows)), "last-col/row")
}

func BenchmarkTable41Config(b *testing.B) {
	reportFig(b, figures.Table41)
}

func BenchmarkFig44RiscvStandaloneCycles(b *testing.B) {
	r := results(b)
	reportFig(b, r.Fig44)
}

func BenchmarkFig45RiscvHotelCycles(b *testing.B) {
	r := results(b)
	reportFig(b, r.Fig45)
}

func BenchmarkFig46HotelL1Cold(b *testing.B) {
	r := results(b)
	reportFig(b, r.Fig46)
}

func BenchmarkFig47HotelL1Warm(b *testing.B) {
	r := results(b)
	reportFig(b, r.Fig47)
}

func BenchmarkFig48HotelL1PctCold(b *testing.B) {
	r := results(b)
	reportFig(b, r.Fig48)
}

func BenchmarkFig49HotelL1PctWarm(b *testing.B) {
	r := results(b)
	reportFig(b, r.Fig49)
}

func BenchmarkFig410GoCycles(b *testing.B) {
	r := results(b)
	reportFig(b, r.Fig410)
}

func BenchmarkFig411GoL2(b *testing.B) {
	r := results(b)
	reportFig(b, r.Fig411)
}

func BenchmarkFig412X86StandaloneCycles(b *testing.B) {
	r := results(b)
	reportFig(b, r.Fig412)
}

func BenchmarkFig413X86PythonL2(b *testing.B) {
	r := results(b)
	reportFig(b, r.Fig413)
}

func BenchmarkFig414X86HotelCycles(b *testing.B) {
	r := results(b)
	reportFig(b, r.Fig414)
}

func BenchmarkFig415IsaCycles(b *testing.B) {
	r := results(b)
	reportFig(b, r.Fig415)
}

func BenchmarkFig416IsaInstructions(b *testing.B) {
	r := results(b)
	reportFig(b, r.Fig416)
}

func BenchmarkFig417IsaL1I(b *testing.B) {
	r := results(b)
	reportFig(b, r.Fig417)
}

func BenchmarkFig418IsaL2(b *testing.B) {
	r := results(b)
	reportFig(b, r.Fig418)
}

func BenchmarkFig419IsaHotelCycles(b *testing.B) {
	r := results(b)
	reportFig(b, r.Fig419)
}

var (
	fig420Once sync.Once
	fig420Data figures.Data
	fig420Err  error
)

func BenchmarkFig420MongoVsCassandra(b *testing.B) {
	fig420Once.Do(func() {
		fig420Data, fig420Err = figures.Fig420(4)
	})
	if fig420Err != nil {
		b.Fatal(fig420Err)
	}
	reportFig(b, func() figures.Data { return fig420Data })
}

var (
	t44Once sync.Once
	t44Data figures.Data
	t44Err  error
	t45Once sync.Once
	t45Data figures.Data
	t45Err  error
)

func BenchmarkTable44ContainerSizes(b *testing.B) {
	t44Once.Do(func() { t44Data, t44Err = figures.Table44() })
	if t44Err != nil {
		b.Fatal(t44Err)
	}
	reportFig(b, func() figures.Data { return t44Data })
}

func BenchmarkTable45PriorPortSizes(b *testing.B) {
	t45Once.Do(func() { t45Data, t45Err = figures.Table45() })
	if t45Err != nil {
		b.Fatal(t45Err)
	}
	reportFig(b, func() figures.Data { return t45Data })
}
