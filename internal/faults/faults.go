// Package faults implements deterministic, seed-driven fault injection
// for the simulated serverless stack. A Plan (seed + rules) compiles into
// an Injector that wires into three layers: the kernel IPC layer (message
// drop, payload corruption, delivery delay charged as virtual cycles),
// the native service layer (error replies, latency spikes and outage
// windows on the database/cache engines, via FlakyService), and the
// harness layer (a Retry policy compiled into the IR load generator, with
// fault counters reported back through Report).
//
// Everything is driven by one xorshift PRNG owned by the injector — no
// math/rand global state — and the simulation itself is deterministic, so
// the same seed yields a bit-identical fault schedule and sim trace.
package faults

import "svbench/internal/rpc"

// PRNG is a deterministic xorshift64* generator. The zero seed is
// remapped so the stream never degenerates to all zeros.
type PRNG struct {
	s uint64
}

// NewPRNG returns a generator seeded with seed.
func NewPRNG(seed uint64) *PRNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15 // golden-ratio constant
	}
	return &PRNG{s: seed}
}

// Uint64 returns the next value of the stream.
func (p *PRNG) Uint64() uint64 {
	x := p.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	p.s = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a value in [0, 1).
func (p *PRNG) Float64() float64 {
	return float64(p.Uint64()>>11) / float64(1<<53)
}

// Chance reports true with probability prob.
func (p *PRNG) Chance(prob float64) bool {
	if prob <= 0 {
		return false
	}
	if prob >= 1 {
		p.Uint64() // keep the draw count schedule-independent of prob
		return true
	}
	return p.Float64() < prob
}

// Kind enumerates the fault classes a Rule can inject.
type Kind int

const (
	// DropMsg discards a committed IPC message before delivery.
	DropMsg Kind = iota
	// CorruptMsg flips bytes of a committed message's payload in place.
	CorruptMsg
	// DelayMsg delivers a message late, charging extra virtual cycles so
	// the measured core observes realistic tail latency.
	DelayMsg
	// ErrorReply makes a native service answer with an error frame
	// instead of performing the operation.
	ErrorReply
	// LatencySpike multiplies a native service's charged cycles.
	LatencySpike
	// Outage makes a native service fail every request inside a window:
	// After healthy requests, then For failing ones.
	Outage
)

// Symbolic channel targets for IPC rules. Non-negative values address a
// concrete kernel channel id; the symbolic ones are resolved when the
// harness binds the injector to the load generator's channel pair.
const (
	// AnyChannel matches every kernel channel.
	AnyChannel = -1
	// ClientReq matches the client→server request channel.
	ClientReq = -2
	// ClientResp matches the server→client response channel.
	ClientResp = -3
)

// Rule is one injection rule. IPC rules (DropMsg/CorruptMsg/DelayMsg) use
// Channel and Prob; service rules (ErrorReply/LatencySpike/Outage) use
// Service ("" or "*" matches every engine) plus their kind's fields.
// Window, when non-zero, restricts the rule to a timed interval of
// virtual time (see Window); the zero window keeps the rule always
// active, preserving pre-window plans unchanged.
type Rule struct {
	Kind    Kind
	Prob    float64 // per-event probability (ignored by Outage)
	Channel int     // IPC target: channel id or a symbolic constant
	Service string  // service target: engine name, "" or "*" for any
	Delay   uint64  // DelayMsg: extra delivery delay in virtual cycles
	Mult    uint64  // LatencySpike: service-cycle multiplier
	After   int     // Outage: healthy requests before the window opens
	For     int     // Outage: failing requests in the window
	Window  Window  // timed activation window (zero = always active)
}

// Plan is a complete injection schedule: a seed and the rules it drives.
// The same plan produces the same fault schedule on every run.
type Plan struct {
	Seed  uint64
	Rules []Rule
}

// DefaultPlan returns a moderate chaos plan targeting the client-visible
// channel pair and every native service. Requests are only dropped or
// delayed (never corrupted: a corrupted request could drive the workload
// code itself off the rails); responses face all three IPC faults, which
// the retry policy recovers host-side.
func DefaultPlan(seed uint64) *Plan {
	return &Plan{
		Seed: seed,
		Rules: []Rule{
			{Kind: DropMsg, Channel: ClientReq, Prob: 0.04},
			{Kind: DropMsg, Channel: ClientResp, Prob: 0.04},
			{Kind: DelayMsg, Channel: ClientResp, Prob: 0.15, Delay: 20_000},
			{Kind: CorruptMsg, Channel: ClientResp, Prob: 0.05},
			{Kind: ErrorReply, Service: "*", Prob: 0.08},
			{Kind: LatencySpike, Service: "*", Prob: 0.10, Mult: 8},
		},
	}
}

// Retry is the load generator's recovery policy, compiled into the IR
// client loop. All times are virtual cycles (the functional clock).
type Retry struct {
	// MaxAttempts bounds total attempts per request (first try included).
	MaxAttempts int
	// Backoff is the wait before the second attempt; it doubles with
	// every further retry (exponential backoff).
	Backoff uint64
	// Deadline is the per-attempt reply deadline. It must be positive:
	// without one a dropped message would block the client forever.
	Deadline uint64
}

// DefaultRetry returns the policy the chaos modes use: four attempts,
// 50k-cycle base backoff, 2M-cycle per-attempt deadline.
func DefaultRetry() *Retry {
	return &Retry{MaxAttempts: 4, Backoff: 50_000, Deadline: 2_000_000}
}

// Client-reported fault events, delivered through the kernel's
// fault-note host call into Injector.Note.
const (
	// EvTimeout: an attempt's reply deadline expired.
	EvTimeout uint64 = iota
	// EvBadReply: a reply arrived but failed the response check.
	EvBadReply
	// EvRetry: the client is about to re-attempt a request.
	EvRetry
	// EvRecovered: a request succeeded after at least one retry.
	EvRecovered
	// EvExhausted: a request failed after exhausting every attempt.
	EvExhausted
)

// Report is the fault ledger of one run: what was injected at each layer,
// what the client observed, and how recovery went. It is comparable, so
// determinism checks can use ==.
type Report struct {
	Injected  uint64 // total faults injected across all layers
	Dropped   uint64 // IPC messages discarded
	Corrupted uint64 // IPC payloads corrupted
	Delayed   uint64 // IPC messages delivered late

	ErrorReplies uint64 // service error frames injected
	Spikes       uint64 // service latency spikes injected
	Outages      uint64 // service requests rejected inside outage windows

	Surfaced   uint64 // failures the client observed (timeouts + bad replies)
	Timeouts   uint64 // attempts that hit the reply deadline
	BadReplies uint64 // replies that failed the response check
	Retried    uint64 // retry attempts the client issued
	Recovered  uint64 // requests that succeeded after >= 1 retry
	Exhausted  uint64 // requests that failed after all attempts
}

// StatusUnavailable is the wire status an injected service error reply
// carries. It is disjoint from the db package's codes (OK/NotFound/
// BadReq); workloads treat any non-zero status as a miss, so an injected
// error degrades the response instead of derailing the simulated code.
const StatusUnavailable = 3

// ErrorFrame encodes the canonical injected error reply: a well-formed
// wire message holding the single status field StatusUnavailable.
func ErrorFrame() []byte {
	w := rpc.NewWriter()
	w.PutInt(StatusUnavailable)
	return w.Bytes()
}

// errorReplyCycles is the service time charged for an injected error
// reply — a fast-fail, far below any engine's real operation cost.
const errorReplyCycles = 400
