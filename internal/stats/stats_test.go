package stats

import (
	"strings"
	"testing"
)

func TestCPI(t *testing.T) {
	c := CoreStats{Cycles: 100, Insts: 40}
	if c.CPI() != 2.5 {
		t.Fatalf("CPI %v", c.CPI())
	}
	if (CoreStats{}).CPI() != 0 {
		t.Fatal("idle CPI must be 0")
	}
}

func TestL1Misses(t *testing.T) {
	c := CoreStats{L1IMisses: 3, L1DMisses: 4}
	if c.L1Misses() != 7 {
		t.Fatal("L1 sum")
	}
}

func TestDumpServer(t *testing.T) {
	d := Dump{Cores: []CoreStats{{Cycles: 1}, {Cycles: 2}}}
	if d.Server().Cycles != 2 {
		t.Fatal("server must be core 1")
	}
	single := Dump{Cores: []CoreStats{{Cycles: 9}}}
	if single.Server().Cycles != 9 {
		t.Fatal("single-core fallback")
	}
	if (Dump{}).Server().Cycles != 0 {
		t.Fatal("empty dump")
	}
}

func TestString(t *testing.T) {
	s := CoreStats{Cycles: 10, Insts: 5}.String()
	if !strings.Contains(s, "cycles=10") || !strings.Contains(s, "cpi=2.00") {
		t.Fatalf("render %q", s)
	}
}
