// Command svdump disassembles the compiled program of a benchmark
// container for either ISA — the objdump of the simulated toolchain.
// With -trace it instead runs the workload's experiment with the event
// tracer on and lists the buffered instruction-retire trace.
//
// Usage:
//
//	svdump -fn fibonacci-go -arch rv64 [-sym handler] [-runtime go]
//	svdump -fn fibonacci -trace [-trace-limit 200]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"svbench/internal/harness"
	"svbench/internal/isa"
	"svbench/internal/isa/cisc"
	"svbench/internal/isa/riscv"
	"svbench/internal/langrt"
	"svbench/internal/libc"
	"svbench/internal/trace"
	"svbench/internal/vswarm"

	irpkg "svbench/internal/ir"
)

func workloadByName(name string) (*irpkg.Module, langrt.Runtime, bool) {
	switch name {
	case "fibonacci":
		return vswarm.Fibonacci(), langrt.GoRT, true
	case "aes":
		return vswarm.AES(), langrt.GoRT, true
	case "auth":
		return vswarm.Auth(), langrt.GoRT, true
	case "productcatalog":
		return vswarm.ProductCatalog(), langrt.GoRT, true
	case "shipping":
		return vswarm.Shipping(), langrt.GoRT, true
	case "recommendation":
		return vswarm.Recommendation(), langrt.PyRT, true
	case "email":
		return vswarm.Email(), langrt.PyRT, true
	case "currency":
		return vswarm.Currency(), langrt.NodeRT, true
	case "payment":
		return vswarm.Payment(), langrt.NodeRT, true
	}
	for _, hf := range vswarm.HotelFuncs {
		if hf.Name == name {
			return hf.Build(vswarm.HotelChans{}), langrt.GoRT, true
		}
	}
	return nil, "", false
}

// specFor maps a svdump workload name onto its harness experiment.
func specFor(name string) (harness.Spec, bool) {
	for _, hf := range vswarm.HotelFuncs {
		if hf.Name == name {
			return harness.HotelSpec(name, harness.EngineCassandra), true
		}
	}
	full := map[string]string{
		"fibonacci": "fibonacci-go", "aes": "aes-go", "auth": "auth-go",
		"productcatalog": "productcatalog-go", "shipping": "shipping-go",
		"recommendation": "recommendation-python", "email": "emailservice-python",
		"currency": "currency-nodejs", "payment": "payment-nodejs",
	}[name]
	for _, sp := range append(harness.StandaloneSpecs(), harness.ShopSpecs()...) {
		if sp.Name == full || sp.Name == name {
			return sp, true
		}
	}
	return harness.Spec{}, false
}

// runRetireTrace executes the workload's full experiment with the event
// tracer on and prints the buffered instruction-retire records, newest
// last, each PC resolved against the machine's symbol table.
func runRetireTrace(name string, a isa.Arch, limit int) error {
	sp, ok := specFor(name)
	if !ok {
		return fmt.Errorf("unknown workload %q", name)
	}
	sp.Trace = trace.Options{Enabled: true}
	res, err := harness.Run(a, sp)
	if err != nil {
		return err
	}
	var retires []trace.Event
	for _, ev := range res.Events {
		if ev.Kind == trace.EvInstRetire {
			retires = append(retires, ev)
		}
	}
	shown := retires
	if limit > 0 && len(shown) > limit {
		shown = shown[len(shown)-limit:]
	}
	fmt.Printf("%s on %s: %d retire events buffered, showing last %d\n\n",
		sp.Name, a, len(retires), len(shown))
	for _, ev := range shown {
		_, fnName := res.Syms.Resolve(ev.PC)
		if fnName == "" {
			fnName = "?"
		}
		fmt.Printf("  cyc=%-10d core=%d pc=%08x %-6s %s\n",
			ev.Cycle, ev.Core, ev.PC, isa.Class(ev.Arg), fnName)
	}
	return nil
}

func main() {
	var (
		fn       = flag.String("fn", "fibonacci", "workload name (e.g. fibonacci, aes, geo)")
		arch     = flag.String("arch", "rv64", "rv64 or cisc64")
		symOnly  = flag.String("sym", "", "disassemble only this function")
		rtName   = flag.String("runtime", "", "override the runtime (go, python, nodejs)")
		doTrace  = flag.Bool("trace", false, "run the experiment and dump the instruction-retire trace")
		traceLim = flag.Int("trace-limit", 200, "retire events to show with -trace (0 = all buffered)")
	)
	flag.Parse()

	if *doTrace {
		if err := runRetireTrace(*fn, isa.Arch(*arch), *traceLim); err != nil {
			fmt.Fprintln(os.Stderr, "svdump:", err)
			os.Exit(1)
		}
		return
	}

	mod, rt, ok := workloadByName(*fn)
	if !ok {
		fmt.Fprintf(os.Stderr, "svdump: unknown workload %q\n", *fn)
		os.Exit(2)
	}
	if *rtName != "" {
		rt = langrt.Runtime(*rtName)
	}
	a := isa.Arch(*arch)
	server, err := langrt.BuildServer(rt, libc.ForArch(string(a)), mod, vswarm.Handler)
	if err != nil {
		fmt.Fprintln(os.Stderr, "svdump:", err)
		os.Exit(1)
	}

	var prog *isa.Program
	switch a {
	case isa.RV64:
		prog, err = riscv.Compile(server, 0x400000)
	case isa.CISC64:
		prog, err = cisc.Compile(server, 0x400000)
	default:
		fmt.Fprintf(os.Stderr, "svdump: unknown arch %q\n", *arch)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "svdump:", err)
		os.Exit(1)
	}

	type fnSpan struct {
		name       string
		start, end uint64
	}
	var fns []fnSpan
	for name, start := range prog.Syms {
		if end, ok := prog.FuncEnd[name]; ok {
			fns = append(fns, fnSpan{name, start, end})
		}
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].start < fns[j].start })

	fmt.Printf("%s (%s): text %d bytes at %#x, data %d bytes at %#x\n\n",
		*fn, a, len(prog.Text), prog.TextBase, len(prog.Data), prog.DataBase)
	for _, f := range fns {
		if *symOnly != "" && f.name != *symOnly {
			continue
		}
		fmt.Printf("%08x <%s>:\n", f.start, f.name)
		pc := f.start
		for pc < f.end {
			off := pc - prog.TextBase
			switch a {
			case isa.RV64:
				w := uint32(prog.Text[off]) | uint32(prog.Text[off+1])<<8 |
					uint32(prog.Text[off+2])<<16 | uint32(prog.Text[off+3])<<24
				in, err := riscv.Decode(w)
				if err != nil {
					fmt.Printf("  %08x:  %08x  <decode error: %v>\n", pc, w, err)
					pc += 4
					continue
				}
				fmt.Printf("  %08x:  %08x  %s\n", pc, w, in)
				pc += 4
			case isa.CISC64:
				in, err := cisc.Decode(prog.Text[off:])
				if err != nil {
					fmt.Printf("  %08x:  <decode error: %v>\n", pc, err)
					pc++
					continue
				}
				fmt.Printf("  %08x:  % -22x %s\n", pc, prog.Text[off:off+uint64(in.Size)], in)
				pc += uint64(in.Size)
			}
		}
		fmt.Println()
	}
}
