package gemsys

import (
	"bytes"
	"encoding/gob"
	"testing"

	"svbench/internal/isa"
)

func gobBytes(t *testing.T, ck *Checkpoint) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ck); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCloneIsolation is the memoizer's safety regression: a cached
// checkpoint handed out as clones must be immune to anything the
// restored machines do. We mutate a machine restored from one clone —
// registers, memory pages, kernel channel state, stats counters all
// change during evaluation, plus direct pokes — and assert the cached
// checkpoint and a second clone are byte-for-byte unaffected.
func TestCloneIsolation(t *testing.T) {
	mach, err := New(DefaultConfig(isa.RV64))
	if err != nil {
		t.Fatal(err)
	}
	req := mach.K.NewChannel()
	resp := mach.K.NewChannel()
	if _, err := mach.Spawn("server", serverMod(), "main", 1, []uint64{uint64(req), uint64(resp)}); err != nil {
		t.Fatal(err)
	}
	if _, err := mach.Spawn("client", clientMod(6, 15), "main", 0, []uint64{uint64(req), uint64(resp)}); err != nil {
		t.Fatal(err)
	}
	if err := mach.RunSetup(50_000_000); err != nil {
		t.Fatal(err)
	}
	cached := mach.TakeCheckpoint().Clone()
	want := gobBytes(t, cached)

	// Restore from a clone and mutate everything reachable: run the full
	// evaluation (dirties registers, memory, channels, run queues, stats
	// counters) ...
	clone1 := cached.Clone()
	if err := mach.Restore(clone1); err != nil {
		t.Fatal(err)
	}
	dumps, err := mach.RunEval(100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(dumps) != 2 {
		t.Fatalf("got %d dumps, want 2", len(dumps))
	}
	cycles1 := dumps[0].Server().Cycles
	// ... then poke the machine and the restored-from clone directly, the
	// way an aliasing bug would leak.
	for i := range mach.Mem.Data {
		mach.Mem.Data[i] ^= 0xA5
	}
	for _, p := range mach.K.Procs {
		s := p.Core.Snapshot()
		for i := range s {
			s[i] = ^s[i]
		}
		p.Core.Restore(s)
	}
	for i := range clone1.MemData {
		clone1.MemData[i] = 0xFF
	}
	for i := range clone1.Procs {
		for j := range clone1.Procs[i].CoreState {
			clone1.Procs[i].CoreState[j] = 0xDEAD
		}
	}
	for i := range clone1.Chans {
		clone1.Chans[i].Msgs = nil
		clone1.Chans[i].Waiters = append(clone1.Chans[i].Waiters, 99)
	}
	clone1.Console = append(clone1.Console, "garbage"...)
	clone1.Cur[0] = 42

	if got := gobBytes(t, cached); !bytes.Equal(got, want) {
		t.Fatal("cached checkpoint mutated by a restored machine or a sibling clone")
	}

	// A second clone taken now must behave exactly like the first did
	// before the mutations: same evaluation statistics.
	clone2 := cached.Clone()
	if got := gobBytes(t, clone2); !bytes.Equal(got, want) {
		t.Fatal("second clone differs from the cached checkpoint")
	}
	if err := mach.Restore(clone2); err != nil {
		t.Fatal(err)
	}
	dumps2, err := mach.RunEval(100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if c := dumps2[0].Server().Cycles; c != cycles1 {
		t.Fatalf("second clone evaluated differently: %d vs %d cycles", c, cycles1)
	}
}

// TestCrossMachineRestore: a checkpoint taken on one machine restores
// onto a second machine with an equal boot fingerprint and evaluates to
// identical statistics and console output — the property the sweep
// memoizer depends on.
func TestCrossMachineRestore(t *testing.T) {
	boot := func() *Machine {
		m, err := New(DefaultConfig(isa.RV64))
		if err != nil {
			t.Fatal(err)
		}
		req := m.K.NewChannel()
		resp := m.K.NewChannel()
		if _, err := m.Spawn("server", serverMod(), "main", 1, []uint64{uint64(req), uint64(resp)}); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Spawn("client", clientMod(6, 15), "main", 0, []uint64{uint64(req), uint64(resp)}); err != nil {
			t.Fatal(err)
		}
		return m
	}
	m1, m2 := boot(), boot()
	if m1.BootFingerprint() != m2.BootFingerprint() {
		t.Fatal("identically-booted machines have different fingerprints")
	}
	if err := m1.RunSetup(50_000_000); err != nil {
		t.Fatal(err)
	}
	ck := m1.TakeCheckpoint()

	eval := func(m *Machine, c *Checkpoint) (uint64, uint64, string) {
		if err := m.Restore(c); err != nil {
			t.Fatal(err)
		}
		dumps, err := m.RunEval(100_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return dumps[0].Server().Cycles, dumps[1].Server().Cycles, m.Console()
	}
	c1, w1, out1 := eval(m1, ck)
	c2, w2, out2 := eval(m2, ck.Clone())
	if c1 != c2 || w1 != w2 {
		t.Fatalf("cross-machine restore: stats differ (%d,%d) vs (%d,%d)", c1, w1, c2, w2)
	}
	if out1 != out2 {
		t.Fatalf("cross-machine restore: console differs:\n%q\n%q", out1, out2)
	}
}

// TestFingerprintSensitivity: the fingerprint must change when boot
// inputs change and stay equal when only excluded knobs (trace options,
// cosmetic labels) change.
func TestFingerprintSensitivity(t *testing.T) {
	fp := func(mut func(*Config), args []uint64) string {
		cfg := DefaultConfig(isa.RV64)
		if mut != nil {
			mut(&cfg)
		}
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.K.NewChannel()
		m.K.NewChannel()
		if _, err := m.Spawn("server", serverMod(), "main", 1, args); err != nil {
			t.Fatal(err)
		}
		return m.BootFingerprint()
	}
	args := []uint64{1, 2}
	base := fp(nil, args)
	if fp(nil, args) != base {
		t.Error("fingerprint not reproducible for identical boots")
	}
	if fp(nil, []uint64{1, 3}) == base {
		t.Error("fingerprint ignores spawn arguments")
	}
	if fp(func(c *Config) { c.O3.ROBSize += 16 }, args) == base {
		t.Error("fingerprint ignores O3 configuration")
	}
	if fp(func(c *Config) { c.Hier.L1D.Size *= 2 }, args) == base {
		t.Error("fingerprint ignores cache configuration")
	}
	if fp(func(c *Config) { c.OSLabel = "other-os" }, args) != base {
		t.Error("fingerprint depends on a cosmetic label")
	}
	if fp(func(c *Config) { c.Trace.Enabled = true }, args) != base {
		t.Error("fingerprint depends on trace options")
	}
}
