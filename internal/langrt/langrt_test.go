package langrt

import (
	"testing"

	"svbench/internal/ir"
	"svbench/internal/ir/irtest"
	"svbench/internal/isa"
	"svbench/internal/isa/isatest"
	"svbench/internal/libc"
)

// vmModule packages one corpus function for interpretation: flatten it,
// compile to bytecode, and add a driver run_vm(a, b) that wires the VM's
// register file and global table.
func vmModule(t *testing.T, src *ir.Module, fn string) *ir.Module {
	t.Helper()
	m := ir.NewModule("vmtest")
	m.MergeShared(libc.Module(libc.Fast))
	m.MergeShared(src)
	flat, err := ir.Inline(m, m.Func(fn))
	if err != nil {
		t.Fatal(err)
	}
	bc, err := CompileBytecode(flat)
	if err != nil {
		t.Fatal(err)
	}
	m.AddFunc(BuildVM(m))
	m.AddGlobal(&ir.Global{Name: "py_code", Data: bc.Code})
	m.AddGlobal(&ir.Global{Name: "py_regs", Data: make([]byte, bc.NRegs*8)})
	locals := bc.LocalsSize
	if locals < 8 {
		locals = 8
	}
	m.AddGlobal(&ir.Global{Name: "py_locals", Data: make([]byte, locals)})
	ng := len(bc.Globals)
	if ng == 0 {
		ng = 1
	}
	m.AddGlobal(&ir.Global{Name: "py_globtab", Data: make([]byte, 8*ng)})

	b := ir.NewFunc("run_vm", 2)
	tab := b.Global("py_globtab", 0)
	for i, g := range bc.Globals {
		b.Store(tab, int64(i*8), b.Global(g, 0), 8)
	}
	regs := b.Global("py_regs", 0)
	b.Store(regs, 0, b.Param(0), 8)
	b.Store(regs, 8, b.Param(1), 8)
	code := b.Global("py_code", 0)
	loc := b.Global("py_locals", 0)
	b.Ret(b.Call("py_vm", code, b.Const(int64(bc.NInsns)), regs, loc, tab))
	m.AddFunc(b.Build())
	return m
}

// TestVMMatchesAOTOnCorpus is the central VM correctness check: every
// corpus program must produce the same result interpreted as compiled.
func TestVMMatchesAOTOnCorpus(t *testing.T) {
	src, cases := irtest.Corpus()
	for _, arch := range []isa.Arch{isa.RV64, isa.CISC64} {
		runners := map[string]*isatest.Runner{}
		for _, c := range cases {
			c := c
			t.Run(string(arch)+"/"+c.Name, func(t *testing.T) {
				r, ok := runners[c.Fn]
				if !ok {
					var err error
					r, err = isatest.NewRunner(arch, vmModule(t, src, c.Fn))
					if err != nil {
						t.Fatal(err)
					}
					runners[c.Fn] = r
				}
				args := make([]int64, 2)
				copy(args, c.Args)
				got, err := r.Call("run_vm", args...)
				if err != nil {
					t.Fatal(err)
				}
				if got != c.Want {
					t.Fatalf("VM %s(%v) = %d, AOT/interp say %d", c.Fn, c.Args, got, c.Want)
				}
			})
		}
	}
}

func TestBytecodeCompilerRejectsNonBuiltinCalls(t *testing.T) {
	m := ir.NewModule("t")
	callee := ir.NewFunc("callee", 0)
	callee.Ret0()
	cf := callee.Build()
	cf.Lib = true // lib, but not in the builtin registry
	m.AddFunc(cf)
	b := ir.NewFunc("f", 0)
	b.CallV("callee")
	b.Ret0()
	m.AddFunc(b.Build())
	flat, err := ir.Inline(m, m.Func("f"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompileBytecode(flat); err == nil {
		t.Fatal("non-builtin lib call accepted by the bytecode compiler")
	}
}

func TestBytecodeLayout(t *testing.T) {
	b := ir.NewFunc("f", 1)
	r := b.AddI(b.Param(0), 5)
	b.Ret(r)
	f := b.Build()
	bc, err := CompileBytecode(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(bc.Code)%InsnSize != 0 {
		t.Fatalf("code length %d not instruction-aligned", len(bc.Code))
	}
	if bc.NInsns != len(bc.Code)/InsnSize {
		t.Fatal("NInsns mismatch")
	}
	if bc.NRegs < f.NRegs+1+6 {
		t.Fatalf("register reservation too small: %d", bc.NRegs)
	}
}

func TestBuildServerUnknownHandler(t *testing.T) {
	m := ir.NewModule("empty")
	if _, err := BuildServer(GoRT, libc.Fast, m, "handler"); err == nil {
		t.Fatal("missing handler accepted")
	}
}

func TestBuildServerAllRuntimes(t *testing.T) {
	// Each runtime wrapper must produce a module that compiles on both
	// ISAs and contains the expected machinery.
	src := ir.NewModule("w")
	h := ir.NewFunc("handler", 3)
	resp := h.Param(2)
	h.CallV("mbuf_reset", resp)
	h.CallV("mbuf_put_int", resp, h.Const(1))
	h.Ret(h.Call("mbuf_len", resp))
	src.AddFunc(h.Build())

	for _, rt := range Runtimes {
		m, err := BuildServer(rt, libc.Fast, src, "handler")
		if err != nil {
			t.Fatalf("%s: %v", rt, err)
		}
		if m.Func("main") == nil {
			t.Fatalf("%s: no main", rt)
		}
		switch rt {
		case GoRT:
			if m.Func("go_rt_init") == nil || m.Func("go_gc_poll") == nil {
				t.Fatalf("go runtime machinery missing")
			}
		case PyRT:
			if m.Func("py_vm") == nil || m.Func("py_lazy_import") == nil {
				t.Fatalf("python runtime machinery missing")
			}
			if m.Func("handler_jit") != nil {
				t.Fatalf("python must not carry a JIT tier")
			}
		case NodeRT:
			if m.Func("py_vm") == nil || m.Func("handler_jit") == nil ||
				m.Func("node_jit_compile") == nil {
				t.Fatalf("node runtime machinery missing")
			}
		}
		if m.Func("rt_frame_chain") == nil {
			t.Fatalf("%s: framework path missing", rt)
		}
		for _, arch := range []isa.Arch{isa.RV64, isa.CISC64} {
			if _, err := isatest.NewRunner(arch, m); err != nil {
				t.Fatalf("%s/%s: %v", rt, arch, err)
			}
		}
	}
}
