package gemsys

import (
	"errors"

	"svbench/internal/trace"
)

// ErrTraceDisabled reports that an export needing the event tracer was
// requested on a machine built without Config.Trace.Enabled.
var ErrTraceDisabled = errors.New("gemsys: tracing not enabled (set Config.Trace.Enabled)")

// TraceJSON renders the buffered event trace as Chrome trace_event JSON,
// loadable in Perfetto / chrome://tracing. Output is a pure function of
// the simulated execution, so same-seed runs export identical bytes.
func (m *Machine) TraceJSON() ([]byte, error) {
	if m.Tracer == nil {
		return nil, ErrTraceDisabled
	}
	return trace.ChromeJSON(m.Tracer.Events(), m.Syms, m.Tracer.Dropped)
}

// StatsText renders the full hierarchical registry as a gem5-style
// stats.txt block. Available on every machine (the registry always
// exists).
func (m *Machine) StatsText(label string) string { return m.Reg.Text(label) }

// Profile returns the sampling profiler's report, or nil when the machine
// was built without tracing.
func (m *Machine) Profile() *trace.Profile {
	if m.Prof == nil {
		return nil
	}
	return m.Prof.Report()
}

// EmitFault records a fault-injection event on the functional clock (the
// harness routes kernel fault notes here).
func (m *Machine) EmitFault(code uint64) {
	m.Tracer.EmitAt(trace.EvFault, 0, m.virtInstr, 0, code, 0)
}
