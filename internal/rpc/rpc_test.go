package rpc_test

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"svbench/internal/ir"
	"svbench/internal/isa"
	"svbench/internal/isa/isatest"
	"svbench/internal/libc"
	"svbench/internal/rpc"
)

func TestGoCodecRoundTrip(t *testing.T) {
	w := rpc.NewWriter()
	w.PutInt(0)
	w.PutInt(127)
	w.PutInt(128)
	w.PutInt(1 << 40)
	w.PutBytes([]byte("hello"))
	w.PutString("")
	msg := w.Bytes()

	r := rpc.NewReader(msg)
	for _, want := range []uint64{0, 127, 128, 1 << 40} {
		v, err := r.Int()
		if err != nil {
			t.Fatal(err)
		}
		if v != want {
			t.Fatalf("got %d want %d", v, want)
		}
	}
	b, err := r.Bytes()
	if err != nil || string(b) != "hello" {
		t.Fatalf("bytes %q err %v", b, err)
	}
	s, err := r.String()
	if err != nil || s != "" {
		t.Fatalf("string %q err %v", s, err)
	}
}

func TestGoCodecRejectsCorruption(t *testing.T) {
	w := rpc.NewWriter()
	w.PutInt(300)
	w.PutBytes([]byte("payload"))
	msg := w.Bytes()

	// Truncations must error, never panic.
	for cut := 0; cut <= len(msg); cut++ {
		r := rpc.NewReader(msg[:cut])
		_, err1 := r.Int()
		_, err2 := r.Bytes()
		_ = err1
		_ = err2
	}
	// Wrong field type.
	r := rpc.NewReader(msg)
	if _, err := r.Bytes(); err == nil {
		t.Fatal("int field read as bytes")
	}
	// Varint overflow.
	bad := append([]byte(nil), msg[:rpc.Header]...)
	bad = append(bad, 0)
	for i := 0; i < 11; i++ {
		bad = append(bad, 0xFF)
	}
	rr := rpc.NewReader(bad)
	if _, err := rr.Int(); err == nil {
		t.Fatal("overlong varint accepted")
	}
}

func TestGoCodecPropertyRoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(4))
	f := func() bool {
		w := rpc.NewWriter()
		var ints []uint64
		var blobs [][]byte
		order := []int{}
		for i := 0; i < rnd.Intn(10)+1; i++ {
			if rnd.Intn(2) == 0 {
				v := rnd.Uint64() >> uint(rnd.Intn(64))
				w.PutInt(v)
				ints = append(ints, v)
				order = append(order, 0)
			} else {
				b := make([]byte, rnd.Intn(100))
				rnd.Read(b)
				w.PutBytes(b)
				blobs = append(blobs, b)
				order = append(order, 1)
			}
		}
		r := rpc.NewReader(w.Bytes())
		ii, bi := 0, 0
		for _, kind := range order {
			if kind == 0 {
				v, err := r.Int()
				if err != nil || v != ints[ii] {
					return false
				}
				ii++
			} else {
				b, err := r.Bytes()
				if err != nil || !bytes.Equal(b, blobs[bi]) {
					return false
				}
				bi++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// buildWireTester wires a module that writes fields via the IR library and
// returns the message length; the test decodes the simulated memory with
// the Go codec (cross-implementation differential).
func TestIRWriterMatchesGoReader(t *testing.T) {
	for _, arch := range []isa.Arch{isa.RV64, isa.CISC64} {
		m := ir.NewModule("t")
		m.MergeShared(libc.Module(libc.ForArch(string(arch))))
		m.MergeShared(rpc.Module())
		m.AddGlobal(&ir.Global{Name: "msg", Data: make([]byte, 1024)})
		m.AddGlobal(&ir.Global{Name: "payload", Data: []byte("the quick brown fox")})

		b := ir.NewFunc("emit", 1)
		v := b.Param(0)
		buf := b.Global("msg", 0)
		pay := b.Global("payload", 0)
		b.CallV("mbuf_reset", buf)
		b.CallV("mbuf_put_int", buf, v)
		b.CallV("mbuf_put_int", buf, b.Const(0))
		b.CallV("mbuf_put_bytes", buf, pay, b.Const(19))
		b.CallV("mbuf_put_int", buf, b.Const(1<<40))
		b.Ret(b.Call("mbuf_len", buf))
		m.AddFunc(b.Build())

		r, err := isatest.NewRunner(arch, m)
		if err != nil {
			t.Fatal(err)
		}
		n, err := r.Call("emit", 300)
		if err != nil {
			t.Fatal(err)
		}
		raw := r.ReadBytes(r.GlobalAddr("msg"), uint64(n))
		rd := rpc.NewReader(raw)
		if v, err := rd.Int(); err != nil || v != 300 {
			t.Fatalf("%s: field1 %d err %v", arch, v, err)
		}
		if v, err := rd.Int(); err != nil || v != 0 {
			t.Fatalf("%s: field2 %d err %v", arch, v, err)
		}
		if s, err := rd.String(); err != nil || s != "the quick brown fox" {
			t.Fatalf("%s: field3 %q err %v", arch, s, err)
		}
		if v, err := rd.Int(); err != nil || v != 1<<40 {
			t.Fatalf("%s: field4 %d err %v", arch, v, err)
		}
	}
}

// TestIRReaderMatchesGoWriter: the inverse direction — the Go codec
// encodes, the IR library decodes on the simulated core.
func TestIRReaderMatchesGoWriter(t *testing.T) {
	for _, arch := range []isa.Arch{isa.RV64, isa.CISC64} {
		m := ir.NewModule("t")
		m.MergeShared(libc.Module(libc.ForArch(string(arch))))
		m.MergeShared(rpc.Module())
		m.AddGlobal(&ir.Global{Name: "msg", Data: make([]byte, 1024)})
		m.AddGlobal(&ir.Global{Name: "out", Data: make([]byte, 256)})

		// consume() -> intField + bytesLen*1000000 + firstByte*1000
		b := ir.NewFunc("consume", 0)
		buf := b.Global("msg", 0)
		out := b.Global("out", 0)
		cur := b.Frame(b.Buf("cur", 8), 0)
		b.Store(cur, 0, b.Const(rpc.Header), 8)
		v := b.Call("mbuf_get_int", buf, cur)
		n := b.Call("mbuf_get_bytes", buf, cur, out, b.Const(256))
		first := b.LoadU(out, 0, 1)
		sum := b.Add(v, b.MulI(n, 1000000))
		sum = b.Add(sum, b.MulI(first, 1000))
		b.Ret(sum)
		m.AddFunc(b.Build())

		r, err := isatest.NewRunner(arch, m)
		if err != nil {
			t.Fatal(err)
		}
		w := rpc.NewWriter()
		w.PutInt(321)
		w.PutBytes([]byte("Zebra"))
		r.WriteBytes(r.GlobalAddr("msg"), w.Bytes())
		got, err := r.Call("consume")
		if err != nil {
			t.Fatal(err)
		}
		want := int64(321 + 5*1000000 + int64('Z')*1000)
		if got != want {
			t.Fatalf("%s: consume() = %d, want %d", arch, got, want)
		}
	}
}

func TestIRVarintPropertyAgainstGo(t *testing.T) {
	// One runner, many values: write an int via IR, read with Go.
	m := ir.NewModule("t")
	m.MergeShared(libc.Module(libc.Fast))
	m.MergeShared(rpc.Module())
	m.AddGlobal(&ir.Global{Name: "msg", Data: make([]byte, 64)})
	b := ir.NewFunc("one", 1)
	buf := b.Global("msg", 0)
	b.CallV("mbuf_reset", buf)
	b.CallV("mbuf_put_int", buf, b.Param(0))
	b.Ret(b.Call("mbuf_len", buf))
	m.AddFunc(b.Build())
	r, err := isatest.NewRunner(isa.RV64, m)
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(6))
	f := func() bool {
		v := rnd.Uint64() >> uint(rnd.Intn(64))
		n, err := r.Call("one", int64(v))
		if err != nil {
			t.Fatal(err)
		}
		raw := r.ReadBytes(r.GlobalAddr("msg"), uint64(n))
		rd := rpc.NewReader(raw)
		got, err := rd.Int()
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGetBytesTruncatesAtMax(t *testing.T) {
	m := ir.NewModule("t")
	m.MergeShared(libc.Module(libc.Fast))
	m.MergeShared(rpc.Module())
	m.AddGlobal(&ir.Global{Name: "msg", Data: make([]byte, 256)})
	m.AddGlobal(&ir.Global{Name: "small", Data: make([]byte, 8)})
	b := ir.NewFunc("trunc", 0)
	buf := b.Global("msg", 0)
	out := b.Global("small", 0)
	cur := b.Frame(b.Buf("cur", 8), 0)
	b.Store(cur, 0, b.Const(rpc.Header), 8)
	n := b.Call("mbuf_get_bytes", buf, cur, out, b.Const(4))
	// A following field must still parse correctly (cursor advanced by
	// the full field length, not the truncated copy).
	v := b.Call("mbuf_get_int", buf, cur)
	b.Ret(b.Add(n, b.MulI(v, 100)))
	m.AddFunc(b.Build())
	r, err := isatest.NewRunner(isa.RV64, m)
	if err != nil {
		t.Fatal(err)
	}
	w := rpc.NewWriter()
	w.PutBytes([]byte("0123456789"))
	w.PutInt(7)
	r.WriteBytes(r.GlobalAddr("msg"), w.Bytes())
	got, err := r.Call("trunc")
	if err != nil {
		t.Fatal(err)
	}
	if got != 4+700 {
		t.Fatalf("trunc() = %d, want 704", got)
	}
}

// TestVarintRejectsOverflowAndOverlong pins the Reader.varint hardening:
// the loop is bounded at 10 bytes, a 10th byte carrying bits that do not
// fit in 64 bits is an error (the old decoder silently dropped them), and
// overlong encodings with a redundant zero terminator are rejected (the
// Writer never emits them, so every accepted encoding is canonical).
func TestVarintRejectsOverflowAndOverlong(t *testing.T) {
	// intMsg frames one int field whose varint payload is raw.
	intMsg := func(raw ...byte) []byte {
		msg := make([]byte, rpc.Header, rpc.Header+1+len(raw))
		msg = append(msg, 0) // int field tag
		return append(msg, raw...)
	}
	rep := func(b byte, n int) []byte { return bytes.Repeat([]byte{b}, n) }

	bad := map[string][]byte{
		// 10th byte 0x7F: bits 64..69 would be dropped by the shift.
		"overflow bits in 10th byte": intMsg(append(rep(0xFF, 9), 0x7F)...),
		// Unterminated past 10 bytes: must stop, not keep shifting.
		"11 continuation bytes": intMsg(append(rep(0x80, 10), 0x01)...),
		// Overlong encodings of small values.
		"overlong zero":      intMsg(0x80, 0x00),
		"overlong deep zero": intMsg(0xFF, 0x80, 0x80, 0x00),
	}
	for name, msg := range bad {
		if v, err := rpc.NewReader(msg).Int(); err == nil {
			t.Errorf("%s: accepted as %d, want error", name, v)
		}
	}

	// The canonical 10-byte encoding of MaxUint64 must still decode.
	v, err := rpc.NewReader(intMsg(append(rep(0xFF, 9), 0x01)...)).Int()
	if err != nil {
		t.Fatalf("max uint64: %v", err)
	}
	if v != 1<<64-1 {
		t.Fatalf("max uint64 decoded as %d", v)
	}
	// Writer output for boundary values stays accepted byte-for-byte.
	for _, want := range []uint64{0, 1, 127, 128, 1<<63 - 1, 1 << 63, 1<<64 - 1} {
		w := rpc.NewWriter()
		w.PutInt(want)
		got, err := rpc.NewReader(w.Bytes()).Int()
		if err != nil {
			t.Fatalf("canonical %d: %v", want, err)
		}
		if got != want {
			t.Fatalf("canonical %d decoded as %d", want, got)
		}
	}
}
