package harness

import (
	"sync"
	"testing"

	"svbench/internal/isa"
	"svbench/internal/langrt"
)

// The shape checks of DESIGN.md §3: every qualitative claim of the
// thesis's evaluation, asserted against the regenerated results.

var (
	shapeOnce sync.Once
	shapeRes  map[isa.Arch]map[string]*Result
	shapeErr  error
)

func sweep(t *testing.T) map[isa.Arch]map[string]*Result {
	t.Helper()
	if testing.Short() {
		t.Skip("full shape sweep")
	}
	shapeOnce.Do(func() {
		shapeRes = map[isa.Arch]map[string]*Result{}
		specs := append(append(StandaloneSpecs(), ShopSpecs()...), HotelSpecs(EngineCassandra)...)
		for _, arch := range []isa.Arch{isa.RV64, isa.CISC64} {
			shapeRes[arch] = map[string]*Result{}
			for _, sp := range specs {
				r, err := Run(arch, sp)
				if err != nil {
					shapeErr = err
					return
				}
				shapeRes[arch][sp.Name] = r
			}
		}
	})
	if shapeErr != nil {
		t.Fatal(shapeErr)
	}
	return shapeRes
}

// Shape 1: warm beats cold everywhere; Node.js shows a strong JIT warm-up.
func TestShapeColdWarm(t *testing.T) {
	res := sweep(t)
	for arch, byName := range res {
		for name, r := range byName {
			if r.Cold.Cycles <= r.Warm.Cycles {
				t.Errorf("%s/%s: cold %d <= warm %d", arch, name, r.Cold.Cycles, r.Warm.Cycles)
			}
		}
	}
	nd := res[isa.RV64]["fibonacci-nodejs"]
	if ratio := float64(nd.Cold.Cycles) / float64(nd.Warm.Cycles); ratio < 1.5 {
		t.Errorf("nodejs cold/warm ratio %.2f, want >= 1.5 (Fig 4.4)", ratio)
	}
}

// Shape 2: the hotel application dwarfs the standalone functions in cold
// cycles; profile has the worst cold of the suite and is among the best
// warm within the Memcached trio (Fig 4.5).
func TestShapeHotelHeavier(t *testing.T) {
	res := sweep(t)[isa.RV64]
	goCold := res["fibonacci-go"].Cold.Cycles
	profCold := res["profile"].Cold.Cycles
	// The thesis reports ~10x at its workload scale; at this repository's
	// reduced inputs the gap compresses (EXPERIMENTS.md documents this).
	if profCold < 6*goCold {
		t.Errorf("profile cold (%d) should be >= 6x fibonacci-go cold (%d)", profCold, goCold)
	}
	for _, fn := range []string{"geo", "recommendation", "user", "reservation", "rate"} {
		if res[fn].Cold.Cycles >= profCold {
			t.Errorf("%s cold (%d) should be below profile cold (%d)", fn, res[fn].Cold.Cycles, profCold)
		}
	}
}

// Shape 3: the Memcached-backed functions show far more L2 misses than the
// database-only trio in cold runs (Figs 4.10/4.11).
func TestShapeMemcachedL2(t *testing.T) {
	res := sweep(t)[isa.RV64]
	mcWorst := res["rate"].Cold.L2Misses
	if p := res["profile"].Cold.L2Misses; p > mcWorst {
		mcWorst = p
	}
	for _, fn := range []string{"geo", "recommendation", "user"} {
		if res[fn].Cold.L2Misses >= mcWorst {
			t.Errorf("%s cold L2 misses (%d) should be below the memcached-backed worst (%d)",
				fn, res[fn].Cold.L2Misses, mcWorst)
		}
	}
}

// Shape 4: the hotel L1-miss split shifts from data-dominated in cold runs
// toward instruction-dominated in warm runs (Figs 4.8/4.9).
func TestShapeL1Split(t *testing.T) {
	res := sweep(t)[isa.RV64]
	var coldD, coldT, warmD, warmT float64
	for _, fn := range []string{"geo", "recommendation", "user", "reservation", "rate", "profile"} {
		r := res[fn]
		coldD += float64(r.Cold.L1DMisses)
		coldT += float64(r.Cold.L1DMisses + r.Cold.L1IMisses)
		warmD += float64(r.Warm.L1DMisses)
		warmT += float64(r.Warm.L1DMisses + r.Warm.L1IMisses)
	}
	coldPct := 100 * coldD / coldT
	warmPct := 100 * warmD / warmT
	if coldPct <= warmPct {
		t.Errorf("data-miss share should drop from cold (%.0f%%) to warm (%.0f%%)", coldPct, warmPct)
	}
	if coldPct < 40 {
		t.Errorf("cold data-miss share %.0f%%, expected the data-dominated regime", coldPct)
	}
}

// Shape 5: RISC-V beats x86 on cycles for every ported benchmark; for
// several, RISC-V cold beats x86 warm; the driver is instruction count
// (Figs 4.15/4.16).
func TestShapeISAAdvantage(t *testing.T) {
	res := sweep(t)
	crossovers := 0
	for name, rv := range res[isa.RV64] {
		x := res[isa.CISC64][name]
		if rv.Cold.Cycles >= x.Cold.Cycles {
			t.Errorf("%s: rv64 cold (%d) should beat cisc64 cold (%d)", name, rv.Cold.Cycles, x.Cold.Cycles)
		}
		if rv.Warm.Cycles >= x.Warm.Cycles {
			t.Errorf("%s: rv64 warm (%d) should beat cisc64 warm (%d)", name, rv.Warm.Cycles, x.Warm.Cycles)
		}
		if rv.Cold.Insts >= x.Cold.Insts {
			t.Errorf("%s: rv64 cold insts (%d) should be below cisc64 (%d)", name, rv.Cold.Insts, x.Cold.Insts)
		}
		if rv.Cold.Cycles < x.Warm.Cycles {
			crossovers++
		}
	}
	if crossovers == 0 {
		t.Error("expected some functions where rv64 cold beats cisc64 warm (Fig 4.15)")
	}
}

// Shape 6: Python cold starts dominate on x86 — roughly 10x their warm
// executions (Fig 4.12), with fibonacci the clearest case.
func TestShapePythonColdX86(t *testing.T) {
	res := sweep(t)[isa.CISC64]
	fib := res["fibonacci-python"]
	if ratio := float64(fib.Cold.Cycles) / float64(fib.Warm.Cycles); ratio < 5 {
		t.Errorf("x86 fibonacci-python cold/warm %.1fx, want >= 5x", ratio)
	}
	// emailservice is the documented exception: a smaller cold/warm gap
	// than the other Python functions thanks to fewer L2 misses.
	email := res["emailservice-python"]
	emailRatio := float64(email.Cold.Cycles) / float64(email.Warm.Cycles)
	fibRatio := float64(fib.Cold.Cycles) / float64(fib.Warm.Cycles)
	if emailRatio >= fibRatio {
		t.Errorf("emailservice cold/warm (%.1fx) should be below fibonacci-python's (%.1fx)",
			emailRatio, fibRatio)
	}
}

// Shape 7: the Go runtime is the leanest in both phases on RISC-V.
func TestShapeGoLeanest(t *testing.T) {
	res := sweep(t)[isa.RV64]
	for _, fn := range []string{"fibonacci", "auth"} {
		gr := res[fn+"-go"]
		py := res[fn+"-python"]
		if py.Cold.Cycles <= gr.Cold.Cycles {
			t.Errorf("%s: python cold (%d) should exceed go cold (%d)", fn, py.Cold.Cycles, gr.Cold.Cycles)
		}
	}
	_ = langrt.GoRT
}
