// Package kernel implements the miniature operating system of the
// simulated machine: the syscall handlers that user code traps into
// (written in the portable IR, so kernel time is visible in the measured
// instruction stream exactly as in the thesis's full-system methodology),
// and the host-side state — processes, scheduler run queues, blocking
// channel IPC (the loopback network), native services (the databases), and
// the m5-style magic operations.
package kernel

import (
	"svbench/internal/ir"
	"svbench/internal/libc"
)

// User-visible syscall numbers (vectored into kernel IR handlers).
const (
	SysWrite = 1 // write(buf, len) to the console
	SysSend  = 2 // send(ch, buf, len) blocking message send
	SysRecv  = 3 // recv(ch, buf, maxlen) -> len, blocking
	SysSbrk  = 4 // sbrk(n) -> old break
	SysExit  = 5 // exit(code)
	SysYield = 6 // yield()
	SysClock = 7 // clock() -> virtual nanoseconds
	// SysTryRecv is the non-blocking receive the fault-tolerant load
	// generator polls with: it returns the message length, or -1 when the
	// channel is empty (so a deadline can expire instead of blocking).
	SysTryRecv = 8 // tryrecv(ch, buf, maxlen) -> len | -1
)

// m5-style magic operations (host-handled).
const (
	M5ResetStats = 0x100
	M5DumpStats  = 0x101
	M5Checkpoint = 0x102
	M5Exit       = 0x103
)

// Host calls: issued only by kernel IR code (and the stack protector).
const (
	HWrite   = 0x1001
	HReserve = 0x1002
	HCommit  = 0x1003
	HPoll    = 0x1004
	HBlock   = 0x1005
	HMsgLen  = 0x1006
	HConsume = 0x1007
	HSbrk    = 0x1008
	HExit    = 0x1009
	HYield   = 0x100A
	HClock   = 0x100B
	// HReplyOK classifies a received reply for the retry loop (host-side
	// response check); HFaultNote reports a client-observed fault event
	// to the injector. Both are no-ops when no fault plan is wired.
	HReplyOK   = 0x100C
	HFaultNote = 0x100D
	HPanic     = 0x1FFF
)

// HandlerName returns the kernel IR function handling a user syscall.
func HandlerName(num uint64) string {
	switch num {
	case SysWrite:
		return "k_sys_write"
	case SysSend:
		return "k_sys_send"
	case SysRecv:
		return "k_sys_recv"
	case SysSbrk:
		return "k_sys_sbrk"
	case SysExit:
		return "k_sys_exit"
	case SysYield:
		return "k_sys_yield"
	case SysClock:
		return "k_sys_clock"
	case SysTryRecv:
		return "k_sys_try_recv"
	}
	return ""
}

// UserSyscalls lists the vectored syscall numbers.
var UserSyscalls = []uint64{SysWrite, SysSend, SysRecv, SysSbrk, SysExit, SysYield, SysClock, SysTryRecv}

// Module builds the kernel's IR module for a libc flavor. The handlers do
// their data movement (message copies between user buffers and kernel
// channel slots) with simulated instructions, so IPC cost lands in the
// caches of the core that performs it.
func Module(f libc.Flavor) *ir.Module {
	m := ir.NewModule("kernel")
	m.MergeShared(libc.Module(f))
	// Kernel bookkeeping memory touched on syscall entry, modeling the
	// task/trap structures a real kernel dirties.
	m.AddGlobal(&ir.Global{Name: "k_taskstate", Data: make([]byte, 256)})

	// entry/exit accounting shared by all handlers.
	entry := func(b *ir.Builder) {
		ts := b.Global("k_taskstate", 0)
		cnt := b.Load(ts, 0, 8)
		cnt = b.AddI(cnt, 1)
		b.Store(ts, 0, cnt, 8)
	}

	{ // k_sys_write(buf, len)
		b := ir.NewFunc("k_sys_write", 2)
		entry(b)
		b.Ret(b.Ecall(HWrite, b.Param(0), b.Param(1)))
		m.AddFunc(b.Build())
	}

	{ // k_sys_send(ch, buf, len)
		b := ir.NewFunc("k_sys_send", 3)
		ch, buf, ln := b.Param(0), b.Param(1), b.Param(2)
		entry(b)
		kbuf := b.Ecall(HReserve, ch, ln)
		b.CallV("memcpy", kbuf, buf, ln)
		b.Ret(b.Ecall(HCommit, ch, kbuf, ln))
		m.AddFunc(b.Build())
	}

	{ // k_sys_recv(ch, buf, maxlen) -> len
		b := ir.NewFunc("k_sys_recv", 3)
		ch, buf, maxlen := b.Param(0), b.Param(1), b.Param(2)
		entry(b)
		loop, got := b.NewLabel("loop"), b.NewLabel("got")
		b.Label(loop)
		kbuf := b.Ecall(HPoll, ch)
		b.BrI(ir.Ne, kbuf, 0, got)
		b.EcallV(HBlock, ch)
		b.Jmp(loop)
		b.Label(got)
		ln := b.Ecall(HMsgLen, ch)
		fits := b.NewLabel("fits")
		b.Br(ir.Le, ln, maxlen, fits)
		b.MovInto(ln, maxlen)
		b.Label(fits)
		b.CallV("memcpy", buf, kbuf, ln)
		b.EcallV(HConsume, ch)
		b.Ret(ln)
		m.AddFunc(b.Build())
	}

	{ // k_sys_try_recv(ch, buf, maxlen) -> len, or -1 when no message waits
		b := ir.NewFunc("k_sys_try_recv", 3)
		ch, buf, maxlen := b.Param(0), b.Param(1), b.Param(2)
		entry(b)
		kbuf := b.Ecall(HPoll, ch)
		empty := b.NewLabel("empty")
		b.BrI(ir.Eq, kbuf, 0, empty)
		ln := b.Ecall(HMsgLen, ch)
		fits := b.NewLabel("fits")
		b.Br(ir.Le, ln, maxlen, fits)
		b.MovInto(ln, maxlen)
		b.Label(fits)
		b.CallV("memcpy", buf, kbuf, ln)
		b.EcallV(HConsume, ch)
		b.Ret(ln)
		b.Label(empty)
		b.Ret(b.Const(-1))
		m.AddFunc(b.Build())
	}

	{ // k_sys_sbrk(n) -> old break
		b := ir.NewFunc("k_sys_sbrk", 1)
		entry(b)
		b.Ret(b.Ecall(HSbrk, b.Param(0)))
		m.AddFunc(b.Build())
	}

	{ // k_sys_exit(code)
		b := ir.NewFunc("k_sys_exit", 1)
		entry(b)
		b.EcallV(HExit, b.Param(0))
		b.Ret0() // unreachable; HExit never returns
		m.AddFunc(b.Build())
	}

	{ // k_sys_yield()
		b := ir.NewFunc("k_sys_yield", 0)
		entry(b)
		b.EcallV(HYield)
		b.Ret0()
		m.AddFunc(b.Build())
	}

	{ // k_sys_clock() -> virtual ns
		b := ir.NewFunc("k_sys_clock", 0)
		entry(b)
		b.Ret(b.Ecall(HClock))
		m.AddFunc(b.Build())
	}

	{ // k_user_exit: return target for a process's entry function.
		b := ir.NewFunc("k_user_exit", 0)
		b.EcallV(HExit, b.Const(0))
		b.Ret0()
		m.AddFunc(b.Build())
	}

	if err := m.Validate(); err != nil {
		panic(err)
	}
	return m
}
