// Package qemu implements the functional-emulation execution mode the
// thesis falls back to where gem5 cannot run a component (§4.2.4): the
// whole system executes functionally (no pipeline model) under a virtual
// clock of one nanosecond per instruction plus native service time. It is
// the methodology behind the MongoDB-vs-Cassandra comparison of Fig. 4.20.
package qemu

import (
	"fmt"

	"svbench/internal/gemsys"
	"svbench/internal/harness"
	"svbench/internal/ir"
	"svbench/internal/isa"
	"svbench/internal/kernel"
	"svbench/internal/langrt"
	"svbench/internal/libc"
	"svbench/internal/vswarm"
)

// Latency is one request's measured wall time under emulation.
type Latency struct {
	Request int
	NS      uint64
}

// Run executes spec under functional emulation, issuing nreq requests and
// measuring each request's latency with the guest clock — exactly how one
// times requests inside a QEMU guest.
func Run(arch isa.Arch, spec harness.Spec, nreq int) ([]Latency, error) {
	cfg := gemsys.DefaultConfig(arch)
	m, err := gemsys.New(cfg)
	if err != nil {
		return nil, err
	}
	env := &harness.Env{M: m}
	workload, err := spec.Build(env)
	if err != nil {
		return nil, err
	}
	server, err := langrt.BuildServer(spec.Runtime, libc.ForArch(string(arch)), workload, vswarm.Handler)
	if err != nil {
		return nil, err
	}
	reqCh := m.K.NewChannel()
	respCh := m.K.NewChannel()
	if _, err := m.Spawn("server", server, "main", 1, []uint64{uint64(reqCh), uint64(respCh)}); err != nil {
		return nil, err
	}
	client := buildTimingClient(spec.Request(), int64(nreq))
	if _, err := m.Spawn("client", client, "main", 0, []uint64{uint64(reqCh), uint64(respCh)}); err != nil {
		return nil, err
	}
	if err := m.RunFunctional(2_000_000_000); err != nil {
		return nil, err
	}
	// The client wrote nreq little-endian uint64 latencies to the console.
	out := m.K.Console.Bytes()
	if len(out) < nreq*8 {
		return nil, fmt.Errorf("qemu: expected %d latency records, got %d bytes", nreq, len(out))
	}
	var res []Latency
	for i := 0; i < nreq; i++ {
		var v uint64
		for k := 0; k < 8; k++ {
			v |= uint64(out[i*8+k]) << (8 * k)
		}
		res = append(res, Latency{Request: i + 1, NS: v})
	}
	return res, nil
}

// buildTimingClient builds the QEMU-mode load generator: it wraps each
// request in guest clock reads and dumps the latency table at the end.
func buildTimingClient(request []byte, nreq int64) *ir.Module {
	m := ir.NewModule("qemu-client")
	m.AddGlobal(&ir.Global{Name: "cli_req", Data: request})
	m.AddGlobal(&ir.Global{Name: "cli_rbuf", Data: make([]byte, langrt.WBufSize)})
	m.AddGlobal(&ir.Global{Name: "cli_lat", Data: make([]byte, nreq*8)})

	b := ir.NewFunc("main", 2)
	req, resp := b.Param(0), b.Param(1)
	rbuf := b.Global("cli_rbuf", 0)
	lat := b.Global("cli_lat", 0)
	b.EcallV(kernel.SysRecv, resp, rbuf, b.Const(langrt.WBufSize)) // ready

	reqG := b.Global("cli_req", 0)
	reqLen := b.Const(int64(len(request)))
	i := b.Const(0)
	loop, done := b.NewLabel("loop"), b.NewLabel("done")
	b.Label(loop)
	b.BrI(ir.Ge, i, nreq, done)
	t0 := b.Ecall(kernel.SysClock)
	b.EcallV(kernel.SysSend, req, reqG, reqLen)
	b.EcallV(kernel.SysRecv, resp, rbuf, b.Const(langrt.WBufSize))
	t1 := b.Ecall(kernel.SysClock)
	d := b.Sub(t1, t0)
	b.Store(b.Add(lat, b.ShlI(i, 3)), 0, d, 8)
	b.AddIInto(i, i, 1)
	b.Jmp(loop)
	b.Label(done)
	b.EcallV(kernel.SysWrite, lat, b.Const(nreq*8))
	b.EcallV(kernel.M5Exit)
	m.AddFunc(b.Build())
	return m
}
