package figures

import (
	"fmt"

	"svbench/internal/gemsys"
	"svbench/internal/harness"
	"svbench/internal/isa"
	"svbench/internal/langrt"
)

// SamplingSpecs returns the scaled standalone workloads of the sampling
// study: request sizes are scaled up (see harness.ScaledFibSpec) so every
// stats window spans many sampling intervals — the regime SMARTS-style
// sampled simulation targets. One workload per runtime.
func SamplingSpecs() []harness.Spec {
	return []harness.Spec{
		harness.ScaledFibSpec(langrt.GoRT, 50000),
		harness.ScaledAESSpec(langrt.PyRT, 1024),
		harness.ScaledAESSpec(langrt.NodeRT, 1024),
	}
}

// TableSampling runs the sampling-study workloads full-detail and sampled
// (gemsys.DefaultSamplingConfig) on each arch and reports the cold/warm
// CPI of both modes plus the sampled run's relative error in percent. The
// full and sampled runs of one workload share a memoized boot checkpoint:
// sampling never enters the boot fingerprint.
func TableSampling(arches []isa.Arch, log func(string)) (Data, error) {
	sc := gemsys.DefaultSamplingConfig()
	d := Data{
		ID: "table-sampling",
		Title: fmt.Sprintf("Sampled vs full-detail CPI (%s; windows = measured detail windows in the warm stats window)",
			sc),
		Columns: []string{"full cold CPI", "sampled cold CPI", "cold err %",
			"full warm CPI", "sampled warm CPI", "warm err %", "windows"},
	}
	for _, arch := range arches {
		for _, spec := range SamplingSpecs() {
			cache := harness.NewBootCache()
			cfg := gemsys.DefaultConfig(arch)
			full, err := harness.RunCached(cfg, spec, cache)
			if err != nil {
				return d, fmt.Errorf("table-sampling %s/%s full: %w", spec.Name, arch, err)
			}
			sp := spec
			sp.Sampling = sc
			sampled, err := harness.RunCached(cfg, sp, cache)
			if err != nil {
				return d, fmt.Errorf("table-sampling %s/%s sampled: %w", spec.Name, arch, err)
			}
			coldErr := 100 * (sampled.Cold.CPI() - full.Cold.CPI()) / full.Cold.CPI()
			warmErr := 100 * (sampled.Warm.CPI() - full.Warm.CPI()) / full.Warm.CPI()
			var windows float64
			if sampled.SampleWarm != nil {
				windows = float64(sampled.SampleWarm.Windows)
			}
			if log != nil {
				log(fmt.Sprintf("table-sampling %s/%s: cold %+.2f%% warm %+.2f%%", spec.Name, arch, coldErr, warmErr))
			}
			d.Rows = append(d.Rows, Row{
				Label: fmt.Sprintf("%s/%s", spec.Name, arch),
				Values: []float64{full.Cold.CPI(), sampled.Cold.CPI(), coldErr,
					full.Warm.CPI(), sampled.Warm.CPI(), warmErr, windows},
			})
		}
	}
	return d, nil
}
