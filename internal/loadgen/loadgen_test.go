package loadgen

import (
	"bytes"
	"testing"

	"svbench/internal/faults"
	"svbench/internal/gemsys"
	"svbench/internal/harness"
	"svbench/internal/isa"
)

func specByName(t *testing.T, name string) harness.Spec {
	t.Helper()
	for _, sp := range harness.AllSpecs() {
		if sp.Name == name {
			return sp
		}
	}
	t.Fatalf("no spec %q in catalog", name)
	return harness.Spec{}
}

// testConfig is the acceptance-criteria load point: fibonacci-go on rv64,
// 200 rps over a 50 ms window, seed 7.
func testConfig(t *testing.T) Config {
	return Config{
		Cfg:       gemsys.DefaultConfig(isa.RV64),
		Spec:      specByName(t, "fibonacci-go"),
		RPS:       200,
		Duration:  50_000_000,
		Seed:      7,
		KeepAlive: 10_000_000,
	}
}

func TestArrivalsAreSeededAndBounded(t *testing.T) {
	cfg := testConfig(t)
	a := genArrivals(cfg)
	b := genArrivals(cfg)
	if len(a) == 0 {
		t.Fatal("no arrivals generated")
	}
	if len(a) != len(b) {
		t.Fatalf("same config, different arrival counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %d vs %d", i, a[i], b[i])
		}
		if a[i] >= cfg.Duration {
			t.Fatalf("arrival %d at %d >= duration %d", i, a[i], cfg.Duration)
		}
		if i > 0 && a[i] < a[i-1] {
			t.Fatalf("arrivals not monotone at %d: %d < %d", i, a[i], a[i-1])
		}
	}

	cfg.Seed = 8
	c := genArrivals(cfg)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical arrival streams")
	}

	cfg.Arrival = Bursty
	cfg.Burst = 4
	d := genArrivals(cfg)
	if len(d)%4 != 0 {
		t.Fatalf("bursty arrivals not batch-aligned: %d", len(d))
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	cfg := testConfig(t)
	cfg.RPS = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero RPS accepted")
	}
	cfg = testConfig(t)
	cfg.Duration = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero duration accepted")
	}
	cfg = testConfig(t)
	cfg.MaxInstances = -1
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative pool cap accepted")
	}
}

// TestRunBasics exercises one full run: every invocation completes with a
// consistent lifecycle and the warmup cold starts match the pool growth.
func TestRunBasics(t *testing.T) {
	rep, err := Run(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Invocations) == 0 {
		t.Fatal("no invocations")
	}
	if rep.CheckFailures != 0 {
		t.Fatalf("%d check failures", rep.CheckFailures)
	}
	if rep.ColdStarts == 0 {
		t.Fatal("first invocation must cold-start")
	}
	if rep.ColdStarts+rep.WarmStarts != uint64(len(rep.Invocations)) {
		t.Fatalf("cold %d + warm %d != invocations %d",
			rep.ColdStarts, rep.WarmStarts, len(rep.Invocations))
	}
	for i, inv := range rep.Invocations {
		if inv.ID != i {
			t.Fatalf("invocation %d has ID %d", i, inv.ID)
		}
		if inv.Done != inv.Start+inv.Service {
			t.Fatalf("invocation %d: done %d != start %d + service %d", i, inv.Done, inv.Start, inv.Service)
		}
		if inv.Latency != inv.QueueDelay+inv.ColdPenalty+inv.Service {
			t.Fatalf("invocation %d: latency %d != queue %d + cold %d + service %d",
				i, inv.Latency, inv.QueueDelay, inv.ColdPenalty, inv.Service)
		}
		if !inv.Cold && inv.ColdPenalty != 0 {
			t.Fatalf("warm invocation %d has cold penalty %d", i, inv.ColdPenalty)
		}
		if inv.Cold && inv.ColdPenalty == 0 {
			t.Fatalf("cold invocation %d has no penalty", i)
		}
		if inv.Service == 0 {
			t.Fatalf("invocation %d has zero service time", i)
		}
	}
	if rep.Latency.P99 < rep.Latency.P50 || rep.Latency.Max < rep.Latency.P99 {
		t.Fatalf("percentiles not ordered: %+v", rep.Latency)
	}
	if rep.Makespan == 0 || rep.Throughput <= 0 {
		t.Fatalf("missing makespan/throughput: %d %g", rep.Makespan, rep.Throughput)
	}
}

// TestKeepAliveControlsColdStarts pins the acceptance criterion: a short
// keep-alive churns cold starts, a keep-alive beyond the run leaves only
// the warmup ones.
func TestKeepAliveControlsColdStarts(t *testing.T) {
	cfg := testConfig(t)
	cfg.KeepAlive = 0 // reclaim the instant an instance idles
	churny, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if churny.ChurnColdStarts == 0 {
		t.Fatalf("keep-alive 0 produced no churn cold starts (cold %d)", churny.ColdStarts)
	}
	if churny.Reclaims == 0 {
		t.Fatal("keep-alive 0 reclaimed nothing")
	}

	cfg.KeepAlive = 10 * cfg.Duration
	warm, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.ChurnColdStarts != 0 {
		t.Fatalf("infinite keep-alive still churned %d cold starts", warm.ChurnColdStarts)
	}
	if warm.ColdStarts != warm.PeakInstances {
		t.Fatalf("warmup cold starts %d != peak instances %d", warm.ColdStarts, warm.PeakInstances)
	}
	if warm.Reclaims != 0 {
		t.Fatalf("infinite keep-alive reclaimed %d instances", warm.Reclaims)
	}
	if warm.Latency.P99 > churny.Latency.Max && churny.ChurnColdStarts > 0 &&
		warm.ColdStarts > churny.ColdStarts {
		t.Fatal("longer keep-alive should not increase cold starts")
	}
}

// TestBurstyQueuesAtPoolCap drives batch arrivals into a small pool and
// expects FIFO backlog.
func TestBurstyQueuesAtPoolCap(t *testing.T) {
	cfg := testConfig(t)
	cfg.Arrival = Bursty
	cfg.Burst = 6
	// Batches arrive every burst/RPS seconds on average; keep the rate
	// high enough that several batches land inside the window.
	cfg.RPS = 600
	cfg.MaxInstances = 2
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeakInstances != 2 {
		t.Fatalf("peak %d, want pool cap 2", rep.PeakInstances)
	}
	if rep.MaxQueueDepth == 0 {
		t.Fatal("burst of 6 into a pool of 2 never queued")
	}
	if rep.QueueDelay.Max == 0 {
		t.Fatal("queueing produced no queue delay")
	}
}

// TestDeterminismAcrossJobs is the loadgen determinism gate: the same
// sweep of configs run with -j 1 and -j 4 yields byte-identical latency
// tables, stats-registry dumps and trace JSON for every point — and a
// solo Run matches both.
func TestDeterminismAcrossJobs(t *testing.T) {
	mkCfgs := func() []Config {
		base := testConfig(t)
		short := base
		short.KeepAlive = 1_000_000
		bursty := base
		bursty.Arrival = Bursty
		bursty.RPS = 600
		bursty.MaxInstances = 2
		return []Config{base, short, bursty}
	}

	seq, errs1 := RunMany(mkCfgs(), 1)
	for i, err := range errs1 {
		if err != nil {
			t.Fatalf("point %d (-j 1): %v", i, err)
		}
	}
	par, errs4 := RunMany(mkCfgs(), 4)
	for i, err := range errs4 {
		if err != nil {
			t.Fatalf("point %d (-j 4): %v", i, err)
		}
	}

	solo, err := Run(mkCfgs()[0])
	if err != nil {
		t.Fatal(err)
	}

	for i := range seq {
		if a, b := seq[i].Table(), par[i].Table(); a != b {
			t.Errorf("point %d: latency table differs between -j 1 and -j 4:\n--- j1\n%s--- j4\n%s", i, a, b)
		}
		if a, b := seq[i].StatsText, par[i].StatsText; a != b {
			t.Errorf("point %d: stats text differs between -j 1 and -j 4", i)
		}
		if !bytes.Equal(seq[i].TraceJSON, par[i].TraceJSON) {
			t.Errorf("point %d: trace JSON differs between -j 1 and -j 4", i)
		}
	}
	if a, b := seq[0].Table(), solo.Table(); a != b {
		t.Errorf("solo run table differs from swept run:\n--- sweep\n%s--- solo\n%s", a, b)
	}
	if !bytes.Equal(seq[0].TraceJSON, solo.TraceJSON) {
		t.Error("solo run trace differs from swept run")
	}
	if seq[0].StatsText != solo.StatsText {
		t.Error("solo run stats text differs from swept run")
	}
}

// TestReclaimDispatchTieBreak pins the ordering contract at identical
// virtual timestamps: dispatch reclaims before placement, and an idle
// instance whose keep-alive lease ends exactly at the dispatch instant is
// reclaimed (the arrival cold-starts). Flipping the tie-break would
// silently shift cold/warm accounting in scenario phase buckets. The
// cases drive reclaimExpired/leaseEnd/takeWarm directly on fabricated
// pool state — no machines are involved, so instances carry no Boot.
func TestReclaimDispatchTieBreak(t *testing.T) {
	cases := []struct {
		name      string
		keepAlive uint64
		idleSince uint64
		now       uint64
		reclaimed bool
	}{
		{"lease ends exactly at dispatch: reclaim wins", 10_000, 90_000, 100_000, true},
		{"lease ends one tick after dispatch: instance stays warm", 10_000, 90_001, 100_000, false},
		{"lease ended well before dispatch", 10_000, 10_000, 100_000, true},
		{"keep-alive zero reclaims at the idling instant", 0, 100_000, 100_000, true},
		{"huge keep-alive never expires (overflow-safe)", ^uint64(0) - 5, 100_000, ^uint64(0) - 1, false},
	}
	for _, tc := range cases {
		e := &engine{cfg: Config{KeepAlive: tc.keepAlive}, live: 1}
		inst := &Instance{ID: 0, IdleSince: tc.idleSince}
		e.idle = []*Instance{inst}
		e.reclaimExpired(tc.now)
		gotReclaimed := len(e.idle) == 0
		if gotReclaimed != tc.reclaimed {
			t.Errorf("%s: reclaimed=%v, want %v (leaseEnd %d, now %d)",
				tc.name, gotReclaimed, tc.reclaimed, e.leaseEnd(inst), tc.now)
			continue
		}
		if tc.reclaimed {
			if e.reclaims != 1 || e.live != 0 {
				t.Errorf("%s: reclaims=%d live=%d, want 1/0", tc.name, e.reclaims, e.live)
			}
			if w := e.takeWarm(); w != nil {
				t.Errorf("%s: takeWarm returned instance %d after reclaim", tc.name, w.ID)
			}
		} else {
			if w := e.takeWarm(); w != inst {
				t.Errorf("%s: takeWarm lost the surviving instance", tc.name)
			}
		}
	}
}

// timedFault returns a fixed AttemptFault inside a window and nothing
// outside — a minimal deterministic AttemptHook for engine tests.
type timedFault struct {
	start, end uint64
	f          faults.AttemptFault
	calls      int
}

func (h *timedFault) Attempt(inv, attempt int, now uint64) faults.AttemptFault {
	h.calls++
	if now >= h.start && now < h.end {
		return h.f
	}
	return faults.AttemptFault{}
}

// TestRetryRecoversErrorReplies pins the engine-level retry path: error
// replies inside a fault window are retried with backoff, invocations
// recover once the window closes or attempts land outside it, and the
// chaos counters reconcile.
func TestRetryRecoversErrorReplies(t *testing.T) {
	cfg := testConfig(t)
	cfg.Retry = &faults.Retry{MaxAttempts: 4, Backoff: 2_000_000, Deadline: 20_000_000}
	hook := &timedFault{start: 10_000_000, end: 25_000_000, f: faults.AttemptFault{ErrorReply: true}}
	cfg.Chaos = hook
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hook.calls == 0 || uint64(hook.calls) != rep.Attempts {
		t.Fatalf("hook consulted %d times, %d attempts booked", hook.calls, rep.Attempts)
	}
	if rep.Retries == 0 || rep.ErrorReplies == 0 {
		t.Fatalf("window injected nothing: retries=%d errorReplies=%d", rep.Retries, rep.ErrorReplies)
	}
	if rep.Recovered == 0 {
		t.Fatal("no invocation recovered via retry")
	}
	if rep.Attempts != uint64(len(rep.Invocations))+rep.Retries {
		t.Fatalf("attempts %d != invocations %d + retries %d", rep.Attempts, len(rep.Invocations), rep.Retries)
	}
	var failed, recovered uint64
	for _, inv := range rep.Invocations {
		if inv.Failed {
			failed++
			if inv.Attempts != 4 {
				t.Fatalf("invocation %d failed after %d attempts, want MaxAttempts=4", inv.ID, inv.Attempts)
			}
		} else if inv.Attempts > 1 {
			recovered++
		}
		if inv.Done < inv.Arrive {
			t.Fatalf("invocation %d: done %d before arrive %d", inv.ID, inv.Done, inv.Arrive)
		}
	}
	if failed != rep.Failed || recovered != rep.Recovered {
		t.Fatalf("per-invocation failed/recovered %d/%d != counters %d/%d",
			failed, recovered, rep.Failed, rep.Recovered)
	}
}

// TestDroppedRequestTimesOut pins the lost-message path: a dropped
// request touches no instance and surfaces at the reply deadline; without
// a retry policy the invocation fails with the default deadline as its
// latency.
func TestDroppedRequestTimesOut(t *testing.T) {
	cfg := testConfig(t)
	cfg.RPS = 100
	cfg.Duration = 20_000_000
	hook := &timedFault{start: 0, end: ^uint64(0), f: faults.AttemptFault{DropRequest: true}}
	cfg.Chaos = hook
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ColdStarts != 0 || rep.WarmStarts != 0 {
		t.Fatalf("dropped requests still reached the pool: cold=%d warm=%d", rep.ColdStarts, rep.WarmStarts)
	}
	if rep.Timeouts != uint64(len(rep.Invocations)) || rep.Failed != uint64(len(rep.Invocations)) {
		t.Fatalf("timeouts=%d failed=%d, want all %d", rep.Timeouts, rep.Failed, len(rep.Invocations))
	}
	deadline := faults.DefaultRetry().Deadline
	for _, inv := range rep.Invocations {
		if !inv.Failed || inv.Latency != deadline {
			t.Fatalf("invocation %d: failed=%v latency=%d, want failure at default deadline %d",
				inv.ID, inv.Failed, inv.Latency, deadline)
		}
	}
}

// TestChaosDeterminism re-runs a chaos+retry config solo and through
// RunMany at different job counts, expecting byte-identical outputs.
func TestChaosDeterminism(t *testing.T) {
	mk := func() Config {
		cfg := testConfig(t)
		cfg.Retry = &faults.Retry{MaxAttempts: 3, Backoff: 1_000_000, Deadline: 10_000_000}
		cfg.Chaos = &timedFault{start: 5_000_000, end: 30_000_000, f: faults.AttemptFault{ErrorReply: true}}
		return cfg
	}
	a, errs := RunMany([]Config{mk(), mk()}, 1)
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	b, errs := RunMany([]Config{mk(), mk()}, 4)
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	solo, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Table() != b[i].Table() || a[i].StatsText != b[i].StatsText ||
			!bytes.Equal(a[i].TraceJSON, b[i].TraceJSON) {
			t.Fatalf("chaos point %d differs between -j 1 and -j 4", i)
		}
	}
	if solo.Table() != a[0].Table() || !bytes.Equal(solo.TraceJSON, a[0].TraceJSON) {
		t.Fatal("solo chaos run differs from swept run")
	}
}

// TestOnInstanceExposesBindings pins the fault-layer hook: every booted
// instance reports its guest→service bindings (engine-named channel
// pairs), and binding-free workloads report an empty set.
func TestOnInstanceExposesBindings(t *testing.T) {
	cfg := testConfig(t)
	cfg.Spec = specByName(t, "geo")
	cfg.RPS = 100
	cfg.Duration = 20_000_000
	got := map[int][]harness.ServiceBinding{}
	cfg.OnInstance = func(id int, bs []harness.ServiceBinding) {
		got[id] = append([]harness.ServiceBinding(nil), bs...)
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("OnInstance never called")
	}
	if uint64(len(got)) != rep.ColdStarts {
		t.Fatalf("OnInstance calls %d != cold starts %d", len(got), rep.ColdStarts)
	}
	for id, bs := range got {
		if len(bs) != 2 || bs[0].Name != "cassandra" || bs[1].Name != "memcached" {
			t.Fatalf("instance %d bindings = %+v", id, bs)
		}
	}

	cfg = testConfig(t)
	calls := 0
	cfg.OnInstance = func(id int, bs []harness.ServiceBinding) {
		calls++
		if len(bs) != 0 {
			t.Errorf("fibonacci-go instance %d has bindings %+v", id, bs)
		}
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("OnInstance never called for fibonacci-go")
	}
}
