package harness

import (
	"fmt"

	"svbench/internal/db"
	"svbench/internal/ir"
	"svbench/internal/langrt"
	"svbench/internal/rpc"
	"svbench/internal/vswarm"
)

// The experiment catalog: every benchmark of the thesis's evaluation as a
// harness Spec. Names follow the thesis's labels (fibonacci-go,
// aes-python, emailservice-P, geo, profile, ...).

func static(build func() *ir.Module) func(*Env) (*ir.Module, error) {
	return func(*Env) (*ir.Module, error) { return build(), nil }
}

// StandaloneSpecs returns the nine standalone functions (three functions
// across three runtimes, Table 3.2).
func StandaloneSpecs() []Spec {
	kinds := []struct {
		name  string
		build func() *ir.Module
		req   []byte
		check func(*rpc.Reader) error
	}{
		{"fibonacci", vswarm.Fibonacci, vswarm.FibRequest(vswarm.DefaultFibN), func(r *rpc.Reader) error {
			v, err := r.Int()
			if err != nil {
				return err
			}
			if v != 832040 {
				return fmt.Errorf("fib(30) = %d", v)
			}
			return nil
		}},
		{"aes", vswarm.AES, vswarm.AESRequest(vswarm.DefaultAESPayload), func(r *rpc.Reader) error {
			b, err := r.Bytes()
			if err != nil {
				return err
			}
			if len(b) != vswarm.DefaultAESPayload {
				return fmt.Errorf("cipher length %d", len(b))
			}
			return nil
		}},
		{"auth", vswarm.Auth, vswarm.AuthRequestMsg(3, true), func(r *rpc.Reader) error {
			ok, err := r.Int()
			if err != nil {
				return err
			}
			if ok != 1 {
				return fmt.Errorf("auth denied")
			}
			return nil
		}},
	}
	var specs []Spec
	for _, k := range kinds {
		for _, rt := range langrt.Runtimes {
			k := k
			specs = append(specs, Spec{
				Name:    fmt.Sprintf("%s-%s", k.name, rt),
				Runtime: rt,
				Build:   static(k.build),
				Request: func() []byte { return k.req },
				Check:   k.check,
			})
		}
	}
	return specs
}

// FibMod64 computes fib(n) mod 2^64, the workload's natural wrap — the
// expected response of a scaled fibonacci request.
func FibMod64(n int) uint64 {
	var x, y uint64 = 0, 1
	for i := 0; i < n; i++ {
		x, y = y, x+y
	}
	return x
}

// ScaledFibSpec returns a fibonacci Spec with an explicit iteration count.
// The default catalog entry runs fib(30) — a few thousand instructions per
// request, far below one SMARTS sampling interval. The sampling studies
// (samplebench, the figures sampling table) scale n up so each stats
// window spans many intervals, which is the regime sampled simulation is
// designed for.
func ScaledFibSpec(rt langrt.Runtime, n int) Spec {
	want := FibMod64(n)
	return Spec{
		Name:    fmt.Sprintf("fibonacci-%s-n%d", rt, n),
		Runtime: rt,
		Build:   static(vswarm.Fibonacci),
		Request: func() []byte { return vswarm.FibRequest(n) },
		Check: func(r *rpc.Reader) error {
			v, err := r.Int()
			if err != nil {
				return err
			}
			if v != want {
				return fmt.Errorf("fib(%d) = %d, want %d", n, v, want)
			}
			return nil
		},
	}
}

// ScaledAESSpec returns an aes Spec with an explicit payload size (the
// catalog default is 64 bytes). See ScaledFibSpec for why the sampling
// studies scale the request up.
func ScaledAESSpec(rt langrt.Runtime, payload int) Spec {
	return Spec{
		Name:    fmt.Sprintf("aes-%s-p%d", rt, payload),
		Runtime: rt,
		Build:   static(vswarm.AES),
		Request: func() []byte { return vswarm.AESRequest(payload) },
		Check: func(r *rpc.Reader) error {
			b, err := r.Bytes()
			if err != nil {
				return err
			}
			if len(b) != payload {
				return fmt.Errorf("cipher length %d, want %d", len(b), payload)
			}
			return nil
		},
	}
}

// ShopSpecs returns the six Online Shop functions (Table 3.3).
func ShopSpecs() []Spec {
	expectCount := func(min uint64) func(*rpc.Reader) error {
		return func(r *rpc.Reader) error {
			n, err := r.Int()
			if err != nil {
				return err
			}
			if n < min {
				return fmt.Errorf("count %d < %d", n, min)
			}
			return nil
		}
	}
	return []Spec{
		{
			Name: "productcatalog-go", Runtime: langrt.GoRT,
			Build:   static(vswarm.ProductCatalog),
			Request: func() []byte { return vswarm.CatalogRequest("camera") },
			Check:   expectCount(1),
		},
		{
			Name: "shipping-go", Runtime: langrt.GoRT,
			Build:   static(vswarm.Shipping),
			Request: func() []byte { return vswarm.ShippingRequest(94107, [][2]int{{0, 2}, {3, 1}, {7, 4}}) },
			Check: func(r *rpc.Reader) error {
				q, err := r.Int()
				if err != nil {
					return err
				}
				if q == 0 {
					return fmt.Errorf("zero quote")
				}
				return nil
			},
		},
		{
			Name: "recommendation-python", Runtime: langrt.PyRT,
			Build:   static(vswarm.Recommendation),
			Request: func() []byte { return vswarm.RecommendationRequest(4242, 3) },
			Check:   expectCount(3),
		},
		{
			Name: "emailservice-python", Runtime: langrt.PyRT,
			Build:   static(vswarm.Email),
			Request: func() []byte { return vswarm.EmailRequest("Ada", 31415) },
			Check: func(r *rpc.Reader) error {
				b, err := r.Bytes()
				if err != nil {
					return err
				}
				if len(b) < len("Hello Ada") {
					return fmt.Errorf("rendered %d bytes", len(b))
				}
				return nil
			},
		},
		{
			Name: "currency-nodejs", Runtime: langrt.NodeRT,
			Build:   static(vswarm.Currency),
			Request: func() []byte { return vswarm.CurrencyRequest(125_000_000, 0, 2) },
			Check: func(r *rpc.Reader) error {
				v, err := r.Int()
				if err != nil {
					return err
				}
				want := 125_000_000 * uint64(1000000) / 1310000
				if v != want {
					return fmt.Errorf("converted %d, want %d", v, want)
				}
				return nil
			},
		},
		{
			Name: "payment-nodejs", Runtime: langrt.NodeRT,
			Build:   static(vswarm.Payment),
			Request: func() []byte { return vswarm.PaymentRequest(vswarm.ValidCard(), 19_99) },
			Check: func(r *rpc.Reader) error {
				ok, err := r.Int()
				if err != nil {
					return err
				}
				if ok != 1 {
					return fmt.Errorf("valid card rejected")
				}
				return nil
			},
		},
	}
}

// HotelEngine selects the Hotel application's database backend.
type HotelEngine string

// Supported hotel backends: Cassandra is the ported configuration
// (§3.3.3); MongoDB is the original upstream dependency, runnable only in
// functional/QEMU mode in the thesis; MariaDB was the abandoned
// alternative.
const (
	EngineCassandra HotelEngine = "cassandra"
	EngineMongo     HotelEngine = "mongodb"
	EngineMariaDB   HotelEngine = "mariadb"
)

func newEngine(e HotelEngine) db.Store {
	switch e {
	case EngineMongo:
		return db.NewMongo()
	case EngineMariaDB:
		return db.NewMariaDB()
	default:
		return db.NewCassandra(db.CassandraConfig{})
	}
}

// HotelSpec builds the Spec for one hotel function on the given backend.
func HotelSpec(fnName string, engine HotelEngine) Spec {
	var entry *struct {
		Name      string
		Memcached bool
		Build     func(vswarm.HotelChans) *ir.Module
	}
	for i := range vswarm.HotelFuncs {
		if vswarm.HotelFuncs[i].Name == fnName {
			entry = &vswarm.HotelFuncs[i]
			break
		}
	}
	if entry == nil {
		panic("harness: unknown hotel function " + fnName)
	}
	var req []byte
	var check func(*rpc.Reader) error
	switch fnName {
	case "geo":
		lat, lon := vswarm.HotelGeo(0)
		req = vswarm.GeoRequest(lat+30, lon+40)
		check = func(r *rpc.Reader) error {
			n, err := r.Int()
			if err != nil {
				return err
			}
			if n != 5 {
				return fmt.Errorf("geo returned %d", n)
			}
			first, err := r.Int()
			if err != nil {
				return err
			}
			if first != vswarm.HotelID(0) {
				return fmt.Errorf("nearest hotel %d, want %d", first, vswarm.HotelID(0))
			}
			return nil
		}
	case "recommendation":
		lat, lon := vswarm.HotelGeo(3)
		req = vswarm.RecommendRequest(0, lat, lon)
		check = func(r *rpc.Reader) error {
			n, err := r.Int()
			if err != nil {
				return err
			}
			if n != 5 {
				return fmt.Errorf("recommendation returned %d", n)
			}
			return nil
		}
	case "user":
		req = vswarm.UserRequest(2, true)
		check = func(r *rpc.Reader) error {
			ok, err := r.Int()
			if err != nil {
				return err
			}
			if ok != 1 {
				return fmt.Errorf("login rejected")
			}
			return nil
		}
	case "rate":
		req = vswarm.RateRequest(20260801, 20260805, 4, 8, 12)
		check = func(r *rpc.Reader) error {
			n, err := r.Int()
			if err != nil {
				return err
			}
			if n != 3 {
				return fmt.Errorf("rate count %d", n)
			}
			for _, h := range []int{4, 8, 12} {
				b, err := r.Bytes()
				if err != nil {
					return err
				}
				if string(b) != string(vswarm.HotelRatePlans(h)) {
					return fmt.Errorf("rate plans mismatch for hotel %d", h)
				}
			}
			return nil
		}
	case "profile":
		req = vswarm.ProfileRequest(1, 5, 9)
		check = func(r *rpc.Reader) error {
			n, err := r.Int()
			if err != nil {
				return err
			}
			if n != 3 {
				return fmt.Errorf("profile count %d", n)
			}
			for _, h := range []int{1, 5, 9} {
				b, err := r.Bytes()
				if err != nil {
					return err
				}
				if string(b) != string(vswarm.HotelProfile(h)) {
					return fmt.Errorf("profile %d mismatch", h)
				}
			}
			return nil
		}
	case "reservation":
		req = vswarm.ReservationRequest(6, 20260801, 20260805, 1)
		check = func(r *rpc.Reader) error {
			ok, err := r.Int()
			if err != nil {
				return err
			}
			if ok != 1 {
				return fmt.Errorf("reservation rejected")
			}
			return nil
		}
	}
	build := entry.Build
	usesMC := entry.Memcached
	return Spec{
		Name:    fnName,
		Runtime: langrt.GoRT,
		Build: func(env *Env) (*ir.Module, error) {
			store := newEngine(engine)
			vswarm.SeedHotel(store)
			dbReq, dbResp := env.NewService(db.NewService(store))
			ch := vswarm.HotelChans{DBReq: dbReq, DBResp: dbResp}
			// Every hotel function gets a Memcached instance wired; the
			// non-caching trio simply never talks to it (Table 3.4).
			mc := db.NewMemcached(db.MemcachedConfig{})
			ch.MCReq, ch.MCResp = env.NewService(db.NewService(mc))
			_ = usesMC
			return build(ch), nil
		},
		Request: func() []byte { return req },
		Check:   check,
	}
}

// HotelSpecs returns all six hotel functions on the given backend.
func HotelSpecs(engine HotelEngine) []Spec {
	var out []Spec
	for _, f := range vswarm.HotelFuncs {
		out = append(out, HotelSpec(f.Name, engine))
	}
	return out
}

// AllSpecs returns the complete catalog: standalone, shop and hotel (on
// Cassandra).
func AllSpecs() []Spec {
	specs := StandaloneSpecs()
	specs = append(specs, ShopSpecs()...)
	specs = append(specs, HotelSpecs(EngineCassandra)...)
	return specs
}
