package db

import "container/list"

// MemcachedConfig sizes the cache.
type MemcachedConfig struct {
	CapacityBytes int
	Shards        int
}

// MemcachedStats counts cache events.
type MemcachedStats struct {
	Gets, Hits, Misses, Sets, Evictions uint64
}

type mcEntry struct {
	key string
	val []byte
}

type mcShard struct {
	items map[string]*list.Element
	lru   *list.List
	bytes int
	cap   int
}

// Memcached is the sharded LRU cache model backing the Hotel application's
// rate/profile/reservation functions.
type Memcached struct {
	shards []*mcShard
	Stats  MemcachedStats
}

// NewMemcached builds a cache (zero config takes 1 MiB over 4 shards).
func NewMemcached(cfg MemcachedConfig) *Memcached {
	if cfg.CapacityBytes == 0 {
		cfg.CapacityBytes = 1 << 20
	}
	if cfg.Shards == 0 {
		cfg.Shards = 4
	}
	m := &Memcached{}
	per := cfg.CapacityBytes / cfg.Shards
	for i := 0; i < cfg.Shards; i++ {
		m.shards = append(m.shards, &mcShard{
			items: map[string]*list.Element{},
			lru:   list.New(),
			cap:   per,
		})
	}
	return m
}

// Name identifies the engine.
func (m *Memcached) Name() string { return "memcached" }

// Boot returns the (fast) startup cost.
func (m *Memcached) Boot() uint64 { return 400_000 }

func (m *Memcached) shard(key string) *mcShard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return m.shards[h%uint64(len(m.shards))]
}

// Get implements Store.
func (m *Memcached) Get(table, key string) ([]byte, bool) {
	m.Stats.Gets++
	s := m.shard(table + key)
	if e, ok := s.items[table+"\x00"+key]; ok {
		s.lru.MoveToFront(e)
		m.Stats.Hits++
		return e.Value.(*mcEntry).val, true
	}
	m.Stats.Misses++
	return nil, false
}

// Put implements Store (memcached SET semantics with LRU eviction).
func (m *Memcached) Put(table, key string, val []byte) {
	m.Stats.Sets++
	s := m.shard(table + key)
	k := table + "\x00" + key
	if e, ok := s.items[k]; ok {
		old := e.Value.(*mcEntry)
		s.bytes += len(val) - len(old.val)
		old.val = append([]byte(nil), val...)
		s.lru.MoveToFront(e)
	} else {
		ent := &mcEntry{key: k, val: append([]byte(nil), val...)}
		s.items[k] = s.lru.PushFront(ent)
		s.bytes += len(k) + len(val)
	}
	for s.bytes > s.cap && s.lru.Len() > 0 {
		tail := s.lru.Back()
		ent := tail.Value.(*mcEntry)
		s.lru.Remove(tail)
		delete(s.items, ent.key)
		s.bytes -= len(ent.key) + len(ent.val)
		m.Stats.Evictions++
	}
}

// Scan is unsupported on memcached; it returns nothing.
func (m *Memcached) Scan(table, prefix string, limit int) []Pair { return nil }
