// Package isa defines the architecture-neutral contracts shared by the two
// instruction set implementations (internal/isa/riscv and internal/isa/cisc):
// the linked program image, the flat memory model, the dynamic instruction
// trace record consumed by the timing CPU models, and the functional core
// interface the kernel drives.
package isa

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrHalt is returned by Core.Step when the environment hook requested
// machine halt.
var ErrHalt = errors.New("isa: halt")

// ErrBlock is returned by Core.Step when the current process blocked
// inside an environment call.
var ErrBlock = errors.New("isa: blocked")

// Arch names an instruction set architecture.
type Arch string

// Supported architectures.
const (
	RV64   Arch = "rv64"   // RISC-V RV64IM
	CISC64 Arch = "cisc64" // the x86-class CISC model
)

// Class categorizes a dynamic instruction for the timing models.
type Class uint8

// Instruction classes.
const (
	ClassAlu Class = iota
	ClassMul
	ClassDiv
	ClassLoad
	ClassStore
	ClassBranch // conditional
	ClassJump   // unconditional direct
	ClassCall
	ClassRet
	ClassEcall
	ClassFence
	ClassIdle // pseudo-record: core idle waiting for a wake sequence
)

func (c Class) String() string {
	names := [...]string{"alu", "mul", "div", "load", "store", "branch", "jump",
		"call", "ret", "ecall", "fence", "idle"}
	if int(c) < len(names) {
		return names[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// NoDep marks an absent register operand in a trace record.
const NoDep uint8 = 255

// Trace flags.
const (
	FlagSend uint8 = 1 << iota // record produces wake sequence Seq
	FlagRecv                   // record must wait for wake sequence Seq
	FlagM5Reset
	FlagM5Dump
	// FlagVector marks an ecall that vectored into a kernel handler
	// (Seq carries the handler address): the handler's terminating ret
	// balances it, which keeps profiler shadow stacks honest.
	FlagVector
)

// TraceRec is one dynamic instruction as observed by the functional core,
// replayed by the timing models.
type TraceRec struct {
	PC       uint64
	Size     uint8
	Class    Class
	Taken    bool   // branch outcome
	Target   uint64 // branch/jump/call target (actual next PC when taken)
	MemAddr  uint64
	MemSize  uint8
	Src1     uint8 // architectural source registers (NoDep if none)
	Src2     uint8
	Dst      uint8 // architectural destination register (NoDep if none)
	Flags    uint8
	Seq      uint64 // IPC coupling sequence for FlagSend/FlagRecv
	MicroOps uint8  // decoded micro-operations (>=1); CISC may expand
}

// ClassCounts is a cumulative census of retired instructions by class,
// maintained only by the no-trace StepN lane. When the machine executes
// instructions without building TraceRecs (the setup phase and the sampled
// simulation's functional fast-forward), deltas of these counters replace
// the per-record accounting that the trace queue would otherwise provide.
type ClassCounts struct {
	MicroOps uint64
	Loads    uint64
	Stores   uint64
	Branches uint64 // conditional + unconditional + call + ret
}

// Since returns the census accumulated between prev and cc, where prev is
// an earlier reading of the same monotonic counter.
func (cc ClassCounts) Since(prev ClassCounts) ClassCounts {
	return ClassCounts{
		MicroOps: cc.MicroOps - prev.MicroOps,
		Loads:    cc.Loads - prev.Loads,
		Stores:   cc.Stores - prev.Stores,
		Branches: cc.Branches - prev.Branches,
	}
}

// Add accumulates o into cc.
func (cc *ClassCounts) Add(o ClassCounts) {
	cc.MicroOps += o.MicroOps
	cc.Loads += o.Loads
	cc.Stores += o.Stores
	cc.Branches += o.Branches
}

// AddRecs accumulates the census of recs into cc. The class mapping
// mirrors the sampler's per-record accounting exactly: every record
// contributes its micro-ops, and control transfers of all four flavors
// count as branches.
func (cc *ClassCounts) AddRecs(recs []TraceRec) {
	for i := range recs {
		r := &recs[i]
		cc.MicroOps += uint64(r.MicroOps)
		switch r.Class {
		case ClassLoad:
			cc.Loads++
		case ClassStore:
			cc.Stores++
		case ClassBranch, ClassJump, ClassCall, ClassRet:
			cc.Branches++
		}
	}
}

// Mem is the flat physical memory of a simulated machine. All functional
// cores of the machine share one Mem; the cache models only observe the
// trace, so functional accesses go straight to the backing slice.
type Mem struct {
	Data []byte
}

// NewMem allocates size bytes of zeroed memory.
func NewMem(size int) *Mem { return &Mem{Data: make([]byte, size)} }

// Load reads sz little-endian bytes at addr.
func (m *Mem) Load(addr uint64, sz uint8) uint64 {
	if addr+uint64(sz) > uint64(len(m.Data)) {
		panic(fmt.Sprintf("isa: load fault addr=%#x sz=%d", addr, sz))
	}
	var v uint64
	for i := uint8(0); i < sz; i++ {
		v |= uint64(m.Data[addr+uint64(i)]) << (8 * i)
	}
	return v
}

// Store writes the low sz bytes of val at addr, little-endian.
func (m *Mem) Store(addr uint64, sz uint8, val uint64) {
	if addr+uint64(sz) > uint64(len(m.Data)) {
		panic(fmt.Sprintf("isa: store fault addr=%#x sz=%d", addr, sz))
	}
	for i := uint8(0); i < sz; i++ {
		m.Data[addr+uint64(i)] = byte(val >> (8 * i))
	}
}

// loadFault/storeFault keep the fault panic (with its message format
// shared with Load/Store) out of the inlinable fast accessors below.
//
//go:noinline
func (m *Mem) loadFault(addr uint64, sz uint8) {
	panic(fmt.Sprintf("isa: load fault addr=%#x sz=%d", addr, sz))
}

//go:noinline
func (m *Mem) storeFault(addr uint64, sz uint8) {
	panic(fmt.Sprintf("isa: store fault addr=%#x sz=%d", addr, sz))
}

// Load8..Load64 / Store8..Store64 are size-specialized, inlinable
// equivalents of Load/Store for the block interpreters' hot paths, where
// the access width is fixed at translation time. Semantics (little-endian
// order, fault condition and panic text) match the generic versions
// exactly; only the per-byte loop and the non-inlinable panic are gone.

func (m *Mem) Load8(addr uint64) uint64 {
	if addr >= uint64(len(m.Data)) {
		m.loadFault(addr, 1)
	}
	return uint64(m.Data[addr])
}

func (m *Mem) Load16(addr uint64) uint64 {
	if addr+2 > uint64(len(m.Data)) {
		m.loadFault(addr, 2)
	}
	return uint64(binary.LittleEndian.Uint16(m.Data[addr:]))
}

func (m *Mem) Load32(addr uint64) uint64 {
	if addr+4 > uint64(len(m.Data)) {
		m.loadFault(addr, 4)
	}
	return uint64(binary.LittleEndian.Uint32(m.Data[addr:]))
}

func (m *Mem) Load64(addr uint64) uint64 {
	if addr+8 > uint64(len(m.Data)) {
		m.loadFault(addr, 8)
	}
	return binary.LittleEndian.Uint64(m.Data[addr:])
}

func (m *Mem) Store8(addr uint64, val uint64) {
	if addr >= uint64(len(m.Data)) {
		m.storeFault(addr, 1)
	}
	m.Data[addr] = byte(val)
}

func (m *Mem) Store16(addr uint64, val uint64) {
	if addr+2 > uint64(len(m.Data)) {
		m.storeFault(addr, 2)
	}
	binary.LittleEndian.PutUint16(m.Data[addr:], uint16(val))
}

func (m *Mem) Store32(addr uint64, val uint64) {
	if addr+4 > uint64(len(m.Data)) {
		m.storeFault(addr, 4)
	}
	binary.LittleEndian.PutUint32(m.Data[addr:], uint32(val))
}

func (m *Mem) Store64(addr uint64, val uint64) {
	if addr+8 > uint64(len(m.Data)) {
		m.storeFault(addr, 8)
	}
	binary.LittleEndian.PutUint64(m.Data[addr:], val)
}

// Bytes returns the slice [addr, addr+n).
func (m *Mem) Bytes(addr, n uint64) []byte {
	if addr+n > uint64(len(m.Data)) {
		panic(fmt.Sprintf("isa: bytes fault addr=%#x n=%d", addr, n))
	}
	return m.Data[addr : addr+n]
}

// SignExtend sign-extends the low sz bytes of v.
func SignExtend(v uint64, sz uint8) uint64 {
	switch sz {
	case 1:
		return uint64(int64(int8(v)))
	case 2:
		return uint64(int64(int16(v)))
	case 4:
		return uint64(int64(int32(v)))
	}
	return v
}

// Program is a linked machine-code image for one architecture.
type Program struct {
	Arch     Arch
	TextBase uint64
	Text     []byte
	DataBase uint64
	Data     []byte
	Entry    uint64            // address of the entry function
	Syms     map[string]uint64 // function and global symbol addresses
	FuncEnd  map[string]uint64 // end address of each function (diagnostics)
}

// SymAddr returns the address of a symbol, panicking if absent.
func (p *Program) SymAddr(name string) uint64 {
	a, ok := p.Syms[name]
	if !ok {
		panic("isa: unknown symbol " + name)
	}
	return a
}

// LoadInto copies the program image into memory.
func (p *Program) LoadInto(m *Mem) {
	copy(m.Bytes(p.TextBase, uint64(len(p.Text))), p.Text)
	copy(m.Bytes(p.DataBase, uint64(len(p.Data))), p.Data)
}

// Size returns the total image footprint in bytes.
func (p *Program) Size() int { return len(p.Text) + len(p.Data) }

// EcallResult tells a functional core how to proceed after the environment
// hook handled an ECALL.
type EcallResult int

// Ecall dispositions.
const (
	// EcallHandled: the hook performed the call; execution continues at
	// the next instruction with the return value already set.
	EcallHandled EcallResult = iota
	// EcallVector: the hook redirected the core into handler code (the
	// kernel's syscall path); the core's PC was changed by CallInto.
	EcallVector
	// EcallBlock: the current process blocked; the machine must stop
	// stepping this core until it is woken.
	EcallBlock
	// EcallHalt: the machine should stop simulating entirely.
	EcallHalt
)

// EcallHook is invoked by a functional core when it executes an ECALL
// instruction. The hook inspects/updates core state through the Core
// interface.
type EcallHook func(c Core) EcallResult

// Core is the functional (architectural) state of one hardware thread.
// Each simulated process owns a Core; the machine multiplexes them onto
// simulated CPUs.
type Core interface {
	// Step executes one instruction, appending its trace record to out,
	// and returns the possibly-grown slice.
	Step(out []TraceRec) ([]TraceRec, error)
	// StepN executes up to max instructions through the core's translated
	// basic-block cache, returning how many retired and the possibly-grown
	// trace slice. When out is nil the core takes a no-trace fast lane and
	// builds no TraceRec at all (the setup-phase path); callers that want
	// records must pass a non-nil (possibly empty) slice. StepN returns
	// early — possibly before max — at the block boundary that follows any
	// environment call, so the driver can observe hook-side effects
	// (checkpoint requests, kernel panics) with the same per-ecall
	// granularity as the single-step path. Architectural effects, retired
	// counts and trace records are bit-identical to max successive Step
	// calls.
	StepN(max int, out []TraceRec) (int, []TraceRec, error)
	PC() uint64
	SetPC(pc uint64)
	// Arg returns the i-th ecall argument register (0-based).
	Arg(i int) uint64
	// SetArg sets the i-th ecall argument register.
	SetArg(i int, v uint64)
	// EcallNum returns the pending ecall number.
	EcallNum() uint64
	// SetRet sets the ecall/function return register.
	SetRet(v uint64)
	// CallInto redirects execution into a handler at addr using the
	// architecture's calling convention, arranging for the handler's
	// return to resume at the instruction after the current ecall.
	CallInto(addr uint64)
	// Annotate sets trace flags and a coupling sequence on the
	// instruction currently executing; only valid inside an EcallHook.
	Annotate(flags uint8, seq uint64)
	// StackPtr returns the current stack pointer.
	StackPtr() uint64
	// SetStackPtr sets the stack pointer.
	SetStackPtr(v uint64)
	// Snapshot serializes architectural state (for checkpoints).
	Snapshot() []uint64
	// Restore loads architectural state saved by Snapshot.
	Restore([]uint64)
	// InstrCount reports instructions executed by this core state.
	InstrCount() uint64
	// Classes reports the cumulative per-class census of instructions
	// retired through the no-trace StepN lane (see ClassCounts). Callers
	// that interleave traced and untraced execution must difference the
	// counter around untraced stretches rather than read it absolutely.
	Classes() ClassCounts
	Arch() Arch
}

// ChainStats is a snapshot of a decode cache's superblock-chaining
// telemetry. Hits are block-to-block transitions served by an inline link
// slot; Misses are transitions (and StepN entries) that resolved through
// the entry-PC map; Breaks counts links severed by block invalidation.
// Blocks counts distinct translated blocks entered since the cache's last
// chain reset — a restore-relative "hot code footprint", deliberately
// independent of how warm the underlying block cache is so that memoized
// and freshly-booted machines report identical values.
type ChainStats struct {
	Blocks uint64
	Hits   uint64
	Misses uint64
	Breaks uint64
}

// MeanChainLen reports the average number of blocks executed per map
// lookup: (Hits+Misses)/Misses. With no chaining it is 1; longer is
// better.
func (s ChainStats) MeanChainLen() float64 {
	if s.Misses == 0 {
		return 0
	}
	return float64(s.Hits+s.Misses) / float64(s.Misses)
}
