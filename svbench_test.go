package svbench_test

import (
	"fmt"
	"testing"

	"svbench"
	"svbench/internal/rpc"
)

func TestPublicAPISmoke(t *testing.T) {
	specs := svbench.AllSpecs()
	if len(specs) != 9+6+6 {
		t.Fatalf("catalog has %d specs, want 21", len(specs))
	}
	res, err := svbench.RunFunction(svbench.RV64, specs[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Cold.Cycles <= res.Warm.Cycles {
		t.Fatal("cold must exceed warm")
	}
	// A custom configuration through the public surface.
	cfg := svbench.DefaultConfig(svbench.CISC64)
	cfg.O3.ROBSize = 64
	res2, err := svbench.RunFunctionWith(cfg, specs[0])
	if err != nil {
		t.Fatal(err)
	}
	if res2.Arch != svbench.CISC64 {
		t.Fatal("arch not propagated")
	}
}

func TestPublicAPIEmulation(t *testing.T) {
	lats, err := svbench.RunEmulated(svbench.RV64, svbench.HotelSpec("user", svbench.EngineMongo), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(lats) != 3 {
		t.Fatalf("%d latencies", len(lats))
	}
}

func ExampleRunFunction() {
	res, err := svbench.RunFunction(svbench.RV64, svbench.StandaloneSpecs()[0])
	if err != nil {
		panic(err)
	}
	r := rpc.NewReader(res.Response)
	v, _ := r.Int()
	fmt.Println("fib(30) =", v)
	fmt.Println("cold slower than warm:", res.Cold.Cycles > res.Warm.Cycles)
	// Output:
	// fib(30) = 832040
	// cold slower than warm: true
}
