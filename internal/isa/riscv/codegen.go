package riscv

import (
	"encoding/binary"
	"fmt"

	"svbench/internal/ir"
	"svbench/internal/isa"
)

// The code generator lowers portable IR to RV64IM machine code. It uses a
// straightforward stack-slot discipline — every virtual register lives in
// the frame; each IR operation loads its operands into temporaries,
// computes, and stores the result — which matches what a non-optimizing
// toolchain emits and keeps both ISA backends structurally comparable.
//
// Frame layout (sp-relative, grows down):
//
//	0          saved ra
//	8 + 8*i    virtual register i
//	8 + 8*n..  frame-local buffers
//
// Temporaries: t0/t1 operands, t2 address scratch, t4/t5 li64 + reloc
// scratch. a0..a7 carry arguments and results.

type relKind uint8

const (
	relCall relKind = iota // auipc t4 / jalr ra pair, pc-relative
	relAbs                 // lui/addi pair, absolute symbol address
)

type reloc struct {
	idx  int // index of the first instruction of the pair
	kind relKind
	sym  string
	add  int64
}

type fnCode struct {
	name   string
	insts  []Inst
	relocs []reloc
}

type codegen struct {
	mod *ir.Module
	fns []*fnCode

	// per-function state
	cur     *fnCode
	fn      *ir.Function
	bufBase int64 // frame offset where buffers start
	frame   int64
	// branch fixups: instruction index -> IR target instruction
	brFix map[int]int
	irIdx []int // IR instruction index -> first machine instruction index
}

// Compile lowers every function in the module and links the result at
// textBase, placing globals after the text.
func Compile(m *ir.Module, textBase uint64) (*isa.Program, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	cg := &codegen{mod: m}
	for _, f := range m.Funcs {
		if err := cg.emitFunc(f); err != nil {
			return nil, fmt.Errorf("riscv: compile %s: %w", f.Name, err)
		}
	}
	return cg.link(textBase)
}

func (cg *codegen) emit(in Inst) int {
	cg.cur.insts = append(cg.cur.insts, in)
	return len(cg.cur.insts) - 1
}

func slotOff(r ir.Reg) int64 { return 8 + 8*int64(r) }

// loadSlot loads virtual register r into machine register t.
func (cg *codegen) loadSlot(t uint8, r ir.Reg) {
	off := slotOff(r)
	if immFits(off, 12) {
		cg.emit(Inst{Kind: KindLD, Rd: t, Rs1: RegSP, Imm: off})
		return
	}
	cg.li(RegT5, off)
	cg.emit(Inst{Kind: KindADD, Rd: t, Rs1: RegSP, Rs2: RegT5})
	cg.emit(Inst{Kind: KindLD, Rd: t, Rs1: t})
}

// storeSlot stores machine register t into virtual register r.
func (cg *codegen) storeSlot(r ir.Reg, t uint8) {
	off := slotOff(r)
	if immFits(off, 12) {
		cg.emit(Inst{Kind: KindSD, Rs1: RegSP, Rs2: t, Imm: off})
		return
	}
	cg.li(RegT5, off)
	cg.emit(Inst{Kind: KindADD, Rd: RegT5, Rs1: RegSP, Rs2: RegT5})
	cg.emit(Inst{Kind: KindSD, Rs1: RegT5, Rs2: t})
}

// li materializes v into register rd (1–8 instructions).
func (cg *codegen) li(rd uint8, v int64) {
	if immFits(v, 12) {
		cg.emit(Inst{Kind: KindADDI, Rd: rd, Rs1: RegZero, Imm: v})
		return
	}
	if v == int64(int32(v)) {
		hi := int64(int32(uint32(v)+0x800)) >> 12
		lo := int64(int32(uint32(v) - uint32(hi)<<12))
		cg.emit(Inst{Kind: KindLUI, Rd: rd, Imm: hi & 0xFFFFF})
		if lo != 0 {
			// addiw wraps at 32 bits and sign-extends, covering values
			// near the 2^31 boundary that lui+addi cannot reach.
			cg.emit(Inst{Kind: KindADDIW, Rd: rd, Rs1: rd, Imm: lo})
		}
		return
	}
	// 64-bit: v = hi<<32 + signext(lo32)
	lo := int64(int32(v))
	hi := (v - lo) >> 32
	cg.li(rd, hi)
	cg.emit(Inst{Kind: KindSLLI, Rd: rd, Rs1: rd, Imm: 32})
	if lo != 0 {
		cg.li(RegT6, lo)
		cg.emit(Inst{Kind: KindADD, Rd: rd, Rs1: rd, Rs2: RegT6})
	}
}

func (cg *codegen) emitFunc(f *ir.Function) error {
	if f.NRegs > 4000 {
		return fmt.Errorf("too many virtual registers (%d)", f.NRegs)
	}
	cg.cur = &fnCode{name: f.Name}
	cg.fn = f
	cg.brFix = map[int]int{}
	cg.irIdx = make([]int, len(f.Code)+1)
	cg.bufBase = 8 + 8*int64(f.NRegs)
	cg.frame = (cg.bufBase + f.BufArea() + 15) &^ 15

	// Prologue.
	if immFits(-cg.frame, 12) {
		cg.emit(Inst{Kind: KindADDI, Rd: RegSP, Rs1: RegSP, Imm: -cg.frame})
	} else {
		cg.li(RegT5, -cg.frame)
		cg.emit(Inst{Kind: KindADD, Rd: RegSP, Rs1: RegSP, Rs2: RegT5})
	}
	cg.emit(Inst{Kind: KindSD, Rs1: RegSP, Rs2: RegRA, Imm: 0})
	for i := 0; i < f.NParams && i < 8; i++ {
		cg.storeSlot(ir.Reg(i), uint8(RegA0+i))
	}

	for i := range f.Code {
		cg.irIdx[i] = len(cg.cur.insts)
		if err := cg.emitInstr(&f.Code[i]); err != nil {
			return fmt.Errorf("instr %d: %w", i, err)
		}
	}
	cg.irIdx[len(f.Code)] = len(cg.cur.insts)

	// Fix intra-function branches (all are JALs whose Imm is the IR
	// target index at this point).
	for idx, irTgt := range cg.brFix {
		delta := int64(cg.irIdx[irTgt]-idx) * 4
		if !immFits(delta, 21) {
			return fmt.Errorf("jal displacement %d out of range", delta)
		}
		cg.cur.insts[idx].Imm = delta
	}
	cg.fns = append(cg.fns, cg.cur)
	return nil
}

// epilogue restores ra/sp and returns.
func (cg *codegen) epilogue() {
	cg.emit(Inst{Kind: KindLD, Rd: RegRA, Rs1: RegSP, Imm: 0})
	if immFits(cg.frame, 12) {
		cg.emit(Inst{Kind: KindADDI, Rd: RegSP, Rs1: RegSP, Imm: cg.frame})
	} else {
		cg.li(RegT5, cg.frame)
		cg.emit(Inst{Kind: KindADD, Rd: RegSP, Rs1: RegSP, Rs2: RegT5})
	}
	cg.emit(Inst{Kind: KindJALR, Rd: RegZero, Rs1: RegRA})
}

var binKind = map[ir.Op]Kind{
	ir.OpAdd: KindADD, ir.OpSub: KindSUB, ir.OpMul: KindMUL,
	ir.OpDiv: KindDIV, ir.OpRem: KindREM, ir.OpDivU: KindDIVU, ir.OpRemU: KindREMU,
	ir.OpAnd: KindAND, ir.OpOr: KindOR, ir.OpXor: KindXOR,
	ir.OpShl: KindSLL, ir.OpShr: KindSRL, ir.OpSra: KindSRA,
}

func loadKindFor(sz uint8, uns bool) Kind {
	switch sz {
	case 1:
		if uns {
			return KindLBU
		}
		return KindLB
	case 2:
		if uns {
			return KindLHU
		}
		return KindLH
	case 4:
		if uns {
			return KindLWU
		}
		return KindLW
	default:
		return KindLD
	}
}

func storeKindFor(sz uint8) Kind {
	switch sz {
	case 1:
		return KindSB
	case 2:
		return KindSH
	case 4:
		return KindSW
	default:
		return KindSD
	}
}

func (cg *codegen) emitInstr(in *ir.Instr) error {
	switch in.Op {
	case ir.OpNop:
	case ir.OpFence:
		cg.emit(Inst{Kind: KindFENCE})
	case ir.OpConst:
		cg.li(RegT0, in.Imm)
		cg.storeSlot(in.Dst, RegT0)
	case ir.OpMov:
		cg.loadSlot(RegT0, in.A)
		cg.storeSlot(in.Dst, RegT0)
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem, ir.OpDivU, ir.OpRemU,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr, ir.OpSra:
		cg.loadSlot(RegT0, in.A)
		cg.loadSlot(RegT1, in.B)
		cg.emit(Inst{Kind: binKind[in.Op], Rd: RegT0, Rs1: RegT0, Rs2: RegT1})
		cg.storeSlot(in.Dst, RegT0)
	case ir.OpAddI, ir.OpAndI, ir.OpOrI, ir.OpXorI:
		cg.loadSlot(RegT0, in.A)
		k := map[ir.Op]Kind{ir.OpAddI: KindADDI, ir.OpAndI: KindANDI,
			ir.OpOrI: KindORI, ir.OpXorI: KindXORI}[in.Op]
		if immFits(in.Imm, 12) {
			cg.emit(Inst{Kind: k, Rd: RegT0, Rs1: RegT0, Imm: in.Imm})
		} else {
			cg.li(RegT1, in.Imm)
			rk := map[ir.Op]Kind{ir.OpAddI: KindADD, ir.OpAndI: KindAND,
				ir.OpOrI: KindOR, ir.OpXorI: KindXOR}[in.Op]
			cg.emit(Inst{Kind: rk, Rd: RegT0, Rs1: RegT0, Rs2: RegT1})
		}
		cg.storeSlot(in.Dst, RegT0)
	case ir.OpMulI:
		cg.loadSlot(RegT0, in.A)
		cg.li(RegT1, in.Imm)
		cg.emit(Inst{Kind: KindMUL, Rd: RegT0, Rs1: RegT0, Rs2: RegT1})
		cg.storeSlot(in.Dst, RegT0)
	case ir.OpShlI, ir.OpShrI, ir.OpSraI:
		cg.loadSlot(RegT0, in.A)
		k := map[ir.Op]Kind{ir.OpShlI: KindSLLI, ir.OpShrI: KindSRLI, ir.OpSraI: KindSRAI}[in.Op]
		cg.emit(Inst{Kind: k, Rd: RegT0, Rs1: RegT0, Imm: in.Imm & 63})
		cg.storeSlot(in.Dst, RegT0)
	case ir.OpSet:
		cg.loadSlot(RegT0, in.A)
		cg.loadSlot(RegT1, in.B)
		cg.emitSet(in.Cond)
		cg.storeSlot(in.Dst, RegT0)
	case ir.OpLoad:
		cg.loadSlot(RegT0, in.A)
		off := in.Imm
		if !immFits(off, 12) {
			cg.li(RegT2, off)
			cg.emit(Inst{Kind: KindADD, Rd: RegT0, Rs1: RegT0, Rs2: RegT2})
			off = 0
		}
		cg.emit(Inst{Kind: loadKindFor(in.Sz, in.Uns), Rd: RegT0, Rs1: RegT0, Imm: off})
		cg.storeSlot(in.Dst, RegT0)
	case ir.OpStore:
		cg.loadSlot(RegT0, in.A)
		cg.loadSlot(RegT1, in.B)
		off := in.Imm
		if !immFits(off, 12) {
			cg.li(RegT2, off)
			cg.emit(Inst{Kind: KindADD, Rd: RegT0, Rs1: RegT0, Rs2: RegT2})
			off = 0
		}
		cg.emit(Inst{Kind: storeKindFor(in.Sz), Rs1: RegT0, Rs2: RegT1, Imm: off})
	case ir.OpBr:
		cg.loadSlot(RegT0, in.A)
		cg.loadSlot(RegT1, in.B)
		cg.emitBranch(in.Cond, in.Tgt)
	case ir.OpBrI:
		cg.loadSlot(RegT0, in.A)
		cg.li(RegT1, in.Imm)
		cg.emitBranch(in.Cond, in.Tgt)
	case ir.OpJmp:
		idx := cg.emit(Inst{Kind: KindJAL, Rd: RegZero})
		cg.brFix[idx] = in.Tgt
	case ir.OpCall:
		if len(in.Args) > 8 {
			return fmt.Errorf("too many args")
		}
		for i, a := range in.Args {
			cg.loadSlot(uint8(RegA0+i), a)
		}
		idx := cg.emit(Inst{Kind: KindAUIPC, Rd: RegT4})
		cg.emit(Inst{Kind: KindJALR, Rd: RegRA, Rs1: RegT4})
		cg.cur.relocs = append(cg.cur.relocs, reloc{idx: idx, kind: relCall, sym: in.Sym})
		if in.Dst != ir.NoReg {
			cg.storeSlot(in.Dst, RegA0)
		}
	case ir.OpRet:
		if in.A != ir.NoReg {
			cg.loadSlot(RegA0, in.A)
		} else {
			cg.emit(Inst{Kind: KindADDI, Rd: RegA0, Rs1: RegZero})
		}
		cg.epilogue()
	case ir.OpEcall:
		if len(in.Args) > 6 {
			return fmt.Errorf("too many ecall args")
		}
		for i, a := range in.Args {
			cg.loadSlot(uint8(RegA0+i), a)
		}
		cg.li(RegA7, in.Imm)
		cg.emit(Inst{Kind: KindECALL})
		if in.Dst != ir.NoReg {
			cg.storeSlot(in.Dst, RegA0)
		}
	case ir.OpGlobal:
		idx := cg.emit(Inst{Kind: KindLUI, Rd: RegT0})
		cg.emit(Inst{Kind: KindADDI, Rd: RegT0, Rs1: RegT0})
		cg.cur.relocs = append(cg.cur.relocs, reloc{idx: idx, kind: relAbs, sym: in.Sym, add: in.Imm})
		cg.storeSlot(in.Dst, RegT0)
	case ir.OpFrame:
		off, _ := cg.fn.BufOffset(in.Sym)
		total := cg.bufBase + off + in.Imm
		if immFits(total, 12) {
			cg.emit(Inst{Kind: KindADDI, Rd: RegT0, Rs1: RegSP, Imm: total})
		} else {
			cg.li(RegT0, total)
			cg.emit(Inst{Kind: KindADD, Rd: RegT0, Rs1: RegSP, Rs2: RegT0})
		}
		cg.storeSlot(in.Dst, RegT0)
	default:
		return fmt.Errorf("unhandled op %d", in.Op)
	}
	return nil
}

// emitSet leaves (t0 cond t1) as 0/1 in t0.
func (cg *codegen) emitSet(c ir.Cond) {
	switch c {
	case ir.Lt:
		cg.emit(Inst{Kind: KindSLT, Rd: RegT0, Rs1: RegT0, Rs2: RegT1})
	case ir.Ltu:
		cg.emit(Inst{Kind: KindSLTU, Rd: RegT0, Rs1: RegT0, Rs2: RegT1})
	case ir.Gt:
		cg.emit(Inst{Kind: KindSLT, Rd: RegT0, Rs1: RegT1, Rs2: RegT0})
	case ir.Ge:
		cg.emit(Inst{Kind: KindSLT, Rd: RegT0, Rs1: RegT0, Rs2: RegT1})
		cg.emit(Inst{Kind: KindXORI, Rd: RegT0, Rs1: RegT0, Imm: 1})
	case ir.Le:
		cg.emit(Inst{Kind: KindSLT, Rd: RegT0, Rs1: RegT1, Rs2: RegT0})
		cg.emit(Inst{Kind: KindXORI, Rd: RegT0, Rs1: RegT0, Imm: 1})
	case ir.Geu:
		cg.emit(Inst{Kind: KindSLTU, Rd: RegT0, Rs1: RegT0, Rs2: RegT1})
		cg.emit(Inst{Kind: KindXORI, Rd: RegT0, Rs1: RegT0, Imm: 1})
	case ir.Eq:
		cg.emit(Inst{Kind: KindSUB, Rd: RegT0, Rs1: RegT0, Rs2: RegT1})
		cg.emit(Inst{Kind: KindSLTIU, Rd: RegT0, Rs1: RegT0, Imm: 1})
	case ir.Ne:
		cg.emit(Inst{Kind: KindSUB, Rd: RegT0, Rs1: RegT0, Rs2: RegT1})
		cg.emit(Inst{Kind: KindSLTU, Rd: RegT0, Rs1: RegZero, Rs2: RegT0})
	}
}

// emitBranch compares t0/t1 and jumps to IR target tgt when cond holds,
// lowered as an inverted short branch over an unbounded jal.
func (cg *codegen) emitBranch(c ir.Cond, tgt int) {
	var k Kind
	swap := false
	switch c.Negate() {
	case ir.Eq:
		k = KindBEQ
	case ir.Ne:
		k = KindBNE
	case ir.Lt:
		k = KindBLT
	case ir.Ge:
		k = KindBGE
	case ir.Ltu:
		k = KindBLTU
	case ir.Geu:
		k = KindBGEU
	case ir.Le: // t0 <= t1  ==  t1 >= t0
		k, swap = KindBGE, true
	case ir.Gt: // t0 > t1  ==  t1 < t0
		k, swap = KindBLT, true
	}
	rs1, rs2 := uint8(RegT0), uint8(RegT1)
	if swap {
		rs1, rs2 = rs2, rs1
	}
	cg.emit(Inst{Kind: k, Rs1: rs1, Rs2: rs2, Imm: 8})
	idx := cg.emit(Inst{Kind: KindJAL, Rd: RegZero})
	cg.brFix[idx] = tgt
}

// link lays out functions and globals and patches relocations.
func (cg *codegen) link(textBase uint64) (*isa.Program, error) {
	p := &isa.Program{
		Arch:     isa.RV64,
		TextBase: textBase,
		Syms:     map[string]uint64{},
		FuncEnd:  map[string]uint64{},
	}
	addr := textBase
	starts := make([]uint64, len(cg.fns))
	for i, f := range cg.fns {
		starts[i] = addr
		p.Syms[f.name] = addr
		addr += uint64(len(f.insts)) * 4
		p.FuncEnd[f.name] = addr
	}
	// Globals after text, 64-byte aligned.
	dataBase := (addr + 63) &^ 63
	p.DataBase = dataBase
	gaddr := dataBase
	for _, g := range cg.mod.Globals {
		al := uint64(g.Align)
		if al > 1 {
			gaddr = (gaddr + al - 1) / al * al
		}
		p.Syms[g.Name] = gaddr
		pad := int(gaddr - dataBase - uint64(len(p.Data)))
		p.Data = append(p.Data, make([]byte, pad)...)
		p.Data = append(p.Data, g.Data...)
		gaddr += uint64(len(g.Data))
	}

	// Patch relocations and encode.
	for i, f := range cg.fns {
		base := starts[i]
		for _, rl := range f.relocs {
			tgt, ok := p.Syms[rl.sym]
			if !ok {
				return nil, fmt.Errorf("riscv: undefined symbol %q", rl.sym)
			}
			switch rl.kind {
			case relCall:
				pc := base + uint64(rl.idx)*4
				delta := int64(tgt) - int64(pc)
				hi := (delta + 0x800) >> 12
				lo := delta - hi<<12
				f.insts[rl.idx].Imm = hi & 0xFFFFF
				f.insts[rl.idx+1].Imm = lo
			case relAbs:
				v := int64(tgt) + rl.add
				if v != int64(int32(v)) {
					return nil, fmt.Errorf("riscv: symbol %q address %#x too large", rl.sym, v)
				}
				hi := (v + 0x800) >> 12
				lo := v - hi<<12
				f.insts[rl.idx].Imm = hi & 0xFFFFF
				f.insts[rl.idx+1].Imm = lo
			}
		}
		for _, in := range f.insts {
			var w [4]byte
			binary.LittleEndian.PutUint32(w[:], in.Encode())
			p.Text = append(p.Text, w[:]...)
		}
	}
	if len(cg.fns) > 0 {
		p.Entry = starts[0]
	}
	return p, nil
}
