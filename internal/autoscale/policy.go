package autoscale

import (
	"fmt"
	"sort"
)

// Observation is one reconcile tick's view of the cluster — everything a
// policy may base its decision on. All fields are pure functions of the
// run's event history, so identical configs observe identical sequences.
type Observation struct {
	// Now is the tick instant (virtual ns on the load clock).
	Now uint64
	// Ready counts instances able to serve (idle + busy).
	Ready int
	// Starting counts instances still paying their cold-start boot.
	Starting int
	// Busy counts instances currently serving an invocation.
	Busy int
	// Queued counts invocations waiting for capacity (FIFO backlog).
	Queued int
}

// Demand is the observed concurrency: in-flight plus queued work.
func (o Observation) Demand() int { return o.Busy + o.Queued }

// Policy names one autoscaling strategy and builds its per-run state.
// Policies must be pure factories: every New yields fresh state, so a
// policy value can be shared across the sweep's points.
type Policy interface {
	Name() string
	New() Scaler
}

// Scaler is one run's autoscaler: consulted once per reconcile tick, in
// virtual-time order, it returns the instance count the engine should
// reconcile the cluster toward. Implementations may keep state (panic
// mode, windows) but must derive it only from the observations seen.
type Scaler interface {
	Desired(obs Observation) int
}

// Panicker is implemented by scalers with a panic mode. The engine
// watches transitions across ticks to book panic-entry/exit counters and
// trace events.
type Panicker interface {
	InPanic() bool
}

// DefaultTarget is the per-instance concurrency target of the shipped
// policies: one in-flight invocation plus one queued behind it.
const DefaultTarget = 2

// DefaultPanicFactor is panic mode's entry threshold multiplier: panic
// begins when observed concurrency reaches twice the stable capacity
// (Target × Ready) — "observed concurrency doubles the target".
const DefaultPanicFactor = 2.0

// DefaultPanicExitTicks is the hysteresis window: panic mode ends only
// after this many consecutive calm observations.
const DefaultPanicExitTicks = 4

// ceilDiv is ceil(a/b) for positive b.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Fixed provisions a constant fleet and never scales — the
// no-autoscaler baseline every policy is judged against. N is the
// instance count; 0 means the whole cluster capacity.
type Fixed struct {
	N int
}

// Name labels the policy in reports.
func (p Fixed) Name() string {
	if p.N <= 0 {
		return "fixed-cap"
	}
	return fmt.Sprintf("fixed-%d", p.N)
}

// New builds the run's scaler.
func (p Fixed) New() Scaler { return fixedScaler{n: p.N} }

type fixedScaler struct{ n int }

func (s fixedScaler) Desired(obs Observation) int {
	if s.n <= 0 {
		// The engine clamps to cluster capacity, so "all of it".
		return int(^uint(0) >> 1)
	}
	return s.n
}

// Concurrency is the Knative-style stable-mode autoscaler: desired =
// ceil(demand / Target), floored at Min. Min 0 allows scale-to-zero —
// an idle cluster sheds every instance once keep-alive leases lapse,
// and the next arrival pays the full cold-start amplification.
type Concurrency struct {
	// Label overrides the report name ("" derives one from the fields).
	Label string
	// Target is the per-instance concurrency target (0 = DefaultTarget).
	Target int
	// Min floors the desired count (0 allows scale to zero).
	Min int
}

// Name labels the policy in reports.
func (p Concurrency) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return fmt.Sprintf("concurrency-t%d-min%d", p.target(), p.Min)
}

func (p Concurrency) target() int {
	if p.Target <= 0 {
		return DefaultTarget
	}
	return p.Target
}

// New builds the run's scaler.
func (p Concurrency) New() Scaler { return concScaler{p: p} }

type concScaler struct{ p Concurrency }

func (s concScaler) Desired(obs Observation) int {
	d := ceilDiv(obs.Demand(), s.p.target())
	if d < s.p.Min {
		d = s.p.Min
	}
	return d
}

// Panic wraps the Concurrency core with Knative-style panic mode: when
// observed concurrency reaches Factor times the stable capacity
// (Target × Ready), the scaler jumps straight to one instance per
// in-flight invocation and refuses to scale down until demand has
// stayed calm for ExitTicks consecutive observations (hysteresis, so a
// sawtooth load cannot flap the fleet).
type Panic struct {
	// Label overrides the report name ("" derives one from the fields).
	Label string
	// Target is the per-instance concurrency target (0 = DefaultTarget).
	Target int
	// Min floors the desired count (0 allows scale to zero).
	Min int
	// Factor is the panic entry multiplier (0 = DefaultPanicFactor).
	Factor float64
	// ExitTicks is the calm-observation count required to leave panic
	// mode (0 = DefaultPanicExitTicks).
	ExitTicks int
}

// Name labels the policy in reports.
func (p Panic) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return fmt.Sprintf("panic-t%d-min%d", p.target(), p.Min)
}

func (p Panic) target() int {
	if p.Target <= 0 {
		return DefaultTarget
	}
	return p.Target
}

func (p Panic) factor() float64 {
	if p.Factor <= 0 {
		return DefaultPanicFactor
	}
	return p.Factor
}

func (p Panic) exitTicks() int {
	if p.ExitTicks <= 0 {
		return DefaultPanicExitTicks
	}
	return p.ExitTicks
}

// New builds the run's scaler.
func (p Panic) New() Scaler { return &panicScaler{p: p} }

type panicScaler struct {
	p       Panic
	inPanic bool
	calm    int
	floor   int // panic high-water desired: no scale-down while panicking
}

func (s *panicScaler) Desired(obs Observation) int {
	target := s.p.target()
	stable := ceilDiv(obs.Demand(), target)
	if stable < s.p.Min {
		stable = s.p.Min
	}
	ready := obs.Ready
	if ready < 1 {
		ready = 1
	}
	hot := obs.Demand() > 0 && float64(obs.Demand()) >= s.p.factor()*float64(target*ready)
	switch {
	case hot:
		s.inPanic = true
		s.calm = 0
		// One instance per in-flight invocation, never below stable.
		d := obs.Demand()
		if d < stable {
			d = stable
		}
		if d > s.floor {
			s.floor = d
		}
	case s.inPanic:
		s.calm++
		if s.calm >= s.p.exitTicks() {
			s.inPanic = false
			s.floor = 0
		}
	}
	if s.inPanic && stable < s.floor {
		return s.floor
	}
	return stable
}

// InPanic reports whether the scaler is in panic mode.
func (s *panicScaler) InPanic() bool { return s.inPanic }

// Policies returns the shipped policy catalog, the rows of the
// policy × RPS sweep: the fixed-fleet baseline, the Knative-style
// concurrency target, scale-to-zero, and panic mode.
func Policies() []Policy {
	return []Policy{
		Fixed{},
		Concurrency{Label: "concurrency", Target: DefaultTarget, Min: 1},
		Concurrency{Label: "scale-to-zero", Target: DefaultTarget, Min: 0},
		Panic{Label: "panic", Target: DefaultTarget, Min: 1},
	}
}

// PolicyNames returns the catalog's policy names, sorted.
func PolicyNames() []string {
	var names []string
	for _, p := range Policies() {
		names = append(names, p.Name())
	}
	sort.Strings(names)
	return names
}

// PolicyByName looks a policy up in the catalog.
func PolicyByName(name string) (Policy, error) {
	for _, p := range Policies() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("autoscale: unknown policy %q (have %v)", name, PolicyNames())
}
