package trace

import (
	"strings"
	"testing"
)

func TestRegistryCounterAndFunc(t *testing.T) {
	r := NewRegistry()
	var misses uint64
	r.Counter("machine.core0.l1d.misses", "L1D misses", &misses)
	r.Func("machine.core0.o3.windowCycles", "cycles this window", func() uint64 { return 42 })
	r.Formula("machine.core0.o3.cpi", "cycles per instruction", func() float64 { return 1.5 })

	misses = 7
	if got := r.U64("machine.core0.l1d.misses"); got != 7 {
		t.Fatalf("counter read %d, want 7 (live pointer semantics)", got)
	}
	if got := r.U64("machine.core0.o3.windowCycles"); got != 42 {
		t.Fatalf("func read %d, want 42", got)
	}
	if v, ok := r.Value("machine.core0.o3.cpi"); !ok || v != 1.5 {
		t.Fatalf("formula read %v/%v, want 1.5/true", v, ok)
	}
	if _, ok := r.Value("machine.nope"); ok {
		t.Fatal("absent stat must report !ok")
	}
	if got := r.U64("machine.nope"); got != 0 {
		t.Fatalf("absent stat U64 = %d, want 0", got)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	r := NewRegistry()
	var v uint64
	r.Counter("x", "", &v)
	r.Counter("x", "", &v)
}

func TestRegistryNamesSorted(t *testing.T) {
	r := NewRegistry()
	var a, b uint64
	r.Counter("machine.core1.z", "", &a)
	r.Counter("machine.core0.a", "", &b)
	names := r.Names()
	if len(names) != 2 || names[0] != "machine.core0.a" || names[1] != "machine.core1.z" {
		t.Fatalf("Names() = %v, want sorted", names)
	}
}

func TestRegistryTextGem5Style(t *testing.T) {
	r := NewRegistry()
	var misses uint64 = 12345
	r.Counter("machine.core1.l2.misses", "L2 cache misses", &misses)
	d := r.NewDist("machine.core1.o3.ecallLat", "ecall latency")
	d.Observe(3)
	d.Observe(5)
	d.Observe(100)

	txt := r.Text("dump1")
	if !strings.Contains(txt, "Begin Simulation Statistics (dump1)") {
		t.Fatal("missing gem5-style header")
	}
	if !strings.Contains(txt, "machine.core1.l2.misses") || !strings.Contains(txt, "12345") {
		t.Fatal("counter row missing")
	}
	if !strings.Contains(txt, "# L2 cache misses") {
		t.Fatal("description comment missing")
	}
	if !strings.Contains(txt, "ecallLat::samples") || !strings.Contains(txt, "ecallLat::mean") {
		t.Fatal("distribution rows missing")
	}
	if txt != r.Text("dump1") {
		t.Fatal("Text must be deterministic")
	}
}

func TestDistBuckets(t *testing.T) {
	var d Dist
	d.Observe(0)
	d.Observe(1)
	d.Observe(2)
	d.Observe(3)
	d.Observe(1024)
	if d.Count != 5 || d.Min != 0 || d.Max != 1024 {
		t.Fatalf("count/min/max = %d/%d/%d", d.Count, d.Min, d.Max)
	}
	if d.Buckets[0] != 1 { // [0,1)
		t.Fatalf("bucket[0] = %d, want 1", d.Buckets[0])
	}
	if d.Buckets[1] != 1 { // [1,2)
		t.Fatalf("bucket[1] = %d, want 1", d.Buckets[1])
	}
	if d.Buckets[2] != 2 { // [2,4)
		t.Fatalf("bucket[2] = %d, want 2", d.Buckets[2])
	}
	if d.Buckets[11] != 1 { // [1024,2048)
		t.Fatalf("bucket[11] = %d, want 1", d.Buckets[11])
	}
	if got := d.Mean(); got != float64(0+1+2+3+1024)/5 {
		t.Fatalf("mean = %v", got)
	}
	d.Reset()
	if d.Count != 0 || d.Sum != 0 {
		t.Fatal("Reset did not clear")
	}
	var nd *Dist
	nd.Observe(1) // must not panic
	nd.Reset()
}
