package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestJobsValidation(t *testing.T) {
	for _, bad := range []string{"0", "-1"} {
		var out, errb bytes.Buffer
		if code := run([]string{"-j", bad}, &out, &errb); code != 2 {
			t.Errorf("-j %s: exit code %d, want 2", bad, code)
		}
		if !strings.Contains(errb.String(), "jobs must be >= 1") {
			t.Errorf("-j %s: stderr %q lacks validation message", bad, errb.String())
		}
	}
}

func TestUnknownFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-bogus"}, &out, &errb); code != 2 {
		t.Errorf("unknown flag: exit code %d, want 2", code)
	}
}
