// Package trace is the simulator's observability layer, standing in for
// gem5's stat/trace machinery: a fixed-ring event tracer with per-core
// virtual-cycle timestamps, a hierarchical statistics registry
// ("machine.core0.l1d.misses"-style names) that every component registers
// into, a guest-PC sampling profiler resolved against program symbols,
// and deterministic exporters (Chrome trace_event JSON for Perfetto, a
// gem5-style stats.txt dump, and a flat+cumulative profile table).
//
// The package imports nothing from the rest of the repository so every
// layer (cpu, mem, kernel, gemsys, harness) can depend on it. All hot-path
// entry points are cheap, allocation-free, and designed to sit behind a
// nil-pointer guard: a component holding a nil *Tracer performs zero extra
// work. See docs/tracing.md.
package trace

// Kind classifies a trace event.
type Kind uint8

// Event kinds. The set mirrors what gem5's exec/cache/ipc debug flags
// surface: retirement, memory-system misses, front-end redirects,
// privilege switches, IPC and scheduling, and fault injection.
const (
	EvInstRetire   Kind = iota // one committed instruction (Arg=class)
	EvCacheMiss                // Arg=cache level (LvlL1I/LvlL1D/LvlL2), Arg2=address
	EvBranchMiss               // branch mispredict redirect
	EvTLBMiss                  // Arg=LvlITLB/LvlDTLB, Arg2=address
	EvSyscallEnter             // serializing ecall issued
	EvSyscallExit              // serializing ecall completed
	EvIPCSend                  // message send committed (Arg=sequence)
	EvIPCRecv                  // message receive committed (Arg=sequence)
	EvCtxSwitch                // scheduler switched processes (Arg=process id)
	EvFault                    // fault-injection event (Arg=fault event code)
	EvM5Reset                  // m5 reset-stats marker: a stats window opens
	EvM5Dump                   // m5 dump-stats marker: a stats window closes

	// Load-generation events (internal/loadgen): timestamps are virtual
	// nanoseconds of the load engine's clock, Core carries the instance
	// id (mod 256) for track placement.
	EvInvokeArrive // invocation entered the system (Arg=invocation id)
	EvInvokeRun    // invocation executing (Arg=invocation id, Arg2=service ns)
	EvInvokeDone   // invocation completed (Arg=invocation id, Arg2=latency ns)
	EvColdStart    // instance cold start (Arg=instance id, Arg2=boot penalty ns)
	EvInstReclaim  // idle instance reclaimed by keep-alive (Arg=instance id)
	EvInvokeRetry  // client re-sends an invocation (Arg=invocation id, Arg2=next attempt)
	EvInvokeFail   // invocation exhausted its attempts (Arg=invocation id, Arg2=attempts)

	// Scenario events (internal/scenario): fault windows opening/closing
	// on the load clock and SLO reattainment after the last window.
	EvScenarioWindow  // one fault phase's window (Arg=phase index, Arg2=window ns)
	EvScenarioRecover // SLO reattained post-window (Arg2=recovery ns)

	// Cluster-fabric events (internal/cluster): timestamps are global
	// virtual nanoseconds of the fabric clock, Core carries the source
	// (send) or destination (deliver) machine index (mod 256).
	EvNetSend       // message committed to a link (Arg=message id, Arg2=bytes)
	EvNetDeliver    // message delivered to its machine (Arg=message id, Arg2=link queue+tx+latency ns)
	EvClusterArrive // client request entered the fabric (Arg=request id)
	EvClusterDone   // client observed the reply (Arg=request id, Arg2=latency ns)

	// Autoscale events (internal/autoscale): timestamps are virtual
	// nanoseconds of the load clock, Core carries the node index
	// (mod 256) for scale events.
	EvScaleUp   // autoscaler started an instance (Arg=instance id, Arg2=node index)
	EvScaleDown // autoscaler reclaimed an instance (Arg=instance id, Arg2=node index)
	EvPanicMode // panic-mode transition (Arg=1 enter / 0 exit)
	evKinds
)

// Cache/TLB levels carried in EvCacheMiss/EvTLBMiss Arg.
const (
	LvlL1I uint64 = iota
	LvlL1D
	LvlL2
	LvlITLB
	LvlDTLB
)

var kindNames = [evKinds]string{
	"inst-retire", "cache-miss", "branch-mispredict", "tlb-miss",
	"syscall-enter", "syscall-exit", "ipc-send", "ipc-recv",
	"ctx-switch", "fault-inject", "m5-reset", "m5-dump",
	"invoke-arrive", "invoke-run", "invoke-done", "cold-start",
	"instance-reclaim", "invoke-retry", "invoke-fail",
	"scenario-window", "scenario-recover",
	"net-send", "net-deliver", "cluster-arrive", "cluster-done",
	"scale-up", "scale-down", "panic-mode",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one typed trace record. Events on a detailed core carry that
// core's virtual-cycle timestamp; functional-side events (context
// switches, fault injection) carry the machine's functional clock and are
// exported on a separate track.
type Event struct {
	Cycle uint64
	PC    uint64
	Arg   uint64
	Arg2  uint64
	Kind  Kind
	Core  uint8
}

// DefaultBufferEvents is the default ring capacity. At 48 bytes per event
// this bounds tracer memory to ~3 MiB while keeping the most recent ~64K
// events of a run.
const DefaultBufferEvents = 1 << 16

// Tracer is a fixed-capacity ring buffer of events. Emission never
// allocates: once the ring is full the oldest events are overwritten and
// counted in Dropped. A nil *Tracer is a valid "tracing disabled" value
// for every method.
type Tracer struct {
	buf     []Event
	head    int // next write position
	filled  bool
	Dropped uint64
}

// NewTracer allocates a tracer with the given ring capacity (0 selects
// DefaultBufferEvents).
func NewTracer(capEvents int) *Tracer {
	if capEvents <= 0 {
		capEvents = DefaultBufferEvents
	}
	return &Tracer{buf: make([]Event, capEvents)}
}

// Enabled reports whether the tracer records events.
func (t *Tracer) Enabled() bool { return t != nil }

// Emit appends an event to the ring. Safe on a nil tracer.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	if t.filled {
		t.Dropped++
	}
	t.buf[t.head] = ev
	t.head++
	if t.head == len(t.buf) {
		t.head = 0
		t.filled = true
	}
}

// EmitAt is Emit with the fields spread, for call sites that would
// otherwise build a composite literal in the hot path.
func (t *Tracer) EmitAt(kind Kind, core uint8, cycle, pc, arg, arg2 uint64) {
	if t == nil {
		return
	}
	t.Emit(Event{Kind: kind, Core: core, Cycle: cycle, PC: pc, Arg: arg, Arg2: arg2})
}

// Len reports how many events the ring currently holds.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	if t.filled {
		return len(t.buf)
	}
	return t.head
}

// Cap reports the ring capacity.
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}

// Events returns the buffered events oldest-first. The slice is a copy.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, 0, t.Len())
	if t.filled {
		out = append(out, t.buf[t.head:]...)
	}
	out = append(out, t.buf[:t.head]...)
	return out
}

// Reset empties the ring and clears the drop counter.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.head = 0
	t.filled = false
	t.Dropped = 0
}

// Options configures the observability layer of one simulated machine.
type Options struct {
	// Enabled turns on event tracing and profiling. When false the
	// machine performs zero extra work on the simulation hot path.
	Enabled bool
	// BufferEvents is the event ring capacity (0 = DefaultBufferEvents).
	BufferEvents int
	// SamplePeriod is the profiler's sampling period in virtual cycles
	// (0 = DefaultSamplePeriod).
	SamplePeriod uint64
}

// DefaultSamplePeriod is the profiler's default sampling period in
// virtual cycles: fine enough to rank the hot functions of a multi-
// million-cycle window, coarse enough to stay off the critical path.
const DefaultSamplePeriod = 251
