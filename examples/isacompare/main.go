// ISA comparison: run the same functions on the simulated RISC-V and
// x86-class systems at identical microarchitecture and reproduce the
// thesis's headline observation — the RISC-V software stack executes fewer
// instructions and finishes in fewer cycles (Figs. 4.15/4.16).
package main

import (
	"fmt"
	"log"

	"svbench"
)

func main() {
	fmt.Println("function              ISA     cold cycles  warm cycles  cold insts")
	for _, spec := range svbench.StandaloneSpecs()[:6] {
		var rv, x *svbench.Result
		var err error
		if rv, err = svbench.RunFunction(svbench.RV64, spec); err != nil {
			log.Fatal(err)
		}
		if x, err = svbench.RunFunction(svbench.CISC64, spec); err != nil {
			log.Fatal(err)
		}
		for _, r := range []*svbench.Result{x, rv} {
			fmt.Printf("%-20s  %-6s  %11d  %11d  %10d\n",
				r.Name, r.Arch, r.Cold.Cycles, r.Warm.Cycles, r.Cold.Insts)
		}
		fmt.Printf("%-20s  => riscv is %.2fx faster cold, executes %.2fx fewer instructions\n",
			"", float64(x.Cold.Cycles)/float64(rv.Cold.Cycles),
			float64(x.Cold.Insts)/float64(rv.Cold.Insts))
	}
}
