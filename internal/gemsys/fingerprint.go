package gemsys

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"

	"svbench/internal/isa"
	"svbench/internal/trace"
)

// The boot fingerprint identifies everything that determines the
// machine's state at the end of the setup phase: the behavioral
// configuration (architecture, core count, memory size, cache/O3/DRAM
// parameters, scheduling quantum, region layout), the kernel image, and
// every spawned program (name, placement, image bytes, entry point,
// arguments) in spawn order. Two machines with equal fingerprints execute
// identical instruction streams up to the checkpoint, so a post-boot
// checkpoint taken on one can be restored on the other.
//
// Deliberately excluded — they do not influence guest-visible setup
// state:
//   - Config.Trace: the observability layer is reset on every Restore,
//     so traced and untraced machines share boot work.
//   - the cosmetic label fields (OSLabel, KernelLabel, Compiler,
//     DockerLabel).
//   - fault-injection hooks: injectors are armed only after the restore,
//     and unarmed injectors pass messages through untouched.
//
// Host-side native services (database/cache engines) are NOT part of the
// machine and are not fingerprinted; checkpoint memoization is therefore
// only sound when setup performed no service round trips (the harness
// checks the kernel's ServiceReqs counter and refuses to memoize
// otherwise).

func (m *Machine) fpHash() hash.Hash {
	if m.fph == nil {
		m.fph = sha256.New()
	}
	return m.fph
}

func fpU64(h hash.Hash, vs ...uint64) {
	var b [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
}

func fpStr(h hash.Hash, s string) {
	fpU64(h, uint64(len(s)))
	h.Write([]byte(s))
}

// fpConfig folds the behavioral configuration into the fingerprint. The
// cosmetic label fields and the observability options are zeroed first:
// neither influences guest-visible setup state. Everything else — the
// full cache hierarchy, DRAM, and detailed-CPU parameter set — is
// included verbatim (these structs contain no maps, so their %+v
// rendering is deterministic).
func (m *Machine) fpConfig(cfg Config) {
	c := cfg
	c.Trace = trace.Options{}
	c.OSLabel, c.KernelLabel, c.Compiler, c.DockerLabel = "", "", "", ""
	h := m.fpHash()
	fpStr(h, "cfg")
	fmt.Fprintf(h, "%+v", c)
}

// fpProgram folds a loaded program image into the fingerprint.
func (m *Machine) fpProgram(label string, prog *isa.Program) {
	h := m.fpHash()
	fpStr(h, label)
	fpU64(h, prog.TextBase, uint64(len(prog.Text)))
	h.Write(prog.Text)
	fpU64(h, prog.DataBase, uint64(len(prog.Data)))
	h.Write(prog.Data)
	fpU64(h, prog.Entry)
}

// fpSpawn folds one process creation into the fingerprint.
func (m *Machine) fpSpawn(name string, coreID int, entry uint64, args []uint64, prog *isa.Program) {
	h := m.fpHash()
	fpStr(h, "spawn")
	fpStr(h, name)
	fpU64(h, uint64(coreID), entry, uint64(len(args)))
	fpU64(h, args...)
	m.fpProgram("image", prog)
}

// BootFingerprint returns the hex digest identifying the machine's boot
// inputs (see the package comment above). It is stable across processes
// and runs: equal fingerprints mean interchangeable post-boot
// checkpoints.
func (m *Machine) BootFingerprint() string {
	return hex.EncodeToString(m.fpHash().Sum(nil))
}
