// Package cluster runs multiple simulated machines under one global
// virtual clock, coupled by a modeled network. It is the multi-machine
// counterpart of internal/loadgen's single-machine serverless model: each
// service of a DeathStarBench-style topology boots on its own
// gemsys.Machine, and RPCs between services travel over per-edge links
// with propagation latency, serialization (bandwidth) delay, and FIFO
// queueing — instead of the host-side injection the single-machine
// harness uses.
//
// The fabric is a discrete-event simulation: a global event queue ordered
// by (virtual time, insertion sequence) advances machines in bounded
// quanta and delivers cross-machine messages deterministically. Same
// topology + seed ⇒ byte-identical event log, figures and trace export,
// regardless of host parallelism (runs are sequential internally;
// parallelism only exists across runs, via RunMany).
package cluster

import (
	"fmt"

	"svbench/internal/db"
	"svbench/internal/ir"
	"svbench/internal/langrt"
)

// ServiceKind classifies a topology node.
type ServiceKind int

// Node kinds: a Function node runs a vSwarm workload under a language
// runtime; an Orchestrator node fans canned requests out to downstream
// services in stages (the "compose-post" / "search" pattern); a Datastore
// node fronts a native storage engine behind a guest relay loop.
const (
	Function ServiceKind = iota
	Orchestrator
	Datastore
)

func (k ServiceKind) String() string {
	switch k {
	case Function:
		return "function"
	case Orchestrator:
		return "orchestrator"
	case Datastore:
		return "datastore"
	}
	return "unknown"
}

// ChanPair is a request/response channel pair on a machine, used to wire
// a function workload's client stubs to remote dependencies.
type ChanPair struct {
	Req, Resp int
}

// Call is one downstream RPC an orchestrator issues: the target service
// and the canned request payload to send it.
type Call struct {
	Service string
	Request []byte
}

// ServiceSpec describes one node of a topology. Exactly one of the
// kind-specific field groups applies.
type ServiceSpec struct {
	Name string
	Kind ServiceKind

	// Function nodes. Fn builds the workload module given one ChanPair
	// per entry of Deps (the function's client stubs send on pair.Req
	// and receive on pair.Resp; the fabric routes pair.Req traffic to
	// the named service's machine). Runtime selects the language
	// runtime wrapper (default langrt.GoRT).
	Runtime langrt.Runtime
	Fn      func(deps []ChanPair) *ir.Module
	Deps    []string

	// Orchestrator nodes: stages execute sequentially; the calls within
	// a stage are issued back-to-back (fan-out) and gathered before the
	// next stage starts.
	Stages [][]Call

	// Datastore nodes: Engine names the storage engine ("cassandra",
	// "mongodb", "mariadb", "memcached"); Seed, when non-nil, populates
	// it host-side before boot.
	Engine string
	Seed   func(db.Store)
}

// Link models one directed network edge: fixed propagation latency plus
// a serialization rate. Transmission time for b bytes at G Gbit/s is
// ceil(8b/G) virtual nanoseconds; messages queue FIFO behind the link's
// busy time.
type Link struct {
	LatencyNS uint64
	GbitPS    uint64
}

// Default link parameters: a 10 Gbit/s datacenter edge with 20 µs
// one-way latency.
const (
	DefaultLatencyNS = 20_000
	DefaultGbitPS    = 10
)

// TxNS returns the serialization delay for a payload of n bytes.
func (l Link) TxNS(n int) uint64 {
	g := l.GbitPS
	if g == 0 {
		g = DefaultGbitPS
	}
	return (8*uint64(n) + g - 1) / g
}

// LinkSpec overrides the link parameters of one directed edge. The
// pseudo-endpoint "client" names the external load source.
type LinkSpec struct {
	Src, Dst string
	Link     Link
}

// Client is the pseudo-endpoint name of the external load source in
// LinkSpec entries and the fabric event log.
const Client = "client"

// Topology is a complete service graph: the nodes, the entry service
// receiving client requests, the canned client request payload, and the
// link model.
type Topology struct {
	Name     string
	Services []ServiceSpec
	Frontend string
	Request  []byte

	// DefaultLink applies to every edge without a LinkSpec override.
	// The zero value selects DefaultLatencyNS/DefaultGbitPS.
	DefaultLink Link
	Links       []LinkSpec
}

// Validate checks the topology for structural errors: duplicate or empty
// names, dangling references, kind-specific field mismatches, and call
// cycles (which would deadlock the fabric).
func (t *Topology) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("cluster: topology has no name")
	}
	if len(t.Request) == 0 {
		return fmt.Errorf("cluster: topology %s has no client request", t.Name)
	}
	idx := map[string]int{}
	for i, s := range t.Services {
		if s.Name == "" || s.Name == Client {
			return fmt.Errorf("cluster: bad service name %q", s.Name)
		}
		if _, dup := idx[s.Name]; dup {
			return fmt.Errorf("cluster: duplicate service %s", s.Name)
		}
		idx[s.Name] = i
	}
	if _, ok := idx[t.Frontend]; !ok {
		return fmt.Errorf("cluster: frontend %q is not a service", t.Frontend)
	}
	edges := make([][]int, len(t.Services))
	for i, s := range t.Services {
		switch s.Kind {
		case Function:
			if s.Fn == nil {
				return fmt.Errorf("cluster: function %s has no builder", s.Name)
			}
			for _, d := range s.Deps {
				j, ok := idx[d]
				if !ok {
					return fmt.Errorf("cluster: %s depends on unknown service %s", s.Name, d)
				}
				edges[i] = append(edges[i], j)
			}
		case Orchestrator:
			if len(s.Stages) == 0 {
				return fmt.Errorf("cluster: orchestrator %s has no stages", s.Name)
			}
			for _, stage := range s.Stages {
				if len(stage) == 0 {
					return fmt.Errorf("cluster: orchestrator %s has an empty stage", s.Name)
				}
				for _, c := range stage {
					j, ok := idx[c.Service]
					if !ok {
						return fmt.Errorf("cluster: %s calls unknown service %s", s.Name, c.Service)
					}
					if c.Service == s.Name {
						return fmt.Errorf("cluster: %s calls itself", s.Name)
					}
					if len(c.Request) == 0 {
						return fmt.Errorf("cluster: %s sends an empty request to %s", s.Name, c.Service)
					}
					edges[i] = append(edges[i], j)
				}
			}
		case Datastore:
			if s.Engine == "" {
				return fmt.Errorf("cluster: datastore %s has no engine", s.Name)
			}
		default:
			return fmt.Errorf("cluster: service %s has unknown kind %d", s.Name, s.Kind)
		}
	}
	for _, l := range t.Links {
		for _, end := range []string{l.Src, l.Dst} {
			if end == Client {
				continue
			}
			if _, ok := idx[end]; !ok {
				return fmt.Errorf("cluster: link references unknown endpoint %s", end)
			}
		}
	}
	// Reject call cycles: a blocking request loop would park every
	// machine on the cycle forever.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(t.Services))
	var visit func(i int) error
	visit = func(i int) error {
		color[i] = gray
		for _, j := range edges[i] {
			switch color[j] {
			case gray:
				return fmt.Errorf("cluster: call cycle through %s", t.Services[j].Name)
			case white:
				if err := visit(j); err != nil {
					return err
				}
			}
		}
		color[i] = black
		return nil
	}
	for i := range t.Services {
		if color[i] == white {
			if err := visit(i); err != nil {
				return err
			}
		}
	}
	return nil
}

// service returns the spec index by name (valid after Validate).
func (t *Topology) service(name string) int {
	for i := range t.Services {
		if t.Services[i].Name == name {
			return i
		}
	}
	return -1
}
