// Command loadbench times the open-loop load study serially and in
// parallel and writes the comparison as JSON (BENCH_load.json). Every
// point's latency table, stats text and trace JSON are asserted
// byte-identical across both runs first — a speedup that changed the
// measured tail would be meaningless.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"svbench/internal/benchutil"
	"svbench/internal/gemsys"
	"svbench/internal/harness"
	"svbench/internal/isa"
	"svbench/internal/loadgen"
	"svbench/internal/sweep"
)

type report struct {
	Date       string  `json:"date"`
	HostCPUs   int     `json:"host_cpus"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Matrix     string  `json:"matrix"`
	Points     int     `json:"points"`
	JobsBefore int     `json:"jobs_before"`
	JobsAfter  int     `json:"jobs_after"`
	SecBefore  float64 `json:"seconds_before"`
	SecAfter   float64 `json:"seconds_after"`
	Speedup    float64 `json:"speedup"`
	Identical  bool    `json:"reports_identical"`
}

// points is the benchmarked sweep: the rps grid crossed with two
// keep-alive settings on the acceptance workload.
func points(seed uint64) []loadgen.Config {
	var spec harness.Spec
	for _, sp := range harness.StandaloneSpecs() {
		if sp.Name == "fibonacci-go" {
			spec = sp
		}
	}
	base := loadgen.Config{
		Cfg:      gemsys.DefaultConfig(isa.RV64),
		Spec:     spec,
		Duration: 50_000_000,
		Seed:     seed,
	}
	var cfgs []loadgen.Config
	for _, rps := range []float64{50, 100, 200, 400} {
		for _, ka := range []uint64{0, 10_000_000} {
			c := base
			c.RPS = rps
			c.KeepAlive = ka
			cfgs = append(cfgs, c)
		}
	}
	return cfgs
}

func main() {
	var (
		out     = flag.String("out", "BENCH_load.json", "output JSON file")
		jobs    = flag.Int("j", sweep.DefaultJobs(), "parallel worker count for the after run")
		seed    = flag.Uint64("seed", 7, "arrival-process seed")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if err := sweep.ValidateJobs(*jobs); err != nil {
		fmt.Fprintln(os.Stderr, "loadbench: -j:", err)
		os.Exit(2)
	}
	stopProf, err := benchutil.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadbench:", err)
		os.Exit(2)
	}

	run := func(j int) ([]*loadgen.Report, float64) {
		t0 := time.Now()
		reps, errs := loadgen.RunMany(points(*seed), j)
		dt := time.Since(t0).Seconds()
		for i, err := range errs {
			if err != nil {
				fmt.Fprintf(os.Stderr, "loadbench: point %d: %v\n", i, err)
				os.Exit(1)
			}
		}
		return reps, dt
	}

	fmt.Fprintf(os.Stderr, "loadbench: serial study (-j 1)...\n")
	before, secBefore := run(1)
	fmt.Fprintf(os.Stderr, "loadbench: %.2fs; parallel study (-j %d)...\n", secBefore, *jobs)
	after, secAfter := run(*jobs)

	identical := true
	for i := range before {
		if before[i].Table() != after[i].Table() ||
			before[i].StatsText != after[i].StatsText ||
			!bytes.Equal(before[i].TraceJSON, after[i].TraceJSON) {
			identical = false
			fmt.Fprintf(os.Stderr, "loadbench: point %d DIFFERS between -j 1 and -j %d\n", i, *jobs)
		}
	}

	rep := report{
		Date:       time.Now().UTC().Format("2006-01-02"),
		HostCPUs:   runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Matrix:     "fibonacci-go rv64, rps {50,100,200,400} × keepalive {0, 10ms}",
		Points:     len(before),
		JobsBefore: 1,
		JobsAfter:  *jobs,
		SecBefore:  secBefore,
		SecAfter:   secAfter,
		Speedup:    secBefore / secAfter,
		Identical:  identical,
	}
	js, _ := json.MarshalIndent(rep, "", "  ")
	js = append(js, '\n')
	if err := os.WriteFile(*out, js, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "loadbench:", err)
		os.Exit(1)
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "loadbench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "loadbench: %.2fs -> %.2fs (%.2fx), identical=%v, %s\n",
		secBefore, secAfter, rep.Speedup, rep.Identical, *out)
	if !rep.Identical {
		os.Exit(1)
	}
}
