package harness

import (
	"reflect"
	"sync"
	"testing"

	"svbench/internal/faults"
	"svbench/internal/gemsys"
	"svbench/internal/isa"
)

func fastSpec(t *testing.T) Spec {
	t.Helper()
	for _, sp := range StandaloneSpecs() {
		if sp.Name == "fibonacci-go" {
			sp.Requests = 3
			return sp
		}
	}
	t.Fatal("fibonacci-go missing from catalog")
	return Spec{}
}

// TestRunCachedMatchesRunWith: a memoized run must be indistinguishable
// from an unmemoized one — same stats, same response bytes, same setup
// instruction count.
func TestRunCachedMatchesRunWith(t *testing.T) {
	sp := fastSpec(t)
	cfg := gemsys.DefaultConfig(isa.RV64)

	plain, err := RunWith(cfg, sp)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewBootCache()
	first, err := RunCached(cfg, sp, cache)
	if err != nil {
		t.Fatal(err)
	}
	memoized, err := RunCached(cfg, sp, cache)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses, rejected := cache.Stats(); hits != 1 || misses != 1 || rejected != 0 {
		t.Fatalf("cache stats hits=%d misses=%d rejected=%d, want 1/1/0", hits, misses, rejected)
	}
	if !reflect.DeepEqual(plain, first) {
		t.Error("leader (cache-miss) result differs from plain RunWith")
	}
	if !reflect.DeepEqual(plain, memoized) {
		t.Error("memoized result differs from plain RunWith")
	}
	if memoized.SetupInsts == 0 {
		t.Error("memoized run lost the setup instruction count")
	}
}

// TestBootCacheSingleflight: concurrent runs with one fingerprint setup
// once; every other run restores from the cache and measures the same.
func TestBootCacheSingleflight(t *testing.T) {
	sp := fastSpec(t)
	cfg := gemsys.DefaultConfig(isa.RV64)
	cache := NewBootCache()

	const n = 4
	results := make([]*Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = RunCached(cfg, sp, cache)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Errorf("run %d differs from run 0", i)
		}
	}
	hits, misses, rejected := cache.Stats()
	if misses != 1 || rejected != 0 || hits != n-1 {
		t.Errorf("cache stats hits=%d misses=%d rejected=%d, want %d/1/0", hits, misses, rejected, n-1)
	}
}

// faultedSpec returns fastSpec with a fault plan whose rules never fire
// (probability zero), so an armed setup completes exactly like a clean
// one — the memoization guard must still refuse it, because the boot
// fingerprint excludes fault plans and a checkpoint taken under an
// active injector could otherwise be served to clean runs.
func faultedSpec(t *testing.T) Spec {
	sp := fastSpec(t)
	sp.Faults = &faults.Plan{
		Seed:  1,
		Rules: []faults.Rule{{Kind: faults.DropMsg, Channel: faults.ClientReq, Prob: 0}},
	}
	return sp
}

// TestFaultedSetupNotMemoizable: a boot whose setup ran under an armed
// fault plan must be disqualified from memoization, even when the plan
// injected nothing and even if the injector is disarmed again later.
func TestFaultedSetupNotMemoizable(t *testing.T) {
	b, err := BootSpec(gemsys.DefaultConfig(isa.RV64), faultedSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	b.inj.Arm()
	if _, err := b.Setup(); err != nil {
		t.Fatal(err)
	}
	b.inj.Disarm()
	if b.Memoizable() {
		t.Fatal("boot whose setup ran under an armed fault plan is memoizable")
	}
}

// TestBootCacheRefusesFaultedBoot: when a faulted-setup boot leads the
// cache entry for a fingerprint, it must publish a negative entry — a
// later clean boot with the same fingerprint (fault plans are excluded
// from it) has to run its own setup rather than restore the leader's
// checkpoint.
func TestBootCacheRefusesFaultedBoot(t *testing.T) {
	cfg := gemsys.DefaultConfig(isa.RV64)
	cache := NewBootCache()

	bf, err := BootSpec(cfg, faultedSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	bf.inj.Arm()
	ck, setupInsts, err := cache.CheckpointFor(bf)
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil || setupInsts == 0 {
		t.Fatal("faulted leader must still get its own checkpoint")
	}

	bc, err := BootSpec(cfg, fastSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	ck2, setupInsts2, err := cache.CheckpointFor(bc)
	if err != nil {
		t.Fatal(err)
	}
	if ck2 == nil || setupInsts2 == 0 {
		t.Fatal("clean follower must set up on its own after a negative entry")
	}
	hits, misses, rejected := cache.Stats()
	if hits != 0 || misses != 1 || rejected != 1 {
		t.Fatalf("cache stats hits=%d misses=%d rejected=%d, want 0/1/1 (faulted boot must not be served)",
			hits, misses, rejected)
	}
}

// TestBootCacheNegativeEntry exercises the fallback protocol directly: a
// leader that fails (or declines to memoize) publishes a negative entry,
// and later arrivals run their own setup instead of waiting forever or
// reusing garbage.
func TestBootCacheNegativeEntry(t *testing.T) {
	cache := NewBootCache()
	e, leader := cache.acquire("fp-a")
	if !leader {
		t.Fatal("first acquire must lead")
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		e2, leader2 := cache.acquire("fp-a")
		if leader2 {
			t.Error("second acquire must follow, not lead")
		}
		<-e2.ready
		if e2.ok {
			t.Error("negative entry reported ok")
		}
		cache.noteRejected()
	}()
	cache.finish(e, nil, 0)
	<-done
	// A later arrival sees the settled negative entry immediately.
	e3, leader3 := cache.acquire("fp-a")
	if leader3 || e3.ok {
		t.Fatal("settled negative entry should be followed and not ok")
	}
	hits, misses, rejected := cache.Stats()
	if hits != 0 || misses != 1 || rejected != 1 {
		t.Errorf("stats hits=%d misses=%d rejected=%d, want 0/1/1", hits, misses, rejected)
	}
}
