package faults

import "svbench/internal/kernel"

// Injector executes a Plan: it owns the PRNG, resolves symbolic channel
// targets, applies IPC rules on every committed message, wraps native
// services per the service rules, and accumulates the run's Report.
//
// An injector starts disarmed; the harness arms it after the checkpoint
// restore so the setup phase (boot, readiness handshake) is never
// faulted — exactly as chaos tooling targets steady-state traffic, not
// deployment. While disarmed no PRNG draws happen, so the post-arm fault
// schedule depends only on the seed and the simulated traffic.
type Injector struct {
	plan  Plan
	rng   *PRNG
	armed bool
	// everArmed latches the first Arm and survives Disarm: any phase that
	// ran while the injector could fire is tainted for memoization
	// purposes even if injection is off again by the time anyone asks.
	everArmed bool

	clientReq  int
	clientResp int

	// now is the injector's notion of virtual time, advanced by SetNow /
	// AttemptAt; windowed rules are inactive whenever now falls outside
	// their window. Plans without windows never consult it.
	now uint64

	Report Report
}

// NewInjector compiles plan into a disarmed injector.
func NewInjector(plan Plan) *Injector {
	return &Injector{
		plan:       plan,
		rng:        NewPRNG(plan.Seed),
		clientReq:  AnyChannel,
		clientResp: AnyChannel,
	}
}

// Arm enables injection.
func (in *Injector) Arm() {
	in.armed = true
	in.everArmed = true
}

// Disarm stops injection; counters are preserved.
func (in *Injector) Disarm() { in.armed = false }

// WasArmed reports whether the injector has ever been armed. Safe on a
// nil injector (false): callers use it to decide whether a completed
// phase could have been faulted at all.
func (in *Injector) WasArmed() bool { return in != nil && in.everArmed }

// BindClientChans resolves the symbolic ClientReq/ClientResp rule targets
// to the load generator's concrete channel ids.
func (in *Injector) BindClientChans(req, resp int) {
	in.clientReq, in.clientResp = req, resp
}

func (in *Injector) chanMatches(target, ch int) bool {
	switch target {
	case AnyChannel:
		return true
	case ClientReq:
		return in.clientReq != AnyChannel && ch == in.clientReq
	case ClientResp:
		return in.clientResp != AnyChannel && ch == in.clientResp
	default:
		return ch == target
	}
}

// IPCFault implements the kernel's per-commit fault hook: it may drop the
// message, corrupt the payload in place, or return extra delivery delay
// in virtual cycles. Rules are consulted in plan order; a drop wins
// immediately (later rules draw nothing, keeping the schedule stable).
// Rules whose window excludes the injector's current time are skipped
// before any draw, so closed windows burn no PRNG state.
func (in *Injector) IPCFault(ch int, payload []byte) (drop bool, delay uint64) {
	if in == nil || !in.armed {
		return false, 0
	}
	for i := range in.plan.Rules {
		r := &in.plan.Rules[i]
		switch r.Kind {
		case DropMsg, CorruptMsg, DelayMsg:
		default:
			continue
		}
		if !r.Window.Contains(in.now) {
			continue
		}
		if !in.chanMatches(r.Channel, ch) {
			continue
		}
		if !in.rng.Chance(r.Prob) {
			continue
		}
		in.Report.Injected++
		switch r.Kind {
		case DropMsg:
			in.Report.Dropped++
			return true, 0
		case CorruptMsg:
			in.corrupt(payload)
			in.Report.Corrupted++
		case DelayMsg:
			in.Report.Delayed++
			delay += r.Delay
		}
	}
	return false, delay
}

// corrupt flips one payload byte past the 8-byte cursor header (messages
// shorter than that are left alone — there is no field data to damage).
func (in *Injector) corrupt(payload []byte) {
	if len(payload) <= 8 {
		return
	}
	pos := 8 + int(in.rng.Uint64()%uint64(len(payload)-8))
	payload[pos] ^= byte(1 + in.rng.Uint64()%255)
}

// Note implements the kernel's fault-note hook: the IR client reports
// retry-loop events (timeouts, bad replies, retries, recoveries).
func (in *Injector) Note(ev uint64) {
	if in == nil {
		return
	}
	switch ev {
	case EvTimeout:
		in.Report.Timeouts++
		in.Report.Surfaced++
	case EvBadReply:
		in.Report.BadReplies++
		in.Report.Surfaced++
	case EvRetry:
		in.Report.Retried++
	case EvRecovered:
		in.Report.Recovered++
	case EvExhausted:
		in.Report.Exhausted++
	}
}

// NamedService lets a kernel.Service expose an engine name for service
// rule matching (the db package's wire service implements it).
type NamedService interface {
	kernel.Service
	ServiceName() string
}

func serviceMatches(target string, svc kernel.Service) bool {
	if target == "" || target == "*" {
		return true
	}
	n, ok := svc.(NamedService)
	return ok && n.ServiceName() == target
}

// WrapService applies the plan's service rules to svc, returning a
// FlakyService when any rule targets it and svc unchanged otherwise.
func (in *Injector) WrapService(svc kernel.Service) kernel.Service {
	if in == nil {
		return svc
	}
	var rules []Rule
	for _, r := range in.plan.Rules {
		switch r.Kind {
		case ErrorReply, LatencySpike, Outage:
			if serviceMatches(r.Service, svc) {
				rules = append(rules, r)
			}
		}
	}
	if len(rules) == 0 {
		return svc
	}
	return &FlakyService{Inner: svc, inj: in, rules: rules}
}
