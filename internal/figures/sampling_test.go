package figures

import (
	"math"
	"testing"

	"svbench/internal/isa"
)

// TestTableSampling: the sampled-vs-full table must have one row per
// workload, CPI columns consistent with the reported error columns, and a
// positive measured-window count for every row.
func TestTableSampling(t *testing.T) {
	d, err := TableSampling([]isa.Arch{isa.RV64}, func(s string) { t.Log(s) })
	if err != nil {
		t.Fatal(err)
	}
	if want := len(SamplingSpecs()); len(d.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(d.Rows), want)
	}
	if len(d.Columns) != 7 {
		t.Fatalf("columns = %d, want 7", len(d.Columns))
	}
	for _, r := range d.Rows {
		fullCold, sampCold, coldErr := r.Values[0], r.Values[1], r.Values[2]
		fullWarm, sampWarm, warmErr := r.Values[3], r.Values[4], r.Values[5]
		windows := r.Values[6]
		if fullCold <= 0 || fullWarm <= 0 {
			t.Errorf("%s: non-positive full CPI", r.Label)
		}
		wantCold := 100 * (sampCold - fullCold) / fullCold
		if math.Abs(coldErr-wantCold) > 1e-9 {
			t.Errorf("%s: cold err %.4f inconsistent with CPIs (want %.4f)", r.Label, coldErr, wantCold)
		}
		wantWarm := 100 * (sampWarm - fullWarm) / fullWarm
		if math.Abs(warmErr-wantWarm) > 1e-9 {
			t.Errorf("%s: warm err %.4f inconsistent with CPIs (want %.4f)", r.Label, warmErr, wantWarm)
		}
		if windows < 1 {
			t.Errorf("%s: %v measured windows in warm stats window", r.Label, windows)
		}
	}
}
